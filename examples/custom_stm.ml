(* Plugging your own synchronization strategy into the benchmark — the
   core use case of STMBench7 ("directly use STMBench7 with an
   arbitrary STM framework", paper §4).

   This example implements the simplest possible STM — a single global
   mutex around every operation, with plain references as tvars — as a
   new [Runtime_intf.S] module, instantiates the full benchmark with
   it, and compares it against the built-in strategies. Replace the
   internals of [Global_mutex_stm] with your STM and the rest of the
   benchmark comes for free.

     dune exec examples/custom_stm.exe *)

module Global_mutex_stm : Sb7_runtime.Runtime_intf.S = struct
  let name = "global-mutex"

  type 'a tvar = 'a ref

  let make v = ref v
  let read tv = !tv
  let write tv v = tv := v

  let mutex = Mutex.create ()
  let operations = Atomic.make 0

  let atomic ~profile f =
    ignore (profile : Sb7_runtime.Op_profile.t);
    ignore (Atomic.fetch_and_add operations 1);
    Mutex.lock mutex;
    match f () with
    | result ->
      Mutex.unlock mutex;
      result
    | exception exn ->
      Mutex.unlock mutex;
      raise exn

  (* A mutex never aborts, so there is nothing to checkpoint: declare
     no capability and stub the API (the contract for any runtime that
     keeps plain full-abort semantics). *)
  let partial_abort = false
  let checkpoint ~acc = ignore acc
  let resume () = (0, 0)

  let stats () = [ ("operations", Atomic.get operations) ]
  let reset_stats () = Atomic.set operations 0
end

module B = Sb7_harness.Benchmark
module Bench = B.Make (Global_mutex_stm)
module I = Sb7_core.Instance.Make (Global_mutex_stm)

let config =
  {
    B.default_config with
    B.threads = 3;
    duration_s = 1.0;
    workload = Sb7_harness.Workload.Read_write;
    long_traversals = false;
    scale = Sb7_core.Parameters.small;
    scale_name = "small";
    seed = 17;
  }

let () =
  Format.printf
    "Running STMBench7 with a user-provided strategy (%s)...@.@."
    Global_mutex_stm.name;
  let setup = Bench.build_setup config in
  let result = Bench.run ~setup config in
  (* The structure the custom strategy produced is still consistent. *)
  I.Invariants.check_exn setup;
  Format.printf
    "custom %-14s %10.0f op/s (structure invariants hold)@."
    Global_mutex_stm.name
    (Sb7_harness.Run_result.throughput result);
  (* Same configuration under the built-in strategies, for comparison. *)
  List.iter
    (fun runtime_name ->
      match Sb7_harness.Driver.run ~runtime_name config with
      | Error e -> failwith e
      | Ok r ->
        Format.printf "built-in %-12s %10.0f op/s@." runtime_name
          (Sb7_harness.Run_result.throughput r))
    [ "coarse"; "medium"; "tl2" ];
  Format.printf
    "@.A global mutex serializes read-only operations too, so it trails@.\
     the coarse read-write lock on read-heavy mixes — and any real STM@.\
     you plug in gets the complete harness, reports and invariants@.\
     checker for free.@."
