(* One function per table / figure of the paper's evaluation, plus the
   ablations this reproduction adds. Each prints the same rows/series
   the paper plots; EXPERIMENTS.md records the paper-vs-measured
   comparison. *)

open Bench_common
module W = Sb7_harness.Workload
module RR = Sb7_harness.Run_result
module D = Sb7_harness.Dispatch
module Category = Sb7_core.Category

(* --- Table 2: default ratios for operation categories --- *)

let table2 (_ : settings) =
  print_header
    "Table 2 — default ratios for operation categories (% of operations)";
  Printf.printf "%-26s %14s %14s %14s\n" "category" "read-dom." "read-write"
    "write-dom.";
  (* The category rows of Table 2 are workload-independent inputs; the
     effective per-category shares below combine them with the
     read-only/update split exactly as the harness does. *)
  let module I = Sb7_core.Instance.Make (Sb7_runtime.Seq_runtime) in
  let descs =
    I.Operation.all
    |> List.map (fun (op : I.Operation.t) ->
           {
             W.code = op.code;
             category = op.category;
             read_only = I.Operation.read_only op;
           })
    |> Array.of_list
  in
  let category_share kind cat =
    let r = W.ratios kind descs in
    let total = ref 0. in
    Array.iteri
      (fun i (d : W.op_desc) ->
        if Category.equal d.category cat then total := !total +. r.(i))
      descs;
    100. *. !total
  in
  List.iter
    (fun cat ->
      Printf.printf "%-26s %13.1f%% %13.1f%% %13.1f%%\n"
        (Category.to_string cat)
        (category_share W.Read_dominated cat)
        (category_share W.Read_write cat)
        (category_share W.Write_dominated cat))
    Category.all;
  Printf.printf "\nread-only / update split:  r = 90/10   rw = 60/40   w = \
                 10/90 (Table 2)\n";
  Printf.printf "input category ratios:     LT = 5  ST = 40  OP = 45  SM = \
                 10 (Table 2)\n"

(* --- Figure 3: max latency of long traversals, coarse vs medium --- *)

let fig3 (s : settings) =
  print_header
    "Figure 3 — max latency [ms] of T1 (read-dom.) / T2b (write-dom.), all \
     operations enabled";
  note "series: <workload>/<op> under coarse vs medium locking";
  let series =
    [
      ("R/T1 coarse", "coarse", W.Read_dominated, "T1");
      ("R/T1 medium", "medium", W.Read_dominated, "T1");
      ("W/T2b coarse", "coarse", W.Write_dominated, "T2b");
      ("W/T2b medium", "medium", W.Write_dominated, "T2b");
    ]
  in
  let results = Hashtbl.create 16 in
  List.iter
    (fun threads ->
      List.iter
        (fun (label, runtime, workload, _) ->
          let r = run_point s (point ~runtime ~workload ~threads ()) in
          Hashtbl.replace results (threads, label) r)
        series)
    s.threads;
  print_series ~row_label:"threads" ~rows:s.threads
    ~series:(List.map (fun (l, _, _, _) -> l) series)
    ~cell:(fun threads label ->
      let _, _, _, code =
        List.find (fun (l, _, _, _) -> String.equal l label) series
      in
      RR.max_latency_ms (Hashtbl.find results (threads, label)) ~code)

(* --- Figure 4: total throughput, coarse vs medium, no long traversals --- *)

let fig4 (s : settings) =
  print_header
    "Figure 4 — total throughput [op/s], long traversals disabled, coarse \
     vs medium";
  let series =
    List.concat_map
      (fun workload ->
        List.map
          (fun runtime ->
            ( Printf.sprintf "%s %s"
                (String.uppercase_ascii (W.kind_to_string workload))
                runtime,
              runtime,
              workload ))
          [ "coarse"; "medium" ])
      W.all_kinds
  in
  let results = Hashtbl.create 32 in
  List.iter
    (fun threads ->
      List.iter
        (fun (label, runtime, workload) ->
          let r =
            run_point s
              (point ~runtime ~workload ~threads ~long_traversals:false ())
          in
          Hashtbl.replace results (threads, label) r)
        series)
    s.threads;
  print_series ~row_label:"threads" ~rows:s.threads
    ~series:(List.map (fun (l, _, _) -> l) series)
    ~cell:(fun threads label ->
      RR.throughput (Hashtbl.find results (threads, label)))

(* --- Table 3: coarse locking vs ASTM, long traversals disabled --- *)

let table3 (s : settings) =
  print_header
    "Table 3 — total throughput [op/s]: coarse-grained locking vs ASTM, \
     long traversals disabled";
  Printf.printf "%-8s" "threads";
  List.iter
    (fun workload ->
      let w = W.kind_long_name workload in
      Printf.printf " %14s %14s" (w ^ " lock") (w ^ " ASTM"))
    W.all_kinds;
  print_newline ();
  List.iter
    (fun threads ->
      Printf.printf "%-8d" threads;
      List.iter
        (fun workload ->
          let lock =
            run_point s
              (point ~runtime:"coarse" ~workload ~threads
                 ~long_traversals:false ())
          in
          let astm =
            run_point s
              (point ~runtime:"astm" ~workload ~threads
                 ~long_traversals:false ())
          in
          Printf.printf " %14.1f %14.1f" (RR.throughput lock)
            (RR.throughput astm))
        W.all_kinds;
      print_newline ())
    s.threads

(* --- Figure 6: reduced benchmark, ASTM vs both locking strategies --- *)

let fig6 (s : settings) =
  print_header
    "Figure 6 — total throughput [op/s] on the reduced (§5) benchmark: \
     ASTM vs coarse vs medium";
  note
    "operations with huge read sets or big-object updates disabled; long \
     traversals disabled";
  List.iter
    (fun workload ->
      Printf.printf "\n%s workload:\n" (W.kind_long_name workload);
      let series = [ "coarse"; "medium"; "astm" ] in
      let results = Hashtbl.create 16 in
      List.iter
        (fun threads ->
          List.iter
            (fun runtime ->
              let r =
                run_point s
                  (point ~runtime ~workload ~threads ~long_traversals:false
                     ~reduced:true ~index_kind:Sb7_core.Index_intf.Btree ())
              in
              Hashtbl.replace results (threads, runtime) r)
            series)
        s.threads;
      print_series ~row_label:"threads" ~rows:s.threads ~series
        ~cell:(fun threads runtime ->
          RR.throughput (Hashtbl.find results (threads, runtime))))
    W.all_kinds

(* --- §5 anecdote: a single T1 execution under each strategy --- *)

let t1_astm (s : settings) =
  print_header
    "§5 anecdote — latency of ONE T1 execution (single thread) per strategy";
  note
    "the paper: T1 under ASTM took ~30 min vs ~1.5 s under locking (2000x); \
     the ratio below shows the same blow-up, scaled down with the structure";
  let scale, scale_name =
    (* T1's read set under ASTM grows with the structure and validation
       is quadratic in it: at the paper's medium scale one T1 takes tens
       of minutes (their "half an hour" anecdote). The small scale shows
       the same blow-up in seconds, so cap at small. *)
    if s.scale_name = "tiny" then (Sb7_core.Parameters.tiny, "tiny")
    else (Sb7_core.Parameters.small, "small")
  in
  let s = { s with scale; scale_name } in
  (* Run T1 directly through each runtime for an exact measurement. *)
  let measure runtime_name =
    match Sb7_runtime.Registry.find runtime_name with
    | Error e -> failwith e
    | Ok runtime ->
      let module R = (val runtime : Sb7_runtime.Runtime_intf.S) in
      let module I = Sb7_core.Instance.Make (R) in
      let setup = I.Setup.create ~seed:s.seed s.scale in
      let op =
        match I.Operation.by_code "T1" with
        | Some op -> op
        | None -> assert false
      in
      let rng = Sb7_core.Sb_random.create ~seed:7 in
      let t0 = Unix.gettimeofday () in
      let visited =
        R.atomic ~profile:op.I.Operation.profile (fun () ->
            op.I.Operation.run rng setup)
      in
      let dt = Unix.gettimeofday () -. t0 in
      (dt *. 1000., visited)
  in
  Printf.printf "scale: %s\n\n%-10s %16s %12s\n" s.scale_name "strategy"
    "latency [ms]" "parts";
  let base = ref 0. in
  List.iter
    (fun runtime ->
      let ms, visited = measure runtime in
      if runtime = "coarse" then base := ms;
      let ratio = if !base > 0. then ms /. !base else 1. in
      Printf.printf "%-10s %16.2f %12d   (%.1fx vs coarse)\n" runtime ms
        visited ratio)
    [ "seq"; "coarse"; "medium"; "tl2"; "lsa"; "astm" ]

(* --- Quick perf snapshot: the repo's trajectory file --- *)

(* A deterministic, seconds-long point per strategy: fixed seed, one
   thread, bounded op count, tiny scale. With main's [--json] flag the
   numbers land in BENCH_quick.json, so successive PRs accumulate a
   perf trajectory (`BENCH_*.json`) that is cheap enough for CI. *)
let quick (s : settings) =
  print_header
    "Quick perf snapshot — fixed-seed, single-thread, bounded op count \
     (tiny scale, no long traversals)";
  let max_ops = 400 in
  (* Every registered strategy, in registry order — the sweep (and the
     JSON trajectory) picks up new runtimes automatically. *)
  let runtimes = Sb7_runtime.Registry.names in
  let s = { s with scale = Sb7_core.Parameters.tiny; scale_name = "tiny" } in
  let counter_keys =
    [
      "commits";
      "aborts";
      "validation_steps";
      "max_read_set";
      "read_set_entries";
      "dedup_hits";
      "bloom_skips";
      "extensions";
      "clock_reuses";
      "ro_zero_log_commits";
      "ro_inline_revalidations";
      "ro_demotions";
      "checkpoints";
      "partial_aborts";
      "reads_salvaged";
      "resume_failures";
      "epoch_decisions";
      "substrate_switches";
      "descriptor_pool_hits";
      "descriptor_pool_misses";
    ]
  in
  let results =
    List.map
      (fun runtime ->
        let r =
          run_point s
            (point ~runtime ~workload:W.Read_write ~threads:1
               ~long_traversals:false ~max_ops ())
        in
        (runtime, r))
      runtimes
  in
  (* Read-dominated, 2 threads, STM runtimes with a read-only fast
     path: the configuration the zero-log/snapshot modes target (and
     the CI guard that [ro_zero_log_commits] stays > 0 for tl2). *)
  let ro_results =
    List.map
      (fun runtime ->
        let r =
          run_point s
            (point ~runtime ~workload:W.Read_dominated ~threads:2
               ~long_traversals:false ~max_ops ())
        in
        (runtime, r))
      [ "tl2"; "lsa" ]
  in
  (* 1/2/4/8-domain series on the read-dominated workload — the
     paper's evaluation axis (§5). Duration-based points (not op
     budgets) so throughput is comparable across domain counts; short
     windows keep CI cost bounded. *)
  let scaling_threads = [ 1; 2; 4; 8 ] in
  let scaling_settings = { s with duration = 0.4; warmup = 0.1 } in
  let scaling_results =
    List.map
      (fun runtime ->
        ( runtime,
          List.map
            (fun threads ->
              let r =
                run_point scaling_settings
                  (point ~runtime ~workload:W.Read_dominated ~threads
                     ~long_traversals:false ())
              in
              (threads, r))
            scaling_threads ))
      [ "tl2"; "lsa" ]
  in
  (* Long traversals + writers at 2 domains — the configuration the
     checkpoint/partial-abort machinery targets (docs/PERF.md §7). One
     binary, two runs per STM: the baseline flips
     [Stm_intf.partial_abort_enabled] off, so "full abort" is the very
     same code minus checkpoint salvage. Write-dominated keeps enough
     concurrent committers to force mid-traversal conflicts. *)
  let lt_settings = { s with duration = 0.6; warmup = 0.1 } in
  let lt_variants =
    [ ("tl2", false); ("tl2", true); ("lsa", false); ("lsa", true) ]
  in
  let lt_results =
    List.map
      (fun (runtime, checkpointed) ->
        Sb7_stm.Stm_intf.partial_abort_enabled := checkpointed;
        let r =
          run_point lt_settings
            (point ~runtime ~workload:W.Write_dominated ~threads:2 ())
        in
        Sb7_stm.Stm_intf.partial_abort_enabled := true;
        ((runtime, checkpointed), r))
      lt_variants
  in
  (* Phase change: read-dominated then write-dominated at 2 domains —
     the configuration the adaptive tournament targets (docs/PERF.md
     §8). Per-phase totals are summed per runtime; substrate_switches
     comes from the runtime counters captured at the end of each phase
     (Benchmark.run resets runtime stats per run, so the two phases
     are summed here, not double-counted). *)
  let phase_settings = { s with duration = 0.4; warmup = 0.1 } in
  let phase_workloads = [ W.Read_dominated; W.Write_dominated ] in
  let phase_results =
    List.map
      (fun runtime ->
        ( runtime,
          List.map
            (fun workload ->
              let r =
                run_point phase_settings
                  (point ~runtime ~workload ~threads:2
                     ~long_traversals:false ())
              in
              (workload, r))
            phase_workloads ))
      [ "tournament"; "tl2"; "norec"; "etl" ]
  in
  (* Committed ops per second across both phases (op counts summed,
     windows summed), plus the adaptive counters. *)
  let phase_totals series =
    let ops, elapsed, switches, decisions =
      List.fold_left
        (fun (ops, el, sw, dec) ((_ : W.kind), r) ->
          ( ops +. (RR.throughput r *. r.RR.elapsed_s),
            el +. r.RR.elapsed_s,
            sw + RR.counter r "substrate_switches",
            dec + RR.counter r "epoch_decisions" ))
        (0., 0., 0, 0) series
    in
    ((if elapsed > 0. then ops /. elapsed else 0.), switches, decisions)
  in
  (* Allocation probe: every STM substrate twice back-to-back at 2
     domains. The first run's worker domains donate their descriptors
     to the substrate pool on exit, so the second (reported) run's
     workers adopt them and [descriptor_pool_hits] is deterministically
     positive — the CI allocation gate keys on this, and on
     minor-words-per-commit staying put (docs/PERF.md §9). *)
  let alloc_settings = { s with duration = 0.3; warmup = 0. } in
  let alloc_runtimes = [ "tl2"; "lsa"; "norec"; "etl" ] in
  let alloc_results =
    List.map
      (fun runtime ->
        let pt =
          point ~runtime ~workload:W.Read_write ~threads:2
            ~long_traversals:false ()
        in
        ignore (run_point alloc_settings pt);
        (runtime, run_point alloc_settings pt))
      alloc_runtimes
  in
  (* Uniform vs conflict-aware dispatch on the write-dominated mix at 2
     domains — the configuration the static conflict matrix targets
     (docs/FOOTPRINT.md). Duration-based so abort pressure is real. *)
  let dispatch_modes = [ D.Uniform; D.Conflict_aware ] in
  let dispatch_settings = { s with duration = 0.4; warmup = 0.1 } in
  let dispatch_results =
    List.map
      (fun runtime ->
        ( runtime,
          List.map
            (fun dispatch ->
              let r =
                run_point dispatch_settings
                  (point ~runtime ~workload:W.Write_dominated ~threads:2
                     ~long_traversals:false ~dispatch ())
              in
              (dispatch, r))
            dispatch_modes ))
      [ "tl2"; "lsa" ]
  in
  Printf.printf "%-8s %12s %10s %8s %12s %12s %12s %12s %12s\n" "runtime"
    "ops/s" "commits" "aborts" "valid.steps" "rs.entries" "dedup.hits"
    "bloom.skips" "clk.reuses";
  List.iter
    (fun (runtime, r) ->
      let c k = RR.counter r k in
      Printf.printf "%-8s %12.1f %10d %8d %12d %12d %12d %12d %12d\n" runtime
        (RR.throughput r) (c "commits") (c "aborts") (c "validation_steps")
        (c "read_set_entries") (c "dedup_hits") (c "bloom_skips")
        (c "clock_reuses"))
    results;
  Printf.printf
    "\nread-dominated, 2 threads (read-only fast paths; see docs/PERF.md):\n";
  Printf.printf "%-8s %12s %10s %8s %12s %12s %12s %12s\n" "runtime" "ops/s"
    "commits" "aborts" "ro.zerolog" "ro.revals" "ro.demoted" "max.rs";
  List.iter
    (fun (runtime, r) ->
      let c k = RR.counter r k in
      Printf.printf "%-8s %12.1f %10d %8d %12d %12d %12d %12d\n" runtime
        (RR.throughput r) (c "commits") (c "aborts")
        (c "ro_zero_log_commits")
        (c "ro_inline_revalidations")
        (c "ro_demotions") (c "max_read_set"))
    ro_results;
  Printf.printf
    "\nwrite-dominated, 2 domains, uniform vs conflict-aware dispatch \
     (conflict pairs = statically conflicting op pairs runnable \
     concurrently):\n";
  Printf.printf "%-8s %-15s %15s %12s %10s %8s %12s\n" "runtime" "dispatch"
    "conflict.pairs" "ops/s" "commits" "aborts" "abort.rate";
  List.iter
    (fun (runtime, series) ->
      List.iter
        (fun (dispatch, r) ->
          let commits = RR.counter r "commits"
          and aborts = RR.counter r "aborts" in
          let abort_rate =
            if commits + aborts = 0 then 0.
            else float_of_int aborts /. float_of_int (commits + aborts)
          in
          Printf.printf "%-8s %-15s %15d %12.1f %10d %8d %12.4f\n" runtime
            (D.mode_to_string dispatch)
            r.RR.conflict_pairs (RR.throughput r) commits aborts abort_rate)
        series)
    dispatch_results;
  Printf.printf
    "\nallocation probe, read-write, 2 domains, second of two \
     back-to-back runs (pool hits = domains that adopted a recycled \
     descriptor):\n";
  Printf.printf "%-8s %12s %10s %8s %12s %10s %10s %12s\n" "runtime" "ops/s"
    "commits" "aborts" "words/commit" "mgc/1k" "pool.hits" "pool.misses";
  List.iter
    (fun (runtime, r) ->
      let c k = RR.counter r k in
      Printf.printf "%-8s %12.1f %10d %8d %12.1f %10.2f %10d %12d\n" runtime
        (RR.throughput r) (c "commits") (c "aborts")
        (RR.minor_words_per_commit r)
        (RR.minor_gc_per_1k_commits r)
        (c "descriptor_pool_hits")
        (c "descriptor_pool_misses"))
    alloc_results;
  Printf.printf
    "\nlong traversals + writers, 2 domains, full abort vs checkpointed \
     partial abort (mgc/Mgc = minor/major GC per 1k commits):\n";
  Printf.printf "%-8s %-12s %10s %8s %8s %10s %10s %12s %9s %8s %8s\n"
    "runtime" "mode" "ops/s" "commits" "aborts" "chkpoints" "part.abrt"
    "rd.salvaged" "res.fail" "mgc/1k" "Mgc/1k";
  List.iter
    (fun ((runtime, checkpointed), r) ->
      let c k = RR.counter r k in
      Printf.printf
        "%-8s %-12s %10.1f %8d %8d %10d %10d %12d %9d %8.2f %8.2f\n" runtime
        (if checkpointed then "checkpoint" else "full-abort")
        (RR.throughput r) (c "commits") (c "aborts") (c "checkpoints")
        (c "partial_aborts") (c "reads_salvaged") (c "resume_failures")
        (RR.minor_gc_per_1k_commits r)
        (RR.major_gc_per_1k_commits r))
    lt_results;
  Printf.printf
    "\nphase change, 2 domains: read-dominated then write-dominated \
     (adaptive tournament vs static substrates; ops/s over both \
     phases):\n";
  Printf.printf "%-12s %12s %12s %12s %10s %10s\n" "runtime" "ops/s"
    "read.ops/s" "write.ops/s" "switches" "epochs";
  List.iter
    (fun (runtime, series) ->
      let total, switches, decisions = phase_totals series in
      let per_phase w =
        match List.assoc_opt w series with
        | Some r -> RR.throughput r
        | None -> 0.
      in
      Printf.printf "%-12s %12.1f %12.1f %12.1f %10d %10d\n" runtime total
        (per_phase W.Read_dominated)
        (per_phase W.Write_dominated)
        switches decisions)
    phase_results;
  Printf.printf
    "\ndomain scaling, read-dominated (%.1fs per point, %d host cores; \
     imbalance = max per-domain commits / mean):\n"
    scaling_settings.duration
    (Domain.recommended_domain_count ());
  Printf.printf "%-8s %8s %12s %10s %8s %10s %s\n" "runtime" "domains"
    "ops/s" "commits" "aborts" "imbalance" "per-domain commits";
  List.iter
    (fun (runtime, series) ->
      List.iter
        (fun (threads, r) ->
          Printf.printf "%-8s %8d %12.1f %10d %8d %10.2f [%s]\n" runtime
            threads (RR.throughput r) (RR.counter r "commits")
            (RR.counter r "aborts")
            (RR.commit_imbalance r)
            (String.concat "; "
               (Array.to_list
                  (Array.map string_of_int r.RR.per_domain_successes))))
        series)
    scaling_results;
  if !Bench_common.write_json then begin
    let path = "BENCH_quick.json" in
    let oc = open_out path in
    let b = Buffer.create 2048 in
    Buffer.add_string b "{\n";
    Buffer.add_string b "  \"schema\": \"sb7-bench-quick/7\",\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"scale\": %S,\n  \"workload\": %S,\n  \"threads\": 1,\n\
         \  \"max_ops\": %d,\n  \"seed\": %d,\n  \"long_traversals\": false,\n\
         \  \"minor_heap_words\": %d,\n"
         s.scale_name
         (W.kind_to_string W.Read_write)
         max_ops s.seed
         (Option.value s.minor_heap
            ~default:(Gc.get ()).Gc.minor_heap_size));
    Buffer.add_string b "  \"strategies\": [\n";
    List.iteri
      (fun i (runtime, r) ->
        let c k = RR.counter r k in
        let abort_rate =
          let commits = c "commits" and aborts = c "aborts" in
          if commits + aborts = 0 then 0.
          else float_of_int aborts /. float_of_int (commits + aborts)
        in
        Buffer.add_string b
          (Printf.sprintf
             "    {\"runtime\": %S, \"ops_per_s\": %.1f, \"elapsed_s\": \
              %.3f, \"abort_rate\": %.4f%s}%s\n"
             runtime (RR.throughput r) r.RR.elapsed_s abort_rate
             (String.concat ""
                (List.map
                   (fun k -> Printf.sprintf ", %S: %d" k (c k))
                   counter_keys))
             (if i = List.length results - 1 then "" else ",")))
      results;
    Buffer.add_string b "  ],\n";
    Buffer.add_string b
      "  \"ro_read_dominated\": {\"workload\": \"r\", \"threads\": 2, \
       \"strategies\": [\n";
    List.iteri
      (fun i (runtime, r) ->
        let c k = RR.counter r k in
        let abort_rate =
          let commits = c "commits" and aborts = c "aborts" in
          if commits + aborts = 0 then 0.
          else float_of_int aborts /. float_of_int (commits + aborts)
        in
        Buffer.add_string b
          (Printf.sprintf
             "    {\"runtime\": %S, \"ops_per_s\": %.1f, \"elapsed_s\": \
              %.3f, \"abort_rate\": %.4f%s}%s\n"
             runtime (RR.throughput r) r.RR.elapsed_s abort_rate
             (String.concat ""
                (List.map
                   (fun k -> Printf.sprintf ", %S: %d" k (c k))
                   counter_keys))
             (if i = List.length ro_results - 1 then "" else ",")))
      ro_results;
    Buffer.add_string b "  ]},\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"dispatch\": {\"workload\": \"w\", \"threads\": 2, \
          \"duration_s\": %.2f, \"host_cores\": %d, \"strategies\": [\n"
         dispatch_settings.duration
         (Domain.recommended_domain_count ()));
    List.iteri
      (fun i (runtime, series) ->
        Buffer.add_string b
          (Printf.sprintf "    {\"runtime\": %S, \"modes\": [\n" runtime);
        List.iteri
          (fun j (dispatch, r) ->
            let commits = RR.counter r "commits"
            and aborts = RR.counter r "aborts" in
            let abort_rate =
              if commits + aborts = 0 then 0.
              else float_of_int aborts /. float_of_int (commits + aborts)
            in
            Buffer.add_string b
              (Printf.sprintf
                 "      {\"dispatch\": %S, \"conflict_pairs\": %d, \
                  \"ops_per_s\": %.1f, \"commits\": %d, \"aborts\": %d, \
                  \"abort_rate\": %.4f}%s\n"
                 (D.mode_to_string dispatch)
                 r.RR.conflict_pairs (RR.throughput r) commits aborts
                 abort_rate
                 (if j = List.length series - 1 then "" else ",")))
          series;
        Buffer.add_string b
          (Printf.sprintf "    ]}%s\n"
             (if i = List.length dispatch_results - 1 then "" else ",")))
      dispatch_results;
    Buffer.add_string b "  ]},\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"alloc\": {\"workload\": \"rw\", \"threads\": 2, \
          \"duration_s\": %.2f, \"host_cores\": %d, \"strategies\": [\n"
         alloc_settings.duration
         (Domain.recommended_domain_count ()));
    List.iteri
      (fun i (runtime, r) ->
        let c k = RR.counter r k in
        Buffer.add_string b
          (Printf.sprintf
             "    {\"runtime\": %S, \"ops_per_s\": %.1f, \"commits\": %d, \
              \"aborts\": %d, \"minor_words_per_commit\": %.1f, \
              \"minor_gc_per_1k_commits\": %.3f, \"descriptor_pool_hits\": \
              %d, \"descriptor_pool_misses\": %d}%s\n"
             runtime (RR.throughput r) (c "commits") (c "aborts")
             (RR.minor_words_per_commit r)
             (RR.minor_gc_per_1k_commits r)
             (c "descriptor_pool_hits")
             (c "descriptor_pool_misses")
             (if i = List.length alloc_results - 1 then "" else ",")))
      alloc_results;
    Buffer.add_string b "  ]},\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"scaling\": {\"workload\": \"r\", \"duration_s\": %.2f, \
          \"host_cores\": %d, \"threads\": [%s], \"strategies\": [\n"
         scaling_settings.duration
         (Domain.recommended_domain_count ())
         (String.concat ", " (List.map string_of_int scaling_threads)));
    List.iteri
      (fun i (runtime, series) ->
        Buffer.add_string b
          (Printf.sprintf "    {\"runtime\": %S, \"series\": [\n" runtime);
        List.iteri
          (fun j (threads, r) ->
            Buffer.add_string b
              (Printf.sprintf
                 "      {\"threads\": %d, \"ops_per_s\": %.1f, \"commits\": \
                  %d, \"aborts\": %d, \"commit_imbalance\": %.3f, \
                  \"per_domain_commits\": [%s]}%s\n"
                 threads (RR.throughput r)
                 (RR.counter r "commits")
                 (RR.counter r "aborts")
                 (RR.commit_imbalance r)
                 (String.concat ", "
                    (Array.to_list
                       (Array.map string_of_int r.RR.per_domain_successes)))
                 (if j = List.length series - 1 then "" else ",")))
          series;
        Buffer.add_string b
          (Printf.sprintf "    ]}%s\n"
             (if i = List.length scaling_results - 1 then "" else ",")))
      scaling_results;
    Buffer.add_string b "  ]},\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"long_traversals\": {\"workload\": \"w\", \"threads\": 2, \
          \"duration_s\": %.2f, \"host_cores\": %d, \"variants\": [\n"
         lt_settings.duration
         (Domain.recommended_domain_count ()));
    List.iteri
      (fun i ((runtime, checkpointed), r) ->
        let c k = RR.counter r k in
        Buffer.add_string b
          (Printf.sprintf
             "    {\"runtime\": %S, \"mode\": %S, \"ops_per_s\": %.1f, \
              \"commits\": %d, \"aborts\": %d, \"checkpoints\": %d, \
              \"partial_aborts\": %d, \"reads_salvaged\": %d, \
              \"resume_failures\": %d, \"minor_gc_per_1k_commits\": %.3f, \
              \"major_gc_per_1k_commits\": %.3f, \
              \"minor_words_per_commit\": %.1f}%s\n"
             runtime
             (if checkpointed then "checkpoint" else "full-abort")
             (RR.throughput r) (c "commits") (c "aborts") (c "checkpoints")
             (c "partial_aborts") (c "reads_salvaged") (c "resume_failures")
             (RR.minor_gc_per_1k_commits r)
             (RR.major_gc_per_1k_commits r)
             (RR.minor_words_per_commit r)
             (if i = List.length lt_results - 1 then "" else ",")))
      lt_results;
    Buffer.add_string b "  ]},\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"phase_mix\": {\"phases\": [\"r\", \"w\"], \"threads\": 2, \
          \"duration_s\": %.2f, \"host_cores\": %d, \"strategies\": [\n"
         phase_settings.duration
         (Domain.recommended_domain_count ()));
    List.iteri
      (fun i (runtime, series) ->
        let total, switches, decisions = phase_totals series in
        let per_phase w =
          match List.assoc_opt w series with
          | Some r -> RR.throughput r
          | None -> 0.
        in
        Buffer.add_string b
          (Printf.sprintf
             "    {\"runtime\": %S, \"ops_per_s\": %.1f, \
              \"read_ops_per_s\": %.1f, \"write_ops_per_s\": %.1f, \
              \"substrate_switches\": %d, \"epoch_decisions\": %d}%s\n"
             runtime total
             (per_phase W.Read_dominated)
             (per_phase W.Write_dominated)
             switches decisions
             (if i = List.length phase_results - 1 then "" else ",")))
      phase_results;
    Buffer.add_string b "  ]}\n}\n";
    Buffer.output_buffer oc b;
    close_out oc;
    Printf.printf "\nwrote %s\n" path
  end

(* --- Per-operation latency, OO7-style isolated measurement --- *)

let oplat (s : settings) =
  print_header
    "Per-operation mean latency [µs], measured in isolation (OO7-style), \
     single thread";
  note "rows: representative operations; columns: synchronization strategies";
  let runtimes = [ "seq"; "coarse"; "medium"; "fine"; "tl2"; "lsa"; "astm" ] in
  let ops =
    [ "ST1"; "ST3"; "ST9"; "OP1"; "OP2"; "OP7"; "OP11"; "SM3"; "T6"; "Q6" ]
  in
  let repeat = 2_000 in
  Printf.printf "%-6s" "op";
  List.iter (fun r -> Printf.printf " %10s" r) runtimes;
  print_newline ();
  List.iter
    (fun code ->
      Printf.printf "%-6s" code;
      List.iter
        (fun runtime ->
          Sb7_stm.Astm.set_policy Sb7_stm.Contention.Polka;
          let config =
            {
              Sb7_harness.Benchmark.default_config with
              threads = 1;
              max_ops = Some repeat;
              workload = W.Read_write;
              only_op = Some code;
              scale = s.scale;
              scale_name = s.scale_name;
              seed = s.seed;
            }
          in
          match Sb7_harness.Driver.run ~runtime_name:runtime config with
          | Error e -> failwith e
          | Ok r ->
            let stat = r.RR.stats.Sb7_harness.Stats.per_op.(0) in
            let mean_us = Sb7_harness.Stats.mean_latency_ms stat *. 1000. in
            Printf.printf " %10.1f" mean_us)
        runtimes;
      print_newline ())
    ops

(* --- Structure-scale sensitivity --- *)

let scaling (s : settings) =
  print_header
    "Scale sensitivity — throughput [op/s] vs structure size (read-write, \
     no long traversals, 2 threads)";
  note
    "ASTM's gap to the locks widens with scale: its validation cost is \
     quadratic in operation read sets, which grow with the structure";
  let runtimes = [ "coarse"; "tl2"; "astm" ] in
  Printf.printf "%-8s" "scale";
  List.iter (fun r -> Printf.printf " %14s" r) runtimes;
  print_newline ();
  List.iter
    (fun (scale_name, scale) ->
      Printf.printf "%-8s" scale_name;
      let s = { s with scale; scale_name } in
      List.iter
        (fun runtime ->
          let r =
            run_point s
              (point ~runtime ~workload:W.Read_write ~threads:2
                 ~long_traversals:false ())
          in
          Printf.printf " %14.1f" (RR.throughput r))
        runtimes;
      print_newline ())
    Sb7_core.Parameters.presets

(* --- Domain scaling: the paper's §5 evaluation axis --- *)

let domains (s : settings) =
  print_header
    "Domain scaling — throughput [op/s] vs worker domains (read-dominated, \
     no long traversals)";
  note
    "commit imbalance = max per-domain commits / mean; 1.00 is perfectly \
     even progress";
  let runtimes = [ "coarse"; "medium"; "fine"; "tl2"; "lsa" ] in
  let threads_list = [ 1; 2; 4; 8 ] in
  let results =
    List.map
      (fun runtime ->
        ( runtime,
          List.map
            (fun threads ->
              let r =
                run_point s
                  (point ~runtime ~workload:W.Read_dominated ~threads
                     ~long_traversals:false ())
              in
              (threads, r))
            threads_list ))
      runtimes
  in
  print_series ~row_label:"domains" ~rows:threads_list ~series:runtimes
    ~cell:(fun row name ->
      RR.throughput (List.assoc row (List.assoc name results)));
  Printf.printf "\ncommit imbalance (max/mean):\n";
  print_series ~row_label:"domains" ~rows:threads_list ~series:runtimes
    ~cell:(fun row name ->
      RR.commit_imbalance (List.assoc row (List.assoc name results)))

(* --- Ablations --- *)

let ablation_index (s : settings) =
  print_header
    "Ablation — index representation under TL2 (write-dominated, reduced, \
     no long traversals)";
  note
    "avl/flat: whole index in ONE tvar (flat also copies the array per \
     update); btree: one tvar per node (§5's proposed fix)";
  let threads = List.fold_left max 1 s.threads in
  Printf.printf "%-8s %16s %16s %16s\n" "threads" "avl" "flat" "btree";
  Printf.printf "%-8d" threads;
  List.iter
    (fun index_kind ->
      let r =
        run_point s
          (point ~runtime:"tl2" ~workload:W.Write_dominated ~threads
             ~long_traversals:false ~reduced:true ~index_kind ())
      in
      Printf.printf " %16.1f" (RR.throughput r))
    Sb7_core.Index_intf.[ Avl; Flat; Btree ];
  print_newline ()

(* --- §6 future work: the "ultimate baseline" fine-grained strategy --- *)

let baseline (s : settings) =
  print_header
    "§6 extension — the \"ultimate baseline\": fine-grained (per-object \
     2PL) locking vs everything else";
  note
    "the paper leaves a fine-grained strategy as future work; this one \
     locks per tvar with no-wait restart";
  List.iter
    (fun workload ->
      Printf.printf "\n%s workload (long traversals disabled):\n"
        (W.kind_long_name workload);
      let series = [ "coarse"; "medium"; "fine"; "tl2"; "lsa"; "astm" ] in
      let results = Hashtbl.create 16 in
      List.iter
        (fun threads ->
          List.iter
            (fun runtime ->
              let r =
                run_point s
                  (point ~runtime ~workload ~threads ~long_traversals:false ())
              in
              Hashtbl.replace results (threads, runtime) r)
            series)
        s.threads;
      print_series ~row_label:"threads" ~rows:s.threads ~series
        ~cell:(fun threads runtime ->
          RR.throughput (Hashtbl.find results (threads, runtime))))
    W.all_kinds

let ablation_cm (s : settings) =
  print_header
    "Ablation — ASTM contention managers (read-write, reduced, no long \
     traversals)";
  let threads = List.fold_left max 1 s.threads in
  Printf.printf "%-12s %16s %12s %12s\n" "manager" "throughput" "commits"
    "aborts";
  List.iter
    (fun cm ->
      let r =
        run_point s
          (point ~runtime:"astm" ~workload:W.Read_write ~threads
             ~long_traversals:false ~reduced:true ~cm ())
      in
      let counters = r.RR.runtime_counters in
      let get k = Option.value (List.assoc_opt k counters) ~default:0 in
      Printf.printf "%-12s %16.1f %12d %12d\n"
        (Sb7_stm.Contention.policy_to_string cm)
        (RR.throughput r) (get "commits") (get "aborts"))
    Sb7_stm.Contention.all_policies

let ablation_stm (s : settings) =
  print_header
    "Ablation — TL2 vs ASTM vs locking across workloads (reduced, no long \
     traversals)";
  note "TL2 stands in for the proposed fixes the paper cites [5,10,11,13]";
  let threads = List.fold_left max 1 s.threads in
  Printf.printf "%-16s %14s %14s %14s %14s %14s\n" "workload" "coarse"
    "medium" "tl2" "lsa" "astm";
  List.iter
    (fun workload ->
      Printf.printf "%-16s" (W.kind_long_name workload);
      List.iter
        (fun runtime ->
          let r =
            run_point s
              (point ~runtime ~workload ~threads ~long_traversals:false
                 ~reduced:true ())
          in
          Printf.printf " %14.1f" (RR.throughput r))
        [ "coarse"; "medium"; "tl2"; "lsa"; "astm" ];
      print_newline ())
    W.all_kinds

(* --- Ablation — descriptor pooling on/off across the STM substrates --- *)

let alloc (s : settings) =
  print_header
    "Allocation ablation — descriptor pooling on/off per STM substrate \
     (words/commit = minor-heap words allocated per committed op)";
  note
    "pooling off: every domain allocates a fresh descriptor and donates \
     nothing back; within a pooling-on row, later points adopt \
     descriptors donated by earlier ones (same process, same pool)";
  let s = { s with duration = Float.min s.duration 0.4 } in
  Printf.printf "%-8s %-10s %8s %-8s %12s %13s %8s %10s %10s\n" "runtime"
    "workload" "domains" "pooling" "ops/s" "words/commit" "mgc/1k"
    "pool.hits" "pool.misses";
  List.iter
    (fun runtime ->
      List.iter
        (fun workload ->
          List.iter
            (fun threads ->
              List.iter
                (fun pooling ->
                  Sb7_stm.Stm_intf.descriptor_pooling_enabled := pooling;
                  let r =
                    run_point s
                      (point ~runtime ~workload ~threads
                         ~long_traversals:false ())
                  in
                  Sb7_stm.Stm_intf.descriptor_pooling_enabled := true;
                  let c k = RR.counter r k in
                  Printf.printf
                    "%-8s %-10s %8d %-8s %12.1f %13.1f %8.2f %10d %10d\n"
                    runtime
                    (W.kind_to_string workload)
                    threads
                    (if pooling then "on" else "off")
                    (RR.throughput r)
                    (RR.minor_words_per_commit r)
                    (RR.minor_gc_per_1k_commits r)
                    (c "descriptor_pool_hits")
                    (c "descriptor_pool_misses"))
                [ true; false ])
            [ 1; 2; 4 ])
        [ W.Read_dominated; W.Write_dominated ])
    [ "tl2"; "lsa"; "norec"; "etl" ]
