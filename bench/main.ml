(* Benchmark entry point: regenerates every table and figure of the
   paper's evaluation (plus this reproduction's ablations).

     dune exec bench/main.exe                 # everything, quick settings
     dune exec bench/main.exe -- fig4         # one experiment
     dune exec bench/main.exe -- --full all   # the paper's scale (slow)

   Experiments: table2 fig3 fig4 table3 fig6 t1-astm ablation-index
   ablation-cm ablation-stm alloc micro all *)

open Bench_common

let experiments : (string * (settings -> unit)) list =
  [
    ("table2", Experiments.table2);
    ("fig3", Experiments.fig3);
    ("fig4", Experiments.fig4);
    ("table3", Experiments.table3);
    ("fig6", Experiments.fig6);
    ("t1-astm", Experiments.t1_astm);
    ("quick", Experiments.quick);
    ("baseline", Experiments.baseline);
    ("oplat", Experiments.oplat);
    ("scaling", Experiments.scaling);
    ("domains", Experiments.domains);
    ("ablation-index", Experiments.ablation_index);
    ("ablation-cm", Experiments.ablation_cm);
    ("ablation-stm", Experiments.ablation_stm);
    ("alloc", Experiments.alloc);
    ("micro", (fun _ -> Micro.run ()));
    ("sanitize-overhead", (fun _ -> Micro.sanitize_overhead ()));
  ]

(* Pass/fail gates (exit 1 on failure) — run only when named explicitly,
   never as part of "all" or the default sweep. *)
let gates = [ "sanitize-overhead" ]

let usage () =
  Printf.eprintf
    "usage: main.exe [--full] [--duration SECONDS] [--csv FILE] [--json] \
     [--max-overhead-pct P] [EXPERIMENT...]\n\
     experiments: %s all\n"
    (String.concat " " (List.map fst experiments));
  exit 2

let csv_path = ref None

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse settings selected = function
    | [] -> (settings, List.rev selected)
    | "--full" :: rest -> parse full selected rest
    | "--quick" :: rest -> parse quick selected rest
    | "--duration" :: v :: rest -> (
      match float_of_string_opt v with
      | Some d -> parse { settings with duration = d } selected rest
      | None -> usage ())
    | "--csv" :: path :: rest ->
      csv_path := Some path;
      parse settings selected rest
    | "--json" :: rest ->
      Bench_common.write_json := true;
      parse settings selected rest
    | "--max-overhead-pct" :: v :: rest -> (
      match float_of_string_opt v with
      | Some p ->
        Micro.overhead_max_pct := p;
        parse settings selected rest
      | None -> usage ())
    | "all" :: rest ->
      let all =
        List.filter (fun n -> not (List.mem n gates)) (List.map fst experiments)
      in
      parse settings (List.rev all @ selected) rest
    | name :: rest when List.mem_assoc name experiments ->
      parse settings (name :: selected) rest
    | _ -> usage ()
  in
  let settings, selected = parse quick [] args in
  let selected =
    if selected = [] then
      List.filter (fun n -> not (List.mem n gates)) (List.map fst experiments)
    else selected
  in
  Printf.printf
    "STMBench7 experiment harness — scale=%s, %.1fs per point, threads={%s}\n"
    settings.scale_name settings.duration
    (String.concat "," (List.map string_of_int settings.threads));
  Printf.printf
    "(single-CPU containers time-slice domains: expect contention effects, \
     not parallel speedup)\n%!";
  List.iter (fun name -> (List.assoc name experiments) settings) selected;
  match !csv_path with
  | None -> ()
  | Some path -> dump_csv path
