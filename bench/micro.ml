(* Bechamel micro-benchmarks of the operation kernels under the
   sequential runtime: the per-operation costs that the macro figures
   aggregate. One Test.make per operation family. *)

open Bechamel
open Toolkit
module Seq = Sb7_runtime.Seq_runtime
module I = Sb7_core.Instance.Make (Seq)
module P = Sb7_core.Parameters

let setup = lazy (I.Setup.create ~seed:42 P.tiny)

let op_test code =
  let rng = Sb7_core.Sb_random.create ~seed:13 in
  Test.make ~name:code
    (Staged.stage (fun () ->
         let setup = Lazy.force setup in
         let op =
           match I.Operation.by_code code with
           | Some op -> op
           | None -> assert false
         in
         match op.I.Operation.run rng setup with
         | (_ : int) -> ()
         | exception Sb7_core.Common.Operation_failed _ -> ()))

let text_tests =
  let doc = Sb7_core.Text.generate ~phrase:"I am documentation. " ~size:2_000 in
  [
    Test.make ~name:"count_char"
      (Staged.stage (fun () -> ignore (Sb7_core.Text.count_char doc 'I')));
    Test.make ~name:"toggle_i_am"
      (Staged.stage (fun () -> ignore (Sb7_core.Text.toggle_i_am doc)));
  ]

let stm_tests =
  let module T = Sb7_stm.Tl2 in
  let module L = Sb7_stm.Lsa in
  let tv = T.make 0 in
  let atv = Sb7_stm.Astm.make 0 in
  let ltv = L.make 0 in
  let tl2_cells = Array.init 64 T.make in
  let lsa_cells = Array.init 64 L.make in
  [
    Test.make ~name:"tl2-rw-txn"
      (Staged.stage (fun () ->
           T.atomic (fun () -> T.write tv (T.read tv + 1))));
    Test.make ~name:"astm-rw-txn"
      (Staged.stage (fun () ->
           Sb7_stm.Astm.atomic (fun () ->
               Sb7_stm.Astm.write atv (Sb7_stm.Astm.read atv + 1))));
    (* Read-set dedup fast path: 100 reads of one tvar log one entry. *)
    Test.make ~name:"tl2-reread-100"
      (Staged.stage (fun () ->
           T.atomic (fun () ->
               for _ = 1 to 100 do
                 ignore (T.read tv)
               done)));
    (* Bloom-filtered write-set lookup: one buffered write, then 64
       reads of other tvars that must skip the hash probe. *)
    Test.make ~name:"tl2-read-64-after-write"
      (Staged.stage (fun () ->
           T.atomic (fun () ->
               T.write tv 1;
               Array.iter (fun c -> ignore (T.read c)) tl2_cells)));
    (* Array-backed history append (plus the GV4 commit clock). *)
    Test.make ~name:"lsa-rw-txn"
      (Staged.stage (fun () ->
           L.atomic (fun () -> L.write ltv (L.read ltv + 1))));
    (* Circular-buffer version search on the snapshot path. *)
    Test.make ~name:"lsa-snapshot-scan-64"
      (Staged.stage (fun () ->
           L.atomic_snapshot (fun () ->
               Array.iter (fun c -> ignore (L.read c)) lsa_cells)));
    (* Zero-log read-only mode vs the logging update path: the same 64
       reads, no read-set append / dedup probe / commit validation. *)
    Test.make ~name:"tl2-ro-read-64"
      (Staged.stage (fun () ->
           T.atomic_ro (fun () ->
               Array.iter (fun c -> ignore (T.read c)) tl2_cells)));
    Test.make ~name:"tl2-update-read-64"
      (Staged.stage (fun () ->
           T.atomic (fun () ->
               Array.iter (fun c -> ignore (T.read c)) tl2_cells)));
    Test.make ~name:"lsa-ro-read-64"
      (Staged.stage (fun () ->
           L.atomic_ro (fun () ->
               Array.iter (fun c -> ignore (L.read c)) lsa_cells)));
  ]

(* NOrec vs TL2 on the read path, and ETL vs TL2 on a write-then-reread
   mix. norec-read-64 pays one global seqlock load per read but no
   per-tvar vlock probe; tl2-read-64 is the per-tvar pre/post vlock
   protocol. etl-write-conflict updates in place, so the re-reads of
   its own writes are plain loads; tl2-write-conflict buffers the
   writes and must bloom-probe (and hash-hit) them on every re-read. *)
let substrate_tests =
  let module T = Sb7_stm.Tl2 in
  let module N = Sb7_stm.Norec in
  let module E = Sb7_stm.Etl in
  let tl2_cells = Array.init 64 T.make in
  let norec_cells = Array.init 64 N.make in
  let etl_cells = Array.init 64 E.make in
  [
    Test.make ~name:"norec-read-64"
      (Staged.stage (fun () ->
           N.atomic (fun () ->
               Array.iter (fun c -> ignore (N.read c)) norec_cells)));
    Test.make ~name:"tl2-read-64"
      (Staged.stage (fun () ->
           T.atomic (fun () ->
               Array.iter (fun c -> ignore (T.read c)) tl2_cells)));
    Test.make ~name:"etl-write-conflict"
      (Staged.stage (fun () ->
           E.atomic (fun () ->
               for i = 0 to 7 do
                 E.write etl_cells.(i) (E.read etl_cells.(i) + 1)
               done;
               Array.iter (fun c -> ignore (E.read c)) etl_cells)));
    Test.make ~name:"tl2-write-conflict"
      (Staged.stage (fun () ->
           T.atomic (fun () ->
               for i = 0 to 7 do
                 T.write tl2_cells.(i) (T.read tl2_cells.(i) + 1)
               done;
               Array.iter (fun c -> ignore (T.read c)) tl2_cells)));
  ]

(* --- Sanitizer wrapper overhead (tracing OFF) ----------------------

   The disabled wrapper's marginal cost per access is one indirect
   inner-runtime call, one dependent load (the immutable
   [{v; wid; sid}] cell) and one flag check. On the hottest honest
   path — a read-only TL2 transaction doing nothing but 64 reads at
   ~10 ns each — that measures ~16% here (non-flambda; see
   docs/SANITIZER.md for the table and the much smaller end-to-end
   numbers on real operations, which do work between accesses).
   [sanitize_overhead] turns the pair into a pass/fail regression gate
   (min-of-runs hand timing, threshold [overhead_max_pct], default
   lenient because shared CI runners jitter). *)

let ro_profile = Sb7_runtime.Op_profile.make ~name:"bench-ro" ()

(* Both kernels share this functor body, so they run the very same
   instructions calling through the very same indirection — exactly how
   the harness reaches any runtime (through [Instance.Make]'s functor
   parameter). The pair thus isolates the wrapper's marginal cost
   rather than charging it for functor call overhead the bare runtime
   also pays in production. *)
module Ro_kernel (M : Sb7_runtime.Runtime_intf.S) = struct
  let cells = lazy (Array.init 64 (fun _ -> M.make 0))

  let run () =
    let cells = Lazy.force cells in
    M.atomic ~profile:ro_profile (fun () ->
        Array.iter (fun c -> ignore (M.read c)) cells)
end

module Bare = Ro_kernel (Sb7_runtime.Tl2_runtime)
module Wrapped =
  Ro_kernel (Sb7_sanitize.Sanitize.Make (Sb7_runtime.Tl2_runtime))

let bare_ro_kernel = Bare.run
let wrapped_ro_kernel = Wrapped.run

let sanitize_tests =
  [
    Test.make ~name:"tl2-ro-read-64-bare" (Staged.stage bare_ro_kernel);
    Test.make ~name:"tl2-ro-read-64-sanitize-off"
      (Staged.stage wrapped_ro_kernel);
  ]

let overhead_max_pct = ref 25.0

let sanitize_overhead () =
  assert (not (Sb7_sanitize.Trace.enabled ()));
  let iters = 20_000 and reps = 12 in
  let time f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to iters do
        f ()
      done;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  (* Warm both paths (lazy cells, caches, branch predictors). *)
  ignore (time bare_ro_kernel);
  ignore (time wrapped_ro_kernel);
  let tb = time bare_ro_kernel in
  let tw = time wrapped_ro_kernel in
  let pct = (tw -. tb) /. tb *. 100. in
  Printf.printf
    "sanitize-overhead: bare %.1f ns/txn, wrapped(off) %.1f ns/txn, \
     overhead %+.2f%% (max %.1f%%)\n%!"
    (tb /. float_of_int iters *. 1e9)
    (tw /. float_of_int iters *. 1e9)
    pct !overhead_max_pct;
  if pct > !overhead_max_pct then begin
    Printf.printf
      "sanitize-overhead: FAIL — disabled instrumentation is not free \
       enough\n%!";
    exit 1
  end
  else Printf.printf "sanitize-overhead: ok\n%!"

(* Scalability kernels: each shared hot spot the sharding pass removes,
   head-to-head with its replacement, at 1 and 4 domains. One staged
   run = every domain performing [contended_iters] operations (spawn
   and join included), so "time/run" compares like with like across
   the 1d/4d variants of a pair. On a multi-core box the shared
   variants blow up at 4 domains (cache-line ping-pong) while the
   sharded/chunked ones stay near-flat; on a single core the gap is
   only the per-op cost difference. *)
let contended_iters = 65_536

let run_in_domains n (f : unit -> unit) =
  if n = 1 then f ()
  else begin
    let ds = List.init n (fun _ -> Domain.spawn f) in
    List.iter Domain.join ds
  end

let scaling_tests =
  let shared = Atomic.make 0 in
  let sharded = Sb7_stm.Sharded_counter.create () in
  let cas_ids = Atomic.make 0 in
  let chunked = Sb7_stm.Tvar_id.create () in
  let test name n body =
    Test.make ~name (Staged.stage (fun () -> run_in_domains n body))
  in
  let shared_body () =
    for _ = 1 to contended_iters do
      ignore (Atomic.fetch_and_add shared 1)
    done
  in
  let sharded_body () =
    for _ = 1 to contended_iters do
      Sb7_stm.Sharded_counter.incr sharded
    done
  in
  let cas_body () =
    for _ = 1 to contended_iters do
      ignore (Atomic.fetch_and_add cas_ids 1)
    done
  in
  let chunked_body () =
    for _ = 1 to contended_iters do
      ignore (Sb7_stm.Tvar_id.fresh chunked)
    done
  in
  [
    test "counter-shared-atomic-1d" 1 shared_body;
    test "counter-shared-atomic-4d" 4 shared_body;
    test "counter-sharded-1d" 1 sharded_body;
    test "counter-sharded-4d" 4 sharded_body;
    test "tvar-id-global-cas-1d" 1 cas_body;
    test "tvar-id-global-cas-4d" 4 cas_body;
    test "tvar-id-chunked-1d" 1 chunked_body;
    test "tvar-id-chunked-4d" 4 chunked_body;
  ]

(* Allocation-pass kernels: the two representation choices of the
   descriptor pool + SoA logs, isolated head-to-head.

   descriptor-acquire-*: one domain spawn, one tiny transaction, exit.
   The spawn/join dominates both variants equally, so the pair's delta
   is the cost under test: "pooled" adopts the descriptor the previous
   run's domain donated back on exit, "fresh" (pooling disabled)
   allocates and initializes a new one — logs, dedup table, undo
   arrays — every run.

   readset-validate-*: sweep-validate a 256-entry read set laid out as
   an array of boxed entry records (the pre-pass representation) vs
   parallel unboxed arrays (structure-of-arrays, what TL2/LSA/ETL now
   ship). Same checks per entry; the boxed sweep pays one extra
   dependent pointer load each. *)
let alloc_tests =
  let module T = Sb7_stm.Tl2 in
  let tv = T.make 0 in
  let acquire pooled () =
    Sb7_stm.Stm_intf.descriptor_pooling_enabled := pooled;
    let d =
      Domain.spawn (fun () -> T.atomic (fun () -> T.write tv (T.read tv + 1)))
    in
    Domain.join d;
    Sb7_stm.Stm_intf.descriptor_pooling_enabled := true
  in
  let n = 256 in
  let module Boxed = struct
    type entry = { version : int; vlock : int Atomic.t }
  end in
  let boxed =
    Array.init n (fun i ->
        { Boxed.version = 2 * i; vlock = Atomic.make (2 * i) })
  in
  let soa_versions = Array.init n (fun i -> 2 * i) in
  let soa_vlocks = Array.init n (fun i -> Atomic.make (2 * i)) in
  [
    Test.make ~name:"descriptor-acquire-pooled" (Staged.stage (acquire true));
    Test.make ~name:"descriptor-acquire-fresh" (Staged.stage (acquire false));
    Test.make ~name:"readset-validate-boxed-256"
      (Staged.stage (fun () ->
           let ok = ref true in
           for i = 0 to n - 1 do
             let e = boxed.(i) in
             if Atomic.get e.Boxed.vlock <> e.Boxed.version then ok := false
           done;
           assert !ok));
    Test.make ~name:"readset-validate-soa-256"
      (Staged.stage (fun () ->
           let ok = ref true in
           for i = 0 to n - 1 do
             if Atomic.get soa_vlocks.(i) <> soa_versions.(i) then ok := false
           done;
           assert !ok));
  ]

let tests () =
  Test.make_grouped ~name:"kernels"
    ([
       op_test "ST1";
       op_test "ST3";
       op_test "OP1";
       op_test "OP2";
       op_test "OP7";
       op_test "T1";
       op_test "T6";
       op_test "Q6";
       op_test "SM3";
     ]
    @ text_tests @ stm_tests @ substrate_tests @ sanitize_tests
    @ scaling_tests @ alloc_tests)

let run () =
  Bench_common.print_header
    "Micro-benchmarks — per-operation kernel cost (sequential runtime, \
     tiny scale)";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%-28s %18s %10s\n" "kernel" "time/run [ns]" "r^2";
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> t
        | _ -> nan
      in
      let r2 = Option.value (Analyze.OLS.r_square ols) ~default:nan in
      Printf.printf "%-28s %18.1f %10.4f\n" name estimate r2)
    rows
