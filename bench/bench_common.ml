(* Shared machinery for the experiment benches: run settings (quick CI
   defaults vs the paper's full configuration), single-point execution,
   and table printing. *)

module B = Sb7_harness.Benchmark
module W = Sb7_harness.Workload
module RR = Sb7_harness.Run_result
module P = Sb7_core.Parameters

type settings = {
  duration : float; (* seconds per measured point *)
  warmup : float; (* discarded run-in before each measured point *)
  scale : P.t;
  scale_name : string;
  threads : int list; (* thread counts swept by the figures *)
  seed : int;
  minor_heap : int option;
      (* per-domain minor arena (words) every measured point runs
         under; recorded in each result's minor_heap_words column so
         the GC-pressure numbers stay interpretable *)
}

(* Quick settings keep the full sweep under a few minutes on one core;
   [--full] reproduces the paper's medium scale and 1..8 threads. Both
   run with an 8 MiB (2^20-word) minor arena per domain — the
   allocation pass's sizing knob, see docs/PERF.md §9 — so minor-GC
   rates across sections are comparable and not dominated by the 256k
   default arena cycling every few hundred commits. *)
let quick =
  {
    duration = 1.0;
    warmup = 0.;
    scale = P.small;
    scale_name = "small";
    threads = [ 1; 2; 4 ];
    seed = 42;
    minor_heap = Some (1 lsl 20);
  }

let full =
  {
    duration = 4.0;
    warmup = 1.0;
    scale = P.medium;
    scale_name = "medium";
    threads = [ 1; 2; 3; 4; 6; 8 ];
    seed = 42;
    minor_heap = Some (1 lsl 20);
  }

type point_config = {
  runtime : string;
  workload : W.kind;
  threads : int;
  long_traversals : bool;
  structure_mods : bool;
  reduced : bool;
  index_kind : Sb7_core.Index_intf.kind;
  cm : Sb7_stm.Contention.policy;
  max_ops : int option;
  dispatch : Sb7_harness.Dispatch.mode;
}

let point ?(long_traversals = true) ?(structure_mods = true)
    ?(reduced = false) ?(index_kind = Sb7_core.Index_intf.Avl)
    ?(cm = Sb7_stm.Contention.Polka) ?max_ops
    ?(dispatch = Sb7_harness.Dispatch.Uniform) ~runtime ~workload ~threads () =
  {
    runtime;
    workload;
    threads;
    long_traversals;
    structure_mods;
    reduced;
    index_kind;
    cm;
    max_ops;
    dispatch;
  }

(* Every measured point is also collected here so main can dump the
   whole session as CSV (--csv FILE). *)
let collected : RR.t list ref = ref []

(* Set by main's [--json] flag: the [quick] experiment then writes its
   per-strategy snapshot to BENCH_quick.json. *)
let write_json = ref false

(* Run one benchmark point on a fresh structure. *)
let run_point (s : settings) (pt : point_config) : RR.t =
  Sb7_stm.Astm.set_policy pt.cm;
  let config =
    {
      B.threads = pt.threads;
      duration_s = s.duration;
      warmup_s = s.warmup;
      max_ops = pt.max_ops;
      workload = pt.workload;
      mix = W.default_mix;
      long_traversals = pt.long_traversals;
      structure_mods = pt.structure_mods;
      reduced_ops = pt.reduced;
      only_op = None;
      dispatch = pt.dispatch;
      scale = s.scale;
      scale_name = s.scale_name;
      index_kind = pt.index_kind;
      seed = s.seed;
      histograms = false;
      sanitize = false;
      minor_heap = s.minor_heap;
    }
  in
  match Sb7_harness.Driver.run ~runtime_name:pt.runtime config with
  | Ok r ->
    collected := r :: !collected;
    r
  | Error e -> failwith e

let dump_csv path =
  let oc = open_out path in
  Sb7_harness.Csv.write_summary oc (List.rev !collected);
  close_out oc;
  Printf.printf "\nwrote %d data points to %s\n" (List.length !collected) path

(* --- Table printing --- *)

let hrule width = String.make width '-'

let print_header title =
  Printf.printf "\n%s\n%s\n%s\n" (hrule 72) title (hrule 72)

(* Print a table: one row per thread count, one column per series. *)
let print_series ~row_label ~rows ~series ~(cell : int -> string -> float) =
  Printf.printf "%-10s" row_label;
  List.iter (fun name -> Printf.printf " %16s" name) series;
  print_newline ();
  List.iter
    (fun row ->
      Printf.printf "%-10d" row;
      List.iter (fun name -> Printf.printf " %16.1f" (cell row name)) series;
      print_newline ())
    rows

let note fmt = Printf.printf ("note: " ^^ fmt ^^ "\n")
