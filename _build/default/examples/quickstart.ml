(* Quickstart: build an STMBench7 structure, poke at it through the
   public API, run a short benchmark and print the standard report.

     dune exec examples/quickstart.exe *)

module Seq = Sb7_runtime.Seq_runtime
module I = Sb7_core.Instance.Make (Seq)
module B = Sb7_harness.Benchmark
module P = Sb7_core.Parameters

let () =
  (* 1. Build the OO7-derived structure at a small scale. *)
  let setup = I.Setup.create ~seed:1 P.tiny in
  let census = I.Structure_stats.collect setup in
  Format.printf "Built a tiny STMBench7 structure:@.  @[<v>%a@]@.@."
    I.Structure_stats.pp census;

  (* 2. Run a few named operations directly. *)
  let rng = Sb7_core.Sb_random.create ~seed:2 in
  let run code =
    match I.Operation.by_code code with
    | None -> assert false
    | Some op -> (
      match op.I.Operation.run rng setup with
      | result -> Format.printf "  %-4s -> %d@." code result
      | exception Sb7_core.Common.Operation_failed reason ->
        Format.printf "  %-4s -> failed (%s)@." code reason)
  in
  Format.printf "Running a few operations:@.";
  List.iter run [ "T1"; "T6"; "Q7"; "ST1"; "OP1"; "OP4"; "SM1"; "SM3" ];

  (* 3. The structure still satisfies every invariant. *)
  I.Invariants.check_exn setup;
  Format.printf "Structure invariants hold.@.@.";

  (* 4. Run the actual benchmark for a second on two threads with the
     coarse-grained locking strategy and print the Appendix-A report. *)
  let config =
    {
      B.default_config with
      B.threads = 2;
      duration_s = 1.0;
      workload = Sb7_harness.Workload.Read_dominated;
      scale = P.tiny;
      scale_name = "tiny";
    }
  in
  match Sb7_harness.Driver.run ~runtime_name:"coarse" config with
  | Error e -> failwith e
  | Ok result -> Sb7_harness.Report.print Format.std_formatter result
