(* Side-by-side comparison of every synchronization strategy on the
   same workload — a miniature of the paper's evaluation, as library
   code: pick strategies by name, run identical configurations, tabulate.

     dune exec examples/compare_strategies.exe *)

module B = Sb7_harness.Benchmark
module W = Sb7_harness.Workload
module RR = Sb7_harness.Run_result
module P = Sb7_core.Parameters

let strategies = [ "coarse"; "medium"; "fine"; "tl2"; "lsa"; "astm" ]
let threads = 3
let duration = 1.0

let run_one runtime_name workload =
  let config =
    {
      B.default_config with
      B.threads;
      duration_s = duration;
      workload;
      long_traversals = false;
      scale = P.small;
      scale_name = "small";
      seed = 99;
    }
  in
  match Sb7_harness.Driver.run ~runtime_name config with
  | Ok r -> r
  | Error e -> failwith e

let () =
  Format.printf
    "Comparing synchronization strategies: %d threads, %.1fs per cell,@.\
     small scale, long traversals disabled (as in the paper's Figure 4 /@.\
     Table 3 setups).@.@."
    threads duration;
  Format.printf "%-18s" "workload";
  List.iter (fun s -> Format.printf " %12s" s) strategies;
  Format.printf "   [successful op/s]@.";
  List.iter
    (fun workload ->
      Format.printf "%-18s" (W.kind_long_name workload);
      List.iter
        (fun s -> Format.printf " %12.0f" (RR.throughput (run_one s workload)))
        strategies;
      Format.printf "@.")
    W.all_kinds;
  Format.printf
    "@.Expected shape (paper §4–§5): medium ~ coarse at 1 thread and wins@.\
     with concurrency on read-dominated loads; ASTM trails the locks by a@.\
     large factor once update operations and index scans are in the mix.@."
