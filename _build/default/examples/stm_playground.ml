(* Using the STM substrates directly, outside the benchmark: a shared
   order book updated by concurrent traders, written once against the
   common STM signature and executed on both TL2 and ASTM.

   Shows the library API (make/read/write/atomic), exception-based
   rollback, and how the two STMs' cost models diverge as transactions
   read more objects.

     dune exec examples/stm_playground.exe *)

module type STM = Sb7_stm.Stm_intf.S

module Order_book (Stm : STM) = struct
  (* A fixed universe of instruments, each with a price and an
     inventory; traders move inventory between instruments at current
     prices, and an auditor sums the book. *)
  type instrument = {
    price : int Stm.tvar;
    inventory : int Stm.tvar;
  }

  let create_book n =
    Array.init n (fun i ->
        { price = Stm.make (100 + i); inventory = Stm.make 1_000 })

  exception Insufficient

  (* Move [qty] units from instrument [i] to [j], atomically; fails —
     rolling back — if [i] has insufficient inventory. *)
  let transfer book i j qty =
    Stm.atomic (fun () ->
        let have = Stm.read book.(i).inventory in
        if have < qty then raise Insufficient;
        Stm.write book.(i).inventory (have - qty);
        Stm.write book.(j).inventory (Stm.read book.(j).inventory + qty))

  (* A consistent snapshot of total inventory: must be constant. *)
  let total_inventory book =
    Stm.atomic (fun () ->
        Array.fold_left (fun acc ins -> acc + Stm.read ins.inventory) 0 book)

  let run ~traders ~trades =
    let n = 64 in
    let book = create_book n in
    let expected = n * 1_000 in
    let audit_violations = ref 0 in
    let stop = Atomic.make false in
    let auditor () =
      let v = ref 0 in
      while not (Atomic.get stop) do
        if total_inventory book <> expected then incr v
      done;
      !v
    in
    let trader seed () =
      let rng = Sb7_core.Sb_random.create ~seed in
      let rejected = ref 0 in
      for _ = 1 to trades do
        let i = Sb7_core.Sb_random.int rng n
        and j = Sb7_core.Sb_random.int rng n in
        if i <> j then
          match transfer book i j (Sb7_core.Sb_random.in_range rng 1 50) with
          | () -> ()
          | exception Insufficient -> incr rejected
      done;
      !rejected
    in
    Stm.reset_stats ();
    let t0 = Unix.gettimeofday () in
    let audit = Domain.spawn auditor in
    let ds = List.init traders (fun i -> Domain.spawn (trader (i + 1))) in
    let rejected = List.fold_left (fun acc d -> acc + Domain.join d) 0 ds in
    Atomic.set stop true;
    audit_violations := Domain.join audit;
    let dt = Unix.gettimeofday () -. t0 in
    let final = total_inventory book in
    Format.printf
      "%-6s %8.3fs  conserved=%b  audit-violations=%d  rejected=%d@.       \
       %a@."
      Stm.name dt (final = expected) !audit_violations rejected
      Sb7_stm.Stm_stats.pp (Stm.stats ())
end

module Tl2_book = Order_book (Sb7_stm.Tl2)
module Astm_book = Order_book (Sb7_stm.Astm)

let () =
  Format.printf
    "Concurrent order book: %d traders x %d trades + 1 auditing reader@.@."
    3 5_000;
  Tl2_book.run ~traders:3 ~trades:5_000;
  Astm_book.run ~traders:3 ~trades:5_000;
  Format.printf
    "@.Note how ASTM's validation_steps dwarf TL2's: every opened object@.\
     revalidates the whole read list — the O(k^2) behaviour the paper@.\
     blames for ASTM's collapse on STMBench7's long traversals.@."
