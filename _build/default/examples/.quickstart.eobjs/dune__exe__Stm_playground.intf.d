examples/stm_playground.mli:
