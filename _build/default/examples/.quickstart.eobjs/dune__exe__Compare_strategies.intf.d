examples/compare_strategies.mli:
