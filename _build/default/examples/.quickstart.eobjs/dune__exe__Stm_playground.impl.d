examples/stm_playground.ml: Array Atomic Domain Format List Sb7_core Sb7_stm Unix
