examples/snapshot_analytics.ml: Atomic Domain Format List Sb7_core Sb7_harness Sb7_runtime Unix
