examples/custom_stm.ml: Atomic Format List Mutex Sb7_core Sb7_harness Sb7_runtime
