examples/cad_session.mli:
