examples/compare_strategies.ml: Format List Sb7_core Sb7_harness
