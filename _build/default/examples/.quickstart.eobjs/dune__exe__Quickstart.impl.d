examples/quickstart.ml: Format List Sb7_core Sb7_harness Sb7_runtime
