examples/cad_session.ml: Atomic Domain Format List Sb7_core Sb7_runtime Unix
