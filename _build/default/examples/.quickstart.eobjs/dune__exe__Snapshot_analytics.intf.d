examples/snapshot_analytics.mli:
