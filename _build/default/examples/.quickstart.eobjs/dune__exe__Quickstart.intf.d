examples/quickstart.mli:
