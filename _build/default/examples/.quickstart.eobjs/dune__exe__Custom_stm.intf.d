examples/custom_stm.mli:
