(* Consistent analytics over a live design — the long-read-only-traversal
   scenario the paper's §5 identifies as the STM crash test, solved the
   way its reference [11] proposes: multi-version snapshots.

   Editors hammer the structure with update operations while an analyst
   repeatedly runs T1/Q6-class sweeps over the whole design. Under the
   LSA runtime the sweeps run as snapshot transactions: never aborted,
   no validation work. Under TL2 the same sweeps must race their
   read-version against every committing editor. Under ASTM they hit
   the quadratic validation wall.

     dune exec examples/snapshot_analytics.exe *)

module W = Sb7_harness.Workload
module P = Sb7_core.Parameters
module Rand = Sb7_core.Sb_random

let editing_seconds = 1.5

module Scenario (R : Sb7_runtime.Runtime_intf.S) = struct
  module I = Sb7_core.Instance.Make (R)

  let run () =
    let setup = I.Setup.create ~seed:23 P.tiny in
    let op code =
      match I.Operation.by_code code with
      | Some op -> op
      | None -> assert false
    in
    let stop = Atomic.make false in
    let editor seed () =
      let rng = Rand.create ~seed in
      let mix = [ "ST6"; "ST10"; "OP9"; "OP13"; "OP15"; "SM3"; "SM4" ] in
      let edits = ref 0 in
      while not (Atomic.get stop) do
        let o = op (Rand.element rng mix) in
        match
          R.atomic ~profile:o.I.Operation.profile (fun () ->
              o.I.Operation.run rng setup)
        with
        | (_ : int) -> incr edits
        | exception Sb7_core.Common.Operation_failed _ -> ()
      done;
      !edits
    in
    let analyst () =
      let rng = Rand.create ~seed:99 in
      let sweeps = ref 0 in
      let t1 = op "T1" and q6 = op "Q6" in
      while not (Atomic.get stop) do
        let o = if !sweeps mod 2 = 0 then t1 else q6 in
        ignore
          (R.atomic ~profile:o.I.Operation.profile (fun () ->
               o.I.Operation.run rng setup));
        incr sweeps
      done;
      !sweeps
    in
    R.reset_stats ();
    let editors = List.init 2 (fun i -> Domain.spawn (editor (i + 1))) in
    let analyst_d = Domain.spawn analyst in
    Unix.sleepf editing_seconds;
    Atomic.set stop true;
    let edits = List.fold_left (fun acc d -> acc + Domain.join d) 0 editors in
    let sweeps = Domain.join analyst_d in
    I.Invariants.check_exn setup;
    Format.printf "%-8s %8d edits %8d full sweeps   " R.name edits sweeps;
    List.iter (fun (k, v) -> Format.printf " %s=%d" k v) (R.stats ());
    Format.printf "@."
end

module On_tl2 = Scenario (Sb7_runtime.Tl2_runtime)
module On_lsa = Scenario (Sb7_runtime.Lsa_runtime)
module On_astm = Scenario (Sb7_runtime.Astm_runtime)
module On_coarse = Scenario (Sb7_runtime.Coarse_runtime)

let () =
  Format.printf
    "Live analytics: 2 editors updating, 1 analyst sweeping the whole \
     design (T1/Q6) for %.1fs.@.@."
    editing_seconds;
  On_coarse.run ();
  On_tl2.run ();
  On_lsa.run ();
  On_astm.run ();
  Format.printf
    "@.The LSA runtime executes the analyst's sweeps as snapshot@.\
     transactions: compare its validation_steps and aborts against TL2@.\
     (which must keep extending its read version) and ASTM (quadratic@.\
     validation). Coarse locking keeps the analyst fast — by blocking@.\
     every editor for the whole sweep.@."
