(* A CAD working-session simulation — the application class OO7 and
   STMBench7 model (paper §1: "CAD, CAM or CASE software").

   A small design team works concurrently on one shared design under
   the medium-grained locking strategy:
   - browsers navigate the assembly hierarchy and inspect parts
     (short traversals / short operations);
   - editors tweak part attributes and documentation (update
     operations);
   - a librarian occasionally restructures the design (structure
     modifications);
   - a nightly "design-rule check" sweeps the whole design (a long
     traversal).

     dune exec examples/cad_session.exe *)

module R = Sb7_runtime.Medium_runtime
module I = Sb7_core.Instance.Make (R)
module P = Sb7_core.Parameters
module Rand = Sb7_core.Sb_random

let session_seconds = 2.0

let run_op setup rng code =
  match I.Operation.by_code code with
  | None -> invalid_arg code
  | Some op -> (
    match
      R.atomic ~profile:op.I.Operation.profile (fun () ->
          op.I.Operation.run rng setup)
    with
    | (_ : int) -> true
    | exception Sb7_core.Common.Operation_failed _ -> false)

(* Each role loops over its own operation mix until the session ends. *)
let role ~name ~mix ~seed ~setup ~stop () =
  let rng = Rand.create ~seed in
  let done_ = ref 0 and failed = ref 0 in
  while not (Atomic.get stop) do
    let code = Rand.element rng mix in
    if run_op setup rng code then incr done_ else incr failed
  done;
  (name, !done_, !failed)

let () =
  Format.printf "Building the shared design (small scale)...@.";
  let setup = I.Setup.create ~seed:7 P.small in
  let stop = Atomic.make false in
  let roles =
    [
      (* Two browsers: inspect parts and assemblies. *)
      ("browser-1", [ "ST1"; "ST2"; "ST3"; "OP1"; "OP6"; "OP7"; "OP8" ], 11);
      ("browser-2", [ "ST1"; "ST4"; "ST9"; "OP2"; "OP4"; "OP5" ], 12);
      (* Two editors: update part attributes and documentation. *)
      ("editor-1", [ "ST6"; "ST7"; "OP9"; "OP13"; "OP14"; "ST1" ], 13);
      ("editor-2", [ "ST10"; "OP10"; "OP12"; "OP15"; "ST2" ], 14);
      (* The librarian: evolves the structure. *)
      ("librarian", [ "SM1"; "SM2"; "SM3"; "SM4"; "SM5"; "SM6" ], 15);
      (* The design-rule check: repeated full sweeps. *)
      ("rule-check", [ "T1"; "Q6"; "T4" ], 16);
    ]
  in
  Format.printf "Session running for %.1fs with %d concurrent roles...@."
    session_seconds (List.length roles);
  let domains =
    List.map
      (fun (name, mix, seed) ->
        Domain.spawn (role ~name ~mix ~seed ~setup ~stop))
      roles
  in
  Unix.sleepf session_seconds;
  Atomic.set stop true;
  let outcomes = List.map Domain.join domains in
  Format.printf "@.%-12s %12s %12s@." "role" "completed" "failed";
  List.iter
    (fun (name, ok, failed) ->
      Format.printf "%-12s %12d %12d@." name ok failed)
    outcomes;

  (* The concurrent session left the design consistent. *)
  I.Invariants.check_exn setup;
  Format.printf "@.Design invariants hold after the session.@.";
  let census = I.Structure_stats.collect setup in
  Format.printf "Final design census:@.  @[<v>%a@]@." I.Structure_stats.pp
    census;
  let lock_stats = R.stats () in
  Format.printf "Lock statistics:";
  List.iter (fun (k, v) -> Format.printf " %s=%d" k v) lock_stats;
  Format.printf "@."
