bench/micro.ml: Analyze Bechamel Bench_common Benchmark Hashtbl Instance Lazy List Measure Option Printf Sb7_core Sb7_runtime Sb7_stm Staged Test Time Toolkit
