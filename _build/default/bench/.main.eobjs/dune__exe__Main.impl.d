bench/main.ml: Array Bench_common Experiments List Micro Printf String Sys
