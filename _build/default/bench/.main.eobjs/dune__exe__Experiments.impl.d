bench/experiments.ml: Array Bench_common Hashtbl List Option Printf Sb7_core Sb7_harness Sb7_runtime Sb7_stm String Unix
