bench/main.mli:
