bench/bench_common.ml: List Printf Sb7_core Sb7_harness Sb7_stm String
