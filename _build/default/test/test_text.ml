(* Tests for text generation and the textual update operations,
   including qcheck properties. *)

module Text = Sb7_core.Text

let test_generate_size () =
  List.iter
    (fun size ->
      Alcotest.(check int)
        (Printf.sprintf "size %d" size)
        size
        (String.length (Text.generate ~phrase:"I am here. " ~size)))
    [ 1; 5; 11; 100; 1000; 12345 ]

let test_generate_zero () =
  Alcotest.(check string) "empty" "" (Text.generate ~phrase:"x" ~size:0)

let test_generate_repeats () =
  let t = Text.generate ~phrase:"abc" ~size:8 in
  Alcotest.(check string) "prefix repetition" "abcabcab" t

let test_document_phrase_has_i_am () =
  let p = Text.document_phrase ~part_id:7 in
  Alcotest.(check bool) "contains 'I am'" true
    (fst (Text.replace_all p ~old_s:"I am" ~new_s:"X") <> p)

let test_count_char () =
  Alcotest.(check int) "count" 3 (Text.count_char "aIbIcI" 'I');
  Alcotest.(check int) "none" 0 (Text.count_char "abc" 'I');
  Alcotest.(check int) "empty" 0 (Text.count_char "" 'I')

let test_first_last_equal () =
  Alcotest.(check bool) "equal" true (Text.first_last_equal "abca");
  Alcotest.(check bool) "differs" false (Text.first_last_equal "abc");
  Alcotest.(check bool) "single" true (Text.first_last_equal "x");
  Alcotest.(check bool) "empty" false (Text.first_last_equal "")

let test_replace_all_basic () =
  let t, n = Text.replace_all "I am what I am" ~old_s:"I am" ~new_s:"This is" in
  Alcotest.(check string) "text" "This is what This is" t;
  Alcotest.(check int) "count" 2 n

let test_replace_all_none () =
  let t, n = Text.replace_all "nothing here" ~old_s:"I am" ~new_s:"X" in
  Alcotest.(check string) "unchanged" "nothing here" t;
  Alcotest.(check int) "count 0" 0 n

let test_replace_all_overlap () =
  (* Non-overlapping, left to right. *)
  let t, n = Text.replace_all "aaa" ~old_s:"aa" ~new_s:"b" in
  Alcotest.(check string) "left to right" "ba" t;
  Alcotest.(check int) "one replacement" 1 n

let test_toggle_i_am_round_trip () =
  let original = Text.generate ~phrase:(Text.document_phrase ~part_id:3) ~size:500 in
  let once, n1 = Text.toggle_i_am original in
  let twice, n2 = Text.toggle_i_am once in
  Alcotest.(check bool) "first toggle replaced something" true (n1 > 0);
  Alcotest.(check int) "second toggle reverses count" n1 n2;
  Alcotest.(check string) "round trip" original twice

let test_toggle_i_case_round_trip () =
  let original = Text.generate ~phrase:(Text.manual_phrase ~module_id:1) ~size:500 in
  let once, n1 = Text.toggle_i_case original in
  let twice, n2 = Text.toggle_i_case once in
  Alcotest.(check bool) "changed" true (n1 > 0);
  Alcotest.(check int) "reversed count" n1 n2;
  Alcotest.(check string) "round trip" original twice

let test_swap_char () =
  let t, n = Text.swap_char "IiIi" ~from_c:'I' ~to_c:'i' in
  Alcotest.(check string) "all lowered" "iiii" t;
  Alcotest.(check int) "two changes" 2 n

(* qcheck properties *)

let printable_string = QCheck.string_gen_of_size (QCheck.Gen.int_bound 200) QCheck.Gen.printable

let prop_count_char_matches_fold =
  QCheck.Test.make ~name:"count_char matches naive fold" ~count:500
    printable_string (fun s ->
      Text.count_char s 'I'
      = String.fold_left (fun acc c -> if c = 'I' then acc + 1 else acc) 0 s)

let prop_replace_count_consistent =
  QCheck.Test.make ~name:"replace_all count = occurrences removed" ~count:500
    printable_string (fun s ->
      let replaced, n = Text.replace_all s ~old_s:"ab" ~new_s:"" in
      String.length replaced = String.length s - (2 * n))

let prop_replace_removes_pattern =
  QCheck.Test.make ~name:"replace_all leaves no pattern when new avoids it"
    ~count:500 printable_string (fun s ->
      let replaced, _ = Text.replace_all s ~old_s:"ab" ~new_s:"_" in
      let _, again = Text.replace_all replaced ~old_s:"ab" ~new_s:"_" in
      again = 0)

let prop_generate_size =
  QCheck.Test.make ~name:"generate length" ~count:200
    QCheck.(pair (int_range 1 50) (int_range 0 500))
    (fun (plen, size) ->
      let phrase = String.make plen 'x' in
      String.length (Text.generate ~phrase ~size) = size)

let prop_swap_char_involutive_count =
  QCheck.Test.make ~name:"swap_char back and forth restores" ~count:500
    printable_string (fun s ->
      (* Only valid when the target character is absent initially. *)
      QCheck.assume (not (String.contains s '\001'));
      let once, n1 = Text.swap_char s ~from_c:'a' ~to_c:'\001' in
      let back, n2 = Text.swap_char once ~from_c:'\001' ~to_c:'a' in
      n1 = n2 && String.equal back s)

let qcheck_suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_count_char_matches_fold;
      prop_replace_count_consistent;
      prop_replace_removes_pattern;
      prop_generate_size;
      prop_swap_char_involutive_count;
    ]

let suite =
  [
    Alcotest.test_case "generate size" `Quick test_generate_size;
    Alcotest.test_case "generate zero" `Quick test_generate_zero;
    Alcotest.test_case "generate repeats phrase" `Quick test_generate_repeats;
    Alcotest.test_case "document phrase has 'I am'" `Quick
      test_document_phrase_has_i_am;
    Alcotest.test_case "count_char" `Quick test_count_char;
    Alcotest.test_case "first_last_equal" `Quick test_first_last_equal;
    Alcotest.test_case "replace_all basic" `Quick test_replace_all_basic;
    Alcotest.test_case "replace_all none" `Quick test_replace_all_none;
    Alcotest.test_case "replace_all no overlap" `Quick test_replace_all_overlap;
    Alcotest.test_case "toggle I am round trip" `Quick
      test_toggle_i_am_round_trip;
    Alcotest.test_case "toggle I case round trip" `Quick
      test_toggle_i_case_round_trip;
    Alcotest.test_case "swap_char" `Quick test_swap_char;
  ]

let () = Alcotest.run "text" [ ("text", suite); ("text-props", qcheck_suite) ]
