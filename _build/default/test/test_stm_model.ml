(* Model-based property tests: random transaction programs executed
   single-threaded through each STM (and the fine-grained 2PL runtime)
   must behave exactly like a plain array of integers — including
   read-your-writes within a transaction and all-or-nothing rollback on
   abort. *)

let n_cells = 8

type instr =
  | Read of int (* cell *)
  | Write of int * int (* cell, value *)
  | Incr of int (* read-modify-write *)

type program = {
  instrs : instr list;
  abort : bool; (* raise after the last instruction *)
}

let instr_gen =
  QCheck.Gen.(
    frequency
      [
        (2, map (fun c -> Read c) (int_bound (n_cells - 1)));
        ( 2,
          map2 (fun c v -> Write (c, v)) (int_bound (n_cells - 1))
            (int_bound 1000) );
        (1, map (fun c -> Incr c) (int_bound (n_cells - 1)));
      ])

let program_gen =
  QCheck.Gen.(
    map2
      (fun instrs abort -> { instrs; abort })
      (list_size (int_bound 20) instr_gen)
      (frequency [ (3, return false); (1, return true) ]))

let instr_print = function
  | Read c -> Printf.sprintf "R%d" c
  | Write (c, v) -> Printf.sprintf "W%d=%d" c v
  | Incr c -> Printf.sprintf "I%d" c

let program_print p =
  Printf.sprintf "[%s]%s"
    (String.concat ";" (List.map instr_print p.instrs))
    (if p.abort then "!" else "")

let programs_arbitrary =
  QCheck.make
    QCheck.Gen.(list_size (int_bound 25) program_gen)
    ~print:(fun ps -> String.concat " " (List.map program_print ps))

exception Rollback

(* The reference semantics: an int array with transactional behaviour
   simulated by copy. Returns (final state, read outputs). *)
let run_model programs =
  let state = Array.make n_cells 0 in
  let outputs = ref [] in
  List.iter
    (fun p ->
      let view = Array.copy state in
      let local = ref [] in
      List.iter
        (fun instr ->
          match instr with
          | Read c -> local := view.(c) :: !local
          | Write (c, v) -> view.(c) <- v
          | Incr c -> view.(c) <- view.(c) + 1)
        p.instrs;
      if not p.abort then begin
        Array.blit view 0 state 0 n_cells;
        outputs := !local @ !outputs
      end)
    programs;
  (Array.to_list state, !outputs)

(* Execute through an implementation with [atomic], [read], [write]. *)
let run_impl ~atomic ~read ~write ~make programs =
  let cells = Array.init n_cells (fun _ -> make 0) in
  let outputs = ref [] in
  List.iter
    (fun p ->
      match
        atomic (fun () ->
            let local = ref [] in
            List.iter
              (fun instr ->
                match instr with
                | Read c -> local := read cells.(c) :: !local
                | Write (c, v) -> write cells.(c) v
                | Incr c -> write cells.(c) (read cells.(c) + 1))
              p.instrs;
            if p.abort then raise Rollback;
            !local)
      with
      | local -> outputs := local @ !outputs
      | exception Rollback -> ())
    programs;
  (Array.to_list (Array.map read cells), !outputs)

let stm_prop name ~atomic ~read ~write ~make =
  QCheck.Test.make ~name ~count:300 programs_arbitrary (fun programs ->
      run_impl ~atomic ~read ~write ~make programs = run_model programs)

let tl2_prop =
  stm_prop "tl2 matches the sequential model" ~atomic:Sb7_stm.Tl2.atomic
    ~read:Sb7_stm.Tl2.read ~write:Sb7_stm.Tl2.write ~make:Sb7_stm.Tl2.make

let astm_prop =
  stm_prop "astm matches the sequential model" ~atomic:Sb7_stm.Astm.atomic
    ~read:Sb7_stm.Astm.read ~write:Sb7_stm.Astm.write ~make:Sb7_stm.Astm.make

let lsa_prop =
  stm_prop "lsa matches the sequential model" ~atomic:Sb7_stm.Lsa.atomic
    ~read:Sb7_stm.Lsa.read ~write:Sb7_stm.Lsa.write ~make:Sb7_stm.Lsa.make

let fine_prop =
  let module F = Sb7_runtime.Fine_runtime in
  let profile =
    Sb7_runtime.Op_profile.make ~name:"model"
      ~writes:[ Sb7_runtime.Op_profile.Manual ] ()
  in
  stm_prop "fine 2PL matches the sequential model"
    ~atomic:(fun f -> F.atomic ~profile f)
    ~read:F.read ~write:F.write ~make:F.make

(* Snapshot transactions must agree with update transactions on pure
   reads. *)
let lsa_snapshot_prop =
  QCheck.Test.make ~name:"lsa snapshot reads = committed state" ~count:300
    programs_arbitrary (fun programs ->
      let module L = Sb7_stm.Lsa in
      let cells = Array.init n_cells (fun _ -> L.make 0) in
      List.iter
        (fun p ->
          match
            L.atomic (fun () ->
                List.iter
                  (fun instr ->
                    match instr with
                    | Read c -> ignore (L.read cells.(c))
                    | Write (c, v) -> L.write cells.(c) v
                    | Incr c -> L.write cells.(c) (L.read cells.(c) + 1))
                  p.instrs;
                if p.abort then raise Rollback)
          with
          | () -> ()
          | exception Rollback -> ())
        programs;
      let direct = Array.to_list (Array.map L.read cells) in
      let snapshot =
        L.atomic_snapshot (fun () ->
            Array.to_list (Array.map L.read cells))
      in
      direct = snapshot)

let () =
  Alcotest.run "stm_model"
    [
      ( "model",
        List.map QCheck_alcotest.to_alcotest
          [ tl2_prop; astm_prop; lsa_prop; fine_prop; lsa_snapshot_prop ] );
    ]
