(* Tests for the three index implementations, run against a common
   model (Stdlib.Map), under the sequential runtime. The B+tree also
   gets its structural invariant checked after every qcheck scenario. *)

module Seq = Sb7_runtime.Seq_runtime
module Index_intf = Sb7_core.Index_intf
module Idx = Sb7_core.Index.Make (Seq)
module Btree = Sb7_core.Btree_index.Make (Seq)
module IM = Map.Make (Int)

let kinds = Index_intf.all_kinds

let kind_name = Index_intf.kind_to_string

let with_each_kind f =
  List.iter (fun kind -> f kind (Idx.create kind ~name:"t" ~cmp:Int.compare)) kinds

let test_empty () =
  with_each_kind (fun kind idx ->
      let n = kind_name kind in
      Alcotest.(check (option int)) (n ^ ": get on empty") None (idx.get 1);
      Alcotest.(check int) (n ^ ": size 0") 0 (idx.size ());
      Alcotest.(check bool) (n ^ ": remove on empty") false (idx.remove 1);
      Alcotest.(check (list (pair int int))) (n ^ ": range empty") []
        (idx.range 0 100))

let test_put_get () =
  with_each_kind (fun kind idx ->
      let n = kind_name kind in
      idx.put 1 10;
      idx.put 2 20;
      Alcotest.(check (option int)) (n ^ ": get 1") (Some 10) (idx.get 1);
      Alcotest.(check (option int)) (n ^ ": get 2") (Some 20) (idx.get 2);
      Alcotest.(check (option int)) (n ^ ": miss") None (idx.get 3);
      Alcotest.(check int) (n ^ ": size") 2 (idx.size ()))

let test_put_replaces () =
  with_each_kind (fun kind idx ->
      let n = kind_name kind in
      idx.put 1 10;
      idx.put 1 11;
      Alcotest.(check (option int)) (n ^ ": replaced") (Some 11) (idx.get 1);
      Alcotest.(check int) (n ^ ": no duplicate") 1 (idx.size ()))

let test_remove () =
  with_each_kind (fun kind idx ->
      let n = kind_name kind in
      idx.put 1 10;
      idx.put 2 20;
      Alcotest.(check bool) (n ^ ": removed") true (idx.remove 1);
      Alcotest.(check (option int)) (n ^ ": gone") None (idx.get 1);
      Alcotest.(check (option int)) (n ^ ": kept") (Some 20) (idx.get 2);
      Alcotest.(check bool) (n ^ ": re-remove") false (idx.remove 1);
      Alcotest.(check int) (n ^ ": size") 1 (idx.size ()))

let test_iter_ascending () =
  with_each_kind (fun kind idx ->
      let n = kind_name kind in
      List.iter (fun k -> idx.put k (k * 10)) [ 5; 1; 4; 2; 3 ];
      let keys = ref [] in
      idx.iter (fun k _ -> keys := k :: !keys);
      Alcotest.(check (list int)) (n ^ ": ascending") [ 1; 2; 3; 4; 5 ]
        (List.rev !keys))

let test_range () =
  with_each_kind (fun kind idx ->
      let n = kind_name kind in
      List.iter (fun k -> idx.put k k) (List.init 20 (fun i -> i * 2));
      Alcotest.(check (list (pair int int)))
        (n ^ ": inclusive range")
        [ (4, 4); (6, 6); (8, 8) ]
        (idx.range 4 8);
      Alcotest.(check (list (pair int int)))
        (n ^ ": range with odd bounds")
        [ (4, 4); (6, 6); (8, 8) ]
        (idx.range 3 9))

let test_many_sequential () =
  with_each_kind (fun kind idx ->
      let n = kind_name kind in
      let count = 2_000 in
      for i = 1 to count do
        idx.put i i
      done;
      Alcotest.(check int) (n ^ ": size") count (idx.size ());
      for i = 1 to count do
        if idx.get i <> Some i then
          Alcotest.failf "%s: missing key %d" n i
      done;
      for i = 1 to count / 2 do
        ignore (idx.remove (i * 2))
      done;
      Alcotest.(check int) (n ^ ": size after deletes") (count / 2)
        (idx.size ());
      Alcotest.(check (option int)) (n ^ ": odd kept") (Some 3) (idx.get 3);
      Alcotest.(check (option int)) (n ^ ": even gone") None (idx.get 4))

let test_string_keys () =
  with_each_kind (fun _ _ -> ());
  List.iter
    (fun kind ->
      let idx = Idx.create kind ~name:"s" ~cmp:String.compare in
      idx.put "beta" 2;
      idx.put "alpha" 1;
      Alcotest.(check (option int))
        (kind_name kind ^ ": string key") (Some 1) (idx.get "alpha");
      let keys = ref [] in
      idx.iter (fun k _ -> keys := k :: !keys);
      Alcotest.(check (list string))
        (kind_name kind ^ ": string order") [ "alpha"; "beta" ]
        (List.rev !keys))
    kinds

(* --- qcheck model equivalence, per kind --- *)

type op =
  | Put of int * int
  | Remove of int
  | Get of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun k v -> Put (k, v)) (int_bound 100) (int_bound 10_000));
        (2, map (fun k -> Remove k) (int_bound 100));
        (1, map (fun k -> Get k) (int_bound 100));
      ])

let op_print = function
  | Put (k, v) -> Printf.sprintf "Put(%d,%d)" k v
  | Remove k -> Printf.sprintf "Remove %d" k
  | Get k -> Printf.sprintf "Get %d" k

let ops_arbitrary =
  QCheck.make
    QCheck.Gen.(list_size (int_bound 400) op_gen)
    ~print:(fun l -> String.concat ";" (List.map op_print l))

let model_check kind ops =
  let idx = Idx.create kind ~name:"m" ~cmp:Int.compare in
  let model = ref IM.empty in
  let ok = ref true in
  List.iter
    (function
      | Put (k, v) ->
        idx.put k v;
        model := IM.add k v !model
      | Remove k ->
        let was = idx.remove k in
        if was <> IM.mem k !model then ok := false;
        model := IM.remove k !model
      | Get k -> if idx.get k <> IM.find_opt k !model then ok := false)
    ops;
  (* Final state equivalence. *)
  let bindings = ref [] in
  idx.iter (fun k v -> bindings := (k, v) :: !bindings);
  !ok
  && List.rev !bindings = IM.bindings !model
  && idx.size () = IM.cardinal !model
  && idx.range 10 60
     = List.filter (fun (k, _) -> k >= 10 && k <= 60) (IM.bindings !model)

let prop_model kind =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s agrees with Map" (kind_name kind))
    ~count:200 ops_arbitrary (model_check kind)

let prop_btree_invariants =
  QCheck.Test.make ~name:"btree structural invariants" ~count:200
    ops_arbitrary (fun ops ->
      let idx, check = Btree.create_with_check ~name:"b" ~cmp:Int.compare in
      List.iter
        (function
          | Put (k, v) -> idx.put k v
          | Remove k -> ignore (idx.remove k)
          | Get k -> ignore (idx.get k))
        ops;
      check ())

let qcheck_suite =
  List.map QCheck_alcotest.to_alcotest
    (List.map prop_model kinds @ [ prop_btree_invariants ])

let test_btree_splits_deep () =
  (* Push well past several split levels. *)
  let idx, check = Btree.create_with_check ~name:"deep" ~cmp:Int.compare in
  let n = 10_000 in
  for i = n downto 1 do
    idx.put i i
  done;
  Alcotest.(check bool) "well formed after splits" true (check ());
  Alcotest.(check int) "all present" n (idx.size ());
  Alcotest.(check (option int)) "spot check" (Some 7_777) (idx.get 7_777)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "put/get" `Quick test_put_get;
    Alcotest.test_case "put replaces" `Quick test_put_replaces;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "iter ascending" `Quick test_iter_ascending;
    Alcotest.test_case "range" `Quick test_range;
    Alcotest.test_case "many sequential" `Quick test_many_sequential;
    Alcotest.test_case "string keys" `Quick test_string_keys;
    Alcotest.test_case "btree deep splits" `Quick test_btree_splits_deep;
  ]

let () =
  Alcotest.run "indexes"
    [ ("indexes", suite); ("index-props", qcheck_suite) ]
