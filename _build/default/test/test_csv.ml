(* Tests for latency percentiles and the CSV export. *)

module Stats = Sb7_harness.Stats
module Csv = Sb7_harness.Csv
module B = Sb7_harness.Benchmark
module W = Sb7_harness.Workload
module P = Sb7_core.Parameters

(* --- Percentiles --- *)

let record_many s latencies_ms =
  List.iter
    (fun ms -> Stats.record s ~op:0 ~latency_s:(ms /. 1000.) ~ok:true)
    latencies_ms

let test_percentile_basic () =
  let s = Stats.create ~ops:1 ~histograms:true in
  (* 100 samples: 1..100 ms (bucket k-1 each). *)
  record_many s (List.init 100 (fun i -> float_of_int i +. 0.5));
  let st = s.Stats.per_op.(0) in
  (match Stats.percentile_ms st 0.5 with
  | Some p -> Alcotest.(check bool) "p50 around 50" true (p >= 49. && p <= 52.)
  | None -> Alcotest.fail "no p50");
  (match Stats.percentile_ms st 0.99 with
  | Some p -> Alcotest.(check bool) "p99 around 99" true (p >= 98. && p <= 100.)
  | None -> Alcotest.fail "no p99");
  match Stats.percentile_ms st 1.0 with
  | Some p -> Alcotest.(check bool) "p100 is max bucket" true (p >= 99.)
  | None -> Alcotest.fail "no p100"

let test_percentile_single_sample () =
  let s = Stats.create ~ops:1 ~histograms:true in
  Stats.record s ~op:0 ~latency_s:0.0035 ~ok:true;
  match Stats.percentile_ms s.Stats.per_op.(0) 0.5 with
  | Some p -> Alcotest.(check (float 0.01)) "single sample bucket" 4. p
  | None -> Alcotest.fail "no percentile"

let test_percentile_without_histograms () =
  let s = Stats.create ~ops:1 ~histograms:false in
  Stats.record s ~op:0 ~latency_s:0.001 ~ok:true;
  Alcotest.(check bool) "None without histograms" true
    (Stats.percentile_ms s.Stats.per_op.(0) 0.5 = None)

let test_percentile_no_successes () =
  let s = Stats.create ~ops:1 ~histograms:true in
  Stats.record s ~op:0 ~latency_s:0.001 ~ok:false;
  Alcotest.(check bool) "None without successes" true
    (Stats.percentile_ms s.Stats.per_op.(0) 0.5 = None)

let test_mean_latency () =
  let s = Stats.create ~ops:1 ~histograms:false in
  Stats.record s ~op:0 ~latency_s:0.010 ~ok:true;
  Stats.record s ~op:0 ~latency_s:0.020 ~ok:true;
  Alcotest.(check (float 0.001)) "mean" 15.
    (Stats.mean_latency_ms s.Stats.per_op.(0));
  let empty = Stats.create ~ops:1 ~histograms:false in
  Alcotest.(check (float 0.001)) "empty mean" 0.
    (Stats.mean_latency_ms empty.Stats.per_op.(0))

(* --- CSV --- *)

let result =
  lazy
    (let config =
       {
         B.default_config with
         B.threads = 2;
         max_ops = Some 200;
         workload = W.Read_write;
         scale = P.tiny;
         scale_name = "tiny";
         seed = 4;
       }
     in
     match Sb7_harness.Driver.run ~runtime_name:"coarse" config with
     | Ok r -> r
     | Error e -> failwith e)

let fields line = String.split_on_char ',' line

let test_summary_row_fields () =
  let r = Lazy.force result in
  let row = Csv.summary_row r in
  let fs = fields row in
  Alcotest.(check int) "field count matches header"
    (List.length (fields Csv.header_summary))
    (List.length fs);
  Alcotest.(check string) "runtime" "coarse" (List.nth fs 0);
  Alcotest.(check string) "workload" "rw" (List.nth fs 1);
  Alcotest.(check string) "threads" "2" (List.nth fs 2);
  Alcotest.(check string) "scale" "tiny" (List.nth fs 3)

let test_per_op_rows () =
  let r = Lazy.force result in
  let rows = Csv.per_op_rows r in
  Alcotest.(check int) "one row per op" (Array.length r.ops)
    (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check int) "field count"
        (List.length (fields Csv.header_per_op))
        (List.length (fields row)))
    rows

let test_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote doubled" "\"a\"\"b\"" (Csv.escape "a\"b")

let test_write_summary () =
  let r = Lazy.force result in
  let buf = Buffer.create 256 in
  let path = Filename.temp_file "sb7" ".csv" in
  let oc = open_out path in
  Csv.write_summary oc [ r; r ];
  close_out oc;
  let ic = open_in path in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header first" Csv.header_summary (List.hd lines)

let suite =
  [
    Alcotest.test_case "percentile basic" `Quick test_percentile_basic;
    Alcotest.test_case "percentile single sample" `Quick
      test_percentile_single_sample;
    Alcotest.test_case "percentile without histograms" `Quick
      test_percentile_without_histograms;
    Alcotest.test_case "percentile without successes" `Quick
      test_percentile_no_successes;
    Alcotest.test_case "mean latency" `Quick test_mean_latency;
    Alcotest.test_case "summary row fields" `Slow test_summary_row_fields;
    Alcotest.test_case "per-op rows" `Slow test_per_op_rows;
    Alcotest.test_case "escaping" `Quick test_escape;
    Alcotest.test_case "write summary file" `Slow test_write_summary;
  ]

let () = Alcotest.run "csv" [ ("csv", suite) ]
