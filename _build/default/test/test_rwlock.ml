(* Tests for the writer-preferring read-write lock, including
   multi-domain mutual-exclusion checks. *)

module Rwlock = Sb7_rwlock.Rwlock

let test_read_reentrant_across_releases () =
  let l = Rwlock.create () in
  Rwlock.acquire_read l;
  Alcotest.(check int) "one reader" 1 (Rwlock.readers l);
  Rwlock.release_read l;
  Alcotest.(check int) "no readers" 0 (Rwlock.readers l)

let test_multiple_readers () =
  let l = Rwlock.create () in
  Rwlock.acquire_read l;
  Rwlock.acquire_read l;
  Alcotest.(check int) "two readers" 2 (Rwlock.readers l);
  Rwlock.release_read l;
  Rwlock.release_read l

let test_writer_flag () =
  let l = Rwlock.create () in
  Rwlock.acquire_write l;
  Alcotest.(check bool) "writer active" true (Rwlock.writer_active l);
  Rwlock.release_write l;
  Alcotest.(check bool) "writer done" false (Rwlock.writer_active l)

let test_with_lock_releases_on_exception () =
  let l = Rwlock.create () in
  (try Rwlock.with_lock l Write (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "released after raise" false (Rwlock.writer_active l);
  Rwlock.with_lock l Read (fun () ->
      Alcotest.(check int) "can reacquire" 1 (Rwlock.readers l))

let test_with_lock_returns () =
  let l = Rwlock.create () in
  Alcotest.(check int) "result" 42 (Rwlock.with_lock l Read (fun () -> 42))

let test_acquire_by_mode () =
  let l = Rwlock.create () in
  Rwlock.acquire l Read;
  Alcotest.(check int) "read mode" 1 (Rwlock.readers l);
  Rwlock.release l Read;
  Rwlock.acquire l Write;
  Alcotest.(check bool) "write mode" true (Rwlock.writer_active l);
  Rwlock.release l Write

let test_name () =
  Alcotest.(check string) "named" "foo"
    (Rwlock.name (Rwlock.create ~name:"foo" ()));
  Alcotest.(check string) "default" "rwlock" (Rwlock.name (Rwlock.create ()))

(* Mutual exclusion: concurrent writers incrementing a plain counter
   must not lose updates. *)
let test_writers_exclusive () =
  let l = Rwlock.create () in
  let counter = ref 0 in
  let iterations = 20_000 and domains = 4 in
  let worker () =
    for _ = 1 to iterations do
      Rwlock.with_lock l Write (fun () -> counter := !counter + 1)
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost updates" (iterations * domains) !counter

(* Readers never observe a writer's intermediate state: the writer
   keeps an invariant pair (a, b) with a = b outside the critical
   section. *)
let test_readers_see_consistent_state () =
  let l = Rwlock.create () in
  let a = ref 0 and b = ref 0 in
  let stop = Atomic.make false in
  let violations = ref 0 in
  let reader () =
    let v = ref 0 in
    while not (Atomic.get stop) do
      Rwlock.with_lock l Read (fun () -> if !a <> !b then incr v)
    done;
    !v
  in
  let writer () =
    for i = 1 to 10_000 do
      Rwlock.with_lock l Write (fun () ->
          a := i;
          (* a <> b is visible only inside the critical section *)
          b := i)
    done
  in
  let readers = List.init 2 (fun _ -> Domain.spawn reader) in
  let w = Domain.spawn writer in
  Domain.join w;
  Atomic.set stop true;
  List.iter (fun d -> violations := !violations + Domain.join d) readers;
  Alcotest.(check int) "no torn reads" 0 !violations

(* Writer preference: with a continuous stream of readers, a writer
   still gets the lock promptly. *)
let test_writer_not_starved () =
  let l = Rwlock.create () in
  let stop = Atomic.make false in
  let reader () =
    while not (Atomic.get stop) do
      Rwlock.with_lock l Read (fun () -> ())
    done
  in
  let readers = List.init 3 (fun _ -> Domain.spawn reader) in
  let acquired = ref false in
  let w =
    Domain.spawn (fun () ->
        Rwlock.with_lock l Write (fun () -> acquired := true))
  in
  Domain.join w;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Alcotest.(check bool) "writer ran" true !acquired

let test_waiting_writers_counter () =
  let l = Rwlock.create () in
  Rwlock.acquire_read l;
  let started = Atomic.make false in
  let w =
    Domain.spawn (fun () ->
        Atomic.set started true;
        Rwlock.acquire_write l;
        Rwlock.release_write l)
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  (* Give the writer time to block. *)
  Unix.sleepf 0.05;
  Alcotest.(check int) "one writer queued" 1 (Rwlock.waiting_writers l);
  Rwlock.release_read l;
  Domain.join w;
  Alcotest.(check int) "queue drained" 0 (Rwlock.waiting_writers l)

let suite =
  [
    Alcotest.test_case "read acquire/release" `Quick
      test_read_reentrant_across_releases;
    Alcotest.test_case "multiple readers" `Quick test_multiple_readers;
    Alcotest.test_case "writer flag" `Quick test_writer_flag;
    Alcotest.test_case "with_lock releases on exception" `Quick
      test_with_lock_releases_on_exception;
    Alcotest.test_case "with_lock returns result" `Quick test_with_lock_returns;
    Alcotest.test_case "acquire by mode" `Quick test_acquire_by_mode;
    Alcotest.test_case "names" `Quick test_name;
    Alcotest.test_case "writers are exclusive" `Slow test_writers_exclusive;
    Alcotest.test_case "readers see consistent state" `Slow
      test_readers_see_consistent_state;
    Alcotest.test_case "writer not starved" `Slow test_writer_not_starved;
    Alcotest.test_case "waiting writers counter" `Slow
      test_waiting_writers_counter;
  ]

let () = Alcotest.run "rwlock" [ ("rwlock", suite) ]
