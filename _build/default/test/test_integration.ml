(* Integration tests: long random operation mixes, checked against the
   full structural-invariant suite afterwards — single-threaded under
   the sequential runtime (with every index kind and workload), and
   multi-domain under each concurrent runtime via the harness. *)

module P = Sb7_core.Parameters
module W = Sb7_harness.Workload
module B = Sb7_harness.Benchmark

(* --- Single-threaded soup under the sequential runtime --- *)

module Seq = Sb7_runtime.Seq_runtime
module I = Sb7_core.Instance.Make (Seq)
module Rand = Sb7_core.Sb_random

let soup ~index_kind ~workload ~ops_count ~seed =
  let setup = I.Setup.create ~index_kind ~seed P.tiny in
  let descs =
    I.Operation.all
    |> List.map (fun (op : I.Operation.t) ->
           {
             W.code = op.code;
             category = op.category;
             read_only = I.Operation.read_only op;
           })
    |> Array.of_list
  in
  let all = Array.of_list I.Operation.all in
  let cdf = W.cdf (W.ratios workload descs) in
  let rng = Rand.create ~seed:(seed * 31) in
  let successes = ref 0 and failures = ref 0 in
  for _ = 1 to ops_count do
    let u = float_of_int (Rand.int rng 1_000_000) /. 1_000_000. in
    let op = all.(W.sample cdf u) in
    match op.I.Operation.run rng setup with
    | (_ : int) -> incr successes
    | exception Sb7_core.Common.Operation_failed _ -> incr failures
  done;
  (setup, !successes, !failures)

let test_soup_keeps_invariants () =
  List.iter
    (fun index_kind ->
      List.iter
        (fun workload ->
          let setup, successes, _ =
            soup ~index_kind ~workload ~ops_count:3_000 ~seed:17
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s ran"
               (Sb7_core.Index_intf.kind_to_string index_kind)
               (W.kind_to_string workload))
            true (successes > 0);
          match I.Invariants.check setup with
          | [] -> ()
          | vs ->
            Alcotest.failf "%s/%s: %s"
              (Sb7_core.Index_intf.kind_to_string index_kind)
              (W.kind_to_string workload)
              (String.concat "; " vs))
        W.all_kinds)
    Sb7_core.Index_intf.all_kinds

let test_soup_deterministic () =
  let run () =
    let _, s, f =
      soup ~index_kind:Sb7_core.Index_intf.Avl ~workload:W.Read_write
        ~ops_count:2_000 ~seed:3
    in
    (s, f)
  in
  let a = run () and b = run () in
  Alcotest.(check (pair int int)) "same outcome per seed" a b

(* --- Multi-domain runs through the harness, per runtime --- *)

let run_concurrent runtime_name ~threads ~workload =
  let config =
    {
      B.default_config with
      B.threads;
      max_ops = Some 800;
      workload;
      scale = P.tiny;
      scale_name = "tiny";
      seed = 33;
      (* Long traversals at tiny scale are cheap; keep them on to cover
         every operation, but see the ASTM note below. *)
      long_traversals = runtime_name <> "astm";
    }
  in
  match Sb7_harness.Driver.run ~runtime_name config with
  | Error e -> Alcotest.fail e
  | Ok result -> result

let test_concurrent_run runtime_name () =
  let result = run_concurrent runtime_name ~threads:3 ~workload:W.Read_write in
  Alcotest.(check bool) "operations completed" true
    (Sb7_harness.Stats.total_successes result.Sb7_harness.Run_result.stats > 0);
  Alcotest.(check int) "threads recorded" 3
    result.Sb7_harness.Run_result.threads

(* For the lock runtimes and STM runtimes we additionally run the
   invariant checker on a shared setup we control directly. *)
module Check_concurrent (R : Sb7_runtime.Runtime_intf.S) = struct
  module CI = Sb7_core.Instance.Make (R)
  module CB = B.Make (R)

  let go ~threads ~workload =
    let config =
      {
        B.default_config with
        B.threads;
        max_ops = Some 600;
        workload;
        scale = P.tiny;
        scale_name = "tiny";
        seed = 51;
        long_traversals = false;
      }
    in
    let setup = CB.build_setup config in
    let result = CB.run ~setup config in
    Alcotest.(check bool)
      (R.name ^ " made progress")
      true
      (Sb7_harness.Stats.total_successes result.Sb7_harness.Run_result.stats
      > 0);
    match CI.Invariants.check setup with
    | [] -> ()
    | vs -> Alcotest.failf "%s: %s" R.name (String.concat "; " vs)
end

module Check_coarse = Check_concurrent (Sb7_runtime.Coarse_runtime)
module Check_medium = Check_concurrent (Sb7_runtime.Medium_runtime)
module Check_tl2 = Check_concurrent (Sb7_runtime.Tl2_runtime)
module Check_astm = Check_concurrent (Sb7_runtime.Astm_runtime)

let test_invariants_after_coarse () =
  Check_coarse.go ~threads:4 ~workload:W.Write_dominated

let test_invariants_after_medium () =
  Check_medium.go ~threads:4 ~workload:W.Write_dominated

let test_invariants_after_tl2 () =
  Check_tl2.go ~threads:4 ~workload:W.Write_dominated

let test_invariants_after_astm () =
  Check_astm.go ~threads:3 ~workload:W.Read_write

let test_failed_ops_recorded () =
  (* At tiny scale with 50% ID slack, random-ID operations must fail
     sometimes, and failures must be counted, not crash the harness. *)
  let result = run_concurrent "coarse" ~threads:2 ~workload:W.Write_dominated in
  Alcotest.(check bool) "failures observed" true
    (Sb7_harness.Stats.total_failures result.Sb7_harness.Run_result.stats > 0)

let test_all_registered_runtimes_run () =
  List.iter
    (fun name ->
      if name <> "seq" then begin
        let result = run_concurrent name ~threads:2 ~workload:W.Read_dominated in
        Alcotest.(check string) "runtime name" name
          result.Sb7_harness.Run_result.runtime_name
      end)
    Sb7_runtime.Registry.names

let suite =
  [
    Alcotest.test_case "seq soup keeps invariants (3 kinds x 3 workloads)"
      `Slow test_soup_keeps_invariants;
    Alcotest.test_case "seq soup deterministic" `Quick test_soup_deterministic;
    Alcotest.test_case "coarse concurrent run" `Slow
      (test_concurrent_run "coarse");
    Alcotest.test_case "medium concurrent run" `Slow
      (test_concurrent_run "medium");
    Alcotest.test_case "tl2 concurrent run" `Slow (test_concurrent_run "tl2");
    Alcotest.test_case "astm concurrent run" `Slow
      (test_concurrent_run "astm");
    Alcotest.test_case "invariants after coarse" `Slow
      test_invariants_after_coarse;
    Alcotest.test_case "invariants after medium" `Slow
      test_invariants_after_medium;
    Alcotest.test_case "invariants after tl2" `Slow test_invariants_after_tl2;
    Alcotest.test_case "invariants after astm" `Slow
      test_invariants_after_astm;
    Alcotest.test_case "failed operations recorded" `Slow
      test_failed_ops_recorded;
    Alcotest.test_case "all runtimes run" `Slow
      test_all_registered_runtimes_run;
  ]

let () = Alcotest.run "integration" [ ("integration", suite) ]
