(* Tests for the transactional ID pool. *)

module Seq = Sb7_runtime.Seq_runtime
module Pool = Sb7_core.Id_pool.Make (Seq)

let test_initial_state () =
  let p = Pool.create ~name:"p" ~capacity:5 in
  Alcotest.(check int) "capacity" 5 (Pool.capacity p);
  Alcotest.(check int) "all available" 5 (Pool.available p)

let test_get_unique_in_range () =
  let p = Pool.create ~name:"p" ~capacity:10 in
  let ids = List.init 10 (fun _ -> Pool.get p) in
  Alcotest.(check int) "exhausted" 0 (Pool.available p);
  let sorted = List.sort_uniq compare ids in
  Alcotest.(check int) "all unique" 10 (List.length sorted);
  List.iter
    (fun id ->
      Alcotest.(check bool) "in range" true (id >= 1 && id <= 10))
    ids

let test_exhaustion_fails () =
  let p = Pool.create ~name:"p" ~capacity:2 in
  ignore (Pool.get p);
  ignore (Pool.get p);
  match Pool.get p with
  | _ -> Alcotest.fail "expected Operation_failed"
  | exception Sb7_core.Common.Operation_failed _ -> ()

let test_put_back_recycles () =
  let p = Pool.create ~name:"p" ~capacity:3 in
  let a = Pool.get p in
  let _b = Pool.get p in
  let _c = Pool.get p in
  Alcotest.(check int) "empty" 0 (Pool.available p);
  Pool.put_back p a;
  Alcotest.(check int) "one back" 1 (Pool.available p);
  Alcotest.(check int) "recycled id" a (Pool.get p)

let test_get_put_cycles () =
  let p = Pool.create ~name:"p" ~capacity:4 in
  for _ = 1 to 100 do
    let id = Pool.get p in
    Pool.put_back p id
  done;
  Alcotest.(check int) "back to full" 4 (Pool.available p)

(* Under an STM runtime, an aborted transaction returns its IDs. *)
module Tl2 = Sb7_runtime.Tl2_runtime
module Tl2_pool = Sb7_core.Id_pool.Make (Tl2)

let test_rollback_returns_ids () =
  let p = Tl2_pool.create ~name:"p" ~capacity:3 in
  (try
     Sb7_stm.Tl2.atomic (fun () ->
         ignore (Tl2_pool.get p);
         ignore (Tl2_pool.get p);
         failwith "rollback")
   with Failure _ -> ());
  Alcotest.(check int) "ids restored on abort" 3 (Tl2_pool.available p)

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "get unique in range" `Quick test_get_unique_in_range;
    Alcotest.test_case "exhaustion fails" `Quick test_exhaustion_fails;
    Alcotest.test_case "put_back recycles" `Quick test_put_back_recycles;
    Alcotest.test_case "get/put cycles" `Quick test_get_put_cycles;
    Alcotest.test_case "stm rollback returns ids" `Quick
      test_rollback_returns_ids;
  ]

let () = Alcotest.run "id_pool" [ ("id_pool", suite) ]
