(* Tests for the shared traversal helpers. *)

module Seq = Sb7_runtime.Seq_runtime
module I = Sb7_core.Instance.Make (Seq)
module P = Sb7_core.Parameters
module T = I.Types
module Rand = Sb7_core.Sb_random

let params = P.tiny
let setup = lazy (I.Setup.create ~seed:31 params)

let test_dfs_visits_each_part_once () =
  let setup = Lazy.force setup in
  setup.I.Setup.cp_id_index.iter (fun _ cp ->
      let seen = Hashtbl.create 16 in
      let visited =
        I.Nav.dfs_atomic_graph (Seq.read cp.T.cp_root_part) (fun p ->
            if Hashtbl.mem seen p.T.ap_id then
              Alcotest.failf "part %d visited twice" p.T.ap_id;
            Hashtbl.replace seen p.T.ap_id ())
      in
      Alcotest.(check int) "count = distinct parts" (Hashtbl.length seen)
        visited;
      Alcotest.(check int) "whole graph" params.P.num_atomic_per_comp visited)

let test_descend_reaches_base_assembly () =
  let setup = Lazy.force setup in
  let rng = Rand.create ~seed:5 in
  for _ = 1 to 50 do
    let ba = I.Nav.random_base_assembly rng setup in
    match setup.I.Setup.ba_id_index.get ba.T.ba_id with
    | Some _ -> ()
    | None -> Alcotest.fail "descent reached an unindexed base assembly"
  done

let test_descend_covers_all_leaves () =
  let setup = Lazy.force setup in
  let rng = Rand.create ~seed:6 in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 2_000 do
    let ba = I.Nav.random_base_assembly rng setup in
    Hashtbl.replace seen ba.T.ba_id ()
  done;
  Alcotest.(check int) "every leaf eventually reached"
    (P.initial_base_assemblies params)
    (Hashtbl.length seen)

let test_random_component_failure () =
  let setup = Lazy.force setup in
  let rng = Rand.create ~seed:7 in
  (* A fresh base assembly with no components triggers the specified
     failure. *)
  let parent =
    match Seq.read setup.I.Setup.module_.T.mod_design_root.T.ca_sub with
    | T.Complex c :: _ -> c
    | _ -> Alcotest.fail "unexpected tree shape"
  in
  let empty_ba =
    I.Setup.new_base_assembly setup rng
      ~id:(I.Id_pool.get setup.I.Setup.ba_pool)
      ~parent ~components:[]
  in
  (match I.Nav.random_component rng empty_ba with
  | _ -> Alcotest.fail "expected Operation_failed"
  | exception Sb7_core.Common.Operation_failed _ -> ());
  (* Clean up so other tests see a consistent structure. *)
  I.Setup.detach_assembly parent (T.Base empty_ba);
  I.Setup.dispose_base_assembly setup empty_ba;
  I.Invariants.check_exn setup

let test_ascend_dedup_and_reaches_root () =
  let setup = Lazy.force setup in
  let all_bas = ref [] in
  setup.I.Setup.ba_id_index.iter (fun _ ba -> all_bas := ba :: !all_bas);
  let visited = ref [] in
  let count =
    I.Nav.ascend_complex_assemblies !all_bas (fun ca ->
        visited := ca.T.ca_id :: !visited)
  in
  (* From every base assembly, the union of ascendants is the whole set
     of complex assemblies, each exactly once. *)
  Alcotest.(check int) "all complex assemblies"
    (P.initial_complex_assemblies params)
    count;
  Alcotest.(check int) "no duplicates" count
    (List.length (List.sort_uniq compare !visited));
  let root_id = setup.I.Setup.module_.T.mod_design_root.T.ca_id in
  Alcotest.(check bool) "root included" true (List.mem root_id !visited)

let test_ascend_single_base () =
  let setup = Lazy.force setup in
  let some_ba = ref None in
  setup.I.Setup.ba_id_index.iter (fun _ ba ->
      if !some_ba = None then some_ba := Some ba);
  match !some_ba with
  | None -> Alcotest.fail "no base assembly"
  | Some ba ->
    (* One leaf's ascendant chain has exactly (levels - 1) nodes. *)
    Alcotest.(check int) "chain length"
      (params.P.num_assm_levels - 1)
      (I.Nav.ascend_complex_assemblies [ ba ] (fun _ -> ()))

let test_lookup_helpers_hit_and_miss () =
  let setup = Lazy.force setup in
  let rng = Rand.create ~seed:11 in
  let hits = ref 0 and misses = ref 0 in
  for _ = 1 to 300 do
    match I.Nav.lookup_atomic_part rng setup with
    | p ->
      incr hits;
      (match setup.I.Setup.ap_id_index.get p.T.ap_id with
      | Some p' when p' == p -> ()
      | _ -> Alcotest.fail "lookup returned a part not in the index")
    | exception Sb7_core.Common.Operation_failed _ -> incr misses
  done;
  (* tiny scale has 50% ID slack: both outcomes must occur. *)
  Alcotest.(check bool) "hits occur" true (!hits > 0);
  Alcotest.(check bool) "misses occur" true (!misses > 0)

let test_random_ids_span_capacity () =
  let setup = Lazy.force setup in
  let rng = Rand.create ~seed:13 in
  let max_seen = ref 0 in
  for _ = 1 to 5_000 do
    let id = I.Nav.random_atomic_part_id rng setup in
    if id > !max_seen then max_seen := id;
    if id < 1 then Alcotest.fail "id below 1"
  done;
  let capacity = I.Id_pool.capacity setup.I.Setup.ap_pool in
  Alcotest.(check bool) "draws reach beyond the live range" true
    (!max_seen > P.initial_atomic_parts params);
  Alcotest.(check bool) "draws within capacity" true (!max_seen <= capacity)

let suite =
  [
    Alcotest.test_case "dfs visits once" `Quick test_dfs_visits_each_part_once;
    Alcotest.test_case "descend reaches a leaf" `Quick
      test_descend_reaches_base_assembly;
    Alcotest.test_case "descend covers all leaves" `Quick
      test_descend_covers_all_leaves;
    Alcotest.test_case "random_component failure" `Quick
      test_random_component_failure;
    Alcotest.test_case "ascend dedups and reaches root" `Quick
      test_ascend_dedup_and_reaches_root;
    Alcotest.test_case "ascend chain length" `Quick test_ascend_single_base;
    Alcotest.test_case "lookups hit and miss" `Quick
      test_lookup_helpers_hit_and_miss;
    Alcotest.test_case "random ids span capacity" `Quick
      test_random_ids_span_capacity;
  ]

let () = Alcotest.run "nav" [ ("nav", suite) ]
