(* Concurrency-granularity tests for the index implementations under
   the TL2 runtime: correctness under parallel transactional updates,
   and the conflict-surface difference between one-big-object indexes
   (avl, flat) and the per-node B+tree — the measurable substance of
   the paper's §5 "B-trees with each node synchronized separately"
   proposal. *)

module R = Sb7_runtime.Tl2_runtime
module Stm = Sb7_stm.Tl2
module Idx = Sb7_core.Index.Make (R)
module Index_intf = Sb7_core.Index_intf

let parallel_inserts kind ~domains ~per_domain =
  let index = Idx.create kind ~name:"conc" ~cmp:Int.compare in
  Stm.reset_stats ();
  let worker d () =
    (* Disjoint key ranges: logically independent updates. *)
    for i = 1 to per_domain do
      let key = (d * 1_000_000) + i in
      Stm.atomic (fun () -> index.Index_intf.put key (key * 2))
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  (index, Stm.stats ())

let kind_name = Index_intf.kind_to_string

let test_parallel_inserts_correct () =
  List.iter
    (fun kind ->
      let n = kind_name kind in
      let index, _ = parallel_inserts kind ~domains:3 ~per_domain:300 in
      Alcotest.(check int) (n ^ ": all keys present") 900
        (index.Index_intf.size ());
      for d = 0 to 2 do
        for i = 1 to 300 do
          let key = (d * 1_000_000) + i in
          if index.Index_intf.get key <> Some (key * 2) then
            Alcotest.failf "%s: key %d missing or wrong" n key
        done
      done)
    Index_intf.all_kinds

(* Deterministic conflict-surface check. Two transactions update
   *pre-existing* keys in distant regions; their commits are forced to
   cross (tx1's body completes only after tx2 has committed). On the
   one-big-object AVL index tx2's commit rewrites the single root tvar
   that tx1 read, so tx1 must abort and retry; on the per-node B+tree
   the two updates touch disjoint leaves and tx1 commits first try. *)
let crossing_commit_aborts kind =
  let index = Idx.create kind ~name:"cross" ~cmp:Int.compare in
  (* Pre-populate so updates replace in place: no structural change,
     no leaf splits. *)
  for k = 0 to 999 do
    index.Index_intf.put k k
  done;
  Stm.reset_stats ();
  let tx2_committed = Atomic.make false in
  let tx1_entered = Atomic.make false in
  let tx1 =
    Domain.spawn (fun () ->
        Stm.atomic (fun () ->
            index.Index_intf.put 5 50;
            Atomic.set tx1_entered true;
            (* Hold the transaction open until tx2 has committed. *)
            while not (Atomic.get tx2_committed) do
              Domain.cpu_relax ()
            done))
  in
  while not (Atomic.get tx1_entered) do
    Domain.cpu_relax ()
  done;
  Stm.atomic (fun () -> index.Index_intf.put 995 9950);
  Atomic.set tx2_committed true;
  Domain.join tx1;
  let stats = Stm.stats () in
  (* Both updates must have landed regardless of strategy. *)
  Alcotest.(check (option int))
    (Index_intf.kind_to_string kind ^ ": tx1 update landed")
    (Some 50) (index.Index_intf.get 5);
  Alcotest.(check (option int))
    (Index_intf.kind_to_string kind ^ ": tx2 update landed")
    (Some 9950) (index.Index_intf.get 995);
  stats.Sb7_stm.Stm_stats.aborts

let test_btree_conflicts_less_than_avl () =
  Alcotest.(check bool) "avl: crossing commits conflict" true
    (crossing_commit_aborts Index_intf.Avl >= 1);
  Alcotest.(check int) "btree: disjoint leaves do not conflict" 0
    (crossing_commit_aborts Index_intf.Btree)

let test_concurrent_mixed_ops () =
  (* Readers + writers + removers on overlapping ranges: the final
     state must be exactly what a sequential replay of the committed
     multiset of operations would give — checked via a key-space sweep
     where every key is written with its own value, so any torn or
     lost update is visible. *)
  List.iter
    (fun kind ->
      let index = Idx.create kind ~name:"mix" ~cmp:Int.compare in
      let keys = 64 in
      let writer seed () =
        let rng = Sb7_core.Sb_random.create ~seed in
        for _ = 1 to 1_000 do
          let k = Sb7_core.Sb_random.int rng keys in
          Stm.atomic (fun () ->
              if Sb7_core.Sb_random.percent rng 20 then
                ignore (index.Index_intf.remove k)
              else index.Index_intf.put k (k * 10))
        done
      in
      let reader () =
        let bad = ref 0 in
        for _ = 1 to 500 do
          Stm.atomic (fun () ->
              index.Index_intf.iter (fun k v ->
                  if v <> k * 10 then incr bad))
        done;
        !bad
      in
      let ws = List.init 2 (fun i -> Domain.spawn (writer (i + 1))) in
      let rd = Domain.spawn reader in
      List.iter Domain.join ws;
      let bad = Domain.join rd in
      Alcotest.(check int)
        (kind_name kind ^ ": values always consistent")
        0 bad;
      index.Index_intf.iter (fun k v ->
          if v <> k * 10 then
            Alcotest.failf "%s: final value broken at %d" (kind_name kind) k))
    Index_intf.all_kinds

let suite =
  [
    Alcotest.test_case "parallel inserts correct" `Slow
      test_parallel_inserts_correct;
    Alcotest.test_case "btree conflicts <= avl" `Slow
      test_btree_conflicts_less_than_avl;
    Alcotest.test_case "concurrent mixed operations" `Slow
      test_concurrent_mixed_ops;
  ]

let () = Alcotest.run "index_concurrency" [ ("index-conc", suite) ]
