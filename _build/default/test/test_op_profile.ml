(* Tests for operation lock-domain profiles and the medium-grained
   locking plan. *)

module P = Sb7_runtime.Op_profile

let test_read_only () =
  let ro = P.make ~name:"r" ~reads:[ P.Manual ] () in
  let w = P.make ~name:"w" ~reads:[ P.Manual ] ~writes:[ P.Documents ] () in
  let sm = P.make ~name:"s" ~structural:true () in
  Alcotest.(check bool) "reads only" true (P.read_only ro);
  Alcotest.(check bool) "writes" false (P.read_only w);
  Alcotest.(check bool) "structural" false (P.read_only sm)

let test_structural_plan_empty () =
  let sm = P.make ~name:"sm" ~reads:[ P.Manual ] ~structural:true () in
  Alcotest.(check int) "no domain locks for SMs" 0
    (List.length (P.locking_plan sm))

let test_plan_write_wins () =
  let p =
    P.make ~name:"p" ~reads:[ P.Atomic_parts ] ~writes:[ P.Atomic_parts ] ()
  in
  match P.locking_plan p with
  | [ (P.Atomic_parts, `Write) ] -> ()
  | plan ->
    Alcotest.failf "expected single write lock, got %d entries"
      (List.length plan)

let test_plan_canonical_order () =
  let p =
    P.make ~name:"p"
      ~reads:[ P.Manual; P.Assembly_level 1; P.Composite_parts ]
      ~writes:[ P.Assembly_level 7 ]
      ()
  in
  let plan = P.locking_plan p in
  let ranks = List.map (fun (d, _) -> P.domain_rank d) plan in
  Alcotest.(check (list int)) "sorted by rank" (List.sort compare ranks) ranks;
  (* Level 7 (the root) ranks before level 1. *)
  match plan with
  | (P.Assembly_level 7, `Write) :: _ -> ()
  | _ -> Alcotest.fail "root level should come first"

let test_plan_no_duplicates () =
  let p =
    P.make ~name:"p"
      ~reads:(P.all_assembly_levels @ P.all_assembly_levels)
      ()
  in
  Alcotest.(check int) "deduplicated" 7 (List.length (P.locking_plan p))

let test_domain_ranks_distinct () =
  let all =
    P.all_assembly_levels
    @ [ P.Composite_parts; P.Atomic_parts; P.Documents; P.Manual ]
  in
  let ranks = List.map P.domain_rank all in
  Alcotest.(check int) "distinct ranks" (List.length all)
    (List.length (List.sort_uniq compare ranks));
  Alcotest.(check int) "num_domains covers them" P.num_domains
    (List.length all);
  List.iter
    (fun r ->
      Alcotest.(check bool) "rank in bounds" true (r >= 0 && r < P.num_domains))
    ranks

let test_assembly_levels_helper () =
  Alcotest.(check int) "1..7" 7 (List.length P.all_assembly_levels);
  Alcotest.(check int) "2..7" 6 (List.length (P.assembly_levels 2 7));
  match P.assembly_levels 3 3 with
  | [ P.Assembly_level 3 ] -> ()
  | _ -> Alcotest.fail "single level"

let test_every_benchmark_op_has_coherent_profile () =
  let module I = Sb7_core.Instance.Make (Sb7_runtime.Seq_runtime) in
  List.iter
    (fun (op : I.Operation.t) ->
      let p = op.profile in
      Alcotest.(check string) "profile named after op" op.code
        p.P.op_name;
      (* Structural ops have no domain lists; others have some reads. *)
      if p.P.structural then
        Alcotest.(check bool)
          (op.code ^ " SM has no domains")
          true
          (p.P.reads = [] && p.P.writes = [])
      else
        Alcotest.(check bool)
          (op.code ^ " touches some domain")
          true
          (p.P.reads <> [] || p.P.writes <> []))
    I.Operation.all

let suite =
  [
    Alcotest.test_case "read_only classification" `Quick test_read_only;
    Alcotest.test_case "structural plan is empty" `Quick
      test_structural_plan_empty;
    Alcotest.test_case "write mode wins" `Quick test_plan_write_wins;
    Alcotest.test_case "canonical order" `Quick test_plan_canonical_order;
    Alcotest.test_case "no duplicate locks" `Quick test_plan_no_duplicates;
    Alcotest.test_case "domain ranks distinct" `Quick
      test_domain_ranks_distinct;
    Alcotest.test_case "assembly_levels helper" `Quick
      test_assembly_levels_helper;
    Alcotest.test_case "all 45 profiles coherent" `Quick
      test_every_benchmark_op_has_coherent_profile;
  ]

let () = Alcotest.run "op_profile" [ ("op_profile", suite) ]
