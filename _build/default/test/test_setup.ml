(* Tests for initial structure construction, checked at tiny scale
   against the OO7/STMBench7 construction rules, for every index
   kind. *)

module Seq = Sb7_runtime.Seq_runtime
module I = Sb7_core.Instance.Make (Seq)
module P = Sb7_core.Parameters
module T = I.Types

let params = P.tiny

let build ?(kind = Sb7_core.Index_intf.Avl) () =
  I.Setup.create ~index_kind:kind ~seed:7 params

let test_counts () =
  let setup = build () in
  let stats = I.Structure_stats.collect setup in
  Alcotest.(check int) "composite parts" params.P.num_comp_per_module
    stats.I.Structure_stats.composite_parts;
  Alcotest.(check int) "atomic parts"
    (params.P.num_comp_per_module * params.P.num_atomic_per_comp)
    stats.I.Structure_stats.atomic_parts;
  Alcotest.(check int) "base assemblies"
    (P.initial_base_assemblies params)
    stats.I.Structure_stats.base_assemblies;
  Alcotest.(check int) "complex assemblies"
    (P.initial_complex_assemblies params)
    stats.I.Structure_stats.complex_assemblies;
  Alcotest.(check int) "documents" params.P.num_comp_per_module
    stats.I.Structure_stats.documents;
  Alcotest.(check int) "links"
    (P.initial_base_assemblies params * params.P.num_comp_per_assm)
    stats.I.Structure_stats.assembly_links;
  (* "at least three times as many connections" as atomic parts. *)
  Alcotest.(check int) "connections"
    (stats.I.Structure_stats.atomic_parts * params.P.num_conn_per_atomic)
    stats.I.Structure_stats.connections

let test_invariants_for_every_index_kind () =
  List.iter
    (fun kind ->
      let setup = build ~kind () in
      match I.Invariants.check setup with
      | [] -> ()
      | vs ->
        Alcotest.failf "%s: %s"
          (Sb7_core.Index_intf.kind_to_string kind)
          (String.concat "; " vs))
    Sb7_core.Index_intf.all_kinds

let test_root_shape () =
  let setup = build () in
  let root = setup.I.Setup.module_.T.mod_design_root in
  Alcotest.(check int) "root at top level" params.P.num_assm_levels
    root.T.ca_level;
  Alcotest.(check bool) "root has no parent" true (root.T.ca_super = None);
  Alcotest.(check int) "root fanout" params.P.num_assm_per_assm
    (List.length (Seq.read root.T.ca_sub))

let test_manual_and_documents () =
  let setup = build () in
  let manual = Seq.read setup.I.Setup.module_.T.mod_manual.T.man_text in
  Alcotest.(check int) "manual size" params.P.manual_size
    (String.length manual);
  Alcotest.(check bool) "manual starts with I" true (manual.[0] = 'I');
  setup.I.Setup.cp_id_index.iter (fun _ cp ->
      let text = Seq.read cp.T.cp_document.T.doc_text in
      Alcotest.(check int) "document size" params.P.document_size
        (String.length text))

let test_document_titles_indexed () =
  let setup = build () in
  setup.I.Setup.cp_id_index.iter (fun id cp ->
      let title = Sb7_core.Text.document_title ~part_id:id in
      Alcotest.(check string) "title convention" title
        cp.T.cp_document.T.doc_title;
      match setup.I.Setup.doc_title_index.get title with
      | Some doc ->
        Alcotest.(check bool) "index points at the document" true
          (doc == cp.T.cp_document)
      | None -> Alcotest.failf "document %s not indexed" title)

let test_build_dates_in_range () =
  let setup = build () in
  setup.I.Setup.ap_id_index.iter (fun _ p ->
      let d = Seq.read p.T.ap_build_date in
      Alcotest.(check bool) "atomic date" true
        (d >= params.P.min_atomic_date && d <= params.P.max_atomic_date));
  setup.I.Setup.cp_id_index.iter (fun _ cp ->
      let d = Seq.read cp.T.cp_build_date in
      let young =
        d >= params.P.min_young_comp_date && d <= params.P.max_young_comp_date
      in
      let old =
        d >= params.P.min_old_comp_date && d <= params.P.max_old_comp_date
      in
      Alcotest.(check bool) "composite young or old" true (young || old));
  setup.I.Setup.ba_id_index.iter (fun _ ba ->
      let d = Seq.read ba.T.ba_build_date in
      Alcotest.(check bool) "assembly date" true
        (d >= params.P.min_assm_date && d <= params.P.max_assm_date))

let test_graph_connectivity () =
  let setup = build () in
  setup.I.Setup.cp_id_index.iter (fun _ cp ->
      let visited =
        I.Nav.dfs_atomic_graph (Seq.read cp.T.cp_root_part) (fun _ -> ())
      in
      Alcotest.(check int) "DFS reaches every part"
        params.P.num_atomic_per_comp visited)

let test_deterministic_for_seed () =
  let a = I.Setup.create ~seed:11 params in
  let b = I.Setup.create ~seed:11 params in
  (* Same seed: identical shapes, dates and links. *)
  let fingerprint setup =
    let acc = ref 0 in
    setup.I.Setup.ap_id_index.iter (fun id p ->
        acc := !acc + (id * 31) + Seq.read p.T.ap_build_date
               + Seq.read p.T.ap_x);
    setup.I.Setup.ba_id_index.iter (fun id ba ->
        acc :=
          !acc + (id * 17) + List.length (Seq.read ba.T.ba_components));
    !acc
  in
  Alcotest.(check int) "same fingerprint" (fingerprint a) (fingerprint b);
  let c = I.Setup.create ~seed:12 params in
  Alcotest.(check bool) "different seed differs" true
    (fingerprint a <> fingerprint c)

let test_pools_after_build () =
  let setup = build () in
  let module Pool = I.Id_pool in
  Alcotest.(check int) "cp pool drained to slack"
    (P.max_composite_parts params - params.P.num_comp_per_module)
    (Pool.available setup.I.Setup.cp_pool);
  Alcotest.(check int) "ba pool"
    (P.max_base_assemblies params - P.initial_base_assemblies params)
    (Pool.available setup.I.Setup.ba_pool);
  Alcotest.(check int) "ca pool"
    (P.max_complex_assemblies params - P.initial_complex_assemblies params)
    (Pool.available setup.I.Setup.ca_pool)

let test_small_scale_builds () =
  let setup = I.Setup.create ~seed:3 P.small in
  I.Invariants.check_exn setup;
  let stats = I.Structure_stats.collect setup in
  Alcotest.(check int) "small composite parts"
    P.small.P.num_comp_per_module stats.I.Structure_stats.composite_parts

let suite =
  [
    Alcotest.test_case "object counts" `Quick test_counts;
    Alcotest.test_case "invariants for every index kind" `Quick
      test_invariants_for_every_index_kind;
    Alcotest.test_case "root shape" `Quick test_root_shape;
    Alcotest.test_case "manual and documents" `Quick test_manual_and_documents;
    Alcotest.test_case "document titles indexed" `Quick
      test_document_titles_indexed;
    Alcotest.test_case "build dates in range" `Quick test_build_dates_in_range;
    Alcotest.test_case "graph connectivity" `Quick test_graph_connectivity;
    Alcotest.test_case "deterministic per seed" `Quick
      test_deterministic_for_seed;
    Alcotest.test_case "pools after build" `Quick test_pools_after_build;
    Alcotest.test_case "small scale builds" `Slow test_small_scale_builds;
  ]

let () = Alcotest.run "setup" [ ("setup", suite) ]
