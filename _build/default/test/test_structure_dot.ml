(* Tests for the Graphviz export. *)

module Seq = Sb7_runtime.Seq_runtime
module I = Sb7_core.Instance.Make (Seq)
module Dot = Sb7_core.Structure_dot.Make (Seq)
module P = Sb7_core.Parameters

let render f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

let count_occurrences haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i acc =
    if i + m > n then acc
    else if String.sub haystack i m = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_assembly_tree_shape () =
  let setup = I.Setup.create ~seed:3 P.tiny in
  let dot = render (fun ppf -> Dot.assembly_tree ppf setup) in
  Alcotest.(check bool) "digraph header" true (contains dot "digraph stmbench7");
  Alcotest.(check bool) "closes" true (contains dot "}");
  (* One node per complex assembly, base assembly and composite part. *)
  Alcotest.(check int) "complex assembly nodes"
    (P.initial_complex_assemblies P.tiny)
    (count_occurrences dot "shape=box");
  Alcotest.(check int) "base assembly nodes"
    (P.initial_base_assemblies P.tiny)
    (count_occurrences dot "shape=ellipse");
  Alcotest.(check int) "composite part nodes" P.tiny.P.num_comp_per_module
    (count_occurrences dot "shape=component");
  (* One dashed edge per assembly->part link. *)
  let stats = I.Structure_stats.collect setup in
  Alcotest.(check int) "link edges" stats.I.Structure_stats.assembly_links
    (count_occurrences dot "style=dashed")

let test_unlinked_parts_marked () =
  let setup = I.Setup.create ~seed:3 P.tiny in
  let rng = Sb7_core.Sb_random.create ~seed:4 in
  let cp = I.Setup.create_composite_part setup rng in
  let dot = render (fun ppf -> Dot.assembly_tree ppf setup) in
  Alcotest.(check bool) "unlinked part present" true
    (contains dot (Printf.sprintf "cp%d [label=\"CP %d\\n(unlinked)" cp.I.Types.cp_id cp.I.Types.cp_id))

let test_part_graph () =
  let setup = I.Setup.create ~seed:3 P.tiny in
  let cp = ref None in
  setup.I.Setup.cp_id_index.iter (fun _ c -> if !cp = None then cp := Some c);
  let cp = Option.get !cp in
  let dot = render (fun ppf -> Dot.part_graph ppf cp) in
  Alcotest.(check int) "one node per atomic part" P.tiny.P.num_atomic_per_comp
    (count_occurrences dot "[label=\"");
  Alcotest.(check int) "one edge per connection"
    (P.tiny.P.num_atomic_per_comp * P.tiny.P.num_conn_per_atomic)
    (count_occurrences dot " -> ");
  Alcotest.(check int) "root highlighted" 1
    (count_occurrences dot "style=filled")

let suite =
  [
    Alcotest.test_case "assembly tree shape" `Quick test_assembly_tree_shape;
    Alcotest.test_case "unlinked parts marked" `Quick
      test_unlinked_parts_marked;
    Alcotest.test_case "part graph" `Quick test_part_graph;
  ]

let () = Alcotest.run "structure_dot" [ ("dot", suite) ]
