test/test_stm_model.mli:
