test/test_id_pool.ml: Alcotest List Sb7_core Sb7_runtime Sb7_stm
