test/test_operations.ml: Alcotest Hashtbl List Sb7_core Sb7_runtime
