test/test_structure_dot.mli:
