test/test_csv.ml: Alcotest Array Buffer Filename Lazy List Sb7_core Sb7_harness String Sys
