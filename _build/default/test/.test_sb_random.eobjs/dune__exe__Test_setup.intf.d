test/test_setup.mli:
