test/test_setup.ml: Alcotest List Sb7_core Sb7_runtime String
