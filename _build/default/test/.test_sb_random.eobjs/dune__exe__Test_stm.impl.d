test/test_stm.ml: Alcotest Array Atomic Domain Fun List Printf Sb7_core Sb7_stm
