test/test_text.ml: Alcotest List Printf QCheck QCheck_alcotest Sb7_core String
