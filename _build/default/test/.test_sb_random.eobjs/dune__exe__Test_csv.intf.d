test/test_csv.mli:
