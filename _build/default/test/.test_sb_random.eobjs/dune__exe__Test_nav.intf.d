test/test_nav.mli:
