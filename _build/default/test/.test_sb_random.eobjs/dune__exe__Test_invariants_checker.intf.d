test/test_invariants_checker.mli:
