test/test_stm_model.ml: Alcotest Array List Printf QCheck QCheck_alcotest Sb7_runtime Sb7_stm String
