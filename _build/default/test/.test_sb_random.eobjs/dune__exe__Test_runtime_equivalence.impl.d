test/test_runtime_equivalence.ml: Alcotest Array Hashtbl List Sb7_core Sb7_harness Sb7_runtime
