test/test_index_concurrency.mli:
