test/test_id_pool.mli:
