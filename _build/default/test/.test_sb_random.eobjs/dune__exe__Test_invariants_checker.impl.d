test/test_invariants_checker.ml: Alcotest Option Sb7_core Sb7_runtime
