test/test_harness.ml: Alcotest Array Buffer Format Lazy List Sb7_core Sb7_harness String
