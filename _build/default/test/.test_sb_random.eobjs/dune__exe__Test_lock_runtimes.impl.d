test/test_lock_runtimes.ml: Alcotest Array Atomic Domain List Option Sb7_core Sb7_runtime Unix
