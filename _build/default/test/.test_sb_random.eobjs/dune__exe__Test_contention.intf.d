test/test_contention.mli:
