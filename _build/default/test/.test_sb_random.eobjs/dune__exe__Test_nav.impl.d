test/test_nav.ml: Alcotest Hashtbl Lazy List Sb7_core Sb7_runtime
