test/test_bag.ml: Alcotest Int List Printf QCheck QCheck_alcotest Sb7_core Sb7_runtime String
