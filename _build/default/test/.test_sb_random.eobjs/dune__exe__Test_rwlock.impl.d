test/test_rwlock.ml: Alcotest Atomic Domain List Sb7_rwlock Unix
