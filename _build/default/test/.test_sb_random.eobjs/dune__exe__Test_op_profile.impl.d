test/test_op_profile.ml: Alcotest List Sb7_core Sb7_runtime
