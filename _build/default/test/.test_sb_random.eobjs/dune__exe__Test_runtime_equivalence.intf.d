test/test_runtime_equivalence.mli:
