test/test_fine_runtime.mli:
