test/test_avl.ml: Alcotest Fun Int List Map Printf QCheck QCheck_alcotest Sb7_core String
