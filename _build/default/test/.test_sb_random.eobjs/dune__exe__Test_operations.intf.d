test/test_operations.mli:
