test/test_integration.ml: Alcotest Array List Printf Sb7_core Sb7_harness Sb7_runtime String
