test/test_parameters.ml: Alcotest List Sb7_core
