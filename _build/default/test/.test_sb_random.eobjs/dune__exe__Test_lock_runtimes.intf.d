test/test_lock_runtimes.mli:
