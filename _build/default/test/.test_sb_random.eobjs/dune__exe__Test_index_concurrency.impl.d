test/test_index_concurrency.ml: Alcotest Atomic Domain Int List Sb7_core Sb7_runtime Sb7_stm
