test/test_indexes.ml: Alcotest Int List Map Printf QCheck QCheck_alcotest Sb7_core Sb7_runtime String
