test/test_sb_random.mli:
