test/test_workload.ml: Alcotest Array List Printf Sb7_core Sb7_harness Sb7_runtime
