test/test_structure_dot.ml: Alcotest Buffer Format Option Printf Sb7_core Sb7_runtime String
