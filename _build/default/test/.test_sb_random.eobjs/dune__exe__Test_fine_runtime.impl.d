test/test_fine_runtime.ml: Alcotest Atomic Domain List Option Sb7_core Sb7_harness Sb7_runtime String
