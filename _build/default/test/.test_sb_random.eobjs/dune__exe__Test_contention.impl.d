test/test_contention.ml: Alcotest Format List Printf Sb7_stm
