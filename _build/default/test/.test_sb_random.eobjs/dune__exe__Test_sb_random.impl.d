test/test_sb_random.ml: Alcotest Array Fun List Printf Sb7_core
