(* Tests for scale parameters and derived quantities. *)

module P = Sb7_core.Parameters

let test_medium_matches_paper () =
  (* "six levels of complex assemblies, having three children assemblies
     each, 500 composite parts altogether, each corresponding to a graph
     of ... atomic parts and at least three times as many connections". *)
  Alcotest.(check int) "levels" 7 P.medium.P.num_assm_levels;
  Alcotest.(check int) "fanout" 3 P.medium.P.num_assm_per_assm;
  Alcotest.(check int) "composite parts" 500 P.medium.P.num_comp_per_module;
  Alcotest.(check int) "atomic per composite" 200
    P.medium.P.num_atomic_per_comp;
  Alcotest.(check int) "connections per part" 3
    P.medium.P.num_conn_per_atomic;
  Alcotest.(check int) "manual 1MB" 1_000_000 P.medium.P.manual_size;
  Alcotest.(check int) "documents 20kB" 20_000 P.medium.P.document_size

let test_medium_tree_counts () =
  (* 3^6 = 729 base assemblies; 3^0 + ... + 3^5 = 364 complex. *)
  Alcotest.(check int) "base assemblies" 729 (P.initial_base_assemblies P.medium);
  Alcotest.(check int) "complex assemblies" 364
    (P.initial_complex_assemblies P.medium);
  Alcotest.(check int) "atomic parts" 100_000 (P.initial_atomic_parts P.medium)

let test_tiny_tree_counts () =
  (* 3 levels: root + 3 complex + 9 base. *)
  Alcotest.(check int) "base" 9 (P.initial_base_assemblies P.tiny);
  Alcotest.(check int) "complex" 4 (P.initial_complex_assemblies P.tiny)

let test_slack () =
  Alcotest.(check int) "10% slack on 500" 550 (P.max_composite_parts P.medium);
  Alcotest.(check bool) "slack rounds up" true (P.with_slack P.medium 1 >= 2)

let test_max_counts_cover_initial () =
  List.iter
    (fun (_, p) ->
      Alcotest.(check bool) "cp max > initial" true
        (P.max_composite_parts p > p.P.num_comp_per_module);
      Alcotest.(check bool) "ba max > initial" true
        (P.max_base_assemblies p > P.initial_base_assemblies p);
      Alcotest.(check bool) "ca max > initial" true
        (P.max_complex_assemblies p > P.initial_complex_assemblies p);
      Alcotest.(check bool) "ap max >= initial" true
        (P.max_atomic_parts p >= P.initial_atomic_parts p))
    P.presets

let test_of_string () =
  (match P.of_string "tiny" with
  | Ok p -> Alcotest.(check bool) "tiny" true (p = P.tiny)
  | Error e -> Alcotest.fail e);
  (match P.of_string "MEDIUM" with
  | Ok p -> Alcotest.(check bool) "case-insensitive" true (p = P.medium)
  | Error e -> Alcotest.fail e);
  match P.of_string "gigantic" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown preset"

let test_date_ranges_consistent () =
  List.iter
    (fun (name, p) ->
      Alcotest.(check bool) (name ^ ": atomic dates ordered") true
        (p.P.min_atomic_date <= p.P.max_atomic_date);
      Alcotest.(check bool) (name ^ ": young above assemblies") true
        (p.P.min_young_comp_date > p.P.max_assm_date);
      Alcotest.(check bool) (name ^ ": old below assemblies") true
        (p.P.max_old_comp_date < p.P.min_assm_date);
      (* OP2 (1%) and OP3 (10%) windows fit inside the date range. *)
      Alcotest.(check bool) (name ^ ": 100-wide window fits") true
        (p.P.max_atomic_date - p.P.min_atomic_date + 1 >= 100))
    P.presets

let test_pow () =
  Alcotest.(check int) "3^0" 1 (P.pow 3 0);
  Alcotest.(check int) "3^6" 729 (P.pow 3 6);
  Alcotest.(check int) "2^10" 1024 (P.pow 2 10)

let suite =
  [
    Alcotest.test_case "medium matches the paper" `Quick
      test_medium_matches_paper;
    Alcotest.test_case "medium tree counts" `Quick test_medium_tree_counts;
    Alcotest.test_case "tiny tree counts" `Quick test_tiny_tree_counts;
    Alcotest.test_case "growth slack" `Quick test_slack;
    Alcotest.test_case "max counts cover initial" `Quick
      test_max_counts_cover_initial;
    Alcotest.test_case "of_string" `Quick test_of_string;
    Alcotest.test_case "date ranges consistent" `Quick
      test_date_ranges_consistent;
    Alcotest.test_case "pow" `Quick test_pow;
  ]

let () = Alcotest.run "parameters" [ ("parameters", suite) ]
