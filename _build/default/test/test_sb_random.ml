(* Tests for the SplitMix64 generator. *)

module R = Sb7_core.Sb_random

let test_deterministic () =
  let a = R.create ~seed:123 and b = R.create ~seed:123 in
  for _ = 1 to 1000 do
    Alcotest.(check int) "same stream" (R.int a 1_000_000) (R.int b 1_000_000)
  done

let test_seed_changes_stream () =
  let a = R.create ~seed:1 and b = R.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if R.int a 1_000_000 = R.int b 1_000_000 then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_int_bounds () =
  let rng = R.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = R.int rng 17 in
    Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_int_one () =
  let rng = R.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "bound 1 gives 0" 0 (R.int rng 1)
  done

let test_in_range_bounds () =
  let rng = R.create ~seed:11 in
  for _ = 1 to 10_000 do
    let v = R.in_range rng 5 9 in
    Alcotest.(check bool) "5 <= v <= 9" true (v >= 5 && v <= 9)
  done

let test_in_range_degenerate () =
  let rng = R.create ~seed:11 in
  Alcotest.(check int) "singleton range" 42 (R.in_range rng 42 42)

let test_in_range_covers () =
  let rng = R.create ~seed:3 in
  let seen = Array.make 10 false in
  for _ = 1 to 10_000 do
    seen.(R.in_range rng 0 9) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_uniformity_rough () =
  let rng = R.create ~seed:5 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = R.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d within 10%%" i)
        true
        (abs (c - expected) < expected / 10))
    buckets

let test_percent_extremes () =
  let rng = R.create ~seed:9 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "0%" false (R.percent rng 0);
    Alcotest.(check bool) "100%" true (R.percent rng 100)
  done

let test_percent_rough () =
  let rng = R.create ~seed:13 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if R.percent rng 30 then incr hits
  done;
  let ratio = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "~30%" true (ratio > 0.28 && ratio < 0.32)

let test_split_independent () =
  let parent = R.create ~seed:17 in
  let child = R.split parent in
  let same = ref 0 in
  for _ = 1 to 100 do
    if R.int parent 1_000_000 = R.int child 1_000_000 then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 5)

let test_copy_replays () =
  let a = R.create ~seed:23 in
  ignore (R.int a 100);
  let b = R.copy a in
  for _ = 1 to 100 do
    Alcotest.(check int) "copy replays" (R.int a 1000) (R.int b 1000)
  done

let test_element () =
  let rng = R.create ~seed:29 in
  let l = [ 10; 20; 30 ] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (List.mem (R.element rng l) l)
  done

let test_element_empty () =
  let rng = R.create ~seed:29 in
  Alcotest.check_raises "empty list"
    (Invalid_argument "Sb_random.element: empty list") (fun () ->
      ignore (R.element rng []))

let test_bool_varies () =
  let rng = R.create ~seed:31 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if R.bool rng then incr trues
  done;
  Alcotest.(check bool) "not constant" true (!trues > 400 && !trues < 600)

let suite =
  [
    Alcotest.test_case "deterministic per seed" `Quick test_deterministic;
    Alcotest.test_case "seed changes stream" `Quick test_seed_changes_stream;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int with bound 1" `Quick test_int_one;
    Alcotest.test_case "in_range bounds" `Quick test_in_range_bounds;
    Alcotest.test_case "in_range degenerate" `Quick test_in_range_degenerate;
    Alcotest.test_case "in_range covers all" `Quick test_in_range_covers;
    Alcotest.test_case "rough uniformity" `Quick test_uniformity_rough;
    Alcotest.test_case "percent extremes" `Quick test_percent_extremes;
    Alcotest.test_case "percent ~ratio" `Quick test_percent_rough;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "copy replays stream" `Quick test_copy_replays;
    Alcotest.test_case "element membership" `Quick test_element;
    Alcotest.test_case "element on empty" `Quick test_element_empty;
    Alcotest.test_case "bool varies" `Quick test_bool_varies;
  ]

let () = Alcotest.run "sb_random" [ ("sb_random", suite) ]
