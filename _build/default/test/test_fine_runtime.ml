(* Tests for the fine-grained (per-tvar 2PL, no-wait restart) locking
   runtime. *)

module F = Sb7_runtime.Fine_runtime
module Profile = Sb7_runtime.Op_profile

let profile = Profile.make ~name:"test" ~writes:[ Profile.Manual ] ()

let atomic f = F.atomic ~profile f

let test_read_write_outside () =
  let tv = F.make 1 in
  Alcotest.(check int) "read" 1 (F.read tv);
  F.write tv 2;
  Alcotest.(check int) "write" 2 (F.read tv)

let test_atomic_basic () =
  let tv = F.make 0 in
  let r =
    atomic (fun () ->
        F.write tv 5;
        F.read tv)
  in
  Alcotest.(check int) "sees own write" 5 r;
  Alcotest.(check int) "committed" 5 (F.read tv)

let test_rollback_on_exception () =
  let a = F.make 10 and b = F.make 20 in
  (try
     atomic (fun () ->
         F.write a 11;
         F.write b 21;
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "a rolled back" 10 (F.read a);
  Alcotest.(check int) "b rolled back" 20 (F.read b)

let test_locks_released_after_exception () =
  let tv = F.make 0 in
  (try atomic (fun () -> F.write tv 1; failwith "x") with Failure _ -> ());
  (* If the write lock leaked, this would deadlock/restart forever. *)
  atomic (fun () -> F.write tv 2);
  Alcotest.(check int) "reusable" 2 (F.read tv)

let test_nested_flattens () =
  let tv = F.make 0 in
  atomic (fun () ->
      F.write tv 1;
      let v = atomic (fun () -> F.read tv) in
      F.write tv (v + 1));
  Alcotest.(check int) "flattened" 2 (F.read tv)

let test_upgrade_read_to_write () =
  let tv = F.make 3 in
  atomic (fun () ->
      let v = F.read tv in
      (* Sole reader: the upgrade must succeed rather than restart. *)
      F.write tv (v * 2));
  Alcotest.(check int) "upgraded" 6 (F.read tv)

let test_concurrent_counter () =
  let tv = F.make 0 in
  let domains = 4 and iterations = 2_000 in
  let worker () =
    for _ = 1 to iterations do
      atomic (fun () -> F.write tv (F.read tv + 1))
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost updates" (domains * iterations) (F.read tv)

let test_transfer_invariant () =
  let a = F.make 500 and b = F.make 500 in
  let stop = Atomic.make false in
  let transferer seed () =
    let rng = Sb7_core.Sb_random.create ~seed in
    for _ = 1 to 3_000 do
      let x = Sb7_core.Sb_random.in_range rng 1 10 in
      atomic (fun () ->
          F.write a (F.read a - x);
          F.write b (F.read b + x))
    done
  in
  let observer () =
    let bad = ref 0 in
    while not (Atomic.get stop) do
      let total = atomic (fun () -> F.read a + F.read b) in
      if total <> 1000 then incr bad
    done;
    !bad
  in
  let obs = Domain.spawn observer in
  let ts = List.init 2 (fun i -> Domain.spawn (transferer (i + 1))) in
  List.iter Domain.join ts;
  Atomic.set stop true;
  let violations = Domain.join obs in
  Alcotest.(check int) "2PL keeps snapshots consistent" 0 violations;
  Alcotest.(check int) "conserved" 1000 (F.read a + F.read b)

let test_restarts_counted () =
  F.reset_stats ();
  let tv = F.make 0 in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 3_000 do
              atomic (fun () -> F.write tv (F.read tv + 1))
            done))
  in
  List.iter Domain.join ds;
  let stats = F.stats () in
  let get k = Option.value (List.assoc_opt k stats) ~default:0 in
  Alcotest.(check int) "correct total" 12_000 (F.read tv);
  Alcotest.(check bool) "acquisitions counted" true (get "acquisitions" > 0)

(* The full benchmark under the fine runtime preserves all structural
   invariants. *)
module CI = Sb7_core.Instance.Make (F)
module CB = Sb7_harness.Benchmark.Make (F)

let test_benchmark_invariants () =
  let config =
    {
      Sb7_harness.Benchmark.default_config with
      threads = 4;
      max_ops = Some 600;
      workload = Sb7_harness.Workload.Write_dominated;
      scale = Sb7_core.Parameters.tiny;
      scale_name = "tiny";
      seed = 77;
      long_traversals = false;
    }
  in
  let setup = CB.build_setup config in
  let result = CB.run ~setup config in
  Alcotest.(check bool) "progress" true
    (Sb7_harness.Stats.total_successes result.Sb7_harness.Run_result.stats > 0);
  match CI.Invariants.check setup with
  | [] -> ()
  | vs -> Alcotest.failf "invariants: %s" (String.concat "; " vs)

let test_registered () =
  match Sb7_runtime.Registry.find "fine" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let suite =
  [
    Alcotest.test_case "read/write outside" `Quick test_read_write_outside;
    Alcotest.test_case "atomic basic" `Quick test_atomic_basic;
    Alcotest.test_case "rollback on exception" `Quick
      test_rollback_on_exception;
    Alcotest.test_case "locks released after exception" `Quick
      test_locks_released_after_exception;
    Alcotest.test_case "nested flattens" `Quick test_nested_flattens;
    Alcotest.test_case "read->write upgrade" `Quick
      test_upgrade_read_to_write;
    Alcotest.test_case "concurrent counter" `Slow test_concurrent_counter;
    Alcotest.test_case "transfer invariant" `Slow test_transfer_invariant;
    Alcotest.test_case "restart accounting" `Slow test_restarts_counted;
    Alcotest.test_case "benchmark keeps invariants" `Slow
      test_benchmark_invariants;
    Alcotest.test_case "registered" `Quick test_registered;
  ]

let () = Alcotest.run "fine_runtime" [ ("fine", suite) ]
