(* Tests for the transactional bag. *)

module Bag = Sb7_core.Bag.Make (Sb7_runtime.Seq_runtime)

let eq = Int.equal

let test_create_empty () =
  let b = Bag.create () in
  Alcotest.(check bool) "empty" true (Bag.is_empty b);
  Alcotest.(check int) "size 0" 0 (Bag.size b);
  Alcotest.(check (list int)) "contents" [] (Bag.contents b)

let test_add_and_multiplicity () =
  let b = Bag.create () in
  Bag.add b 1;
  Bag.add b 2;
  Bag.add b 1;
  Alcotest.(check int) "size 3" 3 (Bag.size b);
  Alcotest.(check int) "two 1s" 2 (Bag.count ~eq b 1);
  Alcotest.(check int) "one 2" 1 (Bag.count ~eq b 2);
  Alcotest.(check bool) "mem" true (Bag.mem ~eq b 2);
  Alcotest.(check bool) "not mem" false (Bag.mem ~eq b 3)

let test_remove_one () =
  let b = Bag.of_list [ 1; 2; 1 ] in
  Alcotest.(check bool) "removed" true (Bag.remove_one ~eq b 1);
  Alcotest.(check int) "one left" 1 (Bag.count ~eq b 1);
  Alcotest.(check bool) "removed again" true (Bag.remove_one ~eq b 1);
  Alcotest.(check bool) "absent now" false (Bag.remove_one ~eq b 1);
  Alcotest.(check int) "only 2 left" 1 (Bag.size b)

let test_remove_all () =
  let b = Bag.of_list [ 1; 2; 1; 1 ] in
  Alcotest.(check int) "three removed" 3 (Bag.remove_all ~eq b 1);
  Alcotest.(check int) "none left" 0 (Bag.count ~eq b 1);
  Alcotest.(check int) "2 untouched" 1 (Bag.size b);
  Alcotest.(check int) "absent removes zero" 0 (Bag.remove_all ~eq b 9)

let test_iter_exists () =
  let b = Bag.of_list [ 1; 2; 3 ] in
  let sum = ref 0 in
  Bag.iter (fun x -> sum := !sum + x) b;
  Alcotest.(check int) "iter sums" 6 !sum;
  Alcotest.(check bool) "exists even" true (Bag.exists (fun x -> x mod 2 = 0) b);
  Alcotest.(check bool) "no negative" false (Bag.exists (fun x -> x < 0) b)

let test_clear () =
  let b = Bag.of_list [ 1; 2 ] in
  Bag.clear b;
  Alcotest.(check bool) "cleared" true (Bag.is_empty b)

let test_random_element () =
  let rng = Sb7_core.Sb_random.create ~seed:3 in
  let b = Bag.of_list [ 10; 20; 30 ] in
  for _ = 1 to 50 do
    let x = Bag.random_element rng b ~what:"test bag" in
    Alcotest.(check bool) "member" true (List.mem x (Bag.contents b))
  done

let test_random_element_empty_fails () =
  let rng = Sb7_core.Sb_random.create ~seed:3 in
  let b : int Bag.t = Bag.create () in
  match Bag.random_element rng b ~what:"empty bag" with
  | _ -> Alcotest.fail "expected failure"
  | exception Sb7_core.Common.Operation_failed _ -> ()

(* qcheck: model equivalence against a sorted-multiset (list). *)

type op =
  | Add of int
  | Remove_one of int
  | Remove_all of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun x -> Add x) (int_bound 10));
        (2, map (fun x -> Remove_one x) (int_bound 10));
        (1, map (fun x -> Remove_all x) (int_bound 10));
      ])

let ops_arbitrary =
  QCheck.make
    QCheck.Gen.(list_size (int_bound 100) op_gen)
    ~print:(fun l ->
      String.concat ";"
        (List.map
           (function
             | Add x -> Printf.sprintf "A%d" x
             | Remove_one x -> Printf.sprintf "R%d" x
             | Remove_all x -> Printf.sprintf "X%d" x)
           l))

let model_remove_one x l =
  let rec go acc = function
    | [] -> List.rev acc
    | y :: rest -> if y = x then List.rev_append acc rest else go (y :: acc) rest
  in
  go [] l

let prop_model =
  QCheck.Test.make ~name:"bag agrees with multiset model" ~count:500
    ops_arbitrary (fun ops ->
      let bag = Bag.create () in
      let model = ref [] in
      List.iter
        (function
          | Add x ->
            Bag.add bag x;
            model := x :: !model
          | Remove_one x ->
            let removed = Bag.remove_one ~eq bag x in
            let was = List.mem x !model in
            if removed <> was then failwith "remove_one result mismatch";
            model := model_remove_one x !model
          | Remove_all x ->
            let removed = Bag.remove_all ~eq bag x in
            let expected = List.length (List.filter (( = ) x) !model) in
            if removed <> expected then failwith "remove_all count mismatch";
            model := List.filter (( <> ) x) !model)
        ops;
      List.sort compare (Bag.contents bag) = List.sort compare !model
      && Bag.size bag = List.length !model)

let qcheck_suite = [ QCheck_alcotest.to_alcotest prop_model ]

let suite =
  [
    Alcotest.test_case "create empty" `Quick test_create_empty;
    Alcotest.test_case "add and multiplicity" `Quick
      test_add_and_multiplicity;
    Alcotest.test_case "remove_one" `Quick test_remove_one;
    Alcotest.test_case "remove_all" `Quick test_remove_all;
    Alcotest.test_case "iter/exists" `Quick test_iter_exists;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "random element" `Quick test_random_element;
    Alcotest.test_case "random element on empty" `Quick
      test_random_element_empty_fails;
  ]

let () = Alcotest.run "bag" [ ("bag", suite); ("bag-props", qcheck_suite) ]
