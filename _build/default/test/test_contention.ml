(* Tests for the contention-management policies. *)

module C = Sb7_stm.Contention

let decision = Alcotest.testable
    (fun ppf d ->
      Format.pp_print_string ppf
        (match d with
        | C.Abort_other -> "Abort_other"
        | C.Wait -> "Wait"
        | C.Abort_self -> "Abort_self"))
    ( = )

let test_aggressive () =
  List.iter
    (fun (mine, other) ->
      Alcotest.check decision "always kills" C.Abort_other
        (C.decide C.Aggressive ~my_opens:mine ~other_opens:other ~attempts:0))
    [ (0, 100); (100, 0); (5, 5) ]

let test_timid () =
  List.iter
    (fun (mine, other) ->
      Alcotest.check decision "always yields" C.Abort_self
        (C.decide C.Timid ~my_opens:mine ~other_opens:other ~attempts:0))
    [ (0, 100); (100, 0); (5, 5) ]

let test_karma_priority () =
  (* Higher priority kills immediately. *)
  Alcotest.check decision "rich kills poor" C.Abort_other
    (C.decide C.Karma ~my_opens:10 ~other_opens:3 ~attempts:0);
  (* Lower priority waits... *)
  Alcotest.check decision "poor waits" C.Wait
    (C.decide C.Karma ~my_opens:3 ~other_opens:10 ~attempts:0);
  (* ...and accumulates karma with each attempt until it can kill. *)
  Alcotest.check decision "karma accumulates" C.Abort_other
    (C.decide C.Karma ~my_opens:3 ~other_opens:10 ~attempts:7)

let test_polka_same_priorities_as_karma () =
  List.iter
    (fun (mine, other, attempts) ->
      Alcotest.check decision "same decision table"
        (C.decide C.Karma ~my_opens:mine ~other_opens:other ~attempts)
        (C.decide C.Polka ~my_opens:mine ~other_opens:other ~attempts))
    [ (0, 5, 0); (5, 0, 0); (3, 10, 4); (3, 10, 8) ]

let test_polka_exponential_wait () =
  Alcotest.(check bool) "polka backs off exponentially" true
    (C.exponential_wait C.Polka);
  Alcotest.(check bool) "karma does not" false (C.exponential_wait C.Karma);
  Alcotest.(check bool) "aggressive does not" false
    (C.exponential_wait C.Aggressive)

let test_wait_eventually_resolves () =
  (* Whatever the opens gap, enough attempts always end the wait. *)
  List.iter
    (fun policy ->
      let rec attempts_until_kill n =
        if n > 10_000 then None
        else
          match C.decide policy ~my_opens:0 ~other_opens:1000 ~attempts:n with
          | C.Abort_other | C.Abort_self -> Some n
          | C.Wait -> attempts_until_kill (n + 1)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s terminates" (C.policy_to_string policy))
        true
        (attempts_until_kill 0 <> None))
    C.all_policies

let test_string_round_trip () =
  List.iter
    (fun p ->
      match C.policy_of_string (C.policy_to_string p) with
      | Ok p' -> Alcotest.(check bool) "round trip" true (p = p')
      | Error e -> Alcotest.fail e)
    C.all_policies

let test_unknown_policy () =
  match C.policy_of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted nonsense"

let suite =
  [
    Alcotest.test_case "aggressive" `Quick test_aggressive;
    Alcotest.test_case "timid" `Quick test_timid;
    Alcotest.test_case "karma priorities" `Quick test_karma_priority;
    Alcotest.test_case "polka = karma decisions" `Quick
      test_polka_same_priorities_as_karma;
    Alcotest.test_case "polka waits exponentially" `Quick
      test_polka_exponential_wait;
    Alcotest.test_case "waits terminate" `Quick test_wait_eventually_resolves;
    Alcotest.test_case "policy string round trip" `Quick
      test_string_round_trip;
    Alcotest.test_case "unknown policy rejected" `Quick test_unknown_policy;
  ]

let () = Alcotest.run "contention" [ ("contention", suite) ]
