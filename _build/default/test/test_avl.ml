(* Tests for the pure AVL map: unit behaviour plus qcheck equivalence
   with Stdlib.Map as a model. *)

module Avl = Sb7_core.Avl
module IM = Map.Make (Int)

let cmp = Int.compare

let of_list l = List.fold_left (fun t (k, v) -> Avl.add cmp k v t) Avl.empty l

let test_empty () =
  Alcotest.(check (option int)) "find in empty" None (Avl.find cmp 1 Avl.empty);
  Alcotest.(check int) "cardinal" 0 (Avl.cardinal Avl.empty)

let test_add_find () =
  let t = of_list [ (1, 10); (2, 20); (3, 30) ] in
  Alcotest.(check (option int)) "find 2" (Some 20) (Avl.find cmp 2 t);
  Alcotest.(check (option int)) "find 9" None (Avl.find cmp 9 t);
  Alcotest.(check int) "cardinal" 3 (Avl.cardinal t)

let test_add_replaces () =
  let t = of_list [ (1, 10); (1, 11) ] in
  Alcotest.(check (option int)) "replaced" (Some 11) (Avl.find cmp 1 t);
  Alcotest.(check int) "no duplicate" 1 (Avl.cardinal t)

let test_remove () =
  let t = of_list [ (1, 10); (2, 20); (3, 30) ] in
  let t = Avl.remove cmp 2 t in
  Alcotest.(check (option int)) "removed" None (Avl.find cmp 2 t);
  Alcotest.(check (option int)) "kept" (Some 30) (Avl.find cmp 3 t);
  Alcotest.(check int) "cardinal" 2 (Avl.cardinal t)

let test_remove_absent () =
  let t = of_list [ (1, 10) ] in
  let t' = Avl.remove cmp 9 t in
  Alcotest.(check int) "unchanged" (Avl.cardinal t) (Avl.cardinal t')

let test_iter_ascending () =
  let t = of_list [ (3, 0); (1, 0); (2, 0); (5, 0); (4, 0) ] in
  let keys = ref [] in
  Avl.iter (fun k _ -> keys := k :: !keys) t;
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 4; 5 ] (List.rev !keys)

let test_fold () =
  let t = of_list [ (1, 10); (2, 20) ] in
  Alcotest.(check int) "sum" 30 (Avl.fold (fun _ v acc -> acc + v) t 0)

let test_range_inclusive () =
  let t = of_list (List.init 10 (fun i -> (i, i * 10))) in
  let r = Avl.range cmp 3 6 t in
  Alcotest.(check (list (pair int int)))
    "range [3,6]"
    [ (3, 30); (4, 40); (5, 50); (6, 60) ]
    r

let test_range_empty () =
  let t = of_list [ (1, 1); (10, 10) ] in
  Alcotest.(check (list (pair int int))) "gap" [] (Avl.range cmp 2 9 t)

let test_range_all () =
  let t = of_list [ (1, 1); (2, 2) ] in
  Alcotest.(check (list (pair int int)))
    "everything" [ (1, 1); (2, 2) ]
    (Avl.range cmp min_int max_int t)

let test_balanced_sequential () =
  let t = of_list (List.init 1000 (fun i -> (i, i))) in
  Alcotest.(check bool) "well formed" true (Avl.well_formed cmp t);
  Alcotest.(check int) "cardinal" 1000 (Avl.cardinal t);
  (* A balanced tree of 1000 nodes has height <= 1.44 log2(1001) ~ 15. *)
  Alcotest.(check bool) "height bounded" true (Avl.height t <= 15)

(* qcheck: model-based equivalence against Stdlib.Map. *)

type op =
  | Add of int * int
  | Remove of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun k v -> Add (k, v)) (int_bound 50) (int_bound 1000));
        (1, map (fun k -> Remove k) (int_bound 50));
      ])

let op_print = function
  | Add (k, v) -> Printf.sprintf "Add(%d,%d)" k v
  | Remove k -> Printf.sprintf "Remove %d" k

let ops_arbitrary =
  QCheck.make
    QCheck.Gen.(list_size (int_bound 200) op_gen)
    ~print:(fun l -> String.concat ";" (List.map op_print l))

let apply_ops ops =
  List.fold_left
    (fun (avl, model) -> function
      | Add (k, v) -> (Avl.add cmp k v avl, IM.add k v model)
      | Remove k -> (Avl.remove cmp k avl, IM.remove k model))
    (Avl.empty, IM.empty) ops

let prop_model_find =
  QCheck.Test.make ~name:"find agrees with Map" ~count:300 ops_arbitrary
    (fun ops ->
      let avl, model = apply_ops ops in
      List.for_all
        (fun k -> Avl.find cmp k avl = IM.find_opt k model)
        (List.init 60 Fun.id))

let prop_model_bindings =
  QCheck.Test.make ~name:"fold agrees with Map.bindings" ~count:300
    ops_arbitrary (fun ops ->
      let avl, model = apply_ops ops in
      Avl.fold (fun k v acc -> (k, v) :: acc) avl [] |> List.rev
      = IM.bindings model)

let prop_well_formed =
  QCheck.Test.make ~name:"AVL invariants hold" ~count:300 ops_arbitrary
    (fun ops ->
      let avl, _ = apply_ops ops in
      Avl.well_formed cmp avl)

let prop_range_model =
  QCheck.Test.make ~name:"range agrees with Map filter" ~count:300
    QCheck.(pair ops_arbitrary (pair (int_bound 50) (int_bound 50)))
    (fun (ops, (a, b)) ->
      let lo = min a b and hi = max a b in
      let avl, model = apply_ops ops in
      Avl.range cmp lo hi avl
      = List.filter (fun (k, _) -> k >= lo && k <= hi) (IM.bindings model))

let prop_cardinal =
  QCheck.Test.make ~name:"cardinal agrees with Map" ~count:300 ops_arbitrary
    (fun ops ->
      let avl, model = apply_ops ops in
      Avl.cardinal avl = IM.cardinal model)

let qcheck_suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_model_find;
      prop_model_bindings;
      prop_well_formed;
      prop_range_model;
      prop_cardinal;
    ]

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "add/find" `Quick test_add_find;
    Alcotest.test_case "add replaces" `Quick test_add_replaces;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "remove absent" `Quick test_remove_absent;
    Alcotest.test_case "iter ascending" `Quick test_iter_ascending;
    Alcotest.test_case "fold" `Quick test_fold;
    Alcotest.test_case "range inclusive" `Quick test_range_inclusive;
    Alcotest.test_case "range empty" `Quick test_range_empty;
    Alcotest.test_case "range all" `Quick test_range_all;
    Alcotest.test_case "balance under sequential inserts" `Quick
      test_balanced_sequential;
  ]

let () = Alcotest.run "avl" [ ("avl", suite); ("avl-props", qcheck_suite) ]
