(* Direct tests of the coarse- and medium-grained lock runtimes'
   semantics (paper §4 and Figure 5): exclusion, read-sharing,
   profile-driven lock modes, structural isolation, and the
   concurrency the medium strategy permits that coarse does not. *)

module Coarse = Sb7_runtime.Coarse_runtime
module Medium = Sb7_runtime.Medium_runtime
module P = Sb7_runtime.Op_profile

let ro_profile name doms = P.make ~name ~reads:doms ()
let w_profile name doms = P.make ~name ~writes:doms ()
let sm_profile name = P.make ~name ~structural:true ()

(* Barrier-ish helper: wait until a flag rises, with a timeout so a
   deadlock fails the test instead of hanging it. *)
let wait_for ?(timeout_s = 5.) flag =
  let t0 = Unix.gettimeofday () in
  while (not (Atomic.get flag)) && Unix.gettimeofday () -. t0 < timeout_s do
    Domain.cpu_relax ()
  done;
  Atomic.get flag

(* Run [a] and [b] concurrently; returns true iff both were observed
   inside their critical sections at the same time. *)
let overlap atomic_a profile_a atomic_b profile_b =
  let a_in = Atomic.make false and b_in = Atomic.make false in
  let overlapped = Atomic.make false in
  let body own other () =
    Atomic.set own true;
    (* Give the other operation a moment to enter. *)
    let t0 = Unix.gettimeofday () in
    while
      (not (Atomic.get other)) && Unix.gettimeofday () -. t0 < 0.2
    do
      Domain.cpu_relax ()
    done;
    if Atomic.get other then Atomic.set overlapped true;
    Atomic.set own false
  in
  let da =
    Domain.spawn (fun () -> atomic_a ~profile:profile_a (body a_in b_in))
  in
  let db =
    Domain.spawn (fun () -> atomic_b ~profile:profile_b (body b_in a_in))
  in
  Domain.join da;
  Domain.join db;
  Atomic.get overlapped

let test_coarse_readers_share () =
  Alcotest.(check bool) "two read-only ops overlap" true
    (overlap Coarse.atomic
       (ro_profile "r1" [ P.Manual ])
       Coarse.atomic
       (ro_profile "r2" [ P.Atomic_parts ]))

let test_coarse_writer_excludes_all () =
  Alcotest.(check bool) "writer excludes reader even on disjoint domains"
    false
    (overlap Coarse.atomic
       (w_profile "w" [ P.Manual ])
       Coarse.atomic
       (ro_profile "r" [ P.Atomic_parts ]))

let test_medium_disjoint_writers_overlap () =
  Alcotest.(check bool) "writers on disjoint domains overlap" true
    (overlap Medium.atomic
       (w_profile "w1" [ P.Manual ])
       Medium.atomic
       (w_profile "w2" [ P.Atomic_parts ]))

let test_medium_same_domain_writers_exclude () =
  Alcotest.(check bool) "writers on the same domain exclude" false
    (overlap Medium.atomic
       (w_profile "w1" [ P.Documents ])
       Medium.atomic
       (w_profile "w2" [ P.Documents ]))

let test_medium_reader_writer_same_domain_exclude () =
  Alcotest.(check bool) "reader and writer on one domain exclude" false
    (overlap Medium.atomic
       (ro_profile "r" [ P.Assembly_level 3 ])
       Medium.atomic
       (w_profile "w" [ P.Assembly_level 3 ]))

let test_medium_structural_excludes_everything () =
  Alcotest.(check bool) "SM excludes a disjoint-domain reader" false
    (overlap Medium.atomic (sm_profile "sm") Medium.atomic
       (ro_profile "r" [ P.Manual ]));
  Alcotest.(check bool) "SM excludes another SM" false
    (overlap Medium.atomic (sm_profile "sm1") Medium.atomic
       (sm_profile "sm2"))

let test_medium_readers_share_domain () =
  Alcotest.(check bool) "readers share a domain lock" true
    (overlap Medium.atomic
       (ro_profile "r1" [ P.Composite_parts ])
       Medium.atomic
       (ro_profile "r2" [ P.Composite_parts ]))

(* Deadlock freedom: many domains, overlapping multi-domain write
   profiles in every order. The canonical acquisition order must keep
   this loop running to completion. *)
let test_medium_no_deadlock_under_crossing_profiles () =
  let profiles =
    [|
      w_profile "a" [ P.Assembly_level 1; P.Documents ];
      w_profile "b" [ P.Documents; P.Manual ];
      w_profile "c" [ P.Manual; P.Assembly_level 1 ];
      w_profile "d" (P.all_assembly_levels @ [ P.Manual ]);
      sm_profile "e";
    |]
  in
  let done_flag = Atomic.make false in
  let worker seed () =
    let rng = Sb7_core.Sb_random.create ~seed in
    for _ = 1 to 2_000 do
      let p = profiles.(Sb7_core.Sb_random.int rng (Array.length profiles)) in
      Medium.atomic ~profile:p (fun () -> ())
    done
  in
  let ds = List.init 4 (fun i -> Domain.spawn (worker (i + 1))) in
  let watchdog =
    Domain.spawn (fun () -> ignore (wait_for ~timeout_s:30. done_flag))
  in
  List.iter Domain.join ds;
  Atomic.set done_flag true;
  Domain.join watchdog;
  Alcotest.(check pass) "completed without deadlock" () ()

let test_exception_releases_locks () =
  (try
     Medium.atomic ~profile:(w_profile "w" [ P.Manual; P.Documents ])
       (fun () -> failwith "boom")
   with Failure _ -> ());
  (* Locks must be free again. *)
  Medium.atomic ~profile:(w_profile "w2" [ P.Manual; P.Documents ]) (fun () ->
      ());
  (try Coarse.atomic ~profile:(sm_profile "sm") (fun () -> failwith "boom")
   with Failure _ -> ());
  Coarse.atomic ~profile:(w_profile "w" [ P.Manual ]) (fun () -> ());
  Alcotest.(check pass) "locks released after exceptions" () ()

let test_stats_count_modes () =
  Coarse.reset_stats ();
  Coarse.atomic ~profile:(ro_profile "r" [ P.Manual ]) (fun () -> ());
  Coarse.atomic ~profile:(w_profile "w" [ P.Manual ]) (fun () -> ());
  Coarse.atomic ~profile:(sm_profile "sm") (fun () -> ());
  let get k l = Option.value (List.assoc_opt k l) ~default:(-1) in
  let s = Coarse.stats () in
  Alcotest.(check int) "one read acquisition" 1 (get "read_acquisitions" s);
  Alcotest.(check int) "two write acquisitions (update + SM)" 2
    (get "write_acquisitions" s);
  Medium.reset_stats ();
  Medium.atomic
    ~profile:(P.make ~name:"rw" ~reads:[ P.Manual ] ~writes:[ P.Documents ] ())
    (fun () -> ());
  let s = Medium.stats () in
  Alcotest.(check int) "medium read locks" 1 (get "read_acquisitions" s);
  Alcotest.(check int) "medium write locks" 1 (get "write_acquisitions" s);
  Medium.atomic ~profile:(sm_profile "sm") (fun () -> ());
  let s = Medium.stats () in
  Alcotest.(check int) "structural op counted" 1 (get "structural_ops" s)

let suite =
  [
    Alcotest.test_case "coarse readers share" `Slow test_coarse_readers_share;
    Alcotest.test_case "coarse writer excludes all" `Slow
      test_coarse_writer_excludes_all;
    Alcotest.test_case "medium disjoint writers overlap" `Slow
      test_medium_disjoint_writers_overlap;
    Alcotest.test_case "medium same-domain writers exclude" `Slow
      test_medium_same_domain_writers_exclude;
    Alcotest.test_case "medium reader/writer exclude" `Slow
      test_medium_reader_writer_same_domain_exclude;
    Alcotest.test_case "medium SM isolation" `Slow
      test_medium_structural_excludes_everything;
    Alcotest.test_case "medium readers share" `Slow
      test_medium_readers_share_domain;
    Alcotest.test_case "medium deadlock freedom" `Slow
      test_medium_no_deadlock_under_crossing_profiles;
    Alcotest.test_case "exceptions release locks" `Quick
      test_exception_releases_locks;
    Alcotest.test_case "stats count lock modes" `Quick test_stats_count_modes;
  ]

let () = Alcotest.run "lock_runtimes" [ ("lock_runtimes", suite) ]
