(* Soak-test driver: repeat full-surface benchmark cycles across every
   strategy and workload, verifying the structural invariants after
   each cycle.

     dune exec bin/soak.exe -- [ROUNDS] [OPS_PER_THREAD] [THREADS] *)

let () =
  let arg i default =
    if Array.length Sys.argv > i then int_of_string Sys.argv.(i) else default
  in
  let rounds = arg 1 2 in
  let ops_per_thread = arg 2 500 in
  let threads = arg 3 4 in
  Format.printf
    "Soak: %d rounds x (6 strategies x 3 workloads), %d threads x %d ops \
     per cycle@."
    rounds threads ops_per_thread;
  let all_clean = ref true in
  for round = 1 to rounds do
    Format.printf "@.round %d:@." round;
    let report =
      Sb7_harness.Soak.run ~threads ~ops_per_thread ~seed:(42 + round)
        ~progress:(fun c ->
          Format.printf "  %a@." Sb7_harness.Soak.pp_cycle c)
        ()
    in
    if not report.Sb7_harness.Soak.clean then all_clean := false;
    Format.printf "round %d: %d operations, %s@." round
      report.Sb7_harness.Soak.total_operations
      (if report.Sb7_harness.Soak.clean then "all invariants hold"
       else "INVARIANT VIOLATIONS")
  done;
  if !all_clean then Format.printf "@.SOAK PASSED@."
  else begin
    Format.printf "@.SOAK FAILED@.";
    exit 1
  end
