(** The medium-grained locking strategy of the paper (its Figure 5):

    - one read-write lock per lock domain: each of the 7 assembly
      levels, all composite parts, all atomic parts, all documents,
      and the manual;
    - one additional "structure" read-write lock, acquired in write
      mode by structure-modification operations (isolating them
      completely) and in read mode by every other operation.

    Domain locks are acquired in the canonical order defined by
    {!Op_profile.locking_plan}, so the strategy is deadlock-free. *)

module Rwlock = Sb7_rwlock.Rwlock

let name = "medium"

type 'a tvar = 'a ref

let make v = ref v
let read tv = !tv
let write tv v = tv := v

let structure_lock = Rwlock.create ~name:"structure" ()

let domain_locks =
  Array.init Op_profile.num_domains (fun i ->
      Rwlock.create ~name:(Printf.sprintf "domain-%d" i) ())

let lock_of_domain d = domain_locks.(Op_profile.domain_rank d)

let read_acquisitions = Atomic.make 0
let write_acquisitions = Atomic.make 0
let structural_ops = Atomic.make 0

let acquire_plan plan =
  List.iter
    (fun (d, mode) ->
      match mode with
      | `Read ->
        ignore (Atomic.fetch_and_add read_acquisitions 1);
        Rwlock.acquire_read (lock_of_domain d)
      | `Write ->
        ignore (Atomic.fetch_and_add write_acquisitions 1);
        Rwlock.acquire_write (lock_of_domain d))
    plan

let release_plan plan =
  List.iter
    (fun (d, mode) ->
      match mode with
      | `Read -> Rwlock.release_read (lock_of_domain d)
      | `Write -> Rwlock.release_write (lock_of_domain d))
    (List.rev plan)

let atomic ~profile f =
  let structure_mode : Rwlock.mode =
    if profile.Op_profile.structural then begin
      ignore (Atomic.fetch_and_add structural_ops 1);
      Write
    end
    else Read
  in
  let plan = Op_profile.locking_plan profile in
  Rwlock.acquire structure_lock structure_mode;
  acquire_plan plan;
  match f () with
  | result ->
    release_plan plan;
    Rwlock.release structure_lock structure_mode;
    result
  | exception exn ->
    release_plan plan;
    Rwlock.release structure_lock structure_mode;
    raise exn

let stats () =
  [
    ("read_acquisitions", Atomic.get read_acquisitions);
    ("write_acquisitions", Atomic.get write_acquisitions);
    ("structural_ops", Atomic.get structural_ops);
  ]

let reset_stats () =
  Atomic.set read_acquisitions 0;
  Atomic.set write_acquisitions 0;
  Atomic.set structural_ops 0
