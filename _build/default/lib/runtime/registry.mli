(** Runtime lookup by command-line name. *)

type packed = (module Runtime_intf.S)

(** All strategies, in presentation order:
    seq, coarse, medium, fine, tl2, lsa, astm. *)
val all : (string * packed) list

val names : string list

val find : string -> (packed, string) result
