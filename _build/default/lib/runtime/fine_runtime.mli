(** The fine-grained locking strategy: strict two-phase locking at tvar
    granularity with no-wait deadlock avoidance and undo-based restart —
    the "ultimate baseline" the paper's §6 leaves as future work. See
    the implementation header for the full design discussion. *)

include Runtime_intf.S
