(** The coarse-grained locking strategy of the paper: one global
    read-write lock protects the entire data structure. Read-only
    operations take it in read mode, everything else in write mode. *)

let name = "coarse"

type 'a tvar = 'a ref

let make v = ref v
let read tv = !tv
let write tv v = tv := v

let global = Sb7_rwlock.Rwlock.create ~name:"global" ()
let read_acquisitions = Atomic.make 0
let write_acquisitions = Atomic.make 0

let atomic ~profile f =
  let mode : Sb7_rwlock.Rwlock.mode =
    if Op_profile.read_only profile then Read else Write
  in
  (match mode with
  | Read -> ignore (Atomic.fetch_and_add read_acquisitions 1)
  | Write -> ignore (Atomic.fetch_and_add write_acquisitions 1));
  Sb7_rwlock.Rwlock.with_lock global mode f

let stats () =
  [
    ("read_acquisitions", Atomic.get read_acquisitions);
    ("write_acquisitions", Atomic.get write_acquisitions);
  ]

let reset_stats () =
  Atomic.set read_acquisitions 0;
  Atomic.set write_acquisitions 0
