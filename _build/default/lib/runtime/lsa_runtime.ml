(** The LSA multi-version STM as a benchmark runtime. Unlike the other
    STM runtimes it inspects the operation profile: read-only
    operations run as snapshot transactions (no validation, no
    aborts against writers), update operations as TL2-like update
    transactions. *)

module Stm = Sb7_stm.Lsa

let name = Stm.name

type 'a tvar = 'a Stm.tvar

let make = Stm.make
let read = Stm.read
let write = Stm.write

let atomic ~profile f =
  if Op_profile.read_only profile then Stm.atomic_snapshot f
  else Stm.atomic f

let stats () = Sb7_stm.Stm_stats.to_assoc (Stm.stats ())
let reset_stats = Stm.reset_stats
