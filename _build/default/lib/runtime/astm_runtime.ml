(** The ASTM-style STM as a benchmark runtime: every operation is one
    flat transaction, exactly the "straightforward approach of an
    average programmer" the paper evaluates. The lock profile is
    ignored. *)

module Stm = Sb7_stm.Astm

let name = Stm.name

type 'a tvar = 'a Stm.tvar

let make = Stm.make
let read = Stm.read
let write = Stm.write

let atomic ~profile f =
  ignore (profile : Op_profile.t);
  Stm.atomic f

let stats () = Sb7_stm.Stm_stats.to_assoc (Stm.stats ())
let reset_stats = Stm.reset_stats
