(** The no-synchronization runtime: plain references, [atomic] runs the
    operation directly. Only safe single-threaded; used for setup
    validation, deterministic tests and as the bechamel micro-benchmark
    baseline. *)

let name = "seq"

type 'a tvar = 'a ref

let make v = ref v
let read tv = !tv
let write tv v = tv := v

let operations = Atomic.make 0

let atomic ~profile f =
  ignore (profile : Op_profile.t);
  ignore (Atomic.fetch_and_add operations 1);
  f ()

let stats () = [ ("operations", Atomic.get operations) ]
let reset_stats () = Atomic.set operations 0
