lib/runtime/tl2_runtime.ml: Op_profile Sb7_stm
