lib/runtime/medium_runtime.mli: Runtime_intf
