lib/runtime/runtime_intf.ml: Op_profile
