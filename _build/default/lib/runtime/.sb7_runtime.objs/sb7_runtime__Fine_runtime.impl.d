lib/runtime/fine_runtime.ml: Atomic Domain Hashtbl List Op_profile Sb7_stm
