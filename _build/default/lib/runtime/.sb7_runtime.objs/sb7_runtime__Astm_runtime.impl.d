lib/runtime/astm_runtime.ml: Op_profile Sb7_stm
