lib/runtime/coarse_runtime.ml: Atomic Op_profile Sb7_rwlock
