lib/runtime/lsa_runtime.ml: Op_profile Sb7_stm
