lib/runtime/op_profile.mli: Format
