lib/runtime/registry.ml: Astm_runtime Coarse_runtime Fine_runtime List Lsa_runtime Medium_runtime Printf Runtime_intf Seq_runtime String Tl2_runtime
