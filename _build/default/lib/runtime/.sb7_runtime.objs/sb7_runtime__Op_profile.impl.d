lib/runtime/op_profile.ml: Format Hashtbl List Printf String
