lib/runtime/seq_runtime.mli: Runtime_intf
