lib/runtime/fine_runtime.mli: Runtime_intf
