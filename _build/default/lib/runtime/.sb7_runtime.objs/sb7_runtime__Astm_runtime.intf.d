lib/runtime/astm_runtime.mli: Runtime_intf
