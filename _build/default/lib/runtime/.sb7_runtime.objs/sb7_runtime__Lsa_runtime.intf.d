lib/runtime/lsa_runtime.mli: Runtime_intf
