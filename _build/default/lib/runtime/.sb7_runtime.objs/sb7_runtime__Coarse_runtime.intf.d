lib/runtime/coarse_runtime.mli: Runtime_intf
