lib/runtime/seq_runtime.ml: Atomic Op_profile
