lib/runtime/registry.mli: Runtime_intf
