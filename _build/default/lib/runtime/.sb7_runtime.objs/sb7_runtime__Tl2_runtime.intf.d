lib/runtime/tl2_runtime.mli: Runtime_intf
