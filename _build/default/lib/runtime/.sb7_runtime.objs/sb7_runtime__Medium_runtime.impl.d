lib/runtime/medium_runtime.ml: Array Atomic List Op_profile Printf Sb7_rwlock
