lib/rwlock/rwlock.ml: Condition Mutex
