lib/rwlock/rwlock.mli:
