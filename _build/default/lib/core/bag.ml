(** Bags — lists with multiplicity in a transactional variable.

    OO7's many-to-many association between base assemblies and
    composite parts is implemented "with two bags each" (paper §2.1):
    one bag of composite parts per base assembly and one bag of owning
    base assemblies per composite part. SM3 may link the same pair
    twice, so multiplicity matters.

    A bag is just a ['a list R.tvar]; these helpers keep the
    multiplicity discipline in one place. *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  type 'a t = 'a list R.tvar

  let create () : 'a t = R.make []
  let of_list l : 'a t = R.make l
  let contents (t : 'a t) = R.read t
  let size t = List.length (R.read t)
  let is_empty t = R.read t = []
  let add t x = R.write t (x :: R.read t)
  let iter f t = List.iter f (R.read t)
  let exists p t = List.exists p (R.read t)

  (** Occurrences of [x] (per [eq]). *)
  let count ~eq t x = List.length (List.filter (eq x) (R.read t))

  let mem ~eq t x = List.exists (eq x) (R.read t)

  (** Remove one occurrence of [x]; no-op when absent. Returns whether
      an occurrence was removed. *)
  let remove_one ~eq t x =
    let rec go acc = function
      | [] -> None
      | y :: rest ->
        if eq x y then Some (List.rev_append acc rest) else go (y :: acc) rest
    in
    match go [] (R.read t) with
    | None -> false
    | Some rest ->
      R.write t rest;
      true

  (** Remove every occurrence of [x]; returns how many were removed. *)
  let remove_all ~eq t x =
    let l = R.read t in
    let kept = List.filter (fun y -> not (eq x y)) l in
    let removed = List.length l - List.length kept in
    if removed > 0 then R.write t kept;
    removed

  let clear t = R.write t []

  (** A uniformly random element, or operation failure on an empty bag
      (the specified ST1/ST2/SM4 failure mode). *)
  let random_element rng t ~what =
    match R.read t with
    | [] -> Common.fail "%s: empty" what
    | l -> Sb_random.element rng l
end
