(** The four operation categories of STMBench7 (paper §3). *)

type t =
  | Long_traversal
  | Short_traversal
  | Short_operation
  | Structure_modification

let all =
  [ Long_traversal; Short_traversal; Short_operation; Structure_modification ]

let to_string = function
  | Long_traversal -> "long-traversal"
  | Short_traversal -> "short-traversal"
  | Short_operation -> "short-operation"
  | Structure_modification -> "structure-modification"

let compare = Stdlib.compare
let equal a b = compare a b = 0
