(** Immutable AVL map with an explicit comparison function, the value
    stored inside a single transactional variable by {!Avl_index} — the
    OCaml analogue of the original benchmark's [TreeMap] indexes.

    The comparison function must be consistent across all calls on a
    given tree; {!Avl_index} guarantees this by capturing it once. *)

type ('k, 'v) t =
  | Leaf
  | Node of {
      left : ('k, 'v) t;
      key : 'k;
      value : 'v;
      right : ('k, 'v) t;
      height : int;
    }

let empty = Leaf

let height = function
  | Leaf -> 0
  | Node { height; _ } -> height

let node left key value right =
  Node { left; key; value; right; height = 1 + max (height left) (height right) }

let balance_factor = function
  | Leaf -> 0
  | Node { left; right; _ } -> height left - height right

let rotate_right = function
  | Node { left = Node l; key; value; right; _ } ->
    node l.left l.key l.value (node l.right key value right)
  | t -> t

let rotate_left = function
  | Node { left; key; value; right = Node r; _ } ->
    node (node left key value r.left) r.key r.value r.right
  | t -> t

let rebalance t =
  let bf = balance_factor t in
  if bf > 1 then
    match t with
    | Node ({ left; _ } as n) ->
      if balance_factor left < 0 then
        rotate_right (node (rotate_left left) n.key n.value n.right)
      else rotate_right t
    | Leaf -> t
  else if bf < -1 then
    match t with
    | Node ({ right; _ } as n) ->
      if balance_factor right > 0 then
        rotate_left (node n.left n.key n.value (rotate_right right))
      else rotate_left t
    | Leaf -> t
  else t

let rec add cmp k v = function
  | Leaf -> node Leaf k v Leaf
  | Node n ->
    let c = cmp k n.key in
    if c = 0 then node n.left k v n.right
    else if c < 0 then rebalance (node (add cmp k v n.left) n.key n.value n.right)
    else rebalance (node n.left n.key n.value (add cmp k v n.right))

let rec find cmp k = function
  | Leaf -> None
  | Node n ->
    let c = cmp k n.key in
    if c = 0 then Some n.value
    else if c < 0 then find cmp k n.left
    else find cmp k n.right

let rec min_binding = function
  | Leaf -> None
  | Node { left = Leaf; key; value; _ } -> Some (key, value)
  | Node { left; _ } -> min_binding left

let rec remove_min = function
  | Leaf -> Leaf
  | Node { left = Leaf; right; _ } -> right
  | Node n -> rebalance (node (remove_min n.left) n.key n.value n.right)

let rec remove cmp k = function
  | Leaf -> Leaf
  | Node n ->
    let c = cmp k n.key in
    if c < 0 then rebalance (node (remove cmp k n.left) n.key n.value n.right)
    else if c > 0 then rebalance (node n.left n.key n.value (remove cmp k n.right))
    else begin
      match (n.left, n.right) with
      | Leaf, r -> r
      | l, Leaf -> l
      | l, r -> (
        match min_binding r with
        | None -> assert false
        | Some (sk, sv) -> rebalance (node l sk sv (remove_min r)))
    end

let mem cmp k t = Option.is_some (find cmp k t)

let rec iter f = function
  | Leaf -> ()
  | Node n ->
    iter f n.left;
    f n.key n.value;
    iter f n.right

let rec fold f t acc =
  match t with
  | Leaf -> acc
  | Node n -> fold f n.right (f n.key n.value (fold f n.left acc))

let rec cardinal = function
  | Leaf -> 0
  | Node n -> 1 + cardinal n.left + cardinal n.right

(** Bindings with [lo <= key <= hi], in ascending key order. *)
let range cmp lo hi t =
  let rec collect t acc =
    match t with
    | Leaf -> acc
    | Node n ->
      let c_lo = cmp n.key lo and c_hi = cmp n.key hi in
      let acc = if c_hi < 0 then collect n.right acc else acc in
      let acc = if c_lo >= 0 && c_hi <= 0 then (n.key, n.value) :: acc else acc in
      if c_lo > 0 then collect n.left acc else acc
  in
  collect t []

(** Structural invariants, for property tests. *)
let rec well_formed cmp = function
  | Leaf -> true
  | Node n ->
    let keys_ok =
      (match n.left with
      | Leaf -> true
      | Node l -> cmp l.key n.key < 0 && max_key_lt cmp n.left n.key)
      &&
      match n.right with
      | Leaf -> true
      | Node r -> cmp n.key r.key < 0 && min_key_gt cmp n.right n.key
    in
    keys_ok
    && abs (height n.left - height n.right) <= 1
    && n.height = 1 + max (height n.left) (height n.right)
    && well_formed cmp n.left
    && well_formed cmp n.right

and max_key_lt cmp t k =
  match t with
  | Leaf -> true
  | Node n -> cmp n.key k < 0 && max_key_lt cmp n.left k && max_key_lt cmp n.right k

and min_key_gt cmp t k =
  match t with
  | Leaf -> true
  | Node n -> cmp n.key k > 0 && min_key_gt cmp n.left k && min_key_gt cmp n.right k
