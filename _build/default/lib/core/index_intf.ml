(** First-class index values (Table 1 of the paper lists the six index
    instances the benchmark maintains).

    An index is a record of closures so the implementation — and hence
    its conflict granularity under an STM — can be chosen per benchmark
    run: see {!Avl_index} (one big object, the default, matching the
    original's [TreeMap]), {!Flat_index} (one big object whose every
    update physically copies the whole payload) and {!Btree_index}
    (one transactional variable per node — the per-node-synchronized
    B-tree the paper's §5 proposes as the scalable fix). *)

type ('k, 'v) t = {
  name : string;
  get : 'k -> 'v option;
  put : 'k -> 'v -> unit;
  remove : 'k -> bool;  (** true if the key was present *)
  range : 'k -> 'k -> ('k * 'v) list;
      (** bindings with key in the inclusive range, ascending *)
  iter : ('k -> 'v -> unit) -> unit;  (** ascending key order *)
  size : unit -> int;
}

type kind =
  | Avl  (** functional AVL map in a single tvar *)
  | Flat  (** sorted array in a single tvar; updates copy it entirely *)
  | Btree  (** B+tree with a tvar per node *)

let kind_to_string = function
  | Avl -> "avl"
  | Flat -> "flat"
  | Btree -> "btree"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "avl" -> Ok Avl
  | "flat" -> Ok Flat
  | "btree" -> Ok Btree
  | other -> Error (Printf.sprintf "unknown index kind %S" other)

let all_kinds = [ Avl; Flat; Btree ]
