(** Shared definitions for the benchmark core. *)

(** Raised by an operation that cannot proceed, per the STMBench7
    specification (e.g. a random-ID index lookup misses, an ID pool is
    exhausted, or a structural precondition fails). The benchmark
    counts these as failed operations; they are normal behaviour, not
    errors. *)
exception Operation_failed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Operation_failed s)) fmt
