(** Object-census over a benchmark structure, for reports, examples and
    tests. Read-only; run quiesced or inside a transaction. *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  module T = Types.Make (R)
  module S = Setup.Make (R)

  type t = {
    complex_assemblies : int;
    base_assemblies : int;
    composite_parts : int;
    atomic_parts : int;
    connections : int;
    documents : int;
    assembly_links : int; (* base-assembly -> composite-part references *)
  }

  let collect (setup : S.t) : t =
    let complex = ref 0 and base = ref 0 and links = ref 0 in
    let rec walk (ca : T.complex_assembly) =
      incr complex;
      List.iter
        (function
          | T.Complex c -> walk c
          | T.Base b ->
            incr base;
            links := !links + List.length (R.read b.T.ba_components))
        (R.read ca.T.ca_sub)
    in
    walk setup.S.module_.T.mod_design_root;
    let connections = ref 0 in
    setup.S.ap_id_index.iter (fun _ p ->
        connections := !connections + List.length (R.read p.T.ap_to));
    {
      complex_assemblies = !complex;
      base_assemblies = !base;
      composite_parts = setup.S.cp_id_index.size ();
      atomic_parts = setup.S.ap_id_index.size ();
      connections = !connections;
      documents = setup.S.doc_title_index.size ();
      assembly_links = !links;
    }

  let pp ppf t =
    Format.fprintf ppf
      "complex assemblies: %d@ base assemblies: %d@ composite parts: %d@ \
       atomic parts: %d@ connections: %d@ documents: %d@ assembly->part \
       links: %d"
      t.complex_assemblies t.base_assemblies t.composite_parts
      t.atomic_parts t.connections t.documents t.assembly_links
end
