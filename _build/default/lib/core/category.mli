(** The four operation categories of STMBench7 (paper §3). *)

type t =
  | Long_traversal
  | Short_traversal
  | Short_operation
  | Structure_modification

val all : t list
val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
