(** The eight structure-modification operations SM1–SM8 (paper Appendix
    B.2.4).

    Every operation validates its preconditions — index lookups, ID-pool
    capacity, "not the only child" constraints — before mutating
    anything, so a failure never leaves a partial update behind. This
    matters for the lock-based runtimes, which cannot roll back. *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  module T = Types.Make (R)
  module S = Setup.Make (R)
  module Nav = Nav.Make (R)

  (** SM1: create a composite part (document + atomic-part graph) in the
      design library, not linked to any base assembly. Fails when the
      maximum number of composite parts is reached. *)
  let sm1 rng setup =
    let cp = S.create_composite_part setup rng in
    cp.T.cp_id

  (** SM2: delete the composite part with a random ID, with its document
      and atomic parts. *)
  let sm2 rng setup =
    let cp = Nav.lookup_composite_part rng setup in
    S.delete_composite_part setup cp;
    cp.T.cp_id

  (** SM3: create a link between a random base assembly and a random
      composite part (bag semantics: duplicates allowed). *)
  let sm3 rng setup =
    let ba = Nav.lookup_base_assembly rng setup in
    let cp = Nav.lookup_composite_part rng setup in
    S.B.add ba.T.ba_components cp;
    S.B.add cp.T.cp_used_in ba;
    1

  (** SM4: delete a random link between a random base assembly and one
      of its composite parts. *)
  let sm4 rng setup =
    let ba = Nav.lookup_base_assembly rng setup in
    match R.read ba.T.ba_components with
    | [] -> Common.fail "SM4: base assembly %d has no links" ba.T.ba_id
    | components ->
      let cp = Sb_random.element rng components in
      ignore (S.B.remove_one ~eq:S.eq_cp ba.T.ba_components cp);
      ignore (S.B.remove_one ~eq:S.eq_ba cp.T.cp_used_in ba);
      1

  (** SM5: create a new base assembly as a sibling of a random one.
      The new assembly starts with no composite parts (links are SM3's
      job). *)
  let sm5 rng setup =
    let ba = Nav.lookup_base_assembly rng setup in
    let parent =
      match ba.T.ba_super with
      | Some p -> p
      | None -> assert false
    in
    let id = S.Pool.get setup.S.ba_pool in
    let ba' = S.new_base_assembly setup rng ~id ~parent ~components:[] in
    ba'.T.ba_id

  (** SM6: delete a random base assembly; fails if it is its parent's
      only child. *)
  let sm6 rng setup =
    let ba = Nav.lookup_base_assembly rng setup in
    let parent =
      match ba.T.ba_super with
      | Some p -> p
      | None -> assert false
    in
    if List.length (R.read parent.T.ca_sub) <= 1 then
      Common.fail "SM6: base assembly %d is an only child" ba.T.ba_id;
    S.detach_assembly parent (T.Base ba);
    S.dispose_base_assembly setup ba;
    ba.T.ba_id

  (* Number of complex / base assemblies in an SM7 subtree hung under a
     complex assembly at [level]: the subtree root sits at [level - 1],
     base assemblies at level 1, fanout [branch]. *)
  let sm7_subtree_demand ~branch ~level =
    let rec geom j = if j < 0 then 0 else Parameters.pow branch j + geom (j - 1) in
    let complex = geom (level - 3) in
    let base = Parameters.pow branch (level - 2) in
    (complex, base)

  (** SM7: add an assembly subtree of full height under a random complex
      assembly. Fails if ID capacity would be exceeded (checked up
      front, so a failure mutates nothing). *)
  let sm7 rng setup =
    let ca = Nav.lookup_complex_assembly rng setup in
    let branch = setup.S.params.Parameters.num_assm_per_assm in
    let complex_needed, base_needed =
      sm7_subtree_demand ~branch ~level:ca.T.ca_level
    in
    if S.Pool.available setup.S.ca_pool < complex_needed then
      Common.fail "SM7: complex-assembly id pool exhausted";
    if S.Pool.available setup.S.ba_pool < base_needed then
      Common.fail "SM7: base-assembly id pool exhausted";
    let created = ref 0 in
    let rec grow (parent : T.complex_assembly) level =
      incr created;
      if level = 1 then
        ignore
          (S.new_base_assembly setup rng
             ~id:(S.Pool.get setup.S.ba_pool)
             ~parent ~components:[])
      else begin
        let node =
          S.new_complex_assembly setup rng
            ~id:(S.Pool.get setup.S.ca_pool)
            ~parent:(Some parent) ~level
        in
        for _ = 1 to branch do
          grow node (level - 1)
        done
      end
    in
    grow ca (ca.T.ca_level - 1);
    !created

  (** SM8: delete the whole subtree under (and including) a random
      complex assembly; fails on the root or an only child. *)
  let sm8 rng setup =
    let ca = Nav.lookup_complex_assembly rng setup in
    let parent =
      match ca.T.ca_super with
      | None -> Common.fail "SM8: cannot delete the root assembly"
      | Some p -> p
    in
    if List.length (R.read parent.T.ca_sub) <= 1 then
      Common.fail "SM8: complex assembly %d is an only child" ca.T.ca_id;
    S.detach_assembly parent (T.Complex ca);
    let deleted = ref 0 in
    let rec dispose = function
      | T.Base ba ->
        S.dispose_base_assembly setup ba;
        incr deleted
      | T.Complex c ->
        List.iter dispose (R.read c.T.ca_sub);
        S.dispose_complex_assembly setup c;
        incr deleted
    in
    dispose (T.Complex ca);
    !deleted
end
