(** One functor application tying the whole benchmark core to a
    synchronization runtime. *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  module Runtime = R
  module Types = Types.Make (R)
  module Id_pool = Id_pool.Make (R)
  module Bag = Bag.Make (R)
  module Index = Index.Make (R)
  module Avl_index = Avl_index.Make (R)
  module Flat_index = Flat_index.Make (R)
  module Btree_index = Btree_index.Make (R)
  module Setup = Setup.Make (R)
  module Nav = Nav.Make (R)
  module Traversals = Traversals.Make (R)
  module Short_traversals = Short_traversals.Make (R)
  module Short_ops = Short_ops.Make (R)
  module Structure_mods = Structure_mods.Make (R)
  module Operation = Operation.Make (R)
  module Invariants = Invariants.Make (R)
  module Structure_stats = Structure_stats.Make (R)
  module Structure_dot = Structure_dot.Make (R)
end
