(** Graphviz export of a benchmark structure — the assembly hierarchy
    with its composite-part links (Figure 1 of the paper), and
    optionally one composite part's atomic-part graph. Debugging and
    documentation tooling; emit with [dot -Tsvg]. *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  module T = Types.Make (R)
  module S = Setup.Make (R)

  (** The module's assembly tree down to composite parts. Composite
      parts are shared, so several base assemblies may point at the
      same node — exactly the design-library sharing of OO7. *)
  let assembly_tree ppf (setup : S.t) =
    Format.fprintf ppf "digraph stmbench7 {@.";
    Format.fprintf ppf "  rankdir=TB;@.";
    Format.fprintf ppf "  node [fontsize=9];@.";
    let emitted_cps = Hashtbl.create 64 in
    let rec walk (ca : T.complex_assembly) =
      Format.fprintf ppf
        "  ca%d [label=\"CA %d\\nlevel %d\" shape=box];@." ca.T.ca_id
        ca.T.ca_id ca.T.ca_level;
      List.iter
        (function
          | T.Complex child ->
            Format.fprintf ppf "  ca%d -> ca%d;@." ca.T.ca_id child.T.ca_id;
            walk child
          | T.Base b ->
            Format.fprintf ppf "  ba%d [label=\"BA %d\" shape=ellipse];@."
              b.T.ba_id b.T.ba_id;
            Format.fprintf ppf "  ca%d -> ba%d;@." ca.T.ca_id b.T.ba_id;
            List.iter
              (fun (cp : T.composite_part) ->
                if not (Hashtbl.mem emitted_cps cp.T.cp_id) then begin
                  Hashtbl.replace emitted_cps cp.T.cp_id ();
                  Format.fprintf ppf
                    "  cp%d [label=\"CP %d\" shape=component];@." cp.T.cp_id
                    cp.T.cp_id
                end;
                Format.fprintf ppf "  ba%d -> cp%d [style=dashed];@."
                  b.T.ba_id cp.T.cp_id)
              (R.read b.T.ba_components))
        (R.read ca.T.ca_sub)
    in
    walk setup.S.module_.T.mod_design_root;
    (* Unlinked library parts (SM1 creations, or SM4 orphans). *)
    setup.S.cp_id_index.iter (fun id _ ->
        if not (Hashtbl.mem emitted_cps id) then
          Format.fprintf ppf
            "  cp%d [label=\"CP %d\\n(unlinked)\" shape=component \
             style=dotted];@."
            id id);
    Format.fprintf ppf "}@."

  (** One composite part's atomic-part graph with its connections. *)
  let part_graph ppf (cp : T.composite_part) =
    Format.fprintf ppf "digraph cp%d {@." cp.T.cp_id;
    Format.fprintf ppf "  node [shape=circle fontsize=8];@.";
    let root = R.read cp.T.cp_root_part in
    List.iter
      (fun (p : T.atomic_part) ->
        let extra = if p.T.ap_id = root.T.ap_id then " style=filled" else "" in
        Format.fprintf ppf "  ap%d [label=\"%d\"%s];@." p.T.ap_id p.T.ap_id
          extra;
        List.iter
          (fun (c : T.connection) ->
            Format.fprintf ppf "  ap%d -> ap%d [len=%d];@."
              c.T.conn_from.T.ap_id c.T.conn_to.T.ap_id c.T.conn_length)
          (R.read p.T.ap_to))
      (R.read cp.T.cp_parts);
    Format.fprintf ppf "}@."
end
