(** The twelve long traversals (paper Appendix B.2.1): T1–T6 and the
    long queries Q6, Q7. All originate from OO7 and never fail. *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  module T = Types.Make (R)
  module S = Setup.Make (R)
  module Nav = Nav.Make (R)

  (* T1-family skeleton: full depth-first traversal down to every atomic
     part, [on_part] applied once per part per composite-part reference,
     [on_root] applied to each graph's root part. Returns parts visited. *)
  let t1_like setup ~on_root ~on_part =
    Nav.traverse_composite_parts setup (fun (cp : T.composite_part) ->
        on_root (R.read cp.T.cp_root_part);
        Nav.dfs_atomic_graph (R.read cp.T.cp_root_part) on_part)

  let nothing (_ : T.atomic_part) = ()
  let touch (p : T.atomic_part) = ignore (T.touch_atomic_part p)

  (** T1: read-only deep traversal; returns atomic parts visited. *)
  let t1 (_rng : Sb_random.t) setup =
    t1_like setup ~on_root:nothing ~on_part:touch

  (** T2a: T1 + update (x/y swap) on each graph's root part. *)
  let t2a _rng setup = t1_like setup ~on_root:T.swap_xy ~on_part:touch

  (** T2b: T1 + update on every atomic part. *)
  let t2b _rng setup = t1_like setup ~on_root:nothing ~on_part:T.swap_xy

  (** T2c: T2b with each update performed 4 times, one by one. *)
  let t2c _rng setup =
    let update4 p =
      for _ = 1 to 4 do
        T.swap_xy p
      done
    in
    t1_like setup ~on_root:nothing ~on_part:update4

  (** T3a: T1 + indexed build-date update on each graph's root part
      (maintains the build-date index). *)
  let t3a _rng setup =
    t1_like setup
      ~on_root:(fun p -> S.update_atomic_part_date setup p)
      ~on_part:touch

  (** T3b: indexed update on every atomic part. *)
  let t3b _rng setup =
    t1_like setup ~on_root:nothing
      ~on_part:(fun p -> S.update_atomic_part_date setup p)

  (** T3c: T3b with each update performed 4 times. *)
  let t3c _rng setup =
    t1_like setup ~on_root:nothing ~on_part:(fun p ->
        for _ = 1 to 4 do
          S.update_atomic_part_date setup p
        done)

  (* T4/T5 skeleton: traversal down to documents only. *)
  let t4_like setup visit_doc =
    Nav.traverse_composite_parts setup (fun (cp : T.composite_part) ->
        visit_doc cp.T.cp_document)

  (** T4: count occurrences of 'I' in every document. *)
  let t4 _rng setup =
    t4_like setup (fun (d : T.document) ->
        Text.count_char (R.read d.T.doc_text) 'I')

  (** T5: toggle "I am"/"This is" in every document; returns total
      replacements. *)
  let t5 _rng setup =
    t4_like setup (fun (d : T.document) ->
        let text, count = Text.toggle_i_am (R.read d.T.doc_text) in
        R.write d.T.doc_text text;
        count)

  (** T6: like T1 but visits only each graph's root atomic part. *)
  let t6 _rng setup =
    Nav.traverse_composite_parts setup (fun (cp : T.composite_part) ->
        touch (R.read cp.T.cp_root_part);
        1)

  (** Q6: count complex assemblies that are ascendants of a base
      assembly older than at least one of its composite parts. *)
  let q6 _rng setup =
    let count = ref 0 in
    let rec visit_complex (ca : T.complex_assembly) =
      let matched_below =
        List.fold_left
          (fun acc child ->
            let m =
              match child with
              | T.Complex c -> visit_complex c
              | T.Base b -> base_matches b
            in
            m || acc)
          false
          (R.read ca.T.ca_sub)
      in
      if matched_below then begin
        ignore (T.touch_complex_assembly ca);
        incr count
      end;
      matched_below
    and base_matches (ba : T.base_assembly) =
      let ba_date = R.read ba.T.ba_build_date in
      List.exists
        (fun (cp : T.composite_part) -> R.read cp.T.cp_build_date > ba_date)
        (R.read ba.T.ba_components)
    in
    ignore (visit_complex setup.S.module_.T.mod_design_root);
    !count

  (** Q7: iterate every atomic part via the ID index. *)
  let q7 _rng setup =
    let count = ref 0 in
    setup.S.ap_id_index.iter (fun _ p ->
        touch p;
        incr count);
    !count
end
