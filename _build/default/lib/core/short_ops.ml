(** The fifteen short operations OP1–OP15 (paper Appendix B.2.3). *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  module T = Types.Make (R)
  module S = Setup.Make (R)
  module Nav = Nav.Make (R)

  (* OP1/OP9/OP15 skeleton: 10 random atomic-part index lookups; misses
     are skipped (OP1 "may process fewer than 10"), not failures. *)
  let op1_like rng setup visit =
    let processed = ref 0 in
    for _ = 1 to 10 do
      let id = Nav.random_atomic_part_id rng setup in
      match setup.S.ap_id_index.get id with
      | None -> ()
      | Some part ->
        visit part;
        incr processed
    done;
    !processed

  (** OP1 (Q1 in OO7): read 10 random atomic parts via the ID index. *)
  let op1 rng setup =
    op1_like rng setup (fun p -> ignore (T.touch_atomic_part p))

  (** OP9: OP1 + non-indexed update on each part. *)
  let op9 rng setup = op1_like rng setup T.swap_xy

  (** OP15: OP1 + indexed build-date update on each part. *)
  let op15 rng setup =
    op1_like rng setup (fun p -> S.update_atomic_part_date setup p)

  (* OP2/OP3/OP10 skeleton: build-date range query over the date
     index. [span] counts dates included, ending at the maximum. *)
  let date_range_like setup ~span visit =
    let hi = setup.S.params.Parameters.max_atomic_date in
    let lo = hi - span + 1 in
    let processed = ref 0 in
    List.iter
      (fun (_, bucket) ->
        List.iter
          (fun part ->
            visit part;
            incr processed)
          bucket)
      (setup.S.ap_date_index.range lo hi);
    !processed

  (** OP2 (Q2 in OO7): parts with build date in the newest 1% of the
      date range. *)
  let op2 _rng setup =
    date_range_like setup ~span:10 (fun p -> ignore (T.touch_atomic_part p))

  (** OP3 (Q3 in OO7): same with a 10% range. *)
  let op3 _rng setup =
    date_range_like setup ~span:100 (fun p -> ignore (T.touch_atomic_part p))

  (** OP10: OP2's range + non-indexed update on each part. *)
  let op10 _rng setup = date_range_like setup ~span:10 T.swap_xy

  (** OP4 (T8 in OO7): count 'I' occurrences in the manual. *)
  let op4 _rng setup =
    Text.count_char (R.read setup.S.module_.T.mod_manual.T.man_text) 'I'

  (** OP5 (T9 in OO7): 1 if the manual's first and last characters are
      equal, else 0. *)
  let op5 _rng setup =
    if Text.first_last_equal (R.read setup.S.module_.T.mod_manual.T.man_text)
    then 1
    else 0

  (** OP11: toggle the case of 'I'/'i' throughout the manual; returns
      the number of characters changed. An update of one very large
      object — an ASTM worst case. *)
  let op11 _rng setup =
    let manual = setup.S.module_.T.mod_manual in
    let text, count = Text.toggle_i_case (R.read manual.T.man_text) in
    R.write manual.T.man_text text;
    count

  (* OP6/OP12 skeleton: random complex assembly, then its siblings
     (fellow children of its parent; the root has no siblings and
     counts alone). *)
  let op6_like rng setup visit =
    let ca = Nav.lookup_complex_assembly rng setup in
    match ca.T.ca_super with
    | None ->
      visit ca;
      1
    | Some parent ->
      let count = ref 0 in
      List.iter
        (function
          | T.Complex sibling ->
            visit sibling;
            incr count
          | T.Base _ -> ())
        (R.read parent.T.ca_sub);
      !count

  (** OP6: read all sibling complex assemblies of a random complex
      assembly. *)
  let op6 rng setup =
    op6_like rng setup (fun ca -> ignore (T.touch_complex_assembly ca))

  (** OP12: OP6 + non-indexed build-date update on each sibling. *)
  let op12 rng setup =
    op6_like rng setup (fun (ca : T.complex_assembly) ->
        T.update_build_date_tvar ca.T.ca_build_date)

  (* OP7/OP13 skeleton: random base assembly, then its siblings. *)
  let op7_like rng setup visit =
    let ba = Nav.lookup_base_assembly rng setup in
    match ba.T.ba_super with
    | None -> assert false (* base assemblies always have a parent *)
    | Some parent ->
      let count = ref 0 in
      List.iter
        (function
          | T.Base sibling ->
            visit sibling;
            incr count
          | T.Complex _ -> ())
        (R.read parent.T.ca_sub);
      !count

  (** OP7: read all sibling base assemblies of a random base assembly. *)
  let op7 rng setup =
    op7_like rng setup (fun ba -> ignore (T.touch_base_assembly ba))

  (** OP13: OP7 + non-indexed build-date update on each sibling. *)
  let op13 rng setup =
    op7_like rng setup (fun (ba : T.base_assembly) ->
        T.update_build_date_tvar ba.T.ba_build_date)

  (* OP8/OP14 skeleton: random base assembly, then its composite
     parts. *)
  let op8_like rng setup visit =
    let ba = Nav.lookup_base_assembly rng setup in
    let count = ref 0 in
    List.iter
      (fun cp ->
        visit cp;
        incr count)
      (R.read ba.T.ba_components);
    !count

  (** OP8: read all composite parts of a random base assembly. *)
  let op8 rng setup =
    op8_like rng setup (fun cp -> ignore (T.touch_composite_part cp))

  (** OP14: OP8 + non-indexed build-date update on each part. *)
  let op14 rng setup =
    op8_like rng setup (fun (cp : T.composite_part) ->
        T.update_build_date_tvar cp.T.cp_build_date)
end
