(** Immutable AVL map with an explicit comparison function — the value
    {!Avl_index} stores inside a single transactional variable, the
    OCaml analogue of the original benchmark's [TreeMap] indexes.

    The same comparison function must be passed to every operation on a
    given tree. *)

type ('k, 'v) t

val empty : ('k, 'v) t
val height : ('k, 'v) t -> int
val add : ('k -> 'k -> int) -> 'k -> 'v -> ('k, 'v) t -> ('k, 'v) t
val find : ('k -> 'k -> int) -> 'k -> ('k, 'v) t -> 'v option
val mem : ('k -> 'k -> int) -> 'k -> ('k, 'v) t -> bool
val remove : ('k -> 'k -> int) -> 'k -> ('k, 'v) t -> ('k, 'v) t
val min_binding : ('k, 'v) t -> ('k * 'v) option

(** In ascending key order. *)
val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit

(** In ascending key order. *)
val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc

val cardinal : ('k, 'v) t -> int

(** Bindings with [lo <= key <= hi], in ascending key order. *)
val range : ('k -> 'k -> int) -> 'k -> 'k -> ('k, 'v) t -> ('k * 'v) list

(** Structural invariants (ordering, balance, cached heights), for
    property tests. *)
val well_formed : ('k -> 'k -> int) -> ('k, 'v) t -> bool
