(** Deterministic, splittable pseudo-random generator (SplitMix64).

    Each benchmark thread owns one generator split off a master seed, so
    runs are reproducible for a given seed and thread count without any
    synchronization on the generator state. *)

type t

val create : seed:int -> t

(** A generator statistically independent of the parent (SplitMix
    split); advances the parent. *)
val split : t -> t

(** An independent handle replaying the same stream from this point. *)
val copy : t -> t

(** Uniform integer in [0, bound); [bound] must be positive. *)
val int : t -> int -> int

(** Uniform integer in [lo, hi] inclusive; requires [lo <= hi]. *)
val in_range : t -> int -> int -> int

val bool : t -> bool

(** True with probability [percent]/100. *)
val percent : t -> int -> bool

(** A uniformly random element of a non-empty list.
    @raise Invalid_argument on an empty list. *)
val element : t -> 'a list -> 'a
