(** Structural-consistency checker for the benchmark state.

    Walks the whole object graph and cross-checks it against the six
    indexes, the ID pools and the construction rules. Used by the
    integration tests after mixed random runs (single- and
    multi-threaded) to establish that operations preserve every
    invariant, and available to library users as a debugging aid.

    Checks are read-only; run them quiesced (no concurrent writers) or
    inside one [R.atomic] transaction. *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  module T = Types.Make (R)
  module S = Setup.Make (R)

  type violation = string

  let check (setup : S.t) : violation list =
    let violations = ref [] in
    let bad fmt =
      Printf.ksprintf (fun s -> violations := s :: !violations) fmt
    in

    let params = setup.S.params in
    let root = setup.S.module_.T.mod_design_root in

    (* -- Assembly tree: levels, parent links, child counts -- *)
    if root.T.ca_level <> params.Parameters.num_assm_levels then
      bad "root level %d <> %d" root.T.ca_level params.num_assm_levels;
    if root.T.ca_super <> None then bad "root has a parent";

    let live_cas = Hashtbl.create 64 in
    let live_bas = Hashtbl.create 64 in
    let rec walk (ca : T.complex_assembly) =
      if Hashtbl.mem live_cas ca.T.ca_id then
        bad "complex assembly %d appears twice in the tree" ca.T.ca_id;
      Hashtbl.replace live_cas ca.T.ca_id ca;
      let children = R.read ca.T.ca_sub in
      if children = [] then bad "complex assembly %d has no children" ca.T.ca_id;
      List.iter
        (function
          | T.Complex child ->
            if child.T.ca_level <> ca.T.ca_level - 1 then
              bad "complex assembly %d at level %d under level %d"
                child.T.ca_id child.T.ca_level ca.T.ca_level;
            (match child.T.ca_super with
            | Some p when p.T.ca_id = ca.T.ca_id -> ()
            | _ -> bad "complex assembly %d has wrong parent" child.T.ca_id);
            walk child
          | T.Base b ->
            if ca.T.ca_level <> 2 then
              bad "base assembly %d under level-%d assembly" b.T.ba_id
                ca.T.ca_level;
            (match b.T.ba_super with
            | Some p when p.T.ca_id = ca.T.ca_id -> ()
            | _ -> bad "base assembly %d has wrong parent" b.T.ba_id);
            if Hashtbl.mem live_bas b.T.ba_id then
              bad "base assembly %d appears twice in the tree" b.T.ba_id;
            Hashtbl.replace live_bas b.T.ba_id b)
        children
    in
    walk root;

    (* -- Assembly indexes match the tree -- *)
    let check_index name index live =
      let seen = ref 0 in
      index.Index_intf.iter (fun id _ ->
          incr seen;
          if not (Hashtbl.mem live id) then
            bad "%s index contains %d which is not in the tree" name id);
      if !seen <> Hashtbl.length live then
        bad "%s index has %d entries, tree has %d" name !seen
          (Hashtbl.length live)
    in
    check_index "complex-assembly" setup.S.ca_id_index live_cas;
    check_index "base-assembly" setup.S.ba_id_index live_bas;

    (* -- Composite parts: library index is authoritative -- *)
    let live_cps = Hashtbl.create 64 in
    setup.S.cp_id_index.iter (fun id cp ->
        if id <> cp.T.cp_id then bad "composite part %d indexed under %d" cp.T.cp_id id;
        Hashtbl.replace live_cps id cp);

    (* Bags are symmetric: ba.components multiset matches cp.used_in. *)
    let count_in eq x l = List.length (List.filter (eq x) l) in
    Hashtbl.iter
      (fun _ (ba : T.base_assembly) ->
        List.iter
          (fun (cp : T.composite_part) ->
            if not (Hashtbl.mem live_cps cp.T.cp_id) then
              bad "base assembly %d links dead composite part %d" ba.T.ba_id
                cp.T.cp_id
            else begin
              let here =
                count_in
                  (fun (a : T.composite_part) b -> a.T.cp_id = b.T.cp_id)
                  cp (R.read ba.T.ba_components)
              in
              let there =
                count_in
                  (fun (a : T.base_assembly) b -> a.T.ba_id = b.T.ba_id)
                  ba (R.read cp.T.cp_used_in)
              in
              if here <> there then
                bad "link multiplicity mismatch ba %d <-> cp %d (%d vs %d)"
                  ba.T.ba_id cp.T.cp_id here there
            end)
          (R.read ba.T.ba_components))
      live_bas;
    Hashtbl.iter
      (fun _ (cp : T.composite_part) ->
        List.iter
          (fun (ba : T.base_assembly) ->
            if not (Hashtbl.mem live_bas ba.T.ba_id) then
              bad "composite part %d used in dead base assembly %d"
                cp.T.cp_id ba.T.ba_id)
          (R.read cp.T.cp_used_in))
      live_cps;

    (* -- Atomic parts: per-composite graphs and the two indexes -- *)
    let live_aps = Hashtbl.create 256 in
    Hashtbl.iter
      (fun _ (cp : T.composite_part) ->
        let parts = R.read cp.T.cp_parts in
        if List.length parts <> params.num_atomic_per_comp then
          bad "composite part %d has %d atomic parts (expected %d)"
            cp.T.cp_id (List.length parts) params.num_atomic_per_comp;
        let local = Hashtbl.create 64 in
        List.iter
          (fun (p : T.atomic_part) ->
            if Hashtbl.mem live_aps p.T.ap_id then
              bad "atomic part %d belongs to two composite parts" p.T.ap_id;
            Hashtbl.replace live_aps p.T.ap_id p;
            Hashtbl.replace local p.T.ap_id ();
            match p.T.ap_part_of with
            | Some owner when owner.T.cp_id = cp.T.cp_id -> ()
            | _ -> bad "atomic part %d has wrong owner" p.T.ap_id)
          parts;
        (* Root part belongs to the graph, and the graph is connected:
           a DFS from the root reaches every part. *)
        let rp = R.read cp.T.cp_root_part in
        if not (Hashtbl.mem local rp.T.ap_id) then
          bad "root part %d of composite %d not among its parts" rp.T.ap_id
            cp.T.cp_id;
        let visited = Hashtbl.create 64 in
        let rec dfs (p : T.atomic_part) =
          if not (Hashtbl.mem visited p.T.ap_id) then begin
            Hashtbl.replace visited p.T.ap_id ();
            List.iter
              (fun (c : T.connection) ->
                if c.T.conn_from.T.ap_id <> p.T.ap_id then
                  bad "connection from-link broken at part %d" p.T.ap_id;
                if not (Hashtbl.mem local c.T.conn_to.T.ap_id) then
                  bad "connection from %d leaves composite part %d"
                    p.T.ap_id cp.T.cp_id
                else dfs c.T.conn_to)
              (R.read p.T.ap_to)
          end
        in
        dfs rp;
        if Hashtbl.length visited <> List.length parts then
          bad "atomic-part graph of composite %d not connected (%d/%d)"
            cp.T.cp_id (Hashtbl.length visited) (List.length parts))
      live_cps;

    let ap_index_size = setup.S.ap_id_index.size () in
    if ap_index_size <> Hashtbl.length live_aps then
      bad "atomic-part index has %d entries, structure has %d" ap_index_size
        (Hashtbl.length live_aps);
    setup.S.ap_id_index.iter (fun id p ->
        if p.T.ap_id <> id then bad "atomic part %d indexed under %d" p.T.ap_id id;
        if not (Hashtbl.mem live_aps id) then
          bad "atomic-part index contains dead part %d" id);

    (* Build-date index: buckets hold exactly the live parts with that
       date. *)
    let date_count = ref 0 in
    setup.S.ap_date_index.iter (fun date bucket ->
        if bucket = [] then bad "empty date bucket %d" date;
        List.iter
          (fun (p : T.atomic_part) ->
            incr date_count;
            if not (Hashtbl.mem live_aps p.T.ap_id) then
              bad "date index holds dead part %d" p.T.ap_id
            else if R.read p.T.ap_build_date <> date then
              bad "part %d in bucket %d but has date %d" p.T.ap_id date
                (R.read p.T.ap_build_date))
          bucket);
    if !date_count <> Hashtbl.length live_aps then
      bad "date index holds %d parts, structure has %d" !date_count
        (Hashtbl.length live_aps);

    (* -- Documents -- *)
    let doc_count = ref 0 in
    setup.S.doc_title_index.iter (fun title doc ->
        incr doc_count;
        if not (String.equal doc.T.doc_title title) then
          bad "document %S indexed under %S" doc.T.doc_title title;
        match doc.T.doc_part with
        | Some cp when Hashtbl.mem live_cps cp.T.cp_id ->
          if cp.T.cp_document != doc then
            bad "document of composite %d is not the indexed one" cp.T.cp_id
        | _ -> bad "document %S attached to a dead composite part" title);
    if !doc_count <> Hashtbl.length live_cps then
      bad "document index has %d entries, %d composite parts live"
        !doc_count (Hashtbl.length live_cps);

    (* -- ID pools: free + live = capacity, and no live ID is free -- *)
    let check_pool name pool live_count =
      let available = S.Pool.available pool in
      if available + live_count <> S.Pool.capacity pool then
        bad "%s pool: %d free + %d live <> capacity %d" name available
          live_count (S.Pool.capacity pool)
    in
    check_pool "atomic-part" setup.S.ap_pool (Hashtbl.length live_aps);
    check_pool "composite-part" setup.S.cp_pool (Hashtbl.length live_cps);
    check_pool "base-assembly" setup.S.ba_pool (Hashtbl.length live_bas);
    check_pool "complex-assembly" setup.S.ca_pool (Hashtbl.length live_cas);

    List.rev !violations

  (** Convenience wrapper raising on the first violation set. *)
  let check_exn setup =
    match check setup with
    | [] -> ()
    | vs ->
      failwith
        (Printf.sprintf "structure invariants violated:\n  %s"
           (String.concat "\n  " vs))
end
