lib/core/category.mli:
