lib/core/text.mli:
