lib/core/parameters.ml: Format List Printf String
