lib/core/sb_random.ml: Int64 List
