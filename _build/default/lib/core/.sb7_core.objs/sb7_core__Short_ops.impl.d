lib/core/short_ops.ml: List Nav Parameters Sb7_runtime Setup Text Types
