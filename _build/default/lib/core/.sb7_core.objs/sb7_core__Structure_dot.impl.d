lib/core/structure_dot.ml: Format Hashtbl List Sb7_runtime Setup Types
