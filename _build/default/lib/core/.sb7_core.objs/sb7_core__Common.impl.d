lib/core/common.ml: Printf
