lib/core/avl_index.ml: Avl Index_intf Sb7_runtime
