lib/core/bag.ml: Common List Sb7_runtime Sb_random
