lib/core/btree_index.ml: Array Index_intf Sb7_runtime
