lib/core/flat_index.ml: Array Index_intf Sb7_runtime
