lib/core/structure_stats.ml: Format List Sb7_runtime Setup Types
