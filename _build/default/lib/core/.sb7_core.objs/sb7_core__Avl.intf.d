lib/core/avl.mli:
