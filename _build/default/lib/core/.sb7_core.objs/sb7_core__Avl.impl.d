lib/core/avl.ml: Option
