lib/core/setup.ml: Array Bag Common Id_pool Index Index_intf Int List Option Parameters Printf Sb7_runtime Sb_random String Text Types
