lib/core/invariants.ml: Hashtbl Index_intf List Parameters Printf Sb7_runtime Setup String Types
