lib/core/operation.ml: Category List Sb7_runtime Sb_random Setup Short_ops Short_traversals String Structure_mods Traversals
