lib/core/sb_random.mli:
