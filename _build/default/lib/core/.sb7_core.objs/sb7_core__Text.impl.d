lib/core/text.ml: Buffer Printf String
