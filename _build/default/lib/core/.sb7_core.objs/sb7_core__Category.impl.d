lib/core/category.ml: Stdlib
