lib/core/id_pool.ml: Common List Sb7_runtime
