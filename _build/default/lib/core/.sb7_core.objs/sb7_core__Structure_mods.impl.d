lib/core/structure_mods.ml: Common List Nav Parameters Sb7_runtime Sb_random Setup Types
