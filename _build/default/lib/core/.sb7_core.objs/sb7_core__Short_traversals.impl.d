lib/core/short_traversals.ml: Common List Nav Sb7_runtime Sb_random Setup Text Types
