lib/core/traversals.ml: List Nav Sb7_runtime Sb_random Setup Text Types
