lib/core/types.ml: Sb7_runtime
