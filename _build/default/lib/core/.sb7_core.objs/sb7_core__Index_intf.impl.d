lib/core/index_intf.ml: Printf String
