lib/core/index.ml: Avl_index Btree_index Flat_index Index_intf Sb7_runtime
