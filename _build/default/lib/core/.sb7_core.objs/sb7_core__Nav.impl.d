lib/core/nav.ml: Common Hashtbl List Sb7_runtime Sb_random Setup Types
