(** The OO7/STMBench7 object graph (paper Figure 1 and Appendix B.1).

    Per the specification, only module and connection objects are
    immutable; every other mutable attribute lives in a runtime
    transactional variable so concurrency control is entirely the
    runtime's business.

    Parent back-links ([ap_part_of], [doc_part], [ba_super], [ca_super])
    are plain mutable fields set exactly once, while the object is still
    private to the creating operation, and never reassigned: assemblies
    and parts never move between parents — they are only created and
    deleted. Reading them therefore needs no synchronization. *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  type atomic_part = {
    ap_id : int;
    ap_type : string;
    ap_build_date : int R.tvar; (* indexed: updates maintain the date index *)
    ap_x : int R.tvar; (* non-indexed attribute *)
    ap_y : int R.tvar; (* non-indexed attribute *)
    ap_to : connection list R.tvar; (* outgoing connections *)
    ap_from : connection list R.tvar; (* incoming connections *)
    mutable ap_part_of : composite_part option;
  }

  and connection = {
    conn_type : string;
    conn_length : int;
    conn_from : atomic_part;
    conn_to : atomic_part;
  }

  and composite_part = {
    cp_id : int;
    cp_type : string;
    cp_build_date : int R.tvar;
    cp_document : document;
    cp_used_in : base_assembly list R.tvar; (* bag: owning base assemblies *)
    cp_root_part : atomic_part R.tvar;
    cp_parts : atomic_part list R.tvar; (* set of all descendant parts *)
  }

  and document = {
    doc_id : int;
    doc_title : string; (* indexed, immutable *)
    doc_text : string R.tvar;
    mutable doc_part : composite_part option;
  }

  and base_assembly = {
    ba_id : int;
    ba_type : string;
    ba_build_date : int R.tvar;
    ba_components : composite_part list R.tvar; (* bag: shared components *)
    mutable ba_super : complex_assembly option;
  }

  and complex_assembly = {
    ca_id : int;
    ca_type : string;
    ca_build_date : int R.tvar;
    ca_level : int; (* 2 = just above base assemblies … levels = root *)
    ca_sub : assembly list R.tvar; (* children, one level down *)
    mutable ca_super : complex_assembly option; (* None for the root *)
  }

  and assembly =
    | Base of base_assembly
    | Complex of complex_assembly

  type manual = {
    man_id : int;
    man_title : string;
    man_text : string R.tvar;
  }

  type module_t = {
    mod_id : int;
    mod_manual : manual;
    mod_design_root : complex_assembly;
  }

  let assembly_id = function
    | Base b -> b.ba_id
    | Complex c -> c.ca_id

  (* The standard "perform an update operation on non-indexed
     attributes" of an atomic part: swap x and y. *)
  let swap_xy part =
    let x = R.read part.ap_x and y = R.read part.ap_y in
    R.write part.ap_x y;
    R.write part.ap_y x

  (* The standard build-date update of OO7: nudge the date by one,
     alternating direction so repeated updates stay in range. *)
  let nudge_date date = if date mod 2 = 0 then date + 1 else date - 1

  let update_build_date_tvar tv = R.write tv (nudge_date (R.read tv))

  (* The standard read-only operation on an object: read its build date
     (forcing a tracked read) and return it. *)
  let touch_atomic_part p = R.read p.ap_build_date
  let touch_base_assembly (b : base_assembly) = R.read b.ba_build_date
  let touch_complex_assembly (c : complex_assembly) = R.read c.ca_build_date
  let touch_composite_part (c : composite_part) = R.read c.cp_build_date
end
