(** The ten short traversals ST1–ST10 (paper Appendix B.2.2). *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  module T = Types.Make (R)
  module S = Setup.Make (R)
  module Nav = Nav.Make (R)

  (* ST1/ST6 skeleton: random path from the module down to one atomic
     part of one composite part. *)
  let st1_like rng setup update =
    let ba = Nav.random_base_assembly rng setup in
    let cp = Nav.random_component rng ba in
    let part = Sb_random.element rng (R.read cp.T.cp_parts) in
    let result = R.read part.T.ap_x + R.read part.T.ap_y in
    update part;
    result

  (** ST1: random path down to an atomic part; returns its x + y.
      Fails on a base assembly without composite parts. *)
  let st1 rng setup = st1_like rng setup (fun _ -> ())

  (** ST6: ST1 + non-indexed update (x/y swap) on the visited part. *)
  let st6 rng setup = st1_like rng setup T.swap_xy

  (* ST2/ST7 skeleton: random path down to a document. *)
  let st2_like rng setup visit_doc =
    let ba = Nav.random_base_assembly rng setup in
    let cp = Nav.random_component rng ba in
    visit_doc cp.T.cp_document

  (** ST2: count 'I' characters in a document reached by a random path. *)
  let st2 rng setup =
    st2_like rng setup (fun (d : T.document) ->
        Text.count_char (R.read d.T.doc_text) 'I')

  (** ST7: ST2 + toggle "I am"/"This is"; returns replacements. *)
  let st7 rng setup =
    st2_like rng setup (fun (d : T.document) ->
        let text, count = Text.toggle_i_am (R.read d.T.doc_text) in
        R.write d.T.doc_text text;
        count)

  (* ST3/ST8 skeleton: bottom-up from a random atomic part. *)
  let st3_like rng setup visit_ca =
    let part = Nav.lookup_atomic_part rng setup in
    let cp =
      match part.T.ap_part_of with
      | Some cp -> cp
      | None -> assert false
    in
    match R.read cp.T.cp_used_in with
    | [] ->
      Common.fail "composite part %d not used in any base assembly"
        cp.T.cp_id
    | bas -> Nav.ascend_complex_assemblies bas visit_ca

  (** ST3 (T7 in OO7): bottom-up traversal to the root; counts complex
      assemblies visited (each at most once). *)
  let st3 rng setup =
    st3_like rng setup (fun ca -> ignore (T.touch_complex_assembly ca))

  (** ST8: ST3 + non-indexed build-date update on each visited
      assembly. *)
  let st8 rng setup =
    st3_like rng setup (fun (ca : T.complex_assembly) ->
        T.update_build_date_tvar ca.T.ca_build_date)

  (** ST4 (Q4 in OO7): look up 100 random document titles; for each
      document found, a read on every base assembly using its composite
      part. Returns base assemblies visited. *)
  let st4 rng setup =
    let visited = ref 0 in
    for _ = 1 to 100 do
      let title =
        Text.document_title ~part_id:(Nav.random_composite_part_id rng setup)
      in
      match setup.S.doc_title_index.get title with
      | None -> ()
      | Some doc ->
        let cp =
          match doc.T.doc_part with
          | Some cp -> cp
          | None -> assert false
        in
        List.iter
          (fun (ba : T.base_assembly) ->
            ignore (T.touch_base_assembly ba);
            incr visited)
          (R.read cp.T.cp_used_in)
    done;
    !visited

  (** ST5 (Q5 in OO7): scan the base-assembly index for assemblies older
      than one of their composite parts. *)
  let st5 _rng setup =
    let count = ref 0 in
    setup.S.ba_id_index.iter (fun _ (ba : T.base_assembly) ->
        let ba_date = R.read ba.T.ba_build_date in
        let matches =
          List.exists
            (fun (cp : T.composite_part) ->
              R.read cp.T.cp_build_date > ba_date)
            (R.read ba.T.ba_components)
        in
        if matches then begin
          ignore (T.touch_base_assembly ba);
          incr count
        end);
    !count

  (* ST9/ST10 skeleton: ST1's random path, then a full DFS of the
     chosen composite part's atomic-part graph. *)
  let st9_like rng setup on_part =
    let ba = Nav.random_base_assembly rng setup in
    let cp = Nav.random_component rng ba in
    Nav.dfs_atomic_graph (R.read cp.T.cp_root_part) on_part

  (** ST9: counts the atomic parts of one randomly-reached composite
      part. *)
  let st9 rng setup =
    st9_like rng setup (fun p -> ignore (T.touch_atomic_part p))

  (** ST10: ST9 + non-indexed update on every visited part. *)
  let st10 rng setup = st9_like rng setup T.swap_xy
end
