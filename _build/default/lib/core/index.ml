(** Index construction dispatching on {!Index_intf.kind}. *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  module Avl_i = Avl_index.Make (R)
  module Flat_i = Flat_index.Make (R)
  module Btree_i = Btree_index.Make (R)

  let create (kind : Index_intf.kind) ~name ~cmp : ('k, 'v) Index_intf.t =
    match kind with
    | Avl -> Avl_i.create ~name ~cmp
    | Flat -> Flat_i.create ~name ~cmp
    | Btree -> Btree_i.create ~name ~cmp
end
