(** Benchmark output, following the sections of the paper's Appendix A:
    benchmark parameters, optional TTC histograms, detailed
    per-operation results, sample errors, and summary results. *)

val print_parameters : Format.formatter -> Run_result.t -> unit
val print_histograms : Format.formatter -> Run_result.t -> unit
val print_detailed : Format.formatter -> Run_result.t -> unit

(** Per-operation (C, R, E, A, F) tuples: C = configured ratio,
    R = achieved ratio among successes, E = |C − R|, A = achieved ratio
    among started operations, F = |A − R|. *)
val sample_errors : Run_result.t -> (float * float * float * float * float) array

val print_sample_errors : Format.formatter -> Run_result.t -> unit
val print_summary : Format.formatter -> Run_result.t -> unit

(** All sections in Appendix-A order. *)
val print : Format.formatter -> Run_result.t -> unit
