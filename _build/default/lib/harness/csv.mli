(** Machine-readable export of run results, for plotting the figures
    outside the harness (gnuplot, matplotlib, a spreadsheet). *)

val header_summary : string

(** Quote a CSV field if it contains separators or quotes. *)
val escape : string -> string

(** One line per run: inputs plus totals — the paper's figure data
    points. *)
val summary_row : Run_result.t -> string

val header_per_op : string

(** One line per operation of a run: the detailed-results section as
    data. *)
val per_op_rows : Run_result.t -> string list

(** Write header plus one summary line per result. *)
val write_summary : out_channel -> Run_result.t list -> unit

(** Write header plus the per-operation detail of every result. *)
val write_per_op : out_channel -> Run_result.t list -> unit
