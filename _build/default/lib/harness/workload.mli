(** Workload types and operation-ratio computation (paper §3, Table 2).

    An individual operation's sampling weight is

    {v category_ratio x kind_ratio / |enabled ops in the same
       (category, read-only?) group| v}

    normalized over all enabled operations — operations of the same
    category and kind run in equal proportions. Structure modifications
    are all updates, so their effective share shrinks below Table 2's
    10% under read-dominated workloads and grows under write-dominated
    ones. *)

type kind =
  | Read_dominated
  | Read_write
  | Write_dominated

val kind_to_string : kind -> string
val kind_long_name : kind -> string
val kind_of_string : string -> (kind, string) result
val all_kinds : kind list

(** Read-only percentage of the workload (Table 2 columns: 90/60/10). *)
val read_only_percent : kind -> int

(** A category mix: relative weights of the four operation categories.
    Table 2's defaults are {!default_mix}; custom mixes implement the
    §6 future work of exploring more workloads. *)
type mix = {
  long_traversals : int;
  short_traversals : int;
  short_operations : int;
  structure_mods : int;
}

val default_mix : mix
val mix_to_string : mix -> string

(** Parse "LT:ST:OP:SM", e.g. "5:40:45:10": non-negative relative
    weights with a positive sum. *)
val mix_of_string : string -> (mix, string) result

val mix_percent : mix -> Sb7_core.Category.t -> int

(** Category percentage of the default mix (Table 2 rows: 5/40/45/10). *)
val category_percent : Sb7_core.Category.t -> int

(** Metadata the ratio computation needs about one operation. *)
type op_desc = {
  code : string;
  category : Sb7_core.Category.t;
  read_only : bool;
}

(** Per-operation probabilities for the enabled operation set; sums
    to 1. *)
val ratios : ?mix:mix -> kind -> op_desc array -> float array

(** Cumulative distribution for sampling. *)
val cdf : float array -> float array

(** Index of the operation selected by uniform draw [u] in [0, 1). *)
val sample : float array -> float -> int
