(** Per-operation performance counters.

    Each benchmark thread records into its own [t] with no
    synchronization; the harness merges them when the run ends (the
    scheme the paper describes in §4). Latencies ("TTC", time to
    completion) are histogrammed with 1 ms buckets, as in the
    original's [--ttc-histograms] output. *)

val histogram_buckets : int

type op_stat = {
  mutable successes : int;
  mutable failures : int;
  mutable max_latency_ms : float;  (** over successful executions *)
  mutable total_latency_ms : float;
  mutable histogram : int array;  (** [[||]] unless histograms enabled *)
}

type t = {
  per_op : op_stat array;
  with_histograms : bool;
}

val create : ops:int -> histograms:bool -> t

(** Record one executed operation. Failed operations count but do not
    contribute latency (the paper reports latency of successful
    completions). *)
val record : t -> op:int -> latency_s:float -> ok:bool -> unit

val attempts : op_stat -> int

val merge_into : into:t -> t -> unit

val merge : ops:int -> histograms:bool -> t list -> t

val total_successes : t -> int
val total_failures : t -> int
val total_attempts : t -> int

(** Mean successful latency in ms (0 when nothing succeeded). *)
val mean_latency_ms : op_stat -> float

(** The [q]-quantile (0 ≤ q ≤ 1) of successful latencies in ms from the
    TTC histogram — accurate to the 1 ms bucket granularity; [None]
    when histograms are disabled or nothing succeeded. *)
val percentile_ms : op_stat -> float -> float option
