(** Soak testing: cycle the full benchmark across strategies and
    workloads, checking the complete structural-invariant suite between
    cycles. This is the release-qualification tool for new
    synchronization strategies — a strategy that loses atomicity
    anywhere in the 45-operation surface fails here within seconds. *)

type cycle_report = {
  runtime_name : string;
  workload : Workload.kind;
  threads : int;
  successes : int;
  failures : int;
  violations : string list;
}

type report = {
  cycles : cycle_report list;
  total_operations : int;
  clean : bool;  (** no invariant violations in any cycle *)
}

module Cycle (R : Sb7_runtime.Runtime_intf.S) = struct
  module I = Sb7_core.Instance.Make (R)
  module B = Benchmark.Make (R)

  let run ~workload ~threads ~ops_per_thread ~scale ~seed : cycle_report =
    let config =
      {
        Benchmark.default_config with
        threads;
        max_ops = Some ops_per_thread;
        workload;
        scale;
        scale_name = "soak";
        seed;
        (* Long traversals under ASTM at soak scale are the quadratic
           worst case; everything else runs the full operation set. *)
        long_traversals = R.name <> "astm";
      }
    in
    let setup = B.build_setup config in
    let result = B.run ~setup config in
    {
      runtime_name = R.name;
      workload;
      threads;
      successes = Stats.total_successes result.Run_result.stats;
      failures = Stats.total_failures result.Run_result.stats;
      violations = I.Invariants.check setup;
    }
end

(** Run one cycle per (strategy, workload) pair; strategies defaults to
    every concurrent strategy in the registry. *)
let run ?(strategies = [ "coarse"; "medium"; "fine"; "tl2"; "lsa"; "astm" ])
    ?(threads = 4) ?(ops_per_thread = 500)
    ?(scale = Sb7_core.Parameters.tiny) ?(seed = 42) ?(progress = fun _ -> ())
    () : report =
  let cycles =
    List.concat_map
      (fun runtime_name ->
        match Sb7_runtime.Registry.find runtime_name with
        | Error e -> failwith e
        | Ok runtime ->
          let module R = (val runtime : Sb7_runtime.Runtime_intf.S) in
          let module C = Cycle (R) in
          List.map
            (fun workload ->
              let cycle =
                C.run ~workload ~threads ~ops_per_thread ~scale ~seed
              in
              progress cycle;
              cycle)
            Workload.all_kinds)
      strategies
  in
  {
    cycles;
    total_operations =
      List.fold_left (fun acc c -> acc + c.successes + c.failures) 0 cycles;
    clean = List.for_all (fun c -> c.violations = []) cycles;
  }

let pp_cycle ppf c =
  Format.fprintf ppf "%-8s %-16s t=%d  ok=%-7d failed=%-7d %s" c.runtime_name
    (Workload.kind_long_name c.workload)
    c.threads c.successes c.failures
    (match c.violations with
    | [] -> "invariants OK"
    | vs -> Printf.sprintf "INVARIANTS VIOLATED (%d)" (List.length vs))
