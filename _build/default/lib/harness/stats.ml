(** Per-operation performance counters.

    Each benchmark thread records into its own [t] (no synchronization
    during the run); the harness merges them at the end — the scheme the
    paper describes in §4. Latencies ("TTC", time to completion) are
    histogrammed with 1 ms buckets as in the original's
    [--ttc-histograms] output. *)

let histogram_buckets = 4096 (* 1 ms buckets; the last bucket overflows *)

type op_stat = {
  mutable successes : int;
  mutable failures : int;
  mutable max_latency_ms : float; (* over successful executions *)
  mutable total_latency_ms : float;
  mutable histogram : int array; (* empty unless histograms enabled *)
}

type t = {
  per_op : op_stat array;
  with_histograms : bool;
}

let empty_op () =
  {
    successes = 0;
    failures = 0;
    max_latency_ms = 0.;
    total_latency_ms = 0.;
    histogram = [||];
  }

let create ~ops ~histograms =
  {
    per_op =
      Array.init ops (fun _ ->
          let s = empty_op () in
          if histograms then s.histogram <- Array.make histogram_buckets 0;
          s);
    with_histograms = histograms;
  }

let record t ~op ~latency_s ~ok =
  let s = t.per_op.(op) in
  if ok then begin
    let ms = latency_s *. 1000. in
    s.successes <- s.successes + 1;
    s.total_latency_ms <- s.total_latency_ms +. ms;
    if ms > s.max_latency_ms then s.max_latency_ms <- ms;
    if t.with_histograms then begin
      let bucket = min (int_of_float ms) (histogram_buckets - 1) in
      s.histogram.(bucket) <- s.histogram.(bucket) + 1
    end
  end
  else s.failures <- s.failures + 1

let attempts s = s.successes + s.failures

let merge_into ~(into : t) (src : t) =
  Array.iteri
    (fun i (s : op_stat) ->
      let d = into.per_op.(i) in
      d.successes <- d.successes + s.successes;
      d.failures <- d.failures + s.failures;
      d.total_latency_ms <- d.total_latency_ms +. s.total_latency_ms;
      if s.max_latency_ms > d.max_latency_ms then
        d.max_latency_ms <- s.max_latency_ms;
      if into.with_histograms && s.histogram <> [||] then
        Array.iteri
          (fun b c -> d.histogram.(b) <- d.histogram.(b) + c)
          s.histogram)
    src.per_op

let merge ~ops ~histograms parts =
  let total = create ~ops ~histograms in
  List.iter (fun p -> merge_into ~into:total p) parts;
  total

let total_successes t =
  Array.fold_left (fun acc s -> acc + s.successes) 0 t.per_op

let total_failures t =
  Array.fold_left (fun acc s -> acc + s.failures) 0 t.per_op

let total_attempts t = total_successes t + total_failures t

(** Mean successful latency in ms (0 when nothing succeeded). *)
let mean_latency_ms s =
  if s.successes = 0 then 0. else s.total_latency_ms /. float_of_int s.successes

(** The [q]-quantile (0 <= q <= 1) of an operation's successful
    latencies in ms, computed from its TTC histogram; [None] when
    histograms are disabled or the operation never succeeded. The value
    is the upper edge of the bucket containing the quantile, i.e.
    accurate to 1 ms (the histogram granularity). *)
let percentile_ms s q =
  assert (q >= 0. && q <= 1.);
  if s.histogram = [||] || s.successes = 0 then None
  else begin
    let target =
      int_of_float (ceil (q *. float_of_int s.successes)) |> max 1
    in
    let rec scan bucket seen =
      if bucket >= Array.length s.histogram then
        Some (float_of_int (Array.length s.histogram))
      else begin
        let seen = seen + s.histogram.(bucket) in
        if seen >= target then Some (float_of_int (bucket + 1))
        else scan (bucket + 1) seen
      end
    in
    scan 0 0
  end
