lib/harness/soak.ml: Benchmark Format List Printf Run_result Sb7_core Sb7_runtime Stats Workload
