lib/harness/workload.ml: Array List Printf Sb7_core String
