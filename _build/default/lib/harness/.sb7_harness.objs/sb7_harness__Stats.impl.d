lib/harness/stats.ml: Array List
