lib/harness/workload.mli: Sb7_core
