lib/harness/report.ml: Array Format List Printf Run_result Sb7_core Stats Workload
