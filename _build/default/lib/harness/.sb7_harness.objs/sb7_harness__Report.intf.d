lib/harness/report.mli: Format Run_result
