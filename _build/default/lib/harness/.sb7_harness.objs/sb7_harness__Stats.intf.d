lib/harness/stats.mli:
