lib/harness/csv.mli: Run_result
