lib/harness/driver.mli: Benchmark Run_result Sb7_runtime
