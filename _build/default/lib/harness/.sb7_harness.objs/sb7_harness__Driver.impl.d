lib/harness/driver.ml: Benchmark Run_result Sb7_runtime
