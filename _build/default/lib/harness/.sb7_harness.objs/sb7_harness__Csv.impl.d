lib/harness/csv.ml: Array List Printf Run_result Sb7_core Stats String Workload
