lib/harness/run_result.ml: Array Sb7_core Stats String Workload
