lib/harness/benchmark.ml: Array Atomic Domain List Printf Run_result Sb7_core Sb7_runtime Stats Unix Workload
