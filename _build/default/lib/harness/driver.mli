(** Running a benchmark configuration against a runtime chosen by name
    at run time (first-class-module dispatch over
    {!Sb7_runtime.Registry}). *)

val run_with : Sb7_runtime.Registry.packed -> Benchmark.config -> Run_result.t

(** [run ~runtime_name config] resolves the strategy name and runs;
    [Error] on an unknown name. *)
val run : runtime_name:string -> Benchmark.config -> (Run_result.t, string) result
