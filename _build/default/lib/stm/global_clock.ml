type t = int Atomic.t

let create () = Atomic.make 0
let now t = Atomic.get t
let tick t = Atomic.fetch_and_add t 2 + 2
