(** Common interface implemented by every STM in this library. *)

(** Raised internally when a transaction detects a conflict and must be
    retried. [atomic] catches it; user code should never see it escape,
    and must not catch it. *)
exception Conflict

module type S = sig
  val name : string

  (** A transactional variable: the unit of conflict detection. *)
  type 'a tvar

  val make : 'a -> 'a tvar

  (** [read tv] inside a transaction records the read for conflict
      detection. Outside any transaction it is an unsynchronized direct
      read (meant for single-threaded setup and inspection). *)
  val read : 'a tvar -> 'a

  (** [write tv v] inside a transaction buffers or acquires the write.
      Outside any transaction it is an unsynchronized direct store. *)
  val write : 'a tvar -> 'a -> unit

  (** [atomic f] runs [f] as a transaction, retrying on conflict until
      it commits. Exceptions raised by [f] abort the transaction
      (rolling back any writes) and propagate, after the read set has
      been validated — an exception raised from an inconsistent view is
      treated as a conflict and retried instead. Nested calls flatten
      into the enclosing transaction. *)
  val atomic : (unit -> 'a) -> 'a

  val in_transaction : unit -> bool

  val stats : unit -> Stm_stats.snapshot
  val reset_stats : unit -> unit
end
