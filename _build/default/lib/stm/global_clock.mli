(** TL2-style global version clock.

    Versions are always even; an odd value in a tvar's versioned lock
    word means "locked by a committing writer". The clock therefore
    advances in steps of 2. *)

type t

val create : unit -> t

(** Current clock value (even). *)
val now : t -> int

(** Atomically advance by 2 and return the new value (a fresh even
    write-version). *)
val tick : t -> int
