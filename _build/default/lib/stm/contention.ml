type policy =
  | Aggressive
  | Timid
  | Karma
  | Polka

type decision =
  | Abort_other
  | Wait
  | Abort_self

let policy_to_string = function
  | Aggressive -> "aggressive"
  | Timid -> "timid"
  | Karma -> "karma"
  | Polka -> "polka"

let all_policies = [ Aggressive; Timid; Karma; Polka ]

let policy_of_string s =
  match String.lowercase_ascii s with
  | "aggressive" -> Ok Aggressive
  | "timid" -> Ok Timid
  | "karma" -> Ok Karma
  | "polka" -> Ok Polka
  | other -> Error (Printf.sprintf "unknown contention manager %S" other)

let decide policy ~my_opens ~other_opens ~attempts =
  match policy with
  | Aggressive -> Abort_other
  | Timid -> Abort_self
  | Karma | Polka ->
    (* Each attempt adds one unit of "karma"; once accumulated karma
       matches the other's priority, the enemy is killed. *)
    if my_opens + attempts >= other_opens then Abort_other else Wait

let exponential_wait = function
  | Polka -> true
  | Aggressive | Timid | Karma -> false
