(** Shared STM statistics: commits, aborts, validation work.

    Counters are per-domain (stored in domain-local storage) and merged
    on demand, so recording is uncontended during benchmark runs. *)

type snapshot = {
  commits : int;  (** transactions that committed *)
  aborts : int;  (** transactions that aborted due to a conflict *)
  read_only_commits : int;  (** commits with an empty write set *)
  validation_steps : int;
      (** total read-set entries checked during validations; under an
          invisible-read STM this grows as O(k^2) per transaction *)
  max_read_set : int;  (** largest read set observed *)
}

type t

val create : unit -> t

val record_commit : t -> read_only:bool -> unit
val record_abort : t -> unit
val record_validation : t -> steps:int -> unit
val record_read_set : t -> size:int -> unit

(** Merge all per-domain counters into a snapshot. *)
val snapshot : t -> snapshot

val reset : t -> unit

val zero : snapshot

val add : snapshot -> snapshot -> snapshot

val to_assoc : snapshot -> (string * int) list

val pp : Format.formatter -> snapshot -> unit
