(** Contention-management policies for the obstruction-free (ASTM-style)
    STM, deciding what a transaction does when it finds an object owned
    by another active transaction.

    Priorities follow the Karma/Polka line of work: a transaction's
    priority is the number of objects it has opened so far, so long
    transactions are favoured over freshly-started ones. *)

type policy =
  | Aggressive  (** always abort the other transaction *)
  | Timid  (** always abort self (restart) *)
  | Karma  (** wait until own opens + attempts exceed the other's opens *)
  | Polka
      (** Karma priorities with randomized exponential backoff between
          attempts — the manager used in the paper's ASTM evaluation *)

type decision =
  | Abort_other  (** kill the conflicting transaction and retry *)
  | Wait  (** back off, then re-examine the conflict *)
  | Abort_self  (** abort and restart this transaction *)

val policy_of_string : string -> (policy, string) result
val policy_to_string : policy -> string
val all_policies : policy list

(** [decide p ~my_opens ~other_opens ~attempts] — [attempts] is the
    number of times this conflict has already been retried. *)
val decide :
  policy -> my_opens:int -> other_opens:int -> attempts:int -> decision

(** Whether the policy's [Wait] should use exponential (vs constant)
    backoff. *)
val exponential_wait : policy -> bool
