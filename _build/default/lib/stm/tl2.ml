(* A TL2-style software transactional memory (Dice, Shalev, Shavit,
   DISC'06 — reference [5] of the STMBench7 paper).

   Design points, all of which contrast with {!Astm} and make this the
   "fixed" STM the paper says was already proposed at the time:
   - a global version clock gives every read a consistency check in
     O(1), so transactions never act on inconsistent state (opacity)
     and read-only transactions commit without any validation pass;
   - writes are buffered (lazy versioning) and acquire per-tvar
     versioned locks only at commit;
   - commit-time read-set validation is a single O(k) pass.

   Timestamp extension (TinySTM-style): when a read observes a version
   newer than the transaction's read version [rv], the whole read set is
   revalidated against the current clock and, if intact, [rv] advances
   instead of aborting.

   Memory-model note: tvar contents are plain mutable fields and are
   read concurrently with commit-time write-back. The OCaml memory model
   guarantees such races are memory-safe (no tearing); the sandwich of
   [Atomic] reads of the versioned lock around each content read, plus
   release/acquire ordering of [Atomic] operations, ensures a reader
   either observes a consistent (version, value) pair or aborts. *)

exception Conflict = Stm_intf.Conflict

let name = "tl2"

type 'a tvar = {
  id : int; (* unique; identity witness for the typed-log coercion *)
  vlock : int Atomic.t; (* even = version, odd = locked (version+1) *)
  mutable content : 'a;
}

(* A buffered write. The payload type is existentially quantified; it is
   recovered in [cast_ref], justified by the uniqueness of tvar ids:
   equal ids imply physical equality of the tvars and hence equality of
   the hidden types. This is the only use of [Obj] in the library. *)
type wentry =
  | W : {
      tv : 'a tvar;
      value : 'a ref;
      mutable locked_from : int; (* version the commit lock was taken at *)
      mutable locked : bool;
    }
      -> wentry

let cast_ref : type a. a tvar -> wentry -> a ref =
 fun tv (W w) ->
  assert (w.tv.id = tv.id);
  (Obj.magic w.value : a ref)

type read_entry = { r_id : int; r_vlock : int Atomic.t; r_version : int }

type tx = {
  mutable rv : int;
  mutable reads : read_entry array;
  mutable nreads : int;
  writes : (int, wentry) Hashtbl.t;
  backoff : Backoff.t;
  mutable validation_steps : int;
}

let clock = Global_clock.create ()
let global_stats = Stm_stats.create ()
let tvar_ids = Atomic.make 0

let make v =
  { id = Atomic.fetch_and_add tvar_ids 1; vlock = Atomic.make 0; content = v }

let dummy_read = { r_id = -1; r_vlock = Atomic.make 0; r_version = 0 }

let fresh_tx () =
  {
    rv = 0;
    reads = Array.make 64 dummy_read;
    nreads = 0;
    writes = Hashtbl.create 64;
    backoff = Backoff.create ~seed:((Domain.self () :> int) + 1) ();
    validation_steps = 0;
  }

(* Per-domain state: [active] is the running transaction (if any);
   [spare] caches the descriptor between transactions so short
   operations do not reallocate the write-set table. *)
type domain_state = {
  mutable active : tx option;
  mutable spare : tx option;
}

let current_key : domain_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { active = None; spare = None })

let current () = Domain.DLS.get current_key

let in_transaction () =
  match (current ()).active with
  | None -> false
  | Some _ -> true

let push_read tx entry =
  let n = tx.nreads in
  if n = Array.length tx.reads then begin
    let bigger = Array.make (2 * n) dummy_read in
    Array.blit tx.reads 0 bigger 0 n;
    tx.reads <- bigger
  end;
  tx.reads.(n) <- entry;
  tx.nreads <- n + 1

(* Check every read entry is still at its recorded version. Entries we
   hold the commit lock on appear as [version + 1]. *)
let read_set_valid tx ~own_locks =
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < tx.nreads do
    let e = tx.reads.(!i) in
    let cur = Atomic.get e.r_vlock in
    if cur <> e.r_version then
      if not (own_locks && cur = e.r_version + 1 && Hashtbl.mem tx.writes e.r_id)
      then ok := false;
    incr i
  done;
  tx.validation_steps <- tx.validation_steps + !i;
  !ok

(* The read observed a version newer than [rv]: try to extend [rv] to
   the current clock instead of aborting. *)
let extend tx =
  let now = Global_clock.now clock in
  if read_set_valid tx ~own_locks:false then tx.rv <- now else raise Conflict

let rec tx_read : type a. tx -> a tvar -> a =
 fun tx tv ->
  let v1 = Atomic.get tv.vlock in
  if v1 land 1 = 1 then raise Conflict
  else begin
    let value = tv.content in
    let v2 = Atomic.get tv.vlock in
    if v1 <> v2 then raise Conflict
    else if v1 > tx.rv then begin
      extend tx;
      tx_read tx tv
    end
    else begin
      push_read tx { r_id = tv.id; r_vlock = tv.vlock; r_version = v1 };
      value
    end
  end

let read tv =
  match (current ()).active with
  | None -> tv.content
  | Some tx -> (
    if Hashtbl.length tx.writes = 0 then tx_read tx tv
    else
      match Hashtbl.find_opt tx.writes tv.id with
      | Some entry -> !(cast_ref tv entry)
      | None -> tx_read tx tv)

let write tv v =
  match (current ()).active with
  | None -> tv.content <- v
  | Some tx -> (
    match Hashtbl.find_opt tx.writes tv.id with
    | Some entry -> cast_ref tv entry := v
    | None ->
      Hashtbl.add tx.writes tv.id
        (W { tv; value = ref v; locked_from = 0; locked = false }))

let unlock_acquired tx =
  Hashtbl.iter
    (fun _ (W w) ->
      if w.locked then begin
        Atomic.set w.tv.vlock w.locked_from;
        w.locked <- false
      end)
    tx.writes

let lock_write_set tx =
  try
    Hashtbl.iter
      (fun _ (W w) ->
        let v = Atomic.get w.tv.vlock in
        if v land 1 = 1 || not (Atomic.compare_and_set w.tv.vlock v (v + 1))
        then raise Exit
        else begin
          w.locked_from <- v;
          w.locked <- true
        end)
      tx.writes
  with Exit ->
    unlock_acquired tx;
    raise Conflict

let commit tx =
  if Hashtbl.length tx.writes = 0 then
    Stm_stats.record_commit global_stats ~read_only:true
  else begin
    lock_write_set tx;
    let wv = Global_clock.tick clock in
    (* If nothing committed since we started, the read set is trivially
       intact (standard TL2 optimization). *)
    if wv <> tx.rv + 2 && not (read_set_valid tx ~own_locks:true) then begin
      unlock_acquired tx;
      raise Conflict
    end;
    Hashtbl.iter
      (fun _ (W w) ->
        w.tv.content <- !(w.value);
        w.locked <- false;
        Atomic.set w.tv.vlock wv)
      tx.writes;
    Stm_stats.record_commit global_stats ~read_only:false
  end

let flush_tx_stats tx =
  Stm_stats.record_validation global_stats ~steps:tx.validation_steps;
  Stm_stats.record_read_set global_stats ~size:tx.nreads

let reset_tx tx =
  tx.rv <- Global_clock.now clock;
  tx.nreads <- 0;
  Hashtbl.reset tx.writes;
  tx.validation_steps <- 0;
  (* Shrink a read set that ballooned in a previous long transaction so
     per-op memory stays bounded. *)
  if Array.length tx.reads > 1 lsl 16 then tx.reads <- Array.make 64 dummy_read

let atomic f =
  let state = current () in
  match state.active with
  | Some _ -> f () (* nested: flatten *)
  | None ->
    let tx =
      match state.spare with
      | Some tx -> tx
      | None ->
        let tx = fresh_tx () in
        state.spare <- Some tx;
        tx
    in
    let rec attempt () =
      reset_tx tx;
      state.active <- Some tx;
      match
        let result = f () in
        commit tx;
        result
      with
      | result ->
        state.active <- None;
        flush_tx_stats tx;
        Backoff.reset tx.backoff;
        result
      | exception Conflict ->
        state.active <- None;
        flush_tx_stats tx;
        Stm_stats.record_abort global_stats;
        Backoff.once tx.backoff;
        attempt ()
      | exception exn ->
        (* The rv check on every read gives opacity: the view that
           produced [exn] was consistent, so roll back (discard the
           write buffer) and propagate. *)
        state.active <- None;
        flush_tx_stats tx;
        raise exn
    in
    attempt ()

let stats () = Stm_stats.snapshot global_stats
let reset_stats () = Stm_stats.reset global_stats
