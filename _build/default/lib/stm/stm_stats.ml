type snapshot = {
  commits : int;
  aborts : int;
  read_only_commits : int;
  validation_steps : int;
  max_read_set : int;
}

(* Counters are atomic; STMs flush per-transaction tallies once at
   commit/abort time, so contention on these cells is negligible
   compared to transaction work. *)
type t = {
  commits : int Atomic.t;
  aborts : int Atomic.t;
  read_only_commits : int Atomic.t;
  validation_steps : int Atomic.t;
  max_read_set : int Atomic.t;
}

let create () =
  {
    commits = Atomic.make 0;
    aborts = Atomic.make 0;
    read_only_commits = Atomic.make 0;
    validation_steps = Atomic.make 0;
    max_read_set = Atomic.make 0;
  }

let record_commit t ~read_only =
  ignore (Atomic.fetch_and_add t.commits 1);
  if read_only then ignore (Atomic.fetch_and_add t.read_only_commits 1)

let record_abort t = ignore (Atomic.fetch_and_add t.aborts 1)

let record_validation t ~steps =
  ignore (Atomic.fetch_and_add t.validation_steps steps)

let rec record_read_set t ~size =
  let current = Atomic.get t.max_read_set in
  if size > current then
    if not (Atomic.compare_and_set t.max_read_set current size) then
      record_read_set t ~size

let snapshot t : snapshot =
  {
    commits = Atomic.get t.commits;
    aborts = Atomic.get t.aborts;
    read_only_commits = Atomic.get t.read_only_commits;
    validation_steps = Atomic.get t.validation_steps;
    max_read_set = Atomic.get t.max_read_set;
  }

let reset t =
  Atomic.set t.commits 0;
  Atomic.set t.aborts 0;
  Atomic.set t.read_only_commits 0;
  Atomic.set t.validation_steps 0;
  Atomic.set t.max_read_set 0

let zero : snapshot =
  {
    commits = 0;
    aborts = 0;
    read_only_commits = 0;
    validation_steps = 0;
    max_read_set = 0;
  }

let add (a : snapshot) (b : snapshot) : snapshot =
  {
    commits = a.commits + b.commits;
    aborts = a.aborts + b.aborts;
    read_only_commits = a.read_only_commits + b.read_only_commits;
    validation_steps = a.validation_steps + b.validation_steps;
    max_read_set = max a.max_read_set b.max_read_set;
  }

let to_assoc (s : snapshot) =
  [
    ("commits", s.commits);
    ("aborts", s.aborts);
    ("read_only_commits", s.read_only_commits);
    ("validation_steps", s.validation_steps);
    ("max_read_set", s.max_read_set);
  ]

let pp ppf (s : snapshot) =
  Format.fprintf ppf
    "commits=%d aborts=%d ro_commits=%d validation_steps=%d max_read_set=%d"
    s.commits s.aborts s.read_only_commits s.validation_steps s.max_read_set
