(* A multi-version STM in the style of the Lazy Snapshot Algorithm
   (Riegel, Felber, Fetzer, DISC'06 — reference [11] of the STMBench7
   paper, one of the "solutions already proposed" for the long-traversal
   problem).

   Every tvar keeps a short history of (version, value) pairs. Update
   transactions behave like TL2 (read-version check with extension,
   lazy writes, commit-time locking, O(k) validation), but commits
   *prepend* to the history instead of overwriting. Transactions opened
   in snapshot mode — which the LSA runtime selects for operations with
   read-only profiles — read the newest version no newer than their
   start time: they never validate and never conflict with writers, and
   abort only in the rare case where the needed version has already
   been evicted from a history.

   This is exactly what the paper's §5 calls for: T1-class traversals
   run at sequential speed regardless of concurrent updates, where the
   invisible-read ASTM pays O(k²) validation and the locks serialize. *)

exception Conflict = Stm_intf.Conflict

let name = "lsa"

(* Versions kept per tvar. Snapshot transactions abort if they need
   something older; STMBench7's long traversals are fast relative to
   the update rate at realistic scales, so a small constant works. *)
let history_depth = 8

type 'a tvar = {
  id : int;
  vlock : int Atomic.t; (* even = version of the head entry, odd = locked *)
  mutable history : (int * 'a) list; (* newest first, never [] *)
}

type wentry =
  | W : {
      tv : 'a tvar;
      value : 'a ref;
      mutable locked_from : int;
      mutable locked : bool;
    }
      -> wentry

let cast_ref : type a. a tvar -> wentry -> a ref =
 fun tv (W w) ->
  assert (w.tv.id = tv.id);
  (Obj.magic w.value : a ref)

type read_entry = { r_id : int; r_vlock : int Atomic.t; r_version : int }

type mode =
  | Update
  | Snapshot

type tx = {
  mutable mode : mode;
  mutable rv : int;
  mutable reads : read_entry array;
  mutable nreads : int;
  writes : (int, wentry) Hashtbl.t;
  backoff : Backoff.t;
  mutable validation_steps : int;
}

let clock = Global_clock.create ()
let global_stats = Stm_stats.create ()
let tvar_ids = Atomic.make 0

let make v =
  {
    id = Atomic.fetch_and_add tvar_ids 1;
    vlock = Atomic.make 0;
    history = [ (0, v) ];
  }

let dummy_read = { r_id = -1; r_vlock = Atomic.make 0; r_version = 0 }

let fresh_tx () =
  {
    mode = Update;
    rv = 0;
    reads = Array.make 64 dummy_read;
    nreads = 0;
    writes = Hashtbl.create 64;
    backoff = Backoff.create ~seed:((Domain.self () :> int) + 1) ();
    validation_steps = 0;
  }

type domain_state = {
  mutable active : tx option;
  mutable spare : tx option;
}

let current_key : domain_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { active = None; spare = None })

let current () = Domain.DLS.get current_key

let in_transaction () =
  match (current ()).active with
  | None -> false
  | Some _ -> true

let head_value tv =
  match tv.history with
  | (_, v) :: _ -> v
  | [] -> assert false

let push_read tx entry =
  let n = tx.nreads in
  if n = Array.length tx.reads then begin
    let bigger = Array.make (2 * n) dummy_read in
    Array.blit tx.reads 0 bigger 0 n;
    tx.reads <- bigger
  end;
  tx.reads.(n) <- entry;
  tx.nreads <- n + 1

let read_set_valid tx ~own_locks =
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < tx.nreads do
    let e = tx.reads.(!i) in
    let cur = Atomic.get e.r_vlock in
    if cur <> e.r_version then
      if
        not (own_locks && cur = e.r_version + 1 && Hashtbl.mem tx.writes e.r_id)
      then ok := false;
    incr i
  done;
  tx.validation_steps <- tx.validation_steps + !i;
  !ok

let extend tx =
  let now = Global_clock.now clock in
  if read_set_valid tx ~own_locks:false then tx.rv <- now else raise Conflict

(* Snapshot read: the newest version no newer than [rv]. The vlock
   sandwich makes (version, history) capture consistent. *)
let rec snapshot_read : type a. tx -> a tvar -> a =
 fun tx tv ->
  let v1 = Atomic.get tv.vlock in
  if v1 land 1 = 1 then begin
    (* A committer holds the lock; its write will carry a version
       newer than rv, so the pre-lock history suffices — spin briefly
       for the consistent pair. *)
    Domain.cpu_relax ();
    snapshot_read tx tv
  end
  else begin
    let history = tv.history in
    let v2 = Atomic.get tv.vlock in
    if v1 <> v2 then snapshot_read tx tv
    else
      match List.find_opt (fun (ver, _) -> ver <= tx.rv) history with
      | Some (_, value) -> value
      | None -> raise Conflict (* evicted: history too shallow *)
  end

let rec update_read : type a. tx -> a tvar -> a =
 fun tx tv ->
  let v1 = Atomic.get tv.vlock in
  if v1 land 1 = 1 then raise Conflict
  else begin
    let value = head_value tv in
    let v2 = Atomic.get tv.vlock in
    if v1 <> v2 then raise Conflict
    else if v1 > tx.rv then begin
      extend tx;
      update_read tx tv
    end
    else begin
      push_read tx { r_id = tv.id; r_vlock = tv.vlock; r_version = v1 };
      value
    end
  end

let read tv =
  match (current ()).active with
  | None -> head_value tv
  | Some tx -> (
    match tx.mode with
    | Snapshot -> snapshot_read tx tv
    | Update -> (
      if Hashtbl.length tx.writes = 0 then update_read tx tv
      else
        match Hashtbl.find_opt tx.writes tv.id with
        | Some entry -> !(cast_ref tv entry)
        | None -> update_read tx tv))

let write tv v =
  match (current ()).active with
  | None ->
    let ver = match tv.history with (ver, _) :: _ -> ver | [] -> 0 in
    tv.history <- [ (ver, v) ]
  | Some tx -> (
    match tx.mode with
    | Snapshot ->
      invalid_arg
        "Lsa.write: snapshot transactions are read-only (check the \
         operation profile)"
    | Update -> (
      match Hashtbl.find_opt tx.writes tv.id with
      | Some entry -> cast_ref tv entry := v
      | None ->
        Hashtbl.add tx.writes tv.id
          (W { tv; value = ref v; locked_from = 0; locked = false })))

let unlock_acquired tx =
  Hashtbl.iter
    (fun _ (W w) ->
      if w.locked then begin
        Atomic.set w.tv.vlock w.locked_from;
        w.locked <- false
      end)
    tx.writes

let lock_write_set tx =
  try
    Hashtbl.iter
      (fun _ (W w) ->
        let v = Atomic.get w.tv.vlock in
        if v land 1 = 1 || not (Atomic.compare_and_set w.tv.vlock v (v + 1))
        then raise Exit
        else begin
          w.locked_from <- v;
          w.locked <- true
        end)
      tx.writes
  with Exit ->
    unlock_acquired tx;
    raise Conflict

let truncate_history h =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | entry :: rest -> entry :: take (n - 1) rest
  in
  take history_depth h

let commit tx =
  if Hashtbl.length tx.writes = 0 then
    Stm_stats.record_commit global_stats
      ~read_only:true
  else begin
    lock_write_set tx;
    let wv = Global_clock.tick clock in
    if wv <> tx.rv + 2 && not (read_set_valid tx ~own_locks:true) then begin
      unlock_acquired tx;
      raise Conflict
    end;
    Hashtbl.iter
      (fun _ (W w) ->
        w.tv.history <- truncate_history ((wv, !(w.value)) :: w.tv.history);
        w.locked <- false;
        Atomic.set w.tv.vlock wv)
      tx.writes;
    Stm_stats.record_commit global_stats ~read_only:false
  end

let flush_tx_stats tx =
  Stm_stats.record_validation global_stats ~steps:tx.validation_steps;
  Stm_stats.record_read_set global_stats ~size:tx.nreads

let reset_tx tx mode =
  tx.mode <- mode;
  tx.rv <- Global_clock.now clock;
  tx.nreads <- 0;
  Hashtbl.reset tx.writes;
  tx.validation_steps <- 0;
  if Array.length tx.reads > 1 lsl 16 then tx.reads <- Array.make 64 dummy_read

let atomic_in_mode mode f =
  let state = current () in
  match state.active with
  | Some _ -> f () (* nested: flatten *)
  | None ->
    let tx =
      match state.spare with
      | Some tx -> tx
      | None ->
        let tx = fresh_tx () in
        state.spare <- Some tx;
        tx
    in
    let rec attempt () =
      reset_tx tx mode;
      state.active <- Some tx;
      match
        let result = f () in
        commit tx;
        result
      with
      | result ->
        state.active <- None;
        flush_tx_stats tx;
        Backoff.reset tx.backoff;
        result
      | exception Conflict ->
        state.active <- None;
        flush_tx_stats tx;
        Stm_stats.record_abort global_stats;
        Backoff.once tx.backoff;
        attempt ()
      | exception exn ->
        state.active <- None;
        flush_tx_stats tx;
        raise exn
    in
    attempt ()

let atomic f = atomic_in_mode Update f

(** Run a read-only transaction against a consistent snapshot: no
    validation, no conflicts with concurrent committers. [f] must not
    call {!write}. *)
let atomic_snapshot f = atomic_in_mode Snapshot f

let stats () = Stm_stats.snapshot global_stats
let reset_stats () = Stm_stats.reset global_stats
