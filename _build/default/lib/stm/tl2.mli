(** A TL2-style software transactional memory: global version clock,
    invisible-but-validated reads in O(1) per read (opacity), lazy write
    buffering, commit-time locking with a single O(k) read-set
    validation pass, and TinySTM-style timestamp extension.

    This is the representative of the "solutions already proposed"
    [Dice–Shalev–Shavit, DISC'06] the STMBench7 paper points to as the
    fix for ASTM's pathologies. See {!Astm} for the contrast. *)

include Stm_intf.S
