(** A DSTM/ASTM-style object-granularity STM with invisible reads,
    O(k) read-set validation on every object open (hence O(k²) total
    validation work per transaction) and object-level copy-on-write
    acquisition — deliberately reproducing the two design points the
    STMBench7 paper identifies as the cause of ASTM's collapse on
    long traversals and large objects.

    Conflicts with active owners are arbitrated by a pluggable
    contention manager; the default is [Polka], as in the paper's
    evaluation. *)

include Stm_intf.S

(** Select the contention manager (global; set before running
    transactions). *)
val set_policy : Contention.policy -> unit

val get_policy : unit -> Contention.policy
