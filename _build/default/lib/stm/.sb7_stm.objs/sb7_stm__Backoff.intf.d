lib/stm/backoff.mli:
