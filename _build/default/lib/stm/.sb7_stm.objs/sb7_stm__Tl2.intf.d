lib/stm/tl2.mli: Stm_intf
