lib/stm/lsa.mli: Stm_intf
