lib/stm/stm_stats.ml: Atomic Format
