lib/stm/tl2.ml: Array Atomic Backoff Domain Global_clock Hashtbl Obj Stm_intf Stm_stats
