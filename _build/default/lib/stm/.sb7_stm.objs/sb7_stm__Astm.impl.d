lib/stm/astm.ml: Atomic Backoff Contention Domain List Stm_intf Stm_stats
