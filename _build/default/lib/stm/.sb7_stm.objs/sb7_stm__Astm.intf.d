lib/stm/astm.mli: Contention Stm_intf
