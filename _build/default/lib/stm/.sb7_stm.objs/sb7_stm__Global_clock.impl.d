lib/stm/global_clock.ml: Atomic
