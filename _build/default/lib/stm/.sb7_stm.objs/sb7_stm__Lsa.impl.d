lib/stm/lsa.ml: Array Atomic Backoff Domain Global_clock Hashtbl List Obj Stm_intf Stm_stats
