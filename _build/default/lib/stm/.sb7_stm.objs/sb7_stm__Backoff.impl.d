lib/stm/backoff.ml: Domain Unix
