lib/stm/stm_intf.ml: Stm_stats
