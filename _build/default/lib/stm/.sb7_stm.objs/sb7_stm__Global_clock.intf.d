lib/stm/global_clock.mli:
