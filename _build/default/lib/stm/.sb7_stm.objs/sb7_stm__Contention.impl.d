lib/stm/contention.ml: Printf String
