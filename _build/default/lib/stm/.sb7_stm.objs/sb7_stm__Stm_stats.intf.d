lib/stm/stm_stats.mli: Format
