lib/stm/contention.mli:
