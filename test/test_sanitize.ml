(* Tests for the sanitizer substrate (lib/sanitize): the wrapper must
   be transparent, the trace must round-trip, and the checker must flag
   each class of bug on hand-built event streams — and, end to end,
   flag the seeded runtime bugs while passing honest runs clean. *)

module Trace = Sb7_sanitize.Trace
module Checker = Sb7_sanitize.Checker
module Sanitize = Sb7_sanitize.Sanitize
module Op_profile = Sb7_runtime.Op_profile
module B = Sb7_harness.Benchmark

(* -- Stream-building helpers ---------------------------------------- *)

let begin_ ?(flags = 0) ?(op = 0) ts = [ Trace.tag_begin; flags; ts; op ]
let read_ sid wid = [ Trace.tag_read; sid; wid ]
let write_ sid wid prev = [ Trace.tag_write; sid; wid; prev ]
let commit ts = [ Trace.tag_commit; ts; 0 ]
let rollback = [ Trace.tag_rollback ]
let partial_ reads_kept writes_kept = [ Trace.tag_partial; reads_kept; writes_kept ]
let acq ?(excl = true) uid = [ Trace.tag_acquire; uid; (if excl then 1 else 0) ]
let rel ?(excl = true) uid = [ Trace.tag_release; uid; (if excl then 1 else 0) ]
let stream evs = Array.of_list (List.concat evs)

let dump ?(locks = []) ?(ops = []) ?(regions = [||]) streams : Trace.dump =
  { Trace.streams = Array.of_list (List.map stream streams); locks; ops; regions }

let stm_profile =
  {
    Checker.rollback_on_failure = true;
    lockset = false;
    ranked_locks = [];
  }

let lock_profile ?(ranked = []) () =
  {
    Checker.rollback_on_failure = false;
    lockset = true;
    ranked_locks = ranked;
  }

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let check_clean what v =
  Alcotest.(check bool)
    (what ^ " comes back clean")
    true (Checker.clean v)

let expect ~category ~mentions v =
  let findings =
    match category with
    | `Opacity -> v.Checker.opacity
    | `Races -> v.Checker.races
    | `Order -> v.Checker.lock_order
  in
  match findings with
  | [] -> Alcotest.failf "no finding mentioning %S" mentions
  | f :: _ ->
    let contains s sub =
      let n = String.length sub and m = String.length s in
      let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
      n = 0 || at 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "finding %S mentions %S" f mentions)
      true (contains f mentions)

(* -- Opacity checker on hand-built streams -------------------------- *)

let test_clean_history () =
  (* Two domains, serial version chain on tvar 1: nothing to flag. *)
  let d =
    dump
      [
        [ begin_ 1; write_ 1 10 0; commit 2; begin_ 5; read_ 1 11; commit 6 ];
        [ begin_ 3; read_ 1 10; write_ 1 11 10; commit 4 ];
      ]
  in
  let v = Checker.analyze ~profile:stm_profile d in
  check_clean "serial history" v;
  Alcotest.(check int) "attempts" 3 v.Checker.attempts;
  Alcotest.(check int) "committed" 3 v.Checker.committed

let test_non_repeatable_read () =
  let d = dump [ [ begin_ 1; read_ 1 10; read_ 1 11; commit 2 ] ] in
  let v = Checker.analyze ~profile:stm_profile d in
  expect ~category:`Opacity ~mentions:"non-repeatable" v

let test_own_writes_are_repeatable () =
  (* Re-reading your own write is not a non-repeatable read. *)
  let d =
    dump [ [ begin_ 1; read_ 1 10; write_ 1 11 10; read_ 1 11; commit 2 ] ]
  in
  check_clean "read-own-write" (Checker.analyze ~profile:stm_profile d)

let test_lost_update () =
  (* Both domains overwrite version 0 of tvar 1: a fork in the chain. *)
  let d =
    dump
      [
        [ begin_ 1; write_ 1 10 0; commit 2 ];
        [ begin_ 3; write_ 1 11 0; commit 4 ];
      ]
  in
  expect ~category:`Opacity ~mentions:"lost update"
    (Checker.analyze ~profile:stm_profile d)

let test_dirty_read () =
  (* Domain 0's write rolls back (rollback runtime: not effective);
     domain 1 observed it anyway. *)
  let d =
    dump
      [
        [ begin_ 1; write_ 1 10 0; rollback ];
        [ begin_ 2; read_ 1 10; commit 3 ];
      ]
  in
  expect ~category:`Opacity ~mentions:"dirty read"
    (Checker.analyze ~profile:stm_profile d)

let test_rolledback_writes_effective_without_rollback () =
  (* Same trace under a no-rollback profile (coarse/medium/seq): the
     rolled-back attempt's writes are committed effects, so the read is
     legitimate. *)
  let d =
    dump
      [
        [ begin_ 1; write_ 1 10 0; rollback ];
        [ begin_ 2; read_ 1 10; commit 3 ];
      ]
  in
  let seq_like =
    { Checker.rollback_on_failure = false; lockset = false; ranked_locks = [] }
  in
  check_clean "no-rollback profile" (Checker.analyze ~profile:seq_like d)

let test_write_skew_cycle () =
  (* Classic write skew: T1 reads x then writes y, T2 reads y then
     writes x — an RW/RW cycle no serial order satisfies. *)
  let x = 1 and y = 2 in
  let d =
    dump
      [
        [ begin_ 1; read_ x 0; write_ y 10 0; commit 2 ];
        [ begin_ 1; read_ y 0; write_ x 11 0; commit 2 ];
      ]
  in
  expect ~category:`Opacity ~mentions:"not serializable"
    (Checker.analyze ~profile:stm_profile d)

let test_inconsistent_snapshot_aborted () =
  (* Domain 0 commits (x,y) twice; domain 1's ABORTED attempt saw old x
     with new y — exactly the inconsistent snapshot opacity forbids
     even for aborted transactions. *)
  let x = 1 and y = 2 in
  let d =
    dump
      [
        [
          begin_ 1; write_ x 10 0; write_ y 20 0; commit 2;
          begin_ 3; write_ x 11 10; write_ y 21 20; commit 4;
        ];
        [ begin_ 5; read_ x 10; read_ y 21 (* never commits: aborted *) ];
      ]
  in
  let v = Checker.analyze ~profile:stm_profile d in
  Alcotest.(check int) "aborted attempt counted" 1 v.Checker.aborted;
  expect ~category:`Opacity ~mentions:"inconsistent snapshot" v

let test_consistent_aborted_attempt_clean () =
  let x = 1 and y = 2 in
  let d =
    dump
      [
        [
          begin_ 1; write_ x 10 0; write_ y 20 0; commit 2;
          begin_ 3; write_ x 11 10; write_ y 21 20; commit 4;
        ];
        [ begin_ 5; read_ x 10; read_ y 20 ];
      ]
  in
  check_clean "consistent aborted attempt"
    (Checker.analyze ~profile:stm_profile d)

let test_concurrent_commits_no_false_positive () =
  (* T-y (listed first, so earlier in an arbitrary topological order)
     and T-x touch unrelated tvars; the reader saw x's new version and
     y's base version. A naive single-witness-order window check would
     call that inconsistent whenever the order places T-x after T-y;
     the reachability confirmation must discard it. *)
  let x = 1 and y = 2 in
  let d =
    dump
      [
        [ begin_ 1; write_ y 20 0; commit 2 ];
        [ begin_ 1; write_ x 10 0; commit 2 ];
        [ begin_ 3; read_ x 10; read_ y 0 ];
      ]
  in
  check_clean "unordered concurrent commits"
    (Checker.analyze ~profile:stm_profile d)

(* -- Partial aborts (checkpoint rollback) on hand-built streams ----- *)

let test_partial_rollback_discards_stale_read () =
  (* Domain 0 advances tvar 2 from version 20 to 21. Domain 1's first
     pass saw 2@20; the partial abort kept only its first read event
     (tvar 1), so the re-read observing 2@21 is fresh, not a repeat.
     Without the truncation this exact stream is a non-repeatable
     read (the next test). *)
  let d =
    dump
      [
        [
          begin_ 1; write_ 1 10 0; write_ 2 20 0; commit 2;
          begin_ 3; write_ 2 21 20; commit 4;
        ];
        [ begin_ 5; read_ 1 10; read_ 2 20; partial_ 1 0; read_ 2 21; commit 6 ];
      ]
  in
  let v = Checker.analyze ~profile:stm_profile d in
  check_clean "validated partial rollback" v;
  (* The partial abort continues the SAME attempt: 2 committers on
     domain 0 plus the one resumed scanner. *)
  Alcotest.(check int) "no extra attempt for the resume" 3 v.Checker.attempts

let test_partial_rollback_oversalvage_flagged () =
  (* Same history, but the partial abort claims BOTH reads survived —
     the unvalidated-resume bug. The retained 2@20 plus the resumed
     read 2@21 is a non-repeatable read. *)
  let d =
    dump
      [
        [
          begin_ 1; write_ 1 10 0; write_ 2 20 0; commit 2;
          begin_ 3; write_ 2 21 20; commit 4;
        ];
        [ begin_ 5; read_ 1 10; read_ 2 20; partial_ 2 0; read_ 2 21; commit 6 ];
      ]
  in
  expect ~category:`Opacity ~mentions:"non-repeatable"
    (Checker.analyze ~profile:stm_profile d)

let test_partial_rollback_discards_write () =
  (* The attempt's first write is undone by the partial abort; its
     replacement legitimately continues version 0's chain. If the
     truncation did not discard the write event, the two writes would
     fork the chain and be flagged as a lost update. *)
  let d =
    dump [ [ begin_ 1; write_ 1 10 0; partial_ 0 0; write_ 1 11 0; commit 2 ] ]
  in
  let v = Checker.analyze ~profile:stm_profile d in
  check_clean "discarded write" v;
  Alcotest.(check int) "still one attempt" 1 v.Checker.attempts

(* -- Lockset + lock-order on hand-built streams --------------------- *)

let locks = [ (1, "structure"); (2, "domain-0"); (3, "domain-1") ]

let test_lockset_race () =
  (* Two domains write tvar 9 under disjoint exclusive locks. *)
  let d =
    dump ~locks
      [
        [ acq 2; write_ 9 10 0; rel 2 ];
        [ acq 3; write_ 9 11 0; rel 3 ];
      ]
  in
  expect ~category:`Races ~mentions:"data race"
    (Checker.analyze ~profile:(lock_profile ()) d)

let test_lockset_exclusive_common_lock_clean () =
  (* Medium-runtime shape: a structural op writes under structure:W; a
     traversal writes under structure:R + domain:W. Their locksets
     differ, but the shared structure lock is exclusive on one side —
     ordered, not a race. Plain lockset intersection gets this wrong. *)
  let d =
    dump ~locks
      [
        [ acq 1; write_ 9 10 0; rel 1 ];
        [ acq ~excl:false 1; acq 2; write_ 9 11 10; rel 2; rel ~excl:false 1 ];
      ]
  in
  check_clean "structure-lock ordering"
    (Checker.analyze ~profile:(lock_profile ()) d)

let test_lockset_shared_only_write_race () =
  (* Both writers hold the common lock in read mode only: flagged. *)
  let d =
    dump ~locks
      [
        [ acq ~excl:false 1; acq 2; write_ 9 10 0; rel 2; rel ~excl:false 1 ];
        [ acq ~excl:false 1; acq 3; write_ 9 11 0; rel 3; rel ~excl:false 1 ];
      ]
  in
  expect ~category:`Races ~mentions:"data race"
    (Checker.analyze ~profile:(lock_profile ()) d)

let test_read_read_not_a_race () =
  let d =
    dump ~locks
      [ [ read_ 9 0 ]; [ read_ 9 0 ] ]
  in
  check_clean "read/read" (Checker.analyze ~profile:(lock_profile ()) d)

let test_single_domain_not_a_race () =
  (* Unsynchronized accesses from ONE domain are fine. *)
  let d = dump ~locks [ [ write_ 9 10 0; write_ 9 11 10 ] ] in
  check_clean "single domain" (Checker.analyze ~profile:(lock_profile ()) d)

let ranked = [ ("structure", 0); ("domain-0", 1); ("domain-1", 2) ]

let test_lock_order_violation () =
  (* Acquire the structure lock while holding a domain lock. *)
  let d = dump ~locks [ [ acq 2; acq 1; rel 1; rel 2 ] ] in
  expect ~category:`Order ~mentions:"lock-order"
    (Checker.analyze ~profile:(lock_profile ~ranked ()) d)

let test_lock_order_respected () =
  let d = dump ~locks [ [ acq 1; acq 2; acq 3; rel 3; rel 2; rel 1 ] ] in
  check_clean "declared order"
    (Checker.analyze ~profile:(lock_profile ~ranked ()) d)

let test_anonymous_locks_exempt_from_order () =
  (* fine's per-tvar locks are unranked: interleaving them with ranked
     locks is not an ordering violation. *)
  let anon = Sb7_rwlock.Lock_hooks.anonymous_base + 7 in
  let d = dump ~locks [ [ acq anon; acq 1; rel 1; rel anon ] ] in
  check_clean "anonymous locks"
    (Checker.analyze ~profile:(lock_profile ~ranked ()) d)

(* -- Trace round-trip ----------------------------------------------- *)

let test_trace_save_load () =
  let d =
    dump ~locks [ [ begin_ 1; read_ 1 0; write_ 1 10 0; commit 2 ] ]
  in
  let path = Filename.temp_file "sb7" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save path d;
      let d' = Trace.load path in
      Alcotest.(check bool) "streams survive" true (d'.Trace.streams = d.Trace.streams);
      Alcotest.(check bool) "locks survive" true (d'.Trace.locks = d.Trace.locks))

(* -- The wrapper runtime -------------------------------------------- *)

module Seq = Sb7_runtime.Seq_runtime
module S = Sanitize.Make (Seq)

let profile = Op_profile.make ~name:"test" ()

let test_wrapper_transparent () =
  Alcotest.(check string) "name passes through" Seq.name S.name;
  let tv = S.make 41 in
  Alcotest.(check int) "read back" 41 (S.read tv);
  S.write tv 42;
  Alcotest.(check int)
    "atomic result" 43
    (S.atomic ~profile (fun () -> S.read tv + 1));
  (match S.atomic ~profile (fun () -> raise Exit) with
  | () -> Alcotest.fail "exception swallowed"
  | exception Exit -> ());
  Alcotest.(check bool) "tracing stayed off" false (Trace.enabled ())

let test_wrapper_records () =
  Trace.reset ();
  Trace.enable ();
  let v =
    Fun.protect
      ~finally:(fun () -> Trace.disable ())
      (fun () ->
        let tv = S.make 0 in
        S.atomic ~profile (fun () -> S.write tv (S.read tv + 1));
        S.atomic ~profile (fun () -> S.read tv) |> ignore;
        Trace.disable ();
        Checker.analyze
          ~profile:(Checker.profile_of_runtime Seq.name)
          (Trace.dump ()))
  in
  Trace.reset ();
  Alcotest.(check int) "two attempts" 2 v.Checker.attempts;
  Alcotest.(check int) "both committed" 2 v.Checker.committed;
  check_clean "single-threaded wrapped run" v

(* -- Footprint replay on hand-built streams ------------------------- *)

(* Toy footprint table: one operation OPX that may read regions {0, 3}
   and may write {3} (the may-read mask includes the writes, as the
   generated table's [masks] accessor guarantees). *)
let fp_table = function
  | "OPX" -> Some ((1 lsl 0) lor (1 lsl 3), 1 lsl 3)
  | _ -> None

let fp_check ?(ops = [ (1, "OPX") ]) ?(regions = [||]) streams =
  Checker.footprint ~table:fp_table ~region_name:string_of_int
    (dump ~ops ~regions streams)

let test_fp_clean_stream () =
  let v =
    fp_check
      ~regions:[| (1, 0); (2, 3) |]
      [ [ begin_ ~op:1 10; read_ 1 5; write_ 2 11 5; commit 12 ] ]
  in
  Alcotest.(check int) "one attempt" 1 v.Checker.fp_attempts;
  Alcotest.(check int) "both accesses checked" 2 v.Checker.fp_checked;
  Alcotest.(check bool) "clean" true (Checker.fp_clean v)

let test_fp_read_escape () =
  (* Region 4 is outside OPX's may-read set. *)
  let v =
    fp_check ~regions:[| (1, 4) |] [ [ begin_ ~op:1 10; read_ 1 5; commit 12 ] ]
  in
  Alcotest.(check int) "one escape" 1 v.Checker.fp_escape_count;
  Alcotest.(check bool)
    "escape names the op and kind" true
    (match v.Checker.fp_escapes with
    | [ m ] -> contains m "OPX" && contains m "may-read"
    | _ -> false)

let test_fp_write_outside_write_set () =
  (* Region 0 is readable but NOT writable for OPX: a write there must
     be flagged even though a read would pass. *)
  let v =
    fp_check
      ~regions:[| (1, 0) |]
      [ [ begin_ ~op:1 10; write_ 1 11 5; commit 12 ] ]
  in
  Alcotest.(check int) "one escape" 1 v.Checker.fp_escape_count;
  Alcotest.(check bool)
    "flagged as a write escape" true
    (match v.Checker.fp_escapes with
    | [ m ] -> contains m "may-write"
    | _ -> false)

let test_fp_unknowns_counted_not_flagged () =
  let v =
    fp_check
      ~regions:[| (1, 0) |]
      [
        (* Known op, tvar without a region note. *)
        [ begin_ ~op:1 10; read_ 9 5; commit 12 ];
        (* Unknown op id: its accesses are counted, never flagged. *)
        [ begin_ ~op:7 20; read_ 1 5; commit 22 ];
      ]
  in
  Alcotest.(check int) "unknown region" 1 v.Checker.fp_unknown_region;
  Alcotest.(check int) "unknown op" 1 v.Checker.fp_unknown_op;
  Alcotest.(check int) "nothing checked" 0 v.Checker.fp_checked;
  Alcotest.(check bool) "clean" true (Checker.fp_clean v)

let test_fp_escapes_deduplicated () =
  let v =
    fp_check
      ~regions:[| (1, 4); (2, 4) |]
      [ [ begin_ ~op:1 10; read_ 1 5; read_ 2 6; commit 12 ] ]
  in
  (* Every escaping access is counted, but the report collapses to one
     line per (op, region, kind). *)
  Alcotest.(check int) "both escapes counted" 2 v.Checker.fp_escape_count;
  Alcotest.(check int)
    "one deduplicated finding" 1
    (List.length v.Checker.fp_escapes)

(* -- End to end: honest run clean, seeded bugs flagged -------------- *)

let run_config =
  {
    B.default_config with
    B.threads = 2;
    duration_s = 0.3;
    workload = Sb7_harness.Workload.Write_dominated;
    scale = Sb7_core.Parameters.tiny;
    scale_name = "tiny";
    sanitize = true;
  }

let sanitized_run ?(config = run_config) runtime_name =
  match Sb7_harness.Driver.run ~runtime_name config with
  | Error e -> Alcotest.fail e
  | Ok r -> (
    match r.Sb7_harness.Run_result.sanitizer with
    | None -> Alcotest.fail "sanitized run produced no verdict"
    | Some v -> v)

let test_honest_run_clean () =
  let v = sanitized_run "tl2" in
  Alcotest.(check bool) "attempts recorded" true (v.Checker.attempts > 0);
  check_clean "honest tl2" v

(* Detection needs a real racy interleaving, so retry a few times with
   doubled duration before declaring the sanitizer toothless. *)
let detect ~arm ~disarm ~category runtime_name =
  Fun.protect ~finally:disarm (fun () ->
      arm ();
      let rec go i duration =
        let v =
          sanitized_run ~config:{ run_config with B.duration_s = duration }
            runtime_name
        in
        let hit =
          match category with
          | `Opacity -> v.Checker.opacity <> []
          | `Races -> v.Checker.races <> []
        in
        if hit then ()
        else if i >= 4 then
          Alcotest.failf "seeded bug in %s not detected (%d runs)"
            runtime_name i
        else go (i + 1) (duration *. 2.)
      in
      go 1 0.2)

(* Property: for every registered runtime, a sanitized quick workload
   at two domains replays through the static footprint table with zero
   contradictions — the dynamic trace validates the whole-program
   inference (docs/FOOTPRINT.md). *)
let test_footprint_replay_all_runtimes () =
  let region_name code =
    match Sb7_runtime.Region.of_int code with
    | Some r -> Sb7_runtime.Region.to_string r
    | None -> Printf.sprintf "region#%d" code
  in
  List.iter
    (fun (name, _) ->
      let config =
        if String.equal name "seq" then { run_config with B.threads = 1 }
        else run_config
      in
      let (_ : Checker.verdict) = sanitized_run ~config name in
      let v =
        Checker.footprint ~table:Sb7_core.Op_footprint.masks ~region_name
          (Trace.dump ())
      in
      Alcotest.(check bool)
        (name ^ ": accesses were checked")
        true
        (v.Checker.fp_checked > 0);
      Alcotest.(check int) (name ^ ": no unknown regions") 0
        v.Checker.fp_unknown_region;
      Alcotest.(check int) (name ^ ": no unknown ops") 0 v.Checker.fp_unknown_op;
      if not (Checker.fp_clean v) then
        Alcotest.failf "%s: footprint contradictions:\n%s" name
          (Checker.fp_summary v))
    Sb7_runtime.Registry.all;
  Trace.reset ()

let test_seeded_tl2_no_validation () =
  detect "tl2" ~category:`Opacity
    ~arm:Sb7_stm.Tl2.Unsafe.disable_validation
    ~disarm:Sb7_stm.Tl2.Unsafe.reset

let test_seeded_medium_drop_lock () =
  detect "medium" ~category:`Races
    ~arm:Sb7_runtime.Medium_runtime.Unsafe.drop_first_write_lock
    ~disarm:Sb7_runtime.Medium_runtime.Unsafe.reset

(* Partial aborts that resume without validating the salvaged prefix:
   the resumed attempt straddles the conflicting commit, which the
   opacity analyses must flag (write-dominated + long traversals so
   mid-traversal conflicts actually happen). *)
let test_seeded_tl2_unvalidated_resume () =
  detect "tl2" ~category:`Opacity
    ~arm:Sb7_stm.Tl2.Unsafe.disable_resume_validation
    ~disarm:Sb7_stm.Tl2.Unsafe.reset

let () =
  Alcotest.run "sanitize"
    [
      ( "opacity",
        [
          Alcotest.test_case "clean serial history" `Quick test_clean_history;
          Alcotest.test_case "non-repeatable read" `Quick
            test_non_repeatable_read;
          Alcotest.test_case "own writes repeatable" `Quick
            test_own_writes_are_repeatable;
          Alcotest.test_case "lost update" `Quick test_lost_update;
          Alcotest.test_case "dirty read" `Quick test_dirty_read;
          Alcotest.test_case "no-rollback rolledback effective" `Quick
            test_rolledback_writes_effective_without_rollback;
          Alcotest.test_case "write-skew cycle" `Quick test_write_skew_cycle;
          Alcotest.test_case "inconsistent snapshot in aborted tx" `Quick
            test_inconsistent_snapshot_aborted;
          Alcotest.test_case "consistent aborted tx clean" `Quick
            test_consistent_aborted_attempt_clean;
          Alcotest.test_case "concurrent commits: no false positive" `Quick
            test_concurrent_commits_no_false_positive;
          Alcotest.test_case "partial rollback discards stale read" `Quick
            test_partial_rollback_discards_stale_read;
          Alcotest.test_case "partial over-salvage flagged" `Quick
            test_partial_rollback_oversalvage_flagged;
          Alcotest.test_case "partial rollback discards write" `Quick
            test_partial_rollback_discards_write;
        ] );
      ( "lockset",
        [
          Alcotest.test_case "disjoint-lock write race" `Quick
            test_lockset_race;
          Alcotest.test_case "exclusive common lock is ordered" `Quick
            test_lockset_exclusive_common_lock_clean;
          Alcotest.test_case "shared-only common lock races" `Quick
            test_lockset_shared_only_write_race;
          Alcotest.test_case "read/read clean" `Quick test_read_read_not_a_race;
          Alcotest.test_case "single domain clean" `Quick
            test_single_domain_not_a_race;
          Alcotest.test_case "lock-order violation" `Quick
            test_lock_order_violation;
          Alcotest.test_case "lock-order respected" `Quick
            test_lock_order_respected;
          Alcotest.test_case "anonymous locks exempt" `Quick
            test_anonymous_locks_exempt_from_order;
        ] );
      ( "trace",
        [
          Alcotest.test_case "save/load round-trip" `Quick test_trace_save_load;
          Alcotest.test_case "wrapper transparent when off" `Quick
            test_wrapper_transparent;
          Alcotest.test_case "wrapper records when on" `Quick
            test_wrapper_records;
        ] );
      ( "footprint",
        [
          Alcotest.test_case "clean stream" `Quick test_fp_clean_stream;
          Alcotest.test_case "read escape" `Quick test_fp_read_escape;
          Alcotest.test_case "write outside write set" `Quick
            test_fp_write_outside_write_set;
          Alcotest.test_case "unknowns counted not flagged" `Quick
            test_fp_unknowns_counted_not_flagged;
          Alcotest.test_case "escapes deduplicated" `Quick
            test_fp_escapes_deduplicated;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "honest sanitized run clean" `Quick
            test_honest_run_clean;
          Alcotest.test_case "footprint replay: all runtimes" `Quick
            test_footprint_replay_all_runtimes;
          Alcotest.test_case "seeded: tl2 without validation" `Quick
            test_seeded_tl2_no_validation;
          Alcotest.test_case "seeded: medium dropped lock" `Quick
            test_seeded_medium_drop_lock;
          Alcotest.test_case "seeded: tl2 unvalidated resume" `Quick
            test_seeded_tl2_unvalidated_resume;
        ] );
    ]
