(* Tests for the harness pieces: stats recording and merging, run
   results, report rendering, and the driver dispatch. *)

module Stats = Sb7_harness.Stats
module W = Sb7_harness.Workload
module B = Sb7_harness.Benchmark
module RR = Sb7_harness.Run_result
module P = Sb7_core.Parameters

(* --- Stats --- *)

let test_record_success () =
  let s = Stats.create ~ops:2 ~histograms:false in
  Stats.record s ~op:0 ~latency_s:0.010 ~ok:true;
  Stats.record s ~op:0 ~latency_s:0.005 ~ok:true;
  Stats.record s ~op:0 ~latency_s:0.001 ~ok:false;
  let st = s.Stats.per_op.(0) in
  Alcotest.(check int) "successes" 2 st.Stats.successes;
  Alcotest.(check int) "failures" 1 st.Stats.failures;
  Alcotest.(check int) "attempts" 3 (Stats.attempts st);
  Alcotest.(check (float 0.001)) "max" 10. st.Stats.max_latency_ms;
  Alcotest.(check (float 0.001)) "total" 15. st.Stats.total_latency_ms

let test_failures_do_not_affect_latency () =
  let s = Stats.create ~ops:1 ~histograms:false in
  Stats.record s ~op:0 ~latency_s:99. ~ok:false;
  Alcotest.(check (float 0.001)) "no latency recorded" 0.
    s.Stats.per_op.(0).Stats.max_latency_ms

let test_histograms () =
  let s = Stats.create ~ops:1 ~histograms:true in
  Stats.record s ~op:0 ~latency_s:0.0005 ~ok:true;
  Stats.record s ~op:0 ~latency_s:0.0015 ~ok:true;
  Stats.record s ~op:0 ~latency_s:1000. ~ok:true;
  let h = s.Stats.per_op.(0).Stats.histogram in
  Alcotest.(check int) "bucket 0" 1 h.(0);
  Alcotest.(check int) "bucket 1" 1 h.(1);
  Alcotest.(check int) "overflow clamps to last bucket" 1
    h.(Stats.histogram_buckets - 1)

let test_merge () =
  let a = Stats.create ~ops:2 ~histograms:true in
  let b = Stats.create ~ops:2 ~histograms:true in
  Stats.record a ~op:0 ~latency_s:0.002 ~ok:true;
  Stats.record b ~op:0 ~latency_s:0.007 ~ok:true;
  Stats.record b ~op:1 ~latency_s:0.001 ~ok:false;
  let m = Stats.merge ~ops:2 ~histograms:true [ a; b ] in
  Alcotest.(check int) "successes summed" 2 m.Stats.per_op.(0).Stats.successes;
  Alcotest.(check (float 0.001)) "max is max" 7.
    m.Stats.per_op.(0).Stats.max_latency_ms;
  Alcotest.(check int) "failures" 1 m.Stats.per_op.(1).Stats.failures;
  Alcotest.(check int) "histogram merged" 1 m.Stats.per_op.(0).Stats.histogram.(2);
  Alcotest.(check int) "totals" 3 (Stats.total_attempts m);
  Alcotest.(check int) "total successes" 2 (Stats.total_successes m);
  Alcotest.(check int) "total failures" 1 (Stats.total_failures m)

(* --- A small harness run used by the remaining tests --- *)

let tiny_config =
  {
    B.default_config with
    B.threads = 2;
    max_ops = Some 400;
    workload = W.Read_write;
    scale = P.tiny;
    scale_name = "tiny";
    seed = 9;
    histograms = true;
  }

let result =
  lazy
    (match Sb7_harness.Driver.run ~runtime_name:"coarse" tiny_config with
    | Ok r -> r
    | Error e -> failwith e)

let test_run_result_accessors () =
  let r = Lazy.force result in
  Alcotest.(check bool) "throughput positive" true (RR.throughput r > 0.);
  Alcotest.(check bool) "attempts >= successes" true
    (RR.attempts_throughput r >= RR.throughput r);
  Alcotest.(check bool) "op index found" true (RR.op_index r "T1" <> None);
  Alcotest.(check (option int)) "unknown op" None (RR.op_index r "NOPE");
  Alcotest.(check (float 0.001)) "unknown op latency" 0.
    (RR.max_latency_ms r ~code:"NOPE");
  Alcotest.(check bool) "T1 included when traversals on" true
    (Array.exists
       (fun (o : W.op_desc) -> o.code = "T1")
       r.RR.ops)

let test_per_domain_successes () =
  let r = Lazy.force result in
  Alcotest.(check int) "one entry per worker domain" r.RR.threads
    (Array.length r.RR.per_domain_successes);
  Alcotest.(check int) "per-domain successes partition the total"
    (Stats.total_successes r.RR.stats)
    (Array.fold_left ( + ) 0 r.RR.per_domain_successes);
  (* max/mean is >= 1 by construction, and with every domain on the
     same 400-op budget it cannot exceed the domain count. *)
  let imb = RR.commit_imbalance r in
  Alcotest.(check bool)
    (Printf.sprintf "imbalance %.2f within [1, threads]" imb)
    true
    (imb >= 1.0 && imb <= float_of_int r.RR.threads)

let test_single_domain_imbalance_is_one () =
  let config = { tiny_config with B.threads = 1; max_ops = Some 50 } in
  match Sb7_harness.Driver.run ~runtime_name:"seq" config with
  | Error e -> failwith e
  | Ok r ->
    Alcotest.(check (float 1e-9)) "1 domain -> imbalance 1.0" 1.0
      (RR.commit_imbalance r)

let test_category_totals_sum () =
  let r = Lazy.force result in
  let total =
    List.fold_left
      (fun acc cat ->
        let s, f, _ = RR.category_totals r cat in
        acc + s + f)
      0 Sb7_core.Category.all
  in
  Alcotest.(check int) "categories partition attempts"
    (Stats.total_attempts r.RR.stats)
    total

let test_expected_ratios_form_distribution () =
  let r = Lazy.force result in
  let sum = Array.fold_left ( +. ) 0. r.RR.expected in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 sum

let test_report_renders () =
  let r = Lazy.force result in
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Sb7_harness.Report.print ppf r;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  let contains haystack needle =
    let n = String.length haystack and m = String.length needle in
    let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("report contains " ^ needle) true
        (contains out needle))
    [
      "Benchmark parameters";
      "Detailed results";
      "Sample errors";
      "Summary results";
      "Total throughput";
      "TTC histogram";
      "coarse";
    ]

let test_driver_unknown_runtime () =
  match Sb7_harness.Driver.run ~runtime_name:"nope" tiny_config with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown runtime"

let test_disabling_categories () =
  let config =
    {
      tiny_config with
      B.long_traversals = false;
      structure_mods = false;
      max_ops = Some 100;
    }
  in
  match Sb7_harness.Driver.run ~runtime_name:"seq" { config with B.threads = 1 } with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "no long traversals" false
      (Array.exists
         (fun (o : W.op_desc) ->
           Sb7_core.Category.equal o.category Sb7_core.Category.Long_traversal)
         r.RR.ops);
    Alcotest.(check bool) "no SMs" false
      (Array.exists
         (fun (o : W.op_desc) ->
           Sb7_core.Category.equal o.category
             Sb7_core.Category.Structure_modification)
         r.RR.ops);
    Alcotest.(check int) "45 - 12 - 8 ops remain" 25 (Array.length r.RR.ops)

let test_reduced_set_config () =
  let config =
    {
      tiny_config with
      B.long_traversals = false;
      reduced_ops = true;
      max_ops = Some 50;
      threads = 1;
    }
  in
  match Sb7_harness.Driver.run ~runtime_name:"seq" config with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "OP11 excluded" false
      (Array.exists (fun (o : W.op_desc) -> o.code = "OP11") r.RR.ops);
    Alcotest.(check bool) "ST1 kept" true
      (Array.exists (fun (o : W.op_desc) -> o.code = "ST1") r.RR.ops)

let test_max_ops_budget () =
  let config = { tiny_config with B.threads = 3; max_ops = Some 200 } in
  match Sb7_harness.Driver.run ~runtime_name:"seq" config with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check int) "exactly threads * budget attempts" 600
      (Stats.total_attempts r.RR.stats)

let test_only_op () =
  let config =
    { tiny_config with B.threads = 1; max_ops = Some 50; only_op = Some "OP4" }
  in
  match Sb7_harness.Driver.run ~runtime_name:"seq" config with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check int) "single operation" 1 (Array.length r.RR.ops);
    Alcotest.(check string) "the requested one" "OP4" r.RR.ops.(0).W.code;
    Alcotest.(check int) "all 50 ran" 50 (Stats.total_attempts r.RR.stats)

let test_only_op_unknown () =
  let config = { tiny_config with B.only_op = Some "NOPE"; threads = 1 } in
  match Sb7_harness.Driver.run ~runtime_name:"seq" config with
  | exception Invalid_argument _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown operation"
  | Error _ -> Alcotest.fail "wrong error path"

let test_warmup_runs_and_is_excluded () =
  let config =
    {
      tiny_config with
      B.threads = 2;
      max_ops = None;
      duration_s = 0.15;
      warmup_s = 0.15;
    }
  in
  match Sb7_harness.Driver.run ~runtime_name:"coarse" config with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "measured window produced work" true
      (Stats.total_successes r.RR.stats > 0);
    (* The elapsed time covers only the measured window, not warmup. *)
    Alcotest.(check bool) "elapsed excludes warmup" true (r.RR.elapsed_s < 0.3)

let test_soak_smoke () =
  let report =
    Sb7_harness.Soak.run ~strategies:[ "coarse"; "tl2" ] ~threads:2
      ~ops_per_thread:100 ()
  in
  Alcotest.(check bool) "clean" true report.Sb7_harness.Soak.clean;
  Alcotest.(check int) "6 cycles" 6
    (List.length report.Sb7_harness.Soak.cycles);
  Alcotest.(check int) "operation accounting" 1200
    report.Sb7_harness.Soak.total_operations

let test_single_thread_deterministic () =
  let config = { tiny_config with B.threads = 1; max_ops = Some 300 } in
  let run () =
    match Sb7_harness.Driver.run ~runtime_name:"seq" config with
    | Ok r ->
      (Stats.total_successes r.RR.stats, Stats.total_failures r.RR.stats)
    | Error e -> failwith e
  in
  Alcotest.(check (pair int int)) "same counts per seed" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "stats record" `Quick test_record_success;
    Alcotest.test_case "failures skip latency" `Quick
      test_failures_do_not_affect_latency;
    Alcotest.test_case "histograms" `Quick test_histograms;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "run_result accessors" `Slow test_run_result_accessors;
    Alcotest.test_case "per-domain successes partition" `Slow
      test_per_domain_successes;
    Alcotest.test_case "single-domain imbalance is 1" `Slow
      test_single_domain_imbalance_is_one;
    Alcotest.test_case "category totals partition" `Slow
      test_category_totals_sum;
    Alcotest.test_case "expected ratios distribution" `Slow
      test_expected_ratios_form_distribution;
    Alcotest.test_case "report renders all sections" `Slow test_report_renders;
    Alcotest.test_case "unknown runtime" `Quick test_driver_unknown_runtime;
    Alcotest.test_case "disabling categories" `Slow test_disabling_categories;
    Alcotest.test_case "reduced set" `Slow test_reduced_set_config;
    Alcotest.test_case "max_ops budget" `Slow test_max_ops_budget;
    Alcotest.test_case "only_op isolation" `Slow test_only_op;
    Alcotest.test_case "only_op unknown" `Quick test_only_op_unknown;
    Alcotest.test_case "soak smoke" `Slow test_soak_smoke;
    Alcotest.test_case "warmup excluded from measurement" `Slow
      test_warmup_runs_and_is_excluded;
    Alcotest.test_case "single-thread determinism" `Slow
      test_single_thread_deterministic;
  ]

let () = Alcotest.run "harness" [ ("harness", suite) ]
