(* Tests shared by both STM implementations (TL2 and ASTM), plus
   implementation-specific checks. The shared functor exercises the
   sequential semantics, rollback, nesting, and — across multiple
   domains — lost-update freedom and snapshot consistency. *)

module type STM = Sb7_stm.Stm_intf.S

module Make_stm_tests (Stm : STM) = struct
  let test_read_outside_tx () =
    let tv = Stm.make 41 in
    Alcotest.(check int) "initial value" 41 (Stm.read tv)

  let test_write_outside_tx () =
    let tv = Stm.make 0 in
    Stm.write tv 7;
    Alcotest.(check int) "direct write" 7 (Stm.read tv)

  let test_atomic_returns () =
    Alcotest.(check int) "result" 5 (Stm.atomic (fun () -> 5))

  let test_read_own_write () =
    let tv = Stm.make 1 in
    let seen =
      Stm.atomic (fun () ->
          Stm.write tv 2;
          Stm.read tv)
    in
    Alcotest.(check int) "sees own write" 2 seen;
    Alcotest.(check int) "committed" 2 (Stm.read tv)

  let test_write_twice () =
    let tv = Stm.make 0 in
    Stm.atomic (fun () ->
        Stm.write tv 1;
        Stm.write tv 2);
    Alcotest.(check int) "last write wins" 2 (Stm.read tv)

  let test_multiple_tvars () =
    let a = Stm.make 1 and b = Stm.make 2 in
    Stm.atomic (fun () ->
        let va = Stm.read a in
        Stm.write b (va + 10));
    Alcotest.(check int) "b updated from a" 11 (Stm.read b)

  let test_empty_transaction () =
    Alcotest.(check unit) "commits" () (Stm.atomic (fun () -> ()))

  let test_write_only_transaction () =
    let a = Stm.make 0 and b = Stm.make 0 in
    Stm.atomic (fun () ->
        Stm.write a 1;
        Stm.write b 2);
    Alcotest.(check int) "a" 1 (Stm.read a);
    Alcotest.(check int) "b" 2 (Stm.read b)

  let test_large_write_set () =
    let cells = Array.init 500 Stm.make in
    Stm.atomic (fun () ->
        Array.iteri (fun i tv -> Stm.write tv (i * 3)) cells);
    Array.iteri
      (fun i tv ->
        if Stm.read tv <> i * 3 then Alcotest.failf "cell %d wrong" i)
      cells

  let test_rollback_on_exception () =
    let tv = Stm.make 10 in
    (try
       Stm.atomic (fun () ->
           Stm.write tv 99;
           failwith "abort me")
     with Failure _ -> ());
    Alcotest.(check int) "rolled back" 10 (Stm.read tv)

  let test_exception_propagates () =
    Alcotest.check_raises "user exception escapes" (Failure "boom")
      (fun () -> Stm.atomic (fun () -> failwith "boom"))

  let test_nested_flattens () =
    let tv = Stm.make 0 in
    Stm.atomic (fun () ->
        Stm.write tv 1;
        let inner =
          Stm.atomic (fun () ->
              (* Nested transaction sees the outer's uncommitted write. *)
              Stm.read tv)
        in
        Alcotest.(check int) "inner sees outer write" 1 inner;
        Stm.write tv (inner + 1));
    Alcotest.(check int) "flattened commit" 2 (Stm.read tv)

  let test_in_transaction () =
    Alcotest.(check bool) "outside" false (Stm.in_transaction ());
    Stm.atomic (fun () ->
        Alcotest.(check bool) "inside" true (Stm.in_transaction ()));
    Alcotest.(check bool) "after" false (Stm.in_transaction ())

  let test_stats_counted () =
    Stm.reset_stats ();
    let tv = Stm.make 0 in
    for _ = 1 to 5 do
      Stm.atomic (fun () -> Stm.write tv (Stm.read tv + 1))
    done;
    Stm.atomic (fun () -> ignore (Stm.read tv));
    let s = Stm.stats () in
    Alcotest.(check bool) "commits >= 6" true (s.Sb7_stm.Stm_stats.commits >= 6);
    Alcotest.(check bool) "a read-only commit" true
      (s.Sb7_stm.Stm_stats.read_only_commits >= 1)

  (* Lost-update freedom: concurrent read-modify-write increments. *)
  let test_concurrent_counter () =
    let tv = Stm.make 0 in
    let domains = 4 and iterations = 2_000 in
    let worker () =
      for _ = 1 to iterations do
        Stm.atomic (fun () -> Stm.write tv (Stm.read tv + 1))
      done
    in
    let ds = List.init domains (fun _ -> Domain.spawn worker) in
    List.iter Domain.join ds;
    Alcotest.(check int) "no lost updates" (domains * iterations)
      (Stm.read tv)

  (* Snapshot consistency: transfers preserve a + b; concurrent
     read-only transactions must never observe a broken invariant. *)
  let test_transfer_invariant () =
    let a = Stm.make 500 and b = Stm.make 500 in
    let stop = Atomic.make false in
    let violations = ref 0 in
    let transferer seed () =
      let rng = Sb7_core.Sb_random.create ~seed in
      for _ = 1 to 3_000 do
        let amount = Sb7_core.Sb_random.in_range rng 1 10 in
        Stm.atomic (fun () ->
            Stm.write a (Stm.read a - amount);
            Stm.write b (Stm.read b + amount))
      done
    in
    let observer () =
      let bad = ref 0 in
      while not (Atomic.get stop) do
        let total = Stm.atomic (fun () -> Stm.read a + Stm.read b) in
        if total <> 1000 then incr bad
      done;
      !bad
    in
    let obs = List.init 2 (fun _ -> Domain.spawn observer) in
    let ts = List.init 2 (fun i -> Domain.spawn (transferer (i + 1))) in
    List.iter Domain.join ts;
    Atomic.set stop true;
    List.iter (fun d -> violations := !violations + Domain.join d) obs;
    Alcotest.(check int) "snapshots consistent" 0 !violations;
    Alcotest.(check int) "total conserved" 1000 (Stm.read a + Stm.read b)

  (* Write sets with many tvars commit atomically: permuting an array
     keeps it a permutation. *)
  let test_array_permutation () =
    let n = 32 in
    let cells = Array.init n Stm.make in
    let domains = 3 in
    let worker seed () =
      let rng = Sb7_core.Sb_random.create ~seed in
      for _ = 1 to 1_000 do
        let i = Sb7_core.Sb_random.int rng n
        and j = Sb7_core.Sb_random.int rng n in
        Stm.atomic (fun () ->
            let vi = Stm.read cells.(i) and vj = Stm.read cells.(j) in
            Stm.write cells.(i) vj;
            Stm.write cells.(j) vi)
      done
    in
    let ds = List.init domains (fun i -> Domain.spawn (worker (i + 1))) in
    List.iter Domain.join ds;
    let final = Array.map Stm.read cells in
    Array.sort compare final;
    Alcotest.(check bool) "still a permutation" true
      (final = Array.init n Fun.id)

  let test_aborts_recorded_under_contention () =
    Stm.reset_stats ();
    let tv = Stm.make 0 in
    let ds =
      List.init 4 (fun _ ->
          Domain.spawn (fun () ->
              for _ = 1 to 2_000 do
                Stm.atomic (fun () -> Stm.write tv (Stm.read tv + 1))
              done))
    in
    List.iter Domain.join ds;
    let s = Stm.stats () in
    Alcotest.(check int) "all committed eventually" 8_000 (Stm.read tv);
    Alcotest.(check bool) "commits recorded" true
      (s.Sb7_stm.Stm_stats.commits >= 8_000)

  let suite =
    [
      Alcotest.test_case "read outside tx" `Quick test_read_outside_tx;
      Alcotest.test_case "write outside tx" `Quick test_write_outside_tx;
      Alcotest.test_case "atomic returns" `Quick test_atomic_returns;
      Alcotest.test_case "read own write" `Quick test_read_own_write;
      Alcotest.test_case "last write wins" `Quick test_write_twice;
      Alcotest.test_case "multiple tvars" `Quick test_multiple_tvars;
      Alcotest.test_case "empty transaction" `Quick test_empty_transaction;
      Alcotest.test_case "write-only transaction" `Quick
        test_write_only_transaction;
      Alcotest.test_case "large write set" `Quick test_large_write_set;
      Alcotest.test_case "rollback on exception" `Quick
        test_rollback_on_exception;
      Alcotest.test_case "exception propagates" `Quick
        test_exception_propagates;
      Alcotest.test_case "nested flattens" `Quick test_nested_flattens;
      Alcotest.test_case "in_transaction" `Quick test_in_transaction;
      Alcotest.test_case "stats counted" `Quick test_stats_counted;
      Alcotest.test_case "concurrent counter" `Slow test_concurrent_counter;
      Alcotest.test_case "transfer invariant" `Slow test_transfer_invariant;
      Alcotest.test_case "array permutation" `Slow test_array_permutation;
      Alcotest.test_case "commits under contention" `Slow
        test_aborts_recorded_under_contention;
    ]
end

module Tl2_tests = Make_stm_tests (Sb7_stm.Tl2)
module Astm_tests = Make_stm_tests (Sb7_stm.Astm)
module Lsa_tests = Make_stm_tests (Sb7_stm.Lsa)

(* LSA-specific: snapshot transactions. *)

let test_lsa_snapshot_reads_consistent () =
  let module L = Sb7_stm.Lsa in
  let a = L.make 500 and b = L.make 500 in
  let stop = Atomic.make false in
  let writer () =
    let rng = Sb7_core.Sb_random.create ~seed:3 in
    for _ = 1 to 5_000 do
      let x = Sb7_core.Sb_random.in_range rng 1 10 in
      L.atomic (fun () ->
          L.write a (L.read a - x);
          L.write b (L.read b + x))
    done
  in
  let reader () =
    let bad = ref 0 in
    while not (Atomic.get stop) do
      let total = L.atomic_snapshot (fun () -> L.read a + L.read b) in
      if total <> 1000 then incr bad
    done;
    !bad
  in
  let rs = List.init 2 (fun _ -> Domain.spawn reader) in
  let w = Domain.spawn writer in
  Domain.join w;
  Atomic.set stop true;
  let violations = List.fold_left (fun acc d -> acc + Domain.join d) 0 rs in
  Alcotest.(check int) "snapshots always consistent" 0 violations

let test_lsa_snapshot_write_rejected () =
  let module L = Sb7_stm.Lsa in
  let tv = L.make 0 in
  match L.atomic_snapshot (fun () -> L.write tv 1) with
  | () -> Alcotest.fail "snapshot write accepted"
  | exception Sb7_stm.Stm_intf.Write_in_read_only ->
    Alcotest.(check int) "nothing committed" 0 (L.read tv)

let test_lsa_snapshot_needs_no_validation () =
  let module L = Sb7_stm.Lsa in
  L.reset_stats ();
  let cells = Array.init 200 L.make in
  L.atomic_snapshot (fun () ->
      Array.iter (fun tv -> ignore (L.read tv)) cells);
  let s = L.stats () in
  Alcotest.(check int) "zero validation steps" 0
    s.Sb7_stm.Stm_stats.validation_steps

let test_lsa_snapshot_reads_old_version () =
  let module L = Sb7_stm.Lsa in
  (* A snapshot started before an update still sees the old value even
     after a writer commits — served from the version history. *)
  let tv = L.make 1 in
  let gate_snapshot_started = Atomic.make false in
  let gate_write_done = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        L.atomic_snapshot (fun () ->
            let first = L.read tv in
            Atomic.set gate_snapshot_started true;
            while not (Atomic.get gate_write_done) do
              Domain.cpu_relax ()
            done;
            let second = L.read tv in
            (first, second)))
  in
  while not (Atomic.get gate_snapshot_started) do
    Domain.cpu_relax ()
  done;
  L.atomic (fun () -> L.write tv 2);
  Atomic.set gate_write_done true;
  let first, second = Domain.join reader in
  Alcotest.(check int) "before write" 1 first;
  Alcotest.(check int) "same snapshot after write" 1 second;
  Alcotest.(check int) "writer committed" 2 (L.read tv)

(* History eviction: a snapshot that outlives [history_depth] commits
   to a tvar must retry (Conflict inside atomic_snapshot) and then see
   a consistent, newer snapshot — never a mix. *)
let test_lsa_snapshot_eviction_retries () =
  let module L = Sb7_stm.Lsa in
  let tv = L.make 0 in
  let gate_snapshot_started = Atomic.make false in
  let gate_writes_done = Atomic.make false in
  let runs = Atomic.make 0 in
  let reader =
    Domain.spawn (fun () ->
        L.atomic_snapshot (fun () ->
            Atomic.incr runs;
            let first = L.read tv in
            Atomic.set gate_snapshot_started true;
            while not (Atomic.get gate_writes_done) do
              Domain.cpu_relax ()
            done;
            let second = L.read tv in
            (first, second)))
  in
  while not (Atomic.get gate_snapshot_started) do
    Domain.cpu_relax ()
  done;
  (* Push far more versions than the history keeps. *)
  for i = 1 to 20 do
    L.atomic (fun () -> L.write tv i)
  done;
  Atomic.set gate_writes_done true;
  let first, second = Domain.join reader in
  Alcotest.(check bool) "snapshot retried after eviction" true
    (Atomic.get runs >= 2);
  Alcotest.(check int) "retried snapshot is consistent" first second;
  Alcotest.(check int) "and sees the final value" 20 second

(* The Lsa.write-outside-a-transaction fix: the store must appear as a
   NEW version, so a snapshot opened before it keeps reading the old
   value instead of observing the new one under the old timestamp. *)
let test_lsa_nontx_write_versioned () =
  let module L = Sb7_stm.Lsa in
  let tv = L.make 1 in
  let gate_snapshot_started = Atomic.make false in
  let gate_write_done = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        L.atomic_snapshot (fun () ->
            let first = L.read tv in
            Atomic.set gate_snapshot_started true;
            while not (Atomic.get gate_write_done) do
              Domain.cpu_relax ()
            done;
            let second = L.read tv in
            (first, second)))
  in
  while not (Atomic.get gate_snapshot_started) do
    Domain.cpu_relax ()
  done;
  L.write tv 3 (* non-transactional store *);
  Atomic.set gate_write_done true;
  let first, second = Domain.join reader in
  Alcotest.(check int) "before the store" 1 first;
  Alcotest.(check int) "same snapshot after the store" 1 second;
  Alcotest.(check int) "store visible to fresh reads" 3 (L.read tv)

let lsa_specific_suite =
  [
    Alcotest.test_case "snapshot conservation under writers" `Slow
      test_lsa_snapshot_reads_consistent;
    Alcotest.test_case "snapshot rejects writes" `Quick
      test_lsa_snapshot_write_rejected;
    Alcotest.test_case "snapshot has zero validation" `Quick
      test_lsa_snapshot_needs_no_validation;
    Alcotest.test_case "snapshot serves old versions" `Slow
      test_lsa_snapshot_reads_old_version;
    Alcotest.test_case "snapshot retries on history eviction" `Slow
      test_lsa_snapshot_eviction_retries;
    Alcotest.test_case "non-tx write creates a new version" `Slow
      test_lsa_nontx_write_versioned;
  ]

(* Read-only mode ([atomic_ro]): TL2's zero-log fast path and LSA's
   snapshot mode behind the shared interface. *)

(* A read-only transaction must observe a consistent snapshot while
   writers commit concurrently — same invariant as the LSA snapshot
   conservation test, but through [atomic_ro] (zero-log for TL2). *)
let test_ro_reads_consistent (module S : STM) () =
  let a = S.make 500 and b = S.make 500 in
  let stop = Atomic.make false in
  let writer () =
    let rng = Sb7_core.Sb_random.create ~seed:3 in
    for _ = 1 to 5_000 do
      let x = Sb7_core.Sb_random.in_range rng 1 10 in
      S.atomic (fun () ->
          S.write a (S.read a - x);
          S.write b (S.read b + x))
    done
  in
  let reader () =
    let bad = ref 0 in
    while not (Atomic.get stop) do
      let total = S.atomic_ro (fun () -> S.read a + S.read b) in
      if total <> 1000 then incr bad
    done;
    !bad
  in
  let rs = List.init 2 (fun _ -> Domain.spawn reader) in
  let w = Domain.spawn writer in
  Domain.join w;
  Atomic.set stop true;
  let violations = List.fold_left (fun acc d -> acc + Domain.join d) 0 rs in
  Alcotest.(check int) "ro snapshots always consistent" 0 violations

(* The zero-log contract: an isolated read-only transaction logs
   nothing (no read-set entries, no max_read_set growth), validates
   nothing, and commits through [ro_zero_log_commits]. *)
let test_ro_zero_log (module S : STM) () =
  S.reset_stats ();
  let cells = Array.init 200 S.make in
  let sum =
    S.atomic_ro (fun () ->
        Array.fold_left (fun acc tv -> acc + S.read tv) 0 cells)
  in
  Alcotest.(check int) "reads correct" (199 * 200 / 2) sum;
  let s = S.stats () in
  let open Sb7_stm.Stm_stats in
  Alcotest.(check int) "no read-set entries" 0 s.read_set_entries;
  Alcotest.(check int) "max read set stays 0" 0 s.max_read_set;
  Alcotest.(check int) "no validation" 0 s.validation_steps;
  Alcotest.(check int) "one zero-log commit" 1 s.ro_zero_log_commits;
  Alcotest.(check int) "counted as a commit" 1 s.commits;
  Alcotest.(check int) "counted as read-only" 1 s.read_only_commits

let test_ro_write_raises (module S : STM) () =
  let tv = S.make 0 in
  (match S.atomic_ro (fun () -> S.write tv 1) with
  | () -> Alcotest.fail "write accepted in read-only transaction"
  | exception Sb7_stm.Stm_intf.Write_in_read_only -> ());
  Alcotest.(check int) "nothing committed" 0 (S.read tv);
  Alcotest.(check bool) "transaction context cleaned up" false
    (S.in_transaction ())

(* A nested [atomic] flattens into the enclosing [atomic_ro], so its
   writes raise too — a mis-declared op cannot smuggle updates through
   an inner transaction. *)
let test_ro_nested_atomic_flattens (module S : STM) () =
  let tv = S.make 7 in
  let v = S.atomic_ro (fun () -> S.atomic (fun () -> S.read tv)) in
  Alcotest.(check int) "nested read-only atomic flattens" 7 v;
  (match S.atomic_ro (fun () -> S.atomic (fun () -> S.write tv 9)) with
  | () -> Alcotest.fail "nested write accepted in read-only transaction"
  | exception Sb7_stm.Stm_intf.Write_in_read_only -> ());
  Alcotest.(check int) "nested write did not commit" 7 (S.read tv);
  (* The other nesting direction: [atomic_ro] inside an update
     transaction flattens into it, writes and all. *)
  S.atomic (fun () ->
      S.write tv 8;
      Alcotest.(check int) "ro nested in update sees the write" 8
        (S.atomic_ro (fun () -> S.read tv)));
  Alcotest.(check int) "update committed" 8 (S.read tv)

(* TL2 only: a read that post-dates the snapshot restarts the closure
   at a fresh read version ([ro_inline_revalidations]), not an abort. *)
let test_tl2_ro_inline_revalidation () =
  let module T = Sb7_stm.Tl2 in
  T.reset_stats ();
  let tv1 = T.make 0 and tv2 = T.make 0 in
  let wrote = Atomic.make false in
  let a, b =
    T.atomic_ro (fun () ->
        let a = T.read tv1 in
        if not (Atomic.get wrote) then begin
          (* Commit a write from another domain mid-transaction: tv2's
             version now post-dates our snapshot, forcing a restart. *)
          Domain.join
            (Domain.spawn (fun () -> T.atomic (fun () -> T.write tv2 1)));
          Atomic.set wrote true
        end;
        (a, T.read tv2))
  in
  Alcotest.(check (pair int int)) "re-run sees a consistent view" (0, 1) (a, b);
  let s = T.stats () in
  let open Sb7_stm.Stm_stats in
  Alcotest.(check bool)
    (Printf.sprintf "inline revalidation recorded (got %d)"
       s.ro_inline_revalidations)
    true
    (s.ro_inline_revalidations >= 1);
  Alcotest.(check int) "not counted as an abort" 0 s.aborts;
  Alcotest.(check int) "single ro commit" 1 s.ro_zero_log_commits

(* ASTM's pass-through: no read-only fast path, so a write inside
   [atomic_ro] simply commits (and nothing is ever demoted). *)
let test_astm_ro_passthrough () =
  let module A = Sb7_stm.Astm in
  A.reset_stats ();
  let tv = A.make 0 in
  A.atomic_ro (fun () -> A.write tv 5);
  Alcotest.(check int) "write committed through the pass-through" 5 (A.read tv);
  let s = A.stats () in
  Alcotest.(check int) "no zero-log commits for astm" 0
    s.Sb7_stm.Stm_stats.ro_zero_log_commits

let ro_suite =
  [
    Alcotest.test_case "tl2 ro conservation under writers" `Slow
      (test_ro_reads_consistent (module Sb7_stm.Tl2));
    Alcotest.test_case "lsa ro conservation under writers" `Slow
      (test_ro_reads_consistent (module Sb7_stm.Lsa));
    Alcotest.test_case "tl2 ro is zero-log" `Quick
      (test_ro_zero_log (module Sb7_stm.Tl2));
    Alcotest.test_case "lsa ro is zero-log" `Quick
      (test_ro_zero_log (module Sb7_stm.Lsa));
    Alcotest.test_case "tl2 ro write raises" `Quick
      (test_ro_write_raises (module Sb7_stm.Tl2));
    Alcotest.test_case "lsa ro write raises" `Quick
      (test_ro_write_raises (module Sb7_stm.Lsa));
    Alcotest.test_case "tl2 ro nesting flattens" `Quick
      (test_ro_nested_atomic_flattens (module Sb7_stm.Tl2));
    Alcotest.test_case "lsa ro nesting flattens" `Quick
      (test_ro_nested_atomic_flattens (module Sb7_stm.Lsa));
    Alcotest.test_case "tl2 ro inline revalidation" `Slow
      test_tl2_ro_inline_revalidation;
    Alcotest.test_case "astm ro is a pass-through" `Quick
      test_astm_ro_passthrough;
  ]

(* ASTM-specific: the quadratic validation accounting and the policy
   switch. *)

let test_astm_validation_quadratic () =
  let module A = Sb7_stm.Astm in
  A.reset_stats ();
  let n = 100 in
  let cells = Array.init n A.make in
  A.atomic (fun () -> Array.iter (fun tv -> ignore (A.read tv)) cells);
  let s = A.stats () in
  (* Opening k objects validates ~k^2/2 read entries in total. *)
  let expected = n * (n - 1) / 2 in
  Alcotest.(check bool)
    (Printf.sprintf "validation steps ~ %d (got %d)" expected
       s.Sb7_stm.Stm_stats.validation_steps)
    true
    (s.Sb7_stm.Stm_stats.validation_steps >= expected)

let test_tl2_validation_linear () =
  let module T = Sb7_stm.Tl2 in
  T.reset_stats ();
  let n = 100 in
  let cells = Array.init n T.make in
  (* A read-only transaction validates nothing at commit under TL2. *)
  T.atomic (fun () -> Array.iter (fun tv -> ignore (T.read tv)) cells);
  let s = T.stats () in
  Alcotest.(check int) "no validation for read-only tx" 0
    s.Sb7_stm.Stm_stats.validation_steps

let test_astm_policies_all_work () =
  let module A = Sb7_stm.Astm in
  let original = A.get_policy () in
  List.iter
    (fun policy ->
      A.set_policy policy;
      let tv = A.make 0 in
      let ds =
        List.init 3 (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to 500 do
                  A.atomic (fun () -> A.write tv (A.read tv + 1))
                done))
      in
      List.iter Domain.join ds;
      Alcotest.(check int)
        (Printf.sprintf "policy %s loses no update"
           (Sb7_stm.Contention.policy_to_string policy))
        1_500 (A.read tv))
    Sb7_stm.Contention.all_policies;
  A.set_policy original

let test_max_read_set_tracked () =
  let module T = Sb7_stm.Tl2 in
  T.reset_stats ();
  let cells = Array.init 50 T.make in
  T.atomic (fun () -> Array.iter (fun tv -> ignore (T.read tv)) cells);
  let s = T.stats () in
  Alcotest.(check bool) "max read set >= 50" true
    (s.Sb7_stm.Stm_stats.max_read_set >= 50)

(* Read-set dedup: re-reading a logged tvar pushes no duplicate entry,
   so both the logged-entry count and commit-time validation scale with
   DISTINCT tvars, not raw reads. Shared by TL2 and LSA update mode. *)
let test_dedup_no_duplicate_entries (module S : STM) () =
  S.reset_stats ();
  let cells = Array.init 5 S.make in
  let sink = S.make 0 in
  S.atomic (fun () ->
      (* An update transaction (one write) that re-reads heavily. *)
      S.write sink 1;
      for _ = 1 to 100 do
        Array.iter (fun tv -> ignore (S.read tv)) cells
      done);
  let s = S.stats () in
  let open Sb7_stm.Stm_stats in
  Alcotest.(check bool)
    (Printf.sprintf "entries bounded by distinct tvars (got %d)"
       s.read_set_entries)
    true (s.read_set_entries <= 5);
  Alcotest.(check bool)
    (Printf.sprintf "dedup hits recorded (got %d)" s.dedup_hits)
    true
    (s.dedup_hits >= 495);
  Alcotest.(check bool)
    (Printf.sprintf "validation O(distinct) at commit (got %d)"
       s.validation_steps)
    true
    (s.validation_steps <= 5)

(* Bloom filter: with one buffered write, reads of never-written tvars
   skip the write-set hash probe — and read-own-write still works. *)
let test_bloom_skips_and_correctness (module S : STM) () =
  S.reset_stats ();
  let cells = Array.init 50 S.make in
  let written = S.make 0 in
  let seen =
    S.atomic (fun () ->
        S.write written 42;
        Array.iter (fun tv -> ignore (S.read tv)) cells;
        S.read written)
  in
  Alcotest.(check int) "reads own buffered write through the bloom" 42 seen;
  let s = S.stats () in
  Alcotest.(check bool)
    (Printf.sprintf "most probes skipped (got %d)"
       s.Sb7_stm.Stm_stats.bloom_skips)
    true
    (s.Sb7_stm.Stm_stats.bloom_skips >= 40)

(* The new counters flow through the generic assoc export (the harness
   reads them from there into reports and CSV). *)
let test_counters_exported () =
  let module T = Sb7_stm.Tl2 in
  let assoc = Sb7_stm.Stm_stats.to_assoc (T.stats ()) in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " exported") true (List.mem_assoc key assoc))
    [
      "read_set_entries";
      "dedup_hits";
      "bloom_skips";
      "extensions";
      "clock_reuses";
      "ro_zero_log_commits";
      "ro_inline_revalidations";
      "ro_demotions";
      "descriptor_pool_hits";
      "descriptor_pool_misses";
    ]

(* Descriptor pooling: domains that exit donate their descriptor to
   the substrate's free pool, later domains adopt it (pool hits),
   concurrent adopters never share one (the shared counter's total
   stays exact — aliased descriptors would corrupt it), and the toggle
   forces fresh allocation (misses only, nothing donated). *)
let test_pool_recycling (module S : STM) () =
  S.reset_stats ();
  let tv = S.make 0 in
  let incr_n n () =
    for _ = 1 to n do
      S.atomic (fun () -> S.write tv (S.read tv + 1))
    done
  in
  (* Wave 1: two domains run and exit, leaving (at least) two
     descriptors in the pool. *)
  let ds = List.init 2 (fun _ -> Domain.spawn (incr_n 100)) in
  List.iter Domain.join ds;
  let s1 = S.stats () in
  (* Wave 2: two fresh domains must adopt donated descriptors, and run
     concurrently without losing updates. *)
  let ds = List.init 2 (fun _ -> Domain.spawn (incr_n 500)) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost updates on recycled descriptors" 1200
    (S.read tv);
  let s2 = S.stats () in
  let open Sb7_stm.Stm_stats in
  Alcotest.(check bool)
    (Printf.sprintf "wave-2 domains adopted pooled descriptors (%d -> %d)"
       s1.descriptor_pool_hits s2.descriptor_pool_hits)
    true
    (s2.descriptor_pool_hits >= s1.descriptor_pool_hits + 2);
  (* Toggle off: a third wave allocates fresh and donates nothing. *)
  Sb7_stm.Stm_intf.descriptor_pooling_enabled := false;
  let ds = List.init 2 (fun _ -> Domain.spawn (incr_n 10)) in
  List.iter Domain.join ds;
  Sb7_stm.Stm_intf.descriptor_pooling_enabled := true;
  let s3 = S.stats () in
  Alcotest.(check int) "toggle off: no new hits" s2.descriptor_pool_hits
    s3.descriptor_pool_hits;
  Alcotest.(check bool) "toggle off: fresh descriptors counted as misses"
    true
    (s3.descriptor_pool_misses >= s2.descriptor_pool_misses + 2);
  Alcotest.(check int) "toggle off: still no lost updates" 1220 (S.read tv)

let specific_suite =
  [
    Alcotest.test_case "astm validation is quadratic" `Quick
      test_astm_validation_quadratic;
    Alcotest.test_case "tl2 read-only validation is free" `Quick
      test_tl2_validation_linear;
    Alcotest.test_case "astm works under every policy" `Slow
      test_astm_policies_all_work;
    Alcotest.test_case "tl2 tracks max read set" `Quick
      test_max_read_set_tracked;
    Alcotest.test_case "tl2 read-set dedup" `Quick
      (test_dedup_no_duplicate_entries (module Sb7_stm.Tl2));
    Alcotest.test_case "lsa read-set dedup" `Quick
      (test_dedup_no_duplicate_entries (module Sb7_stm.Lsa));
    Alcotest.test_case "tl2 bloom-filtered write-set lookup" `Quick
      (test_bloom_skips_and_correctness (module Sb7_stm.Tl2));
    Alcotest.test_case "lsa bloom-filtered write-set lookup" `Quick
      (test_bloom_skips_and_correctness (module Sb7_stm.Lsa));
    Alcotest.test_case "new counters exported" `Quick test_counters_exported;
    Alcotest.test_case "tl2 descriptor pool recycling" `Slow
      (test_pool_recycling (module Sb7_stm.Tl2));
    Alcotest.test_case "lsa descriptor pool recycling" `Slow
      (test_pool_recycling (module Sb7_stm.Lsa));
    Alcotest.test_case "norec descriptor pool recycling" `Slow
      (test_pool_recycling (module Sb7_stm.Norec));
    Alcotest.test_case "etl descriptor pool recycling" `Slow
      (test_pool_recycling (module Sb7_stm.Etl));
  ]

let () =
  Alcotest.run "stm"
    [
      ("tl2", Tl2_tests.suite);
      ("astm", Astm_tests.suite);
      ("lsa", Lsa_tests.suite);
      ("lsa-snapshot", lsa_specific_suite);
      ("ro", ro_suite);
      ("specific", specific_suite);
    ]
