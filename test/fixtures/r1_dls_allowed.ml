(* Same Domain.DLS use as r1_dls.ml, but this unit is on the
   r1_dls_allowed_units allowlist — no findings. *)

let slot : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let current () = Domain.DLS.get slot

let remember v = Domain.DLS.set slot v
