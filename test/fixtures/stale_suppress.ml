(* Stale-suppression fixture: a clean module carrying a suppression
   that matches no finding. The engine must report it even though the
   file produces zero findings (the table is preloaded per scanned
   unit, not only on the finding-driven path), and sb7-lint
   --strict-local must turn it into a non-zero exit. *)

(* sb7-lint: allow raw-mut -- fixture: deliberately stale, the
   mutation it once excused is gone *)
let pure x = x + 1

(* sb7-lint: allow domain-escape -- fixture: deliberately stale, the
   escaping spawn it once excused is gone *)
let still_pure x = x * 2
