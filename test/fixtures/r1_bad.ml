(* Deliberate R1 (runtime-bypass) violations. *)

(* Module-level mutable cell: shared by every thread. *)
let hits = ref 0

let bump () = hits := !hits + 1

(* Mutation of a caller-supplied array: not provably transaction-local. *)
let set_first (a : int array) = a.(0) <- 1

type cell = { mutable value : int }

(* Mutable field set on a non-local record. *)
let poke (c : cell) = c.value <- 3

(* Atomic is forbidden outright in R1 scope. *)
let shared_counter = Atomic.make 0
