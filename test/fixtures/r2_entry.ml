(* R2 seed module: stands in for the operation registry. Effect-free
   itself, but reaches R2_bad through the module-reference graph. *)

let run n = R2_bad.log (n + 1)
