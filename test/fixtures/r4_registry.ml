(* R4 fixture registry: registers the r4_helpers operations through
   profiled builders mirroring lib/core/operation.ml. "RO2" and "RO3"
   declare read-only (no ~writes) but their run functions write — the
   two expected profile-honesty findings. *)

type op = {
  code : string;
  writes : string list option;
  structural : bool;
  run : unit -> int;
}

module Make (R : R4_helpers.R_sig) = struct
  module H = R4_helpers.Make (R)

  let op code ?reads ?writes run =
    ignore reads;
    { code; writes; structural = false; run }

  let structure code run = { code; writes = None; structural = true; run }

  let all =
    [
      op "RO1" ~reads:[ "cell" ] H.honest_reader;
      op "RO2" H.liar;
      op "RO3" H.index_liar;
      op "UP1" ~writes:[ "cell" ] H.writer;
      structure "SM1" H.structural_write;
    ]
end
