(* R6 fixture: atomic blocks leaking state that must not outlive them.
   A miniature runtime signature mirrors lib/core's functor parameter
   so the sink and atomic identifiers print as "R.write"/"R.atomic".
   Four tvar-escape findings are expected:
   stash_closure, stash_named, leak_local, leak_to_outer. *)

type 'a tvar = { mutable v : 'a }

module type R_sig = sig
  val make : 'a -> 'a tvar
  val read : 'a tvar -> 'a
  val write : 'a tvar -> 'a -> unit
  val atomic : (unit -> 'a) -> 'a
end

module Make (R : R_sig) = struct
  let cell = R.make 0
  let thunk = R.make (fun () -> 0)
  let outer_hook = ref (fun () -> 0)

  (* 1. An inline closure capturing a transactional read, written to a
     tvar: after an abort it replays a snapshot that never committed. *)
  let stash_closure () =
    R.atomic (fun () ->
        let snapshot = R.read cell in
        R.write thunk (fun () -> snapshot))

  (* 2. Same escape through a let-bound closure. *)
  let stash_named () =
    R.atomic (fun () ->
        let n = R.read cell in
        let k () = n + 1 in
        R.write thunk k)

  (* 3. Transaction-local mutable state written to a tvar: retries
     would share the one ref cell. (The [acc := ...] inside is NOT a
     finding — the target is atomic-local and dies with the attempt.) *)
  let shared = R.make (ref 0)

  let leak_local () =
    R.atomic (fun () ->
        let acc = ref 0 in
        acc := R.read cell;
        R.write shared acc)

  (* 4. A capturing closure stored into a cell defined outside the
     atomic scope. *)
  let leak_to_outer () =
    R.atomic (fun () ->
        let n = R.read cell in
        outer_hook := fun () -> n)
end
