(* Deliberate R3 (lock-discipline) violations, plus two clean functions
   that must not be flagged. The test config declares lock_a as class
   "alpha", lock_b as class "beta", order [alpha < beta]. *)

module Rwlock = Sb7_rwlock.Rwlock

let lock_a = Rwlock.create ~name:"a" ()
let lock_b = Rwlock.create ~name:"b" ()

(* Violates the declared order (beta before alpha) and releases only on
   the normal path. *)
let wrong_order f =
  Rwlock.acquire_write lock_b;
  Rwlock.acquire_read lock_a;
  let r = f () in
  Rwlock.release_read lock_a;
  Rwlock.release_write lock_b;
  r

(* Never releases at all. *)
let leak f =
  Rwlock.acquire_read lock_a;
  f ()

(* Acquires a lock absent from the declared lock-order table. *)
let undeclared = Rwlock.create ~name:"x" ()

let use_undeclared () = Rwlock.acquire_read undeclared

(* Clean: released on both the normal and the exceptional path. *)
let ok f =
  Rwlock.acquire_read lock_a;
  match f () with
  | r ->
    Rwlock.release_read lock_a;
    r
  | exception e ->
    Rwlock.release_read lock_a;
    raise e

(* Clean: Fun.protect ~finally covers both paths. *)
let ok_protect f =
  Rwlock.acquire_write lock_b;
  Fun.protect ~finally:(fun () -> Rwlock.release_write lock_b) f
