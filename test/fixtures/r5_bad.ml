(* R5 fixture: Obj.* at unsanctioned sites. Expected findings: exactly
   three obj-use errors — [smuggle] (magic), [inspect] (repr + tag). *)

type boxed = { value : int }

(* One finding: Obj.magic in a binding not on the allowlist. *)
let smuggle (x : boxed) : int array = Obj.magic x

(* Two findings: Obj.repr and Obj.tag, same unsanctioned binding. *)
let inspect (x : boxed) = Obj.tag (Obj.repr x)

let use () = ignore (smuggle { value = 1 }); ignore (inspect { value = 2 })
