(* R7 suppression fixture: a real domain-escape waived by an in-source
   suppression comment with a justification. *)

let counter = ref 0

let bump () =
  let d =
    Domain.spawn (fun () ->
        (* sb7-lint: allow domain-escape -- fixture: deliberate benign race *)
        counter := 1)
  in
  Domain.join d
