(* R7 clean fixture: module-level mutable state that is initialized
   once and never written afterwards is pre-spawn-frozen — concurrent
   reads from spawned domains are safe. *)

let table = Array.init 8 (fun i -> i * i)

let sum_in_domain () =
  let d = Domain.spawn (fun () -> table.(0) + table.(7)) in
  Domain.join d
