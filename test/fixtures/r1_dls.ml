(* Deliberate raw-dls violations: Domain.DLS use outside the
   allowlisted sharding modules. All three identifier occurrences
   (new_key, get, set) must fire. *)

let slot : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let current () = Domain.DLS.get slot

let remember v = Domain.DLS.set slot v
