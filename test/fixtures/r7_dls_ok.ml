(* R7 clean fixture: state reached through Domain.DLS is per-domain by
   construction; mutating it from a spawned closure is confined. *)

let slot = Domain.DLS.new_key (fun () -> ref 0)

let bump_in_domain () =
  let d =
    Domain.spawn (fun () ->
        let r = Domain.DLS.get slot in
        r := !r + 1;
        !r)
  in
  Domain.join d
