(* R6 fixture, clean side: every pattern here is legitimate and must
   produce zero tvar-escape findings. *)

module Make (R : R6_bad.R_sig) = struct
  let cell = R.make 0
  let thunk = R.make (fun () -> 0)

  (* A constant closure captures nothing from the atomic scope: it can
     carry no stale transactional state. *)
  let store_constant () = R.atomic (fun () -> R.write thunk (fun () -> 42))

  (* Local mutable scratch used and dropped inside the block; only its
     immutable contents are committed. *)
  let local_scratch () =
    R.atomic (fun () ->
        let acc = ref 0 in
        acc := R.read cell;
        R.write cell !acc;
        !acc)

  (* A capturing lambda that is consumed during the attempt (iteration
     argument), never stored. *)
  let iterate () =
    R.atomic (fun () ->
        let n = R.read cell in
        List.iter (fun i -> R.write cell (i + n)) [ 1; 2; 3 ])

  (* Sinks outside any atomic block are out of scope for R6. *)
  let outside () = R.write thunk (fun () -> 1)
end
