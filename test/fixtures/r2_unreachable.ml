(* Performs I/O but is referenced by no seed module: reachability must
   keep R2 from firing here. *)

let shout () = print_endline "nobody calls me from an operation body"
