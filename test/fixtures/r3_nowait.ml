(* R3 no-wait / dynamic-2PL violations. The test config declares
   [lock_deferred] as a deferred acquire that must raise [Retry] on
   contention, [unlock_all] (which does not exist) as the bulk release,
   and forbids blocking primitives in this module. *)

exception Retry

type t = {
  lock : int Atomic.t;
  guard : Mutex.t;
}

let try_lock t = Atomic.compare_and_set t.lock 0 1

(* Must raise Retry when try_lock fails; silently returning is the
   violation (the operation would proceed without the lock). *)
let lock_deferred t = if try_lock t then () else ()

(* Blocking acquisition in a module declared no-wait. *)
let blockingly t = Mutex.lock t.guard

let _ = ignore Retry
