(* Deliberate R2 (irrevocable-effect) violations, reachable from the
   seed module R2_entry. *)

let log n = Printf.printf "op ran: %d\n" n

let roll () = Random.int 6

let now () = Unix.gettimeofday ()
