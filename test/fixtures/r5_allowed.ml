(* R5 fixture: the sanctioned-binding granularity. [cast_ref] is on the
   fixture allowlist (including its nested let), so only [off_list]'s
   use fires: expected findings, exactly one obj-use error. *)

(* Sanctioned binding: covered, including the nested helper. *)
let cast_ref (r : int ref) : float ref =
  let through_repr x = Obj.obj (Obj.repr x) in
  through_repr r

(* Same primitive, sibling binding not on the allowlist: one finding. *)
let off_list (r : int ref) : float ref = Obj.magic r

let use () = ignore (cast_ref (ref 1)); ignore (off_list (ref 2))
