(* R7 clean fixture: shared mutable state accessed only with a mutex
   held is lock-guarded — both the explicit lock/unlock bracket and the
   [Mutex.protect] combinator must be recognized. *)

let m = Mutex.create ()
let counter = ref 0

let bump_locked () =
  let d =
    Domain.spawn (fun () ->
        Mutex.lock m;
        counter := !counter + 1;
        Mutex.unlock m)
  in
  Domain.join d;
  Mutex.protect m (fun () -> !counter)
