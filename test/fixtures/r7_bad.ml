(* R7 violation fixture: three distinct domain-escape shapes.

   1. a captured local counter mutated inside a spawned closure;
   2. a mutable field read inside a spawned closure;
   3. a mutable field written by the parent after the spawn, while the
      child may still be reading it (publication race). *)

let spawn_unguarded_counter () =
  let counter = ref 0 in
  let d = Domain.spawn (fun () -> incr counter) in
  Domain.join d;
  !counter

type cell = { mutable payload : int }

let publish_after_spawn () =
  let c = { payload = 0 } in
  let d = Domain.spawn (fun () -> c.payload) in
  c.payload <- 42;
  let r = Domain.join d in
  r + c.payload
