(* A clean module: all mutable state is provably transaction-local
   (created inside the function), so R1 reports nothing. *)

let sum_squares n =
  let total = ref 0 in
  for i = 1 to n do
    total := !total + (i * i)
  done;
  !total

let distinct xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let reversed_copy arr =
  let copy = Array.copy arr in
  let n = Array.length copy in
  for i = 0 to (n / 2) - 1 do
    let tmp = copy.(i) in
    copy.(i) <- copy.(n - 1 - i);
    copy.(n - 1 - i) <- tmp
  done;
  copy
