(* The same violations as r1_bad, but annotated: the findings must land
   in the suppressed list, not the error list. *)

(* sb7-lint: allow raw-mut-global -- fixture: exercising suppression *)
let annotated_cell = ref 0

let read_param (r : int ref) =
  (* sb7-lint: allow raw-mut -- fixture: exercising suppression *)
  !r
