(* R4 fixture: a miniature sync-free core. Operations live inside a
   functor over a runtime signature, exactly like lib/core; some only
   read, some write directly, some write transitively, one mutates a
   first-class index record. The registry fixture (r4_registry.ml)
   registers them with honest and lying profiles. *)

type 'a tvar = { mutable v : 'a }

module type R_sig = sig
  val make : 'a -> 'a tvar
  val read : 'a tvar -> 'a
  val write : 'a tvar -> 'a -> unit
end

(* First-class index, like Index_intf.t: [put] is a mutator field. *)
type ('k, 'v) index = {
  get : 'k -> 'v option;
  put : 'k -> 'v -> unit;
}

module Make (R : R_sig) = struct
  let cell = R.make 0
  let idx : (int, int) index = { get = (fun _ -> None); put = (fun _ _ -> ()) }

  (* Genuinely read-only. *)
  let honest_reader () = R.read cell

  (* A writer two calls deep: liar -> deep_write -> R.write. *)
  let deep_write v = R.write cell v
  let liar () =
    deep_write 1;
    R.read cell

  (* Mutates the index record — also a write, through a field. *)
  let index_liar () =
    idx.put 1 2;
    R.read cell

  (* Honestly-declared writers. *)
  let writer () =
    R.write cell 42;
    R.read cell

  let structural_write () =
    deep_write 7;
    R.read cell
end
