(* Tests for the sb7-lint static analysis (lib/analysis): each rule
   family must fire on its violation fixture, honor suppression
   comments, and stay silent on the clean modules. The fixtures are
   compiled as the [lint_fixtures] sub-library so their .cmt typed ASTs
   exist; the engine is pointed at them with a fixture-specific
   configuration. *)

open Sb7_analysis

let fixture_config : Lint_config.t =
  {
    r1 =
      {
        r1_prefixes = [ "Lint_fixtures__R1" ];
        r1_exempt_units = [];
        r1_dls_prefixes = [ "Lint_fixtures__R1" ];
        r1_dls_allowed_units = [ "Lint_fixtures__R1_dls_allowed" ];
      };
    r2 =
      {
        r2_seeds = [ "Lint_fixtures__R2_entry" ];
        r2_universe_prefixes = [ "Lint_fixtures__R2" ];
      };
    r3 =
      [
        {
          r3_unit = "Lint_fixtures__R3_bad";
          r3_classes = [ ("lock_a", "alpha"); ("lock_b", "beta") ];
          r3_acquire_helpers = [];
          r3_release_helpers = [];
          r3_order = [ "alpha"; "beta" ];
          r3_deferred_acquires = [];
          r3_bulk_release = [];
          r3_must_restart = [];
          r3_forbid_blocking = false;
        };
        {
          r3_unit = "Lint_fixtures__R3_nowait";
          r3_classes = [];
          r3_acquire_helpers = [];
          r3_release_helpers = [];
          r3_order = [];
          r3_deferred_acquires = [ "lock_deferred" ];
          r3_bulk_release = [ "unlock_all" ];
          r3_must_restart = [ ("lock_deferred", "Retry") ];
          r3_forbid_blocking = true;
        };
      ];
    r4 =
      {
        r4_registry_units = [ "Lint_fixtures__R4_registry" ];
        r4_ro_codes = [];
        r4_profiled_builders = [ "op" ];
        r4_structural_builders = [ "structure" ];
        r4_universe_prefixes = [ "Lint_fixtures__R4" ];
        r4_write_idents = [ "R.write" ];
        r4_write_fields = [ "put" ];
      };
    r5 =
      {
        r5_prefixes = [ "Lint_fixtures__R5" ];
        r5_allowed = [ ("Lint_fixtures__R5_allowed", Some "cast_ref") ];
      };
    r6 =
      {
        r6_prefixes = [ "Lint_fixtures__R6" ];
        r6_atomic_idents = [ "R.atomic" ];
        r6_sinks = [ ("R.write", 1, None); ("Stdlib.:=", 1, Some 0) ];
      };
    r7 =
      {
        r7_prefixes = [ "Lint_fixtures__R7" ];
        r7_roots = [];
        r7_confined_types = [];
        r7_tvar_types = [];
        r7_allowed = [];
      };
    strict_local = false;
  }

(* Tests run from _build/default/test; the fixture .cmts are under the
   sub-library's .objs dir and record sources relative to the project
   root. *)
let fixture_cmts = "fixtures/.lint_fixtures.objs/byte"

let run ?(strict_local = false) () =
  let config = { fixture_config with Lint_config.strict_local } in
  Lint_engine.run ~config ~source_root:".." ~paths:[ fixture_cmts ] ()

let result = lazy (run ())

let in_file name (f : Lint_finding.t) = Filename.basename f.file = name

let count ~rule ~file findings =
  List.length
    (List.filter (fun f -> f.Lint_finding.rule = rule && in_file file f) findings)

let check_count ~rule ~file expected =
  let r = Lazy.force result in
  Alcotest.(check int)
    (Printf.sprintf "%s findings in %s" rule file)
    expected
    (count ~rule ~file r.Lint_engine.findings)

let test_units_loaded () =
  let r = Lazy.force result in
  Alcotest.(check bool)
    "fixture units loaded" true
    (List.mem "Lint_fixtures__R1_bad" r.Lint_engine.units_checked)

let test_r1_fires () =
  check_count ~rule:"raw-mut-global" ~file:"r1_bad.ml" 1;
  (* set_first (param array), poke (param mutable field), Atomic. *)
  check_count ~rule:"raw-mut" ~file:"r1_bad.ml" 3

let test_r1_clean_module () =
  let r = Lazy.force result in
  Alcotest.(check int)
    "no findings in r1_ok.ml" 0
    (List.length
       (List.filter (in_file "r1_ok.ml") r.Lint_engine.findings))

let test_r1_suppression () =
  let r = Lazy.force result in
  Alcotest.(check int)
    "no unsuppressed findings in r1_suppressed.ml" 0
    (List.length
       (List.filter (in_file "r1_suppressed.ml") r.Lint_engine.findings));
  Alcotest.(check int)
    "both violations suppressed" 2
    (List.length
       (List.filter (in_file "r1_suppressed.ml") r.Lint_engine.suppressed))

let test_r1_dls_fires () =
  (* new_key, get and set each fire once. *)
  check_count ~rule:"raw-dls" ~file:"r1_dls.ml" 3;
  (* ... and nothing else does: DLS use alone is not raw-mut. *)
  let r = Lazy.force result in
  Alcotest.(check int)
    "only raw-dls findings in r1_dls.ml" 3
    (List.length (List.filter (in_file "r1_dls.ml") r.Lint_engine.findings))

let test_r1_dls_allowlist () =
  let r = Lazy.force result in
  Alcotest.(check int)
    "allowlisted DLS unit is clean" 0
    (List.length
       (List.filter (in_file "r1_dls_allowed.ml") r.Lint_engine.findings))

let test_r2_fires () =
  (* Printf.printf, Random.int, Unix.gettimeofday. *)
  check_count ~rule:"irrevocable" ~file:"r2_bad.ml" 3

let test_r2_reachability () =
  let r = Lazy.force result in
  Alcotest.(check int)
    "effects in an unreachable module do not fire" 0
    (List.length
       (List.filter (in_file "r2_unreachable.ml") r.Lint_engine.findings));
  Alcotest.(check int)
    "the effect-free seed module is clean" 0
    (List.length
       (List.filter (in_file "r2_entry.ml") r.Lint_engine.findings))

let test_r3_order () = check_count ~rule:"lock-order" ~file:"r3_bad.ml" 1

let test_r3_release () =
  (* wrong_order: alpha and beta unreleased on the exceptional path;
     leak: alpha never released. The clean ok/ok_protect functions
     must contribute nothing. *)
  check_count ~rule:"lock-release" ~file:"r3_bad.ml" 3

let test_r3_lock_table () =
  check_count ~rule:"lock-table" ~file:"r3_bad.ml" 1

let test_r3_nowait () =
  let r = Lazy.force result in
  (* lock_deferred missing [raise Retry], plus the blocking Mutex.lock. *)
  check_count ~rule:"lock-wait" ~file:"r3_nowait.ml" 2;
  (* Deferred acquires with no bulk release on both paths: module-level
     finding (reported against the unit, line 0). *)
  Alcotest.(check int)
    "missing bulk release" 1
    (List.length
       (List.filter
          (fun (f : Lint_finding.t) ->
            f.rule = "lock-release"
            && f.unit_name = "Lint_fixtures__R3_nowait")
          r.Lint_engine.findings))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let test_r4_fires () =
  (* RO2 (transitive R.write through deep_write) and RO3 (index .put). *)
  check_count ~rule:"profile-honesty" ~file:"r4_registry.ml" 2

let test_r4_findings_name_the_witness () =
  let r = Lazy.force result in
  let msgs =
    List.filter_map
      (fun (f : Lint_finding.t) ->
        if f.rule = "profile-honesty" then Some f.message else None)
      r.Lint_engine.findings
  in
  Alcotest.(check bool)
    "RO2 finding names the transitive write" true
    (List.exists
       (fun m ->
         contains ~sub:"\"RO2\"" m && contains ~sub:"deep_write" m)
       msgs);
  Alcotest.(check bool)
    "RO3 finding names the index mutation" true
    (List.exists
       (fun m ->
         contains ~sub:"\"RO3\"" m && contains ~sub:".put" m)
       msgs)

let test_r4_honest_ops_clean () =
  let r = Lazy.force result in
  (* Exactly the two liars: honest RO1, declared writer UP1 and the
     structural SM1 contribute nothing, nor does the helpers unit. *)
  Alcotest.(check int)
    "no profile-honesty findings outside the registry" 2
    (List.length
       (List.filter
          (fun (f : Lint_finding.t) -> f.rule = "profile-honesty")
          r.Lint_engine.findings));
  Alcotest.(check int)
    "helpers unit itself is clean" 0
    (List.length
       (List.filter (in_file "r4_helpers.ml") r.Lint_engine.findings))

let test_stale_suppression_reported () =
  let r = Lazy.force result in
  (* The clean stale_suppress.ml unit produces no findings, so its
     suppression table is only consulted through the per-unit preload;
     the deliberately stale entry must still surface. *)
  Alcotest.(check bool)
    "stale suppression in a finding-free file is reported" true
    (List.exists
       (fun (file, _, rule) ->
         Filename.basename file = "stale_suppress.ml" && rule = "raw-mut")
       r.Lint_engine.stale_suppressions);
  Alcotest.(check bool)
    "used suppressions are not stale" true
    (List.for_all
       (fun (file, _, _) -> Filename.basename file <> "r1_suppressed.ml")
       r.Lint_engine.stale_suppressions)

let test_r6_fires () =
  (* stash_closure, stash_named, leak_local, leak_to_outer. *)
  check_count ~rule:"tvar-escape" ~file:"r6_bad.ml" 4

let test_r6_findings_name_the_capture () =
  let r = Lazy.force result in
  let msgs =
    List.filter_map
      (fun (f : Lint_finding.t) ->
        if f.rule = "tvar-escape" && in_file "r6_bad.ml" f then Some f.message
        else None)
      r.Lint_engine.findings
  in
  Alcotest.(check bool)
    "the inline-closure finding names the captured binding" true
    (List.exists (fun m -> contains ~sub:"\"snapshot\"" m) msgs);
  Alcotest.(check bool)
    "the local-mutable finding names the escaping ref" true
    (List.exists (fun m -> contains ~sub:"\"acc\"" m) msgs)

let test_r6_clean_module () =
  let r = Lazy.force result in
  Alcotest.(check int)
    "no findings in r6_ok.ml" 0
    (List.length (List.filter (in_file "r6_ok.ml") r.Lint_engine.findings))

let test_r5_fires () =
  (* smuggle's Obj.magic, inspect's Obj.tag and Obj.repr. *)
  check_count ~rule:"obj-use" ~file:"r5_bad.ml" 3

let test_r5_sanctioned_binding () =
  (* Only off_list's Obj.magic: the allowlisted cast_ref binding —
     nested helper included — contributes nothing. *)
  check_count ~rule:"obj-use" ~file:"r5_allowed.ml" 1;
  let r = Lazy.force result in
  Alcotest.(check bool)
    "the finding is in off_list, not cast_ref" true
    (List.for_all
       (fun (f : Lint_finding.t) ->
         not (in_file "r5_allowed.ml" f) || f.line >= 11)
       r.Lint_engine.findings)

let test_r7_fires () =
  (* incr of the captured counter, c.payload read in the spawned
     closure, c.payload written by the parent after the spawn. *)
  check_count ~rule:"domain-escape" ~file:"r7_bad.ml" 3

let test_r7_findings_carry_escape_path () =
  let r = Lazy.force result in
  let r7 =
    List.filter
      (fun (f : Lint_finding.t) ->
        f.rule = "domain-escape" && in_file "r7_bad.ml" f)
      r.Lint_engine.findings
  in
  Alcotest.(check bool)
    "every r7_bad finding is anchored with related locations" true
    (r7 <> [] && List.for_all (fun (f : Lint_finding.t) -> f.related <> []) r7);
  Alcotest.(check bool)
    "the post-spawn write names the racing spawn" true
    (List.exists
       (fun (f : Lint_finding.t) ->
         List.exists
           (fun (rel : Lint_finding.related) ->
             contains ~sub:"Domain.spawn" rel.rel_message)
           f.related)
       r7)

let test_r7_clean_modules () =
  let r = Lazy.force result in
  List.iter
    (fun file ->
      Alcotest.(check int)
        (Printf.sprintf "no findings in %s" file)
        0
        (List.length (List.filter (in_file file) r.Lint_engine.findings)))
    [ "r7_frozen_ok.ml"; "r7_dls_ok.ml"; "r7_mutex_ok.ml" ]

let test_r7_suppression () =
  let r = Lazy.force result in
  Alcotest.(check int)
    "no unsuppressed findings in r7_suppressed.ml" 0
    (List.length
       (List.filter (in_file "r7_suppressed.ml") r.Lint_engine.findings));
  Alcotest.(check int)
    "the violation is suppressed" 1
    (List.length
       (List.filter (in_file "r7_suppressed.ml") r.Lint_engine.suppressed))

let test_r7_stale_suppression () =
  let r = Lazy.force result in
  Alcotest.(check bool)
    "stale domain-escape suppression is reported" true
    (List.exists
       (fun (file, _, rule) ->
         Filename.basename file = "stale_suppress.ml"
         && rule = "domain-escape")
       r.Lint_engine.stale_suppressions)

let test_rules_validation () =
  Alcotest.(check (list string))
    "known families pass" []
    (Lint_config.unknown_rule_families [ "R1"; "R7" ]);
  Alcotest.(check (list string))
    "unknown families are returned" [ "R9"; "bogus" ]
    (Lint_config.unknown_rule_families [ "R2"; "R9"; "bogus" ]);
  Alcotest.(check bool)
    "R7 is a known family" true
    (List.mem "R7" Lint_config.known_rule_families)

let test_default_allowlist_justified () =
  (* Every waiver in the shipped configuration must carry a non-empty
     justification: the allowlist is an audit trail, not a mute
     button. *)
  let open Lint_config in
  let d = default in
  List.iter
    (fun (u, b, why) ->
      Alcotest.(check bool)
        (Printf.sprintf "r7_allowed %s/%s justified" u
           (Option.value b ~default:"*"))
        true
        (String.trim why <> ""))
    d.r7.r7_allowed;
  List.iter
    (fun (ty, why) ->
      Alcotest.(check bool)
        (Printf.sprintf "confined type %s justified" ty)
        true
        (String.trim why <> ""))
    (d.r7.r7_confined_types @ d.r7.r7_tvar_types)

let test_sarif_structure () =
  let r = Lazy.force result in
  let sarif = Lint_engine.render_sarif r in
  Alcotest.(check bool)
    "SARIF declares version 2.1.0" true
    (contains ~sub:"\"version\":\"2.1.0\"" sarif);
  Alcotest.(check bool)
    "tool version comes from dune-project, not a hardcoded string" true
    (contains
       ~sub:(Printf.sprintf "\"version\":%S" Lint_version.version)
       sarif);
  Alcotest.(check bool)
    "R7 findings carry relatedLocations" true
    (contains ~sub:"\"relatedLocations\"" sarif);
  Alcotest.(check bool)
    "rules carry helpUri anchors into docs/LINT.md" true
    (contains ~sub:"docs/LINT.md#r7" sarif)

let test_strict_local_notices () =
  let r = run ~strict_local:true () in
  Alcotest.(check bool)
    "strict-local reports local mutation notices in r1_ok.ml" true
    (List.exists (in_file "r1_ok.ml") r.Lint_engine.notices);
  (* Notices never affect the error list. *)
  Alcotest.(check int)
    "r1_ok.ml still has no errors under strict-local" 0
    (List.length (List.filter (in_file "r1_ok.ml") r.Lint_engine.findings))

let () =
  Alcotest.run "lint"
    [
      ( "engine",
        [
          Alcotest.test_case "fixture units loaded" `Quick test_units_loaded;
          Alcotest.test_case "strict-local notices" `Quick
            test_strict_local_notices;
          Alcotest.test_case "stale suppressions reported" `Quick
            test_stale_suppression_reported;
          Alcotest.test_case "--rules family validation" `Quick
            test_rules_validation;
          Alcotest.test_case "SARIF structure" `Quick test_sarif_structure;
          Alcotest.test_case "default allowlist justified" `Quick
            test_default_allowlist_justified;
        ] );
      ( "r1-runtime-bypass",
        [
          Alcotest.test_case "violations fire" `Quick test_r1_fires;
          Alcotest.test_case "clean module" `Quick test_r1_clean_module;
          Alcotest.test_case "suppression comments" `Quick test_r1_suppression;
          Alcotest.test_case "raw-dls fires" `Quick test_r1_dls_fires;
          Alcotest.test_case "raw-dls allowlist" `Quick test_r1_dls_allowlist;
        ] );
      ( "r2-irrevocable",
        [
          Alcotest.test_case "effects fire" `Quick test_r2_fires;
          Alcotest.test_case "reachability limits scope" `Quick
            test_r2_reachability;
        ] );
      ( "r3-lock-discipline",
        [
          Alcotest.test_case "lock order" `Quick test_r3_order;
          Alcotest.test_case "release on both paths" `Quick test_r3_release;
          Alcotest.test_case "undeclared lock" `Quick test_r3_lock_table;
          Alcotest.test_case "no-wait discipline" `Quick test_r3_nowait;
        ] );
      ( "r5-obj-use",
        [
          Alcotest.test_case "violations fire" `Quick test_r5_fires;
          Alcotest.test_case "sanctioned binding granularity" `Quick
            test_r5_sanctioned_binding;
        ] );
      ( "r4-profile-honesty",
        [
          Alcotest.test_case "lying profiles fire" `Quick test_r4_fires;
          Alcotest.test_case "findings name the write witness" `Quick
            test_r4_findings_name_the_witness;
          Alcotest.test_case "honest profiles stay clean" `Quick
            test_r4_honest_ops_clean;
        ] );
      ( "r7-domain-escape",
        [
          Alcotest.test_case "escapes fire" `Quick test_r7_fires;
          Alcotest.test_case "findings carry the escape path" `Quick
            test_r7_findings_carry_escape_path;
          Alcotest.test_case "clean modules" `Quick test_r7_clean_modules;
          Alcotest.test_case "suppression comments" `Quick test_r7_suppression;
          Alcotest.test_case "stale suppression" `Quick
            test_r7_stale_suppression;
        ] );
      ( "r6-tvar-escape",
        [
          Alcotest.test_case "escapes fire" `Quick test_r6_fires;
          Alcotest.test_case "findings name the capture" `Quick
            test_r6_findings_name_the_capture;
          Alcotest.test_case "clean module" `Quick test_r6_clean_module;
        ] );
    ]
