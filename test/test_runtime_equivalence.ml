(* Cross-runtime equivalence: single-threaded, with no contention, no
   transaction ever retries, so every synchronization strategy must
   execute an identical operation sequence identically — same results,
   same failures, same final structure. This pins every registered
   runtime — including the adaptive tournament, whose mid-run champion
   switches must be invisible — to the sequential semantics in one
   sweep. *)

module P = Sb7_core.Parameters
module W = Sb7_harness.Workload
module Rand = Sb7_core.Sb_random

type trace_entry =
  | Ok_result of string * int
  | Failed of string

type outcome = {
  trace : trace_entry list;
  fingerprint : int;
}

module Probe (R : Sb7_runtime.Runtime_intf.S) = struct
  module I = Sb7_core.Instance.Make (R)

  (* A structure fingerprint covering ids, dates, attributes, topology
     and text lengths. *)
  let fingerprint (setup : I.Setup.t) =
    let h = ref 0 in
    let mix v = h := (!h * 31) + v in
    let module T = I.Types in
    setup.I.Setup.ap_id_index.iter (fun id p ->
        mix id;
        mix (R.read p.T.ap_build_date);
        mix (R.read p.T.ap_x);
        mix (R.read p.T.ap_y);
        mix (List.length (R.read p.T.ap_to)));
    setup.I.Setup.cp_id_index.iter (fun id cp ->
        mix id;
        mix (R.read cp.T.cp_build_date);
        mix (List.length (R.read cp.T.cp_used_in));
        mix (Hashtbl.hash (R.read cp.T.cp_document.T.doc_text)));
    setup.I.Setup.ba_id_index.iter (fun id ba ->
        mix id;
        mix (R.read ba.T.ba_build_date);
        mix (List.length (R.read ba.T.ba_components)));
    setup.I.Setup.ca_id_index.iter (fun id ca ->
        mix id;
        mix (R.read ca.T.ca_build_date);
        mix (List.length (R.read ca.T.ca_sub)));
    mix (Hashtbl.hash (R.read setup.I.Setup.module_.T.mod_manual.T.man_text));
    !h

  let run ~ops_count ~seed : outcome =
    let setup = I.Setup.create ~seed P.tiny in
    let all = Array.of_list I.Operation.all in
    let descs =
      Array.map
        (fun (op : I.Operation.t) ->
          {
            W.code = op.code;
            category = op.category;
            read_only = I.Operation.read_only op;
          })
        all
    in
    let cdf = W.cdf (W.ratios W.Read_write descs) in
    let rng = Rand.create ~seed:(seed * 131) in
    let trace = ref [] in
    for _ = 1 to ops_count do
      let u = float_of_int (Rand.int rng 1_000_000) /. 1_000_000. in
      let op = all.(W.sample cdf u) in
      let entry =
        match
          R.atomic ~profile:op.I.Operation.profile (fun () ->
              op.I.Operation.run rng setup)
        with
        | result -> Ok_result (op.I.Operation.code, result)
        | exception Sb7_core.Common.Operation_failed _ ->
          Failed op.I.Operation.code
      in
      trace := entry :: !trace
    done;
    I.Invariants.check_exn setup;
    { trace = List.rev !trace; fingerprint = fingerprint setup }
end

module Probe_seq = Probe (Sb7_runtime.Seq_runtime)
module Probe_coarse = Probe (Sb7_runtime.Coarse_runtime)
module Probe_medium = Probe (Sb7_runtime.Medium_runtime)
module Probe_fine = Probe (Sb7_runtime.Fine_runtime)
module Probe_tl2 = Probe (Sb7_runtime.Tl2_runtime)
module Probe_lsa = Probe (Sb7_runtime.Lsa_runtime)
module Probe_astm = Probe (Sb7_runtime.Astm_runtime)
module Probe_norec = Probe (Sb7_runtime.Norec_runtime)
module Probe_etl = Probe (Sb7_runtime.Etl_runtime)
module Probe_tournament = Probe (Sb7_runtime.Tournament_runtime)

let all_probes =
  [
    ("seq", Probe_seq.run);
    ("coarse", Probe_coarse.run);
    ("medium", Probe_medium.run);
    ("fine", Probe_fine.run);
    ("tl2", Probe_tl2.run);
    ("lsa", Probe_lsa.run);
    ("norec", Probe_norec.run);
    ("etl", Probe_etl.run);
    ("astm", Probe_astm.run);
    ("tournament", Probe_tournament.run);
  ]

let trace_stats trace =
  List.fold_left
    (fun (ok, failed) -> function
      | Ok_result _ -> (ok + 1, failed)
      | Failed _ -> (ok, failed + 1))
    (0, 0) trace

let test_equivalence () =
  let ops_count = 1_500 and seed = 19 in
  let reference = Probe_seq.run ~ops_count ~seed in
  let ok, failed = trace_stats reference.trace in
  Alcotest.(check int) "reference executed everything" ops_count (ok + failed);
  Alcotest.(check bool) "reference did real work" true (ok > 0 && failed > 0);
  List.iter
    (fun (name, run) ->
      let outcome = run ~ops_count ~seed in
      Alcotest.(check bool)
        (name ^ " trace identical to seq")
        true
        (outcome.trace = reference.trace);
      Alcotest.(check int)
        (name ^ " final structure identical")
        reference.fingerprint outcome.fingerprint)
    all_probes

let test_different_seed_differs () =
  let a = Probe_seq.run ~ops_count:500 ~seed:19 in
  let b = Probe_seq.run ~ops_count:500 ~seed:20 in
  Alcotest.(check bool) "different seeds diverge" true
    (a.trace <> b.trace || a.fingerprint <> b.fingerprint)

(* Profile-directed dispatch: under TL2 and LSA the trace's read-only
   operations run through the zero-log/snapshot path. The trace must
   still match seq (same results through a different transaction
   mode), the fast path must actually fire ([ro_zero_log_commits]
   > 0), and — all profiles being honest after the R4 lint triage —
   no operation may get demoted. *)
let test_ro_paths_exercised () =
  let ops_count = 1_500 and seed = 19 in
  let reference = Probe_seq.run ~ops_count ~seed in
  List.iter
    (fun (name, run, stats, reset_stats) ->
      reset_stats ();
      let outcome = run ~ops_count ~seed in
      Alcotest.(check bool)
        (name ^ " trace identical to seq through the ro path")
        true
        (outcome.trace = reference.trace);
      let c k = Option.value (List.assoc_opt k (stats ())) ~default:0 in
      Alcotest.(check bool)
        (Printf.sprintf "%s ro fast path exercised (got %d)" name
           (c "ro_zero_log_commits"))
        true
        (c "ro_zero_log_commits" > 0);
      Alcotest.(check int) (name ^ " no profile lied") 0 (c "ro_demotions"))
    [
      ( "tl2",
        Probe_tl2.run,
        Sb7_runtime.Tl2_runtime.stats,
        Sb7_runtime.Tl2_runtime.reset_stats );
      ( "lsa",
        Probe_lsa.run,
        Sb7_runtime.Lsa_runtime.stats,
        Sb7_runtime.Lsa_runtime.reset_stats );
    ]

(* Adaptive demotion: an operation whose profile claims read-only but
   whose body writes must still produce correct results under every
   STM runtime — one clean restart, a sticky demotion, never a wrong
   value. *)
module Demotion_probe (R : Sb7_runtime.Runtime_intf.S) = struct
  let run ~expect_demotions () =
    R.reset_stats ();
    let tv = R.make 0 in
    let lying_profile = Sb7_runtime.Op_profile.make ~name:"liar-op" () in
    for i = 1 to 5 do
      let v =
        R.atomic ~profile:lying_profile (fun () ->
            R.write tv (R.read tv + 1);
            R.read tv)
      in
      Alcotest.(check int) (Printf.sprintf "iteration %d result" i) i v
    done;
    Alcotest.(check int) "all five updates committed" 5 (R.read tv);
    let c k = Option.value (List.assoc_opt k (R.stats ())) ~default:0 in
    Alcotest.(check int)
      (R.name ^ " demoted exactly once (sticky registry)")
      expect_demotions (c "ro_demotions")
end

module Demote_tl2 = Demotion_probe (Sb7_runtime.Tl2_runtime)
module Demote_lsa = Demotion_probe (Sb7_runtime.Lsa_runtime)
module Demote_norec = Demotion_probe (Sb7_runtime.Norec_runtime)
module Demote_etl = Demotion_probe (Sb7_runtime.Etl_runtime)
module Demote_astm = Demotion_probe (Sb7_runtime.Astm_runtime)

let test_demotion () =
  (* ASTM's atomic_ro is a pass-through, so its writes never trip the
     signal and nothing is ever demoted. *)
  Demote_tl2.run ~expect_demotions:1 ();
  Demote_lsa.run ~expect_demotions:1 ();
  Demote_norec.run ~expect_demotions:1 ();
  Demote_etl.run ~expect_demotions:1 ();
  Demote_astm.run ~expect_demotions:0 ()

(* Checkpointed partial abort: a long ordered scan invalidated
   mid-flight must salvage its checkpoint prefix and still compute
   exactly what a full restart computes — same value, same counters
   telling the opposite story about how it got there. *)
module Checkpoint_probe (R : Sb7_runtime.Runtime_intf.S) = struct
  let n = 100
  let conflict_at = 60 (* scan position where the writer is released *)

  (* One scan transaction over [n] tvars, one checkpoint per element
     (mirroring Nav.traverse_composite_parts). On the first pass only,
     after [conflict_at] elements, a helper domain commits writes to
     tvar 10 (already read — invalidates the prefix past position 10)
     and tvar 80 (not yet read — forces the scanner's next extension
     to notice). The scanner's next read of tvar 80 then raises
     Conflict: checkpointed, it must roll back to the mark after
     element 9 and resume; full-abort, it restarts from scratch. *)
  let run ~checkpointed () =
    R.reset_stats ();
    let tvars = Array.init n (fun i -> R.make (i + 1)) in
    let trigger = Atomic.make false and done_ = Atomic.make false in
    let fired = ref false in
    let profile name =
      Sb7_runtime.Op_profile.make ~name
        ~writes:[ Sb7_runtime.Op_profile.Atomic_parts ]
        ()
    in
    let helper =
      Domain.spawn (fun () ->
          while not (Atomic.get trigger) do
            Domain.cpu_relax ()
          done;
          R.atomic ~profile:(profile "cp-writer") (fun () ->
              R.write tvars.(10) 1_000;
              R.write tvars.(80) 2_000);
          Atomic.set done_ true)
    in
    Sb7_stm.Stm_intf.partial_abort_enabled := checkpointed;
    let total =
      R.atomic ~profile:(profile "cp-scanner") (fun () ->
          let skip, saved = R.resume () in
          let sum = ref saved in
          for i = skip to n - 1 do
            sum := !sum + R.read tvars.(i);
            R.checkpoint ~acc:!sum;
            if i = conflict_at && not !fired then begin
              fired := true;
              Atomic.set trigger true;
              while not (Atomic.get done_) do
                Domain.cpu_relax ()
              done
            end
          done;
          !sum)
    in
    Sb7_stm.Stm_intf.partial_abort_enabled := true;
    Domain.join helper;
    let expected = ref 0 in
    for i = 0 to n - 1 do
      expected :=
        !expected
        + (if i = 10 then 1_000 else if i = 80 then 2_000 else i + 1)
    done;
    Alcotest.(check int)
      (Printf.sprintf "%s scan total (checkpointed=%b)" R.name checkpointed)
      !expected total;
    let c k = Option.value (List.assoc_opt k (R.stats ())) ~default:0 in
    (c "partial_aborts", c "reads_salvaged", c "aborts")
end

module Cp_tl2 = Checkpoint_probe (Sb7_runtime.Tl2_runtime)
module Cp_lsa = Checkpoint_probe (Sb7_runtime.Lsa_runtime)
module Cp_etl = Checkpoint_probe (Sb7_runtime.Etl_runtime)

let test_checkpoint_resume () =
  List.iter
    (fun (name, run) ->
      (* Checkpointed: the conflict is resolved by partial abort — the
         10-entry prefix before the invalidated read survives and no
         full abort is charged for it. *)
      let partial_aborts, reads_salvaged, aborts = run ~checkpointed:true () in
      Alcotest.(check int) (name ^ " one partial abort") 1 partial_aborts;
      Alcotest.(check int) (name ^ " salvaged the 10-read prefix") 10
        reads_salvaged;
      Alcotest.(check int) (name ^ " no full abort when salvaging") 0 aborts;
      (* Full-abort baseline: same scenario, same result, opposite
         counters. *)
      let partial_aborts, reads_salvaged, aborts = run ~checkpointed:false () in
      Alcotest.(check int) (name ^ " no partial abort when disabled") 0
        partial_aborts;
      Alcotest.(check int) (name ^ " nothing salvaged when disabled") 0
        reads_salvaged;
      Alcotest.(check bool) (name ^ " full abort charged instead") true
        (aborts >= 1))
    [ ("tl2", Cp_tl2.run); ("lsa", Cp_lsa.run); ("etl", Cp_etl.run) ]

(* The same probe run from short-lived domains, twice: the second
   execution's scanner adopts the descriptor the first one donated to
   the substrate pool on exit, so identical salvage counters prove the
   checkpoint marks and partial-abort rollback survive log recycling
   (watermark truncation on a reused structure-of-arrays log) exactly
   as on a fresh descriptor. *)
let test_checkpoint_resume_on_pooled_descriptor () =
  let run_in_domain () =
    Domain.join (Domain.spawn (fun () -> Cp_tl2.run ~checkpointed:true ()))
  in
  let first = run_in_domain () in
  let second = run_in_domain () in
  Alcotest.(check (triple int int int))
    "salvage counters identical on a recycled descriptor" first second

(* Adaptive tournament: a forced phase change (read-only storm, then a
   write storm) on a short-epoch instance must move the championship —
   at least one switch, with NOrec holding the title during the
   read-only phase. Single-threaded, so signals are deterministic up
   to batching. *)
module Tourney = Sb7_runtime.Tournament_runtime
module Tiny_tournament = Tourney.Make (struct
  let name = "tournament-tiny"
  let epoch_length = 64
  let policy = Tourney.Policy.default_config
end)

let test_tournament_phase_change () =
  let module R = Tiny_tournament in
  R.reset_stats ();
  let cells = Array.init 32 (fun i -> R.make i) in
  let ro_profile = Sb7_runtime.Op_profile.make ~name:"phase-ro" () in
  let wr_profile =
    Sb7_runtime.Op_profile.make ~name:"phase-wr"
      ~writes:[ Sb7_runtime.Op_profile.Atomic_parts ]
      ()
  in
  (* Read-only phase: high ro_rate, zero aborts — NOrec's home turf. *)
  for _ = 1 to 1_500 do
    ignore
      (R.atomic ~profile:ro_profile (fun () ->
           Array.fold_left (fun acc c -> acc + R.read c) 0 cells))
  done;
  let c k = Option.value (List.assoc_opt k (R.stats ())) ~default:0 in
  Alcotest.(check bool)
    (Printf.sprintf "ro phase crowned norec (switches=%d, norec epochs=%d)"
       (c "substrate_switches")
       (c "champion_epochs_norec"))
    true
    (c "substrate_switches" >= 1 && c "champion_epochs_norec" > 0);
  (* Write phase: ro_rate collapses, the champion must move off NOrec. *)
  let before = c "substrate_switches" in
  for i = 1 to 1_500 do
    R.atomic ~profile:wr_profile (fun () ->
        R.write cells.(i mod 32) (R.read cells.(i mod 32) + 1))
  done;
  let c k = Option.value (List.assoc_opt k (R.stats ())) ~default:0 in
  Alcotest.(check bool)
    (Printf.sprintf "write phase dethroned norec (switches %d -> %d)" before
       (c "substrate_switches"))
    true
    (c "substrate_switches" > before);
  Alcotest.(check bool)
    (Printf.sprintf "epochs were decided (%d)" (c "epoch_decisions"))
    true
    (c "epoch_decisions" > 0);
  (* All that adaptation must not have lost a single update. *)
  let total =
    R.atomic ~profile:ro_profile (fun () ->
        Array.fold_left (fun acc c -> acc + R.read c) 0 cells)
  in
  Alcotest.(check int) "updates survived every migration"
    (1_500 + Array.fold_left ( + ) 0 (Array.init 32 (fun i -> i)))
    total

(* Hysteresis, on the pure policy: a challenger that only wins every
   other epoch never gets crowned (no flapping), while a stable winner
   is crowned after exactly [streak] consecutive epochs. *)
let test_tournament_hysteresis () =
  let module P = Tourney.Policy in
  let cfg = P.default_config in
  let ro =
    { P.abort_rate = 0.; ro_rate = 1.; mean_read_set = 8.; salvage_rate = 0. }
  in
  let wr =
    { P.abort_rate = 0.; ro_rate = 0.; mean_read_set = 8.; salvage_rate = 0. }
  in
  Alcotest.(check bool) "norec outscores tl2 on the ro signals" true
    (P.score P.norec ro > P.score P.tl2 ro +. cfg.P.margin);
  Alcotest.(check bool) "tl2 outscores norec on the write signals" true
    (P.score P.tl2 wr > P.score P.norec wr);
  (* Noisy signals: the would-be challenger wins only every other
     epoch, so its streak never reaches [cfg.streak] and the champion
     never changes. *)
  let st = ref P.initial in
  for i = 1 to 40 do
    st := P.decide cfg !st (if i mod 2 = 0 then ro else wr);
    Alcotest.(check int)
      (Printf.sprintf "no flap at epoch %d" i)
      P.tl2 (P.champion !st)
  done;
  (* Stable signals: the crown moves after exactly [streak] consecutive
     winning epochs, not one sooner. *)
  let st = ref P.initial in
  for _ = 1 to cfg.P.streak - 1 do
    st := P.decide cfg !st ro;
    Alcotest.(check int) "still dwelling on the incumbent" P.tl2
      (P.champion !st)
  done;
  st := P.decide cfg !st ro;
  Alcotest.(check int)
    (Printf.sprintf "crowned after %d consecutive epochs" cfg.P.streak)
    P.norec (P.champion !st)

(* The registry is the single source the CLI strategy listing, the
   quick-bench sweep and the sanitizer's check loop are generated
   from; pin its contents so none of them can silently lose a
   strategy. *)
let test_registry_names () =
  Alcotest.(check (list string))
    "registry lists every strategy in presentation order"
    [
      "seq"; "coarse"; "medium"; "fine"; "tl2"; "lsa"; "norec"; "etl";
      "astm"; "tournament";
    ]
    Sb7_runtime.Registry.names;
  List.iter
    (fun name ->
      match Sb7_runtime.Registry.find name with
      | Ok (module R : Sb7_runtime.Runtime_intf.S) ->
        Alcotest.(check string) (name ^ " round-trips") name R.name
      | Error e -> Alcotest.failf "find %s: %s" name e)
    Sb7_runtime.Registry.names;
  match Sb7_runtime.Registry.find "no-such-strategy" with
  | Ok _ -> Alcotest.fail "unknown strategy resolved"
  | Error _ -> ()

let () =
  Alcotest.run "runtime_equivalence"
    [
      ( "equivalence",
        [
          Alcotest.test_case "all runtimes match seq single-threaded" `Slow
            test_equivalence;
          Alcotest.test_case "seeds differentiate" `Quick
            test_different_seed_differs;
          Alcotest.test_case "ro paths exercised, traces unchanged" `Slow
            test_ro_paths_exercised;
          Alcotest.test_case "mis-declared profiles demote cleanly" `Quick
            test_demotion;
          Alcotest.test_case "checkpoint resume matches full restart" `Quick
            test_checkpoint_resume;
          Alcotest.test_case "checkpoint resume on a pooled descriptor"
            `Quick test_checkpoint_resume_on_pooled_descriptor;
          Alcotest.test_case "tournament adapts across a phase change" `Quick
            test_tournament_phase_change;
          Alcotest.test_case "tournament hysteresis never flaps" `Quick
            test_tournament_hysteresis;
          Alcotest.test_case "registry is the single strategy source" `Quick
            test_registry_names;
        ] );
    ]
