(* Cross-runtime equivalence: single-threaded, with no contention, no
   transaction ever retries, so every synchronization strategy must
   execute an identical operation sequence identically — same results,
   same failures, same final structure. This pins all six runtimes to
   the sequential semantics in one sweep. *)

module P = Sb7_core.Parameters
module W = Sb7_harness.Workload
module Rand = Sb7_core.Sb_random

type trace_entry =
  | Ok_result of string * int
  | Failed of string

type outcome = {
  trace : trace_entry list;
  fingerprint : int;
}

module Probe (R : Sb7_runtime.Runtime_intf.S) = struct
  module I = Sb7_core.Instance.Make (R)

  (* A structure fingerprint covering ids, dates, attributes, topology
     and text lengths. *)
  let fingerprint (setup : I.Setup.t) =
    let h = ref 0 in
    let mix v = h := (!h * 31) + v in
    let module T = I.Types in
    setup.I.Setup.ap_id_index.iter (fun id p ->
        mix id;
        mix (R.read p.T.ap_build_date);
        mix (R.read p.T.ap_x);
        mix (R.read p.T.ap_y);
        mix (List.length (R.read p.T.ap_to)));
    setup.I.Setup.cp_id_index.iter (fun id cp ->
        mix id;
        mix (R.read cp.T.cp_build_date);
        mix (List.length (R.read cp.T.cp_used_in));
        mix (Hashtbl.hash (R.read cp.T.cp_document.T.doc_text)));
    setup.I.Setup.ba_id_index.iter (fun id ba ->
        mix id;
        mix (R.read ba.T.ba_build_date);
        mix (List.length (R.read ba.T.ba_components)));
    setup.I.Setup.ca_id_index.iter (fun id ca ->
        mix id;
        mix (R.read ca.T.ca_build_date);
        mix (List.length (R.read ca.T.ca_sub)));
    mix (Hashtbl.hash (R.read setup.I.Setup.module_.T.mod_manual.T.man_text));
    !h

  let run ~ops_count ~seed : outcome =
    let setup = I.Setup.create ~seed P.tiny in
    let all = Array.of_list I.Operation.all in
    let descs =
      Array.map
        (fun (op : I.Operation.t) ->
          {
            W.code = op.code;
            category = op.category;
            read_only = I.Operation.read_only op;
          })
        all
    in
    let cdf = W.cdf (W.ratios W.Read_write descs) in
    let rng = Rand.create ~seed:(seed * 131) in
    let trace = ref [] in
    for _ = 1 to ops_count do
      let u = float_of_int (Rand.int rng 1_000_000) /. 1_000_000. in
      let op = all.(W.sample cdf u) in
      let entry =
        match
          R.atomic ~profile:op.I.Operation.profile (fun () ->
              op.I.Operation.run rng setup)
        with
        | result -> Ok_result (op.I.Operation.code, result)
        | exception Sb7_core.Common.Operation_failed _ ->
          Failed op.I.Operation.code
      in
      trace := entry :: !trace
    done;
    I.Invariants.check_exn setup;
    { trace = List.rev !trace; fingerprint = fingerprint setup }
end

module Probe_seq = Probe (Sb7_runtime.Seq_runtime)
module Probe_coarse = Probe (Sb7_runtime.Coarse_runtime)
module Probe_medium = Probe (Sb7_runtime.Medium_runtime)
module Probe_fine = Probe (Sb7_runtime.Fine_runtime)
module Probe_tl2 = Probe (Sb7_runtime.Tl2_runtime)
module Probe_lsa = Probe (Sb7_runtime.Lsa_runtime)
module Probe_astm = Probe (Sb7_runtime.Astm_runtime)

let all_probes =
  [
    ("seq", Probe_seq.run);
    ("coarse", Probe_coarse.run);
    ("medium", Probe_medium.run);
    ("fine", Probe_fine.run);
    ("tl2", Probe_tl2.run);
    ("lsa", Probe_lsa.run);
    ("astm", Probe_astm.run);
  ]

let trace_stats trace =
  List.fold_left
    (fun (ok, failed) -> function
      | Ok_result _ -> (ok + 1, failed)
      | Failed _ -> (ok, failed + 1))
    (0, 0) trace

let test_equivalence () =
  let ops_count = 1_500 and seed = 19 in
  let reference = Probe_seq.run ~ops_count ~seed in
  let ok, failed = trace_stats reference.trace in
  Alcotest.(check int) "reference executed everything" ops_count (ok + failed);
  Alcotest.(check bool) "reference did real work" true (ok > 0 && failed > 0);
  List.iter
    (fun (name, run) ->
      let outcome = run ~ops_count ~seed in
      Alcotest.(check bool)
        (name ^ " trace identical to seq")
        true
        (outcome.trace = reference.trace);
      Alcotest.(check int)
        (name ^ " final structure identical")
        reference.fingerprint outcome.fingerprint)
    all_probes

let test_different_seed_differs () =
  let a = Probe_seq.run ~ops_count:500 ~seed:19 in
  let b = Probe_seq.run ~ops_count:500 ~seed:20 in
  Alcotest.(check bool) "different seeds diverge" true
    (a.trace <> b.trace || a.fingerprint <> b.fingerprint)

(* Profile-directed dispatch: under TL2 and LSA the trace's read-only
   operations run through the zero-log/snapshot path. The trace must
   still match seq (same results through a different transaction
   mode), the fast path must actually fire ([ro_zero_log_commits]
   > 0), and — all profiles being honest after the R4 lint triage —
   no operation may get demoted. *)
let test_ro_paths_exercised () =
  let ops_count = 1_500 and seed = 19 in
  let reference = Probe_seq.run ~ops_count ~seed in
  List.iter
    (fun (name, run, stats, reset_stats) ->
      reset_stats ();
      let outcome = run ~ops_count ~seed in
      Alcotest.(check bool)
        (name ^ " trace identical to seq through the ro path")
        true
        (outcome.trace = reference.trace);
      let c k = Option.value (List.assoc_opt k (stats ())) ~default:0 in
      Alcotest.(check bool)
        (Printf.sprintf "%s ro fast path exercised (got %d)" name
           (c "ro_zero_log_commits"))
        true
        (c "ro_zero_log_commits" > 0);
      Alcotest.(check int) (name ^ " no profile lied") 0 (c "ro_demotions"))
    [
      ( "tl2",
        Probe_tl2.run,
        Sb7_runtime.Tl2_runtime.stats,
        Sb7_runtime.Tl2_runtime.reset_stats );
      ( "lsa",
        Probe_lsa.run,
        Sb7_runtime.Lsa_runtime.stats,
        Sb7_runtime.Lsa_runtime.reset_stats );
    ]

(* Adaptive demotion: an operation whose profile claims read-only but
   whose body writes must still produce correct results under every
   STM runtime — one clean restart, a sticky demotion, never a wrong
   value. *)
module Demotion_probe (R : Sb7_runtime.Runtime_intf.S) = struct
  let run ~expect_demotions () =
    R.reset_stats ();
    let tv = R.make 0 in
    let lying_profile = Sb7_runtime.Op_profile.make ~name:"liar-op" () in
    for i = 1 to 5 do
      let v =
        R.atomic ~profile:lying_profile (fun () ->
            R.write tv (R.read tv + 1);
            R.read tv)
      in
      Alcotest.(check int) (Printf.sprintf "iteration %d result" i) i v
    done;
    Alcotest.(check int) "all five updates committed" 5 (R.read tv);
    let c k = Option.value (List.assoc_opt k (R.stats ())) ~default:0 in
    Alcotest.(check int)
      (R.name ^ " demoted exactly once (sticky registry)")
      expect_demotions (c "ro_demotions")
end

module Demote_tl2 = Demotion_probe (Sb7_runtime.Tl2_runtime)
module Demote_lsa = Demotion_probe (Sb7_runtime.Lsa_runtime)
module Demote_astm = Demotion_probe (Sb7_runtime.Astm_runtime)

let test_demotion () =
  (* ASTM's atomic_ro is a pass-through, so its writes never trip the
     signal and nothing is ever demoted. *)
  Demote_tl2.run ~expect_demotions:1 ();
  Demote_lsa.run ~expect_demotions:1 ();
  Demote_astm.run ~expect_demotions:0 ()

(* Checkpointed partial abort: a long ordered scan invalidated
   mid-flight must salvage its checkpoint prefix and still compute
   exactly what a full restart computes — same value, same counters
   telling the opposite story about how it got there. *)
module Checkpoint_probe (R : Sb7_runtime.Runtime_intf.S) = struct
  let n = 100
  let conflict_at = 60 (* scan position where the writer is released *)

  (* One scan transaction over [n] tvars, one checkpoint per element
     (mirroring Nav.traverse_composite_parts). On the first pass only,
     after [conflict_at] elements, a helper domain commits writes to
     tvar 10 (already read — invalidates the prefix past position 10)
     and tvar 80 (not yet read — forces the scanner's next extension
     to notice). The scanner's next read of tvar 80 then raises
     Conflict: checkpointed, it must roll back to the mark after
     element 9 and resume; full-abort, it restarts from scratch. *)
  let run ~checkpointed () =
    R.reset_stats ();
    let tvars = Array.init n (fun i -> R.make (i + 1)) in
    let trigger = Atomic.make false and done_ = Atomic.make false in
    let fired = ref false in
    let profile name =
      Sb7_runtime.Op_profile.make ~name
        ~writes:[ Sb7_runtime.Op_profile.Atomic_parts ]
        ()
    in
    let helper =
      Domain.spawn (fun () ->
          while not (Atomic.get trigger) do
            Domain.cpu_relax ()
          done;
          R.atomic ~profile:(profile "cp-writer") (fun () ->
              R.write tvars.(10) 1_000;
              R.write tvars.(80) 2_000);
          Atomic.set done_ true)
    in
    Sb7_stm.Stm_intf.partial_abort_enabled := checkpointed;
    let total =
      R.atomic ~profile:(profile "cp-scanner") (fun () ->
          let skip, saved = R.resume () in
          let sum = ref saved in
          for i = skip to n - 1 do
            sum := !sum + R.read tvars.(i);
            R.checkpoint ~acc:!sum;
            if i = conflict_at && not !fired then begin
              fired := true;
              Atomic.set trigger true;
              while not (Atomic.get done_) do
                Domain.cpu_relax ()
              done
            end
          done;
          !sum)
    in
    Sb7_stm.Stm_intf.partial_abort_enabled := true;
    Domain.join helper;
    let expected = ref 0 in
    for i = 0 to n - 1 do
      expected :=
        !expected
        + (if i = 10 then 1_000 else if i = 80 then 2_000 else i + 1)
    done;
    Alcotest.(check int)
      (Printf.sprintf "%s scan total (checkpointed=%b)" R.name checkpointed)
      !expected total;
    let c k = Option.value (List.assoc_opt k (R.stats ())) ~default:0 in
    (c "partial_aborts", c "reads_salvaged", c "aborts")
end

module Cp_tl2 = Checkpoint_probe (Sb7_runtime.Tl2_runtime)
module Cp_lsa = Checkpoint_probe (Sb7_runtime.Lsa_runtime)

let test_checkpoint_resume () =
  List.iter
    (fun (name, run) ->
      (* Checkpointed: the conflict is resolved by partial abort — the
         10-entry prefix before the invalidated read survives and no
         full abort is charged for it. *)
      let partial_aborts, reads_salvaged, aborts = run ~checkpointed:true () in
      Alcotest.(check int) (name ^ " one partial abort") 1 partial_aborts;
      Alcotest.(check int) (name ^ " salvaged the 10-read prefix") 10
        reads_salvaged;
      Alcotest.(check int) (name ^ " no full abort when salvaging") 0 aborts;
      (* Full-abort baseline: same scenario, same result, opposite
         counters. *)
      let partial_aborts, reads_salvaged, aborts = run ~checkpointed:false () in
      Alcotest.(check int) (name ^ " no partial abort when disabled") 0
        partial_aborts;
      Alcotest.(check int) (name ^ " nothing salvaged when disabled") 0
        reads_salvaged;
      Alcotest.(check bool) (name ^ " full abort charged instead") true
        (aborts >= 1))
    [ ("tl2", Cp_tl2.run); ("lsa", Cp_lsa.run) ]

let () =
  Alcotest.run "runtime_equivalence"
    [
      ( "equivalence",
        [
          Alcotest.test_case "all runtimes match seq single-threaded" `Slow
            test_equivalence;
          Alcotest.test_case "seeds differentiate" `Quick
            test_different_seed_differs;
          Alcotest.test_case "ro paths exercised, traces unchanged" `Slow
            test_ro_paths_exercised;
          Alcotest.test_case "mis-declared profiles demote cleanly" `Quick
            test_demotion;
          Alcotest.test_case "checkpoint resume matches full restart" `Quick
            test_checkpoint_resume;
        ] );
    ]
