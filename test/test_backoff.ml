(* Unit tests for the randomized exponential backoff: window doubling
   up to the cap, the spin-vs-sleep cutoff branch, and reset. *)

module Backoff = Sb7_stm.Backoff

let test_window_doubles_to_cap () =
  let b = Backoff.create ~bits_min:4 ~bits_max:8 ~seed:7 () in
  Alcotest.(check int) "starts at bits_min" 4 (Backoff.window_bits b);
  Backoff.once b;
  Alcotest.(check int) "one round doubles" 5 (Backoff.window_bits b);
  Backoff.once b;
  Alcotest.(check int) "two rounds" 6 (Backoff.window_bits b);
  for _ = 1 to 10 do
    Backoff.once b
  done;
  Alcotest.(check int) "capped at bits_max" 8 (Backoff.window_bits b);
  Alcotest.(check int) "all rounds counted" 12 (Backoff.attempts b)

let test_reset () =
  let b = Backoff.create ~bits_min:5 ~bits_max:12 ~seed:3 () in
  for _ = 1 to 4 do
    Backoff.once b
  done;
  Alcotest.(check int) "widened" 9 (Backoff.window_bits b);
  Alcotest.(check int) "attempts" 4 (Backoff.attempts b);
  Backoff.reset b;
  Alcotest.(check int) "window back to min" 5 (Backoff.window_bits b);
  Alcotest.(check int) "attempts back to 0" 0 (Backoff.attempts b)

(* Exercise the cutoff-to-sleep branch: with a 2^20 window nearly every
   draw exceeds the 2^12 spin cutoff, so [once] must take the
   [Unix.sleepf] path — and the scaled sleep (wait * 1e-8 s) must stay
   far below a second. *)
let test_sleep_branch_bounded () =
  let b = Backoff.create ~bits_min:20 ~bits_max:20 ~seed:11 () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 10 do
    Backoff.once b
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "10 max-window rounds stay under 1s (took %.3fs)" dt)
    true (dt < 1.);
  Alcotest.(check int) "rounds counted" 10 (Backoff.attempts b)

(* The spin branch: a tiny window never exceeds the cutoff. *)
let test_spin_branch_fast () =
  let b = Backoff.create ~bits_min:4 ~bits_max:6 ~seed:5 () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 100 do
    Backoff.once b;
    Backoff.reset b
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "spinning is sub-millisecond-ish" true (dt < 0.5)

let test_attempts_monotone () =
  let b = Backoff.create ~seed:1 () in
  Alcotest.(check int) "fresh" 0 (Backoff.attempts b);
  Backoff.once b;
  Backoff.once b;
  Alcotest.(check int) "two" 2 (Backoff.attempts b)

let suite =
  [
    Alcotest.test_case "window doubles to cap" `Quick
      test_window_doubles_to_cap;
    Alcotest.test_case "reset restores window and count" `Quick test_reset;
    Alcotest.test_case "sleep branch bounded" `Quick test_sleep_branch_bounded;
    Alcotest.test_case "spin branch fast" `Quick test_spin_branch_fast;
    Alcotest.test_case "attempts monotone" `Quick test_attempts_monotone;
  ]

let () = Alcotest.run "backoff" [ ("backoff", suite) ]
