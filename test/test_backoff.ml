(* Unit tests for the randomized exponential backoff: window doubling
   up to the cap, the spin-vs-sleep cutoff branch, and reset. *)

module Backoff = Sb7_stm.Backoff

let test_window_doubles_to_cap () =
  let b = Backoff.create ~bits_min:4 ~bits_max:8 ~seed:7 () in
  Alcotest.(check int) "starts at bits_min" 4 (Backoff.window_bits b);
  Backoff.once b;
  Alcotest.(check int) "one round doubles" 5 (Backoff.window_bits b);
  Backoff.once b;
  Alcotest.(check int) "two rounds" 6 (Backoff.window_bits b);
  for _ = 1 to 10 do
    Backoff.once b
  done;
  Alcotest.(check int) "capped at bits_max" 8 (Backoff.window_bits b);
  Alcotest.(check int) "all rounds counted" 12 (Backoff.attempts b)

let test_reset () =
  let b = Backoff.create ~bits_min:5 ~bits_max:12 ~seed:3 () in
  for _ = 1 to 4 do
    Backoff.once b
  done;
  Alcotest.(check int) "widened" 9 (Backoff.window_bits b);
  Alcotest.(check int) "attempts" 4 (Backoff.attempts b);
  Backoff.reset b;
  Alcotest.(check int) "window back to min" 5 (Backoff.window_bits b);
  Alcotest.(check int) "attempts back to 0" 0 (Backoff.attempts b)

(* Exercise the cutoff-to-sleep branch: with a 2^20 window nearly every
   draw exceeds the 2^12 spin cutoff, so [once] must take the
   [Unix.sleepf] path — and the scaled sleep (wait * 1e-8 s) must stay
   far below a second. *)
let test_sleep_branch_bounded () =
  let b = Backoff.create ~bits_min:20 ~bits_max:20 ~seed:11 () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 10 do
    Backoff.once b
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "10 max-window rounds stay under 1s (took %.3fs)" dt)
    true (dt < 1.);
  Alcotest.(check int) "rounds counted" 10 (Backoff.attempts b)

(* The spin branch: a tiny window never exceeds the cutoff. *)
let test_spin_branch_fast () =
  let b = Backoff.create ~bits_min:4 ~bits_max:6 ~seed:5 () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 100 do
    Backoff.once b;
    Backoff.reset b
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "spinning is sub-millisecond-ish" true (dt < 0.5)

let test_attempts_monotone () =
  let b = Backoff.create ~seed:1 () in
  Alcotest.(check int) "fresh" 0 (Backoff.attempts b);
  Backoff.once b;
  Backoff.once b;
  Alcotest.(check int) "two" 2 (Backoff.attempts b)

(* Two domains with adjacent indices and the same run seed must not
   draw the same wait sequence (lockstep backoff defeats its purpose):
   with a fixed 16-bit window, 64 draws each should almost never
   coincide position by position. *)
let test_domain_seeds_decorrelated () =
  let draws domain =
    let seed = Backoff.domain_seed ~domain ~run_seed:42 in
    let b = Backoff.create ~bits_min:16 ~bits_max:16 ~seed () in
    Array.init 64 (fun _ -> Backoff.draw b)
  in
  let d1 = draws 1 and d2 = draws 2 in
  let equal_positions = ref 0 in
  Array.iteri (fun i v -> if v = d2.(i) then incr equal_positions) d1;
  Alcotest.(check bool)
    (Printf.sprintf "adjacent domains share %d/64 draw positions"
       !equal_positions)
    true (!equal_positions <= 3);
  (* Deterministic per (run seed, domain): the same inputs reproduce
     the same sequence. *)
  Alcotest.(check (array int)) "deterministic per (run_seed, domain)"
    d1 (draws 1)

let test_run_seed_varies_sequences () =
  let draws run_seed =
    let seed = Backoff.domain_seed ~domain:1 ~run_seed in
    let b = Backoff.create ~bits_min:16 ~bits_max:16 ~seed () in
    Array.init 64 (fun _ -> Backoff.draw b)
  in
  let a = draws 42 and b = draws 43 in
  Alcotest.(check bool) "different run seeds, different sequences" true
    (a <> b)

let suite =
  [
    Alcotest.test_case "window doubles to cap" `Quick
      test_window_doubles_to_cap;
    Alcotest.test_case "reset restores window and count" `Quick test_reset;
    Alcotest.test_case "sleep branch bounded" `Quick test_sleep_branch_bounded;
    Alcotest.test_case "spin branch fast" `Quick test_spin_branch_fast;
    Alcotest.test_case "attempts monotone" `Quick test_attempts_monotone;
    Alcotest.test_case "domain seeds decorrelated" `Quick
      test_domain_seeds_decorrelated;
    Alcotest.test_case "run seed varies sequences" `Quick
      test_run_seed_varies_sequences;
  ]

let () = Alcotest.run "backoff" [ ("backoff", suite) ]
