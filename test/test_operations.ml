(* Behavioural tests for the 45 benchmark operations, run under the
   sequential runtime at tiny scale. Expectations are derived from the
   OO7/STMBench7 construction rules (per-reference traversal counts,
   involutive updates, index maintenance). *)

module Seq = Sb7_runtime.Seq_runtime
module I = Sb7_core.Instance.Make (Seq)
module P = Sb7_core.Parameters
module T = I.Types
module Rand = Sb7_core.Sb_random

let params = P.tiny
let fresh () = I.Setup.create ~seed:21 params
let rng () = Rand.create ~seed:5

exception Failed = Sb7_core.Common.Operation_failed

(* Retry an operation that can fail on random-ID misses. *)
let until_success ?(tries = 200) f =
  let rec go n =
    if n = 0 then Alcotest.fail "operation never succeeded"
    else
      match f () with
      | v -> v
      | exception Failed _ -> go (n - 1)
  in
  go tries

let shared_rng = Rand.create ~seed:977

let run_op setup rng code =
  match I.Operation.by_code code with
  | None -> Alcotest.failf "unknown operation %s" code
  | Some op -> op.I.Operation.run rng setup

(* Number of (base assembly, composite part) references: long traversals
   visit composite parts once per reference. *)
let reference_count setup =
  let stats = I.Structure_stats.collect setup in
  stats.I.Structure_stats.assembly_links

let total_atomic_parts setup = setup.I.Setup.ap_id_index.size ()

(* --- Long traversals --- *)

let test_t1_counts_per_reference () =
  let setup = fresh () in
  let expected = reference_count setup * params.P.num_atomic_per_comp in
  Alcotest.(check int) "T1 visit count" expected (run_op setup (rng ()) "T1")

let test_t6_counts_roots () =
  let setup = fresh () in
  Alcotest.(check int) "T6 = one root per reference"
    (reference_count setup)
    (run_op setup (rng ()) "T6")

let test_q7_counts_all_parts () =
  let setup = fresh () in
  Alcotest.(check int) "Q7 = all atomic parts" (total_atomic_parts setup)
    (run_op setup (rng ()) "Q7")

let snapshot_xy setup =
  let acc = ref [] in
  setup.I.Setup.ap_id_index.iter (fun id p ->
      acc := (id, Seq.read p.T.ap_x, Seq.read p.T.ap_y) :: !acc);
  !acc

let test_t2b_twice_restores () =
  let setup = fresh () in
  let before = snapshot_xy setup in
  let c1 = run_op setup (rng ()) "T2b" in
  let c2 = run_op setup (rng ()) "T2b" in
  Alcotest.(check int) "same visit count" c1 c2;
  Alcotest.(check bool) "x/y restored after double swap" true
    (before = snapshot_xy setup)

let test_t2c_identity_on_xy () =
  (* Four swaps per visit leave x/y unchanged. *)
  let setup = fresh () in
  let before = snapshot_xy setup in
  ignore (run_op setup (rng ()) "T2c");
  Alcotest.(check bool) "unchanged" true (before = snapshot_xy setup)

let test_t2a_touches_only_roots () =
  let setup = fresh () in
  let roots = Hashtbl.create 16 in
  setup.I.Setup.cp_id_index.iter (fun _ cp ->
      Hashtbl.replace roots (Seq.read cp.T.cp_root_part).T.ap_id ());
  let before = snapshot_xy setup in
  ignore (run_op setup (rng ()) "T2a");
  let after = snapshot_xy setup in
  List.iter2
    (fun (id, x, y) (id', x', y') ->
      assert (id = id');
      if not (Hashtbl.mem roots id) then begin
        Alcotest.(check int) "non-root x untouched" x x';
        Alcotest.(check int) "non-root y untouched" y y'
      end)
    before after

let test_t3b_maintains_date_index () =
  let setup = fresh () in
  ignore (run_op setup (rng ()) "T3b");
  I.Invariants.check_exn setup;
  ignore (run_op setup (rng ()) "T3c");
  I.Invariants.check_exn setup;
  ignore (run_op setup (rng ()) "T3a");
  I.Invariants.check_exn setup

let test_t4_matches_independent_count () =
  let setup = fresh () in
  (* Independent computation via the composite-part index and bag
     multiplicities, instead of the assembly tree. *)
  let expected = ref 0 in
  setup.I.Setup.cp_id_index.iter (fun _ cp ->
      let uses = List.length (Seq.read cp.T.cp_used_in) in
      expected :=
        !expected
        + (uses
          * Sb7_core.Text.count_char (Seq.read cp.T.cp_document.T.doc_text) 'I'));
  Alcotest.(check int) "T4 total" !expected (run_op setup (rng ()) "T4")

let test_t5_twice_restores_documents () =
  let setup = fresh () in
  let texts () =
    let acc = ref [] in
    setup.I.Setup.doc_title_index.iter (fun _ d ->
        acc := Seq.read d.T.doc_text :: !acc);
    !acc
  in
  let before = texts () in
  let c1 = run_op setup (rng ()) "T5" in
  Alcotest.(check bool) "T5 replaced something" true (c1 > 0);
  ignore (run_op setup (rng ()) "T5");
  Alcotest.(check bool) "restored" true (before = texts ())

let test_q6_matches_independent_scan () =
  let setup = fresh () in
  (* Independent: collect matching base assemblies from the index, then
     count distinct ascendant complex assemblies. *)
  let matching = ref [] in
  setup.I.Setup.ba_id_index.iter (fun _ ba ->
      let d = Seq.read ba.T.ba_build_date in
      if
        List.exists
          (fun (cp : T.composite_part) -> Seq.read cp.T.cp_build_date > d)
          (Seq.read ba.T.ba_components)
      then matching := ba :: !matching);
  let expected = I.Nav.ascend_complex_assemblies !matching (fun _ -> ()) in
  Alcotest.(check int) "Q6" expected (run_op setup (rng ()) "Q6")

(* --- Short traversals --- *)

let test_st1_succeeds_on_fresh_build () =
  let setup = fresh () in
  let v = run_op setup (rng ()) "ST1" in
  Alcotest.(check bool) "x+y non-negative" true (v >= 0)

let test_st2_counts_i () =
  let setup = fresh () in
  let v = run_op setup (rng ()) "ST2" in
  Alcotest.(check bool) "some 'I' in every document" true (v > 0)

let test_st3_bounded_by_complex_count () =
  let setup = fresh () in
  let n_complex = setup.I.Setup.ca_id_index.size () in
  let v = let r = rng () in
  until_success (fun () -> run_op setup r "ST3") in
  Alcotest.(check bool) "within bounds" true (v >= 1 && v <= n_complex)

let test_st4_counts_visits () =
  let setup = fresh () in
  let v = run_op setup (rng ()) "ST4" in
  (* 100 draws over a mostly-live ID space with ~3 uses per composite
     part must find something. *)
  Alcotest.(check bool) "found some" true (v > 0)

let test_st5_matches_q6_base_selection () =
  let setup = fresh () in
  let expected = ref 0 in
  setup.I.Setup.ba_id_index.iter (fun _ ba ->
      let d = Seq.read ba.T.ba_build_date in
      if
        List.exists
          (fun (cp : T.composite_part) -> Seq.read cp.T.cp_build_date > d)
          (Seq.read ba.T.ba_components)
      then incr expected);
  Alcotest.(check int) "ST5" !expected (run_op setup (rng ()) "ST5")

let test_st9_visits_whole_graph () =
  let setup = fresh () in
  Alcotest.(check int) "all parts of one composite"
    params.P.num_atomic_per_comp
    (run_op setup (rng ()) "ST9")

let test_st6_st10_swap_and_restore () =
  let setup = fresh () in
  (* ST10 visits every part of one composite part: two identical runs
     with a replayed generator restore the x/y values. *)
  let r = rng () in
  let r' = Rand.copy r in
  let before = snapshot_xy setup in
  ignore (run_op setup r "ST10");
  Alcotest.(check bool) "changed something" true (before <> snapshot_xy setup);
  ignore (run_op setup r' "ST10");
  Alcotest.(check bool) "replayed run restores" true
    (before = snapshot_xy setup);
  let r6 = rng () in
  ignore (until_success (fun () -> run_op setup r6 "ST6"))

let test_st7_toggles_one_document () =
  let setup = fresh () in
  let r = rng () in
  let r' = Rand.copy r in
  let c1 = run_op setup r "ST7" in
  let c2 = run_op setup r' "ST7" in
  Alcotest.(check bool) "replaced" true (c1 > 0);
  Alcotest.(check int) "toggle back same count" c1 c2

let test_st8_updates_assemblies () =
  let setup = fresh () in
  let r = rng () in
  ignore (until_success (fun () -> run_op setup r "ST8"));
  I.Invariants.check_exn setup

(* --- Short operations --- *)

let test_op1_bounds () =
  let setup = fresh () in
  let v = run_op setup (rng ()) "OP1" in
  Alcotest.(check bool) "0..10 parts" true (v >= 0 && v <= 10)

let test_op2_subset_of_op3 () =
  let setup = fresh () in
  let r2 = run_op setup (rng ()) "OP2" in
  let r3 = run_op setup (rng ()) "OP3" in
  Alcotest.(check bool) "1% range within 10% range" true (r2 <= r3);
  Alcotest.(check bool) "10% range within total" true
    (r3 <= total_atomic_parts setup)

let test_op2_matches_manual_scan () =
  let setup = fresh () in
  let hi = params.P.max_atomic_date in
  let expected = ref 0 in
  setup.I.Setup.ap_id_index.iter (fun _ p ->
      let d = Seq.read p.T.ap_build_date in
      if d >= hi - 9 && d <= hi then incr expected);
  Alcotest.(check int) "OP2" !expected (run_op setup (rng ()) "OP2")

let test_op4_counts_manual () =
  let setup = fresh () in
  let expected =
    Sb7_core.Text.count_char
      (Seq.read setup.I.Setup.module_.T.mod_manual.T.man_text)
      'I'
  in
  Alcotest.(check int) "OP4" expected (run_op setup (rng ()) "OP4");
  Alcotest.(check bool) "manual has 'I'" true (expected > 0)

let test_op5_first_last () =
  let setup = fresh () in
  let manual = Seq.read setup.I.Setup.module_.T.mod_manual.T.man_text in
  let expected = if Sb7_core.Text.first_last_equal manual then 1 else 0 in
  Alcotest.(check int) "OP5" expected (run_op setup (rng ()) "OP5")

let test_op6_op7_sibling_counts () =
  let setup = fresh () in
  let fanout = params.P.num_assm_per_assm in
  for _ = 1 to 20 do
    let v = until_success (fun () -> run_op setup shared_rng "OP6") in
    Alcotest.(check bool) "OP6 root alone or full sibling set" true
      (v = 1 || v = fanout);
    let w = until_success (fun () -> run_op setup shared_rng "OP7") in
    Alcotest.(check int) "OP7 full sibling set" fanout w
  done

let test_op8_component_count () =
  let setup = fresh () in
  let v = until_success (fun () -> run_op setup shared_rng "OP8") in
  Alcotest.(check int) "components per base assembly"
    params.P.num_comp_per_assm v

let test_op9_op15_keep_invariants () =
  let setup = fresh () in
  ignore (run_op setup (rng ()) "OP9");
  ignore (run_op setup (rng ()) "OP10");
  ignore (run_op setup (rng ()) "OP15");
  I.Invariants.check_exn setup

let test_op11_toggle_roundtrip () =
  let setup = fresh () in
  let before = Seq.read setup.I.Setup.module_.T.mod_manual.T.man_text in
  let c1 = run_op setup (rng ()) "OP11" in
  Alcotest.(check bool) "changed" true (c1 > 0);
  let c2 = run_op setup (rng ()) "OP11" in
  Alcotest.(check int) "restored count" c1 c2;
  Alcotest.(check string) "manual restored" before
    (Seq.read setup.I.Setup.module_.T.mod_manual.T.man_text)

let test_op12_op13_op14_keep_invariants () =
  let setup = fresh () in
  ignore (until_success (fun () -> run_op setup shared_rng "OP12"));
  ignore (until_success (fun () -> run_op setup shared_rng "OP13"));
  ignore (until_success (fun () -> run_op setup shared_rng "OP14"));
  I.Invariants.check_exn setup

(* --- Structure modifications --- *)

let census setup = I.Structure_stats.collect setup

let test_sm1_creates_composite_part () =
  let setup = fresh () in
  let before = census setup in
  let new_id = run_op setup (rng ()) "SM1" in
  let after = census setup in
  Alcotest.(check int) "one more composite part"
    (before.I.Structure_stats.composite_parts + 1)
    after.I.Structure_stats.composite_parts;
  Alcotest.(check int) "atomic parts grew by a full graph"
    (before.I.Structure_stats.atomic_parts + params.P.num_atomic_per_comp)
    after.I.Structure_stats.atomic_parts;
  (match setup.I.Setup.cp_id_index.get new_id with
  | Some cp ->
    Alcotest.(check int) "not linked anywhere" 0
      (List.length (Seq.read cp.T.cp_used_in))
  | None -> Alcotest.fail "created part not in index");
  I.Invariants.check_exn setup

let test_sm1_exhaustion_fails_cleanly () =
  let setup = fresh () in
  let rec drain n =
    if n > 0 then
      match run_op setup (rng ()) "SM1" with
      | (_ : int) -> drain (n - 1)
      | exception Failed _ -> ()
  in
  drain 100;
  (* Pool is now exhausted: SM1 must fail without corrupting state. *)
  (match run_op setup (rng ()) "SM1" with
  | (_ : int) -> Alcotest.fail "expected failure at capacity"
  | exception Failed _ -> ());
  I.Invariants.check_exn setup

let test_sm2_deletes_composite_part () =
  let setup = fresh () in
  let before = census setup in
  ignore (until_success (fun () -> run_op setup shared_rng "SM2"));
  let after = census setup in
  Alcotest.(check int) "one fewer"
    (before.I.Structure_stats.composite_parts - 1)
    after.I.Structure_stats.composite_parts;
  I.Invariants.check_exn setup

let test_sm3_sm4_link_unlink () =
  let setup = fresh () in
  let before = census setup in
  ignore (until_success (fun () -> run_op setup shared_rng "SM3"));
  let linked = census setup in
  Alcotest.(check int) "one more link"
    (before.I.Structure_stats.assembly_links + 1)
    linked.I.Structure_stats.assembly_links;
  I.Invariants.check_exn setup;
  ignore (until_success (fun () -> run_op setup shared_rng "SM4"));
  Alcotest.(check int) "link removed"
    before.I.Structure_stats.assembly_links
    (census setup).I.Structure_stats.assembly_links;
  I.Invariants.check_exn setup

let test_sm5_creates_sibling () =
  let setup = fresh () in
  let before = census setup in
  let id = until_success (fun () -> run_op setup shared_rng "SM5") in
  Alcotest.(check int) "one more base assembly"
    (before.I.Structure_stats.base_assemblies + 1)
    (census setup).I.Structure_stats.base_assemblies;
  (match setup.I.Setup.ba_id_index.get id with
  | Some ba ->
    Alcotest.(check int) "fresh sibling has no components" 0
      (List.length (Seq.read ba.T.ba_components))
  | None -> Alcotest.fail "new sibling not indexed");
  I.Invariants.check_exn setup

let test_sm6_deletes_base_assembly () =
  let setup = fresh () in
  let before = census setup in
  ignore (until_success (fun () -> run_op setup shared_rng "SM6"));
  Alcotest.(check int) "one fewer base assembly"
    (before.I.Structure_stats.base_assemblies - 1)
    (census setup).I.Structure_stats.base_assemblies;
  I.Invariants.check_exn setup

let test_sm7_grows_subtree () =
  let setup = fresh () in
  let before = census setup in
  let created = until_success (fun () -> run_op setup shared_rng "SM7") in
  let after = census setup in
  Alcotest.(check int) "assemblies created"
    (before.I.Structure_stats.base_assemblies
    + before.I.Structure_stats.complex_assemblies + created)
    (after.I.Structure_stats.base_assemblies
    + after.I.Structure_stats.complex_assemblies);
  I.Invariants.check_exn setup

let test_sm8_deletes_subtree () =
  let setup = fresh () in
  let before = census setup in
  let deleted = until_success (fun () -> run_op setup shared_rng "SM8") in
  let after = census setup in
  Alcotest.(check int) "assemblies deleted"
    (before.I.Structure_stats.base_assemblies
    + before.I.Structure_stats.complex_assemblies - deleted)
    (after.I.Structure_stats.base_assemblies
    + after.I.Structure_stats.complex_assemblies);
  Alcotest.(check bool) "subtree was non-trivial" true (deleted >= 1);
  I.Invariants.check_exn setup

let test_registry_complete () =
  Alcotest.(check int) "45 operations" 45 (List.length I.Operation.all);
  let codes = List.map (fun (o : I.Operation.t) -> o.code) I.Operation.all in
  Alcotest.(check int) "unique codes" 45
    (List.length (List.sort_uniq compare codes));
  List.iter
    (fun cat ->
      let n =
        List.length
          (List.filter
             (fun (o : I.Operation.t) -> Sb7_core.Category.equal o.category cat)
             I.Operation.all)
      in
      let expected =
        match cat with
        | Sb7_core.Category.Long_traversal -> 12
        | Sb7_core.Category.Short_traversal -> 10
        | Sb7_core.Category.Short_operation -> 15
        | Sb7_core.Category.Structure_modification -> 8
      in
      Alcotest.(check int) (Sb7_core.Category.to_string cat) expected n)
    Sb7_core.Category.all

let test_reduced_set () =
  let reduced =
    List.filter I.Operation.in_reduced_set I.Operation.all
    |> List.map (fun (o : I.Operation.t) -> o.code)
  in
  List.iter
    (fun excluded ->
      Alcotest.(check bool) (excluded ^ " excluded") false
        (List.mem excluded reduced))
    [ "ST5"; "OP4"; "OP5"; "OP11" ];
  Alcotest.(check bool) "ST1 kept" true (List.mem "ST1" reduced)

(* The memoized [by_code] table: every registered code resolves to the
   operation carrying that code, and unknown codes come back [None]
   (the error path every CLI/--only-op parse relies on). *)
let test_by_code_lookup () =
  List.iter
    (fun (op : I.Operation.t) ->
      match I.Operation.by_code op.code with
      | Some found ->
        Alcotest.(check string) ("lookup " ^ op.code) op.code found.code
      | None -> Alcotest.failf "known code %s not found" op.code)
    I.Operation.all;
  List.iter
    (fun bogus ->
      match I.Operation.by_code bogus with
      | None -> ()
      | Some op ->
        Alcotest.failf "unknown code %S resolved to %s" bogus op.code)
    [ "NOPE"; ""; "t1"; "T99"; "SM"; "OP" ]

let suite =
  [
    Alcotest.test_case "by_code lookup table" `Quick test_by_code_lookup;
    Alcotest.test_case "T1 counts per reference" `Quick
      test_t1_counts_per_reference;
    Alcotest.test_case "T6 counts roots" `Quick test_t6_counts_roots;
    Alcotest.test_case "Q7 counts all parts" `Quick test_q7_counts_all_parts;
    Alcotest.test_case "T2b twice restores x/y" `Quick
      test_t2b_twice_restores;
    Alcotest.test_case "T2c is x/y-identity" `Quick test_t2c_identity_on_xy;
    Alcotest.test_case "T2a only touches roots" `Quick
      test_t2a_touches_only_roots;
    Alcotest.test_case "T3a/b/c maintain date index" `Quick
      test_t3b_maintains_date_index;
    Alcotest.test_case "T4 matches independent count" `Quick
      test_t4_matches_independent_count;
    Alcotest.test_case "T5 twice restores documents" `Quick
      test_t5_twice_restores_documents;
    Alcotest.test_case "Q6 matches independent scan" `Quick
      test_q6_matches_independent_scan;
    Alcotest.test_case "ST1 fresh build" `Quick test_st1_succeeds_on_fresh_build;
    Alcotest.test_case "ST2 counts I" `Quick test_st2_counts_i;
    Alcotest.test_case "ST3 bounded" `Quick test_st3_bounded_by_complex_count;
    Alcotest.test_case "ST4 finds documents" `Quick test_st4_counts_visits;
    Alcotest.test_case "ST5 matches scan" `Quick
      test_st5_matches_q6_base_selection;
    Alcotest.test_case "ST9 visits whole graph" `Quick
      test_st9_visits_whole_graph;
    Alcotest.test_case "ST6/ST10 swap and restore" `Quick
      test_st6_st10_swap_and_restore;
    Alcotest.test_case "ST7 toggles one document" `Quick
      test_st7_toggles_one_document;
    Alcotest.test_case "ST8 updates assemblies" `Quick
      test_st8_updates_assemblies;
    Alcotest.test_case "OP1 bounds" `Quick test_op1_bounds;
    Alcotest.test_case "OP2 subset of OP3" `Quick test_op2_subset_of_op3;
    Alcotest.test_case "OP2 matches manual scan" `Quick
      test_op2_matches_manual_scan;
    Alcotest.test_case "OP4 counts manual" `Quick test_op4_counts_manual;
    Alcotest.test_case "OP5 first/last" `Quick test_op5_first_last;
    Alcotest.test_case "OP6/OP7 sibling counts" `Quick
      test_op6_op7_sibling_counts;
    Alcotest.test_case "OP8 component count" `Quick test_op8_component_count;
    Alcotest.test_case "OP9/OP10/OP15 invariants" `Quick
      test_op9_op15_keep_invariants;
    Alcotest.test_case "OP11 round trip" `Quick test_op11_toggle_roundtrip;
    Alcotest.test_case "OP12/13/14 invariants" `Quick
      test_op12_op13_op14_keep_invariants;
    Alcotest.test_case "SM1 creates" `Quick test_sm1_creates_composite_part;
    Alcotest.test_case "SM1 exhaustion clean" `Quick
      test_sm1_exhaustion_fails_cleanly;
    Alcotest.test_case "SM2 deletes" `Quick test_sm2_deletes_composite_part;
    Alcotest.test_case "SM3/SM4 link/unlink" `Quick test_sm3_sm4_link_unlink;
    Alcotest.test_case "SM5 sibling" `Quick test_sm5_creates_sibling;
    Alcotest.test_case "SM6 deletes base assembly" `Quick
      test_sm6_deletes_base_assembly;
    Alcotest.test_case "SM7 grows subtree" `Quick test_sm7_grows_subtree;
    Alcotest.test_case "SM8 deletes subtree" `Quick test_sm8_deletes_subtree;
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "reduced operation set" `Quick test_reduced_set;
  ]

let () = Alcotest.run "operations" [ ("operations", suite) ]
