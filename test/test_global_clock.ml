(* Unit tests for the global version clock: even-version invariant,
   tick uniqueness and monotonicity under concurrent tickers, and the
   GV4-style [tick_or_reuse] contract. *)

module Clock = Sb7_stm.Global_clock

let test_fresh_clock () =
  let c = Clock.create () in
  Alcotest.(check int) "starts at 0" 0 (Clock.now c)

let test_tick_sequence () =
  let c = Clock.create () in
  Alcotest.(check int) "first tick" 2 (Clock.tick c);
  Alcotest.(check int) "second tick" 4 (Clock.tick c);
  Alcotest.(check int) "now follows" 4 (Clock.now c);
  Alcotest.(check int) "always even" 0 (Clock.now c land 1)

let test_tick_or_reuse_uncontended () =
  let c = Clock.create () in
  (match Clock.tick_or_reuse c with
  | Clock.Ticked wv -> Alcotest.(check int) "uncontended CAS wins" 2 wv
  | Clock.Reused _ -> Alcotest.fail "no contention, must tick");
  Alcotest.(check int) "clock advanced" 2 (Clock.now c)

(* Concurrent [tick]: every returned value even, all distinct, and the
   final clock equals 2 * total ticks. *)
let test_concurrent_ticks_unique () =
  let c = Clock.create () in
  let domains = 4 and per_domain = 2_000 in
  let ds =
    List.init domains (fun _ ->
        Domain.spawn (fun () -> Array.init per_domain (fun _ -> Clock.tick c)))
  in
  let all = List.concat_map (fun d -> Array.to_list (Domain.join d)) ds in
  List.iter
    (fun v -> if v land 1 = 1 then Alcotest.failf "odd version %d" v)
    all;
  let sorted = List.sort_uniq compare all in
  Alcotest.(check int) "all ticks distinct" (domains * per_domain)
    (List.length sorted);
  Alcotest.(check int) "final value accounts for every tick"
    (2 * domains * per_domain)
    (Clock.now c)

(* Concurrent [tick_or_reuse]: values stay even and non-decreasing per
   domain, Ticked values are globally unique, and the final clock is
   2 * (number of successful CASes). *)
let test_concurrent_tick_or_reuse () =
  let c = Clock.create () in
  let domains = 4 and per_domain = 2_000 in
  let ds =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            let ticked = ref [] in
            let last = ref 0 in
            for _ = 1 to per_domain do
              let v =
                match Clock.tick_or_reuse c with
                | Clock.Ticked v ->
                  ticked := v :: !ticked;
                  v
                | Clock.Reused v -> v
              in
              if v land 1 = 1 then Alcotest.failf "odd version %d" v;
              if v < !last then
                Alcotest.failf "non-monotonic: %d after %d" v !last;
              if v = 0 then Alcotest.fail "write version 0";
              last := v
            done;
            !ticked))
  in
  let ticked = List.concat_map Domain.join ds in
  let unique = List.sort_uniq compare ticked in
  Alcotest.(check int) "Ticked values globally unique"
    (List.length ticked) (List.length unique);
  Alcotest.(check int) "final clock = 2 * successful CASes"
    (2 * List.length ticked)
    (Clock.now c)

let suite =
  [
    Alcotest.test_case "fresh clock" `Quick test_fresh_clock;
    Alcotest.test_case "tick sequence, even invariant" `Quick
      test_tick_sequence;
    Alcotest.test_case "tick_or_reuse uncontended" `Quick
      test_tick_or_reuse_uncontended;
    Alcotest.test_case "concurrent ticks unique+monotone" `Slow
      test_concurrent_ticks_unique;
    Alcotest.test_case "concurrent tick_or_reuse contract" `Slow
      test_concurrent_tick_or_reuse;
  ]

let () = Alcotest.run "global_clock" [ ("global_clock", suite) ]
