(* The domain-sharded statistics must aggregate exactly: after joining
   N hammering domains, [snapshot] equals the sum of the per-domain
   tallies (and the max for max_read_set), reset zeroes everything, and
   exited domains' shards are recycled without losing counts. *)

module Stats = Sb7_stm.Stm_stats

let spawn_hammers stats plan =
  let domains =
    List.map (fun work -> Domain.spawn (fun () -> work stats)) plan
  in
  List.iter Domain.join domains

let test_multi_domain_sums () =
  let stats = Stats.create () in
  (* Four domains, each with a distinct tally so a lost or
     double-counted shard is visible in the totals. *)
  let worker ~commits ~aborts ~ro ~steps ~rs_size stats =
    for _ = 1 to commits do
      Stats.record_commit stats ~read_only:false
    done;
    for _ = 1 to aborts do
      Stats.record_abort stats
    done;
    for _ = 1 to ro do
      Stats.record_ro_commit stats
    done;
    Stats.record_validation stats ~steps;
    Stats.record_read_set stats ~size:rs_size;
    Stats.record_tx_log stats ~dedup_hits:commits ~bloom_skips:aborts
      ~extensions:ro
  in
  let plan =
    [
      worker ~commits:100 ~aborts:1 ~ro:5 ~steps:10 ~rs_size:7;
      worker ~commits:200 ~aborts:2 ~ro:6 ~steps:20 ~rs_size:31;
      worker ~commits:300 ~aborts:3 ~ro:7 ~steps:30 ~rs_size:13;
      worker ~commits:400 ~aborts:4 ~ro:8 ~steps:40 ~rs_size:2;
    ]
  in
  spawn_hammers stats plan;
  let s = Stats.snapshot stats in
  (* commits = plain commits + ro commits (record_ro_commit bumps both). *)
  Alcotest.(check int) "commits" (1000 + 26) s.Stats.commits;
  Alcotest.(check int) "aborts" 10 s.Stats.aborts;
  Alcotest.(check int) "read_only_commits" 26 s.Stats.read_only_commits;
  Alcotest.(check int) "ro_zero_log_commits" 26 s.Stats.ro_zero_log_commits;
  Alcotest.(check int) "validation_steps" 100 s.Stats.validation_steps;
  Alcotest.(check int) "max_read_set is a max, not a sum" 31
    s.Stats.max_read_set;
  Alcotest.(check int) "read_set_entries" (7 + 31 + 13 + 2)
    s.Stats.read_set_entries;
  Alcotest.(check int) "dedup_hits" 1000 s.Stats.dedup_hits;
  Alcotest.(check int) "bloom_skips" 10 s.Stats.bloom_skips;
  Alcotest.(check int) "extensions" 26 s.Stats.extensions

let test_reset () =
  let stats = Stats.create () in
  spawn_hammers stats
    [
      (fun st ->
        for _ = 1 to 50 do
          Stats.record_commit st ~read_only:true
        done);
      (fun st ->
        Stats.record_abort st;
        Stats.record_read_set st ~size:9);
    ];
  Alcotest.(check bool) "counts present before reset" true
    ((Stats.snapshot stats).Stats.commits > 0);
  Stats.reset stats;
  let s = Stats.snapshot stats in
  Alcotest.(check int) "commits zeroed" 0 s.Stats.commits;
  Alcotest.(check int) "aborts zeroed" 0 s.Stats.aborts;
  Alcotest.(check int) "max_read_set zeroed" 0 s.Stats.max_read_set

(* Sequential waves of short-lived domains: exited domains' shards are
   returned to a free pool and recycled, so counts accumulate across
   waves instead of leaking one registry entry per domain. *)
let test_counts_survive_domain_exit () =
  let stats = Stats.create () in
  for _ = 1 to 8 do
    spawn_hammers stats
      [
        (fun st ->
          for _ = 1 to 25 do
            Stats.record_commit st ~read_only:false
          done);
      ]
  done;
  Alcotest.(check int) "8 waves x 25 commits" 200
    (Stats.snapshot stats).Stats.commits

(* Exhaustiveness: one call to every record function must leave every
   exported counter non-zero, and reset must zero them all. A counter
   added to the record but forgotten in the shard fold, in [reset] or
   in [to_assoc] fails here instead of silently exporting 0 (or a
   stale value) forever. *)
let test_every_counter_recorded_and_reset () =
  let stats = Stats.create () in
  spawn_hammers stats
    [
      (fun st ->
        Stats.record_commit st ~read_only:true;
        Stats.record_abort st;
        Stats.record_validation st ~steps:3;
        Stats.record_read_set st ~size:5;
        Stats.record_tx_log st ~dedup_hits:1 ~bloom_skips:1 ~extensions:1;
        Stats.record_clock_reuse st;
        Stats.record_ro_commit st;
        Stats.record_ro_revalidation st;
        Stats.record_ro_demotion st;
        Stats.record_checkpoints st ~count:2;
        Stats.record_partial_abort st ~reads_salvaged:4;
        Stats.record_resume_failure st;
        Stats.record_epoch_decision st;
        Stats.record_substrate_switch st;
        Stats.record_pool_hit st;
        Stats.record_pool_miss st);
    ];
  let live = Stats.to_assoc (Stats.snapshot stats) in
  Alcotest.(check bool) "at least the 21 known counters" true
    (List.length live >= 21);
  List.iter
    (fun (k, v) ->
      if v = 0 then
        Alcotest.failf "counter %s untouched by the all-paths recording" k)
    live;
  Stats.reset stats;
  List.iter
    (fun (k, v) ->
      if v <> 0 then Alcotest.failf "counter %s survived reset with %d" k v)
    (Stats.to_assoc (Stats.snapshot stats))

let () =
  Alcotest.run "stm_stats"
    [
      ( "sharded",
        [
          Alcotest.test_case "multi-domain sums" `Quick test_multi_domain_sums;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "counts survive domain exit" `Quick
            test_counts_survive_domain_exit;
          Alcotest.test_case "every counter recorded and reset" `Quick
            test_every_counter_recorded_and_reset;
        ] );
    ]
