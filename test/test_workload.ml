(* Tests for workload-ratio computation (paper Table 2) and operation
   sampling. *)

module W = Sb7_harness.Workload
module Category = Sb7_core.Category

let mk code category read_only : W.op_desc = { code; category; read_only }

(* A miniature operation set with every (category, kind) combination
   the real benchmark has. *)
let ops =
  [|
    mk "LT-r" Category.Long_traversal true;
    mk "LT-w" Category.Long_traversal false;
    mk "ST-r" Category.Short_traversal true;
    mk "ST-w" Category.Short_traversal false;
    mk "OP-r" Category.Short_operation true;
    mk "OP-w" Category.Short_operation false;
    mk "SM-w" Category.Structure_modification false;
  |]

let sum = Array.fold_left ( +. ) 0.

let test_ratios_sum_to_one () =
  List.iter
    (fun kind ->
      let r = W.ratios kind ops in
      Alcotest.(check (float 1e-9)) (W.kind_to_string kind) 1.0 (sum r))
    W.all_kinds

let test_read_dominated_prefers_reads () =
  let r = W.ratios W.Read_dominated ops in
  (* Same category, read-only vs update: 90/10. *)
  Alcotest.(check (float 1e-9)) "9x more reads" (9. *. r.(1)) r.(0);
  let w = W.ratios W.Write_dominated ops in
  Alcotest.(check (float 1e-9)) "9x more writes" (9. *. w.(0)) w.(1)

let test_category_proportions () =
  (* With one op per (category, kind) group, category totals follow
     Table 2 scaled by the read/update split. *)
  let r = W.ratios W.Read_write ops in
  let lt = r.(0) +. r.(1)
  and st = r.(2) +. r.(3)
  and op = r.(4) +. r.(5)
  and sm = r.(6) in
  (* ST : LT should be 40 : 5 = 8, for both kinds scale equally. *)
  Alcotest.(check (float 1e-9)) "ST/LT = 8" 8.0 (st /. lt);
  Alcotest.(check (float 1e-9)) "OP/LT = 9" 9.0 (op /. lt);
  (* SM has only the update share: (10 * 0.4) vs LT (5 * 1.0). *)
  Alcotest.(check (float 1e-9)) "SM/LT" (10. *. 0.4 /. 5.) (sm /. lt)

let test_group_members_share_equally () =
  let two_sts =
    Array.append ops [| mk "ST-r2" Category.Short_traversal true |]
  in
  let r = W.ratios W.Read_dominated two_sts in
  Alcotest.(check (float 1e-9)) "equal within group" r.(2) r.(7)

let test_real_operation_set () =
  (* Ratios over the full 45-operation set are a distribution and every
     operation gets a positive share. *)
  let module I = Sb7_core.Instance.Make (Sb7_runtime.Seq_runtime) in
  let descs =
    I.Operation.all
    |> List.map (fun (op : I.Operation.t) ->
           mk op.code op.category (I.Operation.read_only op))
    |> Array.of_list
  in
  Alcotest.(check int) "45 operations" 45 (Array.length descs);
  List.iter
    (fun kind ->
      let r = W.ratios kind descs in
      Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (sum r);
      Array.iter
        (fun x -> Alcotest.(check bool) "positive" true (x > 0.))
        r)
    W.all_kinds

let test_cdf_monotone_ends_at_one () =
  let r = W.ratios W.Read_write ops in
  let cdf = W.cdf r in
  let monotone = ref true in
  Array.iteri
    (fun i v -> if i > 0 && v < cdf.(i - 1) then monotone := false)
    cdf;
  Alcotest.(check bool) "monotone" true !monotone;
  Alcotest.(check (float 1e-9)) "ends at 1" 1.0 cdf.(Array.length cdf - 1)

let test_sample_respects_ratios () =
  let r = W.ratios W.Read_dominated ops in
  let cdf = W.cdf r in
  let rng = Sb7_core.Sb_random.create ~seed:99 in
  let counts = Array.make (Array.length ops) 0 in
  let n = 200_000 in
  for _ = 1 to n do
    let u = float_of_int (Sb7_core.Sb_random.int rng 1_000_000) /. 1_000_000. in
    let i = W.sample cdf u in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let achieved = float_of_int c /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "op %d achieved %.4f expected %.4f" i achieved r.(i))
        true
        (abs_float (achieved -. r.(i)) < 0.01))
    counts

let test_sample_boundaries () =
  let cdf = [| 0.25; 0.5; 1.0 |] in
  Alcotest.(check int) "u=0" 0 (W.sample cdf 0.);
  Alcotest.(check int) "u just below 1" 2 (W.sample cdf 0.999);
  Alcotest.(check int) "u=0.3" 1 (W.sample cdf 0.3)

(* The binary search in [sample] must agree everywhere with the linear
   scan it replaced: first index whose cumulative value exceeds the
   draw, clamped to [n-1]. Checked on random CDFs (including zero-width
   buckets from duplicate draws) and adversarial [u]s sitting exactly
   on bucket boundaries. *)
let test_sample_matches_linear_scan () =
  let linear_sample cdf u =
    let n = Array.length cdf in
    let rec find i = if i >= n - 1 || u < cdf.(i) then i else find (i + 1) in
    find 0
  in
  let rng = Sb7_core.Sb_random.create ~seed:77 in
  let random_cdf n =
    (* Random non-decreasing values ending at 1.0; repeated values give
       zero-probability buckets the search must skip consistently. *)
    let raw =
      Array.init n (fun _ -> float_of_int (Sb7_core.Sb_random.int rng 1_000))
    in
    Array.sort compare raw;
    let total = max raw.(n - 1) 1. in
    let cdf = Array.map (fun v -> v /. total) raw in
    cdf.(n - 1) <- 1.0;
    cdf
  in
  for _ = 1 to 200 do
    let n = 1 + Sb7_core.Sb_random.int rng 64 in
    let cdf = random_cdf n in
    (* Uniform draws... *)
    for _ = 1 to 100 do
      let u = float_of_int (Sb7_core.Sb_random.int rng 1_000_000) /. 1_000_000. in
      Alcotest.(check int)
        (Printf.sprintf "n=%d u=%f" n u)
        (linear_sample cdf u) (W.sample cdf u)
    done;
    (* ...and draws on/around every bucket boundary. *)
    Array.iter
      (fun edge ->
        List.iter
          (fun u ->
            if u >= 0. then
              Alcotest.(check int)
                (Printf.sprintf "n=%d boundary u=%f" n u)
                (linear_sample cdf u) (W.sample cdf u))
          [ edge -. epsilon_float; edge; edge +. epsilon_float ])
      cdf
  done

let test_kind_strings () =
  List.iter
    (fun kind ->
      match W.kind_of_string (W.kind_to_string kind) with
      | Ok k -> Alcotest.(check bool) "round trip" true (k = kind)
      | Error e -> Alcotest.fail e)
    W.all_kinds;
  (match W.kind_of_string "rw" with
  | Ok W.Read_write -> ()
  | _ -> Alcotest.fail "rw");
  match W.kind_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bogus"

let test_table2_constants () =
  Alcotest.(check int) "read-dominated 90%" 90
    (W.read_only_percent W.Read_dominated);
  Alcotest.(check int) "read-write 60%" 60 (W.read_only_percent W.Read_write);
  Alcotest.(check int) "write-dominated 10%" 10
    (W.read_only_percent W.Write_dominated);
  Alcotest.(check int) "LT 5%" 5 (W.category_percent Category.Long_traversal);
  Alcotest.(check int) "ST 40%" 40
    (W.category_percent Category.Short_traversal);
  Alcotest.(check int) "OP 45%" 45
    (W.category_percent Category.Short_operation);
  Alcotest.(check int) "SM 10%" 10
    (W.category_percent Category.Structure_modification)

let test_mix_parsing () =
  (match W.mix_of_string "5:40:45:10" with
  | Ok m ->
    Alcotest.(check bool) "default round trip" true (m = W.default_mix)
  | Error e -> Alcotest.fail e);
  (match W.mix_of_string "0:50:50:0" with
  | Ok m ->
    Alcotest.(check int) "lt 0" 0 m.W.long_traversals;
    Alcotest.(check int) "st 50" 50 m.W.short_traversals
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match W.mix_of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" bad)
    [ "1:2:3"; "1:2:3:4:5"; "a:b:c:d"; "-1:2:3:4"; "0:0:0:0"; "" ]

let test_mix_to_string_round_trip () =
  let m =
    {
      W.long_traversals = 1;
      short_traversals = 2;
      short_operations = 3;
      structure_mods = 4;
    }
  in
  match W.mix_of_string (W.mix_to_string m) with
  | Ok m' -> Alcotest.(check bool) "round trip" true (m = m')
  | Error e -> Alcotest.fail e

let test_custom_mix_zeroes_category () =
  let mix =
    {
      W.long_traversals = 0;
      short_traversals = 50;
      short_operations = 50;
      structure_mods = 0;
    }
  in
  let r = W.ratios ~mix W.Read_write ops in
  Alcotest.(check (float 1e-9)) "LT-r zero" 0. r.(0);
  Alcotest.(check (float 1e-9)) "LT-w zero" 0. r.(1);
  Alcotest.(check (float 1e-9)) "SM zero" 0. r.(6);
  Alcotest.(check (float 1e-9)) "still a distribution" 1.0 (sum r);
  (* Equal mix weights give equal category shares per kind group. *)
  Alcotest.(check (float 1e-9)) "ST = OP share" (r.(2) +. r.(3))
    (r.(4) +. r.(5))

let test_default_mix_equals_table2 () =
  List.iter
    (fun cat ->
      Alcotest.(check int)
        (Sb7_core.Category.to_string cat)
        (W.category_percent cat)
        (W.mix_percent W.default_mix cat))
    Sb7_core.Category.all

let suite =
  [
    Alcotest.test_case "ratios sum to one" `Quick test_ratios_sum_to_one;
    Alcotest.test_case "mix parsing" `Quick test_mix_parsing;
    Alcotest.test_case "mix round trip" `Quick test_mix_to_string_round_trip;
    Alcotest.test_case "custom mix zeroes category" `Quick
      test_custom_mix_zeroes_category;
    Alcotest.test_case "default mix = Table 2" `Quick
      test_default_mix_equals_table2;
    Alcotest.test_case "read/update split" `Quick
      test_read_dominated_prefers_reads;
    Alcotest.test_case "category proportions" `Quick test_category_proportions;
    Alcotest.test_case "groups share equally" `Quick
      test_group_members_share_equally;
    Alcotest.test_case "full 45-op set" `Quick test_real_operation_set;
    Alcotest.test_case "cdf shape" `Quick test_cdf_monotone_ends_at_one;
    Alcotest.test_case "sampling matches ratios" `Slow
      test_sample_respects_ratios;
    Alcotest.test_case "sample boundaries" `Quick test_sample_boundaries;
    Alcotest.test_case "binary search matches linear scan" `Quick
      test_sample_matches_linear_scan;
    Alcotest.test_case "kind strings" `Quick test_kind_strings;
    Alcotest.test_case "Table 2 constants" `Quick test_table2_constants;
  ]

let () = Alcotest.run "workload" [ ("workload", suite) ]
