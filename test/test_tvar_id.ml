(* The chunked tvar-id allocator: ids must stay unique across domains,
   gaps must stay bounded by chunk waste, and the distribution must
   remain friendly to the dedup cache's [id land (size-1)] indexing and
   the bloom filter's multiplicative hash. *)

module Tvar_id = Sb7_stm.Tvar_id

let ids_per_domain = 5000
let num_domains = 4

let allocate_across_domains () =
  let alloc = Tvar_id.create () in
  let parts =
    List.map Domain.join
      (List.init num_domains (fun _ ->
           Domain.spawn (fun () ->
               Array.init ids_per_domain (fun _ -> Tvar_id.fresh alloc))))
  in
  (alloc, Array.concat parts)

let test_unique_across_domains () =
  let _, ids = allocate_across_domains () in
  let total = num_domains * ids_per_domain in
  Alcotest.(check int) "total count" total (Array.length ids);
  let sorted = Array.copy ids in
  Array.sort compare sorted;
  let dups = ref 0 in
  for i = 1 to total - 1 do
    if sorted.(i) = sorted.(i - 1) then incr dups
  done;
  Alcotest.(check int) "no duplicate ids" 0 !dups;
  Array.iter (fun id -> assert (id >= 0)) ids

(* No gaps beyond chunk waste: the shared counter never advances more
   than one unfinished chunk per domain past the ids actually used. *)
let test_gap_bound () =
  let alloc, ids = allocate_across_domains () in
  let total = num_domains * ids_per_domain in
  let bound = Tvar_id.allocated_bound alloc in
  Alcotest.(check bool)
    (Printf.sprintf "bound %d covers all %d ids" bound total)
    true
    (bound >= total);
  Alcotest.(check bool)
    (Printf.sprintf "bound %d wastes at most %d per domain" bound
       (Tvar_id.chunk_size - 1))
    true
    (bound <= total + (num_domains * (Tvar_id.chunk_size - 1)));
  let mx = Array.fold_left max 0 ids in
  Alcotest.(check bool) "max id below the claimed bound" true (mx < bound)

(* The TL2/LSA dedup cache indexes with [id land (size-1)]; chunked
   allocation must keep the load across cache slots near-uniform (each
   chunk is a contiguous run, so residues are covered evenly). *)
let test_dedup_slot_distribution () =
  let _, ids = allocate_across_domains () in
  let slots = 2048 in
  let load = Array.make slots 0 in
  Array.iter (fun id -> load.(id land (slots - 1)) <- load.(id land (slots - 1)) + 1) ids;
  let total = Array.length ids in
  let mean = float_of_int total /. float_of_int slots in
  let mx = Array.fold_left max 0 load in
  Alcotest.(check bool)
    (Printf.sprintf "max slot load %d vs mean %.1f" mx mean)
    true
    (float_of_int mx <= mean *. 1.25)

(* The write-set bloom filter derives two bit positions from a
   multiplicative hash of the id; consecutive ids within a chunk must
   keep producing diverse patterns (no collapse to a few bits). *)
let test_bloom_pattern_diversity () =
  let bloom_bit id =
    let h = id * 0x9E3779B9 in
    (1 lsl (h land 31)) lor (1 lsl (31 + ((h lsr 5) land 31)))
  in
  let base = Tvar_id.chunk_size * 3 in
  let patterns = Hashtbl.create 64 in
  for id = base to base + 63 do
    Hashtbl.replace patterns (bloom_bit id) ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d distinct patterns over 64 consecutive ids"
       (Hashtbl.length patterns))
    true
    (Hashtbl.length patterns >= 48)

let () =
  Alcotest.run "tvar_id"
    [
      ( "allocator",
        [
          Alcotest.test_case "unique across domains" `Quick
            test_unique_across_domains;
          Alcotest.test_case "gap bound" `Quick test_gap_bound;
          Alcotest.test_case "dedup slot distribution" `Quick
            test_dedup_slot_distribution;
          Alcotest.test_case "bloom pattern diversity" `Quick
            test_bloom_pattern_diversity;
        ] );
    ]
