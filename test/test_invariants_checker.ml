(* The invariant checker checks the checker: deliberately corrupt a
   fresh structure in targeted ways and assert each corruption is
   detected. A checker that silently accepts broken structures would
   make every other integration test meaningless. *)

module Seq = Sb7_runtime.Seq_runtime
module I = Sb7_core.Instance.Make (Seq)
module P = Sb7_core.Parameters
module T = I.Types

let fresh () = I.Setup.create ~seed:51 P.tiny

let violations setup = I.Invariants.check setup

let expect_violation setup ~about =
  match violations setup with
  | [] -> Alcotest.failf "corruption (%s) not detected" about
  | _ -> ()

let some_cp setup =
  let found = ref None in
  setup.I.Setup.cp_id_index.iter (fun _ cp ->
      if !found = None then found := Some cp);
  Option.get !found

let some_ba setup =
  let found = ref None in
  setup.I.Setup.ba_id_index.iter (fun _ ba ->
      if !found = None then found := Some ba);
  Option.get !found

let some_ap setup =
  let found = ref None in
  setup.I.Setup.ap_id_index.iter (fun _ p ->
      if !found = None then found := Some p);
  Option.get !found

let test_clean_structure_passes () =
  Alcotest.(check (list string)) "no violations" [] (violations (fresh ()))

let test_detects_missing_index_entry () =
  let setup = fresh () in
  let cp = some_cp setup in
  ignore (setup.I.Setup.cp_id_index.remove cp.T.cp_id);
  expect_violation setup ~about:"composite part removed from index only"

let test_detects_dangling_ap_index_entry () =
  let setup = fresh () in
  let p = some_ap setup in
  (* Drop the part from the date index but not the ID index. *)
  I.Setup.date_index_remove setup p (Seq.read p.T.ap_build_date);
  expect_violation setup ~about:"date index missing a live part"

let test_detects_stale_date_bucket () =
  let setup = fresh () in
  let p = some_ap setup in
  (* Change the date without index maintenance. *)
  Seq.write p.T.ap_build_date (Seq.read p.T.ap_build_date + 1);
  expect_violation setup ~about:"build date changed without index update"

let test_detects_asymmetric_link () =
  let setup = fresh () in
  let ba = some_ba setup in
  let cp = some_cp setup in
  (* One-sided link: bag symmetry broken. *)
  Seq.write ba.T.ba_components (cp :: Seq.read ba.T.ba_components);
  expect_violation setup ~about:"one-sided base-assembly link"

let test_detects_orphan_assembly () =
  let setup = fresh () in
  let ba = some_ba setup in
  let parent = Option.get ba.T.ba_super in
  (* Detach from the tree but leave it in the index. *)
  I.Setup.detach_assembly parent (T.Base ba);
  expect_violation setup ~about:"indexed base assembly missing from tree"

let test_detects_pool_leak () =
  let setup = fresh () in
  (* Take an ID and drop it on the floor. *)
  ignore (I.Id_pool.get setup.I.Setup.cp_pool);
  expect_violation setup ~about:"leaked pool id"

let test_detects_id_reuse () =
  let setup = fresh () in
  let p = some_ap setup in
  (* Return a live part's id to the pool: the next allocation can hand
     it out again, aliasing two parts under one id. *)
  I.Id_pool.put_back setup.I.Setup.ap_pool p.T.ap_id;
  expect_violation setup ~about:"live atomic-part id returned to the pool"

let test_detects_broken_graph () =
  let setup = fresh () in
  let cp = some_cp setup in
  (* Cut all outgoing connections of the root part: DFS can no longer
     reach the whole graph. *)
  let root = Seq.read cp.T.cp_root_part in
  Seq.write root.T.ap_to [];
  expect_violation setup ~about:"disconnected atomic-part graph"

let test_detects_childless_complex () =
  let setup = fresh () in
  let ca =
    match Seq.read setup.I.Setup.module_.T.mod_design_root.T.ca_sub with
    | T.Complex c :: _ -> c
    | _ -> Alcotest.fail "unexpected shape"
  in
  Seq.write ca.T.ca_sub [];
  expect_violation setup ~about:"childless complex assembly"

let test_check_exn_raises () =
  let setup = fresh () in
  let cp = some_cp setup in
  ignore (setup.I.Setup.cp_id_index.remove cp.T.cp_id);
  match I.Invariants.check_exn setup with
  | () -> Alcotest.fail "check_exn accepted a broken structure"
  | exception Failure _ -> ()

let suite =
  [
    Alcotest.test_case "clean structure passes" `Quick
      test_clean_structure_passes;
    Alcotest.test_case "missing index entry" `Quick
      test_detects_missing_index_entry;
    Alcotest.test_case "date index desync" `Quick
      test_detects_dangling_ap_index_entry;
    Alcotest.test_case "stale date bucket" `Quick test_detects_stale_date_bucket;
    Alcotest.test_case "asymmetric link" `Quick test_detects_asymmetric_link;
    Alcotest.test_case "orphan assembly" `Quick test_detects_orphan_assembly;
    Alcotest.test_case "pool leak" `Quick test_detects_pool_leak;
    Alcotest.test_case "id reuse" `Quick test_detects_id_reuse;
    Alcotest.test_case "broken part graph" `Quick test_detects_broken_graph;
    Alcotest.test_case "childless complex assembly" `Quick
      test_detects_childless_complex;
    Alcotest.test_case "check_exn raises" `Quick test_check_exn_raises;
  ]

let () = Alcotest.run "invariants_checker" [ ("checker", suite) ]
