(** The benchmark driver: builds the structure, spawns the worker
    domains, mixes operations according to the workload ratios and
    collects per-thread statistics — the multi-threaded core the paper
    describes in §4 ("threads are uniform: each picks its next operation
    randomly from the whole pool"). *)

module Category = Sb7_core.Category
module Parameters = Sb7_core.Parameters
module Index_intf = Sb7_core.Index_intf

type config = {
  threads : int;
  duration_s : float;
  warmup_s : float;
      (** run (and discard) this much benchmark work before the measured
          window, letting caches, allocator and lock queues settle *)
  max_ops : int option;
      (** stop after this many operations per thread instead of (or in
          addition to) the time limit; used by tests *)
  workload : Workload.kind;
  mix : Workload.mix;
      (** relative category weights; Table 2 defaults unless overridden *)
  long_traversals : bool;
  structure_mods : bool;
  reduced_ops : bool;  (** restrict to the paper's §5 reduced set (Fig. 6) *)
  only_op : string option;
      (** run a single named operation in isolation (OO7-style latency
          measurement) instead of the workload mix *)
  dispatch : Dispatch.mode;
      (** how operations are distributed over worker domains: every
          worker samples the full mix, or workers get disjoint groups
          from the static conflict matrix (see {!Dispatch}) *)
  scale : Parameters.t;
  scale_name : string;
  index_kind : Index_intf.kind;
  seed : int;
  histograms : bool;
  sanitize : bool;
      (** record event traces during the measured window and run the
          {!Sb7_sanitize.Checker} analyses on them; requires the runtime
          to be wrapped in {!Sb7_sanitize.Sanitize.Make} (the harness
          flags an un-instrumented runtime as a finding) *)
  minor_heap : int option;
      (** size (in words) each worker domain sets its minor arena to on
          startup. [Gc.set minor_heap_size] only affects the calling
          domain — spawned domains start at the runtime default — so the
          resize must happen inside every worker, not once in the
          parent. The size in effect is recorded in the result so the
          GC-pressure columns stay interpretable. *)
}

(* Seeded footprint-escape bugs for `sb7-sanitize footprint --seeded`:
   when armed, the worker injects one out-of-region access into every
   execution of a chosen operation — a read of the manual's text during
   OP2 (whose static may-read set is {indexes, atomic-parts}) or a
   rewrite of it during OP9 (may-write {atomic-parts}). The injection
   lives here in the harness, outside the sync-free core the footprint
   analysis scans, so the static table stays honest and the dynamic
   replay must catch the divergence on its own. *)
module Unsafe = struct
  let escape_read = ref false
  let escape_write = ref false
  let read_escape () = escape_read := true
  let write_escape () = escape_write := true

  let reset () =
    escape_read := false;
    escape_write := false
end

let default_config =
  {
    threads = 1;
    duration_s = 10.;
    warmup_s = 0.;
    max_ops = None;
    workload = Workload.Read_dominated;
    mix = Workload.default_mix;
    long_traversals = true;
    structure_mods = true;
    reduced_ops = false;
    only_op = None;
    dispatch = Dispatch.Uniform;
    scale = Parameters.medium;
    scale_name = "medium";
    index_kind = Index_intf.Avl;
    seed = 42;
    histograms = false;
    sanitize = false;
    minor_heap = None;
  }

let apply_minor_heap = function
  | None -> ()
  | Some words -> Gc.set { (Gc.get ()) with Gc.minor_heap_size = words }

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  module I = Sb7_core.Instance.Make (R)
  module Sb_random = Sb7_core.Sb_random

  let enabled_operations config : I.Operation.t array =
    match config.only_op with
    | Some code -> (
      match I.Operation.by_code code with
      | Some op -> [| op |]
      | None -> invalid_arg (Printf.sprintf "unknown operation %S" code))
    | None ->
      I.Operation.all
      |> List.filter (fun (op : I.Operation.t) ->
             (config.long_traversals
             || not (Category.equal op.category Category.Long_traversal))
             && (config.structure_mods
                || not
                     (Category.equal op.category
                        Category.Structure_modification))
             && ((not config.reduced_ops) || I.Operation.in_reduced_set op))
      |> Array.of_list

  let describe (op : I.Operation.t) : Workload.op_desc =
    {
      code = op.code;
      category = op.category;
      read_only = I.Operation.read_only op;
    }

  let build_setup config =
    I.Setup.create ~index_kind:config.index_kind ~seed:config.seed
      config.scale

  (* --- Sanitizer structural sweep ---------------------------------- *)

  (* Observable cardinalities of the shared structure: the six Table 1
     indexes plus the free counts of the four id pools. Captured while
     tracing is off (reads emit no events). *)
  let cardinalities (setup : I.Setup.t) =
    let idx name (ix : (_, _) Index_intf.t) = (name, ix.Index_intf.size ()) in
    let pool name p = (name, I.Setup.Pool.available p) in
    [
      idx "ap-id-index" setup.I.Setup.ap_id_index;
      idx "ap-date-index" setup.I.Setup.ap_date_index;
      idx "cp-id-index" setup.I.Setup.cp_id_index;
      idx "doc-title-index" setup.I.Setup.doc_title_index;
      idx "ba-id-index" setup.I.Setup.ba_id_index;
      idx "ca-id-index" setup.I.Setup.ca_id_index;
      pool "ap-pool-free" setup.I.Setup.ap_pool;
      pool "cp-pool-free" setup.I.Setup.cp_pool;
      pool "ba-pool-free" setup.I.Setup.ba_pool;
      pool "ca-pool-free" setup.I.Setup.ca_pool;
    ]

  (* Post-run sweep: the live structure must satisfy every benchmark
     invariant, and if the trace shows no committed structural
     transaction, the cardinalities must not have moved at all. *)
  let structural_sweep ~(verdict : Sb7_sanitize.Checker.verdict) ~pre
      ~successes setup =
    let findings = ref [] in
    if successes > 0 && verdict.Sb7_sanitize.Checker.attempts = 0 then
      findings :=
        Printf.sprintf
          "no transaction events recorded although %d operations \
           succeeded: the runtime is not instrumented (wrap it in \
           Sanitize.Make, as Driver does for sanitized runs)"
          successes
        :: !findings;
    List.iter
      (fun v -> findings := ("invariant violated: " ^ v) :: !findings)
      (I.Invariants.check setup);
    if verdict.Sb7_sanitize.Checker.structural_commits = 0 then
      List.iter2
        (fun (name, before) (name', after) ->
          assert (String.equal name name');
          if before <> after then
            findings :=
              Printf.sprintf
                "%s changed %d -> %d although no structural transaction \
                 committed"
                name before after
              :: !findings)
        pre (cardinalities setup);
    List.rev !findings

  (* Spawn is sequential (and on a loaded machine, slow): without a
     barrier the first domain measures alone while the last is still
     being forked, which skews multi-domain throughput and the
     imbalance metric. Workers check in on [ready] and spin on [go];
     the main domain releases them together and only then starts the
     clock. The occasional micro-sleep keeps the spin from starving
     the still-spawning main domain when cores are oversubscribed. *)
  let await_start ~ready ~go =
    ignore (Atomic.fetch_and_add ready 1);
    let spins = ref 0 in
    while not (Atomic.get go) do
      incr spins;
      if !spins land 1023 = 0 then Unix.sleepf 0.0002
      else Domain.cpu_relax ()
    done

  (* The {!Unsafe} escapes, applied inside the operation's own atomic
     block so the access is attributed to the op by the trace. The
     rewrite writes the value back unchanged: semantically a no-op, but
     a region violation all the same. *)
  let inject_escape (op : I.Operation.t) (setup : I.Setup.t) =
    let man_text =
      lazy setup.I.Setup.module_.I.Setup.T.mod_manual.I.Setup.T.man_text
    in
    if !Unsafe.escape_read && String.equal op.code "OP2" then
      ignore (Sys.opaque_identity (R.read (Lazy.force man_text)));
    if !Unsafe.escape_write && String.equal op.code "OP9" then
      let tv = Lazy.force man_text in
      R.write tv (R.read tv)

  (* One worker thread: run operations until the stop flag rises (and,
     in max_ops mode, at most [budget] operations). *)
  let worker ~(ops : I.Operation.t array) ~cdf ~setup ~stop ~budget ~seed
      ~histograms =
    let rng = Sb_random.create ~seed in
    let stats = Stats.create ~ops:(Array.length ops) ~histograms in
    let uniform () =
      float_of_int (Sb_random.int rng 1_000_000) /. 1_000_000.
    in
    let executed = ref 0 in
    let within_budget () =
      match budget with
      | None -> true
      | Some b -> !executed < b
    in
    while (not (Atomic.get stop)) && within_budget () do
      let i = Workload.sample cdf (uniform ()) in
      let op = ops.(i) in
      let t0 = Unix.gettimeofday () in
      let ok =
        match
          R.atomic ~profile:op.profile (fun () ->
              inject_escape op setup;
              op.run rng setup)
        with
        | (_ : int) -> true
        | exception Sb7_core.Common.Operation_failed _ -> false
      in
      let latency = Unix.gettimeofday () -. t0 in
      Stats.record stats ~op:i ~latency_s:latency ~ok;
      incr executed
    done;
    stats

  let run ?setup config : Run_result.t =
    assert (config.threads >= 1);
    (* The main domain sizes its arena too, both so single-threaded
       setup/driver allocation runs under the requested regime and so
       the [minor_heap_words] read below reports the configured size. *)
    apply_minor_heap config.minor_heap;
    (* Per-domain backoff RNGs fold this in (see Backoff.for_domain),
       so contention behaviour is reproducible per seed without domains
       spinning in lockstep. *)
    Sb7_stm.Backoff.set_run_seed config.seed;
    let ops = enabled_operations config in
    let descs = Array.map describe ops in
    let expected = Workload.ratios ~mix:config.mix config.workload descs in
    let cdf = Workload.cdf expected in
    (* Conflict-aware dispatch: workers sample disjoint operation
       groups chosen from the static conflict matrix instead of the
       full mix (single-domain runs have nothing to separate). *)
    let groups =
      match config.dispatch with
      | Dispatch.Conflict_aware when config.threads > 1 ->
        Some
          (Dispatch.partition ~domains:config.threads ~descs ~ratios:expected)
      | Dispatch.Conflict_aware | Dispatch.Uniform -> None
    in
    let conflict_pairs =
      Dispatch.conflict_pairs ?groups ~domains:config.threads descs
    in
    let cdf_for worker =
      match groups with
      | None -> cdf
      | Some groups ->
        Workload.cdf (Dispatch.weights_for ~worker ~groups ~ratios:expected)
    in
    (* Stale region notes from an earlier run's structure would collide
       with this run's recycled sids (see Trace.reset_notes). Cleared
       before the structure is built so its notes are the only ones. *)
    if config.sanitize && Option.is_none setup then
      Sb7_sanitize.Trace.reset_notes ();
    let setup =
      match setup with
      | Some s -> s
      | None -> build_setup config
    in
    (* Warmup phase: same worker loop, results discarded. Skipped in
       max_ops mode, which exists for deterministic tests. *)
    if config.warmup_s > 0. && config.max_ops = None then begin
      let stop = Atomic.make false in
      let ready = Atomic.make 0 and go = Atomic.make false in
      let warm =
        List.init config.threads (fun i ->
            Domain.spawn (fun () ->
                apply_minor_heap config.minor_heap;
                await_start ~ready ~go;
                worker ~ops ~cdf:(cdf_for i) ~setup ~stop ~budget:None
                  ~seed:(config.seed + ((i + 1) * 104729))
                  ~histograms:false))
      in
      while Atomic.get ready < config.threads do
        Domain.cpu_relax ()
      done;
      Atomic.set go true;
      Unix.sleepf config.warmup_s;
      Atomic.set stop true;
      List.iter (fun d -> ignore (Domain.join d)) warm
    end;
    R.reset_stats ();
    (* Tracing covers exactly the measured window: warmup and setup
       writes carry version id 0 and need no events. Cardinalities are
       captured before enabling so the capture itself stays silent. *)
    let pre_cardinalities =
      if config.sanitize then begin
        Sb7_sanitize.Trace.reset ();
        Some (cardinalities setup)
      end
      else None
    in
    if config.sanitize then Sb7_sanitize.Trace.enable ();
    let stop = Atomic.make false in
    let ready = Atomic.make 0 and go = Atomic.make false in
    let domains =
      List.init config.threads (fun i ->
          Domain.spawn (fun () ->
              apply_minor_heap config.minor_heap;
              await_start ~ready ~go;
              worker ~ops ~cdf:(cdf_for i) ~setup ~stop ~budget:config.max_ops
                ~seed:(config.seed + ((i + 1) * 7919))
                ~histograms:config.histograms))
    in
    while Atomic.get ready < config.threads do
      Domain.cpu_relax ()
    done;
    (* Clock starts when every domain is released, not when the first
       one was spawned. GC counters bracket the same window so the
       per-1k-commits pressure columns cover exactly the measured
       work. *)
    let gc0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    Atomic.set go true;
    (match config.max_ops with
    | Some _ -> () (* threads stop on their own budget *)
    | None ->
      Unix.sleepf config.duration_s;
      Atomic.set stop true);
    let parts = List.map Domain.join domains in
    let elapsed = Unix.gettimeofday () -. t0 in
    let gc1 = Gc.quick_stat () in
    let stats =
      Stats.merge ~ops:(Array.length ops) ~histograms:config.histograms parts
    in
    let sanitizer =
      match pre_cardinalities with
      | None -> None
      | Some pre ->
        Sb7_sanitize.Trace.disable ();
        let dump = Sb7_sanitize.Trace.dump () in
        let profile = Sb7_sanitize.Checker.profile_of_runtime R.name in
        let verdict = Sb7_sanitize.Checker.analyze ~profile dump in
        let structural =
          structural_sweep ~verdict ~pre
            ~successes:(Stats.total_successes stats)
            setup
        in
        Some (Sb7_sanitize.Checker.with_structural verdict structural)
    in
    {
      runtime_name = R.name;
      workload = config.workload;
      mix = config.mix;
      threads = config.threads;
      requested_s = config.duration_s;
      elapsed_s = elapsed;
      ops = descs;
      expected;
      stats;
      per_domain_successes =
        Array.of_list (List.map Stats.total_successes parts);
      runtime_counters = R.stats ();
      scale_name = config.scale_name;
      index_kind = config.index_kind;
      long_traversals = config.long_traversals;
      structure_mods = config.structure_mods;
      reduced_ops = config.reduced_ops;
      dispatch = config.dispatch;
      conflict_pairs;
      minor_collections =
        gc1.Gc.minor_collections - gc0.Gc.minor_collections;
      major_collections =
        gc1.Gc.major_collections - gc0.Gc.major_collections;
      minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words;
      minor_heap_words = (Gc.get ()).Gc.minor_heap_size;
      seed = config.seed;
      sanitizer;
    }
end
