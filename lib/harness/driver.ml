(** Running a benchmark configuration against a runtime chosen by name
    at run time (first-class-module dispatch over {!Sb7_runtime.Registry}). *)

let run_with (runtime : Sb7_runtime.Registry.packed) (config : Benchmark.config)
    : Run_result.t =
  let module R = (val runtime : Sb7_runtime.Runtime_intf.S) in
  if config.Benchmark.sanitize then
    (* The instrumented drop-in: same Runtime_intf.S, every tvar access
       and attempt boundary recorded while tracing is enabled. *)
    let module S = Sb7_sanitize.Sanitize.Make (R) in
    let module B = Benchmark.Make (S) in
    B.run config
  else
    let module B = Benchmark.Make (R) in
    B.run config

let run ~runtime_name (config : Benchmark.config) :
    (Run_result.t, string) result =
  match Sb7_runtime.Registry.find runtime_name with
  | Error _ as e -> e
  | Ok runtime -> Ok (run_with runtime config)
