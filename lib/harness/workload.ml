(** Workload types and operation-ratio computation (paper §3, Table 2).

    The benchmark assigns execution ratios to operations from two
    user-level knobs: the workload type, which fixes the read-only /
    update split (90/10, 60/40 or 10/90), and the category ratios of
    Table 2 (long traversals 5%, short traversals 40%, short operations
    45%, structure modifications 10%).

    An individual operation's weight is

      category_ratio × kind_ratio / |enabled ops in the same
      (category, read-only?) group|

    normalized over all enabled operations — operations of the same
    category and kind run in equal proportions, as the paper specifies.
    Structure modifications are all updates, so their effective share
    shrinks below Table 2's 10% under read-dominated workloads and
    grows under write-dominated ones. *)

module Category = Sb7_core.Category

type kind =
  | Read_dominated
  | Read_write
  | Write_dominated

let kind_to_string = function
  | Read_dominated -> "r"
  | Read_write -> "rw"
  | Write_dominated -> "w"

let kind_long_name = function
  | Read_dominated -> "read-dominated"
  | Read_write -> "read-write"
  | Write_dominated -> "write-dominated"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "r" | "read" | "read-dominated" -> Ok Read_dominated
  | "rw" | "read-write" -> Ok Read_write
  | "w" | "write" | "write-dominated" -> Ok Write_dominated
  | other -> Error (Printf.sprintf "unknown workload type %S (expected r | rw | w)" other)

let all_kinds = [ Read_dominated; Read_write; Write_dominated ]

(** Read-only percentage of the workload (Table 2, columns). *)
let read_only_percent = function
  | Read_dominated -> 90
  | Read_write -> 60
  | Write_dominated -> 10

(** A category mix: the relative weights of the four operation
    categories. Table 2's defaults are {!default_mix}; the paper's §6
    calls for exploring more ("more workloads need to be explored"),
    which the [--mix] option enables. *)
type mix = {
  long_traversals : int;
  short_traversals : int;
  short_operations : int;
  structure_mods : int;
}

let default_mix =
  {
    long_traversals = 5;
    short_traversals = 40;
    short_operations = 45;
    structure_mods = 10;
  }

let mix_to_string m =
  Printf.sprintf "%d:%d:%d:%d" m.long_traversals m.short_traversals
    m.short_operations m.structure_mods

(** Parse "LT:ST:OP:SM", e.g. "5:40:45:10". Weights are relative and
    must be non-negative with a positive sum. *)
let mix_of_string s =
  match String.split_on_char ':' s |> List.map int_of_string_opt with
  | [ Some lt; Some st; Some op; Some sm ]
    when lt >= 0 && st >= 0 && op >= 0 && sm >= 0 && lt + st + op + sm > 0 ->
    Ok
      {
        long_traversals = lt;
        short_traversals = st;
        short_operations = op;
        structure_mods = sm;
      }
  | _ ->
    Error
      (Printf.sprintf
         "invalid mix %S (expected LT:ST:OP:SM, e.g. \"5:40:45:10\")" s)

let mix_percent mix = function
  | Category.Long_traversal -> mix.long_traversals
  | Category.Short_traversal -> mix.short_traversals
  | Category.Short_operation -> mix.short_operations
  | Category.Structure_modification -> mix.structure_mods

(** Category percentage (Table 2, rows). *)
let category_percent = mix_percent default_mix

(** Metadata the ratio computation needs about one operation. *)
type op_desc = {
  code : string;
  category : Category.t;
  read_only : bool;
}

(** Per-operation probabilities for the enabled operation set; sums
    to 1. *)
let ratios ?(mix = default_mix) (kind : kind) (ops : op_desc array) :
    float array =
  let ro_pct = float_of_int (read_only_percent kind) /. 100. in
  let kind_ratio ro = if ro then ro_pct else 1. -. ro_pct in
  let group_size desc =
    Array.fold_left
      (fun acc o ->
        if Category.equal o.category desc.category && o.read_only = desc.read_only
        then acc + 1
        else acc)
      0 ops
  in
  let weight desc =
    let cat = float_of_int (mix_percent mix desc.category) /. 100. in
    cat *. kind_ratio desc.read_only /. float_of_int (group_size desc)
  in
  let weights = Array.map weight ops in
  let total = Array.fold_left ( +. ) 0. weights in
  assert (total > 0.);
  Array.map (fun w -> w /. total) weights

(** Cumulative distribution over the same array, for sampling: the
    operation to run is the first index whose cumulative value exceeds
    a uniform [0,1) draw. *)
let cdf ratios =
  let acc = ref 0. in
  Array.map
    (fun r ->
      acc := !acc +. r;
      !acc)
    ratios

(* Binary search for the first index with [u < cdf.(i)] — the CDF is
   non-decreasing, so "u < cdf.(i)" is monotone in [i]. Clamped to
   [n - 1] (the last cumulative value is 1.0 only up to rounding, and
   a degenerate all-zero tail must still pick a valid index), matching
   the linear scan's [i >= n - 1] guard. Sampling happens once per
   operation pick on every worker thread, so over 45 operations this
   replaces an average ~23-probe walk with ~6. *)
let sample cdf u =
  let n = Array.length cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  (* invariant: answer is in [lo, hi] *)
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if u < cdf.(mid) then hi := mid else lo := mid + 1
  done;
  !lo
