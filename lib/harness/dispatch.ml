(* See dispatch.mli. *)

module OF = Sb7_core.Op_footprint

type mode =
  | Uniform
  | Conflict_aware

let mode_to_string = function
  | Uniform -> "uniform"
  | Conflict_aware -> "conflict-aware"

let mode_of_string s =
  match String.lowercase_ascii s with
  | "uniform" -> Ok Uniform
  | "conflict-aware" | "conflict" | "ca" -> Ok Conflict_aware
  | other ->
    Error
      (Printf.sprintf "unknown dispatch mode %S (expected uniform | conflict-aware)"
         other)

(* Pairwise conflict weight from the static table. Operations the table
   does not know (synthetic test codes) are assumed to conflict with
   everything — the conservative direction for a scheduler. *)
let weight (a : Workload.op_desc) (b : Workload.op_desc) =
  match (OF.find a.Workload.code, OF.find b.Workload.code) with
  | Some ea, Some eb -> (
    match OF.classify ea eb with
    | `Write_write -> 4.
    | `Read_write -> 1.
    | `Read_read | `Disjoint -> 0.)
  | _ -> 4.

let conflicting a b = weight a b > 0.

(* Greedy balanced clustering: place each operation (heaviest expected
   share first) in the group it has the highest conflict affinity with,
   under a load cap — conflicting operations end up on the SAME domain,
   where program order serializes them for free, and what runs
   concurrently across domains is as disjoint as the matrix allows.
   Affinity and load are both weighted by the expected execution
   ratios: a conflict between two rare operations matters less than one
   between two hot ones. *)
let partition ~domains ~(descs : Workload.op_desc array) ~ratios =
  let n = Array.length descs in
  let groups = Array.make n 0 in
  let k = min domains (max 1 n) in
  if k > 1 then begin
    let order = Array.init n Fun.id in
    Array.sort (fun i j -> compare ratios.(j) ratios.(i)) order;
    let total = Array.fold_left ( +. ) 0. ratios in
    (* 25% headroom over a perfectly even split: enough slack to keep a
       conflict clique together, not enough to starve a domain. *)
    let cap = total /. float_of_int k *. 1.25 in
    let load = Array.make k 0. in
    let members = Array.make k [] in
    Array.iter
      (fun i ->
        let affinity g =
          List.fold_left
            (fun acc j ->
              acc +. (ratios.(i) *. ratios.(j) *. weight descs.(i) descs.(j)))
            0. members.(g)
        in
        let fits g = load.(g) +. ratios.(i) <= cap in
        let best = ref 0 and best_score = ref neg_infinity in
        for g = 0 to k - 1 do
          (* Lexicographic: a fitting group always beats an overfull
             one; within a tier, max affinity, then min load. *)
          let score =
            (if fits g then 1e6 else 0.) +. affinity g -. (1e-6 *. load.(g))
          in
          if score > !best_score then begin
            best := g;
            best_score := score
          end
        done;
        groups.(i) <- !best;
        load.(!best) <- load.(!best) +. ratios.(i);
        members.(!best) <- i :: members.(!best))
      order
  end;
  groups

(* A group can come out empty (more domains than operations, or the
   cap packing everything tightly); its workers fall back to the full
   mix rather than spinning on a degenerate CDF. *)
let weights_for ~worker ~groups ~ratios =
  let n = Array.length ratios in
  let g =
    let distinct = Array.fold_left max 0 groups + 1 in
    worker mod distinct
  in
  let w = Array.make n 0. in
  let sum = ref 0. in
  for i = 0 to n - 1 do
    if groups.(i) = g && ratios.(i) > 0. then begin
      w.(i) <- ratios.(i);
      sum := !sum +. ratios.(i)
    end
  done;
  if !sum <= 0. then Array.copy ratios
  else begin
    (* Renormalize: the sampler treats the weights as a distribution
       (draws past the last cumulative value clamp to the final op). *)
    let s = !sum in
    Array.map (fun x -> x /. s) w
  end

(* Unordered pairs of operations that can run concurrently on distinct
   domains and statically conflict. Under uniform dispatch any pair can
   collide, the same operation against itself included; a partition
   removes the same-group pairs (and every self pair). Zero when only
   one domain runs. *)
let conflict_pairs ?groups ~domains (descs : Workload.op_desc array) =
  if domains <= 1 then 0
  else begin
    let n = Array.length descs in
    let count = ref 0 in
    for i = 0 to n - 1 do
      for j = i to n - 1 do
        let concurrent =
          match groups with
          | None -> true
          | Some g -> g.(i) <> g.(j)
        in
        if concurrent && conflicting descs.(i) descs.(j) then incr count
      done
    done;
    !count
  end
