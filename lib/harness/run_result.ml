(** The outcome of one benchmark run, independent of the runtime
    functor so reports and bench harnesses can treat all strategies
    uniformly. *)

type t = {
  runtime_name : string;
  workload : Workload.kind;
  mix : Workload.mix;
  threads : int;
  requested_s : float;
  elapsed_s : float;
  ops : Workload.op_desc array;
  expected : float array; (* expected per-op ratios, parallel to [ops] *)
  stats : Stats.t; (* merged across threads, parallel to [ops] *)
  per_domain_successes : int array;
      (* successful operations per worker domain, in spawn order *)
  runtime_counters : (string * int) list;
  scale_name : string;
  index_kind : Sb7_core.Index_intf.kind;
  long_traversals : bool;
  structure_mods : bool;
  reduced_ops : bool;
  dispatch : Dispatch.mode;
  conflict_pairs : int;
      (* unordered statically-conflicting op pairs that could run
         concurrently on distinct domains under this dispatch mode *)
  minor_collections : int;
      (* Gc.quick_stat delta over the measured window, observed from
         the coordinating domain — a process-wide allocation-pressure
         proxy, not an exact per-domain count *)
  major_collections : int;
  minor_words : float;
      (* Gc.quick_stat minor_words delta over the same window: words
         allocated on the minor heaps, the direct measure the
         collection counts only proxy (a bigger minor heap lowers
         minor_collections without changing allocation at all) *)
  minor_heap_words : int;
      (* minor heap size (words) the run executed under, so recorded
         GC pressure can be interpreted (and the --minor-heap knob
         audited) from the result alone *)
  seed : int;
  sanitizer : Sb7_sanitize.Checker.verdict option;
      (* None when the run was not sanitized *)
}

(** Value of a named runtime counter, 0 when the runtime does not
    report it (lock runtimes report no STM counters). *)
let counter t name =
  Option.value (List.assoc_opt name t.runtime_counters) ~default:0

(* Tournament champion-occupancy breakdown: the meta-runtime exports
   one ["champion_epochs_<substrate>"] counter per substrate; strip
   the prefix and keep declaration order. Empty for every
   single-substrate runtime. *)
let champion_occupancy t =
  let prefix = "champion_epochs_" in
  List.filter_map
    (fun (k, v) ->
      if String.starts_with ~prefix k then
        Some (String.sub k (String.length prefix) (String.length k - String.length prefix), v)
      else None)
    t.runtime_counters

let op_index t code =
  let found = ref None in
  Array.iteri (fun i (o : Workload.op_desc) -> if String.equal o.code code then found := Some i) t.ops;
  !found

(** Successful operations per second. *)
let throughput t =
  if t.elapsed_s <= 0. then 0.
  else float_of_int (Stats.total_successes t.stats) /. t.elapsed_s

(** Commit imbalance across worker domains: max per-domain successes
    over the mean. 1.0 means perfectly even progress; values well above
    1.0 mean some domains starved (backoff unfairness, lock convoys, a
    domain parked on a long traversal). Defined as 1.0 for runs with at
    most one domain or no successes at all. *)
let commit_imbalance t =
  let n = Array.length t.per_domain_successes in
  if n <= 1 then 1.0
  else begin
    let total = Array.fold_left ( + ) 0 t.per_domain_successes in
    if total = 0 then 1.0
    else begin
      let mx = Array.fold_left max 0 t.per_domain_successes in
      float_of_int mx /. (float_of_int total /. float_of_int n)
    end
  end

(* GC pressure normalized per 1000 committed operations, so runs of
   different lengths and throughputs compare directly; 0 when nothing
   committed. *)
let per_1k_commits t n =
  let c = Stats.total_successes t.stats in
  if c = 0 then 0. else 1000. *. float_of_int n /. float_of_int c

(** Minor (resp. major) collections per 1000 successful operations
    during the measured window. *)
let minor_gc_per_1k_commits t = per_1k_commits t t.minor_collections

let major_gc_per_1k_commits t = per_1k_commits t t.major_collections

(** Minor-heap words allocated per successful operation during the
    measured window — the allocation budget the descriptor pool and
    SoA logs are sized against; 0 when nothing committed. *)
let minor_words_per_commit t =
  let c = Stats.total_successes t.stats in
  if c = 0 then 0. else t.minor_words /. float_of_int c

(** Started (successful or failed) operations per second. *)
let attempts_throughput t =
  if t.elapsed_s <= 0. then 0.
  else float_of_int (Stats.total_attempts t.stats) /. t.elapsed_s

(** Maximum observed latency of one operation, in ms (0 if it never
    completed successfully). *)
let max_latency_ms t ~code =
  match op_index t code with
  | None -> 0.
  | Some i -> t.stats.Stats.per_op.(i).Stats.max_latency_ms

let successes t ~code =
  match op_index t code with
  | None -> 0
  | Some i -> t.stats.Stats.per_op.(i).Stats.successes

(** Per-category aggregate: successes, failures, attempts, max latency. *)
let category_totals t category =
  let successes = ref 0 and failures = ref 0 and max_ms = ref 0. in
  Array.iteri
    (fun i (o : Workload.op_desc) ->
      if Sb7_core.Category.equal o.category category then begin
        let s = t.stats.Stats.per_op.(i) in
        successes := !successes + s.Stats.successes;
        failures := !failures + s.Stats.failures;
        if s.Stats.max_latency_ms > !max_ms then max_ms := s.Stats.max_latency_ms
      end)
    t.ops;
  (!successes, !failures, !max_ms)
