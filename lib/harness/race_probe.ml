(** Live seeded race for the R7 static/dynamic cross-check
    (docs/LINT.md, "R7 — domain-escape").

    The armed branch of {!run} increments a captured counter from
    several spawned domains with no guard at all — exactly the
    "unguarded counter captured by a spawned closure" shape lint R7
    flags statically. [sb7-sanitize domain-race] demonstrates the
    correspondence: the static finding at the armed increment is a real
    race (lost updates observable dynamically), mirroring the
    R3↔checker lock-rank cross-check.

    The default lint configuration waives this unit wholesale
    (Lint_config.r7_allowed); the sanitizer re-runs the engine with
    that waiver stripped and demands the finding come back. *)

module Unsafe = struct
  (* The flag itself is an Atomic so the probe's only racy location is
     the counter under test; never arm outside sanitizer fixtures. *)
  let armed = Atomic.make false
  let arm () = Atomic.set armed true
  let reset () = Atomic.set armed false
end

type outcome = {
  expected : int;  (** domains × iters *)
  unguarded : int;  (** the probe counter: < expected means lost updates *)
  guarded : int;  (** mutex-guarded control counter: always = expected *)
}

let run ~domains ~iters () =
  let unguarded = ref 0 in
  let guarded = ref 0 in
  let m = Mutex.create () in
  (* Spawning a domain takes far longer than the increment loop, so
     without a start barrier the domains would run back-to-back and
     never actually contend. *)
  let ready = Atomic.make 0 in
  let ds =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            Atomic.incr ready;
            while Atomic.get ready < domains do
              Domain.cpu_relax ()
            done;
            if Atomic.get Unsafe.armed then begin
              let scratch = ref 0 in
              for _ = 1 to iters do
                (* The live seeded race: read-modify-write of the
                   captured ref with no synchronization; concurrent
                   domains overwrite each other's increments. The
                   scratch loop widens the load-to-store window so the
                   loss is overwhelmingly likely even on a single-core
                   host, where preemption is the only interleaving. *)
                let v = !unguarded in
                for _ = 1 to 50 do
                  incr scratch
                done;
                unguarded := v + 1
              done;
              ignore (Sys.opaque_identity !scratch)
            end
            else
              for _ = 1 to iters do
                Mutex.lock m;
                unguarded := !unguarded + 1;
                Mutex.unlock m
              done;
            Mutex.lock m;
            guarded := !guarded + iters;
            Mutex.unlock m))
  in
  List.iter Domain.join ds;
  { expected = domains * iters; unguarded = !unguarded; guarded = !guarded }
