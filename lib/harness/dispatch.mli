(** Conflict-aware operation dispatch.

    The sb7-footprint analysis (docs/FOOTPRINT.md) gives every
    operation a static may-read / may-write footprint over the
    abstract-region lattice, and every operation pair a conflict class.
    This module turns that matrix into a scheduling policy: cluster
    statically-conflicting operations onto the same worker domain —
    where program order serializes them without a single abort — so the
    operations running {e concurrently} are as disjoint as the matrix
    allows. On write-heavy mixes this trades nothing but mix uniformity
    for a lower abort rate; the quick bench records both
    ([conflict_pairs], [abort_rate]) per mode. *)

type mode =
  | Uniform  (** every worker samples the full mix (the paper's §4 default) *)
  | Conflict_aware
      (** workers sample disjoint operation groups from the greedy
          min-cross-conflict partition *)

val mode_to_string : mode -> string
val mode_of_string : string -> (mode, string) result

(** Static conflict verdict for a pair, via {!Sb7_core.Op_footprint}
    ([`Write_write] and [`Read_write] conflict); operations outside the
    table conservatively conflict with everything. *)
val conflicting : Workload.op_desc -> Workload.op_desc -> bool

(** [partition ~domains ~descs ~ratios] assigns each operation a group
    in [0, domains): greedy balanced clustering, heaviest expected
    share first, maximizing ratio-weighted conflict affinity within a
    group under a 25% load-headroom cap. *)
val partition :
  domains:int -> descs:Workload.op_desc array -> ratios:float array -> int array

(** Per-worker sampling weights: the global ratios restricted to the
    worker's group (workers cycle through the distinct groups), or the
    full ratio vector when the group came out empty. *)
val weights_for :
  worker:int -> groups:int array -> ratios:float array -> float array

(** Number of unordered operation pairs that can run concurrently on
    distinct domains and statically conflict — same-op self pairs
    included under uniform dispatch, same-group pairs excluded under a
    partition, 0 when [domains <= 1]. *)
val conflict_pairs :
  ?groups:int array -> domains:int -> Workload.op_desc array -> int
