(** Benchmark output, following the sections of the paper's Appendix A:
    benchmark parameters, optional TTC histograms, detailed per-operation
    results, sample errors, and summary results. *)

module Category = Sb7_core.Category

let section ppf title =
  Format.fprintf ppf "@.-- %s --@." title

let print_parameters ppf (r : Run_result.t) =
  section ppf "Benchmark parameters";
  Format.fprintf ppf "Synchronization:      %s@." r.runtime_name;
  Format.fprintf ppf "Workload:             %s@."
    (Workload.kind_long_name r.workload);
  if r.mix <> Workload.default_mix then
    Format.fprintf ppf "Category mix:         %s (LT:ST:OP:SM)@."
      (Workload.mix_to_string r.mix);
  Format.fprintf ppf "Threads:              %d@." r.threads;
  Format.fprintf ppf "Length:               %.1f s (elapsed %.2f s)@."
    r.requested_s r.elapsed_s;
  Format.fprintf ppf "Scale:                %s@." r.scale_name;
  Format.fprintf ppf "Index kind:           %s@."
    (Sb7_core.Index_intf.kind_to_string r.index_kind);
  Format.fprintf ppf "Long traversals:      %s@."
    (if r.long_traversals then "enabled" else "disabled");
  Format.fprintf ppf "Structure mods:       %s@."
    (if r.structure_mods then "enabled" else "disabled");
  if r.reduced_ops then
    Format.fprintf ppf "Operation set:        reduced (§5)@.";
  if r.dispatch <> Dispatch.Uniform then
    Format.fprintf ppf "Dispatch:             %s (%d conflicting pairs across domains)@."
      (Dispatch.mode_to_string r.dispatch)
      r.conflict_pairs

let print_histograms ppf (r : Run_result.t) =
  if r.stats.Stats.with_histograms then begin
    section ppf "TTC histograms";
    Array.iteri
      (fun i (o : Workload.op_desc) ->
        let h = r.stats.Stats.per_op.(i).Stats.histogram in
        if h <> [||] then begin
          Format.fprintf ppf "TTC histogram for %s:" o.code;
          Array.iteri
            (fun ttc count ->
              if count > 0 then Format.fprintf ppf " %d,%d" ttc count)
            h;
          Format.fprintf ppf "@."
        end)
      r.ops
  end

let print_detailed ppf (r : Run_result.t) =
  section ppf "Detailed results";
  let with_percentiles = r.stats.Stats.with_histograms in
  if with_percentiles then
    Format.fprintf ppf "%-6s %12s %16s %10s %10s %10s@." "op" "successes"
      "max latency [ms]" "failures" "p50 [ms]" "p99 [ms]"
  else
    Format.fprintf ppf "%-6s %12s %16s %10s@." "op" "successes"
      "max latency [ms]" "failures";
  Array.iteri
    (fun i (o : Workload.op_desc) ->
      let s = r.stats.Stats.per_op.(i) in
      if with_percentiles then begin
        let pct q =
          match Stats.percentile_ms s q with
          | Some ms -> Printf.sprintf "%.0f" ms
          | None -> "-"
        in
        Format.fprintf ppf "%-6s %12d %16.2f %10d %10s %10s@." o.code
          s.Stats.successes s.Stats.max_latency_ms s.Stats.failures
          (pct 0.5) (pct 0.99)
      end
      else
        Format.fprintf ppf "%-6s %12d %16.2f %10d@." o.code s.Stats.successes
          s.Stats.max_latency_ms s.Stats.failures)
    r.ops

(* Per-operation sample errors: C = ratio computed from the input
   parameters, R = achieved ratio among successful operations,
   E = |C - R|; A = achieved ratio among started (successful or failed)
   operations, F = |A - R|. *)
let sample_errors (r : Run_result.t) =
  let total_s = max 1 (Stats.total_successes r.stats) in
  let total_a = max 1 (Stats.total_attempts r.stats) in
  Array.mapi
    (fun i (_ : Workload.op_desc) ->
      let s = r.stats.Stats.per_op.(i) in
      let c = r.expected.(i) in
      let rr = float_of_int s.Stats.successes /. float_of_int total_s in
      let a = float_of_int (Stats.attempts s) /. float_of_int total_a in
      (c, rr, abs_float (c -. rr), a, abs_float (a -. rr)))
    r.ops

let print_sample_errors ppf (r : Run_result.t) =
  section ppf "Sample errors";
  Format.fprintf ppf "%-6s %8s %8s %8s %8s %8s@." "op" "C" "R" "E" "A" "F";
  let errors = sample_errors r in
  Array.iteri
    (fun i (o : Workload.op_desc) ->
      let c, rr, e, a, f = errors.(i) in
      Format.fprintf ppf "%-6s %8.4f %8.4f %8.4f %8.4f %8.4f@." o.code c rr e
        a f)
    r.ops

let print_summary ppf (r : Run_result.t) =
  section ppf "Summary results";
  Format.fprintf ppf "%-24s %10s %16s %10s %10s@." "category" "successes"
    "max latency [ms]" "failures" "started";
  List.iter
    (fun cat ->
      let s, f, max_ms = Run_result.category_totals r cat in
      if s + f > 0 then
        Format.fprintf ppf "%-24s %10d %16.2f %10d %10d@."
          (Category.to_string cat) s max_ms f (s + f))
    Category.all;
  let errors = sample_errors r in
  let e_total = Array.fold_left (fun acc (_, _, e, _, _) -> acc +. e) 0. errors in
  let f_total = Array.fold_left (fun acc (_, _, _, _, f) -> acc +. f) 0. errors in
  Format.fprintf ppf "Total sample error E: %.4f  F: %.4f@." e_total f_total;
  Format.fprintf ppf
    "Total throughput:     %.1f op/s completed, %.1f op/s started@."
    (Run_result.throughput r)
    (Run_result.attempts_throughput r);
  Format.fprintf ppf "Elapsed time:         %.2f s@." r.elapsed_s;
  Format.fprintf ppf
    "GC pressure:          %.2f minor / %.2f major collections per 1k \
     commits@."
    (Run_result.minor_gc_per_1k_commits r)
    (Run_result.major_gc_per_1k_commits r);
  Format.fprintf ppf
    "Allocation:           %.1f minor words per commit (minor heap %d \
     words)@."
    (Run_result.minor_words_per_commit r)
    r.minor_heap_words;
  if r.threads > 1 then
    Format.fprintf ppf
      "Per-domain successes: [%s]  commit imbalance (max/mean): %.2f@."
      (String.concat "; "
         (Array.to_list (Array.map string_of_int r.per_domain_successes)))
      (Run_result.commit_imbalance r);
  if r.runtime_counters <> [] then begin
    Format.fprintf ppf "Runtime counters:    ";
    List.iter
      (fun (k, v) -> Format.fprintf ppf " %s=%d" k v)
      r.runtime_counters;
    Format.fprintf ppf "@."
  end;
  (match Run_result.champion_occupancy r with
  | [] -> ()
  | occ ->
    (* Which substrate held the tournament title, in epochs. *)
    Format.fprintf ppf "Champion occupancy:  ";
    List.iter (fun (n, e) -> Format.fprintf ppf " %s=%d" n e) occ;
    Format.fprintf ppf "@.");
  match r.sanitizer with
  | None -> ()
  | Some v ->
    section ppf "Sanitizer";
    Format.fprintf ppf "%s@." (Sb7_sanitize.Checker.summary v)

let print ppf (r : Run_result.t) =
  print_parameters ppf r;
  print_histograms ppf r;
  print_detailed ppf r;
  print_sample_errors ppf r;
  print_summary ppf r
