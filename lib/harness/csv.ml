(** Machine-readable export of run results, for plotting the figures
    outside the harness (gnuplot, matplotlib, a spreadsheet).

    Two shapes:
    - {!summary_row} — one line per run: the inputs plus total
      throughput, matching the paper's figure data points;
    - {!per_op_rows} — one line per operation of a run: the detailed
      results section as data. *)

let header_summary =
  "runtime,workload,threads,scale,index,long_traversals,structure_mods,\
   reduced,elapsed_s,successes,failures,throughput_ops,started_ops,\
   commits,aborts,validation_steps,max_read_set,read_set_entries,\
   dedup_hits,bloom_skips,extensions,clock_reuses,ro_zero_log_commits,\
   ro_inline_revalidations,ro_demotions,checkpoints,partial_aborts,\
   reads_salvaged,resume_failures,epoch_decisions,substrate_switches,\
   descriptor_pool_hits,descriptor_pool_misses,\
   minor_gc_per_1k_commits,\
   major_gc_per_1k_commits,minor_words_per_commit,minor_heap_words,\
   commit_imbalance,\
   per_domain_successes,seed,champion_occupancy,sanitizer"

(* The STM counters exported per summary row; 0 for lock runtimes. *)
let summary_counters =
  [
    "commits";
    "aborts";
    "validation_steps";
    "max_read_set";
    "read_set_entries";
    "dedup_hits";
    "bloom_skips";
    "extensions";
    "clock_reuses";
    "ro_zero_log_commits";
    "ro_inline_revalidations";
    "ro_demotions";
    "checkpoints";
    "partial_aborts";
    "reads_salvaged";
    "resume_failures";
    "epoch_decisions";
    "substrate_switches";
    "descriptor_pool_hits";
    "descriptor_pool_misses";
  ]

let escape field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') field then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let summary_row (r : Run_result.t) =
  Printf.sprintf "%s,%s,%d,%s,%s,%b,%b,%b,%.3f,%d,%d,%.2f,%.2f,%s"
    (escape r.runtime_name)
    (Workload.kind_to_string r.workload)
    r.threads (escape r.scale_name)
    (Sb7_core.Index_intf.kind_to_string r.index_kind)
    r.long_traversals r.structure_mods r.reduced_ops r.elapsed_s
    (Stats.total_successes r.stats)
    (Stats.total_failures r.stats)
    (Run_result.throughput r)
    (Run_result.attempts_throughput r)
    (String.concat ","
       (List.map
          (fun k -> string_of_int (Run_result.counter r k))
          summary_counters))
  (* Semicolon-joined so the per-domain vector stays one CSV field. *)
  ^ Printf.sprintf ",%.3f,%.3f,%.1f,%d,%.3f,%s,%d,%s,%s"
      (Run_result.minor_gc_per_1k_commits r)
      (Run_result.major_gc_per_1k_commits r)
      (Run_result.minor_words_per_commit r)
      r.minor_heap_words
      (Run_result.commit_imbalance r)
      (String.concat ";"
         (Array.to_list (Array.map string_of_int r.per_domain_successes)))
      r.seed
      (* Tournament champion occupancy, "name:epochs" semicolon-joined
         (one comma-free field); "-" for the single-substrate
         runtimes. *)
      (match Run_result.champion_occupancy r with
      | [] -> "-"
      | occ ->
        String.concat ";"
          (List.map (fun (n, e) -> Printf.sprintf "%s:%d" n e) occ))
      (* comma-free by construction (Checker.csv_cell) *)
      (match r.sanitizer with
      | None -> "off"
      | Some v -> Sb7_sanitize.Checker.csv_cell v)

let header_per_op =
  "runtime,workload,threads,op,category,read_only,successes,failures,\
   max_latency_ms,mean_latency_ms"

let per_op_rows (r : Run_result.t) =
  Array.to_list
    (Array.mapi
       (fun i (o : Workload.op_desc) ->
         let s = r.stats.Stats.per_op.(i) in
         Printf.sprintf "%s,%s,%d,%s,%s,%b,%d,%d,%.3f,%.3f"
           (escape r.runtime_name)
           (Workload.kind_to_string r.workload)
           r.threads (escape o.code)
           (Sb7_core.Category.to_string o.category)
           o.read_only s.Stats.successes s.Stats.failures
           s.Stats.max_latency_ms (Stats.mean_latency_ms s))
       r.ops)

(** Write one summary line per result, with the header. *)
let write_summary oc results =
  output_string oc header_summary;
  output_char oc '\n';
  List.iter
    (fun r ->
      output_string oc (summary_row r);
      output_char oc '\n')
    results

(** Write the per-operation detail of every result, with the header. *)
let write_per_op oc results =
  output_string oc header_per_op;
  output_char oc '\n';
  List.iter
    (fun r ->
      List.iter
        (fun row ->
          output_string oc row;
          output_char oc '\n')
        (per_op_rows r))
    results
