(** A multi-version STM in the style of the Lazy Snapshot Algorithm
    [Riegel–Felber–Fetzer, DISC'06] — reference [11] of the STMBench7
    paper. Update transactions are TL2-like (sharing TL2's read-set
    dedup, write-set bloom filter and low-contention commit clock);
    commits append to a short per-tvar version history kept as a
    fixed-size circular array, so transactions run in snapshot mode
    read a consistent past view with no validation and no conflicts —
    the proposed cure for the benchmark's long read-only traversals. *)

include Stm_intf.S

(** Run a read-only transaction against a consistent snapshot: no
    validation work, never aborted by concurrent committers (it can
    only retry if a needed version was evicted from a history). [f]
    must not call {!write} — doing so raises
    {!Stm_intf.Write_in_read_only}, which the runtime dispatch layer
    turns into a demotion to update mode. [atomic_ro] is this same
    mode (multi-version snapshots are LSA's native read-only fast
    path, so its [ro_inline_revalidations] counter stays 0 — an
    unservable snapshot is a ring eviction and counts as an abort). *)
val atomic_snapshot : (unit -> 'a) -> 'a
