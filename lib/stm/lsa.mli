(** A multi-version STM in the style of the Lazy Snapshot Algorithm
    [Riegel–Felber–Fetzer, DISC'06] — reference [11] of the STMBench7
    paper. Update transactions are TL2-like (sharing TL2's read-set
    dedup, write-set bloom filter and low-contention commit clock);
    commits append to a short per-tvar version history kept as a
    fixed-size circular array, so transactions run in snapshot mode
    read a consistent past view with no validation and no conflicts —
    the proposed cure for the benchmark's long read-only traversals. *)

include Stm_intf.S

(** Run a read-only transaction against a consistent snapshot: no
    validation work, never aborted by concurrent committers (it can
    only retry if a needed version was evicted from a history). [f]
    must not call {!write} — doing so raises [Invalid_argument]. *)
val atomic_snapshot : (unit -> 'a) -> 'a
