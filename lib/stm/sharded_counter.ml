type shard = { mutable count : int }

type t = {
  key : shard Domain.DLS.key;
  registry_lock : Mutex.t;
  mutable shards : shard list;
  mutable free : shard list;
}

(* A domain's first increment allocates (or recycles) a padded shard and
   registers it; [Domain.at_exit] returns the shard to the free pool
   *without* zeroing it, so totals survive domain exit and the registry
   stays bounded by the peak number of concurrent domains. *)
let attach t =
  Mutex.lock t.registry_lock;
  let shard =
    match t.free with
    | s :: rest ->
        t.free <- rest;
        s
    | [] ->
        let s = Padded_atomic.copy_as_padded { count = 0 } in
        t.shards <- s :: t.shards;
        s
  in
  Mutex.unlock t.registry_lock;
  Domain.at_exit (fun () ->
      Mutex.lock t.registry_lock;
      t.free <- shard :: t.free;
      Mutex.unlock t.registry_lock);
  shard

let create () =
  (* The DLS initializer needs the record it is a field of; tie the
     knot through a ref since the RHS is a function application. *)
  let holder = ref None in
  let key = Domain.DLS.new_key (fun () -> attach (Option.get !holder)) in
  let t = { key; registry_lock = Mutex.create (); shards = []; free = [] } in
  holder := Some t;
  t

let incr t =
  let s = Domain.DLS.get t.key in
  s.count <- s.count + 1

let add t n =
  let s = Domain.DLS.get t.key in
  s.count <- s.count + n

(* Plain reads of another domain's mutable int field are racy but
   non-tearing under the OCaml memory model; after [Domain.join] of all
   writers the sum is exact. *)
let get t =
  Mutex.lock t.registry_lock;
  let shards = t.shards in
  Mutex.unlock t.registry_lock;
  List.fold_left (fun acc s -> acc + s.count) 0 shards

let reset t =
  Mutex.lock t.registry_lock;
  List.iter (fun s -> s.count <- 0) t.shards;
  Mutex.unlock t.registry_lock
