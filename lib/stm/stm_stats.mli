(** Shared STM statistics: commits, aborts, validation work, and the
    transaction-log instrumentation (read-set dedup hits, write-set
    bloom skips, timestamp extensions, commit-clock reuses).

    Counters are domain-sharded: each domain lazily registers a
    cache-line-padded shard through [Domain.DLS] and the [record_*]
    calls are plain stores into it — no cross-core RMW on the
    per-transaction commit/abort flush path. [snapshot] folds over all
    shards; the sums are exact once writing domains have been joined
    and racy-but-non-tearing while they run. *)

type snapshot = {
  commits : int;  (** transactions that committed *)
  aborts : int;  (** transactions that aborted due to a conflict *)
  read_only_commits : int;  (** commits with an empty write set *)
  validation_steps : int;
      (** total read-set entries checked during validations; under an
          invisible-read STM this grows as O(k^2) per transaction *)
  max_read_set : int;  (** largest read set observed *)
  read_set_entries : int;
      (** total read entries logged across all transactions; with
          read-set dedup this counts distinct-tvar entries (modulo
          dedup-cache evictions), not raw reads *)
  dedup_hits : int;
      (** reads that found their tvar already logged and pushed no
          duplicate entry *)
  bloom_skips : int;
      (** reads that skipped the write-set hash probe because the
          bloom filter proved the tvar was never buffered (only counted
          while the write set is non-empty) *)
  extensions : int;  (** successful timestamp (read-version) extensions *)
  clock_reuses : int;
      (** commits that reused a concurrent committer's clock value
          instead of retrying the tick CAS (GV4-style) *)
  ro_zero_log_commits : int;
      (** commits of zero-log read-only transactions ([atomic_ro] /
          LSA snapshot mode): no read set, no commit validation *)
  ro_inline_revalidations : int;
      (** TL2 [atomic_ro] restarts caused by a read finding a version
          newer than the snapshot's read version (the closure is re-run
          at a fresh rv; counted here, not as an abort) *)
  ro_demotions : int;
      (** declared-read-only operations that attempted a write, raised
          [Write_in_read_only] and were demoted to update mode by the
          runtime dispatch layer *)
  checkpoints : int;
      (** watermarks recorded by [S.checkpoint] inside update
          transactions (no-op calls outside a transaction or in
          read-only mode are not counted) *)
  partial_aborts : int;
      (** conflicts resolved by rolling back to the last valid
          watermark and resuming, instead of restarting the attempt *)
  reads_salvaged : int;
      (** read-set entries kept (prefix-validated) across all partial
          aborts — the work a full abort would have thrown away *)
  resume_failures : int;
      (** conflicts where checkpoints existed but even the earliest
          watermark's prefix was invalid, forcing a full abort *)
  epoch_decisions : int;
      (** tournament-runtime epoch boundaries at which the champion
          policy was (re-)evaluated *)
  substrate_switches : int;
      (** epoch decisions that crowned a new champion substrate and
          paid the quiesce + tvar-migration fence *)
  descriptor_pool_hits : int;
      (** domains whose first transaction adopted a recycled
          descriptor (with its learned log capacities) from the
          substrate's free pool instead of allocating afresh *)
  descriptor_pool_misses : int;
      (** domains that allocated a fresh descriptor because the pool
          was empty (cold start) or pooling was disabled *)
}

type t

val create : unit -> t

val record_commit : t -> read_only:bool -> unit
val record_abort : t -> unit
val record_validation : t -> steps:int -> unit

(** Account one transaction's read set: adds [size] to
    [read_set_entries] and raises [max_read_set] if needed. *)
val record_read_set : t -> size:int -> unit

(** Flush one transaction's log-management tallies. *)
val record_tx_log :
  t -> dedup_hits:int -> bloom_skips:int -> extensions:int -> unit

val record_clock_reuse : t -> unit

(** Account a zero-log read-only commit: bumps [commits],
    [read_only_commits] and [ro_zero_log_commits] together, so
    [commits] remains the total across both transaction modes. *)
val record_ro_commit : t -> unit

(** A TL2 read-only transaction re-snapshotted its read version and
    restarted after an inline [version <= rv] check failed. *)
val record_ro_revalidation : t -> unit

(** A declared-read-only operation wrote and was demoted to update
    mode (called by the runtime dispatch layer via
    [S.record_ro_demotion]). *)
val record_ro_demotion : t -> unit

(** Flush one attempt's checkpoint-mark tally (batched like
    [record_tx_log]; zero counts are free). *)
val record_checkpoints : t -> count:int -> unit

(** Account one partial abort that kept [reads_salvaged] prefix
    entries of the read set. *)
val record_partial_abort : t -> reads_salvaged:int -> unit

(** Account a fallback to full abort despite live checkpoints. *)
val record_resume_failure : t -> unit

(** Account one tournament epoch decision (recorded by the
    meta-runtime into its own stats instance, never by a substrate). *)
val record_epoch_decision : t -> unit

(** Account one champion switch (an epoch decision that changed the
    dispatched substrate). *)
val record_substrate_switch : t -> unit

(** Account a domain adopting a recycled transaction descriptor from
    the substrate's free pool (at most once per domain lifetime). *)
val record_pool_hit : t -> unit

(** Account a domain allocating a fresh transaction descriptor (pool
    empty, or pooling disabled). *)
val record_pool_miss : t -> unit

(** Read all counters into a consistent-enough snapshot. *)
val snapshot : t -> snapshot

val reset : t -> unit

val zero : snapshot

val add : snapshot -> snapshot -> snapshot

val to_assoc : snapshot -> (string * int) list

val pp : Format.formatter -> snapshot -> unit
