(** Cache-line padded hot atomics.

    A bare [Atomic.make] allocates a one-word block wherever the minor
    heap pointer happens to be, so a hot global (the commit clock, a
    shared counter) routinely lands on the same cache line as unrelated
    data — every commit-time CAS then false-shares with whatever the
    GC placed next to it, and the line ping-pongs between cores even
    when the logical contention is low. This module allocates the word
    inside a padded block so it owns its cache line(s).

    OCaml 5.2 has [Atomic.make_contended] for exactly this; the module
    hand-rolls the padding because the supported compiler floor is
    5.1. *)

type t

val make : int -> t
val get : t -> int
val set : t -> int -> unit

(** Returns the previous value. *)
val fetch_and_add : t -> int -> int

val compare_and_set : t -> int -> int -> bool

(** [copy_as_padded v] re-allocates the block of [v] with trailing
    padding words and returns the copy; [v] itself should be dropped.
    Used for per-domain statistics shards, whose mutable fields must
    not share lines with a neighbouring shard. Call it only on freshly
    allocated plain records (tag-0 blocks) that nothing else aliases
    yet; any other value is returned unchanged. *)
val copy_as_padded : 'a -> 'a
