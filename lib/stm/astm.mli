(** A DSTM/ASTM-style object-granularity STM with invisible reads,
    O(k) read-set validation on every object open (hence O(k²) total
    validation work per transaction) and object-level copy-on-write
    acquisition — deliberately reproducing the two design points the
    STMBench7 paper identifies as the cause of ASTM's collapse on
    long traversals and large objects.

    Conflicts with active owners are arbitrated by a pluggable
    contention manager; the default is [Polka], as in the paper's
    evaluation.

    This module is deliberately {e excluded} from the transaction-log
    optimizations applied to {!Tl2} and {!Lsa} (read-set dedup,
    bloom-filtered write-set lookups, commit-clock reuse): its O(k²)
    validation and copy-on-write acquisition {e are} the measured
    pathology, and optimizing them away would destroy the benchmark's
    headline reproduction. See docs/PERF.md. For the same reason
    [atomic_ro] is a documented pass-through to [atomic]: ASTM has no
    read-only fast path on purpose, so declared-read-only operations
    pay the full invisible-read validation bill (and
    [Write_in_read_only]/demotion never fires for this STM). *)

include Stm_intf.S

(** Select the contention manager (global; set before running
    transactions). *)
val set_policy : Contention.policy -> unit

val get_policy : unit -> Contention.policy

(** The tvar's allocator id. ASTM keys no data structure on ids (its
    read set is a list of opened locators), but it draws them from the
    shared chunked allocator ({!Tvar_id}) so allocation-phase costs are
    comparable across substrates; exposed for tests. *)
val tvar_id : 'a tvar -> int
