let chunk_size = 1024

(* Per-domain cursor into the domain's currently claimed id range.
   [next = limit] forces a refill on first use, so the initializer
   never touches the shared word. The record is padded so two domains'
   cursors never share a cache line. *)
type state = { mutable next : int; mutable limit : int }

type t = {
  next_chunk : Padded_atomic.t;
  key : state Domain.DLS.key;
}

let create () =
  {
    next_chunk = Padded_atomic.make 0;
    key =
      Domain.DLS.new_key (fun () ->
          Padded_atomic.copy_as_padded { next = 0; limit = 0 });
  }

let fresh t =
  let s = Domain.DLS.get t.key in
  if s.next >= s.limit then begin
    let base = Padded_atomic.fetch_and_add t.next_chunk chunk_size in
    s.next <- base;
    s.limit <- base + chunk_size
  end;
  let id = s.next in
  s.next <- id + 1;
  id

let allocated_bound t = Padded_atomic.get t.next_chunk
