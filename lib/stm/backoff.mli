(** Bounded randomized exponential backoff for contention handling. *)

type t

(** [create ?bits_min ?bits_max ~seed ()] — waits are drawn uniformly
    from [0, 2^bits) where [bits] starts at [bits_min] and doubles the
    range (up to [bits_max]) on every [once]. *)
val create : ?bits_min:int -> ?bits_max:int -> seed:int -> unit -> t

(** Spin for the current window, then widen it. *)
val once : t -> unit

(** Reset the window to its minimum (call after success). *)
val reset : t -> unit

(** Number of times [once] has run since the last [reset]. *)
val attempts : t -> int

(** Current window exponent (waits are drawn from [0, 2^bits)); starts
    at [bits_min], grows by one per [once] up to [bits_max]. Exposed
    for tests. *)
val window_bits : t -> int
