(** Bounded randomized exponential backoff for contention handling. *)

type t

(** [create ?bits_min ?bits_max ~seed ()] — waits are drawn uniformly
    from [0, 2^bits) where [bits] starts at [bits_min] and doubles the
    range (up to [bits_max]) on every [once]. The seed is passed
    through a splitmix-style mixer, so nearby seeds (domain indices)
    still yield decorrelated wait sequences. *)
val create : ?bits_min:int -> ?bits_max:int -> seed:int -> unit -> t

(** [domain_seed ~domain ~run_seed] derives the per-domain seed used by
    {!for_domain}: deterministic per (run seed, domain index),
    decorrelated across domains. Exposed for the decorrelation test. *)
val domain_seed : domain:int -> run_seed:int -> int

(** Publish the benchmark run seed; subsequent {!for_domain} calls fold
    it into their per-domain seeds so backoff behaviour is reproducible
    per run yet varies across runs. *)
val set_run_seed : int -> unit

(** Create a backoff seeded from the calling domain's index and the
    published run seed — the standard constructor for per-transaction
    contexts. *)
val for_domain : ?bits_min:int -> ?bits_max:int -> unit -> t

(** Draw the next wait from the current window without spinning or
    widening. Exposed for the decorrelation test. *)
val draw : t -> int

(** Spin for the current window, then widen it. *)
val once : t -> unit

(** Reset the window to its minimum (call after success). *)
val reset : t -> unit

(** Number of times [once] has run since the last [reset]. *)
val attempts : t -> int

(** Current window exponent (waits are drawn from [0, 2^bits)); starts
    at [bits_min], grows by one per [once] up to [bits_max]. Exposed
    for tests. *)
val window_bits : t -> int
