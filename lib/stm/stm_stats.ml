type snapshot = {
  commits : int;
  aborts : int;
  read_only_commits : int;
  validation_steps : int;
  max_read_set : int;
  read_set_entries : int;
  dedup_hits : int;
  bloom_skips : int;
  extensions : int;
  clock_reuses : int;
  ro_zero_log_commits : int;
  ro_inline_revalidations : int;
  ro_demotions : int;
}

(* Counters are atomic; STMs flush per-transaction tallies once at
   commit/abort time, so contention on these cells is negligible
   compared to transaction work. *)
type t = {
  commits : int Atomic.t;
  aborts : int Atomic.t;
  read_only_commits : int Atomic.t;
  validation_steps : int Atomic.t;
  max_read_set : int Atomic.t;
  read_set_entries : int Atomic.t;
  dedup_hits : int Atomic.t;
  bloom_skips : int Atomic.t;
  extensions : int Atomic.t;
  clock_reuses : int Atomic.t;
  ro_zero_log_commits : int Atomic.t;
  ro_inline_revalidations : int Atomic.t;
  ro_demotions : int Atomic.t;
}

let create () =
  {
    commits = Atomic.make 0;
    aborts = Atomic.make 0;
    read_only_commits = Atomic.make 0;
    validation_steps = Atomic.make 0;
    max_read_set = Atomic.make 0;
    read_set_entries = Atomic.make 0;
    dedup_hits = Atomic.make 0;
    bloom_skips = Atomic.make 0;
    extensions = Atomic.make 0;
    clock_reuses = Atomic.make 0;
    ro_zero_log_commits = Atomic.make 0;
    ro_inline_revalidations = Atomic.make 0;
    ro_demotions = Atomic.make 0;
  }

let record_commit t ~read_only =
  ignore (Atomic.fetch_and_add t.commits 1);
  if read_only then ignore (Atomic.fetch_and_add t.read_only_commits 1)

let record_abort t = ignore (Atomic.fetch_and_add t.aborts 1)

let record_validation t ~steps =
  ignore (Atomic.fetch_and_add t.validation_steps steps)

let rec record_max_read_set t ~size =
  let current = Atomic.get t.max_read_set in
  if size > current then
    if not (Atomic.compare_and_set t.max_read_set current size) then
      record_max_read_set t ~size

let record_read_set t ~size =
  if size > 0 then ignore (Atomic.fetch_and_add t.read_set_entries size);
  record_max_read_set t ~size

let record_tx_log t ~dedup_hits ~bloom_skips ~extensions =
  if dedup_hits > 0 then ignore (Atomic.fetch_and_add t.dedup_hits dedup_hits);
  if bloom_skips > 0 then
    ignore (Atomic.fetch_and_add t.bloom_skips bloom_skips);
  if extensions > 0 then ignore (Atomic.fetch_and_add t.extensions extensions)

let record_clock_reuse t = ignore (Atomic.fetch_and_add t.clock_reuses 1)

(* A zero-log read-only commit is still a commit (and trivially a
   read-only one): the three cells move together so [commits] stays the
   total across both modes. *)
let record_ro_commit t =
  ignore (Atomic.fetch_and_add t.commits 1);
  ignore (Atomic.fetch_and_add t.read_only_commits 1);
  ignore (Atomic.fetch_and_add t.ro_zero_log_commits 1)

let record_ro_revalidation t =
  ignore (Atomic.fetch_and_add t.ro_inline_revalidations 1)

let record_ro_demotion t = ignore (Atomic.fetch_and_add t.ro_demotions 1)

let snapshot t : snapshot =
  {
    commits = Atomic.get t.commits;
    aborts = Atomic.get t.aborts;
    read_only_commits = Atomic.get t.read_only_commits;
    validation_steps = Atomic.get t.validation_steps;
    max_read_set = Atomic.get t.max_read_set;
    read_set_entries = Atomic.get t.read_set_entries;
    dedup_hits = Atomic.get t.dedup_hits;
    bloom_skips = Atomic.get t.bloom_skips;
    extensions = Atomic.get t.extensions;
    clock_reuses = Atomic.get t.clock_reuses;
    ro_zero_log_commits = Atomic.get t.ro_zero_log_commits;
    ro_inline_revalidations = Atomic.get t.ro_inline_revalidations;
    ro_demotions = Atomic.get t.ro_demotions;
  }

let reset t =
  Atomic.set t.commits 0;
  Atomic.set t.aborts 0;
  Atomic.set t.read_only_commits 0;
  Atomic.set t.validation_steps 0;
  Atomic.set t.max_read_set 0;
  Atomic.set t.read_set_entries 0;
  Atomic.set t.dedup_hits 0;
  Atomic.set t.bloom_skips 0;
  Atomic.set t.extensions 0;
  Atomic.set t.clock_reuses 0;
  Atomic.set t.ro_zero_log_commits 0;
  Atomic.set t.ro_inline_revalidations 0;
  Atomic.set t.ro_demotions 0

let zero : snapshot =
  {
    commits = 0;
    aborts = 0;
    read_only_commits = 0;
    validation_steps = 0;
    max_read_set = 0;
    read_set_entries = 0;
    dedup_hits = 0;
    bloom_skips = 0;
    extensions = 0;
    clock_reuses = 0;
    ro_zero_log_commits = 0;
    ro_inline_revalidations = 0;
    ro_demotions = 0;
  }

let add (a : snapshot) (b : snapshot) : snapshot =
  {
    commits = a.commits + b.commits;
    aborts = a.aborts + b.aborts;
    read_only_commits = a.read_only_commits + b.read_only_commits;
    validation_steps = a.validation_steps + b.validation_steps;
    max_read_set = max a.max_read_set b.max_read_set;
    read_set_entries = a.read_set_entries + b.read_set_entries;
    dedup_hits = a.dedup_hits + b.dedup_hits;
    bloom_skips = a.bloom_skips + b.bloom_skips;
    extensions = a.extensions + b.extensions;
    clock_reuses = a.clock_reuses + b.clock_reuses;
    ro_zero_log_commits = a.ro_zero_log_commits + b.ro_zero_log_commits;
    ro_inline_revalidations =
      a.ro_inline_revalidations + b.ro_inline_revalidations;
    ro_demotions = a.ro_demotions + b.ro_demotions;
  }

let to_assoc (s : snapshot) =
  [
    ("commits", s.commits);
    ("aborts", s.aborts);
    ("read_only_commits", s.read_only_commits);
    ("validation_steps", s.validation_steps);
    ("max_read_set", s.max_read_set);
    ("read_set_entries", s.read_set_entries);
    ("dedup_hits", s.dedup_hits);
    ("bloom_skips", s.bloom_skips);
    ("extensions", s.extensions);
    ("clock_reuses", s.clock_reuses);
    ("ro_zero_log_commits", s.ro_zero_log_commits);
    ("ro_inline_revalidations", s.ro_inline_revalidations);
    ("ro_demotions", s.ro_demotions);
  ]

let pp ppf (s : snapshot) =
  Format.fprintf ppf
    "commits=%d aborts=%d ro_commits=%d validation_steps=%d max_read_set=%d \
     read_set_entries=%d dedup_hits=%d bloom_skips=%d extensions=%d \
     clock_reuses=%d ro_zero_log=%d ro_revalidations=%d ro_demotions=%d"
    s.commits s.aborts s.read_only_commits s.validation_steps s.max_read_set
    s.read_set_entries s.dedup_hits s.bloom_skips s.extensions s.clock_reuses
    s.ro_zero_log_commits s.ro_inline_revalidations s.ro_demotions
