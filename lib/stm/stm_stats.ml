type snapshot = {
  commits : int;
  aborts : int;
  read_only_commits : int;
  validation_steps : int;
  max_read_set : int;
  read_set_entries : int;
  dedup_hits : int;
  bloom_skips : int;
  extensions : int;
  clock_reuses : int;
  ro_zero_log_commits : int;
  ro_inline_revalidations : int;
  ro_demotions : int;
  checkpoints : int;
  partial_aborts : int;
  reads_salvaged : int;
  resume_failures : int;
  epoch_decisions : int;
  substrate_switches : int;
  descriptor_pool_hits : int;
  descriptor_pool_misses : int;
}

(* Per-domain shard: plain mutable fields, allocated cache-line padded
   so two domains' shards never false-share. Recording is a DLS lookup
   plus local stores — no cross-core RMW anywhere on the commit/abort
   flush path. *)
type shard = {
  mutable s_commits : int;
  mutable s_aborts : int;
  mutable s_read_only_commits : int;
  mutable s_validation_steps : int;
  mutable s_max_read_set : int;
  mutable s_read_set_entries : int;
  mutable s_dedup_hits : int;
  mutable s_bloom_skips : int;
  mutable s_extensions : int;
  mutable s_clock_reuses : int;
  mutable s_ro_zero_log_commits : int;
  mutable s_ro_inline_revalidations : int;
  mutable s_ro_demotions : int;
  mutable s_checkpoints : int;
  mutable s_partial_aborts : int;
  mutable s_reads_salvaged : int;
  mutable s_resume_failures : int;
  mutable s_epoch_decisions : int;
  mutable s_substrate_switches : int;
  mutable s_descriptor_pool_hits : int;
  mutable s_descriptor_pool_misses : int;
}

type t = {
  key : shard Domain.DLS.key;
  registry_lock : Mutex.t;
  mutable shards : shard list;
  mutable free : shard list;
}

let fresh_shard () =
  Padded_atomic.copy_as_padded
    {
      s_commits = 0;
      s_aborts = 0;
      s_read_only_commits = 0;
      s_validation_steps = 0;
      s_max_read_set = 0;
      s_read_set_entries = 0;
      s_dedup_hits = 0;
      s_bloom_skips = 0;
      s_extensions = 0;
      s_clock_reuses = 0;
      s_ro_zero_log_commits = 0;
      s_ro_inline_revalidations = 0;
      s_ro_demotions = 0;
      s_checkpoints = 0;
      s_partial_aborts = 0;
      s_reads_salvaged = 0;
      s_resume_failures = 0;
      s_epoch_decisions = 0;
      s_substrate_switches = 0;
      s_descriptor_pool_hits = 0;
      s_descriptor_pool_misses = 0;
    }

(* First record_* call on a domain claims a shard: recycled from the
   free pool if a previous domain exited, freshly registered otherwise.
   [Domain.at_exit] returns it to the pool *without* zeroing, so totals
   survive domain exit and the registry is bounded by the peak number
   of concurrent domains. *)
let attach t =
  Mutex.lock t.registry_lock;
  let shard =
    match t.free with
    | s :: rest ->
        t.free <- rest;
        s
    | [] ->
        let s = fresh_shard () in
        t.shards <- s :: t.shards;
        s
  in
  Mutex.unlock t.registry_lock;
  Domain.at_exit (fun () ->
      Mutex.lock t.registry_lock;
      t.free <- shard :: t.free;
      Mutex.unlock t.registry_lock);
  shard

let create () =
  (* The DLS initializer closes over the record it belongs to; a direct
     [let rec] is rejected (function application on the RHS), so tie
     the knot through a ref. *)
  let holder = ref None in
  let key = Domain.DLS.new_key (fun () -> attach (Option.get !holder)) in
  let t = { key; registry_lock = Mutex.create (); shards = []; free = [] } in
  holder := Some t;
  t

let shard t = Domain.DLS.get t.key

let record_commit t ~read_only =
  let s = shard t in
  s.s_commits <- s.s_commits + 1;
  if read_only then s.s_read_only_commits <- s.s_read_only_commits + 1

let record_abort t =
  let s = shard t in
  s.s_aborts <- s.s_aborts + 1

let record_validation t ~steps =
  let s = shard t in
  s.s_validation_steps <- s.s_validation_steps + steps

let record_read_set t ~size =
  let s = shard t in
  if size > 0 then s.s_read_set_entries <- s.s_read_set_entries + size;
  if size > s.s_max_read_set then s.s_max_read_set <- size

let record_tx_log t ~dedup_hits ~bloom_skips ~extensions =
  let s = shard t in
  if dedup_hits > 0 then s.s_dedup_hits <- s.s_dedup_hits + dedup_hits;
  if bloom_skips > 0 then s.s_bloom_skips <- s.s_bloom_skips + bloom_skips;
  if extensions > 0 then s.s_extensions <- s.s_extensions + extensions

let record_clock_reuse t =
  let s = shard t in
  s.s_clock_reuses <- s.s_clock_reuses + 1

(* A zero-log read-only commit is still a commit (and trivially a
   read-only one): the three cells move together so [commits] stays the
   total across both modes. *)
let record_ro_commit t =
  let s = shard t in
  s.s_commits <- s.s_commits + 1;
  s.s_read_only_commits <- s.s_read_only_commits + 1;
  s.s_ro_zero_log_commits <- s.s_ro_zero_log_commits + 1

let record_ro_revalidation t =
  let s = shard t in
  s.s_ro_inline_revalidations <- s.s_ro_inline_revalidations + 1

let record_ro_demotion t =
  let s = shard t in
  s.s_ro_demotions <- s.s_ro_demotions + 1

(* Flushed per attempt alongside record_tx_log rather than one DLS
   lookup per checkpoint mark. *)
let record_checkpoints t ~count =
  if count > 0 then begin
    let s = shard t in
    s.s_checkpoints <- s.s_checkpoints + count
  end

(* A partial abort salvages the validated read-set prefix: the attempt
   rolls back to its last valid watermark instead of restarting, and
   [reads_salvaged] counts the read entries it kept. *)
let record_partial_abort t ~reads_salvaged =
  let s = shard t in
  s.s_partial_aborts <- s.s_partial_aborts + 1;
  s.s_reads_salvaged <- s.s_reads_salvaged + reads_salvaged

(* A conflict arrived while checkpoints existed but even the earliest
   watermark's prefix failed validation: the attempt fell back to a
   full abort. *)
let record_resume_failure t =
  let s = shard t in
  s.s_resume_failures <- s.s_resume_failures + 1

(* Adaptive meta-runtime events (the tournament runtime): an epoch
   decision is one end-of-epoch policy evaluation; a substrate switch
   is a decision that crowned a new champion (and paid the quiesce +
   migration fence). Recorded into the meta-runtime's own instance —
   the substrates themselves never touch these. *)
let record_epoch_decision t =
  let s = shard t in
  s.s_epoch_decisions <- s.s_epoch_decisions + 1

let record_substrate_switch t =
  let s = shard t in
  s.s_substrate_switches <- s.s_substrate_switches + 1

(* Descriptor-pool accounting: a hit is a domain's first transaction
   adopting a recycled descriptor (with its learned log capacities);
   a miss is a fresh allocation because the pool was empty or pooling
   was disabled. At most one of these per (domain, substrate) pair per
   domain lifetime — steady state records neither. *)
let record_pool_hit t =
  let s = shard t in
  s.s_descriptor_pool_hits <- s.s_descriptor_pool_hits + 1

let record_pool_miss t =
  let s = shard t in
  s.s_descriptor_pool_misses <- s.s_descriptor_pool_misses + 1

let zero : snapshot =
  {
    commits = 0;
    aborts = 0;
    read_only_commits = 0;
    validation_steps = 0;
    max_read_set = 0;
    read_set_entries = 0;
    dedup_hits = 0;
    bloom_skips = 0;
    extensions = 0;
    clock_reuses = 0;
    ro_zero_log_commits = 0;
    ro_inline_revalidations = 0;
    ro_demotions = 0;
    checkpoints = 0;
    partial_aborts = 0;
    reads_salvaged = 0;
    resume_failures = 0;
    epoch_decisions = 0;
    substrate_switches = 0;
    descriptor_pool_hits = 0;
    descriptor_pool_misses = 0;
  }

let add_shard (acc : snapshot) (s : shard) : snapshot =
  {
    commits = acc.commits + s.s_commits;
    aborts = acc.aborts + s.s_aborts;
    read_only_commits = acc.read_only_commits + s.s_read_only_commits;
    validation_steps = acc.validation_steps + s.s_validation_steps;
    max_read_set = max acc.max_read_set s.s_max_read_set;
    read_set_entries = acc.read_set_entries + s.s_read_set_entries;
    dedup_hits = acc.dedup_hits + s.s_dedup_hits;
    bloom_skips = acc.bloom_skips + s.s_bloom_skips;
    extensions = acc.extensions + s.s_extensions;
    clock_reuses = acc.clock_reuses + s.s_clock_reuses;
    ro_zero_log_commits = acc.ro_zero_log_commits + s.s_ro_zero_log_commits;
    ro_inline_revalidations =
      acc.ro_inline_revalidations + s.s_ro_inline_revalidations;
    ro_demotions = acc.ro_demotions + s.s_ro_demotions;
    checkpoints = acc.checkpoints + s.s_checkpoints;
    partial_aborts = acc.partial_aborts + s.s_partial_aborts;
    reads_salvaged = acc.reads_salvaged + s.s_reads_salvaged;
    resume_failures = acc.resume_failures + s.s_resume_failures;
    epoch_decisions = acc.epoch_decisions + s.s_epoch_decisions;
    substrate_switches = acc.substrate_switches + s.s_substrate_switches;
    descriptor_pool_hits =
      acc.descriptor_pool_hits + s.s_descriptor_pool_hits;
    descriptor_pool_misses =
      acc.descriptor_pool_misses + s.s_descriptor_pool_misses;
  }

(* Plain reads of another domain's shard fields are racy but
   non-tearing (int fields) under the OCaml memory model; once the
   writing domains are joined the sums are exact. Mid-run the fold is
   not a cross-shard snapshot, same as the old atomic version. *)
let snapshot t : snapshot =
  Mutex.lock t.registry_lock;
  let shards = t.shards in
  Mutex.unlock t.registry_lock;
  List.fold_left add_shard zero shards

let reset t =
  Mutex.lock t.registry_lock;
  List.iter
    (fun s ->
      s.s_commits <- 0;
      s.s_aborts <- 0;
      s.s_read_only_commits <- 0;
      s.s_validation_steps <- 0;
      s.s_max_read_set <- 0;
      s.s_read_set_entries <- 0;
      s.s_dedup_hits <- 0;
      s.s_bloom_skips <- 0;
      s.s_extensions <- 0;
      s.s_clock_reuses <- 0;
      s.s_ro_zero_log_commits <- 0;
      s.s_ro_inline_revalidations <- 0;
      s.s_ro_demotions <- 0;
      s.s_checkpoints <- 0;
      s.s_partial_aborts <- 0;
      s.s_reads_salvaged <- 0;
      s.s_resume_failures <- 0;
      s.s_epoch_decisions <- 0;
      s.s_substrate_switches <- 0;
      s.s_descriptor_pool_hits <- 0;
      s.s_descriptor_pool_misses <- 0)
    t.shards;
  Mutex.unlock t.registry_lock

let add (a : snapshot) (b : snapshot) : snapshot =
  {
    commits = a.commits + b.commits;
    aborts = a.aborts + b.aborts;
    read_only_commits = a.read_only_commits + b.read_only_commits;
    validation_steps = a.validation_steps + b.validation_steps;
    max_read_set = max a.max_read_set b.max_read_set;
    read_set_entries = a.read_set_entries + b.read_set_entries;
    dedup_hits = a.dedup_hits + b.dedup_hits;
    bloom_skips = a.bloom_skips + b.bloom_skips;
    extensions = a.extensions + b.extensions;
    clock_reuses = a.clock_reuses + b.clock_reuses;
    ro_zero_log_commits = a.ro_zero_log_commits + b.ro_zero_log_commits;
    ro_inline_revalidations =
      a.ro_inline_revalidations + b.ro_inline_revalidations;
    ro_demotions = a.ro_demotions + b.ro_demotions;
    checkpoints = a.checkpoints + b.checkpoints;
    partial_aborts = a.partial_aborts + b.partial_aborts;
    reads_salvaged = a.reads_salvaged + b.reads_salvaged;
    resume_failures = a.resume_failures + b.resume_failures;
    epoch_decisions = a.epoch_decisions + b.epoch_decisions;
    substrate_switches = a.substrate_switches + b.substrate_switches;
    descriptor_pool_hits = a.descriptor_pool_hits + b.descriptor_pool_hits;
    descriptor_pool_misses =
      a.descriptor_pool_misses + b.descriptor_pool_misses;
  }

let to_assoc (s : snapshot) =
  [
    ("commits", s.commits);
    ("aborts", s.aborts);
    ("read_only_commits", s.read_only_commits);
    ("validation_steps", s.validation_steps);
    ("max_read_set", s.max_read_set);
    ("read_set_entries", s.read_set_entries);
    ("dedup_hits", s.dedup_hits);
    ("bloom_skips", s.bloom_skips);
    ("extensions", s.extensions);
    ("clock_reuses", s.clock_reuses);
    ("ro_zero_log_commits", s.ro_zero_log_commits);
    ("ro_inline_revalidations", s.ro_inline_revalidations);
    ("ro_demotions", s.ro_demotions);
    ("checkpoints", s.checkpoints);
    ("partial_aborts", s.partial_aborts);
    ("reads_salvaged", s.reads_salvaged);
    ("resume_failures", s.resume_failures);
    ("epoch_decisions", s.epoch_decisions);
    ("substrate_switches", s.substrate_switches);
    ("descriptor_pool_hits", s.descriptor_pool_hits);
    ("descriptor_pool_misses", s.descriptor_pool_misses);
  ]

let pp ppf (s : snapshot) =
  Format.fprintf ppf
    "commits=%d aborts=%d ro_commits=%d validation_steps=%d max_read_set=%d \
     read_set_entries=%d dedup_hits=%d bloom_skips=%d extensions=%d \
     clock_reuses=%d ro_zero_log=%d ro_revalidations=%d ro_demotions=%d \
     checkpoints=%d partial_aborts=%d reads_salvaged=%d resume_failures=%d \
     epoch_decisions=%d substrate_switches=%d pool_hits=%d pool_misses=%d"
    s.commits s.aborts s.read_only_commits s.validation_steps s.max_read_set
    s.read_set_entries s.dedup_hits s.bloom_skips s.extensions s.clock_reuses
    s.ro_zero_log_commits s.ro_inline_revalidations s.ro_demotions
    s.checkpoints s.partial_aborts s.reads_salvaged s.resume_failures
    s.epoch_decisions s.substrate_switches s.descriptor_pool_hits
    s.descriptor_pool_misses
