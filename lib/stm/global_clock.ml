type t = int Atomic.t

let create () = Atomic.make 0
let now t = Atomic.get t
let tick t = Atomic.fetch_and_add t 2 + 2

type tick_outcome =
  | Ticked of int
  | Reused of int

(* One CAS attempt, no retry loop. [fetch_and_add] never fails but
   serializes every committer on the clock cache line; here a committer
   that loses the race simply adopts the winner's (fresh) value as its
   own write version instead of fighting for a unique one. *)
let tick_or_reuse t =
  let seen = Atomic.get t in
  if Atomic.compare_and_set t seen (seen + 2) then Ticked (seen + 2)
  else Reused (Atomic.get t)
