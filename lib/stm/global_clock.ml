(* The clock word lives in a padded block: every commit CASes it, and
   an unpadded single-word atomic false-shares with whatever the minor
   allocator placed next to it. *)
type t = Padded_atomic.t

let create () = Padded_atomic.make 0
let now t = Padded_atomic.get t
let tick t = Padded_atomic.fetch_and_add t 2 + 2

type tick_outcome =
  | Ticked of int
  | Reused of int

(* One CAS attempt, no retry loop. [fetch_and_add] never fails but
   serializes every committer on the clock cache line; here a committer
   that loses the race simply adopts the winner's (fresh) value as its
   own write version instead of fighting for a unique one. *)
let tick_or_reuse t =
  let seen = Padded_atomic.get t in
  if Padded_atomic.compare_and_set t seen (seen + 2) then Ticked (seen + 2)
  else Reused (Padded_atomic.get t)
