(* An encounter-time-locking (ETL) software transactional memory in
   the style of TinySTM's write-through mode (Felber, Fetzer, Riegel,
   PPoPP'08; the TinySTM exemplar referenced in SNIPPETS.md §3).

   Same per-tvar versioned-lock word and global version clock as
   {!Tl2}; the difference is WHEN writes take effect:
   - a writer acquires the tvar's vlock at its FIRST write (encounter
     time), stores the new value in place, and keeps the lock until
     commit or abort;
   - an undo log (old values, in first-write order) restores contents
     on abort, and the lock is released back at the version it was
     taken at;
   - commit is just read-set validation (unless the clock never moved)
     plus releasing every held lock at the new write version — the
     values are already in place.

   Compared to TL2's lazy buffering this converts late commit-time
   write conflicts into early aborts: a second writer touching a
   locked tvar conflicts at ITS first write, before doing the rest of
   its work — the winning trade on write-dominated structural phases.
   Reads of tvars the transaction already locked are plain content
   loads (the in-place value is the transaction's own), cheaper than
   TL2's write-buffer hash probe.

   Reads of foreign tvars are exactly TL2's: vlock sandwich, dedup
   cache, timestamp extension — except that validation must accept the
   transaction's own encounter-time locks (a logged version [v] whose
   vlock now reads [v + 1] owned by us is intact).

   Partial abort: the undo log doubles as the rollback journal. A
   checkpoint records read-set / write-log / undo watermarks; rolling
   back to a mark restores post-mark undo entries in reverse and
   releases (and drops) the locks acquired past the mark, keeping the
   pre-mark locks held — the resumed attempt continues writing through
   them.

   Memory-model note: in-place stores race with other domains' content
   reads; OCaml guarantees no tearing, and the vlock sandwich means a
   foreign reader that overlaps our lock window observes an odd vlock
   (or a version change) and conflicts/retries rather than using the
   uncommitted value. *)

exception Conflict = Stm_intf.Conflict

let name = "etl"

type 'a tvar = {
  id : int;
  vlock : int Atomic.t; (* even = version, odd = locked (version+1) *)
  mutable content : 'a;
}

(* An encounter-time lock held by the transaction. Existential like
   {!Tl2.wentry}, but with no buffered value (the content is written
   through in place) the payload never needs to be recovered: no
   coercion, no [Obj]. *)
type wentry = W : { tv : 'a tvar; locked_from : int } -> wentry

(* Structure-of-arrays read set; see the twin comment in Tl2. *)
let dummy_vlock : int Atomic.t = Atomic.make 0

(* Journal of overwritten contents, in store order; an abort replays
   it in reverse so the first-write entry restores last. Two parallel
   [Obj.t] arrays instead of an array of existential {tv; saved}
   records: pushes and growth doublings allocate no per-entry box and
   slots are reused in place. The coercions are justified like
   [Tl2.cast_ref]: each (tvar, saved-content) pair is captured from
   the same ['a] and only re-paired at the same index. [undo_unset] is
   an immediate, so the arrays are never float-specialized and a
   cleared slot pins no dead value. *)
let undo_unset : Obj.t = Obj.repr 0

let undo_capture_tv : 'a tvar -> Obj.t = fun tv -> Obj.repr tv
let undo_capture_val : 'a tvar -> Obj.t = fun tv -> Obj.repr tv.content

let undo_restore (tv : Obj.t) (v : Obj.t) =
  (Obj.obj tv : Obj.t tvar).content <- v

type tx = {
  mutable rv : int;
  mutable read_ids : int array;
  mutable read_versions : int array;
  mutable read_vlocks : int Atomic.t array;
  mutable nreads : int;
  (* Read-set dedup, identical to {!Tl2}'s direct-mapped cache. *)
  mutable dedup_ids : int array;
  mutable dedup_epochs : int array;
  mutable epoch : int;
  writes : (int, wentry) Hashtbl.t; (* tvars whose lock we hold *)
  mutable wbloom : int;
  (* Mutable so a recycled descriptor can be reseeded per domain. *)
  mutable backoff : Backoff.t;
  mutable validation_steps : int;
  mutable dedup_hits : int;
  mutable bloom_skips : int;
  mutable extensions : int;
  (* Checkpoint state; see {!Tl2}. [wlog] records locked tvar ids in
     acquisition order so a partial abort can release exactly the
     post-watermark locks. *)
  mutable mark_reads : int array;
  mutable mark_wlog : int array;
  mutable mark_undo : int array;
  mutable mark_acc : int array;
  mutable nmarks : int;
  mutable wlog : int array;
  mutable nwlog : int;
  mutable undo_tvs : Obj.t array; (* parallel with undo_vals *)
  mutable undo_vals : Obj.t array;
  mutable nundo : int;
  mutable ncheckpoints : int;
  mutable resume_marks : int;
  mutable resume_acc : int;
}

let clock = Global_clock.create ()
let global_stats = Stm_stats.create ()
let tvar_ids = Tvar_id.create ()

let make v = { id = Tvar_id.fresh tvar_ids; vlock = Atomic.make 0; content = v }

let initial_reads = 64
let initial_dedup = 2 * initial_reads

let fresh_tx () =
  {
    rv = 0;
    read_ids = Array.make initial_reads (-1);
    read_versions = Array.make initial_reads 0;
    read_vlocks = Array.make initial_reads dummy_vlock;
    nreads = 0;
    dedup_ids = Array.make initial_dedup (-1);
    dedup_epochs = Array.make initial_dedup 0;
    epoch = 0;
    writes = Hashtbl.create 64;
    wbloom = 0;
    backoff = Backoff.for_domain ();
    validation_steps = 0;
    dedup_hits = 0;
    bloom_skips = 0;
    extensions = 0;
    mark_reads = Array.make 16 0;
    mark_wlog = Array.make 16 0;
    mark_undo = Array.make 16 0;
    mark_acc = Array.make 16 0;
    nmarks = 0;
    wlog = Array.make 16 0;
    nwlog = 0;
    undo_tvs = Array.make 16 undo_unset;
    undo_vals = Array.make 16 undo_unset;
    nundo = 0;
    ncheckpoints = 0;
    resume_marks = 0;
    resume_acc = 0;
  }

let bloom_bit id =
  let h = id * 0x9E3779B9 in
  (1 lsl (h land 31)) lor (1 lsl (31 + ((h lsr 5) land 31)))

type domain_state = {
  mutable active : tx option;
  mutable spare : tx option;
  mutable ro_rv : int;
}

let current_key : domain_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { active = None; spare = None; ro_rv = -1 })

let current () = Domain.DLS.get current_key

(* Descriptor free pool; same design as Tl2's (scrub-on-release,
   at-exit donation, pool pop or fresh allocation on a domain's first
   transaction, backoff reseed on adoption). *)
let pool_lock = Mutex.create ()
let pool : tx list ref = ref []

let scrub_tx tx =
  Hashtbl.reset tx.writes;
  Array.fill tx.read_vlocks 0 (Array.length tx.read_vlocks) dummy_vlock;
  Array.fill tx.undo_tvs 0 (Array.length tx.undo_tvs) undo_unset;
  Array.fill tx.undo_vals 0 (Array.length tx.undo_vals) undo_unset;
  tx.nreads <- 0;
  tx.nundo <- 0;
  tx.nwlog <- 0;
  tx.nmarks <- 0;
  tx.wbloom <- 0;
  tx.ncheckpoints <- 0;
  tx.resume_marks <- 0;
  tx.resume_acc <- 0

let release_spare state =
  match state.spare with
  | None -> ()
  | Some tx ->
    state.spare <- None;
    scrub_tx tx;
    if !Stm_intf.descriptor_pooling_enabled then begin
      Mutex.lock pool_lock;
      pool := tx :: !pool;
      Mutex.unlock pool_lock
    end

let acquire_tx state =
  let tx =
    if !Stm_intf.descriptor_pooling_enabled then begin
      Mutex.lock pool_lock;
      let popped =
        match !pool with
        | tx :: rest ->
          pool := rest;
          Some tx
        | [] -> None
      in
      Mutex.unlock pool_lock;
      match popped with
      | Some tx ->
        Stm_stats.record_pool_hit global_stats;
        tx.backoff <- Backoff.for_domain ();
        tx
      | None ->
        Stm_stats.record_pool_miss global_stats;
        fresh_tx ()
    end
    else begin
      Stm_stats.record_pool_miss global_stats;
      fresh_tx ()
    end
  in
  state.spare <- Some tx;
  Domain.at_exit (fun () -> release_spare state);
  tx

let in_transaction () =
  let state = current () in
  state.ro_rv >= 0
  ||
  match state.active with
  | None -> false
  | Some _ -> true

let dedup_seen tx id =
  let slot = id land (Array.length tx.dedup_ids - 1) in
  if tx.dedup_epochs.(slot) = tx.epoch && tx.dedup_ids.(slot) = id then true
  else begin
    tx.dedup_ids.(slot) <- id;
    tx.dedup_epochs.(slot) <- tx.epoch;
    false
  end

let push_read tx id vlock version =
  let n = tx.nreads in
  if n = Array.length tx.read_ids then begin
    let cap = 2 * n in
    let rids = Array.make cap (-1) in
    let versions = Array.make cap 0 in
    let vlocks = Array.make cap dummy_vlock in
    Array.blit tx.read_ids 0 rids 0 n;
    Array.blit tx.read_versions 0 versions 0 n;
    Array.blit tx.read_vlocks 0 vlocks 0 n;
    tx.read_ids <- rids;
    tx.read_versions <- versions;
    tx.read_vlocks <- vlocks;
    let size = 2 * Array.length tx.dedup_ids in
    let ids = Array.make size (-1) and epochs = Array.make size tx.epoch in
    for i = 0 to n - 1 do
      let id = rids.(i) in
      ids.(id land (size - 1)) <- id
    done;
    ids.(id land (size - 1)) <- id;
    tx.dedup_ids <- ids;
    tx.dedup_epochs <- epochs
  end;
  tx.read_ids.(n) <- id;
  tx.read_versions.(n) <- version;
  tx.read_vlocks.(n) <- vlock;
  tx.nreads <- n + 1

(* Whether the transaction holds [id]'s encounter-time lock. *)
let owns tx id = Hashtbl.mem tx.writes id

(* Read-set validation, always own-lock aware: an entry logged at
   version [v] whose vlock now reads [v + 1] is intact if WE hold the
   lock (it was acquired at exactly the logged version — a foreign
   commit in between would have bumped the version past [v]). *)
let read_set_valid tx =
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < tx.nreads do
    let cur = Atomic.get tx.read_vlocks.(!i) in
    let version = tx.read_versions.(!i) in
    if cur <> version then
      if not (cur = version + 1 && owns tx tx.read_ids.(!i)) then ok := false;
    incr i
  done;
  tx.validation_steps <- tx.validation_steps + !i;
  !ok

let extend tx =
  let now = Global_clock.now clock in
  if read_set_valid tx then begin
    tx.rv <- now;
    tx.extensions <- tx.extensions + 1
  end
  else raise Conflict

let rec tx_read : type a. tx -> a tvar -> a =
 fun tx tv ->
  let v1 = Atomic.get tv.vlock in
  if v1 land 1 = 1 then raise Conflict (* foreign encounter-time lock *)
  else begin
    let value = tv.content in
    let v2 = Atomic.get tv.vlock in
    if v1 <> v2 then raise Conflict
    else if v1 > tx.rv then begin
      extend tx;
      tx_read tx tv
    end
    else begin
      if dedup_seen tx tv.id then tx.dedup_hits <- tx.dedup_hits + 1
      else push_read tx tv.id tv.vlock v1;
      value
    end
  end

exception Ro_restart

(* Zero-log read-only mode, identical to {!Tl2}'s: an odd vlock is a
   writer in its (here: potentially long) lock window — restart the
   closure rather than spin it out, since an encounter-time lock can
   be held for the writer's whole transaction. *)
let ro_read : type a. domain_state -> a tvar -> a =
 fun state tv ->
  let v1 = Atomic.get tv.vlock in
  if v1 land 1 = 1 then raise Ro_restart
  else begin
    let value = tv.content in
    let v2 = Atomic.get tv.vlock in
    if v1 <> v2 then raise Ro_restart
    else if v1 > state.ro_rv then raise Ro_restart
    else value
  end

let read tv =
  let state = current () in
  match state.active with
  | None -> if state.ro_rv >= 0 then ro_read state tv else tv.content
  | Some tx ->
    if tx.wbloom = 0 then tx_read tx tv
    else begin
      let bits = bloom_bit tv.id in
      if tx.wbloom land bits <> bits then begin
        tx.bloom_skips <- tx.bloom_skips + 1;
        tx_read tx tv
      end
      else if owns tx tv.id then
        (* Own lock held: the in-place content is this transaction's
           pending value — no probe of a write buffer, no log entry. *)
        tv.content
      else tx_read tx tv (* bloom false positive *)
    end

let push_undo tx tv_r saved =
  if tx.nundo = Array.length tx.undo_tvs then begin
    let cap = 2 * tx.nundo in
    let tvs = Array.make cap undo_unset in
    let vals = Array.make cap undo_unset in
    Array.blit tx.undo_tvs 0 tvs 0 tx.nundo;
    Array.blit tx.undo_vals 0 vals 0 tx.nundo;
    tx.undo_tvs <- tvs;
    tx.undo_vals <- vals
  end;
  tx.undo_tvs.(tx.nundo) <- tv_r;
  tx.undo_vals.(tx.nundo) <- saved;
  tx.nundo <- tx.nundo + 1

(* Acquire [tv]'s lock at encounter time. A foreign lock or a lost CAS
   race is an immediate conflict (the early abort ETL is about); a
   version newer than [rv] forces a timestamp extension first, so the
   lock is always taken at a version within the validated snapshot. *)
let rec acquire tx tv =
  let v = Atomic.get tv.vlock in
  if v land 1 = 1 then raise Conflict
  else if v > tx.rv then begin
    extend tx;
    acquire tx tv
  end
  else if Atomic.compare_and_set tv.vlock v (v + 1) then v
  else raise Conflict

let write tv v =
  let state = current () in
  match state.active with
  | None ->
    if state.ro_rv >= 0 then raise Stm_intf.Write_in_read_only
    else tv.content <- v
  | Some tx ->
    if owns tx tv.id then begin
      (* Re-store through a lock already held: journal the overwritten
         value only if a checkpoint might roll back to it. *)
      if tx.nmarks > 0 then
        push_undo tx (undo_capture_tv tv) (undo_capture_val tv);
      tv.content <- v
    end
    else begin
      let locked_from = acquire tx tv in
      Hashtbl.add tx.writes tv.id (W { tv; locked_from });
      tx.wbloom <- tx.wbloom lor bloom_bit tv.id;
      if tx.nwlog = Array.length tx.wlog then begin
        let bigger = Array.make (2 * tx.nwlog) 0 in
        Array.blit tx.wlog 0 bigger 0 tx.nwlog;
        tx.wlog <- bigger
      end;
      tx.wlog.(tx.nwlog) <- tv.id;
      tx.nwlog <- tx.nwlog + 1;
      (* First write always journals: any abort must restore this. *)
      push_undo tx (undo_capture_tv tv) (undo_capture_val tv);
      tv.content <- v
    end

(* Full rollback: restore journalled contents in reverse (the
   first-write entry lands last), then release every held lock back at
   its acquisition version. Restore-before-release matters: once the
   vlock returns to an even value, foreign readers will use the
   content. Clears the lock table — the caller must not release
   again. *)
let rollback tx =
  for j = tx.nundo - 1 downto 0 do
    undo_restore tx.undo_tvs.(j) tx.undo_vals.(j);
    tx.undo_tvs.(j) <- undo_unset;
    tx.undo_vals.(j) <- undo_unset
  done;
  tx.nundo <- 0;
  Hashtbl.iter
    (fun _ (W w) -> Atomic.set w.tv.vlock w.locked_from)
    tx.writes;
  Hashtbl.reset tx.writes;
  tx.wbloom <- 0;
  tx.nwlog <- 0

(* Commit: values are already in place and every written tvar is
   locked, so all that is left is read validation (skippable iff our
   clock tick proves nothing else committed since [rv]) and releasing
   the locks at the new write version. A validation failure leaves the
   locks HELD and raises — the [atomic] conflict handler owns the
   rollback, because it may instead salvage a checkpointed prefix. *)
let commit tx =
  if Hashtbl.length tx.writes = 0 then
    Stm_stats.record_commit global_stats ~read_only:true
  else begin
    let wv, unique =
      match Global_clock.tick_or_reuse clock with
      | Ticked wv -> (wv, true)
      | Reused wv ->
        Stm_stats.record_clock_reuse global_stats;
        (wv, false)
    in
    if not (unique && wv = tx.rv + 2) && not (read_set_valid tx) then
      raise Conflict;
    Hashtbl.iter (fun _ (W w) -> Atomic.set w.tv.vlock wv) tx.writes;
    Hashtbl.reset tx.writes;
    Array.fill tx.undo_tvs 0 tx.nundo undo_unset;
    Array.fill tx.undo_vals 0 tx.nundo undo_unset;
    tx.nundo <- 0;
    Stm_stats.record_commit global_stats ~read_only:false
  end

let flush_tx_stats tx =
  Stm_stats.record_validation global_stats ~steps:tx.validation_steps;
  Stm_stats.record_read_set global_stats ~size:tx.nreads;
  Stm_stats.record_tx_log global_stats ~dedup_hits:tx.dedup_hits
    ~bloom_skips:tx.bloom_skips ~extensions:tx.extensions;
  Stm_stats.record_checkpoints global_stats ~count:tx.ncheckpoints

(* Precondition: no locks held and no live undo entries (commit or
   rollback ran). *)
let reset_tx tx =
  tx.rv <- Global_clock.now clock;
  tx.nreads <- 0;
  tx.wbloom <- 0;
  tx.nwlog <- 0;
  tx.epoch <- tx.epoch + 1;
  tx.validation_steps <- 0;
  tx.dedup_hits <- 0;
  tx.bloom_skips <- 0;
  tx.extensions <- 0;
  tx.nmarks <- 0;
  tx.ncheckpoints <- 0;
  tx.resume_marks <- 0;
  tx.resume_acc <- 0;
  if Array.length tx.read_ids > 1 lsl 16 then begin
    tx.read_ids <- Array.make initial_reads (-1);
    tx.read_versions <- Array.make initial_reads 0;
    tx.read_vlocks <- Array.make initial_reads dummy_vlock;
    tx.dedup_ids <- Array.make initial_dedup (-1);
    tx.dedup_epochs <- Array.make initial_dedup 0
  end

let partial_abort = true

let checkpoint ~acc =
  let state = current () in
  match state.active with
  | None -> ()
  | Some tx ->
    if !Stm_intf.partial_abort_enabled then begin
      let n = tx.nmarks in
      if n = Array.length tx.mark_reads then begin
        let grow a = Array.append a (Array.make n 0) in
        tx.mark_reads <- grow tx.mark_reads;
        tx.mark_wlog <- grow tx.mark_wlog;
        tx.mark_undo <- grow tx.mark_undo;
        tx.mark_acc <- grow tx.mark_acc
      end;
      tx.mark_reads.(n) <- tx.nreads;
      tx.mark_wlog.(n) <- tx.nwlog;
      tx.mark_undo.(n) <- tx.nundo;
      tx.mark_acc.(n) <- acc;
      tx.nmarks <- n + 1;
      tx.ncheckpoints <- tx.ncheckpoints + 1
    end

let resume () =
  let state = current () in
  match state.active with
  | None -> (0, 0)
  | Some tx -> (tx.resume_marks, tx.resume_acc)

(* Partial abort. Unlike {!Tl2}, this can run with encounter-time
   locks (including the commit-failure path's) still held: the prefix
   validation is own-lock aware, the undo suffix restores in-place
   stores past the chosen mark, and exactly the locks acquired past
   the mark are released and dropped — pre-mark locks stay held for
   the resumed attempt. *)
let try_partial_rollback tx =
  if tx.nmarks = 0 || not !Stm_intf.partial_abort_enabled then false
  else begin
    (* Clock sample BEFORE validating (same ordering as [extend]). *)
    let now = Global_clock.now clock in
    (* First invalid read position; everything before it is intact. *)
    let p = ref 0 in
    (try
       while !p < tx.nreads do
         let cur = Atomic.get tx.read_vlocks.(!p) in
         let version = tx.read_versions.(!p) in
         if
           cur <> version
           && not (cur = version + 1 && owns tx tx.read_ids.(!p))
         then raise Exit;
         incr p
       done
     with Exit -> ());
    tx.validation_steps <- tx.validation_steps + !p + 1;
    let m = ref (tx.nmarks - 1) in
    while !m >= 0 && tx.mark_reads.(!m) > !p do
      decr m
    done;
    let mark = !m in
    if mark < 0 then begin
      Stm_stats.record_resume_failure global_stats;
      false
    end
    else begin
      (* Restore the undo suffix first (it covers both the dropped
         tvars' contents and post-mark overwrites of retained ones),
         THEN release the post-mark locks: contents must be back
         before a vlock goes even. *)
      for j = tx.nundo - 1 downto tx.mark_undo.(mark) do
        undo_restore tx.undo_tvs.(j) tx.undo_vals.(j);
        tx.undo_tvs.(j) <- undo_unset;
        tx.undo_vals.(j) <- undo_unset
      done;
      tx.nundo <- tx.mark_undo.(mark);
      for j = tx.nwlog - 1 downto tx.mark_wlog.(mark) do
        let id = tx.wlog.(j) in
        (match Hashtbl.find_opt tx.writes id with
        | Some (W w) -> Atomic.set w.tv.vlock w.locked_from
        | None -> assert false);
        Hashtbl.remove tx.writes id
      done;
      tx.nwlog <- tx.mark_wlog.(mark);
      tx.nreads <- tx.mark_reads.(mark);
      let bloom = ref 0 in
      for j = 0 to tx.nwlog - 1 do
        bloom := !bloom lor bloom_bit tx.wlog.(j)
      done;
      tx.wbloom <- !bloom;
      tx.epoch <- tx.epoch + 1;
      for i = 0 to tx.nreads - 1 do
        let id = tx.read_ids.(i) in
        tx.dedup_ids.(id land (Array.length tx.dedup_ids - 1)) <- id;
        tx.dedup_epochs.(id land (Array.length tx.dedup_ids - 1)) <- tx.epoch
      done;
      tx.nmarks <- mark + 1;
      tx.resume_marks <- mark + 1;
      tx.resume_acc <- tx.mark_acc.(mark);
      tx.rv <- now;
      Stm_stats.record_partial_abort global_stats ~reads_salvaged:tx.nreads;
      true
    end
  end

let atomic f =
  let state = current () in
  if state.ro_rv >= 0 then f () (* nested inside [atomic_ro]: flatten *)
  else
    match state.active with
    | Some _ -> f () (* nested: flatten *)
    | None ->
      let tx =
        match state.spare with
        | Some tx -> tx
        | None -> acquire_tx state
      in
      let rec attempt ~fresh () =
        if fresh then begin
          reset_tx tx;
          state.active <- Some tx
        end;
        match
          let result = f () in
          commit tx;
          result
        with
        | result ->
          state.active <- None;
          flush_tx_stats tx;
          Backoff.reset tx.backoff;
          result
        | exception Conflict ->
          (* Conflicts can arrive with encounter-time locks held (from
             [acquire], [extend] and commit validation alike): either
             salvage a checkpointed prefix — which releases only the
             post-mark locks — or roll everything back. *)
          if try_partial_rollback tx then attempt ~fresh:false ()
          else begin
            rollback tx;
            state.active <- None;
            flush_tx_stats tx;
            Stm_stats.record_abort global_stats;
            Backoff.once tx.backoff;
            attempt ~fresh:true ()
          end
        | exception exn ->
          (* The rv check on every read gives opacity: the view that
             produced [exn] was consistent. Restore the in-place
             stores, release the locks, propagate. *)
          rollback tx;
          state.active <- None;
          flush_tx_stats tx;
          raise exn
      in
      attempt ~fresh:true ()

let atomic_ro f =
  let state = current () in
  if state.ro_rv >= 0 then f () (* nested ro: flatten *)
  else
    match state.active with
    | Some _ -> f () (* inside an update transaction: flatten *)
    | None ->
      let rec attempt () =
        state.ro_rv <- Global_clock.now clock;
        match f () with
        | result ->
          state.ro_rv <- -1;
          Stm_stats.record_ro_commit global_stats;
          result
        | exception Ro_restart ->
          state.ro_rv <- -1;
          Stm_stats.record_ro_revalidation global_stats;
          attempt ()
        | exception exn ->
          state.ro_rv <- -1;
          raise exn
      in
      attempt ()

let record_ro_demotion () = Stm_stats.record_ro_demotion global_stats

let stats () = Stm_stats.snapshot global_stats
let reset_stats () = Stm_stats.reset global_stats
