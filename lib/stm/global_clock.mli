(** TL2-style global version clock.

    Versions are always even; an odd value in a tvar's versioned lock
    word means "locked by a committing writer". The clock therefore
    advances in steps of 2. *)

type t

val create : unit -> t

(** Current clock value (even). *)
val now : t -> int

(** Atomically advance by 2 and return the new value (a fresh even
    write-version, unique to the caller). *)
val tick : t -> int

type tick_outcome =
  | Ticked of int  (** our CAS installed this value; it is unique to us *)
  | Reused of int
      (** a concurrent ticker advanced the clock first; this is its
          (freshly re-read) value, possibly shared with other committers *)

(** [tick_or_reuse t] is the reduced-contention commit advance (the
    "pass on failure" GV4 variant of TL2): one CAS attempt, and on
    failure the freshly observed clock value is adopted instead of
    retrying.

    Safety contract for callers committing a write set:
    - the call must happen {e after} the commit locks are acquired, so
      a [Reused] value is guaranteed to have been installed after our
      locks were taken (concurrent committers hold disjoint lock sets,
      and any reader that starts at [rv >= wv] afterwards finds our
      tvars locked until write-back completes);
    - a [Reused wv] means another transaction committed between our
      read version and [wv], so the "clock did not move since [rv]"
      validation shortcut must not be applied. *)
val tick_or_reuse : t -> tick_outcome
