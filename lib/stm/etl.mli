(** ETL: TinySTM-style encounter-time locking with write-through.
    Writers take the per-tvar versioned lock at their FIRST write,
    store in place, and journal old values in an undo log; commit is
    read validation plus releasing the locks at the new write version.
    Late commit-time write conflicts become early aborts — the
    complement of {!Tl2}'s lazy buffering on write-dominated phases.
    Implements checkpointed partial abort over the undo log
    ([partial_abort = true]): rolling back to a watermark restores the
    post-mark stores and releases only the post-mark locks. *)

include Stm_intf.S
