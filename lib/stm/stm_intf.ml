(** Common interface implemented by every STM in this library. *)

(** Raised internally when a transaction detects a conflict and must be
    retried. [atomic] catches it; user code should never see it escape,
    and must not catch it. *)
exception Conflict

(** Raised by [write] when called inside a read-only transaction
    ([atomic_ro]). The dispatch layer in [lib/runtime] catches it,
    records a demotion for the offending operation, and re-runs the
    closure as an update transaction — user code should neither raise
    nor catch it. The closure must be safe to re-run (same requirement
    [atomic]'s conflict retry already imposes). *)
exception Write_in_read_only

(** Master switch for checkpointed partial abort, shared by the
    substrates that implement it (TL2, LSA). On by default; the bench
    harness flips it off to measure the full-abort baseline on the same
    binary. Read once per conflict, so flipping it mid-transaction is
    harmless (the next conflict sees the new value). *)
let partial_abort_enabled = ref true

(** Master switch for descriptor pooling: when on (the default), a
    domain's first transaction tries to adopt a scrubbed descriptor from
    the substrate's free pool (donated by exited domains) before
    allocating a fresh one, and returns it on domain exit. Off means
    every domain allocates fresh and the pool is bypassed — the bench
    harness flips it to measure the allocation ablation on the same
    binary. Consulted only at descriptor acquisition (a domain's first
    transaction on a substrate), so flipping it mid-run only affects
    domains spawned afterwards. *)
let descriptor_pooling_enabled = ref true

module type S = sig
  val name : string

  (** A transactional variable: the unit of conflict detection. *)
  type 'a tvar

  val make : 'a -> 'a tvar

  (** [read tv] inside a transaction records the read for conflict
      detection. Outside any transaction it is an unsynchronized direct
      read (meant for single-threaded setup and inspection). *)
  val read : 'a tvar -> 'a

  (** [write tv v] inside a transaction buffers or acquires the write.
      Outside any transaction it is an unsynchronized direct store. *)
  val write : 'a tvar -> 'a -> unit

  (** [atomic f] runs [f] as a transaction, retrying on conflict until
      it commits. Exceptions raised by [f] abort the transaction
      (rolling back any writes) and propagate, after the read set has
      been validated — an exception raised from an inconsistent view is
      treated as a conflict and retried instead. Nested calls flatten
      into the enclosing transaction. *)
  val atomic : (unit -> 'a) -> 'a

  (** [atomic_ro f] runs [f] as a read-only transaction. Reads are
      guaranteed a consistent snapshot; [write] raises
      {!Write_in_read_only} (the transaction context stays valid — the
      caller is expected to fall back to [atomic]). Implementations may
      restart [f] internally (TL2 re-snapshots its read version), so
      [f] must tolerate re-execution, exactly as under [atomic]. A
      nested [atomic] call inside [atomic_ro] flattens into the
      read-only transaction: its writes raise too, so a mis-declared
      operation cannot smuggle updates through an inner transaction. *)
  val atomic_ro : (unit -> 'a) -> 'a

  val in_transaction : unit -> bool

  (** Whether this STM supports checkpointed partial abort. When
      [false], [checkpoint] is a no-op and [resume] always returns
      [(0, 0)]: callers keep full-abort semantics unchanged. *)
  val partial_abort : bool

  (** [checkpoint ~acc] records a watermark over the ordered read set
      (and the write log) together with the caller's integer
      accumulator [acc]. On a later conflict the transaction validates
      the read-set prefix, rolls back only past the last valid
      watermark, re-extends its read version and re-runs the closure —
      which must consult {!resume} to skip the salvaged work. A no-op
      outside a transaction, in read-only mode, or when the substrate
      lacks the capability. *)
  val checkpoint : acc:int -> unit

  (** [resume ()] is an idempotent query of the current attempt's
      resume state: [(marks, acc)] where [marks] is the number of
      checkpoints salvaged by a partial abort ([0] on a fresh attempt —
      run from the start) and [acc] the accumulator saved with the last
      salvaged watermark. Closures driven through [checkpoint] must
      call this on entry and skip their first [marks] checkpointed
      units. *)
  val resume : unit -> int * int

  (** Hook for the runtime dispatch layer: account one adaptive
      demotion (a declared-read-only operation that wrote) in this
      STM's [Stm_stats], so [ro_demotions] travels with the rest of
      the counters. *)
  val record_ro_demotion : unit -> unit

  val stats : unit -> Stm_stats.snapshot
  val reset_stats : unit -> unit
end
