(** Common interface implemented by every STM in this library. *)

(** Raised internally when a transaction detects a conflict and must be
    retried. [atomic] catches it; user code should never see it escape,
    and must not catch it. *)
exception Conflict

(** Raised by [write] when called inside a read-only transaction
    ([atomic_ro]). The dispatch layer in [lib/runtime] catches it,
    records a demotion for the offending operation, and re-runs the
    closure as an update transaction — user code should neither raise
    nor catch it. The closure must be safe to re-run (same requirement
    [atomic]'s conflict retry already imposes). *)
exception Write_in_read_only

module type S = sig
  val name : string

  (** A transactional variable: the unit of conflict detection. *)
  type 'a tvar

  val make : 'a -> 'a tvar

  (** [read tv] inside a transaction records the read for conflict
      detection. Outside any transaction it is an unsynchronized direct
      read (meant for single-threaded setup and inspection). *)
  val read : 'a tvar -> 'a

  (** [write tv v] inside a transaction buffers or acquires the write.
      Outside any transaction it is an unsynchronized direct store. *)
  val write : 'a tvar -> 'a -> unit

  (** [atomic f] runs [f] as a transaction, retrying on conflict until
      it commits. Exceptions raised by [f] abort the transaction
      (rolling back any writes) and propagate, after the read set has
      been validated — an exception raised from an inconsistent view is
      treated as a conflict and retried instead. Nested calls flatten
      into the enclosing transaction. *)
  val atomic : (unit -> 'a) -> 'a

  (** [atomic_ro f] runs [f] as a read-only transaction. Reads are
      guaranteed a consistent snapshot; [write] raises
      {!Write_in_read_only} (the transaction context stays valid — the
      caller is expected to fall back to [atomic]). Implementations may
      restart [f] internally (TL2 re-snapshots its read version), so
      [f] must tolerate re-execution, exactly as under [atomic]. A
      nested [atomic] call inside [atomic_ro] flattens into the
      read-only transaction: its writes raise too, so a mis-declared
      operation cannot smuggle updates through an inner transaction. *)
  val atomic_ro : (unit -> 'a) -> 'a

  val in_transaction : unit -> bool

  (** Hook for the runtime dispatch layer: account one adaptive
      demotion (a declared-read-only operation that wrote) in this
      STM's [Stm_stats], so [ro_demotions] travels with the rest of
      the counters. *)
  val record_ro_demotion : unit -> unit

  val stats : unit -> Stm_stats.snapshot
  val reset_stats : unit -> unit
end
