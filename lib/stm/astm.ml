(* A DSTM/ASTM-style object-granularity software transactional memory
   (Herlihy et al. PODC'03; Marathe, Scherer, Scott DISC'05 — references
   [7, 9] of the STMBench7 paper).

   This STM deliberately reproduces the two design points the paper
   identifies as the cause of ASTM's collapse on STMBench7:

   - Invisible reads with incremental validation: a reader leaves no
     trace on the object; to guarantee consistency it must revalidate
     its entire private read list on EVERY object open, so a
     transaction that opens k objects performs O(k^2) validation work.

   - Object-level write acquisition: opening an object for writing
     installs a new locator carrying the complete old and new payload
     values, i.e. the whole object is logically cloned no matter how
     small the updated attribute is. With payloads like the manual text
     or a flat index array, a one-character update copies the entire
     object.

   Conflicts between an opener and an active owner are arbitrated by a
   pluggable contention manager (default: Polka, as in the paper).

   NOTE: this STM must stay pathological by design. The transaction-log
   optimizations applied to Tl2 and Lsa (read-set deduplication,
   bloom-filtered write-set lookups, low-contention commit clock) are
   deliberately NOT applied here: deduplicating the invisible-read list
   or short-circuiting validation would erase the O(k^2) blow-up the
   STMBench7 paper measures, and with it the point of the benchmark.
   Keep it slow. See docs/PERF.md.

   As in the published DSTM/ASTM algorithms, the commit sequence is
   "validate read list, then CAS status to Committed". The two steps are
   not atomic together, so a doomed interleaving can in principle
   produce write-skew between two read-write transactions whose write
   sets are disjoint; the original systems share this property. All
   read-write conflicts on commonly-written objects are detected through
   ownership. *)

exception Conflict = Stm_intf.Conflict

let name = "astm"

type status =
  | Active
  | Committed
  | Aborted

type txd = {
  status : status Atomic.t;
  (* Objects opened so far: the contention-management priority. Read
     racily by other transactions. *)
  opens : int Atomic.t;
  mutable reads : (unit -> bool) list; (* validation closures *)
  mutable nreads : int;
  mutable validation_steps : int;
}

type 'a locator = {
  owner : txd option;
  old_v : 'a; (* committed value when the owner acquired the object *)
  new_v : 'a; (* the owner's tentative value *)
}

type 'a tvar = { id : int; loc : 'a locator Atomic.t }

let policy = ref Contention.Polka
let set_policy p = policy := p
let get_policy () = !policy
let global_stats = Stm_stats.create ()

(* ASTM keys nothing on tvar ids (its read set is a list of opened
   locators, validated linearly — the O(k²) pathology), but it shares
   the chunked allocator so allocation-phase behaviour is comparable
   across substrates without touching that pathology. *)
let tvar_ids = Tvar_id.create ()

let make v =
  {
    id = Tvar_id.fresh tvar_ids;
    loc = Atomic.make { owner = None; old_v = v; new_v = v };
  }

let tvar_id t = t.id

type domain_state = {
  mutable active_tx : txd option;
  backoff : Backoff.t;
}

let state_key : domain_state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        active_tx = None;
        backoff = Backoff.for_domain ();
      })

let domain_state () = Domain.DLS.get state_key

let in_transaction () =
  match (domain_state ()).active_tx with
  | None -> false
  | Some _ -> true

(* The most recently committed value of a locator, ignoring any active
   owner's tentative update. *)
let committed_value loc =
  match loc.owner with
  | None -> loc.new_v
  | Some o -> (
    match Atomic.get o.status with
    | Committed -> loc.new_v
    | Aborted | Active -> loc.old_v)

let abort_other (o : txd) = Atomic.compare_and_set o.status Active Aborted

(* Arbitrate a conflict with [other]; returns when the caller may
   re-examine the object. Raises [Conflict] if the manager decides to
   abort the caller. *)
let arbitrate (me : txd) (other : txd) (bo : Backoff.t) ~attempts =
  let decision =
    Contention.decide !policy
      ~my_opens:(Atomic.get me.opens)
      ~other_opens:(Atomic.get other.opens)
      ~attempts
  in
  match decision with
  | Contention.Abort_other -> ignore (abort_other other)
  | Contention.Wait ->
    if Contention.exponential_wait !policy then Backoff.once bo
    else
      for _ = 1 to 64 do
        Domain.cpu_relax ()
      done
  | Contention.Abort_self -> raise Conflict

(* Every open validates the whole read list: the O(k) pass that makes
   total validation cost quadratic in the read-set size. *)
let validate_reads (tx : txd) =
  tx.validation_steps <- tx.validation_steps + tx.nreads;
  if Atomic.get tx.status <> Active then raise Conflict;
  if not (List.for_all (fun check -> check ()) tx.reads) then raise Conflict

let record_read (tx : txd) check =
  tx.reads <- check :: tx.reads;
  tx.nreads <- tx.nreads + 1;
  ignore (Atomic.fetch_and_add tx.opens 1)

let open_read (type a) (tx : txd) (tv : a tvar) (bo : Backoff.t) : a =
  (* Resolve to a value plus whether it came from our own tentative
     write (in which case ownership, not validation, protects it). *)
  let rec resolve attempts =
    let loc = Atomic.get tv.loc in
    match loc.owner with
    | None -> (loc.new_v, false)
    | Some o when o == tx -> (loc.new_v, true)
    | Some o -> (
      match Atomic.get o.status with
      | Committed -> (loc.new_v, false)
      | Aborted -> (loc.old_v, false)
      | Active ->
        arbitrate tx o bo ~attempts;
        resolve (attempts + 1))
  in
  let value, own = resolve 0 in
  if not own then begin
    let check () =
      let loc = Atomic.get tv.loc in
      match loc.owner with
      | Some o when o == tx ->
        (* We acquired the object for writing after reading it; the
           acquisition captured the committed value we must have seen. *)
        loc.old_v == value
      | _ -> committed_value loc == value
    in
    record_read tx check;
    validate_reads tx
  end;
  value

let open_write (type a) (tx : txd) (tv : a tvar) (v : a) (bo : Backoff.t) :
    unit =
  let rec acquire attempts =
    let loc = Atomic.get tv.loc in
    match loc.owner with
    | Some o when o == tx ->
      (* Already own it: replace the tentative value. CAS because a
         contention manager that just aborted us may race to install
         its own locator. *)
      if
        not
          (Atomic.compare_and_set tv.loc loc
             { owner = Some tx; old_v = loc.old_v; new_v = v })
      then acquire attempts
    | _ -> (
      let blocked =
        match loc.owner with
        | None -> false
        | Some o -> (
          match Atomic.get o.status with
          | Active -> true
          | Committed | Aborted -> false)
      in
      if blocked then begin
        (match loc.owner with
        | Some o -> arbitrate tx o bo ~attempts
        | None -> assert false);
        acquire (attempts + 1)
      end
      else
        let cur = committed_value loc in
        (* Installing the locator logically clones the object: both the
           full old and new payloads ride in it. *)
        if
          not
            (Atomic.compare_and_set tv.loc loc
               { owner = Some tx; old_v = cur; new_v = v })
        then acquire attempts
        else ignore (Atomic.fetch_and_add tx.opens 1))
  in
  acquire 0;
  validate_reads tx

let read tv =
  let st = domain_state () in
  match st.active_tx with
  | None -> committed_value (Atomic.get tv.loc)
  | Some tx -> open_read tx tv st.backoff

let write tv v =
  let st = domain_state () in
  match st.active_tx with
  | None ->
    let rec store () =
      let loc = Atomic.get tv.loc in
      let installed = { owner = None; old_v = committed_value loc; new_v = v } in
      if not (Atomic.compare_and_set tv.loc loc installed) then store ()
    in
    store ()
  | Some tx -> open_write tx tv v st.backoff

let fresh_txd () =
  {
    status = Atomic.make Active;
    opens = Atomic.make 0;
    reads = [];
    nreads = 0;
    validation_steps = 0;
  }

let try_commit (tx : txd) =
  validate_reads tx;
  if not (Atomic.compare_and_set tx.status Active Committed) then
    raise Conflict

let flush_tx_stats (tx : txd) =
  Stm_stats.record_validation global_stats ~steps:tx.validation_steps;
  Stm_stats.record_read_set global_stats ~size:tx.nreads

let atomic f =
  let st = domain_state () in
  match st.active_tx with
  | Some _ -> f () (* nested: flatten *)
  | None ->
    let rec attempt () =
      let tx = fresh_txd () in
      st.active_tx <- Some tx;
      match
        let result = f () in
        try_commit tx;
        result
      with
      | result ->
        st.active_tx <- None;
        flush_tx_stats tx;
        Stm_stats.record_commit global_stats
          ~read_only:(Atomic.get tx.opens = tx.nreads);
        Backoff.reset st.backoff;
        result
      | exception Conflict ->
        st.active_tx <- None;
        ignore (Atomic.compare_and_set tx.status Active Aborted);
        flush_tx_stats tx;
        Stm_stats.record_abort global_stats;
        Backoff.once st.backoff;
        attempt ()
      | exception exn ->
        (* A user exception may stem from an inconsistent view (reads
           are only validated at opens): if validation fails, retry as
           a conflict instead of propagating. *)
        st.active_tx <- None;
        let consistent =
          match validate_reads tx with
          | () -> true
          | exception Conflict -> false
        in
        ignore (Atomic.compare_and_set tx.status Active Aborted);
        flush_tx_stats tx;
        if consistent then raise exn
        else begin
          Stm_stats.record_abort global_stats;
          Backoff.once st.backoff;
          attempt ()
        end
    in
    attempt ()

(* Deliberate pass-through: ASTM gets NO read-only fast path. Its
   O(k^2) invisible-read validation on declared-read-only traversals
   is the pathology the paper measures — a zero-log mode here would
   destroy the reproduction (see docs/PERF.md). [write] consequently
   never raises [Write_in_read_only] under this STM, so demotion never
   fires and [ro_zero_log_commits] stays 0 by design. *)
let atomic_ro f = atomic f

let record_ro_demotion () = Stm_stats.record_ro_demotion global_stats

(* No checkpointing either: partial abort would soften the abort-storm
   pathology this STM exists to demonstrate. Full-abort semantics are
   preserved by the no-op capability stubs. *)
let partial_abort = false
let checkpoint ~acc = ignore acc
let resume () = (0, 0)

let stats () = Stm_stats.snapshot global_stats
let reset_stats () = Stm_stats.reset global_stats
