type t = {
  bits_min : int;
  bits_max : int;
  mutable bits : int;
  mutable rng : int;
  mutable rounds : int;
}

let create ?(bits_min = 4) ?(bits_max = 16) ~seed () =
  assert (bits_min >= 0 && bits_min <= bits_max && bits_max < 30);
  { bits_min; bits_max; bits = bits_min; rng = seed lor 1; rounds = 0 }

(* xorshift step; quality is irrelevant, we only need decorrelation of
   backoff windows between threads. *)
let next_random t =
  let x = t.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  t.rng <- x;
  x land max_int

(* Beyond this many spins, sleep instead: on oversubscribed or
   single-core machines pure spinning starves the lock holder. *)
let spin_cutoff = 1 lsl 12

let once t =
  let window = 1 lsl t.bits in
  let wait = next_random t land (window - 1) in
  if wait <= spin_cutoff then
    for _ = 1 to wait do
      Domain.cpu_relax ()
    done
  else Unix.sleepf (float_of_int wait *. 1e-8);
  if t.bits < t.bits_max then t.bits <- t.bits + 1;
  t.rounds <- t.rounds + 1

let reset t =
  t.bits <- t.bits_min;
  t.rounds <- 0

let attempts t = t.rounds
let window_bits t = t.bits
