type t = {
  bits_min : int;
  bits_max : int;
  mutable bits : int;
  mutable rng : int;
  mutable rounds : int;
}

(* splitmix-style finalizer (63-bit-safe constants): without it, seeds
   like 1,2,3,... start xorshift streams in nearly identical states and
   domains back off in lockstep for many rounds. *)
let mix_seed seed =
  let z = seed in
  let z = (z lxor (z lsr 33)) * 0x2545F4914F6CDD1D in
  let z = (z lxor (z lsr 29)) * 0x9E3779B97F4A7C1 in
  (z lxor (z lsr 32)) land max_int

let create ?(bits_min = 4) ?(bits_max = 16) ~seed () =
  assert (bits_min >= 0 && bits_min <= bits_max && bits_max < 30);
  { bits_min; bits_max; bits = bits_min; rng = mix_seed seed lor 1; rounds = 0 }

(* The benchmark harness publishes its run seed here so that every
   backoff created afterwards is deterministic per (run seed, domain)
   yet decorrelated across domains. *)
let run_seed = Atomic.make 0

let set_run_seed seed = Atomic.set run_seed seed

let domain_seed ~domain ~run_seed = mix_seed ((run_seed * 8191) + domain)

let for_domain ?bits_min ?bits_max () =
  let seed =
    domain_seed
      ~domain:((Domain.self () :> int))
      ~run_seed:(Atomic.get run_seed)
  in
  create ?bits_min ?bits_max ~seed ()

(* xorshift step; quality is irrelevant, we only need decorrelation of
   backoff windows between threads. *)
let next_random t =
  let x = t.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  t.rng <- x;
  x land max_int

(* Beyond this many spins, sleep instead: on oversubscribed or
   single-core machines pure spinning starves the lock holder. *)
let spin_cutoff = 1 lsl 12

let draw t =
  let window = 1 lsl t.bits in
  next_random t land (window - 1)

let once t =
  let wait = draw t in
  if wait <= spin_cutoff then
    for _ = 1 to wait do
      Domain.cpu_relax ()
    done
  else Unix.sleepf (float_of_int wait *. 1e-8);
  if t.bits < t.bits_max then t.bits <- t.bits + 1;
  t.rounds <- t.rounds + 1

let reset t =
  t.bits <- t.bits_min;
  t.rounds <- 0

let attempts t = t.rounds
let window_bits t = t.bits
