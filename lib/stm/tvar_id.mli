(** Chunked tvar-id allocation.

    Every [Tl2.make] / [Lsa.make] / fine-grained [make] needs a fresh
    small int for dedup-cache and bloom hashing. A global
    [Atomic.fetch_and_add] per tvar serializes all domains through one
    cache line during setup phases that allocate hundreds of thousands
    of tvars. Here each domain instead claims a contiguous chunk of
    {!chunk_size} ids with a single global fetch-and-add and then hands
    them out from a domain-local cursor ([Domain.DLS]), i.e. at most
    one shared atomic op per chunk.

    Each STM module owns its own allocator instance, preserving the
    invariant that ids are unique {e per module} (the dedup cache and
    bloom filter index on them). Ids remain dense up to chunk
    granularity: a domain that stops allocating strands at most
    [chunk_size - 1] ids, which the direct-mapped dedup cache
    ([id land (size - 1)]) and the multiplicative bloom hash tolerate —
    consecutive ids within a chunk are exactly as well distributed as
    before, and distinct chunks map to disjoint residue runs. *)

type t

val create : unit -> t

(** Allocate a fresh id, unique across all domains for this allocator. *)
val fresh : t -> int

(** Ids handed out per global fetch-and-add; exposed for tests. *)
val chunk_size : int

(** Upper bound (exclusive) on any id allocated so far: total ids
    claimed from the shared counter, counting unconsumed chunk tails.
    Exposed for the allocator gap-bound test. *)
val allocated_bound : t -> int
