(* A TL2-style software transactional memory (Dice, Shalev, Shavit,
   DISC'06 — reference [5] of the STMBench7 paper).

   Design points, all of which contrast with {!Astm} and make this the
   "fixed" STM the paper says was already proposed at the time:
   - a global version clock gives every read a consistency check in
     O(1), so transactions never act on inconsistent state (opacity)
     and read-only transactions commit without any validation pass;
   - writes are buffered (lazy versioning) and acquire per-tvar
     versioned locks only at commit;
   - commit-time read-set validation is a single O(k) pass.

   Timestamp extension (TinySTM-style): when a read observes a version
   newer than the transaction's read version [rv], the whole read set is
   revalidated against the current clock and, if intact, [rv] advances
   instead of aborting.

   Read-only mode ([atomic_ro]): TL2's observation that a read-only
   transaction needs no read set at all. Each read is just the vlock
   sandwich plus a [version <= rv] check; nothing is logged, commit is
   a counter bump (no validation pass, no clock CAS). A read that
   post-dates the snapshot restarts the closure at a re-snapshotted rv
   (counted as [ro_inline_revalidations]); a [write] raises
   [Stm_intf.Write_in_read_only] for the runtime layer to demote the
   operation to update mode.

   Log-management fast paths (see docs/PERF.md; the paper's §5 thesis is
   that exactly this bookkeeping decides whether an STM "behaves like
   medium-grained locking" on long traversals):
   - read-set dedup: a per-transaction direct-mapped (id -> seen) cache
     makes re-reading an already-logged tvar O(1) with no duplicate
     entry, so validation and extension stay O(distinct tvars) instead
     of O(raw reads);
   - write-set bloom: a word-sized bloom filter over buffered tvar ids
     is consulted before the write-set hash probe in [read], so
     read-mostly transactions that buffered one write stop paying a
     [Hashtbl] lookup per read;
   - commit clock: a single CAS attempt (GV4 "pass on failure") instead
     of a fetch-and-add, reusing a concurrent committer's clock value
     when the race is lost.

   Memory-model note: tvar contents are plain mutable fields and are
   read concurrently with commit-time write-back. The OCaml memory model
   guarantees such races are memory-safe (no tearing); the sandwich of
   [Atomic] reads of the versioned lock around each content read, plus
   release/acquire ordering of [Atomic] operations, ensures a reader
   either observes a consistent (version, value) pair or aborts. *)

exception Conflict = Stm_intf.Conflict

let name = "tl2"

type 'a tvar = {
  id : int; (* unique; identity witness for the typed-log coercion *)
  vlock : int Atomic.t; (* even = version, odd = locked (version+1) *)
  mutable content : 'a;
}

(* A buffered write. The payload type is existentially quantified; it is
   recovered in [cast_ref], justified by the uniqueness of tvar ids:
   equal ids imply physical equality of the tvars and hence equality of
   the hidden types. Every [Obj] use in this module is allowlisted
   per-binding by lint rule R5 (see lib/analysis/lint_config.ml). *)
type wentry =
  | W : {
      tv : 'a tvar;
      value : 'a ref;
      mutable locked_from : int; (* version the commit lock was taken at *)
      mutable locked : bool;
    }
      -> wentry

let cast_ref : type a. a tvar -> wentry -> a ref =
 fun tv (W w) ->
  assert (w.tv.id = tv.id);
  (Obj.magic w.value : a ref)

(* The read set is three parallel arrays (structure-of-arrays) rather
   than an array of {id; vlock; version} records: a push writes three
   slots and allocates nothing, and the GC marks three flat arrays per
   log instead of one record per logged read. [read_ids] and
   [read_versions] are unboxed int arrays; [read_vlocks] holds the
   tvars' existing atomic cells (shared pointers, never allocated per
   entry). Unused vlock slots hold [dummy_vlock]. *)
let dummy_vlock : int Atomic.t = Atomic.make 0

(* Undo log for buffered writes overwritten after a checkpoint: rolling
   back to a watermark replays (slot, saved-value) pairs in reverse.
   Stored as two parallel [Obj.t] arrays instead of an array of
   existential records, so pushes and growth doublings allocate no
   per-entry box and never re-allocate entry records (each slot is
   reused in place). The coercions are justified exactly like
   [cast_ref]: slot and value are captured together from the same ['a]
   and only ever re-paired at the same index, so the hidden types
   cannot mix. [undo_unset] is an immediate, so the arrays are never
   float-specialized and a cleared slot pins no dead value. *)
let undo_unset : Obj.t = Obj.repr 0

let undo_capture_slot : 'a ref -> Obj.t = fun slot -> Obj.repr slot
let undo_capture_val : 'a ref -> Obj.t = fun slot -> Obj.repr !slot
let undo_restore (slot : Obj.t) (v : Obj.t) = (Obj.obj slot : Obj.t ref) := v

type tx = {
  mutable rv : int;
  mutable read_ids : int array;
  mutable read_versions : int array;
  mutable read_vlocks : int Atomic.t array;
  mutable nreads : int;
  (* Read-set dedup: direct-mapped cache over tvar ids, epoch-tagged so
     reset is O(1). A slot holds the id it last admitted; collisions
     evict, which only costs a duplicate entry later, never
     correctness. Kept at 2x the read-array capacity. *)
  mutable dedup_ids : int array;
  mutable dedup_epochs : int array;
  mutable epoch : int;
  writes : (int, wentry) Hashtbl.t;
  mutable wbloom : int; (* word-sized bloom over buffered tvar ids *)
  (* Mutable so a descriptor recycled to a new domain can be reseeded
     with that domain's backoff stream. *)
  mutable backoff : Backoff.t;
  mutable validation_steps : int;
  mutable dedup_hits : int;
  mutable bloom_skips : int;
  mutable extensions : int;
  (* Checkpoint / partial-abort state. Marks are ordered watermarks
     over the read set and write log; [wlog] records buffered tvar ids
     in first-buffer order so post-watermark write entries can be
     dropped; [undo] restores overwritten buffer values. *)
  mutable mark_reads : int array; (* per mark: nreads watermark *)
  mutable mark_wlog : int array; (* per mark: write-log watermark *)
  mutable mark_undo : int array; (* per mark: undo-log watermark *)
  mutable mark_acc : int array; (* per mark: caller's accumulator *)
  mutable nmarks : int;
  mutable wlog : int array; (* buffered tvar ids, insertion order *)
  mutable nwlog : int;
  mutable undo_slots : Obj.t array; (* parallel with undo_vals *)
  mutable undo_vals : Obj.t array;
  mutable nundo : int;
  mutable ncheckpoints : int; (* checkpoint calls this attempt (stats) *)
  mutable resume_marks : int; (* marks salvaged by the last partial abort *)
  mutable resume_acc : int; (* accumulator saved with the salvaged mark *)
}

let clock = Global_clock.create ()
let global_stats = Stm_stats.create ()

(* Chunked ids: one shared atomic op per 1024 tvars instead of a global
   fetch-and-add on every [make]. Per-allocator uniqueness is all the
   dedup cache / bloom filter need. *)
let tvar_ids = Tvar_id.create ()

let make v = { id = Tvar_id.fresh tvar_ids; vlock = Atomic.make 0; content = v }

let initial_reads = 64
let initial_dedup = 2 * initial_reads

let fresh_tx () =
  {
    rv = 0;
    read_ids = Array.make initial_reads (-1);
    read_versions = Array.make initial_reads 0;
    read_vlocks = Array.make initial_reads dummy_vlock;
    nreads = 0;
    dedup_ids = Array.make initial_dedup (-1);
    dedup_epochs = Array.make initial_dedup 0;
    epoch = 0;
    writes = Hashtbl.create 64;
    wbloom = 0;
    backoff = Backoff.for_domain ();
    validation_steps = 0;
    dedup_hits = 0;
    bloom_skips = 0;
    extensions = 0;
    mark_reads = Array.make 16 0;
    mark_wlog = Array.make 16 0;
    mark_undo = Array.make 16 0;
    mark_acc = Array.make 16 0;
    nmarks = 0;
    wlog = Array.make 16 0;
    nwlog = 0;
    undo_slots = Array.make 16 undo_unset;
    undo_vals = Array.make 16 undo_unset;
    nundo = 0;
    ncheckpoints = 0;
    resume_marks = 0;
    resume_acc = 0;
  }

(* Two bit positions in a 63-bit word, derived from a multiplicative
   hash so the sequential tvar ids spread; membership test is
   [wbloom land bits = bits]. *)
let bloom_bit id =
  let h = id * 0x9E3779B9 in
  (1 lsl (h land 31)) lor (1 lsl (31 + ((h lsr 5) land 31)))

(* Per-domain state: [active] is the running transaction (if any);
   [spare] caches the descriptor between transactions so short
   operations do not reallocate the write-set table. [ro_rv] is the
   read version of a running zero-log read-only transaction, or -1 —
   read-only mode needs no descriptor at all (no read set, no write
   set), so a single int is its entire footprint. *)
type domain_state = {
  mutable active : tx option;
  mutable spare : tx option;
  mutable ro_rv : int;
}

let current_key : domain_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { active = None; spare = None; ro_rv = -1 })

let current () = Domain.DLS.get current_key

(* Descriptor free pool (same shape as the [Stm_stats] shard pool): a
   domain's first transaction adopts a scrubbed descriptor donated by
   an exited domain — keeping the log capacities it learned — or
   allocates fresh on a cold start. [Domain.at_exit] scrubs and donates
   the spare, so steady-state respawning workers allocate no
   descriptor, no log arrays and no write-set table at all. *)
let pool_lock = Mutex.create ()
let pool : tx list ref = ref []

(* Drop every heap reference the descriptor still holds (write-set
   table entries, undo slots, vlock pointers) so a pooled descriptor
   never pins tvar values or atomic cells from its previous life. The
   capacity-wide fills are fine here: release is once per domain
   lifetime, never per transaction. *)
let scrub_tx tx =
  Hashtbl.reset tx.writes;
  Array.fill tx.read_vlocks 0 (Array.length tx.read_vlocks) dummy_vlock;
  Array.fill tx.undo_slots 0 (Array.length tx.undo_slots) undo_unset;
  Array.fill tx.undo_vals 0 (Array.length tx.undo_vals) undo_unset;
  tx.nreads <- 0;
  tx.nundo <- 0;
  tx.nwlog <- 0;
  tx.nmarks <- 0;
  tx.wbloom <- 0;
  tx.ncheckpoints <- 0;
  tx.resume_marks <- 0;
  tx.resume_acc <- 0

let release_spare state =
  match state.spare with
  | None -> ()
  | Some tx ->
    state.spare <- None;
    scrub_tx tx;
    if !Stm_intf.descriptor_pooling_enabled then begin
      Mutex.lock pool_lock;
      pool := tx :: !pool;
      Mutex.unlock pool_lock
    end

(* First descriptor acquisition on this domain: pool pop or fresh
   allocation. Runs at most once per domain lifetime ([spare] holds the
   descriptor from then on), which is also the only point the at-exit
   donation needs registering. *)
let acquire_tx state =
  let tx =
    if !Stm_intf.descriptor_pooling_enabled then begin
      Mutex.lock pool_lock;
      let popped =
        match !pool with
        | tx :: rest ->
          pool := rest;
          Some tx
        | [] -> None
      in
      Mutex.unlock pool_lock;
      match popped with
      | Some tx ->
        Stm_stats.record_pool_hit global_stats;
        (* The recycled descriptor carries the donor domain's backoff
           stream; reseed for this domain. *)
        tx.backoff <- Backoff.for_domain ();
        tx
      | None ->
        Stm_stats.record_pool_miss global_stats;
        fresh_tx ()
    end
    else begin
      Stm_stats.record_pool_miss global_stats;
      fresh_tx ()
    end
  in
  state.spare <- Some tx;
  Domain.at_exit (fun () -> release_spare state);
  tx

let in_transaction () =
  let state = current () in
  state.ro_rv >= 0
  ||
  match state.active with
  | None -> false
  | Some _ -> true

(* Probe-and-claim in the dedup cache: [true] means [id] is already in
   the read set (skip the duplicate push). Sequential ids index
   directly, so a traversal narrower than the cache never collides. *)
let dedup_seen tx id =
  let slot = id land (Array.length tx.dedup_ids - 1) in
  if tx.dedup_epochs.(slot) = tx.epoch && tx.dedup_ids.(slot) = id then true
  else begin
    tx.dedup_ids.(slot) <- id;
    tx.dedup_epochs.(slot) <- tx.epoch;
    false
  end

let push_read tx id vlock version =
  let n = tx.nreads in
  if n = Array.length tx.read_ids then begin
    let cap = 2 * n in
    let rids = Array.make cap (-1) in
    let versions = Array.make cap 0 in
    let vlocks = Array.make cap dummy_vlock in
    Array.blit tx.read_ids 0 rids 0 n;
    Array.blit tx.read_versions 0 versions 0 n;
    Array.blit tx.read_vlocks 0 vlocks 0 n;
    tx.read_ids <- rids;
    tx.read_versions <- versions;
    tx.read_vlocks <- vlocks;
    (* Grow the dedup cache with the read set and re-mark the logged
       ids, so dedup stays effective on long traversals. *)
    let size = 2 * Array.length tx.dedup_ids in
    let ids = Array.make size (-1) and epochs = Array.make size tx.epoch in
    for i = 0 to n - 1 do
      let id = rids.(i) in
      ids.(id land (size - 1)) <- id
    done;
    (* The incoming entry claimed its slot in the old cache; re-claim in
       the new one so its next re-read still dedups. *)
    ids.(id land (size - 1)) <- id;
    tx.dedup_ids <- ids;
    tx.dedup_epochs <- epochs
  end;
  tx.read_ids.(n) <- id;
  tx.read_versions.(n) <- version;
  tx.read_vlocks.(n) <- vlock;
  tx.nreads <- n + 1

(* Seeded-bug fixture for the sanitizer (docs/SANITIZER.md): when set,
   read-set validation is skipped at commit AND during timestamp
   extension, so transactions commit on top of — and expose to later
   reads within the same transaction — inconsistent snapshots. The
   opacity checker must flag the lost updates and stale reads this
   produces; never set outside sanitizer fixtures. *)
module Unsafe = struct
  let no_validation = ref false
  let disable_validation () = no_validation := true

  (* Second seeded fixture: partial aborts salvage the newest watermark
     blindly, skipping the read-set prefix validation, so a resumed
     attempt continues on top of a snapshot a concurrent committer
     already invalidated. The opacity checker must flag the resulting
     stale reads; never set outside sanitizer fixtures. *)
  let unvalidated_resume = ref false
  let disable_resume_validation () = unvalidated_resume := true

  let reset () =
    no_validation := false;
    unvalidated_resume := false
end

(* Check every read entry is still at its recorded version. Entries we
   hold the commit lock on appear as [version + 1]. *)
let read_set_valid tx ~own_locks =
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < tx.nreads do
    let cur = Atomic.get tx.read_vlocks.(!i) in
    let version = tx.read_versions.(!i) in
    if cur <> version then
      if
        not
          (own_locks && cur = version + 1
          && Hashtbl.mem tx.writes tx.read_ids.(!i))
      then ok := false;
    incr i
  done;
  tx.validation_steps <- tx.validation_steps + !i;
  !ok

(* The read observed a version newer than [rv]: try to extend [rv] to
   the current clock instead of aborting. *)
let extend tx =
  let now = Global_clock.now clock in
  if !Unsafe.no_validation || read_set_valid tx ~own_locks:false then begin
    tx.rv <- now;
    tx.extensions <- tx.extensions + 1
  end
  else raise Conflict

let rec tx_read : type a. tx -> a tvar -> a =
 fun tx tv ->
  let v1 = Atomic.get tv.vlock in
  if v1 land 1 = 1 then raise Conflict
  else begin
    let value = tv.content in
    let v2 = Atomic.get tv.vlock in
    if v1 <> v2 then raise Conflict
    else if v1 > tx.rv then begin
      extend tx;
      tx_read tx tv
    end
    else begin
      (* A dedup hit is sound: a logged tvar cannot have changed while
         the transaction is still viable — a change either shows up as
         [v1 > rv] (the extension then revalidates the logged entry and
         conflicts) or is caught by the same entry at commit. Skipping
         the duplicate push therefore preserves the exact conflict
         set. *)
      if dedup_seen tx tv.id then tx.dedup_hits <- tx.dedup_hits + 1
      else push_read tx tv.id tv.vlock v1;
      value
    end
  end

(* Raised by a zero-log read when the snapshot is stale; [atomic_ro]
   re-snapshots the read version and re-runs the closure. Never
   escapes this module. *)
exception Ro_restart

(* A zero-log read: the vlock sandwich plus a [version <= rv] check.
   Nothing is logged — a read-only transaction whose every read
   satisfies the check is serializable at its read version, with no
   commit-time validation and no clock CAS (TL2's read-only mode). A
   locked vlock is a committer in its (short) write-back window, so
   spin rather than restart the whole closure. *)
let rec ro_read : type a. domain_state -> a tvar -> a =
 fun state tv ->
  let v1 = Atomic.get tv.vlock in
  if v1 land 1 = 1 then begin
    Domain.cpu_relax ();
    ro_read state tv
  end
  else begin
    let value = tv.content in
    let v2 = Atomic.get tv.vlock in
    if v1 <> v2 then ro_read state tv
    else if v1 > state.ro_rv then raise Ro_restart
    else value
  end

let read tv =
  let state = current () in
  match state.active with
  | None -> if state.ro_rv >= 0 then ro_read state tv else tv.content
  | Some tx ->
    if tx.wbloom = 0 then tx_read tx tv
    else begin
      let bits = bloom_bit tv.id in
      if tx.wbloom land bits <> bits then begin
        (* Definitely never buffered: skip the hash probe. *)
        tx.bloom_skips <- tx.bloom_skips + 1;
        tx_read tx tv
      end
      else
        match Hashtbl.find_opt tx.writes tv.id with
        | Some entry -> !(cast_ref tv entry)
        | None -> tx_read tx tv (* bloom false positive *)
    end

let write tv v =
  let state = current () in
  match state.active with
  | None ->
    if state.ro_rv >= 0 then raise Stm_intf.Write_in_read_only
    else tv.content <- v
  | Some tx -> (
    match Hashtbl.find_opt tx.writes tv.id with
    | Some entry ->
      let slot = cast_ref tv entry in
      (* With live checkpoints, save the overwritten buffer value so a
         rollback to an earlier watermark can restore it. *)
      if tx.nmarks > 0 then begin
        if tx.nundo = Array.length tx.undo_slots then begin
          let cap = 2 * tx.nundo in
          let slots = Array.make cap undo_unset in
          let vals = Array.make cap undo_unset in
          Array.blit tx.undo_slots 0 slots 0 tx.nundo;
          Array.blit tx.undo_vals 0 vals 0 tx.nundo;
          tx.undo_slots <- slots;
          tx.undo_vals <- vals
        end;
        tx.undo_slots.(tx.nundo) <- undo_capture_slot slot;
        tx.undo_vals.(tx.nundo) <- undo_capture_val slot;
        tx.nundo <- tx.nundo + 1
      end;
      slot := v
    | None ->
      tx.wbloom <- tx.wbloom lor bloom_bit tv.id;
      Hashtbl.add tx.writes tv.id
        (W { tv; value = ref v; locked_from = 0; locked = false });
      (* Insertion-order log: lets a partial abort drop exactly the
         entries buffered past a watermark. *)
      if tx.nwlog = Array.length tx.wlog then begin
        let bigger = Array.make (2 * tx.nwlog) 0 in
        Array.blit tx.wlog 0 bigger 0 tx.nwlog;
        tx.wlog <- bigger
      end;
      tx.wlog.(tx.nwlog) <- tv.id;
      tx.nwlog <- tx.nwlog + 1)

let unlock_acquired tx =
  Hashtbl.iter
    (fun _ (W w) ->
      if w.locked then begin
        Atomic.set w.tv.vlock w.locked_from;
        w.locked <- false
      end)
    tx.writes

let lock_write_set tx =
  try
    Hashtbl.iter
      (fun _ (W w) ->
        let v = Atomic.get w.tv.vlock in
        if v land 1 = 1 || not (Atomic.compare_and_set w.tv.vlock v (v + 1))
        then raise Exit
        else begin
          w.locked_from <- v;
          w.locked <- true
        end)
      tx.writes
  with Exit ->
    unlock_acquired tx;
    raise Conflict

let commit tx =
  if Hashtbl.length tx.writes = 0 then
    Stm_stats.record_commit global_stats ~read_only:true
  else begin
    lock_write_set tx;
    (* Clock advance after the locks (required by [tick_or_reuse]'s
       contract): one CAS attempt; on failure adopt the concurrent
       committer's value. A reused value forfeits the "nothing
       committed since rv" shortcut below — the interleaved tick WAS a
       commit. *)
    let wv, unique =
      match Global_clock.tick_or_reuse clock with
      | Ticked wv -> (wv, true)
      | Reused wv ->
        Stm_stats.record_clock_reuse global_stats;
        (wv, false)
    in
    (* If nothing committed since we started, the read set is trivially
       intact (standard TL2 optimization). *)
    if
      (not !Unsafe.no_validation)
      && not (unique && wv = tx.rv + 2)
      && not (read_set_valid tx ~own_locks:true)
    then begin
      unlock_acquired tx;
      raise Conflict
    end;
    Hashtbl.iter
      (fun _ (W w) ->
        w.tv.content <- !(w.value);
        w.locked <- false;
        Atomic.set w.tv.vlock wv)
      tx.writes;
    Stm_stats.record_commit global_stats ~read_only:false
  end

let flush_tx_stats tx =
  Stm_stats.record_validation global_stats ~steps:tx.validation_steps;
  Stm_stats.record_read_set global_stats ~size:tx.nreads;
  Stm_stats.record_tx_log global_stats ~dedup_hits:tx.dedup_hits
    ~bloom_skips:tx.bloom_skips ~extensions:tx.extensions;
  Stm_stats.record_checkpoints global_stats ~count:tx.ncheckpoints

let reset_tx tx =
  tx.rv <- Global_clock.now clock;
  tx.nreads <- 0;
  Hashtbl.reset tx.writes;
  tx.wbloom <- 0;
  tx.epoch <- tx.epoch + 1; (* invalidates the whole dedup cache in O(1) *)
  tx.validation_steps <- 0;
  tx.dedup_hits <- 0;
  tx.bloom_skips <- 0;
  tx.extensions <- 0;
  tx.nmarks <- 0;
  tx.nwlog <- 0;
  (* Drop value references so the descriptor pins nothing dead. *)
  Array.fill tx.undo_slots 0 tx.nundo undo_unset;
  Array.fill tx.undo_vals 0 tx.nundo undo_unset;
  tx.nundo <- 0;
  tx.ncheckpoints <- 0;
  tx.resume_marks <- 0;
  tx.resume_acc <- 0;
  (* Shrink a read set that ballooned in a previous long transaction so
     per-op memory stays bounded; the dedup cache shrinks with it. *)
  if Array.length tx.read_ids > 1 lsl 16 then begin
    tx.read_ids <- Array.make initial_reads (-1);
    tx.read_versions <- Array.make initial_reads 0;
    tx.read_vlocks <- Array.make initial_reads dummy_vlock;
    tx.dedup_ids <- Array.make initial_dedup (-1);
    tx.dedup_epochs <- Array.make initial_dedup 0
  end

let partial_abort = true

(* Record a watermark: current read-set size, write-log length, undo
   length, and the caller's accumulator. A no-op outside an update
   transaction or with partial abort disabled, so full-abort runs pay
   nothing. *)
let checkpoint ~acc =
  let state = current () in
  match state.active with
  | None -> ()
  | Some tx ->
    if !Stm_intf.partial_abort_enabled then begin
      let n = tx.nmarks in
      if n = Array.length tx.mark_reads then begin
        let grow a = Array.append a (Array.make n 0) in
        tx.mark_reads <- grow tx.mark_reads;
        tx.mark_wlog <- grow tx.mark_wlog;
        tx.mark_undo <- grow tx.mark_undo;
        tx.mark_acc <- grow tx.mark_acc
      end;
      tx.mark_reads.(n) <- tx.nreads;
      tx.mark_wlog.(n) <- tx.nwlog;
      tx.mark_undo.(n) <- tx.nundo;
      tx.mark_acc.(n) <- acc;
      tx.nmarks <- n + 1;
      tx.ncheckpoints <- tx.ncheckpoints + 1
    end

let resume () =
  let state = current () in
  match state.active with
  | None -> (0, 0)
  | Some tx -> (tx.resume_marks, tx.resume_acc)

(* Conflict with live checkpoints: find the longest valid read-set
   prefix, roll back to the newest watermark inside it, and re-extend
   [rv]. Returns [true] when the attempt can resume (the closure will
   skip [resume_marks] checkpointed units), [false] to fall back to a
   full abort. No commit locks are held here — every [Conflict] raise
   site releases them first. *)
let try_partial_rollback tx =
  if tx.nmarks = 0 || not !Stm_intf.partial_abort_enabled then false
  else begin
    (* Sample the clock BEFORE validating (same ordering as [extend]):
       a commit that lands after the sample is > [now] and will be
       caught by the per-read rv check later. *)
    let now = Global_clock.now clock in
    let mark =
      if !Unsafe.unvalidated_resume then tx.nmarks - 1
      else begin
        (* First invalid read position; everything before it is intact. *)
        let p = ref 0 in
        (try
           while !p < tx.nreads do
             if Atomic.get tx.read_vlocks.(!p) <> tx.read_versions.(!p) then
               raise Exit;
             incr p
           done
         with Exit -> ());
        tx.validation_steps <- tx.validation_steps + !p + 1;
        (* Newest mark whose watermark fits inside the valid prefix. *)
        let m = ref (tx.nmarks - 1) in
        while !m >= 0 && tx.mark_reads.(!m) > !p do
          decr m
        done;
        !m
      end
    in
    if mark < 0 then begin
      Stm_stats.record_resume_failure global_stats;
      false
    end
    else begin
      (* Truncate the read set to the watermark and drop the write
         entries buffered past it (insertion order makes the suffix
         exact), undoing overwrites of retained entries in reverse. *)
      tx.nreads <- tx.mark_reads.(mark);
      for j = tx.nwlog - 1 downto tx.mark_wlog.(mark) do
        Hashtbl.remove tx.writes tx.wlog.(j)
      done;
      tx.nwlog <- tx.mark_wlog.(mark);
      for j = tx.nundo - 1 downto tx.mark_undo.(mark) do
        undo_restore tx.undo_slots.(j) tx.undo_vals.(j);
        tx.undo_slots.(j) <- undo_unset;
        tx.undo_vals.(j) <- undo_unset
      done;
      tx.nundo <- tx.mark_undo.(mark);
      let bloom = ref 0 in
      for j = 0 to tx.nwlog - 1 do
        bloom := !bloom lor bloom_bit tx.wlog.(j)
      done;
      tx.wbloom <- !bloom;
      (* Invalidate the dedup cache, then re-claim the retained prefix
         so its re-reads still dedup; truncated ids will re-log. *)
      tx.epoch <- tx.epoch + 1;
      for i = 0 to tx.nreads - 1 do
        let id = tx.read_ids.(i) in
        tx.dedup_ids.(id land (Array.length tx.dedup_ids - 1)) <- id;
        tx.dedup_epochs.(id land (Array.length tx.dedup_ids - 1)) <- tx.epoch
      done;
      tx.nmarks <- mark + 1;
      tx.resume_marks <- mark + 1;
      tx.resume_acc <- tx.mark_acc.(mark);
      (* The prefix just validated at [now]: adopt it as the new read
         version so resumed reads post-dating the old rv don't refire. *)
      tx.rv <- now;
      Stm_stats.record_partial_abort global_stats ~reads_salvaged:tx.nreads;
      true
    end
  end

let atomic f =
  let state = current () in
  if state.ro_rv >= 0 then
    (* Nested inside [atomic_ro]: flatten into the read-only
       transaction. Writes keep raising [Write_in_read_only], so a
       mis-declared operation cannot smuggle updates through an inner
       [atomic]. *)
    f ()
  else
    match state.active with
    | Some _ -> f () (* nested: flatten *)
    | None ->
    let tx =
      match state.spare with
      | Some tx -> tx
      | None -> acquire_tx state
    in
    let rec attempt ~fresh () =
      if fresh then begin
        reset_tx tx;
        state.active <- Some tx
      end;
      match
        let result = f () in
        commit tx;
        result
      with
      | result ->
        state.active <- None;
        flush_tx_stats tx;
        Backoff.reset tx.backoff;
        result
      | exception Conflict ->
        if try_partial_rollback tx then
          (* Partial abort: the descriptor keeps its validated prefix
             and stays active; re-run the closure, which consults
             [resume] and skips the salvaged checkpointed units. Not
             counted as an abort and no backoff — the conflicting
             window was already rolled past. *)
          attempt ~fresh:false ()
        else begin
          state.active <- None;
          flush_tx_stats tx;
          Stm_stats.record_abort global_stats;
          Backoff.once tx.backoff;
          attempt ~fresh:true ()
        end
      | exception exn ->
        (* The rv check on every read gives opacity: the view that
           produced [exn] was consistent, so roll back (discard the
           write buffer) and propagate. *)
        state.active <- None;
        flush_tx_stats tx;
        raise exn
    in
    attempt ~fresh:true ()

let atomic_ro f =
  let state = current () in
  if state.ro_rv >= 0 then f () (* nested ro: flatten *)
  else
    match state.active with
    | Some _ ->
      (* Inside an update transaction: flatten into it — its reads are
         already validated, and its writes are wanted. *)
      f ()
    | None ->
      let rec attempt () =
        state.ro_rv <- Global_clock.now clock;
        match f () with
        | result ->
          state.ro_rv <- -1;
          (* No read set was kept, so there is nothing to flush:
             max_read_set / read_set_entries are untouched by ro
             transactions. *)
          Stm_stats.record_ro_commit global_stats;
          result
        | exception Ro_restart ->
          (* A read post-dated the snapshot: re-snapshot rv and re-run
             (TinySTM-style). Counted separately from aborts — no
             conflict with a writer's outcome, just a stale start. *)
          state.ro_rv <- -1;
          Stm_stats.record_ro_revalidation global_stats;
          attempt ()
        | exception exn ->
          (* Every completed read satisfied [version <= rv], so the
             view that produced [exn] was a consistent snapshot:
             propagate (this includes [Write_in_read_only], which the
             runtime dispatch layer turns into a demotion). *)
          state.ro_rv <- -1;
          raise exn
      in
      attempt ()

let record_ro_demotion () = Stm_stats.record_ro_demotion global_stats

let stats () = Stm_stats.snapshot global_stats
let reset_stats () = Stm_stats.reset global_stats
