(* A multi-version STM in the style of the Lazy Snapshot Algorithm
   (Riegel, Felber, Fetzer, DISC'06 — reference [11] of the STMBench7
   paper, one of the "solutions already proposed" for the long-traversal
   problem).

   Every tvar keeps a short history of (version, value) pairs. Update
   transactions behave like TL2 (read-version check with extension,
   lazy writes, commit-time locking, O(k) validation), but commits
   *append* to the history instead of overwriting. Transactions opened
   in snapshot mode — which the LSA runtime selects for operations with
   read-only profiles — read the newest version no newer than their
   start time: they never validate and never conflict with writers, and
   abort only in the rare case where the needed version has already
   been evicted from a history.

   This is exactly what the paper's §5 calls for: T1-class traversals
   run at sequential speed regardless of concurrent updates, where the
   invisible-read ASTM pays O(k²) validation and the locks serialize.

   Version histories are fixed-size circular arrays (two flat parallel
   buffers plus a head index) rather than cons lists: a commit appends
   by overwriting the oldest slot with no allocation and no recursive
   truncation, and a snapshot read is a short linear scan newest-to-
   oldest over a cache-friendly int array ([history_depth] is small
   enough that binary search would not pay for itself). The update
   path shares TL2's log fast paths — read-set dedup, a word-sized
   write-set bloom filter, and the GV4-style commit clock; see
   docs/PERF.md. *)

exception Conflict = Stm_intf.Conflict

let name = "lsa"

(* Versions kept per tvar. Snapshot transactions abort if they need
   something older; STMBench7's long traversals are fast relative to
   the update rate at realistic scales, so a small constant works.
   Keep it small: every live slot of every [values] ring is a pointer
   the GC must mark, so depth is a direct tax on traversal-heavy
   workloads (depth 8 measurably slowed single-threaded T1). *)
let history_depth = 4

type 'a tvar = {
  id : int;
  vlock : int Atomic.t; (* even = version of the head entry, odd = locked *)
  versions : int array; (* circular ring, parallel to [values] *)
  values : 'a array;
  mutable head : int; (* index of the newest entry *)
}

type wentry =
  | W : {
      tv : 'a tvar;
      value : 'a ref;
      mutable locked_from : int;
      mutable locked : bool;
    }
      -> wentry

let cast_ref : type a. a tvar -> wentry -> a ref =
 fun tv (W w) ->
  assert (w.tv.id = tv.id);
  (Obj.magic w.value : a ref)

(* Structure-of-arrays read set and Obj-paired undo log; see the twin
   comments in Tl2 — the layouts, growth and scrub discipline are
   identical, and the coercions carry the same justification. *)
let dummy_vlock : int Atomic.t = Atomic.make 0
let undo_unset : Obj.t = Obj.repr 0

let undo_capture_slot : 'a ref -> Obj.t = fun slot -> Obj.repr slot
let undo_capture_val : 'a ref -> Obj.t = fun slot -> Obj.repr !slot
let undo_restore (slot : Obj.t) (v : Obj.t) = (Obj.obj slot : Obj.t ref) := v

type mode =
  | Update
  | Snapshot

type tx = {
  mutable mode : mode;
  mutable rv : int;
  mutable read_ids : int array;
  mutable read_versions : int array;
  mutable read_vlocks : int Atomic.t array;
  mutable nreads : int;
  (* Read-set dedup cache; see the twin comment in Tl2. *)
  mutable dedup_ids : int array;
  mutable dedup_epochs : int array;
  mutable epoch : int;
  writes : (int, wentry) Hashtbl.t;
  mutable wbloom : int;
  (* Mutable so a recycled descriptor can be reseeded per domain. *)
  mutable backoff : Backoff.t;
  mutable validation_steps : int;
  mutable dedup_hits : int;
  mutable bloom_skips : int;
  mutable extensions : int;
  (* Checkpoint / partial-abort state (update mode only; snapshot
     transactions never validate, so checkpointing them is a no-op).
     Same layout as Tl2. *)
  mutable mark_reads : int array;
  mutable mark_wlog : int array;
  mutable mark_undo : int array;
  mutable mark_acc : int array;
  mutable nmarks : int;
  mutable wlog : int array;
  mutable nwlog : int;
  mutable undo_slots : Obj.t array;
  mutable undo_vals : Obj.t array;
  mutable nundo : int;
  mutable ncheckpoints : int;
  mutable resume_marks : int;
  mutable resume_acc : int;
}

let clock = Global_clock.create ()
let global_stats = Stm_stats.create ()

(* Chunked ids; see Tvar_id — one shared atomic op per 1024 tvars. *)
let tvar_ids = Tvar_id.create ()

let make v =
  {
    id = Tvar_id.fresh tvar_ids;
    vlock = Atomic.make 0;
    (* Every slot starts as (0, v): logically "v since version 0"
       repeated, which any snapshot resolves correctly. *)
    versions = Array.make history_depth 0;
    values = Array.make history_depth v;
    head = 0;
  }

let initial_reads = 64
let initial_dedup = 2 * initial_reads

let fresh_tx () =
  {
    mode = Update;
    rv = 0;
    read_ids = Array.make initial_reads (-1);
    read_versions = Array.make initial_reads 0;
    read_vlocks = Array.make initial_reads dummy_vlock;
    nreads = 0;
    dedup_ids = Array.make initial_dedup (-1);
    dedup_epochs = Array.make initial_dedup 0;
    epoch = 0;
    writes = Hashtbl.create 64;
    wbloom = 0;
    backoff = Backoff.for_domain ();
    validation_steps = 0;
    dedup_hits = 0;
    bloom_skips = 0;
    extensions = 0;
    mark_reads = Array.make 16 0;
    mark_wlog = Array.make 16 0;
    mark_undo = Array.make 16 0;
    mark_acc = Array.make 16 0;
    nmarks = 0;
    wlog = Array.make 16 0;
    nwlog = 0;
    undo_slots = Array.make 16 undo_unset;
    undo_vals = Array.make 16 undo_unset;
    nundo = 0;
    ncheckpoints = 0;
    resume_marks = 0;
    resume_acc = 0;
  }

let bloom_bit id =
  let h = id * 0x9E3779B9 in
  (1 lsl (h land 31)) lor (1 lsl (31 + ((h lsr 5) land 31)))

type domain_state = {
  mutable active : tx option;
  mutable spare : tx option;
}

let current_key : domain_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { active = None; spare = None })

let current () = Domain.DLS.get current_key

(* Descriptor free pool; same design as Tl2's (scrub-on-release,
   at-exit donation, pool pop or fresh allocation on a domain's first
   transaction, backoff reseed on adoption). *)
let pool_lock = Mutex.create ()
let pool : tx list ref = ref []

let scrub_tx tx =
  Hashtbl.reset tx.writes;
  Array.fill tx.read_vlocks 0 (Array.length tx.read_vlocks) dummy_vlock;
  Array.fill tx.undo_slots 0 (Array.length tx.undo_slots) undo_unset;
  Array.fill tx.undo_vals 0 (Array.length tx.undo_vals) undo_unset;
  tx.nreads <- 0;
  tx.nundo <- 0;
  tx.nwlog <- 0;
  tx.nmarks <- 0;
  tx.wbloom <- 0;
  tx.ncheckpoints <- 0;
  tx.resume_marks <- 0;
  tx.resume_acc <- 0

let release_spare state =
  match state.spare with
  | None -> ()
  | Some tx ->
    state.spare <- None;
    scrub_tx tx;
    if !Stm_intf.descriptor_pooling_enabled then begin
      Mutex.lock pool_lock;
      pool := tx :: !pool;
      Mutex.unlock pool_lock
    end

let acquire_tx state =
  let tx =
    if !Stm_intf.descriptor_pooling_enabled then begin
      Mutex.lock pool_lock;
      let popped =
        match !pool with
        | tx :: rest ->
          pool := rest;
          Some tx
        | [] -> None
      in
      Mutex.unlock pool_lock;
      match popped with
      | Some tx ->
        Stm_stats.record_pool_hit global_stats;
        tx.backoff <- Backoff.for_domain ();
        tx
      | None ->
        Stm_stats.record_pool_miss global_stats;
        fresh_tx ()
    end
    else begin
      Stm_stats.record_pool_miss global_stats;
      fresh_tx ()
    end
  in
  state.spare <- Some tx;
  Domain.at_exit (fun () -> release_spare state);
  tx

let in_transaction () =
  match (current ()).active with
  | None -> false
  | Some _ -> true

let head_value tv = tv.values.(tv.head)

let next_slot h = if h + 1 = history_depth then 0 else h + 1

(* Append (wv, v) over the oldest slot. Caller must hold the vlock. *)
let append_version : type a. a tvar -> int -> a -> unit =
 fun tv wv v ->
  let h = next_slot tv.head in
  tv.versions.(h) <- wv;
  tv.values.(h) <- v;
  tv.head <- h

let dedup_seen tx id =
  let slot = id land (Array.length tx.dedup_ids - 1) in
  if tx.dedup_epochs.(slot) = tx.epoch && tx.dedup_ids.(slot) = id then true
  else begin
    tx.dedup_ids.(slot) <- id;
    tx.dedup_epochs.(slot) <- tx.epoch;
    false
  end

let push_read tx id vlock version =
  let n = tx.nreads in
  if n = Array.length tx.read_ids then begin
    let cap = 2 * n in
    let rids = Array.make cap (-1) in
    let versions = Array.make cap 0 in
    let vlocks = Array.make cap dummy_vlock in
    Array.blit tx.read_ids 0 rids 0 n;
    Array.blit tx.read_versions 0 versions 0 n;
    Array.blit tx.read_vlocks 0 vlocks 0 n;
    tx.read_ids <- rids;
    tx.read_versions <- versions;
    tx.read_vlocks <- vlocks;
    let size = 2 * Array.length tx.dedup_ids in
    let ids = Array.make size (-1) and epochs = Array.make size tx.epoch in
    for i = 0 to n - 1 do
      let id = rids.(i) in
      ids.(id land (size - 1)) <- id
    done;
    ids.(id land (size - 1)) <- id;
    tx.dedup_ids <- ids;
    tx.dedup_epochs <- epochs
  end;
  tx.read_ids.(n) <- id;
  tx.read_versions.(n) <- version;
  tx.read_vlocks.(n) <- vlock;
  tx.nreads <- n + 1

let read_set_valid tx ~own_locks =
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < tx.nreads do
    let cur = Atomic.get tx.read_vlocks.(!i) in
    let version = tx.read_versions.(!i) in
    if cur <> version then
      if
        not
          (own_locks && cur = version + 1
          && Hashtbl.mem tx.writes tx.read_ids.(!i))
      then ok := false;
    incr i
  done;
  tx.validation_steps <- tx.validation_steps + !i;
  !ok

let extend tx =
  let now = Global_clock.now clock in
  if read_set_valid tx ~own_locks:false then begin
    tx.rv <- now;
    tx.extensions <- tx.extensions + 1
  end
  else raise Conflict

(* Snapshot read: the newest version no newer than [rv]. The vlock
   sandwich makes the ring access consistent: a committer holds the
   lock (odd) while it mutates the ring, so equal even vlock values
   around the access mean nothing moved. An unlocked vlock IS the
   version of the head slot, so the overwhelmingly common case
   (newest version old enough) needs no ring scan at all: one head
   load, one value load, re-check the vlock. *)
let rec snapshot_read : type a. tx -> a tvar -> a =
 fun tx tv ->
  let v1 = Atomic.get tv.vlock in
  if v1 land 1 = 1 then begin
    (* A committer holds the lock; its write will carry a version
       newer than rv, so the pre-lock history suffices — spin briefly
       for the consistent pair. *)
    Domain.cpu_relax ();
    snapshot_read tx tv
  end
  else if v1 <= tx.rv then begin
    let value = tv.values.(tv.head) in
    let v2 = Atomic.get tv.vlock in
    if v1 = v2 then value else snapshot_read tx tv
  end
  else snapshot_scan tx tv v1

(* Slow path: the newest version is too new — scan the ring
   newest-to-oldest for one no newer than [rv]. *)
and snapshot_scan : type a. tx -> a tvar -> int -> a =
 fun tx tv v1 ->
  let rec find i =
    if i = history_depth then -1
    else begin
      let idx = tv.head - i in
      let idx = if idx < 0 then idx + history_depth else idx in
      if tv.versions.(idx) <= tx.rv then idx else find (i + 1)
    end
  in
  let idx = find 0 in
  let value = tv.values.(if idx >= 0 then idx else 0) in
  let v2 = Atomic.get tv.vlock in
  if v1 <> v2 then snapshot_read tx tv
  else if idx >= 0 then value
  else raise Conflict (* evicted: every live version is newer than rv *)

let rec update_read : type a. tx -> a tvar -> a =
 fun tx tv ->
  let v1 = Atomic.get tv.vlock in
  if v1 land 1 = 1 then raise Conflict
  else begin
    let value = head_value tv in
    let v2 = Atomic.get tv.vlock in
    if v1 <> v2 then raise Conflict
    else if v1 > tx.rv then begin
      extend tx;
      update_read tx tv
    end
    else begin
      (* Dedup-hit soundness: identical argument to Tl2.tx_read. *)
      if dedup_seen tx tv.id then tx.dedup_hits <- tx.dedup_hits + 1
      else push_read tx tv.id tv.vlock v1;
      value
    end
  end

let read tv =
  match (current ()).active with
  | None -> head_value tv
  | Some tx -> (
    match tx.mode with
    | Snapshot -> snapshot_read tx tv
    | Update ->
      if tx.wbloom = 0 then update_read tx tv
      else begin
        let bits = bloom_bit tv.id in
        if tx.wbloom land bits <> bits then begin
          tx.bloom_skips <- tx.bloom_skips + 1;
          update_read tx tv
        end
        else
          match Hashtbl.find_opt tx.writes tv.id with
          | Some entry -> !(cast_ref tv entry)
          | None -> update_read tx tv
      end)

let write tv v =
  match (current ()).active with
  | None ->
    (* A non-transactional store must still look like a committed
       version: overwriting the head slot in place would let a
       concurrent snapshot reader at [rv >= head version] observe the
       new value under the old timestamp. Take the vlock like a
       committer, draw a fresh write version from the clock, and
       append. *)
    let rec acquire () =
      let cur = Atomic.get tv.vlock in
      if cur land 1 = 1 || not (Atomic.compare_and_set tv.vlock cur (cur + 1))
      then begin
        Domain.cpu_relax ();
        acquire ()
      end
    in
    acquire ();
    let wv = Global_clock.tick clock in
    append_version tv wv v;
    Atomic.set tv.vlock wv
  | Some tx -> (
    match tx.mode with
    | Snapshot ->
      (* The snapshot stays valid — nothing was mutated — so raising
         here lets the runtime dispatch layer catch the signal and
         re-run the operation as an update transaction (adaptive
         demotion) instead of crashing on a mis-declared profile. *)
      raise Stm_intf.Write_in_read_only
    | Update -> (
      match Hashtbl.find_opt tx.writes tv.id with
      | Some entry ->
        let slot = cast_ref tv entry in
        if tx.nmarks > 0 then begin
          if tx.nundo = Array.length tx.undo_slots then begin
            let cap = 2 * tx.nundo in
            let slots = Array.make cap undo_unset in
            let vals = Array.make cap undo_unset in
            Array.blit tx.undo_slots 0 slots 0 tx.nundo;
            Array.blit tx.undo_vals 0 vals 0 tx.nundo;
            tx.undo_slots <- slots;
            tx.undo_vals <- vals
          end;
          tx.undo_slots.(tx.nundo) <- undo_capture_slot slot;
          tx.undo_vals.(tx.nundo) <- undo_capture_val slot;
          tx.nundo <- tx.nundo + 1
        end;
        slot := v
      | None ->
        tx.wbloom <- tx.wbloom lor bloom_bit tv.id;
        Hashtbl.add tx.writes tv.id
          (W { tv; value = ref v; locked_from = 0; locked = false });
        if tx.nwlog = Array.length tx.wlog then begin
          let bigger = Array.make (2 * tx.nwlog) 0 in
          Array.blit tx.wlog 0 bigger 0 tx.nwlog;
          tx.wlog <- bigger
        end;
        tx.wlog.(tx.nwlog) <- tv.id;
        tx.nwlog <- tx.nwlog + 1))

let unlock_acquired tx =
  Hashtbl.iter
    (fun _ (W w) ->
      if w.locked then begin
        Atomic.set w.tv.vlock w.locked_from;
        w.locked <- false
      end)
    tx.writes

let lock_write_set tx =
  try
    Hashtbl.iter
      (fun _ (W w) ->
        let v = Atomic.get w.tv.vlock in
        if v land 1 = 1 || not (Atomic.compare_and_set w.tv.vlock v (v + 1))
        then raise Exit
        else begin
          w.locked_from <- v;
          w.locked <- true
        end)
      tx.writes
  with Exit ->
    unlock_acquired tx;
    raise Conflict

let commit tx =
  if Hashtbl.length tx.writes = 0 then begin
    match tx.mode with
    | Snapshot ->
      (* Snapshot commits are LSA's zero-log read-only fast path: no
         read set was kept, no validation ran. *)
      Stm_stats.record_ro_commit global_stats
    | Update -> Stm_stats.record_commit global_stats ~read_only:true
  end
  else begin
    lock_write_set tx;
    (* Same GV4-style advance as Tl2.commit: single CAS attempt after
       the locks; a reused value always validates. *)
    let wv, unique =
      match Global_clock.tick_or_reuse clock with
      | Ticked wv -> (wv, true)
      | Reused wv ->
        Stm_stats.record_clock_reuse global_stats;
        (wv, false)
    in
    if
      not (unique && wv = tx.rv + 2)
      && not (read_set_valid tx ~own_locks:true)
    then begin
      unlock_acquired tx;
      raise Conflict
    end;
    Hashtbl.iter
      (fun _ (W w) ->
        append_version w.tv wv !(w.value);
        w.locked <- false;
        Atomic.set w.tv.vlock wv)
      tx.writes;
    Stm_stats.record_commit global_stats ~read_only:false
  end

let flush_tx_stats tx =
  Stm_stats.record_validation global_stats ~steps:tx.validation_steps;
  Stm_stats.record_read_set global_stats ~size:tx.nreads;
  Stm_stats.record_tx_log global_stats ~dedup_hits:tx.dedup_hits
    ~bloom_skips:tx.bloom_skips ~extensions:tx.extensions;
  Stm_stats.record_checkpoints global_stats ~count:tx.ncheckpoints

let reset_tx tx mode =
  tx.mode <- mode;
  tx.rv <- Global_clock.now clock;
  tx.nreads <- 0;
  Hashtbl.reset tx.writes;
  tx.wbloom <- 0;
  tx.epoch <- tx.epoch + 1;
  tx.validation_steps <- 0;
  tx.dedup_hits <- 0;
  tx.bloom_skips <- 0;
  tx.extensions <- 0;
  tx.nmarks <- 0;
  tx.nwlog <- 0;
  Array.fill tx.undo_slots 0 tx.nundo undo_unset;
  Array.fill tx.undo_vals 0 tx.nundo undo_unset;
  tx.nundo <- 0;
  tx.ncheckpoints <- 0;
  tx.resume_marks <- 0;
  tx.resume_acc <- 0;
  (* Same shrink guard as Tl2.reset_tx (64-entry floor, 2^16 ceiling),
     dedup cache shrinking symmetrically. *)
  if Array.length tx.read_ids > 1 lsl 16 then begin
    tx.read_ids <- Array.make initial_reads (-1);
    tx.read_versions <- Array.make initial_reads 0;
    tx.read_vlocks <- Array.make initial_reads dummy_vlock;
    tx.dedup_ids <- Array.make initial_dedup (-1);
    tx.dedup_epochs <- Array.make initial_dedup 0
  end

let partial_abort = true

(* Checkpoint / resume / partial rollback: the update-mode machinery is
   the same ordered-watermark design as Tl2 (see the comments there);
   snapshot transactions never validate, so [checkpoint] ignores them
   and their conflicts (ring evictions) always full-abort. *)
let checkpoint ~acc =
  let state = current () in
  match state.active with
  | None -> ()
  | Some tx ->
    if tx.mode = Update && !Stm_intf.partial_abort_enabled then begin
      let n = tx.nmarks in
      if n = Array.length tx.mark_reads then begin
        let grow a = Array.append a (Array.make n 0) in
        tx.mark_reads <- grow tx.mark_reads;
        tx.mark_wlog <- grow tx.mark_wlog;
        tx.mark_undo <- grow tx.mark_undo;
        tx.mark_acc <- grow tx.mark_acc
      end;
      tx.mark_reads.(n) <- tx.nreads;
      tx.mark_wlog.(n) <- tx.nwlog;
      tx.mark_undo.(n) <- tx.nundo;
      tx.mark_acc.(n) <- acc;
      tx.nmarks <- n + 1;
      tx.ncheckpoints <- tx.ncheckpoints + 1
    end

let resume () =
  let state = current () in
  match state.active with
  | None -> (0, 0)
  | Some tx -> (tx.resume_marks, tx.resume_acc)

let try_partial_rollback tx =
  if tx.nmarks = 0 || not !Stm_intf.partial_abort_enabled then false
  else begin
    let now = Global_clock.now clock in
    let p = ref 0 in
    (try
       while !p < tx.nreads do
         if Atomic.get tx.read_vlocks.(!p) <> tx.read_versions.(!p) then
           raise Exit;
         incr p
       done
     with Exit -> ());
    tx.validation_steps <- tx.validation_steps + !p + 1;
    let mark = ref (tx.nmarks - 1) in
    while !mark >= 0 && tx.mark_reads.(!mark) > !p do
      decr mark
    done;
    let mark = !mark in
    if mark < 0 then begin
      Stm_stats.record_resume_failure global_stats;
      false
    end
    else begin
      tx.nreads <- tx.mark_reads.(mark);
      for j = tx.nwlog - 1 downto tx.mark_wlog.(mark) do
        Hashtbl.remove tx.writes tx.wlog.(j)
      done;
      tx.nwlog <- tx.mark_wlog.(mark);
      for j = tx.nundo - 1 downto tx.mark_undo.(mark) do
        undo_restore tx.undo_slots.(j) tx.undo_vals.(j);
        tx.undo_slots.(j) <- undo_unset;
        tx.undo_vals.(j) <- undo_unset
      done;
      tx.nundo <- tx.mark_undo.(mark);
      let bloom = ref 0 in
      for j = 0 to tx.nwlog - 1 do
        bloom := !bloom lor bloom_bit tx.wlog.(j)
      done;
      tx.wbloom <- !bloom;
      tx.epoch <- tx.epoch + 1;
      for i = 0 to tx.nreads - 1 do
        let id = tx.read_ids.(i) in
        tx.dedup_ids.(id land (Array.length tx.dedup_ids - 1)) <- id;
        tx.dedup_epochs.(id land (Array.length tx.dedup_ids - 1)) <- tx.epoch
      done;
      tx.nmarks <- mark + 1;
      tx.resume_marks <- mark + 1;
      tx.resume_acc <- tx.mark_acc.(mark);
      tx.rv <- now;
      Stm_stats.record_partial_abort global_stats ~reads_salvaged:tx.nreads;
      true
    end
  end

let atomic_in_mode mode f =
  let state = current () in
  match state.active with
  | Some _ -> f () (* nested: flatten *)
  | None ->
    let tx =
      match state.spare with
      | Some tx -> tx
      | None -> acquire_tx state
    in
    let rec attempt ~fresh () =
      if fresh then begin
        reset_tx tx mode;
        state.active <- Some tx
      end;
      match
        let result = f () in
        commit tx;
        result
      with
      | result ->
        state.active <- None;
        flush_tx_stats tx;
        Backoff.reset tx.backoff;
        result
      | exception Conflict ->
        if try_partial_rollback tx then attempt ~fresh:false ()
        else begin
          state.active <- None;
          flush_tx_stats tx;
          Stm_stats.record_abort global_stats;
          Backoff.once tx.backoff;
          attempt ~fresh:true ()
        end
      | exception exn ->
        state.active <- None;
        flush_tx_stats tx;
        raise exn
    in
    attempt ~fresh:true ()

let atomic f = atomic_in_mode Update f

(** Run a read-only transaction against a consistent snapshot: no
    validation, no conflicts with concurrent committers. [f] must not
    call {!write} — doing so raises [Stm_intf.Write_in_read_only]. *)
let atomic_snapshot f = atomic_in_mode Snapshot f

(* Multi-version snapshots are LSA's native read-only mode, so
   [atomic_ro] is the snapshot mode. Unlike TL2 there are no inline
   revalidations: a stale read either resolves from the ring or is a
   [Conflict] (ring eviction), counted as an abort. *)
let atomic_ro f = atomic_snapshot f

let record_ro_demotion () = Stm_stats.record_ro_demotion global_stats

let stats () = Stm_stats.snapshot global_stats
let reset_stats () = Stm_stats.reset global_stats
