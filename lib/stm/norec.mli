(** NOrec: value-based validation against a single global sequence
    lock — no per-tvar version metadata at all. Reads log (tvar,
    observed value) pairs and revalidate the whole log by physical
    equality whenever the sequence lock moves; writers serialize
    through the lock at commit. Cheapest reads of the substrate family
    on low-contention and read-dominated phases; writers serialize
    globally. No partial abort ([partial_abort = false]): a value
    log has no per-entry version to validate a prefix against. *)

include Stm_intf.S

(** Seeded-bug switches for the sanitizer fixtures; see
    docs/SANITIZER.md. Never use outside `sb7-sanitize seeded`. *)
module Unsafe : sig
  (** Skip the value-list revalidation owed on every observed clock
      change (reads silently adopt the new timestamp; commits skip
      validation): the opacity checker must flag the resulting
      non-repeatable reads. *)
  val disable_revalidation : unit -> unit

  val reset : unit -> unit
end
