(** Domain-sharded event counter.

    [incr]/[add] are plain stores to a per-domain cache-line-padded
    shard ([Domain.DLS]); no cross-core RMW on the hot path. [get]
    folds over all shards: exact once the writing domains have been
    joined, a racy-but-non-tearing lower-ish bound while they run
    (individual shard reads never tear; the fold is not a snapshot).
    Shards of exited domains are recycled via [Domain.at_exit], so
    memory is bounded by the peak number of concurrent domains and
    counts survive domain exit.

    Used for the lock-based runtimes' commit/acquisition tallies, where
    the previous shared [Atomic.t] counters put an RMW on every
    operation. *)

type t

val create : unit -> t
val incr : t -> unit
val add : t -> int -> unit
val get : t -> int
val reset : t -> unit
