(* See the .mli for the contention rationale. The padding technique is
   the one popularized by multicore-magic: copy a freshly allocated
   block into a new block of the same tag with trailing padding words,
   so the hot word no longer shares its cache line(s) with whatever the
   minor allocator placed right after it. [Obj.new_block] initializes
   every field to [()], a valid immediate, so the GC never scans
   garbage; the padding fields are simply never read.

   This is the second sanctioned use of [Obj] in the repository (the
   first is the typed-log coercion in Tl2/Lsa.cast_ref; see
   DESIGN.md §3). OCaml 5.2's [Atomic.make_contended] subsumes the
   atomic half of this module, but the CI matrix includes 5.1. *)

(* Pad to 4 x 64-byte lines: one line for the word itself plus enough
   slack that adjacent-line prefetchers do not pull a neighbour's line
   into the owning core. *)
let padding_words = 31

let copy_as_padded : type a. a -> a =
 fun v ->
  let o = Obj.repr v in
  (* Only plain boxed blocks (records, Atomic.t) make sense here; an
     immediate or a custom block is returned unchanged. *)
  if (not (Obj.is_block o)) || Obj.tag o <> 0 then v
  else begin
    let n = Obj.size o in
    let p = Obj.new_block 0 (n + padding_words) in
    for i = 0 to n - 1 do
      Obj.set_field p i (Obj.field o i)
    done;
    Obj.obj p
  end

type t = int Atomic.t

(* Atomic primitives operate on field 0 of the block, so they are
   oblivious to the padding fields behind it. *)
let make n : t = copy_as_padded (Atomic.make n)
let get (t : t) = Atomic.get t
let set (t : t) v = Atomic.set t v
let fetch_and_add (t : t) d = Atomic.fetch_and_add t d
let compare_and_set (t : t) seen v = Atomic.compare_and_set t seen v
