(* A NOrec-style software transactional memory (Dalessandro, Spear,
   Scott, PPoPP'10 — "NOrec: streamlining STM by abolishing ownership
   records"; see also the Manticore/Chapel NOrec exemplars referenced
   in SNIPPETS.md §1–2).

   The design is the polar opposite of {!Tl2}'s per-tvar metadata:
   - tvars carry NO version word and NO lock — just an id (for the
     write-set hash/bloom) and the mutable content;
   - consistency comes from a single global sequence lock: even =
     stable, odd = a committer is in its write-back window;
   - the read log stores (tvar, observed value) pairs and is
     revalidated BY VALUE whenever the sequence lock is observed to
     have moved — a transaction whose every logged value is still the
     current content may advance its read version instead of aborting
     (value-based validation admits ABA, which is exactly NOrec's
     semantics: if the values match, the new snapshot is
     indistinguishable);
   - commit serializes writers through the sequence lock: CAS rv ->
     rv+1, write back in place, release at rv+2. Read-only
     transactions commit without touching the lock at all.

   The zero-metadata reads make uncontended short transactions and
   read-dominated phases cheaper than TL2 (no vlock sandwich, one
   global load per read), at the price of serialized writers and
   whole-log revalidation on every clock movement — the trade the
   tournament runtime exploits per phase.

   Partial abort is not supported ([partial_abort = false]): a NOrec
   read log has no per-entry version to validate a prefix against —
   value-based prefix validation cannot distinguish "still valid at
   the old snapshot" from "valid again at a newer one", which is fine
   for whole-transaction extension but breaks the checkpoint
   contract's monotonic read-version story. Checkpoints are accepted
   as no-ops and [resume] always reports a fresh attempt.

   Memory-model note: tvar contents are plain mutable fields, read
   concurrently with a committer's in-place write-back. Such races are
   memory-safe in OCaml (no tearing); the acquire/release ordering of
   the [Atomic] sequence-lock operations around write-back and the
   re-check of the lock after every content read ensure a reader
   either observes a value consistent with its read version or
   revalidates. *)

exception Conflict = Stm_intf.Conflict

let name = "norec"

type 'a tvar = {
  id : int; (* unique; identity witness for the typed-log coercion *)
  mutable content : 'a;
}

(* The global sequence lock. Even values are snapshot timestamps; a
   committer holds the lock by CASing rv -> rv+1 and releases it at
   rv+2. Padded: every read samples it and every commit CASes it. *)
let seqlock = Padded_atomic.make 0

let global_stats = Stm_stats.create ()
let tvar_ids = Tvar_id.create ()
let make v = { id = Tvar_id.fresh tvar_ids; content = v }

(* The read log is two parallel [Obj.t] arrays (structure-of-arrays) —
   the tvar and the value observed — instead of an array of existential
   {tv; seen} records: a push writes two slots and allocates nothing,
   and the GC marks two flat arrays per log instead of one record per
   logged read. The coercions carry the same justification the
   existential did: tvar and value are captured together from the same
   ['a] and only ever re-paired at the same index, and validation is a
   physical-equality check that never inspects the payload.
   [read_unset] is an immediate, so the arrays are never
   float-specialized and cleared slots pin nothing. *)
let read_unset : Obj.t = Obj.repr 0

let read_capture_tv : 'a tvar -> Obj.t = fun tv -> Obj.repr tv
let read_capture_val : 'a -> Obj.t = fun v -> Obj.repr v

let read_still_current (tv : Obj.t) (seen : Obj.t) =
  (Obj.obj tv : Obj.t tvar).content == seen

(* A buffered write. The payload type is recovered in [cast_ref],
   justified by the uniqueness of tvar ids: equal ids imply physical
   equality of the tvars and hence equality of the hidden types (same
   argument as {!Tl2.cast_ref}; documented in DESIGN.md §3). *)
type wentry = W : { tv : 'a tvar; value : 'a ref } -> wentry

let cast_ref : type a. a tvar -> wentry -> a ref =
 fun tv (W w) ->
  assert (w.tv.id = tv.id);
  (Obj.magic w.value : a ref)

type tx = {
  mutable rv : int; (* sequence-lock value this snapshot is valid at *)
  mutable read_tvs : Obj.t array; (* parallel with read_seen *)
  mutable read_seen : Obj.t array;
  mutable nreads : int;
  writes : (int, wentry) Hashtbl.t;
  mutable wbloom : int; (* word-sized bloom over buffered tvar ids *)
  (* Mutable so a recycled descriptor can be reseeded per domain. *)
  mutable backoff : Backoff.t;
  mutable validation_steps : int;
  mutable bloom_skips : int;
  mutable extensions : int; (* value revalidations that advanced rv *)
}

let initial_reads = 64

let fresh_tx () =
  {
    rv = 0;
    read_tvs = Array.make initial_reads read_unset;
    read_seen = Array.make initial_reads read_unset;
    nreads = 0;
    writes = Hashtbl.create 64;
    wbloom = 0;
    backoff = Backoff.for_domain ();
    validation_steps = 0;
    bloom_skips = 0;
    extensions = 0;
  }

(* Same two-bit word bloom as {!Tl2}. *)
let bloom_bit id =
  let h = id * 0x9E3779B9 in
  (1 lsl (h land 31)) lor (1 lsl (31 + ((h lsr 5) land 31)))

type domain_state = {
  mutable active : tx option;
  mutable spare : tx option;
  mutable ro_rv : int; (* snapshot of a zero-log read-only tx, or -1 *)
}

let current_key : domain_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { active = None; spare = None; ro_rv = -1 })

let current () = Domain.DLS.get current_key

(* Descriptor free pool; same design as Tl2's (scrub-on-release,
   at-exit donation, pool pop or fresh allocation on a domain's first
   transaction, backoff reseed on adoption). *)
let pool_lock = Mutex.create ()
let pool : tx list ref = ref []

let scrub_tx tx =
  Hashtbl.reset tx.writes;
  Array.fill tx.read_tvs 0 (Array.length tx.read_tvs) read_unset;
  Array.fill tx.read_seen 0 (Array.length tx.read_seen) read_unset;
  tx.nreads <- 0;
  tx.wbloom <- 0

let release_spare state =
  match state.spare with
  | None -> ()
  | Some tx ->
    state.spare <- None;
    scrub_tx tx;
    if !Stm_intf.descriptor_pooling_enabled then begin
      Mutex.lock pool_lock;
      pool := tx :: !pool;
      Mutex.unlock pool_lock
    end

let acquire_tx state =
  let tx =
    if !Stm_intf.descriptor_pooling_enabled then begin
      Mutex.lock pool_lock;
      let popped =
        match !pool with
        | tx :: rest ->
          pool := rest;
          Some tx
        | [] -> None
      in
      Mutex.unlock pool_lock;
      match popped with
      | Some tx ->
        Stm_stats.record_pool_hit global_stats;
        tx.backoff <- Backoff.for_domain ();
        tx
      | None ->
        Stm_stats.record_pool_miss global_stats;
        fresh_tx ()
    end
    else begin
      Stm_stats.record_pool_miss global_stats;
      fresh_tx ()
    end
  in
  state.spare <- Some tx;
  Domain.at_exit (fun () -> release_spare state);
  tx

let in_transaction () =
  let state = current () in
  state.ro_rv >= 0
  ||
  match state.active with
  | None -> false
  | Some _ -> true

(* Seeded-bug fixture for the sanitizer (docs/SANITIZER.md): when set,
   the value-list revalidation that NOrec owes every observed clock
   change is skipped — the transaction silently adopts the new
   timestamp, so later reads see post-snapshot state next to
   pre-snapshot reads, and commits land on inconsistent read sets.
   The opacity checker must flag the non-repeatable reads this
   produces; never set outside sanitizer fixtures. *)
module Unsafe = struct
  let skip_revalidation = ref false
  let disable_revalidation () = skip_revalidation := true
  let reset () = skip_revalidation := false
end

let rec wait_even () =
  let t = Padded_atomic.get seqlock in
  if t land 1 = 1 then begin
    Domain.cpu_relax ();
    wait_even ()
  end
  else t

(* Value-based validation: wait out any in-flight write-back, check
   every logged value is still the current content, and confirm the
   lock did not move during the pass (a moved lock means a committer
   overlapped the scan — rescan at its timestamp). Returns the
   timestamp the log is valid at; raises [Conflict] on a changed
   value. ABA (a value changed and changed back) passes by design. *)
let rec validate tx =
  let time = wait_even () in
  if !Unsafe.skip_revalidation then time
  else begin
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < tx.nreads do
      if not (read_still_current tx.read_tvs.(!i) tx.read_seen.(!i)) then
        ok := false;
      incr i
    done;
    tx.validation_steps <- tx.validation_steps + !i;
    if not !ok then raise Conflict
    else if Padded_atomic.get seqlock <> time then validate tx
    else time
  end

let push_read tx tv_r seen_r =
  let n = tx.nreads in
  if n = Array.length tx.read_tvs then begin
    let cap = 2 * n in
    let tvs = Array.make cap read_unset in
    let seen = Array.make cap read_unset in
    Array.blit tx.read_tvs 0 tvs 0 n;
    Array.blit tx.read_seen 0 seen 0 n;
    tx.read_tvs <- tvs;
    tx.read_seen <- seen
  end;
  tx.read_tvs.(n) <- tv_r;
  tx.read_seen.(n) <- seen_r;
  tx.nreads <- n + 1

(* The NOrec read protocol: read the content, and as long as the
   sequence lock has moved since [rv], revalidate the whole log (which
   advances [rv] on success) and re-read. The post-read lock check is
   what makes the (value, timestamp) pair consistent. *)
let tx_read : type a. tx -> a tvar -> a =
 fun tx tv ->
  let v = ref tv.content in
  while Padded_atomic.get seqlock <> tx.rv do
    let time = validate tx in
    tx.rv <- time;
    tx.extensions <- tx.extensions + 1;
    v := tv.content
  done;
  push_read tx (read_capture_tv tv) (read_capture_val !v);
  !v

(* Raised by a zero-log read when the snapshot is stale; [atomic_ro]
   re-snapshots and re-runs the closure. Never escapes this module. *)
exception Ro_restart

(* Zero-log read-only read: no log is kept, so a moved sequence lock
   cannot be revalidated — restart the closure at a fresh snapshot
   instead (counted as [ro_inline_revalidations]). Uncontended
   read-only work thus costs ONE global load per read and nothing at
   commit: NOrec's best case. *)
let ro_read : type a. domain_state -> a tvar -> a =
 fun state tv ->
  let v = tv.content in
  if Padded_atomic.get seqlock <> state.ro_rv then raise Ro_restart else v

let read tv =
  let state = current () in
  match state.active with
  | None -> if state.ro_rv >= 0 then ro_read state tv else tv.content
  | Some tx ->
    if tx.wbloom = 0 then tx_read tx tv
    else begin
      let bits = bloom_bit tv.id in
      if tx.wbloom land bits <> bits then begin
        (* Definitely never buffered: skip the hash probe. *)
        tx.bloom_skips <- tx.bloom_skips + 1;
        tx_read tx tv
      end
      else
        match Hashtbl.find_opt tx.writes tv.id with
        | Some entry -> !(cast_ref tv entry)
        | None -> tx_read tx tv (* bloom false positive *)
    end

let write tv v =
  let state = current () in
  match state.active with
  | None ->
    if state.ro_rv >= 0 then raise Stm_intf.Write_in_read_only
    else tv.content <- v
  | Some tx -> (
    match Hashtbl.find_opt tx.writes tv.id with
    | Some entry -> cast_ref tv entry := v
    | None ->
      tx.wbloom <- tx.wbloom lor bloom_bit tv.id;
      Hashtbl.add tx.writes tv.id (W { tv; value = ref v }))

(* Writer commit: acquire the sequence lock at exactly [rv] (so the
   snapshot is known intact), write back in place, release two ticks
   up. A lost CAS means somebody committed since [rv]: revalidate (by
   value) to advance [rv] and try again — the only abort is a changed
   value. Read-only update-mode transactions (empty write set) are
   already serializable at [rv] and commit for free. *)
let commit tx =
  if Hashtbl.length tx.writes = 0 then
    Stm_stats.record_commit global_stats ~read_only:true
  else begin
    while not (Padded_atomic.compare_and_set seqlock tx.rv (tx.rv + 1)) do
      let time = validate tx in
      tx.rv <- time
    done;
    Hashtbl.iter (fun _ (W w) -> w.tv.content <- !(w.value)) tx.writes;
    Padded_atomic.set seqlock (tx.rv + 2);
    Stm_stats.record_commit global_stats ~read_only:false
  end

let flush_tx_stats tx =
  Stm_stats.record_validation global_stats ~steps:tx.validation_steps;
  Stm_stats.record_read_set global_stats ~size:tx.nreads;
  Stm_stats.record_tx_log global_stats ~dedup_hits:0
    ~bloom_skips:tx.bloom_skips ~extensions:tx.extensions

let reset_tx tx =
  tx.rv <- wait_even ();
  (* Drop value references so the descriptor pins nothing dead. *)
  Array.fill tx.read_tvs 0 tx.nreads read_unset;
  Array.fill tx.read_seen 0 tx.nreads read_unset;
  tx.nreads <- 0;
  Hashtbl.reset tx.writes;
  tx.wbloom <- 0;
  tx.validation_steps <- 0;
  tx.bloom_skips <- 0;
  tx.extensions <- 0;
  (* Shrink a read log that ballooned in a previous long transaction so
     per-op memory stays bounded. *)
  if Array.length tx.read_tvs > 1 lsl 16 then begin
    tx.read_tvs <- Array.make initial_reads read_unset;
    tx.read_seen <- Array.make initial_reads read_unset
  end

(* No partial abort: a value-based read log has no per-entry version,
   so a prefix cannot be revalidated against a monotonic read version
   the way the checkpoint contract requires (see module comment). *)
let partial_abort = false
let checkpoint ~acc:_ = ()
let resume () = (0, 0)

let atomic f =
  let state = current () in
  if state.ro_rv >= 0 then f () (* nested inside [atomic_ro]: flatten *)
  else
    match state.active with
    | Some _ -> f () (* nested: flatten *)
    | None ->
      let tx =
        match state.spare with
        | Some tx -> tx
        | None -> acquire_tx state
      in
      let rec attempt () =
        reset_tx tx;
        state.active <- Some tx;
        match
          let result = f () in
          commit tx;
          result
        with
        | result ->
          state.active <- None;
          flush_tx_stats tx;
          Backoff.reset tx.backoff;
          result
        | exception Conflict ->
          state.active <- None;
          flush_tx_stats tx;
          Stm_stats.record_abort global_stats;
          Backoff.once tx.backoff;
          attempt ()
        | exception exn ->
          (* Every read was validated against the sequence lock, so
             the view that produced [exn] was a consistent snapshot:
             discard the write buffer and propagate. *)
          state.active <- None;
          flush_tx_stats tx;
          raise exn
      in
      attempt ()

let atomic_ro f =
  let state = current () in
  if state.ro_rv >= 0 then f () (* nested ro: flatten *)
  else
    match state.active with
    | Some _ -> f () (* inside an update transaction: flatten *)
    | None ->
      let rec attempt () =
        state.ro_rv <- wait_even ();
        match f () with
        | result ->
          state.ro_rv <- -1;
          Stm_stats.record_ro_commit global_stats;
          result
        | exception Ro_restart ->
          state.ro_rv <- -1;
          Stm_stats.record_ro_revalidation global_stats;
          attempt ()
        | exception exn ->
          state.ro_rv <- -1;
          raise exn
      in
      attempt ()

let record_ro_demotion () = Stm_stats.record_ro_demotion global_stats

let stats () = Stm_stats.snapshot global_stats
let reset_stats () = Stm_stats.reset global_stats
