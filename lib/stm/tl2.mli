(** A TL2-style software transactional memory: global version clock,
    invisible-but-validated reads in O(1) per read (opacity), lazy write
    buffering, commit-time locking with a single O(k) read-set
    validation pass, and TinySTM-style timestamp extension.

    Log management is tuned for STMBench7's long traversals: re-reading
    an already-logged tvar is deduplicated in O(1) (so k counts
    {e distinct} tvars, not raw reads), a word-sized bloom filter
    screens the write-set lookup on every read, and the commit clock
    uses a single CAS attempt with GV4-style value reuse instead of a
    fetch-and-add. See docs/PERF.md for the rationale and the
    {!Stm_stats} counters that expose each path.

    [atomic_ro] is TL2's zero-log read-only mode: no read set, no
    commit validation, no clock CAS — each read is a vlock sandwich
    plus a [version <= rv] check, restarting at a fresh read version
    when the check fails. A [write] inside it raises
    {!Stm_intf.Write_in_read_only} so the runtime layer can demote the
    operation to an update transaction.

    This is the representative of the "solutions already proposed"
    [Dice–Shalev–Shavit, DISC'06] the STMBench7 paper points to as the
    fix for ASTM's pathologies. See {!Astm} for the contrast. *)

include Stm_intf.S

(** Seeded-bug fixture for the sanitizer: {!disable_validation} skips
    read-set validation both at commit time and during timestamp
    extension, so update transactions can commit on (and observe)
    inconsistent snapshots — exactly the silent corruption the opacity
    checker exists to catch. For sanitizer tests and the
    [sb7_sanitize seeded] CI fixture only — never in benchmarks. *)
module Unsafe : sig
  val disable_validation : unit -> unit

  (** Second seeded bug, for the partial-abort machinery: resume from
      the newest checkpoint {e without} validating that the read-set
      prefix is still current — the classic unsound shortcut a
      partial-abort implementation is tempted by. The salvaged prefix
      may then span a concurrent commit, so the resumed attempt runs
      (and can commit) on an inconsistent snapshot. *)
  val disable_resume_validation : unit -> unit

  val reset : unit -> unit
end
