(** Writer-preferring read-write lock.

    Multiple readers may hold the lock simultaneously; a writer holds it
    exclusively. Once a writer is waiting, new readers block until the
    writer has acquired and released the lock, so writers cannot starve
    under a continuous stream of readers. This mirrors the semantics of
    the [java.util.concurrent] read-write locks used by the original
    STMBench7 locking strategies.

    The lock is not reentrant: a thread must not acquire a lock it
    already holds (in either mode). STMBench7 acquires each lock at most
    once per operation, in a fixed global order. *)

type t

type mode =
  | Read
  | Write

val create : ?name:string -> unit -> t

val name : t -> string

(** Sanitizer identity of this lock, allocated by
    {!Lock_hooks.register} at creation; acquire/release events carry
    it when tracing is enabled. *)
val uid : t -> int

val acquire : t -> mode -> unit

val release : t -> mode -> unit

val acquire_read : t -> unit

val acquire_write : t -> unit

val release_read : t -> unit

val release_write : t -> unit

(** [with_lock t mode f] runs [f ()] with the lock held in [mode],
    releasing it whether [f] returns or raises. *)
val with_lock : t -> mode -> (unit -> 'a) -> 'a

(** Current number of threads holding the lock in read mode (for tests
    and introspection; inherently racy outside the lock). *)
val readers : t -> int

(** Whether a writer currently holds the lock. *)
val writer_active : t -> bool

(** Number of writers blocked waiting for the lock. *)
val waiting_writers : t -> int
