(** Sanitizer instrumentation points for lock implementations.

    Lock code calls {!on_acquire} / {!on_release} after taking and
    before dropping a lock; the calls are no-ops (one boolean load)
    unless a sanitizer has installed hooks with {!set_hooks} and
    enabled them. Toggle {!enable}/{!disable} only while no worker
    domain is running: the flag is plain shared state published by the
    spawn/join happens-before edges. *)

type hook = id:int -> exclusive:bool -> unit

val set_hooks : acquire:hook -> release:hook -> unit
val enable : unit -> unit
val disable : unit -> unit

(** [on_acquire ~id ~exclusive] — the caller now holds lock [id]
    ([exclusive] = write mode). Call it {e after} the acquisition
    succeeds, so everything between the acquire and release events in
    one domain's program order really ran under the lock. *)
val on_acquire : id:int -> exclusive:bool -> unit

(** [on_release ~id ~exclusive] — call {e before} actually releasing. *)
val on_release : id:int -> exclusive:bool -> unit

(** Allocate a uid for a named lock and record the (uid, name) pair for
    the offline checker. Creation-time only (takes a mutex). *)
val register : name:string -> int

val registered_locks : unit -> (int * string) list

(** Base for unregistered (per-tvar) lock uids: [anonymous_base + id]
    never collides with registered uids. *)
val anonymous_base : int
