(** Sanitizer instrumentation points for every lock in the system.

    The sanitizer (lib/sanitize) lives above this library in the
    dependency order, so it cannot be called directly from {!Rwlock};
    instead the lock implementations report acquisitions and releases
    through these mutable hooks, which the sanitizer installs before a
    traced run. When [enabled] is false (the default, and the only
    state outside sanitized runs) the hooks cost one boolean load per
    lock transition.

    [enabled] is a plain (non-atomic) cell: it is toggled only while
    the system is quiesced — before worker domains are spawned and
    after they are joined — and [Domain.spawn]/[Domain.join] provide
    the happens-before edges that publish the new value to every
    worker. *)

type hook = id:int -> exclusive:bool -> unit

let noop : hook = fun ~id:_ ~exclusive:_ -> ()
let enabled = ref false
let acquire_hook = ref noop
let release_hook = ref noop

let set_hooks ~acquire ~release =
  acquire_hook := acquire;
  release_hook := release

let enable () = enabled := true
let disable () = enabled := false

let on_acquire ~id ~exclusive = if !enabled then !acquire_hook ~id ~exclusive
let on_release ~id ~exclusive = if !enabled then !release_hook ~id ~exclusive

(* Lock identities. Named locks (the rwlocks of the coarse and medium
   runtimes) register at creation time — a rare, setup-phase event —
   so the offline checker can map uids back to names and to the
   declared lock-order table. Per-tvar lock words (the fine runtime)
   are too numerous to register; they carry [anonymous_base + tvar id]
   and stay nameless (and unranked) in reports. *)

let next_uid = Atomic.make 1
let registry_mutex = Mutex.create ()
let registered : (int * string) list ref = ref []

let register ~name =
  let uid = Atomic.fetch_and_add next_uid 1 in
  Mutex.lock registry_mutex;
  registered := (uid, name) :: !registered;
  Mutex.unlock registry_mutex;
  uid

let registered_locks () =
  Mutex.lock registry_mutex;
  let l = !registered in
  Mutex.unlock registry_mutex;
  l

(** Uid space for unregistered per-tvar locks: [anonymous_base + id]
    cannot collide with registered uids (which are small). *)
let anonymous_base = 1 lsl 40
