type mode =
  | Read
  | Write

type t = {
  lock_name : string;
  uid : int; (* sanitizer identity; see Lock_hooks *)
  mutex : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable active_readers : int;
  mutable writer : bool;
  mutable blocked_writers : int;
}

let create ?(name = "rwlock") () =
  {
    lock_name = name;
    uid = Lock_hooks.register ~name;
    mutex = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    active_readers = 0;
    writer = false;
    blocked_writers = 0;
  }

let name t = t.lock_name
let uid t = t.uid

let acquire_read t =
  Mutex.lock t.mutex;
  (* Writer preference: also wait while writers are queued. *)
  while t.writer || t.blocked_writers > 0 do
    Condition.wait t.can_read t.mutex
  done;
  t.active_readers <- t.active_readers + 1;
  Mutex.unlock t.mutex;
  Lock_hooks.on_acquire ~id:t.uid ~exclusive:false

let acquire_write t =
  Mutex.lock t.mutex;
  t.blocked_writers <- t.blocked_writers + 1;
  while t.writer || t.active_readers > 0 do
    Condition.wait t.can_write t.mutex
  done;
  t.blocked_writers <- t.blocked_writers - 1;
  t.writer <- true;
  Mutex.unlock t.mutex;
  Lock_hooks.on_acquire ~id:t.uid ~exclusive:true

let release_read t =
  Lock_hooks.on_release ~id:t.uid ~exclusive:false;
  Mutex.lock t.mutex;
  assert (t.active_readers > 0);
  t.active_readers <- t.active_readers - 1;
  if t.active_readers = 0 && t.blocked_writers > 0 then
    Condition.signal t.can_write;
  if t.blocked_writers = 0 then Condition.broadcast t.can_read;
  Mutex.unlock t.mutex

let release_write t =
  Lock_hooks.on_release ~id:t.uid ~exclusive:true;
  Mutex.lock t.mutex;
  assert t.writer;
  t.writer <- false;
  if t.blocked_writers > 0 then Condition.signal t.can_write
  else Condition.broadcast t.can_read;
  Mutex.unlock t.mutex

let acquire t = function
  | Read -> acquire_read t
  | Write -> acquire_write t

let release t = function
  | Read -> release_read t
  | Write -> release_write t

let with_lock t mode f =
  acquire t mode;
  match f () with
  | result ->
    release t mode;
    result
  | exception exn ->
    release t mode;
    raise exn

let readers t = t.active_readers
let writer_active t = t.writer
let waiting_writers t = t.blocked_writers
