(** R3 — lock discipline in the lock-based runtimes.

    Three properties, all config-driven ({!Lint_config.r3_spec}):

    - {b lock-release}: a function that acquires a lock class must
      release it on the normal path {i and} on the exceptional path
      (an [exception] match case, a [try] handler, or a
      [Fun.protect ~finally]); declared acquire/release helpers are the
      trusted primitives and are exempt inside their own bodies.
      Dynamic-2PL modules instead declare deferred acquires plus a bulk
      release, and some function of the module must call the bulk
      release on both paths.
    - {b lock-order}: within any function, distinct lock classes must
      be first-acquired in the declared table order (deadlock freedom).
      An acquisition whose lock cannot be classified is itself an error
      ([lock-table]): every lock must be in the declared table.
    - {b lock-wait}: no-wait functions must contain [raise <Restart>],
      and modules declared non-blocking must not use blocking
      acquisition primitives at all.

    [Rwlock.with_lock] is recognized as inherently exception-safe and
    produces no events. *)

open Typedtree

type ctx =
  | Normal
  | Handler  (** exception-handler continuation *)
  | Finally  (** [Fun.protect ~finally] body: runs on both paths *)

type event =
  | Acquire of string * Location.t
  | Release of string * ctx
  | Bulk_release of string * ctx
  | Raise of string * Location.t
  | Blocking of string * Location.t

let path_components p =
  let rec parts acc = function
    | Path.Pident id -> Ident.name id :: acc
    | Path.Pdot (p, s) -> parts (s :: acc) p
    | Path.Papply (p, _) -> parts acc p
    | Path.Pextra_ty (p, _) -> parts acc p
  in
  parts [] p

(* Rwlock operations are matched structurally — the runtimes alias the
   library ([module Rwlock = Sb7_rwlock.Rwlock]), so the path head is
   not stable but the [Rwlock.<op>] suffix is. *)
let rwlock_op p =
  match List.rev (path_components p) with
  | op :: "Rwlock" :: _ -> Some op
  | _ -> None

let acquire_ops = [ "acquire"; "acquire_read"; "acquire_write" ]
let release_ops = [ "release"; "release_read"; "release_write" ]
let blocking_ops = [ "Mutex.lock"; "Condition.wait" ]

let last_component p =
  match List.rev (path_components p) with c :: _ -> c | [] -> ""

(* Class of the lock denoted by the first positional argument of an
   Rwlock call: either a declared lock value or a declared
   lock-producing function. *)
let classify_lock (spec : Lint_config.r3_spec) arg =
  let by_name n = List.assoc_opt n spec.Lint_config.r3_classes in
  match arg.exp_desc with
  | Texp_ident (p, _, _) -> by_name (last_component p)
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
    by_name (last_component p)
  | _ -> None

let first_positional args =
  List.find_map
    (function Asttypes.Nolabel, Some e -> Some e | _ -> None)
    args

(* Collect lock events from one function body, tracking whether the
   current position runs on the exceptional path. *)
let collect (spec : Lint_config.r3_spec) ~unit_name ~add_finding body =
  let events = ref [] in
  let emit ev = events := ev :: !events in
  let rec walk ctx e =
    let sub_iter current_ctx =
      {
        Tast_iterator.default_iterator with
        expr = (fun _ e -> walk current_ctx e);
      }
    in
    match e.exp_desc with
    | Texp_match (scrut, cases, _) ->
      walk ctx scrut;
      List.iter
        (fun case ->
          let case_ctx =
            if Rule_r3_patterns.has_exception_pattern case.c_lhs then Handler
            else ctx
          in
          Option.iter (walk case_ctx) case.c_guard;
          walk case_ctx case.c_rhs)
        cases
    | Texp_try (body_e, handlers) ->
      walk ctx body_e;
      List.iter
        (fun case ->
          Option.iter (walk Handler) case.c_guard;
          walk Handler case.c_rhs)
        handlers
    | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as fn), args) -> (
      let name = Path.name p in
      (* Fun.protect ~finally: the finally closure runs on both paths. *)
      if name = "Stdlib.Fun.protect" then begin
        List.iter
          (fun (label, arg) ->
            match (label, arg) with
            | Asttypes.Labelled "finally", Some a -> walk Finally a
            | _, Some a -> walk ctx a
            | _, None -> ())
          args
      end
      else begin
        (match rwlock_op p with
        | Some op when List.mem op acquire_ops -> (
          (match first_positional args with
          | Some lock_arg -> (
            match classify_lock spec lock_arg with
            | Some cls -> emit (Acquire (cls, e.exp_loc))
            | None ->
              add_finding
                (Lint_finding.make ~rule:"lock-table" ~loc:e.exp_loc
                   ~unit_name
                   "lock acquisition on a lock absent from the declared \
                    lock-order table"))
          | None -> ());
          if spec.Lint_config.r3_forbid_blocking then
            emit (Blocking (Path.name p, e.exp_loc)))
        | Some op when List.mem op release_ops -> (
          match first_positional args with
          | Some lock_arg -> (
            match classify_lock spec lock_arg with
            | Some cls -> emit (Release (cls, ctx))
            | None -> ())
          | None -> ())
        | Some "with_lock" -> () (* inherently exception-safe wrapper *)
        | _ ->
          let last = last_component p in
          (match List.assoc_opt last spec.Lint_config.r3_acquire_helpers with
          | Some cls -> emit (Acquire (cls, e.exp_loc))
          | None -> ());
          (match List.assoc_opt last spec.Lint_config.r3_release_helpers with
          | Some cls -> emit (Release (cls, ctx))
          | None -> ());
          if List.mem last spec.Lint_config.r3_bulk_release then
            emit (Bulk_release (last, ctx));
          if
            List.exists
              (fun b -> String.ends_with ~suffix:b name)
              blocking_ops
          then emit (Blocking (name, e.exp_loc));
          if name = "Stdlib.raise" then
            match first_positional args with
            | Some { exp_desc = Texp_construct (_, cd, _); exp_loc; _ } ->
              emit (Raise (cd.Types.cstr_name, exp_loc))
            | _ -> ());
        walk ctx fn;
        List.iter (fun (_, arg) -> Option.iter (walk ctx) arg) args
      end)
    | _ ->
      let it = sub_iter ctx in
      Tast_iterator.default_iterator.expr it e
  in
  walk Normal body;
  List.rev !events

let check_function (spec : Lint_config.r3_spec) ~unit_name ~add_finding
    ~fn_name ~fn_loc body =
  let exempt =
    List.mem_assoc fn_name spec.Lint_config.r3_acquire_helpers
    || List.mem_assoc fn_name spec.Lint_config.r3_release_helpers
    || List.mem fn_name spec.Lint_config.r3_bulk_release
    || List.mem fn_name spec.Lint_config.r3_deferred_acquires
  in
  let events = collect spec ~unit_name ~add_finding body in
  (* lock-wait: no-wait functions must restart instead of blocking. *)
  (match List.assoc_opt fn_name spec.Lint_config.r3_must_restart with
  | Some exc ->
    if
      not
        (List.exists (function Raise (n, _) -> n = exc | _ -> false) events)
    then
      add_finding
        (Lint_finding.make ~rule:"lock-wait" ~loc:fn_loc ~unit_name
           (Printf.sprintf
              "no-wait acquire function %S must raise %s on contention \
               instead of blocking"
              fn_name exc))
  | None -> ());
  if spec.Lint_config.r3_forbid_blocking then
    List.iter
      (function
        | Blocking (name, loc) ->
          add_finding
            (Lint_finding.make ~rule:"lock-wait" ~loc ~unit_name
               (Printf.sprintf
                  "%s: blocking acquisition in a module declared no-wait \
                   (deadlock avoidance relies on restart, not waiting)"
                  name))
        | _ -> ())
      events;
  if exempt then []
  else begin
    (* lock-order: distinct classes first-acquired in table order. *)
    let first_acquires =
      List.fold_left
        (fun acc ev ->
          match ev with
          | Acquire (cls, loc) when not (List.mem_assoc cls acc) ->
            (cls, loc) :: acc
          | _ -> acc)
        [] events
      |> List.rev
    in
    let rank cls =
      let rec go i = function
        | [] -> -1
        | c :: _ when c = cls -> i
        | _ :: rest -> go (i + 1) rest
      in
      go 0 spec.Lint_config.r3_order
    in
    let rec check_order = function
      | (c1, _) :: ((c2, loc2) :: _ as rest) ->
        if rank c1 > rank c2 && rank c1 >= 0 && rank c2 >= 0 then
          add_finding
            (Lint_finding.make ~rule:"lock-order" ~loc:loc2 ~unit_name
               (Printf.sprintf
                  "lock class %S acquired after %S, violating the declared \
                   order [%s]"
                  c2 c1
                  (String.concat " < " spec.Lint_config.r3_order)));
        check_order rest
      | _ -> ()
    in
    check_order first_acquires;
    (* lock-release: every acquired class released on both paths. *)
    List.iter
      (fun (cls, loc) ->
        let released_on target_ctx =
          List.exists
            (function
              | Release (c, ctx) ->
                c = cls && (ctx = target_ctx || ctx = Finally)
              | _ -> false)
            events
        in
        if not (released_on Normal) then
          add_finding
            (Lint_finding.make ~rule:"lock-release" ~loc ~unit_name
               (Printf.sprintf
                  "lock class %S acquired in %S but never released on the \
                   normal path"
                  cls fn_name))
        else if not (released_on Handler) then
          add_finding
            (Lint_finding.make ~rule:"lock-release" ~loc ~unit_name
               (Printf.sprintf
                  "lock class %S acquired in %S is not released when the \
                   operation raises (add an exception case or \
                   Fun.protect ~finally)"
                  cls fn_name)))
      first_acquires;
    events
  end

let check (spec : Lint_config.r3_spec) (u : Cmt_unit.t) =
  let findings = ref [] in
  let add_finding f = findings := f :: !findings in
  let unit_name = u.Cmt_unit.name in
  let rec do_structure str = List.iter do_item str.str_items
  and do_item item =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          match vb.vb_pat.pat_desc with
          | Tpat_var (id, _) ->
            ignore
              (check_function spec ~unit_name ~add_finding
                 ~fn_name:(Ident.name id) ~fn_loc:vb.vb_pat.pat_loc vb.vb_expr)
          | _ -> ())
        vbs
    | Tstr_module { mb_expr = { mod_desc = Tmod_structure s; _ }; _ } ->
      do_structure s
    | _ -> ()
  in
  do_structure u.Cmt_unit.structure;
  (* Dynamic 2PL: deferred acquires require a bulk release on both
     paths somewhere in the module. *)
  if spec.Lint_config.r3_deferred_acquires <> [] then begin
    let module_events = ref [] in
    let rec gather str = List.iter gather_item str.str_items
    and gather_item item =
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            module_events :=
              collect spec ~unit_name ~add_finding:(fun _ -> ()) vb.vb_expr
              @ !module_events)
          vbs
      | Tstr_module { mb_expr = { mod_desc = Tmod_structure s; _ }; _ } ->
        gather s
      | _ -> ()
    in
    gather u.Cmt_unit.structure;
    let bulk_on target_ctx =
      List.exists
        (function
          | Bulk_release (_, ctx) -> ctx = target_ctx || ctx = Finally
          | _ -> false)
        !module_events
    in
    if not (bulk_on Normal && bulk_on Handler) then
      add_finding
        (Lint_finding.module_level ~rule:"lock-release"
           ~file:(Option.value u.Cmt_unit.source ~default:unit_name)
           ~unit_name
           (Printf.sprintf
              "deferred lock acquisition (%s) requires a bulk release (%s) \
               on both the normal and the exceptional path"
              (String.concat ", " spec.Lint_config.r3_deferred_acquires)
              (String.concat ", " spec.Lint_config.r3_bulk_release)))
  end;
  List.rev !findings
