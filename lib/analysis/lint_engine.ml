(** Orchestrates a lint run: load every [.cmt] under the given paths
    once, run R1–R7 over shared typed-tree walks, apply suppression
    comments, and split the results.

    The engine makes exactly three passes over each unit's typed AST:

    1. a {b collect} walk gathering R1's transaction-local binders and
       the module-reference edges R2's reachability needs;
    2. a {b check} walk running the per-expression hooks of every rule
       in scope for the unit (R1, R1-dls, R2, R5, R6) plus R3's
       per-spec check for the three lock runtimes;
    3. an {b escape-graph} build ({!Escape_graph.build}) for units in
       the R4 universe or R7 scope — one value-granular summary shared
       by both whole-program rules.

    With [?clock] (the [--timing] flag) each stage's wall-clock is
    accumulated into [result.timings]. *)

type result = {
  findings : Lint_finding.t list;  (** unsuppressed errors, sorted *)
  notices : Lint_finding.t list;  (** strict-local notices, sorted *)
  suppressed : Lint_finding.t list;
  stale_suppressions : (string * int * string) list;
      (** (file, line, rule) suppression entries that matched nothing *)
  units_checked : string list;
  timings : (string * float) list;
      (** (stage, seconds) per engine stage; empty unless the caller
          passed [?clock] *)
}

let run ~(config : Lint_config.t) ?clock ~source_root ~paths () =
  let tacc : (string, float ref) Hashtbl.t = Hashtbl.create 16 in
  let note key dt =
    match Hashtbl.find_opt tacc key with
    | Some r -> r := !r +. dt
    | None -> Hashtbl.add tacc key (ref dt)
  in
  let timed key f =
    match clock with
    | None -> f ()
    | Some now ->
      let t0 = now () in
      let r = f () in
      note key (now () -. t0);
      r
  in
  (* Per-expression hooks are wrapped only when timing is on, so the
     default path pays zero clock calls. *)
  let hook key f =
    match clock with
    | None -> f
    | Some now ->
      fun x ->
        let t0 = now () in
        f x;
        note key (now () -. t0)
  in
  let units = timed "load" (fun () -> Cmt_unit.scan paths) in
  let unit_names = Hashtbl.create 64 in
  List.iter (fun u -> Hashtbl.replace unit_names u.Cmt_unit.name ()) units;
  (* Pass 1: collect — R1 local binders + module-reference edges. *)
  let locals_tbl = Hashtbl.create 64 in
  let edges = Hashtbl.create 64 in
  timed "collect" (fun () ->
      List.iter
        (fun u ->
          let name = u.Cmt_unit.name in
          let locals = Hashtbl.create 64 in
          let refs = Hashtbl.create 16 in
          let note_path p =
            match Cmt_unit.resolve_ref ~units:unit_names p with
            | Some t when t <> name -> Hashtbl.replace refs t ()
            | _ -> ()
          in
          let it =
            {
              Tast_iterator.default_iterator with
              value_binding =
                (fun sub vb ->
                  Rule_r1.register_local locals vb;
                  Tast_iterator.default_iterator.value_binding sub vb);
              expr =
                (fun sub e ->
                  (match e.Typedtree.exp_desc with
                  | Typedtree.Texp_ident (p, _, _) -> note_path p
                  | _ -> ());
                  Tast_iterator.default_iterator.expr sub e);
              module_expr =
                (fun sub m ->
                  (match m.Typedtree.mod_desc with
                  | Typedtree.Tmod_ident (p, _) -> note_path p
                  | _ -> ());
                  Tast_iterator.default_iterator.module_expr sub m);
            }
          in
          it.structure it u.Cmt_unit.structure;
          Hashtbl.replace locals_tbl name locals;
          Hashtbl.replace edges name
            (Hashtbl.fold (fun k () acc -> k :: acc) refs []))
        units);
  let reachable =
    Mod_graph.closure ~edges ~seeds:config.Lint_config.r2.r2_seeds
  in
  let raw = ref [] in
  let emit f = raw := f :: !raw in
  (* Pass 2: check — every per-expression rule in one walk per unit. *)
  List.iter
    (fun u ->
      let name = u.Cmt_unit.name in
      let strict_local = config.Lint_config.strict_local in
      let r1 = Lint_config.in_r1_scope config name in
      let dls = Lint_config.in_r1_dls_scope config name in
      let r2 =
        Lint_config.in_r2_universe config name && Hashtbl.mem reachable name
      in
      let r5 =
        match Lint_config.r5_scope config name with
        | `Skip -> None
        | `Check allowed -> Some allowed
      in
      let r6 = Lint_config.in_r6_scope config name in
      if r1 || dls || r2 || r5 <> None || r6 then begin
        let locals =
          match Hashtbl.find_opt locals_tbl name with
          | Some t -> t
          | None -> Hashtbl.create 1
        in
        let current = ref None in
        let add ?severity ~rule ~loc msg =
          emit (Lint_finding.make ?severity ~rule ~loc ~unit_name:name msg)
        in
        let expr_hooks =
          List.concat
            [
              (if r1 then
                 [ hook "R1" (Rule_r1.expr_hook ~locals ~strict_local ~add) ]
               else []);
              (if dls then
                 [ hook "R1" (Rule_r1.dls_hook ~unit_name:name ~emit) ]
               else []);
              (if r2 then [ hook "R2" (Rule_r2.expr_hook ~unit_name:name ~emit) ]
               else []);
              (match r5 with
              | Some allowed ->
                [
                  hook "R5"
                    (Rule_r5.expr_hook ~current ~allowed_bindings:allowed
                       ~unit_name:name ~emit);
                ]
              | None -> []);
              (if r6 then
                 [
                   hook "R6"
                     (Rule_r6.expr_hook config.Lint_config.r6 ~unit_name:name
                        ~emit);
                 ]
               else []);
            ]
        in
        let item_hooks =
          if r1 then [ hook "R1" (Rule_r1.item_hook ~add) ] else []
        in
        let it =
          {
            Tast_iterator.default_iterator with
            expr =
              (fun sub e ->
                List.iter (fun h -> h e) expr_hooks;
                Tast_iterator.default_iterator.expr sub e);
            structure_item =
              (fun sub item ->
                List.iter (fun h -> h item) item_hooks;
                (* Maintain the enclosing top-level binding name (R5's
                   sanctioned-binding granularity). *)
                match item.Typedtree.str_desc with
                | Typedtree.Tstr_value (_, vbs) ->
                  List.iter
                    (fun vb ->
                      let saved = !current in
                      (match vb.Typedtree.vb_pat.Typedtree.pat_desc with
                      | Typedtree.Tpat_var (id, _)
                      | Typedtree.Tpat_alias (_, id, _) ->
                        current := Some (Ident.name id)
                      | _ -> current := None);
                      sub.Tast_iterator.value_binding sub vb;
                      current := saved)
                    vbs
                | _ -> Tast_iterator.default_iterator.structure_item sub item);
          }
        in
        it.structure it u.Cmt_unit.structure
      end;
      match Lint_config.spec_for config name with
      | Some spec -> timed "R3" (fun () -> raw := Rule_r3.check spec u @ !raw)
      | None -> ())
    units;
  (* Pass 3: the escape graph shared by R4 and R7. *)
  let r4_on = config.Lint_config.r4.Lint_config.r4_registry_units <> [] in
  let r7_on = config.Lint_config.r7.Lint_config.r7_prefixes <> [] in
  let summaries = Hashtbl.create 32 in
  if r4_on || r7_on then
    timed "escape-graph" (fun () ->
        List.iter
          (fun u ->
            let name = u.Cmt_unit.name in
            if
              (r7_on && Lint_config.in_r7_scope config name)
              || (r4_on && Rule_r4.in_universe config.Lint_config.r4 name)
            then begin
              let spec = Lint_config.spec_for config name in
              let bc =
                {
                  Escape_graph.bc_units = unit_names;
                  bc_write_idents =
                    config.Lint_config.r4.Lint_config.r4_write_idents;
                  bc_write_fields =
                    config.Lint_config.r4.Lint_config.r4_write_fields;
                  bc_acquire_helpers =
                    (match spec with
                    | Some s -> s.Lint_config.r3_acquire_helpers
                    | None -> []);
                  bc_release_helpers =
                    (match spec with
                    | Some s -> s.Lint_config.r3_release_helpers
                    | None -> []);
                }
              in
              Hashtbl.replace summaries name (Escape_graph.build bc u)
            end)
          units);
  if r4_on then
    timed "R4" (fun () ->
        raw :=
          Rule_r4.check config.Lint_config.r4 ~units:unit_names ~summaries
            units
          @ !raw);
  if r7_on then
    timed "R7" (fun () ->
        raw :=
          Rule_r7.check config.Lint_config.r7
            ~in_scope:(Lint_config.in_r7_scope config)
            summaries
          @ !raw);
  let raw = List.sort Lint_finding.compare !raw in
  (* Apply suppression comments, reading each source file once. *)
  let tables = Hashtbl.create 16 in
  let table_for file =
    match Hashtbl.find_opt tables file with
    | Some t -> t
    | None ->
      let t = Suppress.load (Filename.concat source_root file) in
      Hashtbl.add tables file t;
      t
  in
  (* Load every scanned unit's suppression table up front, not only the
     files that produced findings: a file whose findings have all been
     fixed is exactly where a suppression goes stale, and on the
     finding-driven path it would never be read. Unit sources and
     finding locations record the same root-relative path, so the cache
     key is shared. *)
  timed "suppress" (fun () ->
      List.iter
        (fun u ->
          match u.Cmt_unit.source with
          | Some src -> ignore (table_for src)
          | None -> ())
        units);
  let notices, errors =
    List.partition
      (fun f -> f.Lint_finding.severity = Lint_finding.Notice)
      raw
  in
  let suppressed, findings =
    List.partition
      (fun f ->
        Suppress.suppressed (table_for f.Lint_finding.file)
          ~line:f.Lint_finding.line ~rule:f.Lint_finding.rule)
      errors
  in
  let stale_suppressions =
    Hashtbl.fold
      (fun file t acc ->
        List.fold_left
          (fun acc (line, rule) -> (file, line, rule) :: acc)
          acc (Suppress.unused t))
      tables []
  in
  let stage_order =
    [
      "load"; "collect"; "R1"; "R2"; "R3"; "R5"; "R6"; "escape-graph"; "R4";
      "R7"; "suppress";
    ]
  in
  let timings =
    List.filter_map
      (fun k ->
        match Hashtbl.find_opt tacc k with
        | Some r -> Some (k, !r)
        | None -> None)
      stage_order
  in
  {
    findings;
    notices;
    suppressed;
    stale_suppressions;
    units_checked = List.map (fun u -> u.Cmt_unit.name) units;
    timings;
  }

let render_text result =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string buf (Lint_finding.to_string f);
      Buffer.add_char buf '\n';
      List.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf "  %s:%d:%d: %s\n" r.Lint_finding.rel_file
               r.Lint_finding.rel_line r.Lint_finding.rel_col
               r.Lint_finding.rel_message))
        f.Lint_finding.related)
    result.findings;
  List.iter
    (fun f ->
      Buffer.add_string buf ("notice: " ^ Lint_finding.to_string f);
      Buffer.add_char buf '\n')
    result.notices;
  List.iter
    (fun (file, line, rule) ->
      Buffer.add_string buf
        (Printf.sprintf
           "%s:%d: warning: stale suppression for rule %S matches no finding\n"
           file line rule))
    result.stale_suppressions;
  List.iter
    (fun (stage, s) ->
      Buffer.add_string buf
        (Printf.sprintf "timing: %-12s %8.2f ms\n" stage (s *. 1000.)))
    result.timings;
  Buffer.add_string buf
    (Printf.sprintf
       "sb7-lint: %d unit(s), %d error(s), %d suppressed, %d notice(s)\n"
       (List.length result.units_checked)
       (List.length result.findings)
       (List.length result.suppressed)
       (List.length result.notices));
  Buffer.contents buf

(* docs/LINT.md anchor for a rule id; the base URL is the repository
   location from dune-project's (source) stanza. *)
let rule_anchor = function
  | "raw-mut" | "raw-mut-global" | "raw-dls" -> "r1"
  | "irrevocable" -> "r2"
  | "lock-order" | "lock-release" | "lock-wait" | "lock-table" -> "r3"
  | "profile-honesty" -> "r4"
  | "obj-use" -> "r5"
  | "tvar-escape" -> "r6"
  | "domain-escape" -> "r7"
  | _ -> "sb7-lint--static-stm-discipline-checker"

let help_uri rule =
  "https://example.org/stmbench7-ocaml/docs/LINT.md#" ^ rule_anchor rule

(* The full rule table, so the SARIF driver advertises every rule it
   checked — not just the ones that happened to fire. A clean tree must
   still report which rules it is clean under. *)
let all_rule_ids =
  [
    "raw-mut";
    "raw-mut-global";
    "raw-dls";
    "irrevocable";
    "lock-order";
    "lock-release";
    "lock-wait";
    "lock-table";
    "profile-honesty";
    "obj-use";
    "tvar-escape";
    "domain-escape";
  ]

(* SARIF 2.1.0, the interchange format GitHub code scanning ingests
   (CI uploads it with github/codeql-action/upload-sarif). One run, one
   driver, one result per unsuppressed finding or notice; suppressed
   findings are omitted — they carry an in-source justification
   already. Regions are 1-based; module-level findings (line 0) clamp
   to line 1. Multi-step findings (R7 escape paths, R3 lock chains)
   carry their steps as relatedLocations. *)
let render_sarif result =
  let esc = Lint_finding.json_escape in
  let rule_ids =
    List.sort_uniq String.compare
      (all_rule_ids
      @ List.map
          (fun f -> f.Lint_finding.rule)
          (result.findings @ result.notices))
  in
  let rules =
    String.concat ","
      (List.map
         (fun id ->
           Printf.sprintf
             {|{"id":"%s","shortDescription":{"text":"sb7-lint rule %s (see docs/LINT.md)"},"helpUri":"%s"}|}
             (esc id) (esc id)
             (esc (help_uri id)))
         rule_ids)
  in
  let location ~file ~line ~col msg =
    let message =
      match msg with
      | None -> ""
      | Some m -> Printf.sprintf {|,"message":{"text":"%s"}|} (esc m)
    in
    Printf.sprintf
      {|{"physicalLocation":{"artifactLocation":{"uri":"%s"},"region":{"startLine":%d,"startColumn":%d}}%s}|}
      (esc file) (max 1 line) (max 1 (col + 1)) message
  in
  let result_of f =
    let level =
      match f.Lint_finding.severity with
      | Lint_finding.Error -> "error"
      | Lint_finding.Notice -> "note"
    in
    let related =
      match f.Lint_finding.related with
      | [] -> ""
      | rels ->
        Printf.sprintf {|,"relatedLocations":[%s]|}
          (String.concat ","
             (List.map
                (fun r ->
                  location ~file:r.Lint_finding.rel_file
                    ~line:r.Lint_finding.rel_line ~col:r.Lint_finding.rel_col
                    (Some r.Lint_finding.rel_message))
                rels))
    in
    Printf.sprintf
      {|{"ruleId":"%s","level":"%s","message":{"text":"%s"},"locations":[%s]%s}|}
      (esc f.Lint_finding.rule) level
      (esc f.Lint_finding.message)
      (location ~file:f.Lint_finding.file ~line:f.Lint_finding.line
         ~col:f.Lint_finding.col None)
      related
  in
  let results =
    String.concat "," (List.map result_of (result.findings @ result.notices))
  in
  Printf.sprintf
    {|{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"sb7-lint","version":"%s","rules":[%s]}},"results":[%s]}]}|}
    (esc Lint_version.version) rules results

let render_json result =
  let arr fs = String.concat "," (List.map Lint_finding.to_json fs) in
  Printf.sprintf
    {|{"findings":[%s],"notices":[%s],"suppressed":[%s],"units_checked":%d,"errors":%d}|}
    (arr result.findings) (arr result.notices) (arr result.suppressed)
    (List.length result.units_checked)
    (List.length result.findings)
