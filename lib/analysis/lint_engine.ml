(** Orchestrates a lint run: load every [.cmt] under the given paths,
    compute R2 reachability, run the four rule families, apply
    suppression comments, and split the results. *)

type result = {
  findings : Lint_finding.t list;  (** unsuppressed errors, sorted *)
  notices : Lint_finding.t list;  (** strict-local notices, sorted *)
  suppressed : Lint_finding.t list;
  stale_suppressions : (string * int * string) list;
      (** (file, line, rule) suppression entries that matched nothing *)
  units_checked : string list;
}

let run ~(config : Lint_config.t) ~source_root ~paths () =
  let units = Cmt_unit.scan paths in
  let reachable =
    Mod_graph.reachable units ~seeds:config.Lint_config.r2.r2_seeds
  in
  let raw = ref [] in
  List.iter
    (fun u ->
      let name = u.Cmt_unit.name in
      if Lint_config.in_r1_scope config name then
        raw :=
          Rule_r1.check u ~strict_local:config.Lint_config.strict_local
          @ !raw;
      if Lint_config.in_r1_dls_scope config name then
        raw := Rule_r1.check_dls u @ !raw;
      if Lint_config.in_r2_universe config name && Hashtbl.mem reachable name
      then raw := Rule_r2.check u @ !raw;
      if Lint_config.in_r6_scope config name then
        raw := Rule_r6.check config.Lint_config.r6 u @ !raw;
      (match Lint_config.r5_scope config name with
      | `Skip -> ()
      | `Check allowed_bindings ->
        raw := Rule_r5.check u ~allowed_bindings @ !raw);
      match Lint_config.spec_for config name with
      | Some spec -> raw := Rule_r3.check spec u @ !raw
      | None -> ())
    units;
  (* R4 needs the whole unit set at once: it follows run functions from
     the registry across compilation units. *)
  raw := Rule_r4.check config.Lint_config.r4 units @ !raw;
  let raw = List.sort Lint_finding.compare !raw in
  (* Apply suppression comments, reading each source file once. *)
  let tables = Hashtbl.create 16 in
  let table_for file =
    match Hashtbl.find_opt tables file with
    | Some t -> t
    | None ->
      let t = Suppress.load (Filename.concat source_root file) in
      Hashtbl.add tables file t;
      t
  in
  (* Load every scanned unit's suppression table up front, not only the
     files that produced findings: a file whose findings have all been
     fixed is exactly where a suppression goes stale, and on the
     finding-driven path it would never be read. Unit sources and
     finding locations record the same root-relative path, so the cache
     key is shared. *)
  List.iter
    (fun u ->
      match u.Cmt_unit.source with
      | Some src -> ignore (table_for src)
      | None -> ())
    units;
  let notices, errors =
    List.partition
      (fun f -> f.Lint_finding.severity = Lint_finding.Notice)
      raw
  in
  let suppressed, findings =
    List.partition
      (fun f ->
        Suppress.suppressed (table_for f.Lint_finding.file)
          ~line:f.Lint_finding.line ~rule:f.Lint_finding.rule)
      errors
  in
  let stale_suppressions =
    Hashtbl.fold
      (fun file t acc ->
        List.fold_left
          (fun acc (line, rule) -> (file, line, rule) :: acc)
          acc (Suppress.unused t))
      tables []
  in
  {
    findings;
    notices;
    suppressed;
    stale_suppressions;
    units_checked = List.map (fun u -> u.Cmt_unit.name) units;
  }

let render_text result =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string buf (Lint_finding.to_string f);
      Buffer.add_char buf '\n')
    result.findings;
  List.iter
    (fun f ->
      Buffer.add_string buf ("notice: " ^ Lint_finding.to_string f);
      Buffer.add_char buf '\n')
    result.notices;
  List.iter
    (fun (file, line, rule) ->
      Buffer.add_string buf
        (Printf.sprintf
           "%s:%d: warning: stale suppression for rule %S matches no finding\n"
           file line rule))
    result.stale_suppressions;
  Buffer.add_string buf
    (Printf.sprintf
       "sb7-lint: %d unit(s), %d error(s), %d suppressed, %d notice(s)\n"
       (List.length result.units_checked)
       (List.length result.findings)
       (List.length result.suppressed)
       (List.length result.notices));
  Buffer.contents buf

(* SARIF 2.1.0, the interchange format GitHub code scanning ingests
   (CI uploads it with github/codeql-action/upload-sarif). One run, one
   driver, one result per unsuppressed finding or notice; suppressed
   findings are omitted — they carry an in-source justification
   already. Regions are 1-based; module-level findings (line 0) clamp
   to line 1. *)
let render_sarif result =
  let esc = Lint_finding.json_escape in
  let rule_ids =
    List.sort_uniq String.compare
      (List.map
         (fun f -> f.Lint_finding.rule)
         (result.findings @ result.notices))
  in
  let rules =
    String.concat ","
      (List.map
         (fun id ->
           Printf.sprintf
             {|{"id":"%s","shortDescription":{"text":"sb7-lint rule %s (see docs/LINT.md)"}}|}
             (esc id) (esc id))
         rule_ids)
  in
  let result_of f =
    let level =
      match f.Lint_finding.severity with
      | Lint_finding.Error -> "error"
      | Lint_finding.Notice -> "note"
    in
    Printf.sprintf
      {|{"ruleId":"%s","level":"%s","message":{"text":"%s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s"},"region":{"startLine":%d,"startColumn":%d}}}]}|}
      (esc f.Lint_finding.rule) level
      (esc f.Lint_finding.message)
      (esc f.Lint_finding.file)
      (max 1 f.Lint_finding.line)
      (max 1 (f.Lint_finding.col + 1))
  in
  let results =
    String.concat "," (List.map result_of (result.findings @ result.notices))
  in
  Printf.sprintf
    {|{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"sb7-lint","version":"1.0","rules":[%s]}},"results":[%s]}]}|}
    rules results

let render_json result =
  let arr fs = String.concat "," (List.map Lint_finding.to_json fs) in
  Printf.sprintf
    {|{"findings":[%s],"notices":[%s],"suppressed":[%s],"units_checked":%d,"errors":%d}|}
    (arr result.findings) (arr result.notices) (arr result.suppressed)
    (List.length result.units_checked)
    (List.length result.findings)
