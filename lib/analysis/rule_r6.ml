(** R6 — tvar-escape.

    An atomic block can be re-executed any number of times (aborts,
    retries) and its writes are provisional until commit, so nothing
    computed inside it may outlive it except through the commit itself.
    Two escape shapes are flagged:

    - a {b closure} capturing a binding of the atomic scope (a value
      read from a tvar, or transaction-local mutable state) stored
      through a sink — written to a tvar, or into a mutable cell
      defined outside the block. If the attempt aborts, the closure
      retains values of a transaction that never happened; running it
      later observes a snapshot that was never committed.
    - a {b transaction-local mutable value} (ref, table, buffer, ...)
      written to a tvar: retried attempts then share the cell, so side
      effects of aborted executions leak into committed state.

    The analysis is syntactic and scoped: it only looks inside function
    literals passed directly to a configured atomic entry point
    ([R.atomic ... (fun () -> ...)]). Bindings are collected per atomic
    scope without descending into nested lambdas — a variable bound
    inside a closure is re-created on every call of that closure, so
    referencing it there is not a capture of transactional state.
    Constant closures (capturing nothing from the atomic scope) are
    allowed: they carry no stale data. *)

open Typedtree

let path_name p = Path.name p

(* Bindings and local-mutable bindings of one atomic scope, plus
   closures let-bound in it (so a named lambda flowing to a sink can be
   capture-checked like an inline one). Collection stops at nested
   function literals. *)
type scope = {
  bound : (Ident.t, unit) Hashtbl.t;
  mutlocal : (Ident.t, unit) Hashtbl.t;
  closures : (Ident.t, expression) Hashtbl.t;
}

let collect_scope params body =
  let s =
    {
      bound = Hashtbl.create 32;
      mutlocal = Hashtbl.create 16;
      closures = Hashtbl.create 16;
    }
  in
  List.iter (fun id -> Hashtbl.replace s.bound id ()) params;
  let register_vb vb =
    List.iter
      (fun id -> Hashtbl.replace s.bound id ())
      (pat_bound_idents vb.vb_pat);
    match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) -> (
      if Rule_r1.is_creator vb.vb_expr then Hashtbl.replace s.mutlocal id ();
      match vb.vb_expr.exp_desc with
      | Texp_function _ -> Hashtbl.replace s.closures id vb.vb_expr
      | _ -> ())
    | _ -> ()
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          match e.exp_desc with
          | Texp_function _ -> () (* closure-internal scope: not ours *)
          | _ -> Tast_iterator.default_iterator.expr sub e);
      value_binding =
        (fun sub vb ->
          register_vb vb;
          Tast_iterator.default_iterator.value_binding sub vb);
      case =
        (fun sub c ->
          List.iter
            (fun id -> Hashtbl.replace s.bound id ())
            (pat_bound_idents c.c_lhs);
          Tast_iterator.default_iterator.case sub c);
    }
  in
  it.expr it body;
  s

(* Names of atomic-scope bindings referenced anywhere inside [e]
   (including nested lambdas): the captured transactional state. Ident
   stamps are unique per unit, so a shadowing binder inside the closure
   is a different ident and never a false capture. *)
let captures scope e =
  let found = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_ident (Path.Pident id, _, _) when Hashtbl.mem scope.bound id
            ->
            if not (List.mem (Ident.name id) !found) then
              found := Ident.name id :: !found
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it e;
  List.rev !found

(* Peel [fun p1 -> fun p2 -> body]: parameter idents + innermost body.
   A non-trivial multi-case [function] is left alone (params []) — the
   harness and runtimes only pass single-case thunks to atomic. *)
let rec peel_function e =
  match e.exp_desc with
  | Texp_function { param; cases = [ { c_lhs; c_rhs; _ } ]; _ } ->
    let params, body = peel_function c_rhs in
    (param :: (pat_bound_idents c_lhs @ params), body)
  | _ -> ([], e)

(* One sink application inside an atomic scope. *)
let check_sink ~add scope ~sink_name ~target ~value =
    let target_is_txn_local =
      match target with
      | Some { exp_desc = Texp_ident (Path.Pident id, _, _); _ } ->
        Hashtbl.mem scope.bound id
      | _ -> false
    in
    if not target_is_txn_local then
      let closure =
        match value.exp_desc with
        | Texp_function _ -> Some value
        | Texp_ident (Path.Pident id, _, _) ->
          Hashtbl.find_opt scope.closures id
        | _ -> None
      in
      match closure with
      | Some fn -> (
        match captures scope fn with
        | [] -> () (* constant closure: carries no transactional state *)
        | captured ->
          add ~loc:value.exp_loc
            (Printf.sprintf
               "closure stored through %s captures transaction-local \
                binding%s %s: it outlives the atomic block and can replay \
                state of an aborted attempt"
               sink_name
               (if List.length captured > 1 then "s" else "")
               (String.concat ", "
                  (List.map (Printf.sprintf "%S") captured))))
      | None -> (
        match value.exp_desc with
        | Texp_ident (Path.Pident id, _, _) when Hashtbl.mem scope.mutlocal id
          ->
          add ~loc:value.exp_loc
            (Printf.sprintf
               "transaction-local mutable value %S escapes the atomic block \
                through %s: retried attempts would share one cell and leak \
                aborted effects into committed state"
               (Ident.name id) sink_name)
        | _ -> ())

(* Walk one atomic body looking for sink applications, nested lambdas
   included (they may run — or be stored — during the attempt). *)
let scan_atomic_body (r6 : Lint_config.r6) ~add scope body =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
            let name = path_name p in
            match
              List.find_opt (fun (s, _, _) -> s = name) r6.Lint_config.r6_sinks
            with
            | None -> ()
            | Some (_, value_arg, target_arg) -> (
              let target =
                Option.bind target_arg (Rule_r1.nth_positional args)
              in
              match Rule_r1.nth_positional args value_arg with
              | Some value ->
                check_sink ~add scope ~sink_name:name ~target ~value
              | None -> ()))
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it body

(* Per-expression hook for the shared engine walk: fires on atomic
   entry-point applications and scans the function literals passed to
   them (a self-contained sub-walk — the engine's iterator still visits
   the same subtree, which is harmless: the hook only looks at direct
   atomic applications). *)
let expr_hook (r6 : Lint_config.r6) ~unit_name ~emit e =
  let add ~loc msg =
    emit (Lint_finding.make ~rule:"tvar-escape" ~loc ~unit_name msg)
  in
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
    when List.mem (path_name p) r6.Lint_config.r6_atomic_idents ->
    List.iter
      (fun (_, arg) ->
        match arg with
        | Some ({ exp_desc = Texp_function _; _ } as fn) ->
          let params, body = peel_function fn in
          let scope = collect_scope params body in
          scan_atomic_body r6 ~add scope body
        | _ -> ())
      args
  | _ -> ()

let check (r6 : Lint_config.r6) (u : Cmt_unit.t) =
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          expr_hook r6 ~unit_name:u.Cmt_unit.name ~emit e;
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.structure it u.Cmt_unit.structure;
  List.rev !findings
