(** R5 — obj-use.

    [Obj.*] defeats the type system, and in this codebase it also
    defeats the benchmark's correctness story: the runtimes' safety
    arguments (and the sanitizer's trace model) assume tvar payloads are
    ordinary immutable OCaml values. An [Obj.magic] in the wrong place
    can alias, tear or retype shared state in ways none of the dynamic
    or static checkers can see, so every use must be a deliberate,
    reviewed decision.

    The rule reports every [Stdlib.Obj.*] identifier occurrence in
    scope. Sanctioned sites are named per unit in
    {!Lint_config.r5_allowed} — either the whole unit (the padded-atomic
    shim, which is [Obj] by design) or a single top-level binding (the
    [cast_ref] helpers of the word-based STMs). The sanctioned-binding
    granularity is the {e top-level} structure item: a nested [let]
    inside a sanctioned binding is covered, a sibling binding is not. *)

open Typedtree

(* Per-expression hook for the shared engine walk: [current] is the
   name of the enclosing top-level value binding, maintained by the
   caller's structure_item handling. *)
let expr_hook ~current ~allowed_bindings ~unit_name ~emit e =
  let sanctioned () =
    match !current with
    | Some b -> List.mem b allowed_bindings
    | None -> false
  in
  match e.exp_desc with
  | Texp_ident (p, _, _) ->
    let name = Path.name p in
    if String.starts_with ~prefix:"Stdlib.Obj." name && not (sanctioned ())
    then
      emit
        (Lint_finding.make ~rule:"obj-use" ~loc:e.exp_loc ~unit_name
           (Printf.sprintf
              "%s: unsafe Obj primitives are forbidden outside the \
               sanctioned sites (Lint_config.r5_allowed, justified in \
               DESIGN.md); they can alias or retype shared state behind \
               every checker's back"
              name))
  | _ -> ()

let check (u : Cmt_unit.t) ~allowed_bindings =
  let findings = ref [] in
  let unit_name = u.Cmt_unit.name in
  let emit f = findings := f :: !findings in
  let current = ref None in
  let check_expr e = expr_hook ~current ~allowed_bindings ~unit_name ~emit e in
  let pass =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          check_expr e;
          Tast_iterator.default_iterator.expr sub e);
      structure_item =
        (fun sub item ->
          match item.str_desc with
          | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                let saved = !current in
                (* A top-level [let f : ty = ...] with a ground
                   annotation is typed as an alias pattern, not a
                   variable — both name the binding. *)
                (match vb.vb_pat.pat_desc with
                | Tpat_var (id, _) | Tpat_alias (_, id, _) ->
                  current := Some (Ident.name id)
                | _ -> current := None);
                sub.value_binding sub vb;
                current := saved)
              vbs
          | _ -> Tast_iterator.default_iterator.structure_item sub item);
    }
  in
  pass.structure pass u.Cmt_unit.structure;
  List.rev !findings
