(** Per-site suppression comments.

    A finding on line [l] is suppressed when line [l] or line [l - 1]
    of the source file carries a comment of the form

    {v (* sb7-lint: allow <rule> -- reason *) v}

    where [<rule>] is the finding's rule id (e.g. [raw-mut],
    [irrevocable], [lock-order]) or [all]. The reason is free text; by
    convention it says why the site is safe (e.g. "thread-private
    state"). Several rules may be allowed at one site by repeating the
    marker. *)

type entry = {
  e_line : int;
  e_rule : string;
  mutable e_used : bool;
}

type t = {
  entries : entry list;
  source : string;  (** path the suppressions were read from *)
}

let empty source = { entries = []; source }

(* Matches "sb7-lint:<ws>allow<ws><rule-token>" anywhere in a line;
   comment delimiters around it are not checked so the marker also
   works inside larger documentation comments. *)
let parse_line line =
  let key = "sb7-lint:" in
  let klen = String.length key in
  let len = String.length line in
  let rec find i =
    if i + klen > len then None
    else if String.sub line i klen = key then Some (i + klen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    let rec skip_ws i = if i < len && line.[i] = ' ' then skip_ws (i + 1) else i in
    let i = skip_ws i in
    let word_end j =
      let rec go j =
        if j < len
           && (match line.[j] with
              | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> true
              | _ -> false)
        then go (j + 1)
        else j
      in
      go j
    in
    let e = word_end i in
    if String.sub line i (e - i) <> "allow" then None
    else
      let i = skip_ws e in
      let e = word_end i in
      if e = i then None else Some (String.sub line i (e - i))

(* A marker inside a multi-line comment protects the code following the
   comment, so an entry's effective line is the line where its comment
   closes (the marker's own line for single-line comments). *)
let closing_line lines start =
  let n = Array.length lines in
  let rec find i =
    if i >= n then start + 1
    else
      let line = lines.(i) in
      let has_close =
        let len = String.length line in
        let rec scan j =
          j + 1 < len && ((line.[j] = '*' && line.[j + 1] = ')') || scan (j + 1))
        in
        scan 0
      in
      if has_close then i + 1 else find (i + 1)
  in
  find start

let load path =
  match open_in path with
  | exception Sys_error _ -> empty path
  | ic ->
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    let lines = Array.of_list (List.rev !lines) in
    let entries = ref [] in
    Array.iteri
      (fun i line ->
        match parse_line line with
        | Some rule ->
          entries :=
            { e_line = closing_line lines i; e_rule = rule; e_used = false }
            :: !entries
        | None -> ())
      lines;
    { entries = List.rev !entries; source = path }

(** [suppressed t ~line ~rule] also marks the matching entry as used so
    that stale suppressions can be reported. *)
let suppressed t ~line ~rule =
  match
    List.find_opt
      (fun e ->
        (e.e_line = line || e.e_line = line - 1)
        && (e.e_rule = rule || e.e_rule = "all"))
      t.entries
  with
  | Some e ->
    e.e_used <- true;
    true
  | None -> false

(** Suppression entries that never matched a finding: likely stale. *)
let unused t =
  List.filter_map
    (fun e -> if e.e_used then None else Some (e.e_line, e.e_rule))
    t.entries
