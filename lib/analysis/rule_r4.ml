(** R4 — profile honesty.

    The STM runtimes dispatch on [Op_profile.read_only]: an operation
    registered without a [~writes] clause runs through the zero-log /
    snapshot read-only path. A profile that lies costs a runtime
    demotion (one aborted transaction, a sticky registry entry) on
    every run — this rule catches the lie statically instead.

    Detection works on the typed AST at {e value} granularity (module
    granularity would be useless: every core module mixes read-only
    and writing operations, and the shared traversal skeletons take
    their write closures as arguments):

    1. In the configured registry unit(s), find applications of the
       profiled operation builders. An operation is declared read-only
       when it is built by a non-structural builder with no [~writes]
       argument; the last positional identifier argument is its run
       function.
    2. For every unit in the configured universe, build a reference
       graph over top-level value bindings (including bindings inside
       functor bodies, which is where the sync-free core lives). Local
       module aliases — [module LT = Traversals.Make (R)] — are
       resolved to their compilation units so [LT.t1] becomes an edge
       to [Sb7_core__Traversals.t1].
    3. A value {e writes} when it mentions a configured write
       identifier (the runtime functor's [R.write]) or projects a
       configured mutator field of the first-class index record
       ([.put] / [.remove]). A declared-read-only operation whose run
       function reaches a writing value is a finding, reported at the
       registration site (so a suppression comment sits next to the
       profile it vouches for).

    Approximations, all on the strict side: referencing a writing
    closure counts as writing even if the reference is never called;
    an explicit [~writes:[]] is treated as an update declaration;
    bindings of the same name in sibling nested modules of one unit
    are merged. A false positive is suppressible per site; a write
    reached only through a closure parameter (not a named value) is
    the one shape this analysis cannot see — the runtime demotion
    path remains the backstop for those. *)

open Typedtree

let rec last_component = function
  | Path.Pident id -> Ident.name id
  | Path.Pdot (_, s) -> s
  | Path.Papply (p, _) -> last_component p
  | Path.Pextra_ty (p, _) -> last_component p

(* --- Per-unit value-reference graph --- *)

type vinfo = {
  mutable v_refs : (string * string) list;  (** (unit, value) edges *)
  mutable v_writes : (string * Location.t) list;
      (** (description, site) of direct writes in the binding body *)
}

type unit_info = {
  bindings : (string, vinfo) Hashtbl.t;
}

(* Walk a structure, flattening nested modules and functor bodies:
   [items] receives every structure item, [aliases] every local module
   binding name with its module expression. The sync-free core defines
   its operations inside [Make (R : Runtime_intf.S)], so descending
   into functor bodies is the common case, not the exception. *)
let rec walk_structure ~on_item ~on_module str =
  List.iter (walk_item ~on_item ~on_module) str.str_items

and walk_item ~on_item ~on_module item =
  on_item item;
  match item.str_desc with
  | Tstr_module mb ->
    (match mb.mb_id with
    | Some id -> on_module (Ident.name id) mb.mb_expr
    | None -> ());
    walk_module ~on_item ~on_module mb.mb_expr
  | Tstr_recmodule mbs ->
    List.iter
      (fun mb ->
        (match mb.mb_id with
        | Some id -> on_module (Ident.name id) mb.mb_expr
        | None -> ());
        walk_module ~on_item ~on_module mb.mb_expr)
      mbs
  | _ -> ()

and walk_module ~on_item ~on_module m =
  match m.mod_desc with
  | Tmod_structure str -> walk_structure ~on_item ~on_module str
  | Tmod_functor (_, body) -> walk_module ~on_item ~on_module body
  | Tmod_constraint (m, _, _, _) -> walk_module ~on_item ~on_module m
  | _ -> ()

(* [module X = Unit] or [module X = Unit.Make (R)] — the unit behind a
   local module alias, if it is one of the loaded units. *)
let rec alias_target ~units m =
  match m.mod_desc with
  | Tmod_ident (p, _) -> Cmt_unit.resolve_ref ~units p
  | Tmod_apply (f, _, _) -> alias_target ~units f
  | Tmod_constraint (m, _, _, _) -> alias_target ~units m
  | _ -> None

let collect_aliases ~units structure =
  let aliases = Hashtbl.create 8 in
  walk_structure
    ~on_item:(fun _ -> ())
    ~on_module:(fun name m ->
      match alias_target ~units m with
      | Some target -> Hashtbl.replace aliases name target
      | None -> ())
    structure;
  aliases

(* References and writes in one binding body. [Pident] references stay
   within the unit (parameters and let-locals simply fail the binding
   lookup later); alias-qualified and wrapper-qualified references
   become cross-unit edges. *)
let analyze_binding (config : Lint_config.r4) ~units ~aliases ~unit_name expr
    (v : vinfo) =
  let note_path p loc =
    let name = Path.name p in
    if List.mem name config.r4_write_idents then
      v.v_writes <- (name, loc) :: v.v_writes
    else
      match Cmt_unit.resolve_ref ~units p with
      | Some target -> v.v_refs <- (target, last_component p) :: v.v_refs
      | None -> (
        match p with
        | Path.Pdot (Path.Pident m, field) -> (
          match Hashtbl.find_opt aliases (Ident.name m) with
          | Some target -> v.v_refs <- (target, field) :: v.v_refs
          | None -> ())
        | Path.Pident id -> v.v_refs <- (unit_name, Ident.name id) :: v.v_refs
        | _ -> ())
  in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_ident (p, _, _) -> note_path p e.exp_loc
          | Texp_field (_, _, lbl)
            when List.mem lbl.Types.lbl_name config.r4_write_fields ->
            v.v_writes <-
              ("index mutation ." ^ lbl.Types.lbl_name, e.exp_loc) :: v.v_writes
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  iter.expr iter expr

let unit_info (config : Lint_config.r4) ~units (u : Cmt_unit.t) =
  let aliases = collect_aliases ~units u.Cmt_unit.structure in
  let bindings = Hashtbl.create 32 in
  walk_structure
    ~on_module:(fun _ _ -> ())
    ~on_item:(fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match vb.vb_pat.pat_desc with
            | Tpat_var (id, _) ->
              let name = Ident.name id in
              let v =
                match Hashtbl.find_opt bindings name with
                | Some v -> v (* same name in sibling scope: merge *)
                | None ->
                  let v = { v_refs = []; v_writes = [] } in
                  Hashtbl.add bindings name v;
                  v
              in
              analyze_binding config ~units ~aliases
                ~unit_name:u.Cmt_unit.name vb.vb_expr v
            | _ -> ())
          vbs
      | _ -> ())
    u.Cmt_unit.structure;
  { bindings }

(* --- Registry extraction --- *)

type registered_op = {
  op_code : string;
  op_run : (string * string) option;  (** resolved (unit, value) *)
  op_run_name : string;  (** as written, for messages *)
  op_has_writes : bool;  (** a non-[None] [~writes] argument was passed *)
  op_loc : Location.t;
}

let const_string e =
  match e.exp_desc with
  | Texp_constant (Const_string (s, _, _)) -> Some s
  | _ -> None

let is_none_construct e =
  match e.exp_desc with
  | Texp_construct (_, cd, _) -> cd.Types.cstr_name = "None"
  | _ -> false

(* Unwrap the [Some e] the typechecker inserts when an optional
   argument is passed with [~label:e]. *)
let unwrap_option_arg e =
  match e.exp_desc with
  | Texp_construct (_, { Types.cstr_name = "Some"; _ }, [ inner ]) -> inner
  | _ -> e

(* Every profiled-builder registration in a registry unit, with
   whether a (non-[None]) [~writes] argument was passed. *)
let registered_ops (config : Lint_config.r4) ~units (u : Cmt_unit.t) =
  let aliases = collect_aliases ~units u.Cmt_unit.structure in
  let ops = ref [] in
  let handle_apply fn args loc =
    match fn.exp_desc with
    | Texp_ident (p, _, _) ->
      let builder = last_component p in
      if List.mem builder config.r4_profiled_builders then begin
        let code =
          List.find_map
            (fun (label, arg) ->
              match (label, arg) with
              | Asttypes.Nolabel, Some a -> const_string a
              | _ -> None)
            args
        in
        let has_writes =
          List.exists
            (fun (label, arg) ->
              (match label with
              | Asttypes.Labelled s | Asttypes.Optional s -> s = "writes"
              | Asttypes.Nolabel -> false)
              &&
              match arg with
              | Some a -> not (is_none_construct a)
              | None -> false)
            args
        in
        let run =
          List.fold_left
            (fun acc (label, arg) ->
              match (label, arg) with
              | Asttypes.Nolabel, Some a -> (
                match (unwrap_option_arg a).exp_desc with
                | Texp_ident (rp, _, _) -> Some rp
                | _ -> acc)
              | _ -> acc)
            None args
        in
        match (code, run) with
        | Some code, Some rp ->
          let resolved =
            match Cmt_unit.resolve_ref ~units rp with
            | Some target -> Some (target, last_component rp)
            | None -> (
              match rp with
              | Path.Pdot (Path.Pident m, field) -> (
                match Hashtbl.find_opt aliases (Ident.name m) with
                | Some target -> Some (target, field)
                | None -> None)
              | Path.Pident id -> Some (u.Cmt_unit.name, Ident.name id)
              | _ -> None)
          in
          ops :=
            {
              op_code = code;
              op_run = resolved;
              op_run_name = Path.name rp;
              op_has_writes = has_writes;
              op_loc = loc;
            }
            :: !ops
        | _ -> ()
      end
    | _ -> ()
  in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_apply (fn, args) -> handle_apply fn args e.exp_loc
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  iter.structure iter u.Cmt_unit.structure;
  List.rev !ops

(* --- Reachability --- *)

let find_write infos (start_unit, start_value) =
  let visited = Hashtbl.create 64 in
  let rec go unit_name value =
    if Hashtbl.mem visited (unit_name, value) then None
    else begin
      Hashtbl.add visited (unit_name, value) ();
      match Hashtbl.find_opt infos unit_name with
      | None -> None
      | Some info -> (
        match Hashtbl.find_opt info.bindings value with
        | None -> None
        | Some v -> (
          match List.rev v.v_writes with
          | (what, loc) :: _ -> Some (unit_name, value, what, loc)
          | [] ->
            List.find_map
              (fun (u', v') -> go u' v')
              (List.rev v.v_refs)))
    end
  in
  go start_unit start_value

let in_universe (config : Lint_config.r4) unit_name =
  List.exists
    (fun p -> String.starts_with ~prefix:p unit_name)
    config.r4_universe_prefixes

let pos_of loc =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_fname, p.Lexing.pos_lnum)

let check (config : Lint_config.r4) (all_units : Cmt_unit.t list) =
  if config.r4_registry_units = [] then []
  else begin
    let units = Hashtbl.create 64 in
    List.iter
      (fun u -> Hashtbl.replace units u.Cmt_unit.name ())
      all_units;
    let infos = Hashtbl.create 32 in
    List.iter
      (fun u ->
        if in_universe config u.Cmt_unit.name then
          Hashtbl.replace infos u.Cmt_unit.name
            (unit_info config ~units u))
      all_units;
    (* Which registrations are read-only claims to verify: the codes
       the generated footprint table infers as pure reads when
       configured, the no-~writes declaration heuristic otherwise. *)
    let claimed_ro op =
      match config.r4_ro_codes with
      | [] -> not op.op_has_writes
      | codes -> List.mem op.op_code codes
    in
    let claim_source =
      if config.r4_ro_codes = [] then "profile declares read-only (no ~writes)"
      else "the footprint table infers pure-read"
    in
    let claim_fix =
      if config.r4_ro_codes = [] then "fix the profile or the operation"
      else "the sb7-footprint generator is unsound for this operation"
    in
    let findings = ref [] in
    List.iter
      (fun u ->
        if List.mem u.Cmt_unit.name config.r4_registry_units then
          List.iter
            (fun op ->
              match op.op_run with
              | None -> ()
              | Some target when claimed_ro op -> (
                match find_write infos target with
                | None -> ()
                | Some (w_unit, w_value, what, w_loc) ->
                  let file, line = pos_of w_loc in
                  findings :=
                    Lint_finding.make ~rule:"profile-honesty" ~loc:op.op_loc
                      ~unit_name:u.Cmt_unit.name
                      (Printf.sprintf
                         "operation %S: %s but its run function %s reaches \
                          %s in %s.%s (%s:%d) — %s"
                         op.op_code claim_source op.op_run_name what w_unit
                         w_value file line claim_fix)
                    :: !findings)
              | Some _ -> ())
            (registered_ops config ~units u))
      all_units;
    List.rev !findings
  end
