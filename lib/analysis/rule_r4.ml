(** R4 — profile honesty.

    The STM runtimes dispatch on [Op_profile.read_only]: an operation
    registered without a [~writes] clause runs through the zero-log /
    snapshot read-only path. A profile that lies costs a runtime
    demotion (one aborted transaction, a sticky registry entry) on
    every run — this rule catches the lie statically instead.

    Detection works on the typed AST at {e value} granularity (module
    granularity would be useless: every core module mixes read-only
    and writing operations, and the shared traversal skeletons take
    their write closures as arguments):

    1. In the configured registry unit(s), find applications of the
       profiled operation builders. An operation is declared read-only
       when it is built by a non-structural builder with no [~writes]
       argument; the last positional identifier argument is its run
       function.
    2. For every unit in the configured universe, build a reference
       graph over top-level value bindings (including bindings inside
       functor bodies, which is where the sync-free core lives). Local
       module aliases — [module LT = Traversals.Make (R)] — are
       resolved to their compilation units so [LT.t1] becomes an edge
       to [Sb7_core__Traversals.t1].
    3. A value {e writes} when it mentions a configured write
       identifier (the runtime functor's [R.write]) or projects a
       configured mutator field of the first-class index record
       ([.put] / [.remove]). A declared-read-only operation whose run
       function reaches a writing value is a finding, reported at the
       registration site (so a suppression comment sits next to the
       profile it vouches for).

    Approximations, all on the strict side: referencing a writing
    closure counts as writing even if the reference is never called;
    an explicit [~writes:[]] is treated as an update declaration;
    bindings of the same name in sibling nested modules of one unit
    are merged. A false positive is suppressible per site; a write
    reached only through a closure parameter (not a named value) is
    the one shape this analysis cannot see — the runtime demotion
    path remains the backstop for those. *)

open Typedtree

let last_component = Escape_graph.last_component

(* --- Registry extraction --- *)

type registered_op = {
  op_code : string;
  op_run : (string * string) option;  (** resolved (unit, value) *)
  op_run_name : string;  (** as written, for messages *)
  op_has_writes : bool;  (** a non-[None] [~writes] argument was passed *)
  op_loc : Location.t;
}

let const_string e =
  match e.exp_desc with
  | Texp_constant (Const_string (s, _, _)) -> Some s
  | _ -> None

let is_none_construct e =
  match e.exp_desc with
  | Texp_construct (_, cd, _) -> cd.Types.cstr_name = "None"
  | _ -> false

(* Unwrap the [Some e] the typechecker inserts when an optional
   argument is passed with [~label:e]. *)
let unwrap_option_arg e =
  match e.exp_desc with
  | Texp_construct (_, { Types.cstr_name = "Some"; _ }, [ inner ]) -> inner
  | _ -> e

(* Every profiled-builder registration in a registry unit, with
   whether a (non-[None]) [~writes] argument was passed. *)
let registered_ops (config : Lint_config.r4) ~units (u : Cmt_unit.t) =
  let aliases = Escape_graph.collect_aliases ~units u.Cmt_unit.structure in
  let ops = ref [] in
  let handle_apply fn args loc =
    match fn.exp_desc with
    | Texp_ident (p, _, _) ->
      let builder = last_component p in
      if List.mem builder config.r4_profiled_builders then begin
        let code =
          List.find_map
            (fun (label, arg) ->
              match (label, arg) with
              | Asttypes.Nolabel, Some a -> const_string a
              | _ -> None)
            args
        in
        let has_writes =
          List.exists
            (fun (label, arg) ->
              (match label with
              | Asttypes.Labelled s | Asttypes.Optional s -> s = "writes"
              | Asttypes.Nolabel -> false)
              &&
              match arg with
              | Some a -> not (is_none_construct a)
              | None -> false)
            args
        in
        let run =
          List.fold_left
            (fun acc (label, arg) ->
              match (label, arg) with
              | Asttypes.Nolabel, Some a -> (
                match (unwrap_option_arg a).exp_desc with
                | Texp_ident (rp, _, _) -> Some rp
                | _ -> acc)
              | _ -> acc)
            None args
        in
        match (code, run) with
        | Some code, Some rp ->
          let resolved =
            match Cmt_unit.resolve_ref ~units rp with
            | Some target -> Some (target, last_component rp)
            | None -> (
              match rp with
              | Path.Pdot (Path.Pident m, field) -> (
                match Hashtbl.find_opt aliases (Ident.name m) with
                | Some target -> Some (target, field)
                | None -> None)
              | Path.Pident id -> Some (u.Cmt_unit.name, Ident.name id)
              | _ -> None)
          in
          ops :=
            {
              op_code = code;
              op_run = resolved;
              op_run_name = Path.name rp;
              op_has_writes = has_writes;
              op_loc = loc;
            }
            :: !ops
        | _ -> ()
      end
    | _ -> ()
  in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_apply (fn, args) -> handle_apply fn args e.exp_loc
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  iter.structure iter u.Cmt_unit.structure;
  List.rev !ops

(* --- Reachability over the shared escape-graph summaries --- *)

let find_write (summaries : (string, Escape_graph.summary) Hashtbl.t)
    (start_unit, start_value) =
  let visited = Hashtbl.create 64 in
  let rec go unit_name value =
    if Hashtbl.mem visited (unit_name, value) then None
    else begin
      Hashtbl.add visited (unit_name, value) ();
      match Hashtbl.find_opt summaries unit_name with
      | None -> None
      | Some s -> (
        match Hashtbl.find_opt s.Escape_graph.s_bindings value with
        | None -> None
        | Some b -> (
          match List.rev b.Escape_graph.b_r4_writes with
          | (what, loc) :: _ -> Some (unit_name, value, what, loc)
          | [] ->
            List.find_map
              (fun (u', v') -> go u' v')
              (List.rev b.Escape_graph.b_refs)))
    end
  in
  go start_unit start_value

let in_universe (config : Lint_config.r4) unit_name =
  List.exists
    (fun p -> String.starts_with ~prefix:p unit_name)
    config.r4_universe_prefixes

let pos_of loc =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_fname, p.Lexing.pos_lnum)

(* [summaries] is the engine's shared escape graph (built once, used by
   both this rule and R7); it covers at least every unit in the R4
   universe. *)
let check (config : Lint_config.r4) ~units
    ~(summaries : (string, Escape_graph.summary) Hashtbl.t)
    (all_units : Cmt_unit.t list) =
  if config.r4_registry_units = [] then []
  else begin
    (* Which registrations are read-only claims to verify: the codes
       the generated footprint table infers as pure reads when
       configured, the no-~writes declaration heuristic otherwise. *)
    let claimed_ro op =
      match config.r4_ro_codes with
      | [] -> not op.op_has_writes
      | codes -> List.mem op.op_code codes
    in
    let claim_source =
      if config.r4_ro_codes = [] then "profile declares read-only (no ~writes)"
      else "the footprint table infers pure-read"
    in
    let claim_fix =
      if config.r4_ro_codes = [] then "fix the profile or the operation"
      else "the sb7-footprint generator is unsound for this operation"
    in
    let findings = ref [] in
    List.iter
      (fun u ->
        if List.mem u.Cmt_unit.name config.r4_registry_units then
          List.iter
            (fun op ->
              match op.op_run with
              | None -> ()
              | Some target when claimed_ro op -> (
                match find_write summaries target with
                | None -> ()
                | Some (w_unit, w_value, what, w_loc) ->
                  let file, line = pos_of w_loc in
                  findings :=
                    Lint_finding.make ~rule:"profile-honesty" ~loc:op.op_loc
                      ~unit_name:u.Cmt_unit.name
                      (Printf.sprintf
                         "operation %S: %s but its run function %s reaches \
                          %s in %s.%s (%s:%d) — %s"
                         op.op_code claim_source op.op_run_name what w_unit
                         w_value file line claim_fix)
                    :: !findings)
              | Some _ -> ())
            (registered_ops config ~units u))
      all_units;
    List.rev !findings
  end
