(** Configuration for the sb7-lint rules.

    The configuration is a plain value so that the test suite can point
    the same engine at fixture modules; {!default} describes this
    repository: the sync-free core lives in [Sb7_core__*], operation
    bodies are registered in [Sb7_core__Operation], and the lock-based
    runtimes declare their lock classes and ordering here. *)

(** Scope of rule R1 (runtime-bypass): compilation units whose mutable
    state must flow through the [Runtime] functor. *)
type r1 = {
  r1_prefixes : string list;  (** units matching any prefix are checked *)
  r1_exempt_units : string list;
      (** units excluded even when a prefix matches (e.g. the library
          wrapper alias module) *)
  r1_dls_prefixes : string list;
      (** units where any [Domain.DLS] identifier is reported
          ([raw-dls]) unless the unit is allowlisted; wider than
          [r1_prefixes] because per-domain state is a concern in the
          STM and runtime layers too, not just the sync-free core *)
  r1_dls_allowed_units : string list;
      (** units allowed to use [Domain.DLS] (sharded statistics, the
          chunked id allocator, per-domain transaction contexts) *)
}

(** Scope of rule R2 (irrevocable effects): effects are forbidden in
    every unit reachable from [r2_seeds] in the module-reference graph,
    restricted to units matching [r2_universe_prefixes]. *)
type r2 = {
  r2_seeds : string list;
  r2_universe_prefixes : string list;
}

(** Per-module lock discipline specification for rule R3.

    Lock classes are abstract names ([structure], [domains], ...). A
    direct [Rwlock.acquire*] call is classified by the head identifier
    of its lock argument via [r3_classes]; module-local helpers that
    acquire or release a whole class at once are declared in
    [r3_acquire_helpers] / [r3_release_helpers]. *)
type r3_spec = {
  r3_unit : string;  (** compilation unit this spec applies to *)
  r3_classes : (string * string) list;
      (** identifier (lock value or lock-producing function) -> class *)
  r3_acquire_helpers : (string * string) list;  (** function -> class *)
  r3_release_helpers : (string * string) list;  (** function -> class *)
  r3_order : string list;
      (** lock-order table: classes must be first-acquired in this
          order within any single function *)
  r3_deferred_acquires : string list;
      (** functions that acquire per-object locks and defer the release
          to a bulk-release function (dynamic 2PL) *)
  r3_bulk_release : string list;
      (** functions releasing everything acquired by deferred helpers;
          some function of the module must call one on both the normal
          and the exceptional path *)
  r3_must_restart : (string * string) list;
      (** (function, exception): the function must contain
          [raise <exception>] — no-wait acquisition discipline *)
  r3_forbid_blocking : bool;
      (** forbid blocking primitives ([Rwlock.acquire*], [Mutex.lock],
          [Condition.wait]) anywhere in the module *)
}

(** Scope of rule R4 (profile honesty): operations registered in
    [r4_registry_units] by one of [r4_profiled_builders] with no
    [~writes] argument are declared read-only; their run function must
    not reach a configured write identifier or index-mutator field
    through the value-reference graph of units matching
    [r4_universe_prefixes]. An empty [r4_registry_units] disables the
    rule. *)
type r4 = {
  r4_registry_units : string list;
  r4_ro_codes : string list;
      (** when non-empty, the set of operation codes to verify as
          read-only — the inferred pure-read set of the generated
          footprint table (sb7-lint feeds it
          [Sb7_core.Op_footprint.pure_read_codes]), replacing the
          no-[~writes] declaration heuristic: the rule then polices the
          generator's output rather than the human's claim *)
  r4_profiled_builders : string list;
      (** builder functions whose applications register a profiled
          operation; first positional string literal is the code, last
          positional identifier the run function *)
  r4_structural_builders : string list;
      (** builders whose operations are structural (never read-only) —
          recognised so they are skipped, not misparsed *)
  r4_universe_prefixes : string list;
  r4_write_idents : string list;
      (** fully-qualified identifiers that perform a transactional
          write (as printed by [Path.name], e.g. ["R.write"]) *)
  r4_write_fields : string list;
      (** record fields whose projection is an index mutation *)
}

(** Scope of rule R6 (tvar-escape): inside function literals passed to
    one of [r6_atomic_idents], a closure capturing atomic-scope
    bindings — or a transaction-local mutable value — must not be
    stored through a sink that outlives the block. A sink is
    [(identifier, value_arg, target_arg)]: the positional index of the
    stored value, and (for mutable-cell sinks) of the mutated target —
    a store into a target bound inside the same atomic scope dies with
    the transaction and is exempt; [None] marks tvar sinks, which
    always outlive. *)
type r6 = {
  r6_prefixes : string list;
  r6_atomic_idents : string list;
  r6_sinks : (string * int * int option) list;
}

(** Scope of rule R5 (obj-use): unsafe [Obj.*] primitives are forbidden
    in every unit matching [r5_prefixes] except at the sanctioned sites
    listed in [r5_allowed]. *)
type r5 = {
  r5_prefixes : string list;
  r5_allowed : (string * string option) list;
      (** (unit, binding): [None] sanctions the whole unit, [Some f]
          only the top-level binding [f] within it; every sanctioned
          site must be justified in DESIGN.md *)
}

(** Scope of rule R7 (domain-escape): units matching [r7_prefixes] are
    summarized into the escape graph; roots are every closure passed to
    [Domain.spawn] plus [r7_roots] — the cross-domain entry points that
    are only ever called through functor parameters (a runtime's
    [atomic]/[read]/[write]), which the value-reference graph cannot
    see. [(unit, None)] roots every binding of the unit. *)
type r7 = {
  r7_prefixes : string list;
  r7_roots : (string * string option) list;
  r7_confined_types : (string * string) list;
      (** type key -> justification: values of these types are
          per-domain contexts (transaction descriptors, per-worker
          stats); accesses through them are DLS-confined even when the
          value arrives as a parameter *)
  r7_tvar_types : (string * string) list;
      (** type key -> justification: the substrates' tvar records,
          whose mutable fields are guarded by their own versioned-lock
          commit protocol rather than a Mutex *)
  r7_allowed : (string * string option * string) list;
      (** (unit, binding, justification): sanctioned shared-mutable
          sites, binding-granular like the R5 Obj list; [None] covers
          the whole unit. Every entry must carry a written
          justification. *)
}

type t = {
  r1 : r1;
  r2 : r2;
  r3 : r3_spec list;
  r4 : r4;
  r5 : r5;
  r6 : r6;
  r7 : r7;
  strict_local : bool;
      (** when true, R1 also reports provably transaction-local mutable
          state (notices): useful to audit a module for full purity *)
}

let disabled_r4 =
  {
    r4_registry_units = [];
    r4_ro_codes = [];
    r4_profiled_builders = [];
    r4_structural_builders = [];
    r4_universe_prefixes = [];
    r4_write_idents = [];
    r4_write_fields = [];
  }

let spec_for t unit_name =
  List.find_opt (fun s -> s.r3_unit = unit_name) t.r3

let in_r1_scope t unit_name =
  List.exists (fun p -> String.starts_with ~prefix:p unit_name) t.r1.r1_prefixes
  && not (List.mem unit_name t.r1.r1_exempt_units)

let in_r1_dls_scope t unit_name =
  List.exists
    (fun p -> String.starts_with ~prefix:p unit_name)
    t.r1.r1_dls_prefixes
  && not (List.mem unit_name t.r1.r1_dls_allowed_units)

(** R5 applicability for a unit: [`Skip] (out of scope or sanctioned
    wholesale), or [`Check allowed] with the top-level bindings that may
    use [Obj.*] there. *)
let r5_scope t unit_name =
  if
    not
      (List.exists
         (fun p -> String.starts_with ~prefix:p unit_name)
         t.r5.r5_prefixes)
  then `Skip
  else if
    List.exists
      (fun (u, b) -> String.equal u unit_name && b = None)
      t.r5.r5_allowed
  then `Skip
  else
    `Check
      (List.filter_map
         (fun (u, b) -> if String.equal u unit_name then b else None)
         t.r5.r5_allowed)

let in_r6_scope t unit_name =
  List.exists
    (fun p -> String.starts_with ~prefix:p unit_name)
    t.r6.r6_prefixes

let in_r2_universe t unit_name =
  List.exists
    (fun p -> String.starts_with ~prefix:p unit_name)
    t.r2.r2_universe_prefixes

let in_r7_scope t unit_name =
  List.exists
    (fun p -> String.starts_with ~prefix:p unit_name)
    t.r7.r7_prefixes

(* --- Rule-family selection (--rules) --- *)

let known_rule_families = [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7" ]

(** Rule ids in [rules] that are not a known family, preserving order. *)
let unknown_rule_families rules =
  List.filter (fun r -> not (List.mem r known_rule_families)) rules

(** Restrict [t] to the given families by emptying the scopes of every
    other rule. An empty list means "run everything". *)
let narrow t = function
  | [] -> t
  | rules ->
    {
      t with
      r1 =
        (if List.mem "R1" rules then t.r1
         else { t.r1 with r1_prefixes = []; r1_dls_prefixes = [] });
      r2 =
        (if List.mem "R2" rules then t.r2 else { t.r2 with r2_seeds = [] });
      r3 = (if List.mem "R3" rules then t.r3 else []);
      r4 =
        (if List.mem "R4" rules then t.r4
         else { t.r4 with r4_registry_units = [] });
      r5 =
        (if List.mem "R5" rules then t.r5 else { t.r5 with r5_prefixes = [] });
      r6 =
        (if List.mem "R6" rules then t.r6 else { t.r6 with r6_prefixes = [] });
      r7 =
        (if List.mem "R7" rules then t.r7 else { t.r7 with r7_prefixes = [] });
    }

(** The repository configuration enforced by [dune build @lint]. *)
let default =
  {
    r1 =
      {
        r1_prefixes = [ "Sb7_core__" ];
        (* The wrapper module is dune-generated aliases only. *)
        r1_exempt_units = [ "Sb7_core" ];
        r1_dls_prefixes =
          [ "Sb7_core__"; "Sb7_stm__"; "Sb7_runtime__"; "Sb7_sanitize__" ];
        (* The blessed per-domain-state modules: sharded statistics and
           counters, the chunked tvar-id allocator, the STM / fine-lock
           per-domain transaction contexts, the sanitizer's event
           buffers and nesting-depth tracking, and the current-region
           bracket feeding the footprint replay. *)
        r1_dls_allowed_units =
          [
            "Sb7_stm__Stm_stats";
            "Sb7_stm__Sharded_counter";
            "Sb7_stm__Tvar_id";
            "Sb7_stm__Tl2";
            "Sb7_stm__Lsa";
            "Sb7_stm__Norec";
            "Sb7_stm__Etl";
            "Sb7_stm__Astm";
            "Sb7_runtime__Fine_runtime";
            "Sb7_runtime__Tournament_runtime";
            "Sb7_runtime__Region_ctx";
            "Sb7_sanitize__Trace";
            "Sb7_sanitize__Sanitize";
          ];
      };
    r2 =
      {
        (* Every benchmark operation body is registered in Operation;
           anything it reaches may run inside an abortable transaction. *)
        r2_seeds = [ "Sb7_core__Operation" ];
        r2_universe_prefixes = [ "Sb7_core__" ];
      };
    r3 =
      [
        {
          r3_unit = "Sb7_runtime__Medium_runtime";
          r3_classes =
            [ ("structure_lock", "structure"); ("lock_of_domain", "domains") ];
          r3_acquire_helpers = [ ("acquire_plan", "domains") ];
          r3_release_helpers = [ ("release_plan", "domains") ];
          (* Figure 5 of the paper: the structure lock is acquired
             before any domain lock, domain locks in canonical rank
             order (enforced dynamically by Op_profile.locking_plan). *)
          r3_order = [ "structure"; "domains" ];
          r3_deferred_acquires = [];
          r3_bulk_release = [];
          r3_must_restart = [];
          r3_forbid_blocking = false;
        };
        {
          r3_unit = "Sb7_runtime__Fine_runtime";
          r3_classes = [];
          r3_acquire_helpers = [];
          r3_release_helpers = [ ("release_plan", "domains") ];
          r3_order = [];
          (* Strict 2PL: locks are taken on first access and released
             in bulk at commit/abort by release_all. *)
          r3_deferred_acquires = [ "lock_for_read"; "lock_for_write" ];
          r3_bulk_release = [ "release_all" ];
          (* No-wait deadlock avoidance: a failed acquisition must
             restart the operation, never block. *)
          r3_must_restart =
            [ ("lock_for_read", "Restart"); ("lock_for_write", "Restart") ];
          r3_forbid_blocking = true;
        };
        {
          r3_unit = "Sb7_runtime__Coarse_runtime";
          (* Uses the exception-safe Rwlock.with_lock wrapper only. *)
          r3_classes = [ ("global", "global") ];
          r3_acquire_helpers = [];
          r3_release_helpers = [ ("release_plan", "domains") ];
          r3_order = [ "global" ];
          r3_deferred_acquires = [];
          r3_bulk_release = [];
          r3_must_restart = [];
          r3_forbid_blocking = false;
        };
      ];
    r4 =
      {
        (* All 45 operations register in Operation through these four
           builders; a missing ~writes makes the profile read-only and
           the runtimes dispatch it through the zero-log path. *)
        r4_registry_units = [ "Sb7_core__Operation" ];
        (* Empty = the declaration heuristic; bin/sb7_lint substitutes
           the generated table's pure-read set (see r4_ro_codes doc). *)
        r4_ro_codes = [];
        r4_profiled_builders =
          [ "long_traversal"; "short_traversal"; "short_operation" ];
        r4_structural_builders = [ "structure_mod" ];
        r4_universe_prefixes = [ "Sb7_core__" ];
        (* The sync-free core only ever writes through the runtime
           functor parameter, uniformly named R. *)
        r4_write_idents = [ "R.write" ];
        (* Index mutators on the first-class index record. *)
        r4_write_fields = [ "put"; "remove" ];
      };
    r5 =
      {
        (* Everything in the repository's own namespaces. *)
        r5_prefixes = [ "Sb7_" ];
        (* The sanctioned Obj sites, each documented in DESIGN.md §3
           ("Typed transaction logs"):
           Padded_atomic exists to defeat false sharing and is Obj
           throughout; the TL2/LSA/NOrec word-based stores need one
           cast per module to erase tvar payload types; and the
           structure-of-arrays transaction logs erase their entries
           into parallel [Obj.t] arrays through a fixed set of
           capture/restore helpers (one group per substrate, each a
           two-line adapter whose type annotation states the only
           shape it ever sees). *)
        r5_allowed =
          [
            ("Sb7_stm__Padded_atomic", None);
            ("Sb7_stm__Tl2", Some "cast_ref");
            ("Sb7_stm__Tl2", Some "undo_unset");
            ("Sb7_stm__Tl2", Some "undo_capture_slot");
            ("Sb7_stm__Tl2", Some "undo_capture_val");
            ("Sb7_stm__Tl2", Some "undo_restore");
            ("Sb7_stm__Lsa", Some "cast_ref");
            ("Sb7_stm__Lsa", Some "undo_unset");
            ("Sb7_stm__Lsa", Some "undo_capture_slot");
            ("Sb7_stm__Lsa", Some "undo_capture_val");
            ("Sb7_stm__Lsa", Some "undo_restore");
            ("Sb7_stm__Norec", Some "cast_ref");
            ("Sb7_stm__Norec", Some "read_unset");
            ("Sb7_stm__Norec", Some "read_capture_tv");
            ("Sb7_stm__Norec", Some "read_capture_val");
            ("Sb7_stm__Norec", Some "read_still_current");
            ("Sb7_stm__Etl", Some "undo_unset");
            ("Sb7_stm__Etl", Some "undo_capture_tv");
            ("Sb7_stm__Etl", Some "undo_capture_val");
            ("Sb7_stm__Etl", Some "undo_restore");
          ];
      };
    r6 =
      {
        r6_prefixes = [ "Sb7_" ];
        (* The harness wraps every operation body in R.atomic; the
           uniform read-only dispatch goes through atomic_ro. *)
        r6_atomic_idents = [ "R.atomic"; "R.atomic_ro" ];
        r6_sinks =
          [
            (* Writing to a tvar always outlives the attempt. *)
            ("R.write", 1, None);
            (* Mutable-cell stores escape only when the cell itself is
               defined outside the atomic scope. *)
            ("Stdlib.:=", 1, Some 0);
            ("Stdlib.Hashtbl.add", 2, Some 0);
            ("Stdlib.Hashtbl.replace", 2, Some 0);
            ("Stdlib.Queue.add", 0, Some 1);
            ("Stdlib.Queue.push", 0, Some 1);
            ("Stdlib.Stack.push", 0, Some 1);
          ];
      };
    r7 =
      {
        r7_prefixes = [ "Sb7_" ];
        (* Roots beyond the Domain.spawn closures the graph discovers
           itself. The benchmark workers call the runtime through the
           [R] functor parameter and the read-only dispatcher calls the
           substrate through its [Stm] parameter — calls through
           functor parameters have no resolvable path, so the
           cross-domain entry points they target are rooted here
           explicitly. Whole-unit roots cover the lock runtimes and
           wrappers (every binding of those units runs on worker
           domains); the substrates only need [atomic]/[atomic_ro]
           rooted — the rest of their API is re-exported by the
           wrapper units and reached through the value graph. *)
        r7_roots =
          [
            ("Sb7_runtime__Seq_runtime", None);
            ("Sb7_runtime__Coarse_runtime", None);
            ("Sb7_runtime__Medium_runtime", None);
            ("Sb7_runtime__Fine_runtime", None);
            ("Sb7_runtime__Tl2_runtime", None);
            ("Sb7_runtime__Lsa_runtime", None);
            ("Sb7_runtime__Norec_runtime", None);
            ("Sb7_runtime__Etl_runtime", None);
            ("Sb7_runtime__Astm_runtime", None);
            ("Sb7_runtime__Tournament_runtime", None);
            ("Sb7_runtime__Ro_dispatch", None);
            ("Sb7_stm__Tl2", Some "atomic");
            ("Sb7_stm__Tl2", Some "atomic_ro");
            ("Sb7_stm__Lsa", Some "atomic");
            ("Sb7_stm__Lsa", Some "atomic_ro");
            ("Sb7_stm__Norec", Some "atomic");
            ("Sb7_stm__Norec", Some "atomic_ro");
            ("Sb7_stm__Etl", Some "atomic");
            ("Sb7_stm__Etl", Some "atomic_ro");
            ("Sb7_stm__Astm", Some "atomic");
            ("Sb7_stm__Astm", Some "atomic_ro");
          ];
        (* Per-domain context records: every value of these types is
           either allocated fresh per transaction/operation or lives in
           Domain.DLS, so a mutation reachable from a domain root is
           still single-domain. The justification strings double as the
           audit trail the allowlist test asserts non-empty. *)
        r7_confined_types =
          [
            ( "Sb7_stm__Tl2.tx",
              "transaction descriptor: DLS-pooled, owned by one domain \
               for the lifetime of each transaction" );
            ( "Sb7_stm__Lsa.tx",
              "transaction descriptor: DLS-pooled, owned by one domain \
               for the lifetime of each transaction" );
            ( "Sb7_stm__Norec.tx",
              "transaction descriptor: DLS-pooled, owned by one domain \
               for the lifetime of each transaction" );
            ( "Sb7_stm__Etl.tx",
              "transaction descriptor: DLS-pooled, owned by one domain \
               for the lifetime of each transaction" );
            ( "Sb7_stm__Astm.txd",
              "transaction descriptor: DLS-pooled, owned by one domain \
               for the lifetime of each transaction" );
            ( "Sb7_stm__Tl2.domain_state",
              "Domain.DLS value: per-domain by construction" );
            ( "Sb7_stm__Lsa.domain_state",
              "Domain.DLS value: per-domain by construction" );
            ( "Sb7_stm__Norec.domain_state",
              "Domain.DLS value: per-domain by construction" );
            ( "Sb7_stm__Etl.domain_state",
              "Domain.DLS value: per-domain by construction" );
            ( "Sb7_stm__Astm.domain_state",
              "Domain.DLS value: per-domain by construction" );
            ( "wentry.W",
              "write-set entry (inline record, all substrates): owned \
               by the enclosing transaction descriptor; .locked and \
               .content transitions happen with the entry's tvar \
               version-lock held" );
            ( "Sb7_stm__Stm_stats.shard",
              "padded per-domain statistics shard: only the owning \
               domain writes it; readers aggregate quiescently" );
            ( "Sb7_harness__Stats.op_stat",
              "per-worker statistics record: each worker owns its \
               slice; the harness merges after join" );
            ( "Sb7_stm__Backoff.t",
              "per-transaction backoff state threaded through the \
               retry loop of a single domain" );
            ( "Sb7_runtime__Fine_runtime.op_ctx",
              "per-operation lock context from Domain.DLS: held-lock \
               table and undo log are single-domain" );
            ( "Sb7_runtime__Tournament_runtime.dstate",
              "per-domain epoch counter registered in DLS: only the \
               owning domain increments it; the decider drains via the \
               atomic commit pool" );
            ( "Sb7_core__Sb_random.t",
              "splittable PRNG state: explicitly threaded one instance \
               per worker, never shared" );
          ];
        (* tvar internals: mutated only under the substrate's own
           concurrency-control protocol (version-locks at commit,
           per-tvar read/write locks), which is exactly the machinery
           the STM correctness argument — and the sanitizer's dynamic
           checks — cover. *)
        r7_tvar_types =
          [
            ( "Sb7_stm__Tl2.tvar",
              "content written only at commit with the tvar's \
               version-lock held" );
            ( "Sb7_stm__Lsa.tvar",
              "version-list head CAS-managed; content written under \
               the version-lock" );
            ( "Sb7_stm__Norec.tvar",
              "content written only inside the commit critical \
               section under the global sequence lock" );
            ( "Sb7_stm__Etl.tvar",
              "content written encounter-time with the tvar's \
               write-lock held" );
            ( "Sb7_runtime__Fine_runtime.tvar",
              "content written with the per-tvar write lock held \
               (lock_for_write precedes every write)" );
          ];
        r7_allowed =
          [
            ( "Sb7_harness__Race_probe",
              None,
              "live seeded race for the static/dynamic cross-check: \
               sb7-sanitize domain-race strips this waiver, demands \
               the R7 finding reappear, then exhibits the lost \
               updates dynamically" );
            ( "Sb7_runtime__Seq_runtime",
              Some "write",
              "single-domain baseline runtime: documented unsafe under \
               parallelism and never selected by multi-domain runs" );
            ( "Sb7_runtime__Coarse_runtime",
              Some "write",
              "tvar write path of the coarse runtime: callers hold the \
               global rwlock in write mode, taken by [atomic]" );
            ( "Sb7_runtime__Medium_runtime",
              Some "write",
              "tvar write path of the medium runtime: callers hold the \
               locking plan's write locks acquired by [atomic]; R3 \
               audits the pairing and the sanitizer checks locksets \
               dynamically" );
            ( "Sb7_runtime__Medium_runtime",
              Some "drop_first_write_lock",
              "seeded-bug fixture (Unsafe.dropping): armed quiescently \
               by the sanitizer harness, racy by design when armed" );
            ( "Sb7_runtime__Medium_runtime",
              Some "reset",
              "seeded-bug fixture (Unsafe.dropping): disarmed \
               quiescently between runs" );
            ( "Sb7_runtime__Medium_runtime",
              Some "effective_plan",
              "reads the seeded-bug fixture flag; exact flag value \
               only matters while the sanitizer has armed it" );
            ( "Sb7_runtime__Fine_runtime",
              Some "lock_for_write",
              "flips the Held_read cell in the per-operation ctx.held \
               table after winning the upgrade CAS on the tvar's lock \
               word" );
            ( "Sb7_runtime__Tournament_runtime",
              Some "try_decide",
              "decider-only state (prev_snap/occupancy/policy_state): \
               mutated only after winning the [deciding] CAS; the \
               exclusion protocol is an atomic flag lock inference \
               cannot see" );
            ( "Sb7_runtime__Tournament_runtime",
              Some "switch_to",
              "called only from the [deciding] CAS winner during the \
               quiesce fence; epoch baseline reset is single-writer" );
            ( "Sb7_runtime__Tournament_runtime",
              Some "reset_stats",
              "reset contract: runs quiescent between runs, after \
               workers have joined" );
            ( "Sb7_runtime__Tournament_runtime",
              Some "stats",
              "reads the champion-occupancy counters quiescently after \
               a run; staleness is harmless for reporting" );
            ( "Sb7_stm__Tl2",
              Some "undo_restore",
              "restores a tvar content slot from the per-transaction \
               undo log during rollback; the slot was captured while \
               the entry's version-lock protocol owned it" );
            ( "Sb7_stm__Lsa",
              Some "undo_restore",
              "restores a tvar content slot from the per-transaction \
               undo log during rollback; the slot was captured while \
               the entry's version-lock protocol owned it" );
            ( "Sb7_stm__Tl2",
              Some "write",
              "updates the transaction-private redo slot (w.value ref) \
               of a write-set entry; published to the tvar only at \
               commit under the version-lock" );
            ( "Sb7_stm__Lsa",
              Some "write",
              "updates the transaction-private redo slot (w.value ref) \
               of a write-set entry; published to the tvar only at \
               commit under the version-lock" );
            ( "Sb7_stm__Norec",
              Some "write",
              "updates the transaction-private redo slot (w.value ref) \
               of a write-set entry; published only inside the commit \
               critical section" );
          ];
      };
    strict_local = false;
  }
