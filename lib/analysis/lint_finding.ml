(** A single diagnostic produced by one of the sb7-lint rules.

    Findings are keyed by the short rule id that suppression comments
    use ([raw-mut], [raw-mut-global], [irrevocable], [lock-order],
    [lock-release], [lock-wait], [lock-table]). *)

type severity =
  | Error  (** fails the build when unsuppressed *)
  | Notice  (** informational (e.g. [--strict-local] mode) *)

(** A step of a multi-location finding (an R7 escape path, the earlier
    acquisition an R3 lock-order violation conflicts with): a labelled
    secondary source position, rendered as a SARIF [relatedLocation]. *)
type related = {
  rel_message : string;
  rel_file : string;
  rel_line : int;
  rel_col : int;
}

type t = {
  rule : string;  (** short rule id, as used by suppression comments *)
  file : string;  (** source path as recorded in the .cmt *)
  line : int;
  col : int;
  unit_name : string;  (** compilation unit the finding belongs to *)
  message : string;
  severity : severity;
  related : related list;  (** secondary locations, in step order *)
}

let related_of_loc msg (loc : Location.t) =
  let pos = loc.Location.loc_start in
  {
    rel_message = msg;
    rel_file = pos.Lexing.pos_fname;
    rel_line = pos.Lexing.pos_lnum;
    rel_col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
  }

let make ?(severity = Error) ?(related = []) ~rule ~loc ~unit_name message =
  let pos = loc.Location.loc_start in
  {
    rule;
    file = pos.Lexing.pos_fname;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    unit_name;
    message;
    severity;
    related;
  }

(** Finding with no meaningful source position (module-level checks). *)
let module_level ?(severity = Error) ~rule ~file ~unit_name message =
  { rule; file; line = 0; col = 0; unit_name; message; severity; related = [] }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
    | c -> c)
  | c -> c

let to_string t =
  Printf.sprintf "%s:%d:%d: [%s] %s" t.file t.line t.col t.rule t.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let related =
    match t.related with
    | [] -> ""
    | rels ->
      Printf.sprintf {|,"related":[%s]|}
        (String.concat ","
           (List.map
              (fun r ->
                Printf.sprintf
                  {|{"message":"%s","file":"%s","line":%d,"col":%d}|}
                  (json_escape r.rel_message) (json_escape r.rel_file)
                  r.rel_line r.rel_col)
              rels))
  in
  Printf.sprintf
    {|{"rule":"%s","file":"%s","line":%d,"col":%d,"unit":"%s","severity":"%s","message":"%s"%s}|}
    (json_escape t.rule) (json_escape t.file) t.line t.col
    (json_escape t.unit_name)
    (match t.severity with Error -> "error" | Notice -> "notice")
    (json_escape t.message) related
