(** R1 — runtime-bypass.

    In the sync-free core, every piece of shared mutable state must be
    a [Runtime.tvar] accessed through [R.read]/[R.write]; the benchmark
    claim that concurrency control is woven in separately is only true
    if nothing mutates behind the runtime's back.

    The rule distinguishes three tiers:

    - {b module-level mutable state} (a [ref], [Hashtbl.t], array, ...
      created by a structure-level binding — including bindings in a
      functor body, which are shared by every operation using that
      instantiation) is always an error ([raw-mut-global]);
    - {b mutation or dereference of non-local mutable values}
      (function parameters, values from other modules) is an error
      ([raw-mut]) unless suppressed: the analysis cannot prove the
      target is transaction-local;
    - {b locally created mutable state} ([let visited = Hashtbl.create
      64 in ...]) is provably transaction-local — each execution (and
      each retry of an aborted transaction) allocates a fresh one — and
      is allowed. With [strict_local] these sites are still reported as
      notices, which is how the fully-pure modules are audited.

    [Atomic] is forbidden outright in R1 scope: atomics exist to share
    state across threads, which is precisely what the core must not do
    on its own. *)

open Typedtree

(* Functions creating fresh, unshared mutable values: binding their
   direct application result registers the bound name as
   transaction-local. *)
let creators =
  [
    "Stdlib.ref";
    "Stdlib.Array.make";
    "Stdlib.Array.create_float";
    "Stdlib.Array.init";
    "Stdlib.Array.copy";
    "Stdlib.Array.sub";
    "Stdlib.Array.append";
    "Stdlib.Array.concat";
    "Stdlib.Array.of_list";
    "Stdlib.Array.of_seq";
    "Stdlib.Array.map";
    "Stdlib.Array.mapi";
    "Stdlib.Array.make_matrix";
    "Stdlib.Bytes.create";
    "Stdlib.Bytes.make";
    "Stdlib.Bytes.init";
    "Stdlib.Bytes.copy";
    "Stdlib.Bytes.sub";
    "Stdlib.Bytes.of_string";
    "Stdlib.Hashtbl.create";
    "Stdlib.Hashtbl.copy";
    "Stdlib.Hashtbl.of_seq";
    "Stdlib.Buffer.create";
    "Stdlib.Queue.create";
    "Stdlib.Queue.copy";
    "Stdlib.Queue.of_seq";
    "Stdlib.Stack.create";
    "Stdlib.Stack.copy";
  ]

(* Mutating primitives, with the index of the argument that designates
   the mutated value. *)
let mutators =
  [
    ("Stdlib.:=", 0);
    ("Stdlib.incr", 0);
    ("Stdlib.decr", 0);
    ("Stdlib.Array.set", 0);
    ("Stdlib.Array.unsafe_set", 0);
    ("Stdlib.Array.fill", 0);
    ("Stdlib.Array.blit", 2);
    ("Stdlib.Array.sort", 1);
    ("Stdlib.Array.fast_sort", 1);
    ("Stdlib.Array.stable_sort", 1);
    ("Stdlib.Bytes.set", 0);
    ("Stdlib.Bytes.unsafe_set", 0);
    ("Stdlib.Bytes.fill", 0);
    ("Stdlib.Bytes.blit", 2);
    ("Stdlib.Bytes.blit_string", 2);
    ("Stdlib.Hashtbl.add", 0);
    ("Stdlib.Hashtbl.replace", 0);
    ("Stdlib.Hashtbl.remove", 0);
    ("Stdlib.Hashtbl.reset", 0);
    ("Stdlib.Hashtbl.clear", 0);
    ("Stdlib.Hashtbl.filter_map_inplace", 1);
    ("Stdlib.Buffer.add_string", 0);
    ("Stdlib.Buffer.add_char", 0);
    ("Stdlib.Buffer.add_bytes", 0);
    ("Stdlib.Buffer.add_substring", 0);
    ("Stdlib.Buffer.add_buffer", 0);
    ("Stdlib.Buffer.clear", 0);
    ("Stdlib.Buffer.reset", 0);
    ("Stdlib.Buffer.truncate", 0);
    ("Stdlib.Queue.add", 1);
    ("Stdlib.Queue.push", 1);
    ("Stdlib.Queue.pop", 0);
    ("Stdlib.Queue.take", 0);
    ("Stdlib.Queue.clear", 0);
    ("Stdlib.Stack.push", 1);
    ("Stdlib.Stack.pop", 0);
    ("Stdlib.Stack.clear", 0);
  ]

let path_name p = Path.name p

let is_creator e =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
    List.mem (path_name p) creators
  | Texp_array _ -> true
  | Texp_record _ -> true (* a fresh record; mutable fields start local *)
  | _ -> false

(* The ident a mutation targets, when the target is a plain variable. *)
let target_ident e =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Some id
  | _ -> None

let nth_positional args n =
  let rec go i = function
    | [] -> None
    | (Asttypes.Nolabel, Some e) :: rest ->
      if i = n then Some e else go (i + 1) rest
    | _ :: rest -> go i rest
  in
  go 0 args

(* Register a transaction-local binding (pass 1 of the rule): binding
   the direct result of a creator application. Ident stamps are unique
   within a compilation unit, so one flat set per unit suffices — the
   shared engine walk collects it once and feeds it back to
   {!expr_hook}. *)
let register_local locals vb =
  match (vb.vb_pat.pat_desc, is_creator vb.vb_expr) with
  | Tpat_var (id, _), true -> Hashtbl.replace locals id ()
  | _ -> ()

(* Pass 2, per expression: mutations, dereferences, Atomic. *)
let expr_hook ~locals ~strict_local
    ~(add :
        ?severity:Lint_finding.severity ->
        rule:string ->
        loc:Location.t ->
        string ->
        unit) e =
  let is_local e =
    match target_ident e with
    | Some id -> Hashtbl.mem locals id
    | None -> false
  in
  match e.exp_desc with
    | Texp_setfield (target, _, label, _) ->
      if is_local target then begin
        if strict_local then
          add ~severity:Lint_finding.Notice ~rule:"raw-mut" ~loc:e.exp_loc
            (Printf.sprintf
               "mutation of local mutable field %S (strict-local mode)"
               label.Types.lbl_name)
      end
      else
        add ~rule:"raw-mut" ~loc:e.exp_loc
          (Printf.sprintf
             "mutable field %S set outside the runtime: shared state must \
              flow through Runtime.tvar (R.write)"
             label.Types.lbl_name)
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
      let name = path_name p in
      if String.starts_with ~prefix:"Stdlib.Atomic." name then
        add ~rule:"raw-mut" ~loc:e.exp_loc
          (Printf.sprintf
             "%s: Atomic is cross-thread shared state by construction and \
              is forbidden in the sync-free core"
             name)
      else if name = "Stdlib.!" then begin
        match nth_positional args 0 with
        | Some target when not (is_local target) ->
          add ~rule:"raw-mut" ~loc:e.exp_loc
            "dereference (!) of a ref the analysis cannot prove \
             transaction-local: shared reads must use R.read"
        | Some _ when strict_local ->
          add ~severity:Lint_finding.Notice ~rule:"raw-mut" ~loc:e.exp_loc
            "dereference of local ref (strict-local mode)"
        | _ -> ()
      end
      else
        match List.assoc_opt name mutators with
        | None -> ()
        | Some idx -> (
          match nth_positional args idx with
          | Some target when not (is_local target) ->
            add ~rule:"raw-mut" ~loc:e.exp_loc
              (Printf.sprintf
                 "%s on a value the analysis cannot prove \
                  transaction-local: shared state must flow through \
                  Runtime.tvar (R.write)"
                 name)
          | Some _ when strict_local ->
            add ~severity:Lint_finding.Notice ~rule:"raw-mut" ~loc:e.exp_loc
              (Printf.sprintf "%s on local mutable value (strict-local mode)"
                 name)
          | _ -> ()))
    | _ -> ()

(* Structure-level bindings that allocate mutable state create values
   shared by every caller of the module (or functor instance). *)
let item_hook
    ~(add :
        ?severity:Lint_finding.severity ->
        rule:string ->
        loc:Location.t ->
        string ->
        unit) item =
  match item.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          let mutable_at_module_level =
            match vb.vb_expr.exp_desc with
            | Texp_array (_ :: _) -> true
            | Texp_array [] -> false (* [||] is a shared empty, harmless *)
            | Texp_record { fields; _ } ->
              Array.exists
                (fun (label, _) -> label.Types.lbl_mut = Asttypes.Mutable)
                fields
            | _ -> is_creator vb.vb_expr
          in
          if mutable_at_module_level then
            add ~rule:"raw-mut-global" ~loc:vb.vb_pat.pat_loc
              "module-level mutable state: this cell is shared by every \
               thread and bypasses the runtime; use Runtime.tvar (R.make) \
               instead")
        vbs
    | _ -> ()

let check (u : Cmt_unit.t) ~strict_local =
  let findings = ref [] in
  let unit_name = u.Cmt_unit.name in
  let add ?severity ~rule ~loc msg =
    findings := Lint_finding.make ?severity ~rule ~loc ~unit_name msg :: !findings
  in
  let locals = Hashtbl.create 64 in
  let pass1 =
    {
      Tast_iterator.default_iterator with
      value_binding =
        (fun sub vb ->
          register_local locals vb;
          Tast_iterator.default_iterator.value_binding sub vb);
    }
  in
  pass1.structure pass1 u.Cmt_unit.structure;
  let pass2 =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          expr_hook ~locals ~strict_local ~add e;
          Tast_iterator.default_iterator.expr sub e);
      structure_item =
        (fun sub item ->
          item_hook ~add item;
          Tast_iterator.default_iterator.structure_item sub item);
    }
  in
  pass2.structure pass2 u.Cmt_unit.structure;
  List.rev !findings

(* Domain-local storage audit ([raw-dls], run over a wider scope than
   plain R1 — see Lint_config.r1_dls_prefixes): [Domain.DLS] is shared
   mutable state with per-domain visibility, legitimate only for the
   blessed sharded-statistics / id-allocator / per-domain-context
   modules. Any other unit reaching for it must be added to the
   allowlist deliberately, so new cross-domain state never slips in as
   "just a DLS key". Every [Stdlib.Domain.DLS.*] identifier occurrence
   is a finding, [new_key] included: the key creation site is where the
   reviewer decides the state is legitimately per-domain. *)
let dls_hook ~unit_name ~emit e =
  match e.exp_desc with
  | Texp_ident (p, _, _) ->
    let name = path_name p in
    if String.starts_with ~prefix:"Stdlib.Domain.DLS." name then
      emit
        (Lint_finding.make ~rule:"raw-dls" ~loc:e.exp_loc ~unit_name
           (Printf.sprintf
              "%s: Domain.DLS is per-domain shared state; only the \
               allowlisted sharding modules may use it (see \
               Lint_config.r1_dls_allowed_units)"
              name))
  | _ -> ()

let check_dls (u : Cmt_unit.t) =
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  let pass =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          dls_hook ~unit_name:u.Cmt_unit.name ~emit e;
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  pass.structure pass u.Cmt_unit.structure;
  List.rev !findings
