(** Does a match-case pattern bind the exceptional continuation?
    Handles [| exception e ->] and or-patterns combining values with
    exceptions. Isolated here because computation patterns are a GADT
    in the typedtree. *)

open Typedtree

let rec has_exception_pattern : type k. k general_pattern -> bool =
 fun pat ->
  match pat.pat_desc with
  | Tpat_exception _ -> true
  | Tpat_or (a, b, _) -> has_exception_pattern a || has_exception_pattern b
  | Tpat_alias (p, _, _) -> has_exception_pattern p
  | Tpat_value v -> has_exception_pattern (v :> value general_pattern)
  | _ -> false
