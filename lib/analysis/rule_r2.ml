(** R2 — irrevocable effects.

    An STM runtime may abort and re-execute any operation body, so code
    reachable from the operation registry must be revocable: no channel
    I/O, no process/thread control, no blocking synchronization, no
    global [Random] state (retries would observe different draws —
    [Sb_random] threads its state explicitly and is fine). Pure string
    formatting ([Printf.sprintf], [Printf.ksprintf], [Format.asprintf])
    is allowed.

    Reachability is computed at module granularity by {!Mod_graph} from
    the configured seed units; the universe is restricted so that the
    runtimes themselves (which legitimately use locks and domains) are
    not in scope. *)

open Typedtree

(* Forbidden value prefixes, with a short reason used in the message. *)
let banned =
  [
    ("Stdlib.Printf.printf", "writes to stdout");
    ("Stdlib.Printf.eprintf", "writes to stderr");
    ("Stdlib.Printf.fprintf", "writes to a channel");
    ("Stdlib.Printf.kfprintf", "writes to a channel");
    ("Stdlib.Format.printf", "writes to stdout");
    ("Stdlib.Format.eprintf", "writes to stderr");
    ("Stdlib.Format.fprintf", "writes to a formatter/channel");
    ("Stdlib.Format.kfprintf", "writes to a formatter/channel");
    ("Stdlib.Format.std_formatter", "stdout formatter");
    ("Stdlib.Format.err_formatter", "stderr formatter");
    ("Stdlib.Format.print_", "writes to stdout");
    ("Stdlib.print_", "writes to stdout");
    ("Stdlib.prerr_", "writes to stderr");
    ("Stdlib.output", "writes to a channel");
    ("Stdlib.input", "reads from a channel");
    ("Stdlib.really_input", "reads from a channel");
    ("Stdlib.read_line", "reads from stdin");
    ("Stdlib.open_in", "opens a file");
    ("Stdlib.open_out", "opens a file");
    ("Stdlib.close_in", "closes a channel");
    ("Stdlib.close_out", "closes a channel");
    ("Stdlib.flush", "flushes a channel");
    ("Stdlib.seek_in", "file positioning");
    ("Stdlib.seek_out", "file positioning");
    ("Stdlib.stdout", "channel handle");
    ("Stdlib.stderr", "channel handle");
    ("Stdlib.stdin", "channel handle");
    ("Stdlib.exit", "terminates the process");
    ("Stdlib.at_exit", "registers irrevocable state");
    ("Stdlib.Sys.command", "runs a process");
    ("Stdlib.Sys.remove", "filesystem mutation");
    ("Stdlib.Sys.rename", "filesystem mutation");
    ("Stdlib.Random.", "global PRNG state: retries would diverge");
    ("Stdlib.Domain.spawn", "spawns a domain");
    ("Stdlib.Mutex.", "blocking synchronization");
    ("Stdlib.Condition.", "blocking synchronization");
    ("Stdlib.Semaphore.", "blocking synchronization");
    ("Unix.", "system call");
    ("Thread.", "thread control");
  ]

let classify name =
  List.find_opt (fun (prefix, _) -> String.starts_with ~prefix name) banned

let expr_hook ~unit_name ~emit e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
    let name = Path.name p in
    match classify name with
    | Some (_, reason) ->
      emit
        (Lint_finding.make ~rule:"irrevocable" ~loc:e.exp_loc ~unit_name
           (Printf.sprintf
              "%s (%s) is irrevocable but reachable from operation bodies \
               that the STM runtimes may abort and retry"
              name reason))
    | None -> ())
  | _ -> ()

let check (u : Cmt_unit.t) =
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          expr_hook ~unit_name:u.Cmt_unit.name ~emit e;
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  iter.structure iter u.Cmt_unit.structure;
  List.rev !findings
