(** Loading dune-generated [.cmt] files into the shape the rules
    consume: the typed AST plus enough naming context to resolve
    references to sibling compilation units behind the library wrapper
    module (dune compiles [lib/core/text.ml] as [Sb7_core__Text] and
    references to it appear as [Sb7_core.Text.f]). *)

type t = {
  name : string;  (** compilation unit name, e.g. [Sb7_core__Text] *)
  source : string option;  (** source path as recorded by the compiler *)
  structure : Typedtree.structure;
}

let load path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | cmt -> (
    match cmt.Cmt_format.cmt_annots with
    | Cmt_format.Implementation structure ->
      Some
        {
          name = cmt.Cmt_format.cmt_modname;
          source = cmt.Cmt_format.cmt_sourcefile;
          structure;
        }
    | _ -> None)

(** Recursively collect [*.cmt] files under [paths] (files are taken
    as-is), skipping duplicate unit names (byte/native variants). *)
let scan paths =
  let files = ref [] in
  let rec walk p =
    if Sys.is_directory p then
      Array.iter (fun entry -> walk (Filename.concat p entry)) (Sys.readdir p)
    else if Filename.check_suffix p ".cmt" then files := p :: !files
  in
  List.iter
    (fun p -> if Sys.file_exists p then walk p)
    paths;
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun path ->
      match load path with
      | Some u when not (Hashtbl.mem seen u.name) ->
        Hashtbl.add seen u.name ();
        Some u
      | _ -> None)
    (List.sort String.compare !files)

(** [resolve_ref units path] maps a typedtree [Path.t] to the name of
    the compilation unit it refers to, if it refers to one of [units]
    (a set of unit names). Handles both direct references
    ([Sb7_core__Text.f]) and references through a dune wrapper alias
    module ([Sb7_core.Text.f] -> [Sb7_core__Text]). *)
let resolve_ref ~units path =
  let head = Path.head path in
  if not (Ident.persistent head) then None
  else
    let head_name = Ident.name head in
    let components =
      (* Path.flatten is not available for all shapes; walk manually. *)
      let rec parts acc = function
        | Path.Pident id -> Ident.name id :: acc
        | Path.Pdot (p, s) -> parts (s :: acc) p
        | Path.Papply (p, _) -> parts acc p
        | Path.Pextra_ty (p, _) -> parts acc p
      in
      parts [] path
    in
    match components with
    | _ :: second :: _
      when Hashtbl.mem units (head_name ^ "__" ^ second) ->
      Some (head_name ^ "__" ^ second)
    | _ -> if Hashtbl.mem units head_name then Some head_name else None
