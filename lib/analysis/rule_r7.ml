(** R7 — domain-escape.

    Eraser for the typed AST: every mutable location reachable from a
    domain root (a closure passed to [Domain.spawn], or a configured
    cross-domain entry point such as a runtime's [atomic]) is shared
    state, and must be classifiable against the guard lattice:

    - {b Atomic}: [Atomic.*] operations, safe by construction (never
      even collected as accesses);
    - {b tvar-managed}: accesses whose target type is a configured
      tvar type — the substrate's own versioned-lock protocol guards
      them (that protocol is what R1–R6 and the sanitizer audit);
    - {b DLS-confined}: targets bound to a [Domain.DLS.get] result, or
      whose type is a configured per-domain context type (transaction
      descriptors, per-worker stats);
    - {b lock-guarded}: at least one Mutex/Rwlock (or declared R3
      helper class) is held at the access site;
    - {b pre-spawn-frozen}: a read of a module-level cell that no
      domain-reachable code writes — every write happens in
      initialization code that runs before the spawns, so the spawn
      happens-before edge publishes it.

    Anything else is a [domain-escape] error carrying the full escape
    path (spawn root → reference chain → access site) as related
    locations. Deliberate benign cases get binding-granular
    {!Lint_config.r7_allowed} entries, each with a written
    justification — the R5 Obj-allowlist policy applied to races. *)

let rule = "domain-escape"

type root_reason = Spawn | Configured

let target_desc (a : Escape_graph.access) =
  match a.Escape_graph.a_target with
  | Escape_graph.Global (u, n) -> Printf.sprintf "%s.%s" u n
  | Escape_graph.Captured n -> Printf.sprintf "captured local %S" n
  | Escape_graph.Opaque d -> (
    match a.Escape_graph.a_type with
    | Some ty -> Printf.sprintf "%s (type %s)" d ty
    | None -> d)

let matches_type keyed = function
  | None -> false
  | Some ty -> List.mem_assoc ty keyed

(* An allowlist entry (unit, binding, _) covers the binding and the
   spawn pseudo-bindings rooted in it. *)
let allowlisted (cfg : Lint_config.r7) ~unit_name ~binding =
  List.exists
    (fun (u, b, _) ->
      String.equal u unit_name
      &&
      match b with
      | None -> true
      | Some b ->
        String.equal b binding
        || String.starts_with ~prefix:(b ^ "@spawn:") binding)
    cfg.Lint_config.r7_allowed

(* [summaries] is the engine's shared escape graph; it may cover more
   units than R7's scope (the R4 universe shares it), so accesses are
   only reported for units satisfying [in_scope] — the reference BFS
   still crosses every summarized unit. *)
let check (cfg : Lint_config.r7) ~in_scope
    (summaries : (string, Escape_graph.summary) Hashtbl.t) =
  let binding_of u b =
    match Hashtbl.find_opt summaries u with
    | None -> None
    | Some s -> Hashtbl.find_opt s.Escape_graph.s_bindings b
  in
  (* Roots: every spawn closure, plus the configured entry points that
     run on worker domains but are only called through functor
     parameters (invisible to the value graph). *)
  let parent :
      (string * string, (string * string) option * root_reason) Hashtbl.t =
    Hashtbl.create 256
  in
  let q = Queue.create () in
  let add_root u b reason =
    if (not (Hashtbl.mem parent (u, b))) && binding_of u b <> None then begin
      Hashtbl.add parent (u, b) (None, reason);
      Queue.add (u, b) q
    end
  in
  Hashtbl.iter
    (fun uname s ->
      List.iter
        (fun k -> add_root uname k Spawn)
        s.Escape_graph.s_spawn_roots)
    summaries;
  List.iter
    (fun (u, b) ->
      match b with
      | Some b -> add_root u b Configured
      | None -> (
        match Hashtbl.find_opt summaries u with
        | None -> ()
        | Some s ->
          Hashtbl.iter
            (fun k _ -> add_root u k Configured)
            s.Escape_graph.s_bindings))
    cfg.Lint_config.r7_roots;
  while not (Queue.is_empty q) do
    let u, b = Queue.pop q in
    match binding_of u b with
    | None -> ()
    | Some bd ->
      List.iter
        (fun (u', b') ->
          if binding_of u' b' <> None && not (Hashtbl.mem parent (u', b'))
          then begin
            Hashtbl.add parent (u', b') (Some (u, b), Spawn);
            Queue.add (u', b') q
          end)
        (List.rev bd.Escape_graph.b_refs)
  done;
  (* Accesses the spawned domains can perform — plus post-spawn writes,
     which race a spawned domain from the spawning body itself. *)
  let considered = ref [] in
  Hashtbl.iter
    (fun _ s ->
      if in_scope s.Escape_graph.s_unit then
      Hashtbl.iter
        (fun bname (bd : Escape_graph.binding) ->
          let reachable = Hashtbl.mem parent (s.Escape_graph.s_unit, bname) in
          List.iter
            (fun (a : Escape_graph.access) ->
              if reachable || a.Escape_graph.a_post_spawn then
                considered := (bd, a) :: !considered)
            bd.Escape_graph.b_accesses)
        s.Escape_graph.s_bindings)
    summaries;
  (* Module-level cells with a domain-era write: their readers are not
     pre-spawn-frozen. Allowlisted writers don't disqualify — their
     justification covers the publication story. *)
  let hot_writes = Hashtbl.create 64 in
  List.iter
    (fun ((bd : Escape_graph.binding), (a : Escape_graph.access)) ->
      match (a.Escape_graph.a_kind, a.Escape_graph.a_target) with
      | Escape_graph.Write, Escape_graph.Global (u, n) ->
        if
          not
            (allowlisted cfg ~unit_name:bd.Escape_graph.b_unit
               ~binding:bd.Escape_graph.b_name)
        then Hashtbl.replace hot_writes (u, n) ()
      | _ -> ())
    !considered;
  let chain_to_root u b =
    let rec go acc u b =
      match Hashtbl.find_opt parent (u, b) with
      | None -> acc
      | Some (None, reason) -> ((u, b), reason) :: acc
      | Some (Some (pu, pb), _) -> go (((u, b), Spawn) :: acc) pu pb
    in
    go [] u b
  in
  let findings = ref [] in
  let report (bd : Escape_graph.binding) (a : Escape_graph.access) =
    let u = bd.Escape_graph.b_unit in
    let desc = target_desc a in
    let kind_str =
      match a.Escape_graph.a_kind with
      | Escape_graph.Read -> "read"
      | Escape_graph.Write -> "write"
    in
    let related =
      if a.Escape_graph.a_post_spawn then
        match a.Escape_graph.a_spawn_loc with
        | Some sl ->
          [ Lint_finding.related_of_loc "the racing Domain.spawn" sl ]
        | None -> []
      else
        (* root-first escape path; the finding location is the access *)
        List.filter_map
          (fun (((cu, cb), reason) : (string * string) * root_reason) ->
            match binding_of cu cb with
            | None -> None
            | Some hop ->
              let label =
                match reason with
                | Spawn when Hashtbl.find_opt parent (cu, cb) = Some (None, Spawn)
                  ->
                  Printf.sprintf "spawn root %s" cb
                | Spawn -> Printf.sprintf "reached via %s.%s" cu cb
                | Configured ->
                  Printf.sprintf "configured domain entry point %s.%s" cu cb
              in
              Some
                (Lint_finding.related_of_loc label hop.Escape_graph.b_loc))
          (chain_to_root u bd.Escape_graph.b_name)
    in
    let message =
      if a.Escape_graph.a_post_spawn then
        Printf.sprintf
          "%s of %s (%s) after Domain.spawn: the spawned closure sees this \
           location, so the write races the running domain instead of being \
           published by the spawn happens-before edge; move it before the \
           spawn, guard both sides, or add a justified Lint_config.r7_allowed \
           entry"
          kind_str desc a.Escape_graph.a_what
      else
        Printf.sprintf
          "unguarded cross-domain %s of %s (%s): reachable from a domain \
           root but not Atomic, tvar-managed, DLS-confined, lock-guarded or \
           pre-spawn-frozen; guard it or add a justified \
           Lint_config.r7_allowed entry"
          kind_str desc a.Escape_graph.a_what
    in
    findings :=
      Lint_finding.make ~rule ~loc:a.Escape_graph.a_loc ~unit_name:u ~related
        message
      :: !findings
  in
  List.iter
    (fun ((bd : Escape_graph.binding), (a : Escape_graph.access)) ->
      if
        not
          (allowlisted cfg ~unit_name:bd.Escape_graph.b_unit
             ~binding:bd.Escape_graph.b_name)
        && a.Escape_graph.a_locks = []
        && (not (matches_type cfg.Lint_config.r7_confined_types a.Escape_graph.a_type))
        && not (matches_type cfg.Lint_config.r7_tvar_types a.Escape_graph.a_type)
      then
        match a.Escape_graph.a_target with
        | Escape_graph.Global (gu, gn)
          when a.Escape_graph.a_kind = Escape_graph.Read
               && (not a.Escape_graph.a_post_spawn)
               && not (Hashtbl.mem hot_writes (gu, gn)) ->
          () (* pre-spawn-frozen *)
        | _ -> report bd a)
    !considered;
  List.rev !findings
