(** Whole-program value-granular escape graph, the substrate shared by
    rule R7 (domain-escape) and rule R4 (profile honesty).

    One walk per compilation unit produces a {!summary}: for every
    structure-level binding (functor bodies and nested modules
    flattened, as in R4), the set of value references it makes to other
    bindings, the mutable-state accesses it performs, and the
    [Domain.spawn] sites it contains. Each closure passed to
    [Domain.spawn] becomes a pseudo-binding — a {e spawn root} — whose
    body is analyzed in a child environment where an identifier bound in
    the enclosing frame resolves to [Captured]: state of the spawning
    domain now visible to another domain.

    Accesses record the guard context the walk can prove:

    - targets bound to a fresh creator application ([ref], [Array.make],
      a record literal — {!Rule_r1.creators}) are local and dropped;
    - targets bound to a [Domain.DLS.get] result are domain-confined
      and dropped;
    - [Atomic.*] operations are never accesses (that tier is safe by
      construction);
    - the multiset of locks held at the access site is recorded: the
      walk tracks [Mutex.lock]/[unlock], [Mutex.protect],
      [Rwlock.acquire*]/[release*]/[with_lock] and the per-unit R3
      acquire/release helper table in traversal order (which is source
      order for sequences and let-chains). Held locks deliberately
      propagate into function literals: closures passed to [iter]/[map]
      run under the caller's locks, and a stored closure that is later
      run unlocked is a shape this analysis accepts as guarded — the
      dynamic sanitizer is the backstop there.
    - a write after a [Domain.spawn] in the same body to state the
      spawned closure captures (or to module-level state) is flagged
      [a_post_spawn]: it races with the running domain instead of being
      published by the spawn happens-before edge. [Domain.join] clears
      the flag — spawn/join/aggregate is the benign pattern.

    Reads are collected only when the target resolves to a module-level
    binding or a captured local: a read through an opaque parameter is
    invisible (documented approximation — the write side of any shared
    location is always resolvable, so a real race still surfaces at its
    write, and the seeded-race sanitize check is the dynamic backstop
    for read-only consumers). *)

open Typedtree

(* --- Structure flattening (moved from rule_r4, shared with it) --- *)

let rec last_component = function
  | Path.Pident id -> Ident.name id
  | Path.Pdot (_, s) -> s
  | Path.Papply (p, _) -> last_component p
  | Path.Pextra_ty (p, _) -> last_component p

(* Walk a structure, flattening nested modules and functor bodies:
   [on_item] receives every structure item, [on_module] every local
   module binding name with its module expression. The sync-free core
   defines its operations inside [Make (R : Runtime_intf.S)], so
   descending into functor bodies is the common case, not the
   exception. *)
let rec walk_structure ~on_item ~on_module str =
  List.iter (walk_item ~on_item ~on_module) str.str_items

and walk_item ~on_item ~on_module item =
  on_item item;
  match item.str_desc with
  | Tstr_module mb ->
    (match mb.mb_id with
    | Some id -> on_module (Ident.name id) mb.mb_expr
    | None -> ());
    walk_module ~on_item ~on_module mb.mb_expr
  | Tstr_recmodule mbs ->
    List.iter
      (fun mb ->
        (match mb.mb_id with
        | Some id -> on_module (Ident.name id) mb.mb_expr
        | None -> ());
        walk_module ~on_item ~on_module mb.mb_expr)
      mbs
  | _ -> ()

and walk_module ~on_item ~on_module m =
  match m.mod_desc with
  | Tmod_structure str -> walk_structure ~on_item ~on_module str
  | Tmod_functor (_, body) -> walk_module ~on_item ~on_module body
  | Tmod_constraint (m, _, _, _) -> walk_module ~on_item ~on_module m
  | _ -> ()

(* [module X = Unit] or [module X = Unit.Make (R)] — the unit behind a
   local module alias, if it is one of the loaded units. *)
let rec alias_target ~units m =
  match m.mod_desc with
  | Tmod_ident (p, _) -> Cmt_unit.resolve_ref ~units p
  | Tmod_apply (f, _, _) -> alias_target ~units f
  | Tmod_constraint (m, _, _, _) -> alias_target ~units m
  | _ -> None

let collect_aliases ~units structure =
  let aliases = Hashtbl.create 8 in
  walk_structure
    ~on_item:(fun _ -> ())
    ~on_module:(fun name m ->
      match alias_target ~units m with
      | Some target -> Hashtbl.replace aliases name target
      | None -> ())
    structure;
  aliases

(* --- The graph --- *)

type access_kind = Read | Write

type target =
  | Global of string * string
      (** (unit, binding): a module-level mutable cell with a stable
          identity — the only targets the pre-spawn-frozen tier can
          reason about *)
  | Captured of string
      (** local of the spawning frame, seen from (or published to) a
          spawned closure *)
  | Opaque of string
      (** parameter or complex expression: classified by type only *)

type access = {
  a_kind : access_kind;
  a_what : string;  (** mutating/reading primitive or [.field], for messages *)
  a_target : target;
  a_type : string option;
      (** type-constructor key of the target (of the record base for
          field accesses), e.g. ["Sb7_stm__Tl2.tx"] — matched against
          the configured confined/tvar-managed type tiers *)
  a_locks : string list;  (** lock names held at the access site *)
  a_in_spawn : bool;
  a_post_spawn : bool;  (** follows a [Domain.spawn] in the same body *)
  a_spawn_loc : Location.t option;  (** the spawn a post-spawn write races *)
  a_loc : Location.t;
}

type binding = {
  b_unit : string;
  b_name : string;
      (** binding name; spawn pseudo-bindings are ["f@spawn:<line>"] *)
  b_loc : Location.t;
  mutable b_refs : (string * string) list;  (** (unit, binding) edges *)
  mutable b_accesses : access list;
  mutable b_spawns : Location.t list;
  mutable b_r4_writes : (string * Location.t) list;
      (** (description, site) of configured transactional writes, for R4 *)
}

type summary = {
  s_unit : string;
  s_source : string option;
  s_bindings : (string, binding) Hashtbl.t;
  s_spawn_roots : string list;  (** keys of spawn pseudo-bindings *)
}

type build_config = {
  bc_units : (string, unit) Hashtbl.t;  (** loaded unit names *)
  bc_write_idents : string list;  (** R4: transactional write identifiers *)
  bc_write_fields : string list;  (** R4: index-mutator fields *)
  bc_acquire_helpers : (string * string) list;
      (** module-local acquire helper -> lock-class name (from the R3
          spec of the unit being built, when it has one) *)
  bc_release_helpers : (string * string) list;
}

(* Shared references readers: (identifier, index of the read target). *)
let readers =
  [
    ("Stdlib.!", 0);
    ("Stdlib.Array.get", 0);
    ("Stdlib.Array.unsafe_get", 0);
    ("Stdlib.Array.length", 0);
    ("Stdlib.Array.iter", 1);
    ("Stdlib.Array.to_list", 0);
    ("Stdlib.Bytes.get", 0);
    ("Stdlib.Bytes.unsafe_get", 0);
    ("Stdlib.Hashtbl.find", 0);
    ("Stdlib.Hashtbl.find_opt", 0);
    ("Stdlib.Hashtbl.find_all", 0);
    ("Stdlib.Hashtbl.mem", 0);
    ("Stdlib.Hashtbl.length", 0);
    ("Stdlib.Hashtbl.iter", 1);
    ("Stdlib.Hashtbl.fold", 1);
    ("Stdlib.Queue.peek", 0);
    ("Stdlib.Queue.length", 0);
    ("Stdlib.Queue.is_empty", 0);
    ("Stdlib.Buffer.contents", 0);
    ("Stdlib.Buffer.length", 0);
  ]

type state = {
  cfg : build_config;
  unit_name : string;
  aliases : (string, string) Hashtbl.t;
  toplevel : (Ident.t, string) Hashtbl.t;  (** structure-level binding idents *)
  bindings : (string, binding) Hashtbl.t;
  mutable spawn_roots : string list;
}

type env = {
  e_binding : binding;  (** where refs/accesses of this walk accumulate *)
  e_fresh : (Ident.t, unit) Hashtbl.t;
  e_confined : (Ident.t, unit) Hashtbl.t;
  e_bound : (Ident.t, unit) Hashtbl.t;
  e_in_spawn : bool;
  mutable e_held : string list;
  mutable e_spawned : Location.t option;
      (** a spawn site traversed earlier in this body, not yet joined *)
  e_published : (Ident.t, unit) Hashtbl.t;
      (** enclosing locals captured by an already-traversed spawn *)
}

let binding_for st name loc =
  match Hashtbl.find_opt st.bindings name with
  | Some b -> b (* same name in sibling scope: merge, as R4 does *)
  | None ->
    let b =
      {
        b_unit = st.unit_name;
        b_name = name;
        b_loc = loc;
        b_refs = [];
        b_accesses = [];
        b_spawns = [];
        b_r4_writes = [];
      }
    in
    Hashtbl.add st.bindings name b;
    b

let is_dls_get e =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
    Path.name p = "Stdlib.Domain.DLS.get"
  | _ -> false

(* Type attribution follows the innermost record base: the access
   [tx.log_vals.(i) <- v] is an access to the transaction descriptor
   [tx], and [Sb7_stm__Tl2.tx] — not [array] — is the brand the
   confined/tvar-managed tiers match on. *)
let rec type_base (e : expression) =
  match e.exp_desc with Texp_field (b, _, _) -> type_base b | _ -> e

let type_key st (e : expression) =
  let e = type_base e in
  match Types.get_desc e.exp_type with
  | Types.Tconstr (p, _, _) -> (
    match Cmt_unit.resolve_ref ~units:st.cfg.bc_units p with
    | Some u -> Some (u ^ "." ^ last_component p)
    | None -> (
      match p with
      | Path.Pident id when not (Ident.is_predef id) ->
        Some (st.unit_name ^ "." ^ Ident.name id)
      | _ -> Some (Path.name p)))
  | _ -> None

(* Resolution of an access-target expression to an identity and guard
   tier. [`Local]/[`Confined] are proven-safe and dropped by the
   caller. *)
let rec resolve st env (e : expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) ->
    if Hashtbl.mem env.e_fresh id then `Local
    else if Hashtbl.mem env.e_confined id then `Confined
    else if Hashtbl.mem env.e_bound id then
      `Target (Opaque ("local " ^ Ident.name id))
    else (
      match Hashtbl.find_opt st.toplevel id with
      | Some key -> `Target (Global (st.unit_name, key))
      | None ->
        if env.e_in_spawn then `Target (Captured (Ident.name id))
        else `Target (Opaque (Ident.name id)))
  | Texp_ident (p, _, _) -> (
    match Cmt_unit.resolve_ref ~units:st.cfg.bc_units p with
    | Some u -> `Target (Global (u, last_component p))
    | None -> (
      match p with
      | Path.Pdot (Path.Pident m, field) -> (
        match Hashtbl.find_opt st.aliases (Ident.name m) with
        | Some u -> `Target (Global (u, field))
        | None ->
          (* a local submodule member: the flattening pre-scan indexed
             it under its field name *)
          if Hashtbl.mem st.bindings field then
            `Target (Global (st.unit_name, field))
          else `Target (Opaque (Path.name p)))
      | _ -> `Target (Opaque (Path.name p))))
  | Texp_field (base, _, _) -> resolve st env base
  | Texp_apply _ when is_dls_get e -> `Confined
  | Texp_apply _ when Rule_r1.is_creator e -> `Local
  | _ -> `Target (Opaque "<expr>")

let add_access st env ~kind ~what ~loc target_expr =
  let record ?spawn_loc ?(post_spawn = false) target =
    env.e_binding.b_accesses <-
      {
        a_kind = kind;
        a_what = what;
        a_target = target;
        a_type = type_key st target_expr;
        a_locks = env.e_held;
        a_in_spawn = env.e_in_spawn;
        a_post_spawn = post_spawn;
        a_spawn_loc = spawn_loc;
        a_loc = loc;
      }
      :: env.e_binding.b_accesses
  in
  (* A write racing a domain spawned earlier in this body: to a local
     the closure captured (publication after the happens-before edge),
     or to module-level state. *)
  let published_base e =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> Hashtbl.mem env.e_published id
    | Texp_field (base, _, _) -> (
      match base.exp_desc with
      | Texp_ident (Path.Pident id, _, _) -> Hashtbl.mem env.e_published id
      | _ -> false)
    | _ -> false
  in
  match (kind, env.e_spawned) with
  | Write, Some spawn_loc when published_base target_expr ->
    let name =
      match target_expr.exp_desc with
      | Texp_ident (Path.Pident id, _, _) -> Ident.name id
      | Texp_field ({ exp_desc = Texp_ident (Path.Pident id, _, _); _ }, _, _)
        ->
        Ident.name id
      | _ -> "<local>"
    in
    record ~spawn_loc ~post_spawn:true (Captured name)
  | _ -> (
    match resolve st env target_expr with
    | `Local | `Confined -> ()
    | `Target target -> (
      match (kind, env.e_spawned, target) with
      | Write, Some spawn_loc, Global _ ->
        record ~spawn_loc ~post_spawn:true target
      | _ -> record target))

let note_ref st env p loc =
  let name = Path.name p in
  if List.mem name st.cfg.bc_write_idents then
    env.e_binding.b_r4_writes <- (name, loc) :: env.e_binding.b_r4_writes
  else
    match Cmt_unit.resolve_ref ~units:st.cfg.bc_units p with
    | Some target ->
      env.e_binding.b_refs <- (target, last_component p) :: env.e_binding.b_refs
    | None -> (
      match p with
      | Path.Pdot (Path.Pident m, field) -> (
        match Hashtbl.find_opt st.aliases (Ident.name m) with
        | Some target ->
          env.e_binding.b_refs <- (target, field) :: env.e_binding.b_refs
        | None ->
          if Hashtbl.mem st.bindings field then
            env.e_binding.b_refs <-
              (st.unit_name, field) :: env.e_binding.b_refs)
      | Path.Pident id -> (
        match Hashtbl.find_opt st.toplevel id with
        | Some key ->
          env.e_binding.b_refs <- (st.unit_name, key) :: env.e_binding.b_refs
        | None -> ())
      | _ -> ())

(* Name of the lock denoted by a lock-operation argument. *)
let lock_name (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> last_component p
  | Texp_field (_, _, lbl) -> lbl.Types.lbl_name
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> last_component p
  | _ -> "<lock>"

let release held name =
  let rec drop = function
    | [] -> []
    | h :: t -> if h = name then t else h :: drop t
  in
  drop held

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let rec walk st env (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> note_ref st env p e.exp_loc
  | Texp_field (base, _, lbl) ->
    if List.mem lbl.Types.lbl_name st.cfg.bc_write_fields then
      env.e_binding.b_r4_writes <-
        ("index mutation ." ^ lbl.Types.lbl_name, e.exp_loc)
        :: env.e_binding.b_r4_writes;
    (if lbl.Types.lbl_mut = Asttypes.Mutable then
       match resolve st env base with
       | `Target ((Global _ | Captured _) as target) ->
         env.e_binding.b_accesses <-
           {
             a_kind = Read;
             a_what = "." ^ lbl.Types.lbl_name;
             a_target = target;
             a_type = type_key st base;
             a_locks = env.e_held;
             a_in_spawn = env.e_in_spawn;
             a_post_spawn = false;
             a_spawn_loc = None;
             a_loc = e.exp_loc;
           }
           :: env.e_binding.b_accesses
       | _ -> ());
    walk st env base
  | Texp_setfield (base, _, lbl, v) ->
    add_access st env ~kind:Write ~what:("." ^ lbl.Types.lbl_name)
      ~loc:e.exp_loc base;
    walk st env base;
    walk st env v
  | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as fn), args) ->
    handle_apply st env fn p args e
  | _ ->
    let it = iterator st env in
    Tast_iterator.default_iterator.expr it e

and handle_apply st env fn p args e =
  let name = Path.name p in
  let walk_all () =
    walk st env fn;
    List.iter (fun (_, arg) -> Option.iter (walk st env) arg) args
  in
  let bracket lock_arg =
    (* protect/with_lock wrappers: args run under the lock *)
    let l = lock_name lock_arg in
    walk st env fn;
    env.e_held <- l :: env.e_held;
    List.iter (fun (_, arg) -> Option.iter (walk st env) arg) args;
    env.e_held <- release env.e_held l
  in
  if name = "Stdlib.Domain.spawn" then begin
    (match Rule_r1.nth_positional args 0 with
    | Some closure -> spawn_site st env closure e.exp_loc
    | None -> ());
    walk st env fn
  end
  else if name = "Stdlib.Domain.join" then begin
    (* spawn / join / aggregate: after a join the spawned domains are
       gone and writes stop racing them *)
    env.e_spawned <- None;
    Hashtbl.reset env.e_published;
    walk_all ()
  end
  else if name = "Stdlib.Mutex.lock" || name = "Stdlib.Mutex.try_lock" then begin
    walk_all ();
    match Rule_r1.nth_positional args 0 with
    | Some l -> env.e_held <- lock_name l :: env.e_held
    | None -> ()
  end
  else if name = "Stdlib.Mutex.unlock" then begin
    walk_all ();
    match Rule_r1.nth_positional args 0 with
    | Some l -> env.e_held <- release env.e_held (lock_name l)
    | None -> ()
  end
  else if name = "Stdlib.Mutex.protect" then
    match Rule_r1.nth_positional args 0 with
    | Some l -> bracket l
    | None -> walk_all ()
  else begin
    (match Rule_r3.rwlock_op p with
    | Some op when List.mem op Rule_r3.acquire_ops -> (
      walk_all ();
      match Rule_r1.nth_positional args 0 with
      | Some l -> env.e_held <- lock_name l :: env.e_held
      | None -> ())
    | Some op when List.mem op Rule_r3.release_ops -> (
      walk_all ();
      match Rule_r1.nth_positional args 0 with
      | Some l -> env.e_held <- release env.e_held (lock_name l)
      | None -> ())
    | Some "with_lock" -> (
      match Rule_r1.nth_positional args 0 with
      | Some l -> bracket l
      | None -> walk_all ())
    | _ ->
      let last = last_component p in
      (match List.assoc_opt last st.cfg.bc_acquire_helpers with
      | Some cls ->
        walk_all ();
        env.e_held <- cls :: env.e_held
      | None -> (
        match List.assoc_opt last st.cfg.bc_release_helpers with
        | Some cls ->
          walk_all ();
          env.e_held <- release env.e_held cls
        | None ->
          if String.starts_with ~prefix:"Stdlib.Atomic." name then walk_all ()
          else begin
            (match List.assoc_opt name readers with
            | Some idx -> (
              match Rule_r1.nth_positional args idx with
              | Some target -> (
                match resolve st env target with
                | `Target ((Global _ | Captured _) as tgt) ->
                  env.e_binding.b_accesses <-
                    {
                      a_kind = Read;
                      a_what = name;
                      a_target = tgt;
                      a_type = type_key st target;
                      a_locks = env.e_held;
                      a_in_spawn = env.e_in_spawn;
                      a_post_spawn = false;
                      a_spawn_loc = None;
                      a_loc = e.exp_loc;
                    }
                    :: env.e_binding.b_accesses
                | _ -> ())
              | None -> ())
            | None -> (
              match List.assoc_opt name Rule_r1.mutators with
              | Some idx -> (
                match Rule_r1.nth_positional args idx with
                | Some target ->
                  add_access st env ~kind:Write ~what:name ~loc:e.exp_loc
                    target
                | None -> ())
              | None -> ()));
            walk_all ()
          end)))
  end

and spawn_site st env closure spawn_loc =
  let parent = env.e_binding in
  parent.b_spawns <- spawn_loc :: parent.b_spawns;
  let key =
    Printf.sprintf "%s@spawn:%d" parent.b_name (line_of spawn_loc)
  in
  let b = binding_for st key spawn_loc in
  st.spawn_roots <- key :: st.spawn_roots;
  let child =
    {
      e_binding = b;
      e_fresh = Hashtbl.create 16;
      e_confined = Hashtbl.create 4;
      e_bound = Hashtbl.create 16;
      e_in_spawn = true;
      e_held = [];
      e_spawned = None;
      e_published = Hashtbl.create 4;
    }
  in
  walk st child closure;
  (* Everything the closure references from the enclosing frame is now
     visible to the spawned domain: a later write to it in this body
     races the domain instead of being published by the spawn edge. *)
  let capture_scan =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_ident (Path.Pident id, _, _)
            when (not (Hashtbl.mem child.e_bound id))
                 && (not (Hashtbl.mem child.e_fresh id))
                 && (not (Hashtbl.mem child.e_confined id))
                 && not (Hashtbl.mem st.toplevel id) ->
            Hashtbl.replace env.e_published id ()
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  capture_scan.expr capture_scan closure;
  env.e_spawned <- Some spawn_loc

and register_vb env vb =
  List.iter
    (fun id -> Hashtbl.replace env.e_bound id ())
    (pat_bound_idents vb.vb_pat);
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, _) | Tpat_alias (_, id, _) ->
    if Rule_r1.is_creator vb.vb_expr then Hashtbl.replace env.e_fresh id ()
    else if is_dls_get vb.vb_expr then Hashtbl.replace env.e_confined id ()
  | _ -> ()

and iterator st env =
  {
    Tast_iterator.default_iterator with
    expr = (fun _ e -> walk st env e);
    value_binding =
      (fun sub vb ->
        register_vb env vb;
        Tast_iterator.default_iterator.value_binding sub vb);
    case =
      (fun sub c ->
        List.iter
          (fun id -> Hashtbl.replace env.e_bound id ())
          (pat_bound_idents c.c_lhs);
        Tast_iterator.default_iterator.case sub c);
  }

let build (cfg : build_config) (u : Cmt_unit.t) =
  let st =
    {
      cfg;
      unit_name = u.Cmt_unit.name;
      aliases = collect_aliases ~units:cfg.bc_units u.Cmt_unit.structure;
      toplevel = Hashtbl.create 32;
      bindings = Hashtbl.create 32;
      spawn_roots = [];
    }
  in
  (* Pre-scan: index every structure-level binding (so same-unit
     references resolve by ident, and local-submodule members resolve
     by name) before any body is analyzed — bodies reference bindings
     defined later in the file through [let rec] and functors. *)
  walk_structure
    ~on_module:(fun _ _ -> ())
    ~on_item:(fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match vb.vb_pat.pat_desc with
            | Tpat_var (id, _) | Tpat_alias (_, id, _) ->
              let name = Ident.name id in
              Hashtbl.replace st.toplevel id name;
              ignore (binding_for st name vb.vb_pat.pat_loc)
            | _ -> ())
          vbs
      | _ -> ())
    u.Cmt_unit.structure;
  walk_structure
    ~on_module:(fun _ _ -> ())
    ~on_item:(fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match vb.vb_pat.pat_desc with
            | Tpat_var (id, _) | Tpat_alias (_, id, _) ->
              let b = binding_for st (Ident.name id) vb.vb_pat.pat_loc in
              let env =
                {
                  e_binding = b;
                  e_fresh = Hashtbl.create 16;
                  e_confined = Hashtbl.create 4;
                  e_bound = Hashtbl.create 16;
                  e_in_spawn = false;
                  e_held = [];
                  e_spawned = None;
                  e_published = Hashtbl.create 4;
                }
              in
              walk st env vb.vb_expr
            | _ -> ())
          vbs
      | _ -> ())
    u.Cmt_unit.structure;
  {
    s_unit = u.Cmt_unit.name;
    s_source = u.Cmt_unit.source;
    s_bindings = st.bindings;
    s_spawn_roots = List.rev st.spawn_roots;
  }
