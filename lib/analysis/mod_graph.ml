(** Module-granularity reference graph over a set of loaded units, used
    by rule R2 to approximate "reachable from an operation body".

    Edges are collected from every value reference ([Texp_ident]) and
    every module reference ([Tmod_ident] — this is what functor
    applications like [Setup.Make (R)] and local aliases like
    [module P = Sb7_runtime.Op_profile] produce). The approximation is
    deliberately coarse (module-level, not function-level): a false
    edge can only make the lint stricter, never miss a real one. *)

open Typedtree

let references (units : (string, unit) Hashtbl.t) (u : Cmt_unit.t) =
  let refs = Hashtbl.create 16 in
  let note path =
    match Cmt_unit.resolve_ref ~units path with
    | Some target when target <> u.Cmt_unit.name ->
      Hashtbl.replace refs target ()
    | _ -> ()
  in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_ident (p, _, _) -> note p
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
      module_expr =
        (fun sub m ->
          (match m.mod_desc with
          | Tmod_ident (p, _) -> note p
          | _ -> ());
          Tast_iterator.default_iterator.module_expr sub m);
    }
  in
  iter.structure iter u.Cmt_unit.structure;
  Hashtbl.fold (fun k () acc -> k :: acc) refs []

(** [closure ~edges ~seeds] is the set of unit names reachable from
    [seeds] (inclusive) over the precomputed [edges] table — the shared
    engine walk collects the edges itself, one traversal per unit. *)
let closure ~(edges : (string, string list) Hashtbl.t) ~seeds =
  let reached = Hashtbl.create 64 in
  let rec visit name =
    if not (Hashtbl.mem reached name) then begin
      Hashtbl.replace reached name ();
      List.iter visit (try Hashtbl.find edges name with Not_found -> [])
    end
  in
  List.iter visit seeds;
  reached

(** [reachable units ~seeds] is the set of unit names reachable from
    [seeds] (inclusive) following references between loaded units. *)
let reachable (units : Cmt_unit.t list) ~seeds =
  let unit_names = Hashtbl.create 64 in
  List.iter (fun u -> Hashtbl.replace unit_names u.Cmt_unit.name ()) units;
  let edges = Hashtbl.create 64 in
  List.iter
    (fun u -> Hashtbl.replace edges u.Cmt_unit.name (references unit_names u))
    units;
  closure ~edges ~seeds
