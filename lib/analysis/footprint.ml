(** sb7-footprint — static may-read / may-write footprint inference.

    Where rule R4 answers the boolean question "can this declared
    read-only operation reach a write at all?", this pass answers the
    quantitative one: {e which parts of the OO7 structure} can each of
    the 45 registered operations read and write. Footprints are
    computed over a six-element abstract-region lattice — indexes (the
    Table 1 indexes plus the id pools), assemblies (base and complex,
    every level), composite parts, atomic-part graphs, documents and
    the manual — deliberately coarser than [Op_profile.domain] (which
    splits assemblies per level) so that a region can be attributed to
    every tvar at creation time by [Region_ctx] and cross-checked
    dynamically by [sb7-sanitize footprint].

    The inference extends R4's value-granular reference graph:

    1. Every top-level binding of the core universe (functor bodies
       included) gets a local footprint: a field projection whose label
       is region-mapped ([ap_build_date], [cp_used_in], ...) is
       evidence of reading that region; an application of the runtime
       write primitive ([R.write]) whose tvar argument contains a
       region-mapped projection writes that region; projecting an
       index-record mutator ([.put] / [.remove]) writes the Indexes
       region, an accessor ([.get] / [.range] / [.iter] / [.size])
       reads it.
    2. An [R.write] whose tvar argument carries no mapped projection
       writes {e some caller-supplied} tvar — the binding is a
       {e generic writer} ([Bag.add], [update_build_date_tvar]). A
       fixpoint pushes the attribution to call sites: a call of a
       generic writer with region-mapped projections among its
       arguments writes those regions; a call forwarding a bare
       identifier makes the caller a generic writer in turn.
    3. An operation's footprint is the union over every binding
       reachable from its run function in the reference graph.

    Approximations are on the strict (over-approximating) side: any
    mapped projection counts as a read even if the field is immutable;
    all projected regions of a generic-writer call count as written.
    An operation left with an unattributable residual write is
    reported [fp_unresolved] — the generator refuses to emit a table
    containing one. *)

open Typedtree

(* Mirrors Sb7_runtime.Region (lib/analysis stays free of repo
   dependencies so the lint tests can load it standalone); codes must
   stay equal to Region.to_int. *)
type region =
  | Indexes
  | Assemblies
  | Composite_parts
  | Atomic_parts
  | Documents
  | Manual

let all_regions =
  [ Indexes; Assemblies; Composite_parts; Atomic_parts; Documents; Manual ]

let region_to_int = function
  | Indexes -> 0
  | Assemblies -> 1
  | Composite_parts -> 2
  | Atomic_parts -> 3
  | Documents -> 4
  | Manual -> 5

let region_to_string = function
  | Indexes -> "indexes"
  | Assemblies -> "assemblies"
  | Composite_parts -> "composite-parts"
  | Atomic_parts -> "atomic-parts"
  | Documents -> "documents"
  | Manual -> "manual"

(* Region constructor name in Sb7_runtime.Region, for code emission. *)
let region_constructor = function
  | Indexes -> "Indexes"
  | Assemblies -> "Assemblies"
  | Composite_parts -> "Composite_parts"
  | Atomic_parts -> "Atomic_parts"
  | Documents -> "Documents"
  | Manual -> "Manual"

(* Region sets as 6-bit masks. *)
let bit r = 1 lsl region_to_int r
let mask_mem m r = m land bit r <> 0
let mask_regions m = List.filter (mask_mem m) all_regions

type config = {
  fp_registry_units : string list;
  fp_builders : (string * bool) list;
      (** operation-registering builder -> is-structural *)
  fp_universe_prefixes : string list;
  fp_write_idents : string list;  (** the runtime write primitive *)
  fp_field_regions : (string * region) list;
      (** object-field label -> region of the containing object *)
  fp_read_fields : (string * region) list;
      (** container-accessor field -> region read when projected *)
  fp_write_fields : (string * region) list;
      (** container-mutator field -> region written when projected *)
}

(** The repository configuration: region attribution for every field
    of {!Types}, the index records of {!Index_intf} and the id pools.
    Connections belong to the atomic-part graphs they link; id pools
    share the Indexes region with the Table 1 indexes (both are global
    lookup structure, not OO7 objects). *)
let default =
  let ap = Atomic_parts and cp = Composite_parts in
  {
    fp_registry_units = [ "Sb7_core__Operation" ];
    fp_builders =
      [
        ("long_traversal", false);
        ("short_traversal", false);
        ("short_operation", false);
        ("structure_mod", true);
      ];
    fp_universe_prefixes = [ "Sb7_core__" ];
    fp_write_idents = [ "R.write" ];
    fp_field_regions =
      [
        ("ap_id", ap); ("ap_type", ap); ("ap_build_date", ap);
        ("ap_x", ap); ("ap_y", ap); ("ap_to", ap); ("ap_from", ap);
        ("ap_part_of", ap);
        ("conn_type", ap); ("conn_length", ap); ("conn_from", ap);
        ("conn_to", ap);
        ("cp_id", cp); ("cp_type", cp); ("cp_build_date", cp);
        ("cp_document", cp); ("cp_used_in", cp); ("cp_root_part", cp);
        ("cp_parts", cp);
        ("doc_id", Documents); ("doc_title", Documents);
        ("doc_text", Documents); ("doc_part", Documents);
        ("ba_id", Assemblies); ("ba_type", Assemblies);
        ("ba_build_date", Assemblies); ("ba_components", Assemblies);
        ("ba_super", Assemblies);
        ("ca_id", Assemblies); ("ca_type", Assemblies);
        ("ca_build_date", Assemblies); ("ca_level", Assemblies);
        ("ca_sub", Assemblies); ("ca_super", Assemblies);
        ("man_id", Manual); ("man_title", Manual); ("man_text", Manual);
        ("free", Indexes); ("free_count", Indexes);
      ];
    fp_read_fields =
      [
        ("get", Indexes); ("range", Indexes); ("iter", Indexes);
        ("size", Indexes);
      ];
    fp_write_fields = [ ("put", Indexes); ("remove", Indexes) ];
  }

(* --- Per-binding footprint info --- *)

type finfo = {
  mutable f_refs : (string * string) list;
  mutable f_reads : int;  (** region mask *)
  mutable f_writes : int;  (** region mask *)
  mutable f_generic : bool;
      (** performs an [R.write] whose target could not be attributed
          (writes a caller-supplied tvar) *)
  mutable f_calls : ((string * string) * int * bool) list;
      (** (callee, region mask of projected args, forwards a bare
          identifier) — for generic-writer attribution *)
}

(* Region mask of every mapped field projection syntactically inside
   [e] (object fields only: container accessors are handled at the
   projection site itself, not as write-target evidence). *)
let projection_mask config e =
  let m = ref 0 in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_field (_, _, lbl) -> (
            match List.assoc_opt lbl.Types.lbl_name config.fp_field_regions with
            | Some r -> m := !m lor bit r
            | None -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  iter.expr iter e;
  !m

let is_bare_ident e =
  match e.exp_desc with Texp_ident (Path.Pident _, _, _) -> true | _ -> false

let path_components p =
  let rec parts acc = function
    | Path.Pident id -> Ident.name id :: acc
    | Path.Pdot (p, s) -> parts (s :: acc) p
    | Path.Papply (p, _) -> parts acc p
    | Path.Pextra_ty (p, _) -> parts acc p
  in
  parts [] p

(* Resolve an expression path to a (unit, value) reference. Unlike
   R4's single-level scheme this chases {e chains} of module aliases
   across units ([S.B.add] where [module S = Setup.Make (R)] locally
   and [module B = Bag.Make (R)] inside setup.ml resolves to
   [Sb7_core__Bag.add]) — without it the bag writes of SM3/SM4 would
   silently vanish from their footprints. [alias_tables] maps each
   universe unit to its local-module-alias table. *)
let resolve_value ~units ~alias_tables ~unit_name p =
  let rec chase current_unit = function
    | [] -> None
    | [ v ] -> Some (current_unit, v)
    | m :: rest -> (
      match Hashtbl.find_opt alias_tables current_unit with
      | None -> None
      | Some tbl -> (
        match Hashtbl.find_opt tbl m with
        | Some target -> chase target rest
        | None -> None))
  in
  match path_components p with
  | [] -> None
  | [ v ] when not (Ident.persistent (Path.head p)) -> Some (unit_name, v)
  | head :: rest when Ident.persistent (Path.head p) -> (
    if Hashtbl.mem units head then chase head rest
    else
      (* dune wrapper alias: [Sb7_core.Bag.f] -> [Sb7_core__Bag.f]. *)
      match rest with
      | second :: rest' when Hashtbl.mem units (head ^ "__" ^ second) ->
        chase (head ^ "__" ^ second) rest'
      | _ -> None)
  | head :: rest -> (
    (* Local module path: the head is an alias in this unit. *)
    match Hashtbl.find_opt alias_tables unit_name with
    | None -> None
    | Some tbl -> (
      match Hashtbl.find_opt tbl head with
      | Some target -> chase target rest
      | None -> None))

let analyze_binding config ~units ~alias_tables ~unit_name expr (v : finfo) =
  let is_write_ident p = List.mem (Path.name p) config.fp_write_idents in
  let note_ref p =
    if not (is_write_ident p) then
      match resolve_value ~units ~alias_tables ~unit_name p with
      | Some edge -> v.f_refs <- edge :: v.f_refs
      | None -> ()
  in
  let positional_args args =
    List.filter_map
      (fun (label, arg) ->
        match (label, arg) with Asttypes.Nolabel, Some a -> Some a | _ -> None)
      args
  in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          match e.exp_desc with
          | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
            when is_write_ident p ->
            (* The write target is the first positional argument; skip
               the head identifier so the bare-mention case below does
               not also fire. *)
            (match positional_args args with
            | target :: _ ->
              let m = projection_mask config target in
              if m <> 0 then v.f_writes <- v.f_writes lor m
              else v.f_generic <- true
            | [] -> v.f_generic <- true);
            List.iter
              (fun (_, arg) -> Option.iter (sub.Tast_iterator.expr sub) arg)
              args
          | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as fn), args)
            ->
            (match resolve_value ~units ~alias_tables ~unit_name p with
            | Some callee when not (is_write_ident p) ->
              let pos = positional_args args in
              let m =
                List.fold_left
                  (fun acc a -> acc lor projection_mask config a)
                  0 pos
              in
              let raw = List.exists is_bare_ident pos in
              v.f_calls <- (callee, m, raw) :: v.f_calls
            | _ -> ());
            sub.Tast_iterator.expr sub fn;
            List.iter
              (fun (_, arg) -> Option.iter (sub.Tast_iterator.expr sub) arg)
              args
          | Texp_ident (p, _, _) ->
            if is_write_ident p then
              (* [R.write] mentioned but not applied (partial
                 application, passed as a value): target unknowable. *)
              v.f_generic <- true
            else note_ref p
          | Texp_field (inner, _, lbl) ->
            let name = lbl.Types.lbl_name in
            (match List.assoc_opt name config.fp_field_regions with
            | Some r -> v.f_reads <- v.f_reads lor bit r
            | None -> ());
            (match List.assoc_opt name config.fp_read_fields with
            | Some r -> v.f_reads <- v.f_reads lor bit r
            | None -> ());
            (match List.assoc_opt name config.fp_write_fields with
            | Some r -> v.f_writes <- v.f_writes lor bit r
            | None -> ());
            sub.Tast_iterator.expr sub inner
          | _ -> Tast_iterator.default_iterator.expr sub e);
    }
  in
  iter.expr iter expr

let unit_info config ~units ~alias_tables (u : Cmt_unit.t) =
  let bindings : (string, finfo) Hashtbl.t = Hashtbl.create 32 in
  Escape_graph.walk_structure
    ~on_module:(fun _ _ -> ())
    ~on_item:(fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match vb.vb_pat.pat_desc with
            | Tpat_var (id, _) ->
              let name = Ident.name id in
              let v =
                match Hashtbl.find_opt bindings name with
                | Some v -> v (* same name in sibling scope: merge *)
                | None ->
                  let v =
                    {
                      f_refs = [];
                      f_reads = 0;
                      f_writes = 0;
                      f_generic = false;
                      f_calls = [];
                    }
                  in
                  Hashtbl.add bindings name v;
                  v
              in
              analyze_binding config ~units ~alias_tables
                ~unit_name:u.Cmt_unit.name vb.vb_expr v
            | _ -> ())
          vbs
      | _ -> ())
    u.Cmt_unit.structure;
  bindings

(* --- Generic-writer fixpoint ---

   Attribute caller-side regions to calls of generic writers, and
   propagate the generic flag through bare-identifier forwarding,
   until stable. *)
let resolve_generics infos =
  let lookup (unit_name, value) =
    match Hashtbl.find_opt infos unit_name with
    | None -> None
    | Some bindings -> Hashtbl.find_opt bindings value
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun _ bindings ->
        Hashtbl.iter
          (fun _ (v : finfo) ->
            List.iter
              (fun (callee, m, raw) ->
                match lookup callee with
                | Some c when c.f_generic ->
                  if m <> 0 && v.f_writes lor m <> v.f_writes then begin
                    v.f_writes <- v.f_writes lor m;
                    changed := true
                  end;
                  if raw && m = 0 && not v.f_generic then begin
                    (* Nothing attributable forwarded: the caller
                       passes the tvar along untranslated. *)
                    v.f_generic <- true;
                    changed := true
                  end
                | _ -> ())
              v.f_calls)
          bindings)
      infos
  done

(* --- Registry extraction: all registered operations --- *)

type registered = {
  reg_code : string;
  reg_structural : bool;
  reg_declared_ro : bool;
  reg_run : (string * string) option;
  reg_run_name : string;
  reg_loc : Location.t;
}

let registered_ops config ~units ~alias_tables (u : Cmt_unit.t) =
  let ops = ref [] in
  let handle_apply fn args loc =
    match fn.exp_desc with
    | Texp_ident (p, _, _) -> (
      match
        List.assoc_opt (Rule_r4.last_component p) config.fp_builders
      with
      | None -> ()
      | Some structural -> (
        let code =
          List.find_map
            (fun (label, arg) ->
              match (label, arg) with
              | Asttypes.Nolabel, Some a -> Rule_r4.const_string a
              | _ -> None)
            args
        in
        let has_writes =
          List.exists
            (fun (label, arg) ->
              (match label with
              | Asttypes.Labelled s | Asttypes.Optional s -> s = "writes"
              | Asttypes.Nolabel -> false)
              &&
              match arg with
              | Some a -> not (Rule_r4.is_none_construct a)
              | None -> false)
            args
        in
        let run =
          List.fold_left
            (fun acc (label, arg) ->
              match (label, arg) with
              | Asttypes.Nolabel, Some a -> (
                match (Rule_r4.unwrap_option_arg a).exp_desc with
                | Texp_ident (rp, _, _) -> Some rp
                | _ -> acc)
              | _ -> acc)
            None args
        in
        match (code, run) with
        | Some code, Some rp ->
          ops :=
            {
              reg_code = code;
              reg_structural = structural;
              reg_declared_ro = (not has_writes) && not structural;
              reg_run =
                resolve_value ~units ~alias_tables
                  ~unit_name:u.Cmt_unit.name rp;
              reg_run_name = Path.name rp;
              reg_loc = loc;
            }
            :: !ops
        | _ -> ()))
    | _ -> ()
  in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_apply (fn, args) -> handle_apply fn args e.exp_loc
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  iter.structure iter u.Cmt_unit.structure;
  List.rev !ops

(* --- Reachability closure --- *)

type op_footprint = {
  fp_code : string;
  fp_structural : bool;
  fp_declared_ro : bool;
  fp_run_name : string;
  fp_reads : region list;  (** may-read regions, writes excluded *)
  fp_writes : region list;
  fp_unresolved : bool;
      (** a reachable residual generic write survived the fixpoint *)
  fp_loc : Location.t;
}

(* Union of the local footprints of every binding reachable from
   [start]. A reachable generic-writer {e leaf} ([Bag.add]) is fine —
   the fixpoint attributed its write at the call sites above it; only
   the flag on the root itself (checked by the caller) means a write
   escaped attribution. *)
let closure infos start =
  let visited = Hashtbl.create 64 in
  let reads = ref 0 and writes = ref 0 in
  let rec go (unit_name, value) =
    if not (Hashtbl.mem visited (unit_name, value)) then begin
      Hashtbl.add visited (unit_name, value) ();
      match Hashtbl.find_opt infos unit_name with
      | None -> ()
      | Some bindings -> (
        match Hashtbl.find_opt bindings value with
        | None -> ()
        | Some (v : finfo) ->
          reads := !reads lor v.f_reads;
          writes := !writes lor v.f_writes;
          List.iter go (List.rev v.f_refs))
    end
  in
  go start;
  (!reads, !writes)

let in_universe config unit_name =
  List.exists
    (fun p -> String.starts_with ~prefix:p unit_name)
    config.fp_universe_prefixes

(** Infer the footprint of every operation registered in the
    configured registry units. [fp_unresolved] is set when the
    operation's own run-function closure root is a generic writer —
    i.e. some write could not be attributed to any region. *)
let infer ?(config = default) (all_units : Cmt_unit.t list) =
  let units = Hashtbl.create 64 in
  List.iter (fun u -> Hashtbl.replace units u.Cmt_unit.name ()) all_units;
  let relevant name =
    in_universe config name || List.mem name config.fp_registry_units
  in
  (* Alias tables first, for all relevant units, so the resolver can
     chase alias chains that cross units. *)
  let alias_tables = Hashtbl.create 32 in
  List.iter
    (fun u ->
      if relevant u.Cmt_unit.name then
        Hashtbl.replace alias_tables u.Cmt_unit.name
          (Escape_graph.collect_aliases ~units u.Cmt_unit.structure))
    all_units;
  let infos = Hashtbl.create 32 in
  List.iter
    (fun u ->
      if in_universe config u.Cmt_unit.name then
        Hashtbl.replace infos u.Cmt_unit.name
          (unit_info config ~units ~alias_tables u))
    all_units;
  resolve_generics infos;
  let root_generic (unit_name, value) =
    match Hashtbl.find_opt infos unit_name with
    | None -> false
    | Some bindings -> (
      match Hashtbl.find_opt bindings value with
      | None -> false
      | Some v -> v.f_generic)
  in
  List.concat_map
    (fun u ->
      if not (List.mem u.Cmt_unit.name config.fp_registry_units) then []
      else
        List.map
          (fun reg ->
            let reads, writes =
              match reg.reg_run with
              | Some target -> closure infos target
              | None -> (0, 0)
            in
            {
              fp_code = reg.reg_code;
              fp_structural = reg.reg_structural;
              fp_declared_ro = reg.reg_declared_ro;
              fp_run_name = reg.reg_run_name;
              fp_reads = mask_regions (reads land lnot writes);
              fp_writes = mask_regions writes;
              fp_unresolved =
                (match reg.reg_run with
                | None -> true
                | Some target -> root_generic target);
              fp_loc = reg.reg_loc;
            })
          (registered_ops config ~units ~alias_tables u))
    all_units

(* --- Conflict classification (mirrors Sb7_core.Op_footprint) --- *)

let may_read fp = fp.fp_reads @ fp.fp_writes

let classify a b =
  let inter xs ys = List.exists (fun x -> List.mem x ys) xs in
  if inter a.fp_writes b.fp_writes then `Write_write
  else if inter a.fp_writes (may_read b) || inter b.fp_writes (may_read a)
  then `Read_write
  else if inter a.fp_reads b.fp_reads then `Read_read
  else `Disjoint

let class_to_string = function
  | `Write_write -> "write-write"
  | `Read_write -> "read-write"
  | `Read_read -> "read-read"
  | `Disjoint -> "disjoint"

let pure_read fp = fp.fp_writes = [] && not fp.fp_structural
