(** Adaptive tournament meta-runtime: dispatches every transaction to
    a champion STM substrate (TL2 / LSA / NOrec / ETL) and re-decides
    the champion each epoch from live {!Sb7_stm.Stm_stats} signals,
    with hysteresis and an epoch-fenced (quiesce + migrate) switch.
    See the implementation header for the design. *)

(** The decision rules, pure and separately testable. *)
module Policy : sig
  type signals = {
    abort_rate : float;  (** aborts / (commits + aborts) *)
    ro_rate : float;  (** read-only commits / commits *)
    mean_read_set : float;  (** read-set entries per update commit *)
    salvage_rate : float;
        (** partial aborts / (partial aborts + full aborts) *)
  }

  val substrate_count : int

  (** Substrate indices into scores/occupancy. *)
  val tl2 : int

  val lsa : int
  val norec : int
  val etl : int
  val substrate_names : string array

  (** [score i s] rates substrate [i] for a phase with signals [s];
      higher wins. Pure. *)
  val score : int -> signals -> float

  type config = {
    margin : float;  (** challenger must beat the champion by this *)
    streak : int;  (** ... for this many consecutive epochs *)
    dwell : int;  (** epochs a fresh champion is unchallengeable *)
  }

  val default_config : config

  type state

  val initial : state
  val champion : state -> int

  (** One epoch decision: fold the hysteresis state over this epoch's
      signals. Pure — the flap/phase-change tests drive it directly. *)
  val decide : config -> state -> signals -> state
end

module type CONFIG = sig
  val name : string

  (** Committed transactions per epoch (approximate: commit counts are
      flushed from domain-local tallies in batches). *)
  val epoch_length : int

  val policy : Policy.config
end

(** A tournament instance with its own champion/fence/epoch state;
    tests instantiate short epochs to force phase changes quickly. *)
module Make (C : CONFIG) : Runtime_intf.S

(** The registered ["tournament"] instance (256-commit epochs, default
    hysteresis). *)
include Runtime_intf.S
