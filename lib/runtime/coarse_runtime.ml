(** The coarse-grained locking strategy of the paper: one global
    read-write lock protects the entire data structure. Read-only
    operations take it in read mode, everything else in write mode. *)

module Counter = Sb7_stm.Sharded_counter

let name = "coarse"

type 'a tvar = 'a ref

let make v = ref v
let read tv = !tv
let write tv v = tv := v

let global = Sb7_rwlock.Rwlock.create ~name:"global" ()
let read_acquisitions = Counter.create ()
let write_acquisitions = Counter.create ()
let commits = Counter.create ()

let atomic ~profile f =
  let mode : Sb7_rwlock.Rwlock.mode =
    if Op_profile.read_only profile then Read else Write
  in
  (match mode with
  | Read -> Counter.incr read_acquisitions
  | Write -> Counter.incr write_acquisitions);
  let result = Sb7_rwlock.Rwlock.with_lock global mode f in
  (* Only normal returns count, mirroring the STM runtimes where an
     operation that raises rolls back and is not a commit. *)
  Counter.incr commits;
  result

(* Lock-based execution holds its locks for the whole operation and
   rolls back wholesale on restart: no partial abort. *)
let partial_abort = false
let checkpoint ~acc = ignore acc
let resume () = (0, 0)

let stats () =
  [
    ("read_acquisitions", Counter.get read_acquisitions);
    ("write_acquisitions", Counter.get write_acquisitions);
    ("commits", Counter.get commits);
    ("aborts", 0);
  ]

let reset_stats () =
  Counter.reset read_acquisitions;
  Counter.reset write_acquisitions;
  Counter.reset commits
