(* Profile-directed read-only dispatch, shared by the STM runtimes.

   An operation whose profile declares no writes runs through the
   STM's [atomic_ro] fast path. Profiles are declarations, not proofs:
   if a declared-read-only operation does write, the STM raises
   [Stm_intf.Write_in_read_only], and we (1) record the operation name
   in a sticky per-STM registry, (2) bump the STM's [ro_demotions]
   counter, and (3) re-run the closure as an update transaction.
   Thereafter the operation starts directly in update mode — a
   mis-declared profile costs one restart, never wrong results.

   The registry is a lock-free immutable list under an [Atomic]: the
   hot path is a single [Atomic.get] that is [[]] for honest
   workloads, and the list stays as short as the number of lying
   operations (a handful at most), so membership is effectively O(1).
   [reset] clears it (wired to the runtime's [reset_stats] so
   harness/bench runs start from the declared profiles). *)

module Make (Stm : Sb7_stm.Stm_intf.S) = struct
  let demoted : string list Atomic.t = Atomic.make []

  let is_demoted name =
    match Atomic.get demoted with
    | [] -> false
    | l -> List.mem name l

  let rec demote name =
    let cur = Atomic.get demoted in
    if not (List.mem name cur) then
      if not (Atomic.compare_and_set demoted cur (name :: cur)) then
        demote name

  let reset () = Atomic.set demoted []

  let atomic ~profile f =
    if Op_profile.read_only profile && not (is_demoted profile.Op_profile.op_name)
    then begin
      match Stm.atomic_ro f with
      | result -> result
      | exception Sb7_stm.Stm_intf.Write_in_read_only ->
        demote profile.Op_profile.op_name;
        Stm.record_ro_demotion ();
        Stm.atomic f
    end
    else Stm.atomic f

  (* Partial-abort capability, threaded through unchanged: checkpoints
     placed by an operation that ends up on the [atomic_ro] path are
     no-ops inside the STM (read-only transactions keep no read set to
     salvage), so the same operation body works on both paths. *)
  let partial_abort = Stm.partial_abort
  let checkpoint = Stm.checkpoint
  let resume = Stm.resume
end
