(** Runtime lookup by command-line name. *)

type packed = (module Runtime_intf.S)

let all : (string * packed) list =
  [
    ("seq", (module Seq_runtime));
    ("coarse", (module Coarse_runtime));
    ("medium", (module Medium_runtime));
    ("fine", (module Fine_runtime));
    ("tl2", (module Tl2_runtime));
    ("lsa", (module Lsa_runtime));
    ("norec", (module Norec_runtime));
    ("etl", (module Etl_runtime));
    ("astm", (module Astm_runtime));
    ("tournament", (module Tournament_runtime));
  ]

let names = List.map fst all

let find name : (packed, string) result =
  match List.assoc_opt (String.lowercase_ascii name) all with
  | Some r -> Ok r
  | None ->
    Error
      (Printf.sprintf "unknown synchronization strategy %S (expected %s)" name
         (String.concat " | " names))
