(** See the implementation header for the strategy description. *)

include Runtime_intf.S

(** Seeded-bug fixture for the sanitizer: {!drop_first_write_lock}
    makes every locking plan silently skip its first write-mode domain
    lock (acquire and release), producing real data races that the
    lockset checker must catch. For sanitizer tests and the
    [sb7_sanitize seeded] CI fixture only — never in benchmarks. *)
module Unsafe : sig
  val drop_first_write_lock : unit -> unit
  val reset : unit -> unit
end
