(** The NOrec STM as a benchmark runtime: value-based validation
    against a single global sequence lock, no per-tvar metadata.
    Read-only operations run through {!Ro_dispatch} in NOrec's
    zero-log snapshot mode (one global load per read); a lying
    profile is demoted to update mode after one clean restart. No
    partial abort — checkpoints are accepted as no-ops. *)

module Stm = Sb7_stm.Norec
module D = Ro_dispatch.Make (Stm)

let name = Stm.name

type 'a tvar = 'a Stm.tvar

let make = Stm.make
let read = Stm.read
let write = Stm.write
let atomic = D.atomic
let partial_abort = D.partial_abort
let checkpoint = D.checkpoint
let resume = D.resume

let stats () = Sb7_stm.Stm_stats.to_assoc (Stm.stats ())

let reset_stats () =
  D.reset ();
  Stm.reset_stats ()
