(** Domain-local "current region" context.

    The sync-free core brackets every object-construction site with
    {!with_region}; the sanitizer's instrumented runtime reads
    {!current_code} when a tvar is created and records the tvar's
    region in the trace, giving the dynamic footprint cross-check
    ([sb7-sanitize footprint]) its sid -> region map. Nesting is
    supported (an atomic-part graph built inside a composite part) and
    exception-safe; outside any bracket the context reads as
    {!unknown}. *)

(** Code reported outside any {!with_region} bracket: -1. *)
val unknown : int

(** The current region's {!Region.to_int} code, or {!unknown}. *)
val current_code : unit -> int

val current : unit -> Region.t option

(** [with_region r f] runs [f] with the current domain's region set to
    [r], restoring the previous region on return or exception. *)
val with_region : Region.t -> (unit -> 'a) -> 'a
