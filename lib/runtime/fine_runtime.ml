(** A fine-grained locking strategy — the "ultimate baseline" the paper
    leaves as future work (§6: "adding a fine-grained, highly-optimized
    locking strategy would help define the ultimate baseline test").

    The paper observes (§4) that static fine-grained locking is
    impractical for STMBench7 because an operation cannot know the
    objects it will touch before traversing: one would have to build,
    sort, and lock an access list per operation. This implementation
    takes the standard dynamic alternative: strict two-phase locking at
    tvar granularity with no-wait deadlock avoidance —

    - every tvar carries its own reader/writer lock word;
    - locks are acquired on first access and held to the end of the
      operation (strict 2PL, so operations stay atomic);
    - a lock that cannot be acquired immediately triggers restart:
      writes are rolled back from an undo log, all locks are released,
      and the operation reruns after randomized backoff (no waiting
      cycles, hence no deadlock);
    - read locks upgrade to write locks when the holder is the sole
      reader, and restart otherwise.

    This is exactly the engineering the paper predicts: the mechanism
    needs an undo log and restart — "implementing it efficiently would
    be much more complex than using an STM". *)

module Counter = Sb7_stm.Sharded_counter

exception Restart

let name = "fine"

(* Lock word: 0 = free, n > 0 = n readers, -1 = write-locked. *)
type 'a tvar = {
  id : int;
  lock : int Atomic.t;
  mutable content : 'a;
}

(* Chunked ids; see Tvar_id — one shared atomic op per 1024 tvars. *)
let tvar_ids = Sb7_stm.Tvar_id.create ()

let make v =
  { id = Sb7_stm.Tvar_id.fresh tvar_ids; lock = Atomic.make 0; content = v }

type held_mode =
  | Held_read
  | Held_write

type op_ctx = {
  (* tvar id -> (mode, release closure) *)
  held : (int, held_mode ref * (unit -> unit)) Hashtbl.t;
  mutable undo : (unit -> unit) list;
  backoff : Sb7_stm.Backoff.t;
}

type domain_state = {
  mutable active : op_ctx option;
  mutable spare : op_ctx option;
}

let state_key : domain_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { active = None; spare = None })

let fresh_ctx () =
  {
    held = Hashtbl.create 64;
    undo = [];
    backoff = Sb7_stm.Backoff.for_domain ();
  }

let acquisitions = Counter.create ()
let restarts = Counter.create ()
let upgrades = Counter.create ()
let commits = Counter.create ()

let try_read_lock lock =
  let rec attempt spins =
    let v = Atomic.get lock in
    if v >= 0 then
      if Atomic.compare_and_set lock v (v + 1) then true else attempt spins
    else if spins > 0 then begin
      Domain.cpu_relax ();
      attempt (spins - 1)
    end
    else false
  in
  attempt 16

let try_write_lock lock =
  let rec attempt spins =
    if Atomic.compare_and_set lock 0 (-1) then true
    else if spins > 0 then begin
      Domain.cpu_relax ();
      attempt (spins - 1)
    end
    else false
  in
  attempt 16

let release_read lock = ignore (Atomic.fetch_and_add lock (-1))
let release_write lock = Atomic.set lock 0

(* Per-tvar lock identity for the sanitizer's acquire/release events:
   too numerous to register by name, so they live in the anonymous uid
   space (see Lock_hooks). *)
module Hooks = Sb7_rwlock.Lock_hooks

let lock_uid tv = Hooks.anonymous_base + tv.id

let lock_for_read ctx tv =
  match Hashtbl.find_opt ctx.held tv.id with
  | Some _ -> () (* already held in either mode *)
  | None ->
    if not (try_read_lock tv.lock) then raise Restart;
    Counter.incr acquisitions;
    Hooks.on_acquire ~id:(lock_uid tv) ~exclusive:false;
    Hashtbl.add ctx.held tv.id
      ( ref Held_read,
        fun () ->
          Hooks.on_release ~id:(lock_uid tv) ~exclusive:false;
          release_read tv.lock )

let lock_for_write ctx tv =
  match Hashtbl.find_opt ctx.held tv.id with
  | Some ({ contents = Held_write }, _) -> ()
  | Some (({ contents = Held_read } as mode), _) ->
    (* Upgrade: legal only as the sole reader (1 -> -1). *)
    if Atomic.compare_and_set tv.lock 1 (-1) then begin
      Counter.incr upgrades;
      Hooks.on_release ~id:(lock_uid tv) ~exclusive:false;
      Hooks.on_acquire ~id:(lock_uid tv) ~exclusive:true;
      mode := Held_write;
      Hashtbl.replace ctx.held tv.id
        ( mode,
          fun () ->
            Hooks.on_release ~id:(lock_uid tv) ~exclusive:true;
            release_write tv.lock )
    end
    else raise Restart
  | None ->
    if not (try_write_lock tv.lock) then raise Restart;
    Counter.incr acquisitions;
    Hooks.on_acquire ~id:(lock_uid tv) ~exclusive:true;
    Hashtbl.add ctx.held tv.id
      ( ref Held_write,
        fun () ->
          Hooks.on_release ~id:(lock_uid tv) ~exclusive:true;
          release_write tv.lock )

let read tv =
  match (Domain.DLS.get state_key).active with
  | None -> tv.content
  | Some ctx ->
    lock_for_read ctx tv;
    tv.content

let write tv v =
  match (Domain.DLS.get state_key).active with
  | None -> tv.content <- v
  | Some ctx ->
    lock_for_write ctx tv;
    let old = tv.content in
    ctx.undo <- (fun () -> tv.content <- old) :: ctx.undo;
    tv.content <- v

let release_all ctx =
  Hashtbl.iter (fun _ (_, release) -> release ()) ctx.held;
  Hashtbl.reset ctx.held

let rollback ctx =
  List.iter (fun undo -> undo ()) ctx.undo;
  ctx.undo <- []

let atomic ~profile f =
  ignore (profile : Op_profile.t);
  let st = Domain.DLS.get state_key in
  match st.active with
  | Some _ -> f () (* nested: flatten into the enclosing operation *)
  | None ->
    let ctx =
      match st.spare with
      | Some ctx -> ctx
      | None ->
        let ctx = fresh_ctx () in
        st.spare <- Some ctx;
        ctx
    in
    let rec attempt () =
      ctx.undo <- [];
      st.active <- Some ctx;
      match f () with
      | result ->
        st.active <- None;
        ctx.undo <- [];
        release_all ctx;
        Sb7_stm.Backoff.reset ctx.backoff;
        Counter.incr commits;
        result
      | exception Restart ->
        st.active <- None;
        rollback ctx;
        release_all ctx;
        Counter.incr restarts;
        Sb7_stm.Backoff.once ctx.backoff;
        attempt ()
      | exception exn ->
        (* Semantic failures (and any other exception) roll back and
           propagate — strict 2PL means the view was consistent. *)
        st.active <- None;
        rollback ctx;
        release_all ctx;
        raise exn
    in
    attempt ()

(* Lock-based execution holds its locks for the whole operation and
   rolls back wholesale on restart: no partial abort. *)
let partial_abort = false
let checkpoint ~acc = ignore acc
let resume () = (0, 0)

let stats () =
  [
    ("acquisitions", Counter.get acquisitions);
    ("restarts", Counter.get restarts);
    ("upgrades", Counter.get upgrades);
    ("commits", Counter.get commits);
    (* Restarts are this runtime's aborts: an operation that could not
       take a lock rolled back and reran. *)
    ("aborts", Counter.get restarts);
  ]

let reset_stats () =
  Counter.reset acquisitions;
  Counter.reset restarts;
  Counter.reset upgrades;
  Counter.reset commits
