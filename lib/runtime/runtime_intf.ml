(** A synchronization strategy ("runtime") for the benchmark.

    The core data structure and all 45 operations are written against
    this signature only — the OCaml analogue of STMBench7's sync-free
    core that gets its concurrency control woven in separately. *)

module type S = sig
  (** Strategy name as used on the command line
      (["seq"], ["coarse"], ["medium"], ["tl2"], ["astm"]). *)
  val name : string

  (** A shared mutable cell of the data structure. For lock-based
      runtimes this is a plain reference; for STM runtimes it is a
      transactional variable. *)
  type 'a tvar

  val make : 'a -> 'a tvar
  val read : 'a tvar -> 'a
  val write : 'a tvar -> 'a -> unit

  (** [atomic ~profile f] executes one benchmark operation atomically.
      Lock runtimes acquire the locks demanded by [profile]; STM
      runtimes run [f] as a transaction, retrying on conflict, and
      dispatch on [Op_profile.read_only profile] to select their
      read-only fast path (with adaptive demotion to an update
      transaction if the profile turns out to be wrong — see
      {!Ro_dispatch}; the lock domains themselves are ignored).
      Exceptions from [f] (e.g. the specified operation failures)
      release locks / roll back and propagate. *)
  val atomic : profile:Op_profile.t -> (unit -> 'a) -> 'a

  (** Whether [atomic] can salvage work across conflicts via
      checkpointed partial abort. Runtimes without the capability
      (locks, seq, ASTM) keep full-abort semantics: [checkpoint] is a
      no-op and [resume] always reports a fresh attempt. *)
  val partial_abort : bool

  (** [checkpoint ~acc] marks a resume point inside the current
      transaction, saving the caller's integer accumulator. See
      {!Sb7_stm.Stm_intf.S.checkpoint}; a no-op on runtimes where
      [partial_abort] is [false]. *)
  val checkpoint : acc:int -> unit

  (** [resume ()] queries the current attempt's resume state:
      [(units_to_skip, saved_acc)], [(0, 0)] on a fresh attempt. See
      {!Sb7_stm.Stm_intf.S.resume}. *)
  val resume : unit -> int * int

  (** Strategy-specific counters (lock acquisitions, STM commits and
      aborts, …) for reports; reset with [reset_stats]. *)
  val stats : unit -> (string * int) list

  val reset_stats : unit -> unit
end
