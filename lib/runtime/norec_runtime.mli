(** See the implementation header for the strategy description. *)

include Runtime_intf.S
