(** The LSA multi-version STM as a benchmark runtime: read-only
    operations run as snapshot transactions (no validation, no aborts
    against writers), update operations as TL2-like update
    transactions. Dispatch goes through {!Ro_dispatch}, so an
    operation that writes despite a read-only profile is demoted to
    update mode after one clean restart instead of failing. *)

module Stm = Sb7_stm.Lsa
module D = Ro_dispatch.Make (Stm)

let name = Stm.name

type 'a tvar = 'a Stm.tvar

let make = Stm.make
let read = Stm.read
let write = Stm.write
let atomic = D.atomic
let partial_abort = D.partial_abort
let checkpoint = D.checkpoint
let resume = D.resume

let stats () = Sb7_stm.Stm_stats.to_assoc (Stm.stats ())

let reset_stats () =
  D.reset ();
  Stm.reset_stats ()
