(** Profile-directed read-only dispatch with adaptive fallback, shared
    by the STM runtimes.

    Operations whose {!Op_profile} declares no writes run through the
    STM's [atomic_ro] fast path. A declared-read-only operation that
    actually writes trips [Stm_intf.Write_in_read_only]; the dispatcher
    records the operation in a sticky demotion registry, bumps the
    STM's [ro_demotions] counter, and re-runs the closure as an update
    transaction. Thereafter the operation starts directly in update
    mode: a mis-declared profile costs one restart, never wrong
    results. *)

module Make (Stm : Sb7_stm.Stm_intf.S) : sig
  (** [atomic ~profile f] dispatches [f] to [Stm.atomic_ro] when
      [Op_profile.read_only profile] holds and the operation has not
      been demoted, to [Stm.atomic] otherwise. *)
  val atomic : profile:Op_profile.t -> (unit -> 'a) -> 'a

  (** Has this operation been demoted to update mode? *)
  val is_demoted : string -> bool

  (** Clear the demotion registry (wire into the runtime's
      [reset_stats] so runs start from the declared profiles). *)
  val reset : unit -> unit

  (** Checkpoint capability, forwarded from the STM so runtimes built
      on this dispatcher expose it unchanged. On the [atomic_ro] path
      the STM ignores checkpoints (no read set to salvage), which is
      exactly right: those transactions never conflict-abort. *)
  val partial_abort : bool

  val checkpoint : acc:int -> unit
  val resume : unit -> int * int
end
