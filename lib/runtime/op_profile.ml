(** Lock-domain footprint of a benchmark operation.

    The medium-grained strategy of the paper (its Figure 5) partitions
    the shared structure into lockable domains: one per assembly level,
    one for all composite parts, one for all atomic parts, one for all
    documents and one for the manual, plus a global "structure" lock
    acquired in write mode by structure-modification operations and in
    read mode by everything else. An operation declares here which
    domains it reads and writes; lock-based runtimes acquire the
    corresponding locks (in a fixed canonical order), STM runtimes
    ignore the profile. *)

type domain =
  | Assembly_level of int  (** 1 = base assemblies … 7 = root *)
  | Composite_parts
  | Atomic_parts
  | Documents
  | Manual

let max_assembly_levels = 7

let domain_to_string = function
  | Assembly_level i -> Printf.sprintf "assembly-level-%d" i
  | Composite_parts -> "composite-parts"
  | Atomic_parts -> "atomic-parts"
  | Documents -> "documents"
  | Manual -> "manual"

(* Canonical acquisition order (deadlock freedom): structure lock first
   (handled by the runtime), then levels top-down, then the leaves. *)
let domain_rank = function
  | Assembly_level i ->
    assert (i >= 1 && i <= max_assembly_levels);
    max_assembly_levels - i
  | Composite_parts -> max_assembly_levels
  | Atomic_parts -> max_assembly_levels + 1
  | Documents -> max_assembly_levels + 2
  | Manual -> max_assembly_levels + 3

let num_domains = max_assembly_levels + 4

type t = {
  op_name : string;
  reads : domain list;  (** domains accessed read-only *)
  writes : domain list;  (** domains updated; takes precedence over reads *)
  structural : bool;  (** structure-modification operation *)
  ro_hint : bool option;
      (** inferred pure-read verdict from the generated
          [Sb7_core.Op_footprint] table; when present it overrides the
          hand-declared [writes] for read-only dispatch *)
}

let assembly_levels lo hi =
  assert (lo >= 1 && hi <= max_assembly_levels && lo <= hi);
  List.init (hi - lo + 1) (fun i -> Assembly_level (lo + i))

let all_assembly_levels = assembly_levels 1 max_assembly_levels

let make ~name ?(reads = []) ?(writes = []) ?(structural = false) ?ro () =
  { op_name = name; reads; writes; structural; ro_hint = ro }

(* Read-only dispatch is profile-directed (the zero-log / snapshot
   fast paths of the STM runtimes key on this). The statically inferred
   pure-read verdict, when the operation is in the generated footprint
   table, replaces the hand-declared [~writes] absence; structural
   operations are never read-only regardless of the hint. The adaptive
   demotion in Ro_dispatch remains the backstop for a wrong hint. *)
let read_only t =
  (not t.structural)
  &&
  match t.ro_hint with
  | Some ro -> ro
  | None -> t.writes = []

(** Domains with the mode they must be locked in, sorted in canonical
    acquisition order. Write mode wins when a domain appears in both
    lists. Structural operations return no domain locks: the exclusive
    structure lock already isolates them (the paper: "indexes, sets and
    bags do not have to be synchronized separately"). *)
let locking_plan t : (domain * [ `Read | `Write ]) list =
  if t.structural then []
  else begin
    let tbl = Hashtbl.create 16 in
    List.iter (fun d -> Hashtbl.replace tbl (domain_rank d) (d, `Read)) t.reads;
    List.iter
      (fun d -> Hashtbl.replace tbl (domain_rank d) (d, `Write))
      t.writes;
    Hashtbl.fold (fun rank dm acc -> (rank, dm) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  end

let pp ppf t =
  let doms l = String.concat "," (List.map domain_to_string l) in
  Format.fprintf ppf "%s{reads=%s; writes=%s; structural=%b}" t.op_name
    (doms t.reads) (doms t.writes) t.structural
