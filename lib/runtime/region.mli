(** The abstract-region lattice of the OO7 structure used by the
    sb7-footprint analysis (docs/FOOTPRINT.md): every tvar belongs to
    exactly one region, an operation's static footprint is a pair of
    region sets. *)

type t =
  | Indexes  (** the six Table 1 indexes and the four id pools *)
  | Assemblies  (** base + complex assemblies, all levels *)
  | Composite_parts
  | Atomic_parts  (** atomic parts and their connection graphs *)
  | Documents
  | Manual

val all : t list
val count : int

(** Stable dense codes; the wire format of trace region notes and the
    generated [Op_footprint] table. *)
val to_int : t -> int

val of_int : int -> t option
val to_string : t -> string

(** The region covering a lock domain of the hand-declared profiles. *)
val of_domain : Op_profile.domain -> t
