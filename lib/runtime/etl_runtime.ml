(** The encounter-time-locking STM as a benchmark runtime: writers
    lock each tvar at first write and update in place with an undo
    log, turning commit-time write conflicts into early aborts.
    Read-only operations go through {!Ro_dispatch}'s zero-log mode;
    checkpointed partial abort is supported over the undo log. *)

module Stm = Sb7_stm.Etl
module D = Ro_dispatch.Make (Stm)

let name = Stm.name

type 'a tvar = 'a Stm.tvar

let make = Stm.make
let read = Stm.read
let write = Stm.write
let atomic = D.atomic
let partial_abort = D.partial_abort
let checkpoint = D.checkpoint
let resume = D.resume

let stats () = Sb7_stm.Stm_stats.to_assoc (Stm.stats ())

let reset_stats () =
  D.reset ();
  Stm.reset_stats ()
