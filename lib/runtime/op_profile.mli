(** Lock-domain footprint of a benchmark operation.

    The medium-grained strategy of the paper (its Figure 5) partitions
    the shared structure into lockable domains: one per assembly level,
    one for all composite parts, one for all atomic parts, one for all
    documents and one for the manual, plus a global "structure" lock
    acquired in write mode by structure-modification operations and in
    read mode by everything else. An operation declares which domains
    it reads and writes; lock-based runtimes acquire the corresponding
    locks in a fixed canonical order, STM runtimes ignore the profile
    (or, for the LSA runtime, use only {!read_only}). *)

type domain =
  | Assembly_level of int  (** 1 = base assemblies … 7 = root *)
  | Composite_parts
  | Atomic_parts
  | Documents
  | Manual

val max_assembly_levels : int

val domain_to_string : domain -> string

(** Position in the canonical (deadlock-free) acquisition order;
    distinct per domain, in [0, num_domains). *)
val domain_rank : domain -> int

val num_domains : int

type t = {
  op_name : string;
  reads : domain list;  (** domains accessed read-only *)
  writes : domain list;  (** domains updated; takes precedence over reads *)
  structural : bool;  (** structure-modification operation *)
  ro_hint : bool option;
      (** inferred pure-read verdict from the generated
          [Sb7_core.Op_footprint] table; when present it overrides the
          hand-declared [writes] for read-only dispatch *)
}

(** [assembly_levels lo hi] — the domains for levels [lo..hi]. *)
val assembly_levels : int -> int -> domain list

val all_assembly_levels : domain list

val make :
  name:string ->
  ?reads:domain list ->
  ?writes:domain list ->
  ?structural:bool ->
  ?ro:bool ->
  unit ->
  t

(** Not structural, and pure-read: per the inferred [ro] hint when one
    was supplied (the generated [Sb7_core.Op_footprint] table), else
    per the hand-declared absence of writes. *)
val read_only : t -> bool

(** Domains with their lock modes, deduplicated (write wins), sorted in
    canonical acquisition order. Empty for structural operations: the
    exclusive structure lock already isolates them. *)
val locking_plan : t -> (domain * [ `Read | `Write ]) list

val pp : Format.formatter -> t -> unit
