(** The abstract-region lattice of the OO7 structure used by the
    sb7-footprint analysis (see docs/FOOTPRINT.md).

    Every transactional variable of the benchmark belongs to exactly
    one region; an operation's static footprint is a pair of region
    sets (may-read, may-write). The partition is deliberately coarser
    than {!Op_profile.domain} — complex assemblies of all levels share
    one region, because a whole-program analysis cannot separate tree
    levels — and adds a region the lock profiles fold into the global
    structure lock: the Table 1 indexes together with the id pools. *)

type t =
  | Indexes  (** the six Table 1 indexes and the four id pools *)
  | Assemblies  (** base + complex assemblies, all levels *)
  | Composite_parts
  | Atomic_parts  (** atomic parts and their connection graphs *)
  | Documents
  | Manual

let all = [ Indexes; Assemblies; Composite_parts; Atomic_parts; Documents; Manual ]

let count = List.length all

(* Codes are the wire format of trace region notes and the generated
   footprint table; keep them dense and stable. *)
let to_int = function
  | Indexes -> 0
  | Assemblies -> 1
  | Composite_parts -> 2
  | Atomic_parts -> 3
  | Documents -> 4
  | Manual -> 5

let of_int = function
  | 0 -> Some Indexes
  | 1 -> Some Assemblies
  | 2 -> Some Composite_parts
  | 3 -> Some Atomic_parts
  | 4 -> Some Documents
  | 5 -> Some Manual
  | _ -> None

let to_string = function
  | Indexes -> "indexes"
  | Assemblies -> "assemblies"
  | Composite_parts -> "composite-parts"
  | Atomic_parts -> "atomic-parts"
  | Documents -> "documents"
  | Manual -> "manual"

(** The region covering an {!Op_profile.domain}: used by the matrix
    self-consistency check to compare inferred footprints against the
    hand-declared lock profiles. *)
let of_domain = function
  | Op_profile.Assembly_level _ -> Assemblies
  | Op_profile.Composite_parts -> Composite_parts
  | Op_profile.Atomic_parts -> Atomic_parts
  | Op_profile.Documents -> Documents
  | Op_profile.Manual -> Manual
