(** The medium-grained locking strategy of the paper (its Figure 5):

    - one read-write lock per lock domain: each of the 7 assembly
      levels, all composite parts, all atomic parts, all documents,
      and the manual;
    - one additional "structure" read-write lock, acquired in write
      mode by structure-modification operations (isolating them
      completely) and in read mode by every other operation.

    Domain locks are acquired in the canonical order defined by
    {!Op_profile.locking_plan}, so the strategy is deadlock-free. *)

module Rwlock = Sb7_rwlock.Rwlock
module Counter = Sb7_stm.Sharded_counter

let name = "medium"

type 'a tvar = 'a ref

let make v = ref v
let read tv = !tv
let write tv v = tv := v

let structure_lock = Rwlock.create ~name:"structure" ()

let domain_locks =
  Array.init Op_profile.num_domains (fun i ->
      Rwlock.create ~name:(Printf.sprintf "domain-%d" i) ())

let lock_of_domain d = domain_locks.(Op_profile.domain_rank d)

let read_acquisitions = Counter.create ()
let write_acquisitions = Counter.create ()
let structural_ops = Counter.create ()
let commits = Counter.create ()

(* Seeded-bug fixture for the sanitizer (docs/SANITIZER.md): when set,
   the first write-mode entry of every locking plan is silently skipped
   in both acquire and release, so one declared write domain runs
   unprotected. The lockset checker must flag the resulting races;
   never set outside sanitizer fixtures. *)
module Unsafe = struct
  let dropping = ref false
  let drop_first_write_lock () = dropping := true
  let reset () = dropping := false
end

let drop_first_write plan =
  let rec go = function
    | [] -> []
    | (_, `Write) :: rest -> rest
    | entry :: rest -> entry :: go rest
  in
  go plan

let effective_plan plan =
  if !Unsafe.dropping then drop_first_write plan else plan

let acquire_plan plan =
  List.iter
    (fun (d, mode) ->
      match mode with
      | `Read ->
        Counter.incr read_acquisitions;
        Rwlock.acquire_read (lock_of_domain d)
      | `Write ->
        Counter.incr write_acquisitions;
        Rwlock.acquire_write (lock_of_domain d))
    plan

let release_plan plan =
  List.iter
    (fun (d, mode) ->
      match mode with
      | `Read -> Rwlock.release_read (lock_of_domain d)
      | `Write -> Rwlock.release_write (lock_of_domain d))
    (List.rev plan)

let atomic ~profile f =
  let structure_mode : Rwlock.mode =
    if profile.Op_profile.structural then begin
      Counter.incr structural_ops;
      Write
    end
    else Read
  in
  let plan = effective_plan (Op_profile.locking_plan profile) in
  Rwlock.acquire structure_lock structure_mode;
  acquire_plan plan;
  match f () with
  | result ->
    release_plan plan;
    Rwlock.release structure_lock structure_mode;
    (* Only normal returns count, mirroring the STM runtimes where an
       operation that raises rolls back and is not a commit. *)
    Counter.incr commits;
    result
  | exception exn ->
    release_plan plan;
    Rwlock.release structure_lock structure_mode;
    raise exn

(* Lock-based execution holds its locks for the whole operation and
   rolls back wholesale on restart: no partial abort. *)
let partial_abort = false
let checkpoint ~acc = ignore acc
let resume () = (0, 0)

let stats () =
  [
    ("read_acquisitions", Counter.get read_acquisitions);
    ("write_acquisitions", Counter.get write_acquisitions);
    ("structural_ops", Counter.get structural_ops);
    ("commits", Counter.get commits);
    ("aborts", 0);
  ]

let reset_stats () =
  Counter.reset read_acquisitions;
  Counter.reset write_acquisitions;
  Counter.reset structural_ops;
  Counter.reset commits
