(* The tournament meta-runtime: races the four STM substrates (TL2,
   LSA, NOrec, ETL) against the live workload and dispatches every
   transaction to the current champion.

   STMBench7's central finding — and the Synchrobench comparison's
   (PAPERS.md) — is that no single STM design wins across the
   benchmark's phases: NOrec's zero-metadata reads win read-dominated
   low-contention stretches, ETL's early aborts win write-dominated
   structural churn, LSA's snapshots win long traversals against
   writers, TL2 is the all-rounder. This runtime turns that finding
   into a strategy: it re-decides the champion every epoch (a fixed
   number of committed transactions) from the live {!Sb7_stm.Stm_stats}
   signals — abort rate, read-only rate, mean read-set size, partial-
   abort salvage rate — through a pure rule-based {!Policy} with
   hysteresis (a challenger must out-score the champion by a margin
   for a streak of epochs, and a fresh champion gets a dwell period),
   so noise cannot make it thrash.

   Substrates keep their own tvar representations, so a tournament
   tvar is the product of the four substrate tvars, with the invariant
   that the CURRENT CHAMPION's component is authoritative and the
   other three may be stale. Transactions only ever touch the
   champion's component; a switch migrates every registered tvar's
   value from the old champion's component into the new one's (via the
   substrates' non-transactional read/write — LSA's non-transactional
   write versions properly through its vlock) before the new champion
   sees traffic.

   Correctness of the switch rests on an epoch fence: no two
   substrates' transactions may overlap, and no transaction may
   overlap the migration. Every domain owns a padded in-transaction
   flag; a transaction raises its flag and then checks the [pending]
   word, backing off while a switch is in progress (the same
   flag-then-check / publish-then-drain pattern as the harness's
   start barrier, both sides sequentially consistent [Atomic]
   operations). The switching domain — the epoch decider, which runs
   BETWEEN its own transactions — publishes [pending], waits until
   every flag is down, migrates, flips [champion], and releases
   [pending].

   Costs, by design: 4x tvar memory, a registry entry per tvar, and an
   O(#tvars) copy per switch — switches are epoch-rare, so the copy
   amortizes to noise. The per-transaction overhead is one flag store,
   one [pending] load, and one [champion] load (a read-mostly line). *)

(* The decision rules, pure and separately testable: scores are
   functions of the epoch's signals only, and [decide] folds hysteresis
   state. docs/PERF.md §8 tabulates the rules against measurements. *)
module Policy = struct
  type signals = {
    abort_rate : float;  (** aborts / (commits + aborts) *)
    ro_rate : float;  (** read-only commits / commits *)
    mean_read_set : float;  (** read-set entries per commit *)
    salvage_rate : float;
        (** partial aborts / (partial aborts + full aborts) *)
  }

  let substrate_count = 4
  let tl2 = 0
  let lsa = 1
  let norec = 2
  let etl = 3
  let substrate_names = [| "tl2"; "lsa"; "norec"; "etl" |]

  let clamp01 x = if x < 0. then 0. else if x > 1. then 1. else x

  (* Rule-based scores in [0, 1]-ish space. TL2 is the flat-scored
     all-rounder the others must displace:
     - NOrec climbs with the read-only rate (zero-metadata reads, free
       ro commits) and falls hard with contention (serialized writers,
       whole-log value revalidation) and with large read sets
       (validation is O(log), paid per clock movement);
     - ETL needs BOTH write-dominance and real contention — that is
       when encounter-time locking's early aborts beat lazy buffering;
     - LSA earns its multi-version overhead on big-read-set phases,
       the more so when writers are actually forcing aborts;
     - TL2 gets a bonus when partial aborts are salvaging work (its
       checkpointed traversals), raising the displacement bar. *)
  let score i s =
    let rs_norm = clamp01 (s.mean_read_set /. 256.) in
    if i = tl2 then 0.50 +. (0.20 *. s.salvage_rate)
    else if i = lsa then
      0.25 +. (0.35 *. rs_norm) +. (0.20 *. s.abort_rate *. s.ro_rate)
    else if i = norec then
      0.30 +. (0.45 *. s.ro_rate) -. (1.20 *. s.abort_rate)
      -. (0.30 *. rs_norm)
    else 0.35 +. (0.45 *. (1. -. s.ro_rate) *. clamp01 (4. *. s.abort_rate))

  type config = {
    margin : float;  (** challenger must beat the champion by this *)
    streak : int;  (** ... for this many consecutive epochs *)
    dwell : int;  (** epochs a fresh champion is unchallengeable *)
  }

  let default_config = { margin = 0.05; streak = 2; dwell = 3 }

  type state = {
    champion : int;
    challenger : int;  (** current challenger, or -1 *)
    streak : int;  (** consecutive epochs the challenger has won *)
    dwell : int;  (** dwell epochs remaining *)
  }

  let initial = { champion = tl2; challenger = -1; streak = 0; dwell = 0 }
  let champion st = st.champion

  (* One epoch decision. Hysteresis: a single-epoch blip never
     switches (streak), a near-tie never switches (margin), and a
     switch is followed by a dwell window during which challenges are
     ignored — the no-thrash properties the flap test pins down. *)
  let decide cfg st s =
    if st.dwell > 0 then { st with dwell = st.dwell - 1; challenger = -1; streak = 0 }
    else begin
      let best = ref st.champion and best_score = ref (score st.champion s) in
      for i = 0 to substrate_count - 1 do
        let sc = score i s in
        if sc > !best_score then begin
          best := i;
          best_score := sc
        end
      done;
      if
        !best = st.champion
        || !best_score < score st.champion s +. cfg.margin
      then { st with challenger = -1; streak = 0 }
      else if !best = st.challenger then begin
        let streak = st.streak + 1 in
        if streak >= cfg.streak then
          { champion = !best; challenger = -1; streak = 0; dwell = cfg.dwell }
        else { st with streak }
      end
      else { st with challenger = !best; streak = 1 }
    end
end

module type CONFIG = sig
  val name : string

  (** Committed transactions per epoch (approximate: commit counts are
      flushed from domain-local tallies in batches). *)
  val epoch_length : int

  val policy : Policy.config
end

module Make (C : CONFIG) : Runtime_intf.S = struct
  module Tl2 = Sb7_stm.Tl2
  module Lsa = Sb7_stm.Lsa
  module Norec = Sb7_stm.Norec
  module Etl = Sb7_stm.Etl
  module Stm_stats = Sb7_stm.Stm_stats
  module Padded_atomic = Sb7_stm.Padded_atomic
  module D_tl2 = Ro_dispatch.Make (Tl2)
  module D_lsa = Ro_dispatch.Make (Lsa)
  module D_norec = Ro_dispatch.Make (Norec)
  module D_etl = Ro_dispatch.Make (Etl)

  let name = C.name

  type 'a tvar = {
    t_tl2 : 'a Tl2.tvar;
    t_lsa : 'a Lsa.tvar;
    t_norec : 'a Norec.tvar;
    t_etl : 'a Etl.tvar;
  }

  (* Which substrate's component is authoritative. Only ever changed
     inside the quiesce fence, after migration completes (release via
     the SC [Atomic.set]); transactions sample it after raising their
     fence flag. *)
  let champion = Atomic.make Policy.tl2

  (* A switch in progress: transactions must not start. *)
  let pending = Atomic.make false

  let read_at : type a. a tvar -> int -> a =
   fun tv i ->
    if i = Policy.tl2 then Tl2.read tv.t_tl2
    else if i = Policy.lsa then Lsa.read tv.t_lsa
    else if i = Policy.norec then Norec.read tv.t_norec
    else Etl.read tv.t_etl

  let write_at : type a. a tvar -> int -> a -> unit =
   fun tv i v ->
    if i = Policy.tl2 then Tl2.write tv.t_tl2 v
    else if i = Policy.lsa then Lsa.write tv.t_lsa v
    else if i = Policy.norec then Norec.write tv.t_norec v
    else Etl.write tv.t_etl v

  (* Every tvar registers a monomorphic migration closure; a switch
     folds the list inside the fence (no transactions running), using
     the substrates' non-transactional read/write. Aborted creators
     can leak a registered tvar nothing references — it migrates
     harmlessly. *)
  let reg_lock = Mutex.create ()
  let migrations : (int -> int -> unit) list ref = ref []

  let make v =
    let tv =
      {
        t_tl2 = Tl2.make v;
        t_lsa = Lsa.make v;
        t_norec = Norec.make v;
        t_etl = Etl.make v;
      }
    in
    let migrate from_ to_ = write_at tv to_ (read_at tv from_) in
    Mutex.lock reg_lock;
    migrations := migrate :: !migrations;
    Mutex.unlock reg_lock;
    tv

  let read tv = read_at tv (Atomic.get champion)
  let write tv v = write_at tv (Atomic.get champion) v

  (* Per-domain fence flag (padded: flags are spun on cross-domain)
     plus domain-local transaction depth and commit tally. *)
  type dstate = {
    flag : Padded_atomic.t;
    mutable depth : int;
    mutable local_commits : int;
  }

  let dstates_lock = Mutex.create ()
  let dstates : dstate list ref = ref []

  let dkey : dstate Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        let d = { flag = Padded_atomic.make 0; depth = 0; local_commits = 0 } in
        Mutex.lock dstates_lock;
        dstates := d :: !dstates;
        Mutex.unlock dstates_lock;
        d)

  (* Epoch accounting: domain-local commit tallies flushed to a shared
     pool in batches, so the fast path has no shared RMW. *)
  let flush_every = max 1 (C.epoch_length / 8)
  let commit_pool = Padded_atomic.make 0
  let deciding = Atomic.make false

  (* Decider-only state (guarded by the [deciding] CAS, which also
     carries the happens-before edge between successive deciders):
     policy state, champion-occupancy tallies, and the per-substrate
     stats snapshot at the last epoch boundary. *)
  let policy_state = ref Policy.initial
  let occupancy = Array.make Policy.substrate_count 0
  let prev_snap = Array.make Policy.substrate_count Stm_stats.zero
  let own_stats = Stm_stats.create ()

  let substrate_snapshot i =
    if i = Policy.tl2 then Tl2.stats ()
    else if i = Policy.lsa then Lsa.stats ()
    else if i = Policy.norec then Norec.stats ()
    else Etl.stats ()

  let signals_of_delta ~(prev : Stm_stats.snapshot)
      ~(cur : Stm_stats.snapshot) : Policy.signals =
    let d f = float_of_int (max 0 (f cur - f prev)) in
    let commits = d (fun (s : Stm_stats.snapshot) -> s.commits) in
    let aborts = d (fun (s : Stm_stats.snapshot) -> s.aborts) in
    let ro = d (fun (s : Stm_stats.snapshot) -> s.read_only_commits) in
    let entries = d (fun (s : Stm_stats.snapshot) -> s.read_set_entries) in
    let partials = d (fun (s : Stm_stats.snapshot) -> s.partial_aborts) in
    {
      abort_rate = aborts /. Float.max 1. (commits +. aborts);
      ro_rate = ro /. Float.max 1. commits;
      (* Read-only commits keep no read set, so average over the
         update transactions that actually logged one. *)
      mean_read_set = entries /. Float.max 1. (commits -. ro);
      salvage_rate = partials /. Float.max 1. (partials +. aborts);
    }

  (* The quiesce fence. Publish [pending], drain every domain's flag,
     migrate old -> new, crown, release. Runs between the decider's
     own transactions, so its flag is already down; entering
     transactions on other domains park until [pending] drops. *)
  let switch_to ~from_ ~to_ =
    Atomic.set pending true;
    Mutex.lock dstates_lock;
    let flags = !dstates in
    Mutex.unlock dstates_lock;
    List.iter
      (fun d ->
        while Padded_atomic.get d.flag = 1 do
          Domain.cpu_relax ()
        done)
      flags;
    Mutex.lock reg_lock;
    let migs = !migrations in
    Mutex.unlock reg_lock;
    List.iter (fun m -> m from_ to_) migs;
    (* The migration itself committed into the target substrate; reset
       its epoch baseline so the copy traffic is not read as signal. *)
    prev_snap.(to_) <- substrate_snapshot to_;
    Atomic.set champion to_;
    Atomic.set pending false

  let try_decide () =
    if Atomic.compare_and_set deciding false true then begin
      Padded_atomic.set commit_pool 0;
      let champ = Atomic.get champion in
      let cur = substrate_snapshot champ in
      let s = signals_of_delta ~prev:prev_snap.(champ) ~cur in
      prev_snap.(champ) <- cur;
      occupancy.(champ) <- occupancy.(champ) + 1;
      Stm_stats.record_epoch_decision own_stats;
      let st = Policy.decide C.policy !policy_state s in
      policy_state := st;
      let next = Policy.champion st in
      if next <> champ then begin
        switch_to ~from_:champ ~to_:next;
        Stm_stats.record_substrate_switch own_stats
      end;
      Atomic.set deciding false
    end

  let note_commit d =
    d.local_commits <- d.local_commits + 1;
    if d.local_commits >= flush_every then begin
      d.local_commits <- 0;
      let total =
        Padded_atomic.fetch_and_add commit_pool flush_every + flush_every
      in
      if total >= C.epoch_length then try_decide ()
    end

  let rec enter d =
    Padded_atomic.set d.flag 1;
    if Atomic.get pending then begin
      (* A switch is draining the fence: step back out and park. *)
      Padded_atomic.set d.flag 0;
      while Atomic.get pending do
        Domain.cpu_relax ()
      done;
      enter d
    end

  let dispatch ~profile champ f =
    if champ = Policy.tl2 then D_tl2.atomic ~profile f
    else if champ = Policy.lsa then D_lsa.atomic ~profile f
    else if champ = Policy.norec then D_norec.atomic ~profile f
    else D_etl.atomic ~profile f

  let atomic ~profile f =
    let d = Domain.DLS.get dkey in
    if d.depth > 0 then
      (* Nested: the fence is already held; flatten into the enclosing
         substrate transaction (the substrates all flatten). *)
      dispatch ~profile (Atomic.get champion) f
    else begin
      enter d;
      d.depth <- 1;
      match dispatch ~profile (Atomic.get champion) f with
      | result ->
        d.depth <- 0;
        Padded_atomic.set d.flag 0;
        note_commit d;
        result
      | exception exn ->
        d.depth <- 0;
        Padded_atomic.set d.flag 0;
        raise exn
    end

  (* Checkpoint capability: dispatched to the champion, which cannot
     change under a live transaction (the fence). TL2, LSA and ETL
     salvage; a NOrec champion quietly falls back to full aborts —
     closures already handle [resume () = (0, 0)]. *)
  let partial_abort = true

  let checkpoint ~acc =
    let champ = Atomic.get champion in
    if champ = Policy.tl2 then D_tl2.checkpoint ~acc
    else if champ = Policy.lsa then D_lsa.checkpoint ~acc
    else if champ = Policy.norec then D_norec.checkpoint ~acc
    else D_etl.checkpoint ~acc

  let resume () =
    let champ = Atomic.get champion in
    if champ = Policy.tl2 then D_tl2.resume ()
    else if champ = Policy.lsa then D_lsa.resume ()
    else if champ = Policy.norec then D_norec.resume ()
    else D_etl.resume ()

  (* Counters: the four substrates' totals summed (only the champion
     accrues traffic at any time; runs reset first, so the sum is this
     run's work) plus the meta-runtime's own epoch/switch events and
     the champion-occupancy breakdown. *)
  let stats () =
    let combined = ref (Stm_stats.snapshot own_stats) in
    for i = 0 to Policy.substrate_count - 1 do
      combined := Stm_stats.add !combined (substrate_snapshot i)
    done;
    Stm_stats.to_assoc !combined
    @ List.init Policy.substrate_count (fun i ->
          ("champion_epochs_" ^ Policy.substrate_names.(i), occupancy.(i)))

  (* Reset contract (like every runtime): called quiescent, between
     runs. Re-crowns TL2 — migrating the authoritative state back so
     a run never starts on a stale component — and zeroes substrate
     stats, dispatch demotions, policy state and epoch baselines. *)
  let reset_stats () =
    let champ = Atomic.get champion in
    if champ <> Policy.tl2 then switch_to ~from_:champ ~to_:Policy.tl2;
    D_tl2.reset ();
    D_lsa.reset ();
    D_norec.reset ();
    D_etl.reset ();
    Tl2.reset_stats ();
    Lsa.reset_stats ();
    Norec.reset_stats ();
    Etl.reset_stats ();
    Stm_stats.reset own_stats;
    Array.fill occupancy 0 Policy.substrate_count 0;
    for i = 0 to Policy.substrate_count - 1 do
      prev_snap.(i) <- substrate_snapshot i
    done;
    policy_state := Policy.initial;
    Padded_atomic.set commit_pool 0
end

(* The registered instance: epochs of 256 commits, default hysteresis.
   Short enough to catch the quick bench's phase flips, long enough
   that the signals are statistics rather than noise. *)
include Make (struct
  let name = "tournament"
  let epoch_length = 256
  let policy = Policy.default_config
end)
