(** The no-synchronization runtime: plain references, [atomic] runs the
    operation directly. Only safe single-threaded; used for setup
    validation, deterministic tests and as the bechamel micro-benchmark
    baseline. *)

module Counter = Sb7_stm.Sharded_counter

let name = "seq"

type 'a tvar = 'a ref

let make v = ref v
let read tv = !tv
let write tv v = tv := v

let operations = Counter.create ()
let commits = Counter.create ()

let atomic ~profile f =
  ignore (profile : Op_profile.t);
  Counter.incr operations;
  let result = f () in
  (* Counted only on normal return, mirroring the STM runtimes where an
     operation that raises (e.g. [Operation_failed]) rolls back and is
     not a commit. *)
  Counter.incr commits;
  result

(* Sequential execution never conflicts, so there is nothing to
   salvage: full-abort (trivially, no-abort) semantics. *)
let partial_abort = false
let checkpoint ~acc = ignore acc
let resume () = (0, 0)

let stats () =
  [
    ("operations", Counter.get operations);
    ("commits", Counter.get commits);
    ("aborts", 0);
  ]

let reset_stats () =
  Counter.reset operations;
  Counter.reset commits
