(** The ASTM-style STM as a benchmark runtime: every operation is one
    flat transaction, exactly the "straightforward approach of an
    average programmer" the paper evaluates. The lock profile is
    ignored; dispatch still goes through {!Ro_dispatch} for uniformity,
    but ASTM's [atomic_ro] is a documented pass-through to [atomic]
    (no read-only fast path — that IS the measured pathology), so
    read-only profiles change nothing and demotion never fires. *)

module Stm = Sb7_stm.Astm
module D = Ro_dispatch.Make (Stm)

let name = Stm.name

type 'a tvar = 'a Stm.tvar

let make = Stm.make
let read = Stm.read
let write = Stm.write
let atomic = D.atomic
let partial_abort = D.partial_abort
let checkpoint = D.checkpoint
let resume = D.resume

let stats () = Sb7_stm.Stm_stats.to_assoc (Stm.stats ())

let reset_stats () =
  D.reset ();
  Stm.reset_stats ()
