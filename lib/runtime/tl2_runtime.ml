(** The TL2 STM as a benchmark runtime: every operation is one flat
    transaction. The lock domains of the profile are ignored (that is
    the STM's selling point), but [Op_profile.read_only] selects TL2's
    zero-log read-only mode, with adaptive demotion to an update
    transaction if the profile lied (see {!Ro_dispatch}). *)

module Stm = Sb7_stm.Tl2
module D = Ro_dispatch.Make (Stm)

let name = Stm.name

type 'a tvar = 'a Stm.tvar

let make = Stm.make
let read = Stm.read
let write = Stm.write
let atomic = D.atomic
let partial_abort = D.partial_abort
let checkpoint = D.checkpoint
let resume = D.resume

let stats () = Sb7_stm.Stm_stats.to_assoc (Stm.stats ())

let reset_stats () =
  D.reset ();
  Stm.reset_stats ()
