(* See region_ctx.mli. The context is one int ref per domain: tvar
   creation is orders of magnitude rarer than tvar access, so a DLS
   lookup per [with_region] / per [R.make] is irrelevant, and
   domain-locality means structure-modification operations tagging
   their freshly created objects on worker domains never interfere. *)

let unknown = -1

let key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref unknown)

let current_code () = !(Domain.DLS.get key)

let current () =
  match Region.of_int (current_code ()) with
  | Some _ as r -> r
  | None -> None

let with_region region f =
  let cell = Domain.DLS.get key in
  let saved = !cell in
  cell := Region.to_int region;
  Fun.protect ~finally:(fun () -> cell := saved) f
