(** Runtime lookup by command-line name. *)

type packed = (module Runtime_intf.S)

(** All strategies, in presentation order: seq, coarse, medium, fine,
    tl2, lsa, norec, etl, astm, tournament. The single registration
    point — the CLI listings, the quick bench's strategy sweep and the
    sanitizer's check loop all derive from this list. *)
val all : (string * packed) list

val names : string list

val find : string -> (packed, string) result
