(** Offline analysis of sanitizer traces ({!Trace.dump}).

    Three analyses, selected per runtime by {!profile_of_runtime}:

    - {b opacity/snapshot}: replays every transaction attempt —
      committed, rolled back and aborted alike — and verifies it
      observed a consistent snapshot, and that the committed history is
      serializable (multi-version serialization graph acyclicity, plus
      per-tvar version-chain integrity: a fork in a chain is a lost
      update). Runs for every runtime.
    - {b Eraser-style lockset races}: for the lock-based runtimes,
      every shared tvar's accesses must be pairwise ordered by some
      common lock held exclusively on at least one side; the
      acquisition order of ranked locks is checked against the declared
      lock-order table (the same order sb7-lint's R3 enforces
      statically).
    - {b structural sweep}: performed by the harness (it needs the live
      structure); its findings are attached with {!with_structural}. *)

type profile = {
  rollback_on_failure : bool;
      (** the runtime rolls back effects when the operation raises; when
          false (coarse/medium/seq), a rolled-back attempt's writes are
          committed effects and are treated as such by the replay *)
  lockset : bool;  (** run the race / lock-order analyses *)
  ranked_locks : (string * int) list;
      (** lock name -> acquisition rank (lower first); locks outside
          the table (per-tvar locks) are exempt from order checking *)
}

(** Analysis profile of a shipped runtime, by registry name. Unknown
    names get the most conservative profile (no rollback, no locks). *)
val profile_of_runtime : string -> profile

type verdict = {
  domains : int;
  events : int;
  attempts : int;
  committed : int;
  aborted : int;  (** retried internally: conflict / lock restart *)
  rolled_back : int;  (** operation raised (e.g. [Operation_failed]) *)
  structural_commits : int;  (** effective attempts flagged structural *)
  opacity : string list;
  races : string list;
  lock_order : string list;
  structural : string list;
}

val analyze : profile:profile -> Trace.dump -> verdict

(** Attach the harness's structural-sweep findings. *)
val with_structural : verdict -> string list -> verdict

val clean : verdict -> bool

(** Multi-line human report. *)
val summary : verdict -> string

(** Single CSV field (no commas): ["off"] is the caller's business;
    here ["clean"] or ["flagged;opacity=N;races=N;order=N;structural=N"]. *)
val csv_cell : verdict -> string

(** {1 Footprint replay}

    Cross-checks a trace against the statically inferred footprint
    table (lib/core/op_footprint.ml): every read must fall in its
    operation's may-read ∪ may-write region set, every write in the
    may-write set. Tvars without a region note (created outside any
    [Region_ctx.with_region] bracket) and attempts whose operation the
    table does not know are counted, not flagged. *)

type fp_verdict = {
  fp_domains : int;
  fp_attempts : int;
  fp_checked : int;  (** accesses with a known region and operation *)
  fp_unknown_region : int;  (** accesses to tvars with no region note *)
  fp_unknown_op : int;
      (** accesses inside attempts whose operation is not in the table *)
  fp_escape_count : int;
  fp_escapes : string list;  (** deduplicated per (op, region, kind) *)
}

(** [footprint ~table ~region_name dump] — [table] maps an operation
    name to its (may-read, may-write) bitmasks over [Region.to_int]
    bit positions (reads mask must already include writes);
    [region_name] renders a region code for messages. *)
val footprint :
  table:(string -> (int * int) option) ->
  region_name:(int -> string) ->
  Trace.dump ->
  fp_verdict

val fp_clean : fp_verdict -> bool
val fp_summary : fp_verdict -> string
