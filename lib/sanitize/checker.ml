(* Offline trace analysis. See checker.mli for the model.

   Vocabulary used throughout:
   - an "attempt" is one begin..(commit|rollback|next begin) span of a
     stream; its outcome is Committed, Rolledback (the operation raised
     and the runtime unwound) or Aborted (the runtime retried it);
   - an attempt is "effective" when its writes are part of the committed
     history: committed always, rolled-back too under runtimes that do
     not undo effects on failure (coarse/medium/seq);
   - version ids (wids) are globally unique; wid 0 and wids with no
     write event (tvars created mid-trace by [make]) are base versions:
     their writer is unknown but each appears at most once per tvar, so
     version chains still have a single root per tvar. *)

type profile = {
  rollback_on_failure : bool;
  lockset : bool;
  ranked_locks : (string * int) list;
}

(* Rank tables mirror the R3 lock-order declaration enforced statically
   by sb7-lint: structure before domain locks. bin/sb7_sanitize
   cross-checks this against Lint_config at startup. *)
let medium_ranks =
  ("structure", 0)
  :: List.init Sb7_runtime.Op_profile.num_domains (fun i ->
         (Printf.sprintf "domain-%d" i, i + 1))

let profile_of_runtime = function
  | "tl2" | "lsa" | "norec" | "etl" | "astm" | "tournament" ->
    (* ETL's encounter-time vlocks and the tournament's substrate
       locks are internal to the STMs, invisible to the trace: races
       surface through the opacity analyses, not the lockset. *)
    { rollback_on_failure = true; lockset = false; ranked_locks = [] }
  | "fine" ->
    (* per-tvar locks are anonymous: raced-checked but rank-exempt *)
    { rollback_on_failure = true; lockset = true; ranked_locks = [] }
  | "medium" ->
    { rollback_on_failure = false; lockset = true; ranked_locks = medium_ranks }
  | "coarse" ->
    { rollback_on_failure = false; lockset = true;
      ranked_locks = [ ("global", 0) ] }
  | _ (* seq and unknowns *) ->
    { rollback_on_failure = false; lockset = false; ranked_locks = [] }

type verdict = {
  domains : int;
  events : int;
  attempts : int;
  committed : int;
  aborted : int;
  rolled_back : int;
  structural_commits : int;
  opacity : string list;
  races : string list;
  lock_order : string list;
  structural : string list;
}

let with_structural v findings = { v with structural = v.structural @ findings }

let clean v =
  v.opacity = [] && v.races = [] && v.lock_order = [] && v.structural = []

(* Findings are capped per category so a badly broken run produces a
   readable report, with the overflow counted. *)
let max_findings = 10

type findings = {
  mutable msgs : string list; (* reversed *)
  mutable count : int;
}

let new_findings () = { msgs = []; count = 0 }

let add_finding f msg =
  f.count <- f.count + 1;
  if f.count <= max_findings then f.msgs <- msg :: f.msgs

let close_findings f =
  let msgs = List.rev f.msgs in
  if f.count > max_findings then
    msgs @ [ Printf.sprintf "... and %d more" (f.count - max_findings) ]
  else msgs

type outcome = Committed | Rolledback | Aborted

let outcome_name = function
  | Committed -> "committed"
  | Rolledback -> "rolled-back"
  | Aborted -> "aborted"

type attempt = {
  a_domain : int;
  a_seq : int; (* ordinal within its domain's stream, for messages *)
  a_flags : int;
  mutable a_outcome : outcome;
  a_reads : (int, int) Hashtbl.t; (* sid -> first non-own wid observed *)
  mutable a_writes : (int * int * int) list; (* sid, wid, prev; reversed *)
  a_own : (int, unit) Hashtbl.t; (* wids this attempt wrote *)
  mutable a_node : int; (* serialization-graph node id; -1 if not effective *)
}

let describe a =
  Printf.sprintf "domain %d attempt #%d (%s)" a.a_domain a.a_seq
    (outcome_name a.a_outcome)

(* begin; read; write; commit; rollback; acquire; release; partial *)
let arity = [| 4; 3; 4; 3; 1; 3; 3; 3 |]

let analyze ~profile (dump : Trace.dump) =
  let opacity = new_findings () in
  let races = new_findings () in
  let order = new_findings () in

  (* ---- Pass 1: slice streams into attempts. A [tag_partial] event
     truncates the running attempt's event log to a kept prefix, so
     the per-sid read/write tables can only be built once the attempt
     finishes — the events are collected in order first. ------------- *)
  let attempts_rev = ref [] in
  let n_attempts = ref 0 in
  let events = ref 0 in
  Array.iteri
    (fun dom stream ->
      let cur = ref None in
      let seq = ref 0 in
      (* Ordered event log of the current attempt (reused across
         attempts of the stream). *)
      let r_sid = ref (Array.make 64 0) and r_wid = ref (Array.make 64 0) in
      let nr = ref 0 in
      let w_sid = ref (Array.make 16 0)
      and w_wid = ref (Array.make 16 0)
      and w_prev = ref (Array.make 16 0) in
      let nw = ref 0 in
      let push_r sid wid =
        if !nr = Array.length !r_sid then begin
          r_sid := Array.append !r_sid (Array.make !nr 0);
          r_wid := Array.append !r_wid (Array.make !nr 0)
        end;
        !r_sid.(!nr) <- sid;
        !r_wid.(!nr) <- wid;
        incr nr
      in
      let push_w sid wid prev =
        if !nw = Array.length !w_sid then begin
          w_sid := Array.append !w_sid (Array.make !nw 0);
          w_wid := Array.append !w_wid (Array.make !nw 0);
          w_prev := Array.append !w_prev (Array.make !nw 0)
        end;
        !w_sid.(!nw) <- sid;
        !w_wid.(!nw) <- wid;
        !w_prev.(!nw) <- prev;
        incr nw
      in
      let finish outcome =
        match !cur with
        | None -> ()
        | Some a ->
          a.a_outcome <- outcome;
          for j = 0 to !nw - 1 do
            Hashtbl.replace a.a_own !w_wid.(j) ();
            a.a_writes <- (!w_sid.(j), !w_wid.(j), !w_prev.(j)) :: a.a_writes
          done;
          (* Replay the retained reads in order: first non-own wid per
             sid, any later different wid is a non-repeatable read.
             (Own-wid reads can be classified after the fact because
             wids are created at write time — a read can never observe
             an own write that has not happened yet.) *)
          for j = 0 to !nr - 1 do
            let sid = !r_sid.(j) and wid = !r_wid.(j) in
            if not (Hashtbl.mem a.a_own wid) then begin
              match Hashtbl.find_opt a.a_reads sid with
              | None -> Hashtbl.add a.a_reads sid wid
              | Some w0 when w0 = wid -> ()
              | Some w0 ->
                add_finding opacity
                  (Printf.sprintf
                     "non-repeatable read: %s saw tvar %d at version %d, \
                      then at version %d, without writing it"
                     (describe a) sid w0 wid)
            end
          done;
          cur := None
      in
      let i = ref 0 in
      let n = Array.length stream in
      while !i < n do
        let tag = stream.(!i) in
        incr events;
        (if tag = Trace.tag_begin then begin
           (* an unfinished predecessor was aborted and retried *)
           finish Aborted;
           incr seq;
           let a =
             { a_domain = dom; a_seq = !seq; a_flags = stream.(!i + 1);
               a_outcome = Aborted; a_reads = Hashtbl.create 8;
               a_writes = []; a_own = Hashtbl.create 4; a_node = -1 }
           in
           incr n_attempts;
           attempts_rev := a :: !attempts_rev;
           cur := Some a;
           nr := 0;
           nw := 0
         end
         else if tag = Trace.tag_read then begin
           match !cur with
           | None -> () (* read outside any attempt: nothing to check *)
           | Some _ -> push_r stream.(!i + 1) stream.(!i + 2)
         end
         else if tag = Trace.tag_write then begin
           match !cur with
           | None -> ()
           | Some _ -> push_w stream.(!i + 1) stream.(!i + 2) stream.(!i + 3)
         end
         else if tag = Trace.tag_partial then begin
           (* Partial abort: only the announced event prefix survives;
              the same attempt continues. min-guard against malformed
              (synthetic) traces claiming more than was logged. *)
           match !cur with
           | None -> ()
           | Some _ ->
             nr := min !nr stream.(!i + 1);
             nw := min !nw stream.(!i + 2)
         end
         else if tag = Trace.tag_commit then finish Committed
         else if tag = Trace.tag_rollback then finish Rolledback);
        (* acquire/release handled in the lockset pass *)
        i := !i + arity.(tag)
      done;
      finish Aborted)
    dump.streams;
  let attempts = Array.of_list (List.rev !attempts_rev) in

  let committed = ref 0 and aborted = ref 0 and rolled_back = ref 0 in
  Array.iter
    (fun a ->
      match a.a_outcome with
      | Committed -> incr committed
      | Aborted -> incr aborted
      | Rolledback -> incr rolled_back)
    attempts;

  let effective a =
    match a.a_outcome with
    | Committed -> true
    | Rolledback -> not profile.rollback_on_failure
    | Aborted -> false
  in

  let structural_commits = ref 0 in
  Array.iter
    (fun a ->
      if effective a && a.a_flags land Trace.flag_structural <> 0 then
        incr structural_commits)
    attempts;

  (* ---- Pass 2: version chains and the writer index. ---------------- *)
  (* wid -> writing attempt, over ALL attempts (dirty-read detection
     needs aborted writers too). *)
  let wid_writer : (int, attempt) Hashtbl.t = Hashtbl.create 1024 in
  Array.iter
    (fun a ->
      List.iter (fun (_, wid, _) -> Hashtbl.replace wid_writer wid a) a.a_writes)
    attempts;

  (* Per tvar, the successor of each version among effective writes:
     sid -> (prev wid -> wid). Two effective writes sharing a [prev] are
     a fork in the chain — the second overwrote the first without having
     seen it: a lost update. *)
  let succ : (int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun a ->
      if effective a then
        List.iter
          (fun (sid, wid, prev) ->
            let tbl =
              match Hashtbl.find_opt succ sid with
              | Some t -> t
              | None ->
                let t = Hashtbl.create 8 in
                Hashtbl.add succ sid t;
                t
            in
            match Hashtbl.find_opt tbl prev with
            | None -> Hashtbl.add tbl prev wid
            | Some w' when w' = wid -> ()
            | Some w' ->
              add_finding opacity
                (Printf.sprintf
                   "lost update on tvar %d: versions %d (%s) and %d (%s) \
                    both overwrote version %d"
                   sid w'
                   (describe (Hashtbl.find wid_writer w'))
                   wid (describe a) prev))
          (List.rev a.a_writes))
    attempts;

  let effective_writer wid =
    match Hashtbl.find_opt wid_writer wid with
    | Some w when effective w -> Some w
    | _ -> None
  in
  let succ_of sid wid =
    match Hashtbl.find_opt succ sid with
    | None -> None
    | Some tbl -> Hashtbl.find_opt tbl wid
  in

  (* Dirty reads: observing a version whose writer never took effect.
     Buffered runtimes can't produce these; in-place ones only by
     leaking state mid-rollback. *)
  Array.iter
    (fun a ->
      Hashtbl.iter
        (fun sid wid ->
          match Hashtbl.find_opt wid_writer wid with
          | Some w when not (effective w) ->
            add_finding opacity
              (Printf.sprintf
                 "dirty read: %s saw tvar %d at version %d written by %s"
                 (describe a) sid wid (describe w))
          | _ -> ())
        a.a_reads)
    attempts;

  (* ---- Pass 3: multi-version serialization graph over effective
     attempts. Edges: WW (chain adjacency), WR (writer -> reader),
     RW (reader -> writer of the successor version). A topological
     order is a witness serialization; a cycle is a violation. -------- *)
  let nodes = ref [] in
  let n_nodes = ref 0 in
  Array.iter
    (fun a ->
      if effective a then begin
        a.a_node <- !n_nodes;
        incr n_nodes;
        nodes := a :: !nodes
      end)
    attempts;
  let node_attempt = Array.of_list (List.rev !nodes) in
  let m = !n_nodes in
  let adj = Array.make m [] in
  let indeg = Array.make m 0 in
  let edge_seen : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
  let add_edge u v =
    if u <> v && u >= 0 && v >= 0 then begin
      let key = (u * m) + v in
      if not (Hashtbl.mem edge_seen key) then begin
        Hashtbl.add edge_seen key ();
        adj.(u) <- v :: adj.(u);
        indeg.(v) <- indeg.(v) + 1
      end
    end
  in
  let node_of_wid wid =
    match effective_writer wid with Some w -> w.a_node | None -> -1
  in
  Array.iter
    (fun a ->
      if effective a then
        List.iter
          (fun (sid, wid, prev) ->
            ignore sid;
            add_edge (node_of_wid prev) (node_of_wid wid))
          a.a_writes)
    attempts;
  Array.iter
    (fun a ->
      if effective a then
        Hashtbl.iter
          (fun sid wid ->
            add_edge (node_of_wid wid) a.a_node;
            match succ_of sid wid with
            | Some w2 -> add_edge a.a_node (node_of_wid w2)
            | None -> ())
          a.a_reads)
    attempts;

  (* Kahn. [pos] is the serialization position of each node. *)
  let pos = Array.make m max_int in
  let q = Queue.create () in
  let indeg' = Array.copy indeg in
  Array.iteri (fun u d -> if d = 0 then Queue.add u q) indeg';
  let placed = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    pos.(u) <- !placed;
    incr placed;
    List.iter
      (fun v ->
        indeg'.(v) <- indeg'.(v) - 1;
        if indeg'.(v) = 0 then Queue.add v q)
      adj.(u)
  done;
  let cyclic = !placed < m in
  if cyclic then begin
    let members = ref [] and n_members = ref 0 in
    Array.iteri
      (fun u d ->
        if d > 0 && pos.(u) = max_int then begin
          incr n_members;
          if !n_members <= 5 then members := describe node_attempt.(u) :: !members
        end)
      indeg';
    add_finding opacity
      (Printf.sprintf
         "committed history is not serializable: %d transactions form \
          dependency cycles (%s%s)"
         !n_members
         (String.concat ", " (List.rev !members))
         (if !n_members > 5 then ", ..." else ""))
  end;

  (* ---- Pass 4: snapshot windows. Every attempt — aborted ones
     included, that is the opacity part — must fit its reads into one
     instant of the witness serialization: each read of version [w] is
     valid from pos(writer w) until pos(writer (succ w)). An empty
     intersection is confirmed as a real violation via reachability in
     the graph (a single topological order can misorder concurrent
     commits, so the window test alone only raises a suspicion). Skipped
     when the graph is cyclic: there is no witness order to test
     against, and the cycle is already reported. ---------------------- *)
  if not cyclic then begin
    let reachable src dst =
      if src = dst then true
      else begin
        let seen = Hashtbl.create 64 in
        let stack = ref [ src ] in
        let found = ref false in
        while not !found && !stack <> [] do
          match !stack with
          | [] -> ()
          | u :: rest ->
            stack := rest;
            if not (Hashtbl.mem seen u) then begin
              Hashtbl.add seen u ();
              List.iter
                (fun v ->
                  if v = dst then found := true
                  else if not (Hashtbl.mem seen v) then stack := v :: !stack)
                adj.(u)
            end
        done;
        !found
      end
    in
    Array.iter
      (fun a ->
        if Hashtbl.length a.a_reads > 1 then begin
          (* lo: latest writer among observed versions; hi: earliest
             overwriter. Base versions (unknown writer) are valid from
             the start of time; versions never overwritten, to the end. *)
          let maxlo = ref (-1) and lo_read = ref None in
          let minhi = ref max_int and hi_read = ref None in
          Hashtbl.iter
            (fun sid wid ->
              (match node_of_wid wid with
              | -1 -> ()
              | u ->
                if pos.(u) > !maxlo then begin
                  maxlo := pos.(u);
                  lo_read := Some (sid, wid, u)
                end);
              match succ_of sid wid with
              | None -> ()
              | Some w2 -> (
                match node_of_wid w2 with
                | -1 -> ()
                | u ->
                  if pos.(u) < !minhi then begin
                    minhi := pos.(u);
                    hi_read := Some (sid, wid, u)
                  end))
            a.a_reads;
          match (!lo_read, !hi_read) with
          | Some (lo_sid, lo_wid, lo_node), Some (hi_sid, hi_wid, hi_node)
            when !maxlo >= !minhi
                 && (lo_sid, lo_wid) <> (hi_sid, hi_wid)
                 && reachable hi_node lo_node ->
            add_finding opacity
              (Printf.sprintf
                 "inconsistent snapshot: %s read tvar %d at version %d, \
                  already overwritten by %s, together with tvar %d at \
                  version %d, written only later by %s"
                 (describe a) hi_sid hi_wid
                 (describe node_attempt.(hi_node))
                 lo_sid lo_wid
                 (describe node_attempt.(lo_node)))
          | _ -> ()
        end)
      attempts
  end;

  (* ---- Pass 5: lockset race + lock-order analysis. ----------------- *)
  if profile.lockset then begin
    let lock_name uid =
      if uid >= Sb7_rwlock.Lock_hooks.anonymous_base then
        Printf.sprintf "tvar-lock#%d" (uid - Sb7_rwlock.Lock_hooks.anonymous_base)
      else
        match List.assoc_opt uid dump.locks with
        | Some n -> n
        | None -> Printf.sprintf "lock#%d" uid
    in
    let rank_of =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (uid, name) ->
          match List.assoc_opt name profile.ranked_locks with
          | Some r -> Hashtbl.add tbl uid r
          | None -> ())
        dump.locks;
      fun uid -> Hashtbl.find_opt tbl uid
    in
    (* Access signature = the multiset of locks held at the access,
       each with the strongest mode it is held in. Per tvar we bucket
       accesses by signature and record which domains and access kinds
       hit each bucket; the pairwise check below then needs only the
       (few) distinct signatures, not the (many) accesses. *)
    let sigs : (int, (string, (int * bool) list * bool ref * int ref) Hashtbl.t)
        Hashtbl.t =
      Hashtbl.create 256
    in
    let order_reported = Hashtbl.create 16 in
    Array.iteri
      (fun dom stream ->
        let held : (int, bool) Hashtbl.t = Hashtbl.create 8 in
        let cur_key = ref "" in
        let cur_locks = ref [] in
        let dirty = ref false in
        let refresh () =
          if !dirty then begin
            let l =
              Hashtbl.fold (fun uid excl acc -> (uid, excl) :: acc) held []
            in
            let l = List.sort compare l in
            cur_locks := l;
            cur_key :=
              String.concat ";"
                (List.map
                   (fun (uid, excl) ->
                     Printf.sprintf "%d%c" uid (if excl then 'W' else 'R'))
                   l);
            dirty := false
          end
        in
        let record sid ~write =
          refresh ();
          let per_sid =
            match Hashtbl.find_opt sigs sid with
            | Some t -> t
            | None ->
              let t = Hashtbl.create 4 in
              Hashtbl.add sigs sid t;
              t
          in
          match Hashtbl.find_opt per_sid !cur_key with
          | Some (_, w, doms) ->
            if write then w := true;
            doms := !doms lor (1 lsl dom)
          | None ->
            Hashtbl.add per_sid !cur_key (!cur_locks, ref write, ref (1 lsl dom))
        in
        let i = ref 0 in
        let n = Array.length stream in
        while !i < n do
          let tag = stream.(!i) in
          (if tag = Trace.tag_acquire then begin
             let uid = stream.(!i + 1) in
             let excl = stream.(!i + 2) = 1 in
             (match rank_of uid with
             | None -> ()
             | Some r ->
               Hashtbl.iter
                 (fun held_uid _ ->
                   match rank_of held_uid with
                   | Some r' when r' > r ->
                     let key = (held_uid, uid) in
                     if not (Hashtbl.mem order_reported key) then begin
                       Hashtbl.add order_reported key ();
                       add_finding order
                         (Printf.sprintf
                            "lock-order violation on domain %d: acquired \
                             %s while holding %s (declared order: %s first)"
                            dom (lock_name uid) (lock_name held_uid)
                            (lock_name uid))
                     end
                   | _ -> ())
                 held);
             (* re-entrant read->write upgrade keeps the strongest mode *)
             let excl =
               match Hashtbl.find_opt held uid with
               | Some true -> true
               | _ -> excl
             in
             Hashtbl.replace held uid excl;
             dirty := true
           end
           else if tag = Trace.tag_release then begin
             Hashtbl.remove held (stream.(!i + 1));
             dirty := true
           end
           else if tag = Trace.tag_read then record stream.(!i + 1) ~write:false
           else if tag = Trace.tag_write then record stream.(!i + 1) ~write:true);
          i := !i + arity.(tag)
        done)
      dump.streams;
    (* Pairwise signature check. A pair of accesses (at least one a
       write, from two different domains) is ordered iff the two
       signatures share a lock that at least one side holds exclusively.
       Note plain lockset intersection is NOT the criterion: medium's
       structural ops hold structure:W while traversals hold
       structure:R + domain:W — disjoint write-locks, yet perfectly
       ordered by the shared structure lock. *)
    let protects (l1 : (int * bool) list) (l2 : (int * bool) list) =
      List.exists
        (fun (uid, excl) ->
          match List.assoc_opt uid l2 with
          | Some excl2 -> excl || excl2
          | None -> false)
        l1
    in
    let multi_bit x = x land (x - 1) <> 0 in
    let sig_str locks =
      if locks = [] then "no locks"
      else
        String.concat ","
          (List.map
             (fun (uid, excl) ->
               Printf.sprintf "%s:%c" (lock_name uid) (if excl then 'W' else 'R'))
             locks)
    in
    Hashtbl.iter
      (fun sid per_sid ->
        let buckets =
          Hashtbl.fold
            (fun _ (locks, w, doms) acc -> (locks, !w, !doms) :: acc)
            per_sid []
        in
        let rec pairs = function
          | [] -> ()
          | ((l1, w1, d1) as b1) :: rest ->
            List.iter
              (fun (l2, w2, d2) ->
                if (w1 || w2) && multi_bit (d1 lor d2) && not (protects l1 l2)
                then
                  add_finding races
                    (Printf.sprintf
                       "data race on tvar %d: %s access under [%s] vs %s \
                        access under [%s] share no ordering lock"
                       sid
                       (if w1 then "write" else "read")
                       (sig_str l1)
                       (if w2 then "write" else "read")
                       (sig_str l2)))
              (b1 :: rest);
            pairs rest
        in
        pairs buckets)
      sigs
  end;

  {
    domains = Array.length dump.streams;
    events = !events;
    attempts = !n_attempts;
    committed = !committed;
    aborted = !aborted;
    rolled_back = !rolled_back;
    structural_commits = !structural_commits;
    opacity = close_findings opacity;
    races = close_findings races;
    lock_order = close_findings order;
    structural = [];
  }

let summary v =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "sanitizer: %d domains, %d events, %d attempts (%d committed, %d \
        aborted, %d rolled back, %d structural commits)\n"
       v.domains v.events v.attempts v.committed v.aborted v.rolled_back
       v.structural_commits);
  let section name msgs =
    Buffer.add_string b
      (Printf.sprintf "  %-12s %s\n" (name ^ ":")
         (if msgs = [] then "clean"
          else Printf.sprintf "%d finding(s)" (List.length msgs)));
    List.iter (fun m -> Buffer.add_string b (Printf.sprintf "    - %s\n" m)) msgs
  in
  section "opacity" v.opacity;
  section "races" v.races;
  section "lock-order" v.lock_order;
  section "structural" v.structural;
  Buffer.contents b

let csv_cell v =
  if clean v then "clean"
  else
    Printf.sprintf "flagged;opacity=%d;races=%d;order=%d;structural=%d"
      (List.length v.opacity) (List.length v.races)
      (List.length v.lock_order)
      (List.length v.structural)

(* ---- Footprint replay: every traced tvar access must fall inside the
   operation's static may-footprint (lib/core/op_footprint.ml). The
   table is passed in as data — op name -> (may-read mask, may-write
   mask) over Region.to_int bit positions — so this module stays free
   of a dependency on the core. ---------------------------------------- *)

type fp_verdict = {
  fp_domains : int;
  fp_attempts : int;
  fp_checked : int;  (** accesses with a known region and operation *)
  fp_unknown_region : int;  (** accesses to tvars with no region note *)
  fp_unknown_op : int;
      (** accesses inside attempts whose operation is not in the table
          (or whose begin predates op tagging) *)
  fp_escape_count : int;
  fp_escapes : string list;  (** deduplicated per (op, region, kind) *)
}

let fp_clean v = v.fp_escape_count = 0

let footprint ~table ~region_name (dump : Trace.dump) =
  let op_names = Hashtbl.create 64 in
  List.iter (fun (id, name) -> Hashtbl.add op_names id name) dump.Trace.ops;
  let sid_region = Hashtbl.create 4096 in
  Array.iter
    (fun (sid, region) ->
      if region >= 0 then Hashtbl.replace sid_region sid region)
    dump.Trace.regions;
  let attempts = ref 0 in
  let checked = ref 0 in
  let unknown_region = ref 0 in
  let unknown_op = ref 0 in
  let escape_count = ref 0 in
  let escapes = new_findings () in
  let seen : (string * int * bool, unit) Hashtbl.t = Hashtbl.create 16 in
  let escape ~op ~region ~write ~sid =
    incr escape_count;
    let key = (op, region, write) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      add_finding escapes
        (Printf.sprintf
           "footprint escape: operation %s %s tvar %d in region %s, \
            outside its static may-%s set"
           op
           (if write then "wrote" else "read")
           sid (region_name region)
           (if write then "write" else "read"))
    end
  in
  Array.iter
    (fun stream ->
      (* (name, read mask, write mask) of the current attempt's
         operation; None when unknown or outside the table. *)
      let cur = ref None in
      let i = ref 0 in
      let n = Array.length stream in
      while !i < n do
        let tag = stream.(!i) in
        (if tag = Trace.tag_begin then begin
           incr attempts;
           cur :=
             (match Hashtbl.find_opt op_names stream.(!i + 3) with
             | None -> None
             | Some name -> (
               match table name with
               | None -> None
               | Some (rmask, wmask) -> Some (name, rmask, wmask)))
         end
         else if tag = Trace.tag_read || tag = Trace.tag_write then begin
           let write = tag = Trace.tag_write in
           match !cur with
           | None -> incr unknown_op
           | Some (op, rmask, wmask) -> (
             let sid = stream.(!i + 1) in
             match Hashtbl.find_opt sid_region sid with
             | None -> incr unknown_region
             | Some region ->
               incr checked;
               let mask = if write then wmask else rmask in
               if mask land (1 lsl region) = 0 then
                 escape ~op ~region ~write ~sid)
         end);
        i := !i + arity.(tag)
      done)
    dump.Trace.streams;
  {
    fp_domains = Array.length dump.Trace.streams;
    fp_attempts = !attempts;
    fp_checked = !checked;
    fp_unknown_region = !unknown_region;
    fp_unknown_op = !unknown_op;
    fp_escape_count = !escape_count;
    fp_escapes = close_findings escapes;
  }

let fp_summary v =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "footprint: %d domains, %d attempts, %d accesses checked (%d \
        unknown-region, %d unknown-op), %d escape(s)\n"
       v.fp_domains v.fp_attempts v.fp_checked v.fp_unknown_region
       v.fp_unknown_op v.fp_escape_count);
  List.iter
    (fun m -> Buffer.add_string b (Printf.sprintf "    - %s\n" m))
    v.fp_escapes;
  Buffer.contents b
