(** [Sanitize.Make (R)] — a drop-in instrumented runtime.

    A wrapped tvar is an inner tvar holding one immutable cell
    [{ v; wid; sid }]: the value, the write id identifying the exact
    version a read observed, and the stable trace id of the tvar
    itself. Because the cell is a single immutable OCaml block, even a
    racy runtime can never deliver a torn (value of one version, id of
    another) observation — and because the tvar holds the cell
    directly, a disabled-tracing read costs exactly one extra
    dependent load over the bare runtime (the cell block) plus a
    boolean check. Version 0 means "written while tracing was off"
    (initial values included), so warmup and setup writes need no
    events.

    The bechamel pair [tl2-ro-read-64-bare] /
    [tl2-ro-read-64-sanitize-off] keeps the "cheap when off" claim
    honest (see docs/SANITIZER.md).

    Sanitize-mode semantics differ from the bare runtime in one
    deliberate way: [write] first performs an inner [R.read] to carry
    the stable [sid] forward and capture the overwritten version
    ([prev]), which under TL2/LSA/ASTM adds written-only tvars to the
    read set (slightly stricter conflict detection) and under the fine
    runtime takes the read lock before upgrading. Both are
    conservative: they can only turn a success into a retry, never
    mask a bug. The [prev] links give the checker the exact per-tvar
    version order without assuming anything about the runtime's
    internals. *)

module Make (R : Sb7_runtime.Runtime_intf.S) = struct
  let name = R.name

  type 'a cell = { v : 'a; wid : int; sid : int }
  type 'a tvar = 'a cell R.tvar

  (* Trace tvar ids: unique across domains (chunked allocator),
     independent of the wrapped runtime's own ids. *)
  let sids = Sb7_stm.Tvar_id.create ()

  let make v =
    let wid = if !Trace.on then Trace.next_wid () else 0 in
    let sid = Sb7_stm.Tvar_id.fresh sids in
    (* Region notes feed the [sb7-sanitize footprint] replay; recorded
       unconditionally (setup runs with tracing off but its tvars live
       through every traced phase). *)
    Trace.note_region ~sid ~region:(Sb7_runtime.Region_ctx.current_code ());
    R.make { v; wid; sid }

  (* Per-domain bookkeeping for partial-abort events: how many read
     and write events the current attempt has emitted, and those two
     counts as they stood at each checkpoint. When the wrapped runtime
     resumes from checkpoint [n], the trace must state exactly which
     event prefix survived — [cp_reads.(n-1)] / [cp_writes.(n-1)]. *)
  type cp_state = {
    mutable reads : int;
    mutable writes : int;
    mutable cp_reads : int array;
    mutable cp_writes : int array;
    mutable ncp : int;
  }

  let cp_key : cp_state Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        {
          reads = 0;
          writes = 0;
          cp_reads = Array.make 16 0;
          cp_writes = Array.make 16 0;
          ncp = 0;
        })

  let read tv =
    let c = R.read tv in
    if !Trace.on then begin
      Trace.on_read ~sid:c.sid ~wid:c.wid;
      let cp = Domain.DLS.get cp_key in
      cp.reads <- cp.reads + 1
    end;
    c.v

  let write tv v =
    let c = R.read tv in
    if !Trace.on then begin
      let wid = Trace.next_wid () in
      R.write tv { v; wid; sid = c.sid };
      Trace.on_write ~sid:c.sid ~wid ~prev:c.wid;
      let cp = Domain.DLS.get cp_key in
      cp.writes <- cp.writes + 1
    end
    else R.write tv { v; wid = 0; sid = c.sid }

  let partial_abort = R.partial_abort

  (* Mirror the runtime's mark stack: the wrapper records the emitted
     event counts at every checkpoint so a later resume can be traced
     as an exact event-prefix truncation. Misalignment is impossible
     where it matters: whenever the inner runtime dropped the mark (no
     transaction, read-only mode, capability off), its [resume] reports
     a fresh attempt and these recordings are never consulted. *)
  let checkpoint ~acc =
    if !Trace.on then begin
      let cp = Domain.DLS.get cp_key in
      let n = cp.ncp in
      if n = Array.length cp.cp_reads then begin
        let grow a = Array.append a (Array.make n 0) in
        cp.cp_reads <- grow cp.cp_reads;
        cp.cp_writes <- grow cp.cp_writes
      end;
      cp.cp_reads.(n) <- cp.reads;
      cp.cp_writes.(n) <- cp.writes;
      cp.ncp <- n + 1
    end;
    R.checkpoint ~acc

  let resume = R.resume

  (* Nesting depth: operations occasionally run an inner [R.atomic]
     that the runtimes flatten into the enclosing transaction; only the
     outermost wrapper emits attempt boundaries, or a flattened inner
     call would masquerade as an aborted attempt. *)
  let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

  let atomic ~profile f =
    if not !Trace.on then R.atomic ~profile f
    else begin
      let depth = Domain.DLS.get depth_key in
      if !depth > 0 then R.atomic ~profile f
      else begin
        let ro = Sb7_runtime.Op_profile.read_only profile in
        let structural = profile.Sb7_runtime.Op_profile.structural in
        let op = Trace.intern_op profile.Sb7_runtime.Op_profile.op_name in
        incr depth;
        (* The runtime re-runs the closure on every internal retry
           (conflict, lock restart, read-only demotion), so each
           attempt gets its own begin event — except a partial-abort
           resume, where the SAME attempt continues from a salvaged
           event prefix and is traced as such. *)
        match
          R.atomic ~profile (fun () ->
              let cp = Domain.DLS.get cp_key in
              let salvaged, _acc = R.resume () in
              if salvaged > 0 then begin
                let reads_kept = cp.cp_reads.(salvaged - 1) in
                let writes_kept = cp.cp_writes.(salvaged - 1) in
                Trace.on_partial ~reads_kept ~writes_kept;
                cp.reads <- reads_kept;
                cp.writes <- writes_kept;
                cp.ncp <- salvaged
              end
              else begin
                Trace.on_begin ~ro ~structural ~op;
                cp.reads <- 0;
                cp.writes <- 0;
                cp.ncp <- 0
              end;
              f ())
        with
        | result ->
          decr depth;
          Trace.on_commit ();
          result
        | exception exn ->
          decr depth;
          Trace.on_rollback ();
          raise exn
      end
    end

  let stats = R.stats
  let reset_stats = R.reset_stats
end
