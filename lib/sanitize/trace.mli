(** Per-domain, per-transaction event traces.

    Each worker domain appends fixed-shape integer event records to its
    own growable buffer ([Domain.DLS]-held, registered once under a
    mutex), so recording is lock-free and allocation-free on the hot
    path. The offline checker ({!Checker}) replays the dumped streams.

    Toggle {!enable}/{!disable} only while quiesced (no worker domains
    running): the flag is plain shared state published by the
    spawn/join happens-before edges, mirroring {!Sb7_rwlock.Lock_hooks}. *)

(** {1 Event encoding}

    Events are flat int records, tag first:

    - [tag_begin; flags; ts; op] — transaction attempt starts ([flags]:
      bit 0 = declared read-only, bit 1 = structural; [op] an id
      interned by {!intern_op}, 0 = unknown)
    - [tag_read; sid; wid] — read of tvar [sid] observing version [wid]
    - [tag_write; sid; wid; prev] — write creating version [wid] on
      top of version [prev]
    - [tag_commit; ts] — the attempt committed
    - [tag_rollback] — the attempt rolled back with an exception
    - [tag_acquire; uid; excl] / [tag_release; uid; excl] — lock
      transitions (from {!Sb7_rwlock.Lock_hooks})
    - [tag_partial; reads_kept; writes_kept] — the attempt partially
      aborted to a checkpoint: its first [reads_kept] read events and
      [writes_kept] write events stand, every later access it logged
      was rolled back, and the SAME attempt continues after this event
      (no new [tag_begin])

    An attempt that ends with neither commit nor rollback before the
    next [tag_begin] in the same stream was aborted and retried by the
    runtime (conflict, lock restart, read-only demotion). *)

val tag_begin : int
val tag_read : int
val tag_write : int
val tag_commit : int
val tag_rollback : int
val tag_acquire : int
val tag_release : int
val tag_partial : int

val flag_ro : int
val flag_structural : int

(** A quiesced snapshot of all recorded streams, one per domain that
    recorded anything, plus the registered lock names, the interned
    operation names, and the [(sid, region)] tvar region notes — see
    {!note_region}. *)
type dump = {
  streams : int array array;
  locks : (int * string) list;
  ops : (int * string) list;
  regions : (int * int) array;
}

(** {1 Recording} *)

val enabled : unit -> bool

(** The raw recording flag behind {!enabled}, exposed so the wrapper's
    per-access check is a single load with no call — never write it;
    use {!enable}/{!disable}. *)
val on : bool ref

(** Also enables {!Sb7_rwlock.Lock_hooks} (hooks are installed on the
    first call). Call only while quiesced. *)
val enable : unit -> unit

val disable : unit -> unit

(** Drop all recorded events (buffers stay allocated). Quiesced only. *)
val reset : unit -> unit

(** Drop all region notes. Each [Sanitize.Make] instance restarts its
    sid allocator, so a second sanitized run in the same process would
    otherwise read the previous structure's stale notes; the harness
    calls this before building a structure. Quiesced only. *)
val reset_notes : unit -> unit

(** Fresh global write id (> 0). Version id 0 is reserved for values
    written while tracing was off (initial values included). *)
val next_wid : unit -> int

(** Intern an operation name for begin events. Mutex-protected: call
    once per outer [atomic], not per event. Ids are > 0. *)
val intern_op : string -> int

(** Record the abstract region ([Region.to_int] code, or
    [Region_ctx.unknown]) of a freshly created tvar. Unlike the event
    stream this records regardless of {!enabled} and survives {!reset}:
    the structure built during setup outlives both. *)
val note_region : sid:int -> region:int -> unit

val on_begin : ro:bool -> structural:bool -> op:int -> unit
val on_read : sid:int -> wid:int -> unit
val on_write : sid:int -> wid:int -> prev:int -> unit
val on_commit : unit -> unit
val on_rollback : unit -> unit

(** Record a partial abort: the running attempt kept its first
    [reads_kept] read and [writes_kept] write events and continues. *)
val on_partial : reads_kept:int -> writes_kept:int -> unit

(** Snapshot the streams. Quiesced only. *)
val dump : unit -> dump

(** {1 Persistence} — traces are saved as CI artifacts on failure. *)

val save : string -> dump -> unit
val load : string -> dump
