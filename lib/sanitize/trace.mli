(** Per-domain, per-transaction event traces.

    Each worker domain appends fixed-shape integer event records to its
    own growable buffer ([Domain.DLS]-held, registered once under a
    mutex), so recording is lock-free and allocation-free on the hot
    path. The offline checker ({!Checker}) replays the dumped streams.

    Toggle {!enable}/{!disable} only while quiesced (no worker domains
    running): the flag is plain shared state published by the
    spawn/join happens-before edges, mirroring {!Sb7_rwlock.Lock_hooks}. *)

(** {1 Event encoding}

    Events are flat int records, tag first:

    - [tag_begin; flags; ts] — transaction attempt starts ([flags]:
      bit 0 = declared read-only, bit 1 = structural)
    - [tag_read; sid; wid] — read of tvar [sid] observing version [wid]
    - [tag_write; sid; wid; prev] — write creating version [wid] on
      top of version [prev]
    - [tag_commit; ts] — the attempt committed
    - [tag_rollback] — the attempt rolled back with an exception
    - [tag_acquire; uid; excl] / [tag_release; uid; excl] — lock
      transitions (from {!Sb7_rwlock.Lock_hooks})

    An attempt that ends with neither commit nor rollback before the
    next [tag_begin] in the same stream was aborted and retried by the
    runtime (conflict, lock restart, read-only demotion). *)

val tag_begin : int
val tag_read : int
val tag_write : int
val tag_commit : int
val tag_rollback : int
val tag_acquire : int
val tag_release : int

val flag_ro : int
val flag_structural : int

(** A quiesced snapshot of all recorded streams, one per domain that
    recorded anything, plus the registered lock names. *)
type dump = {
  streams : int array array;
  locks : (int * string) list;
}

(** {1 Recording} *)

val enabled : unit -> bool

(** The raw recording flag behind {!enabled}, exposed so the wrapper's
    per-access check is a single load with no call — never write it;
    use {!enable}/{!disable}. *)
val on : bool ref

(** Also enables {!Sb7_rwlock.Lock_hooks} (hooks are installed on the
    first call). Call only while quiesced. *)
val enable : unit -> unit

val disable : unit -> unit

(** Drop all recorded events (buffers stay allocated). Quiesced only. *)
val reset : unit -> unit

(** Fresh global write id (> 0). Version id 0 is reserved for values
    written while tracing was off (initial values included). *)
val next_wid : unit -> int

val on_begin : ro:bool -> structural:bool -> unit
val on_read : sid:int -> wid:int -> unit
val on_write : sid:int -> wid:int -> prev:int -> unit
val on_commit : unit -> unit
val on_rollback : unit -> unit

(** Snapshot the streams. Quiesced only. *)
val dump : unit -> dump

(** {1 Persistence} — traces are saved as CI artifacts on failure. *)

val save : string -> dump -> unit
val load : string -> dump
