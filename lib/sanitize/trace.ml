(* See trace.mli. The buffers are plain int arrays with a domain-local
   cursor: appending is a few stores, growing doubles the array
   (amortized O(1), and int arrays are not scanned by the GC). *)

let tag_begin = 0
let tag_read = 1
let tag_write = 2
let tag_commit = 3
let tag_rollback = 4
let tag_acquire = 5
let tag_release = 6

let flag_ro = 1
let flag_structural = 2

type dump = {
  streams : int array array;
  locks : (int * string) list;
}

type buf = {
  mutable data : int array;
  mutable len : int;
}

(* All buffers ever created, for reset/dump; registration happens once
   per domain, under a mutex. *)
let registry_mutex = Mutex.create ()
let buffers : buf list ref = ref []

let buf_key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { data = Array.make (1 lsl 14) 0; len = 0 } in
      Mutex.lock registry_mutex;
      buffers := b :: !buffers;
      Mutex.unlock registry_mutex;
      b)

let reserve b n =
  let cap = Array.length b.data in
  if b.len + n > cap then begin
    let bigger = Array.make (2 * max cap (b.len + n)) 0 in
    Array.blit b.data 0 bigger 0 b.len;
    b.data <- bigger
  end

(* Plain flag, toggled only while quiesced (see .mli). *)
let on = ref false
let enabled () = !on

(* Global logical counters. Only touched while tracing, so the
   contention is confined to sanitized runs. *)
let wid_counter = Atomic.make 0
let ts_counter = Atomic.make 0

let next_wid () = 1 + Atomic.fetch_and_add wid_counter 1
let next_ts () = 1 + Atomic.fetch_and_add ts_counter 1

let append1 t =
  let b = Domain.DLS.get buf_key in
  reserve b 1;
  b.data.(b.len) <- t;
  b.len <- b.len + 1

let append3 t a1 a2 =
  let b = Domain.DLS.get buf_key in
  reserve b 3;
  let n = b.len in
  b.data.(n) <- t;
  b.data.(n + 1) <- a1;
  b.data.(n + 2) <- a2;
  b.len <- n + 3

let append4 t a1 a2 a3 =
  let b = Domain.DLS.get buf_key in
  reserve b 4;
  let n = b.len in
  b.data.(n) <- t;
  b.data.(n + 1) <- a1;
  b.data.(n + 2) <- a2;
  b.data.(n + 3) <- a3;
  b.len <- n + 4

let on_begin ~ro ~structural =
  let flags =
    (if ro then flag_ro else 0) lor if structural then flag_structural else 0
  in
  append3 tag_begin flags (next_ts ())

let on_read ~sid ~wid = append3 tag_read sid wid
let on_write ~sid ~wid ~prev = append4 tag_write sid wid prev
let on_commit () = append3 tag_commit (next_ts ()) 0
let on_rollback () = append1 tag_rollback

(* Commit records 3 ints with a trailing 0 so every tag has a fixed
   arity; the checker skips by arity. *)

let hooks_installed = ref false

let install_hooks () =
  if not !hooks_installed then begin
    hooks_installed := true;
    Sb7_rwlock.Lock_hooks.set_hooks
      ~acquire:(fun ~id ~exclusive ->
        append3 tag_acquire id (if exclusive then 1 else 0))
      ~release:(fun ~id ~exclusive ->
        append3 tag_release id (if exclusive then 1 else 0))
  end

let enable () =
  install_hooks ();
  on := true;
  Sb7_rwlock.Lock_hooks.enable ()

let disable () =
  on := false;
  Sb7_rwlock.Lock_hooks.disable ()

let reset () = List.iter (fun b -> b.len <- 0) !buffers

let dump () =
  let streams =
    !buffers
    |> List.filter (fun b -> b.len > 0)
    |> List.map (fun b -> Array.sub b.data 0 b.len)
    |> Array.of_list
  in
  { streams; locks = Sb7_rwlock.Lock_hooks.registered_locks () }

let save path d =
  let oc = open_out_bin path in
  Marshal.to_channel oc d [];
  close_out oc

let load path =
  let ic = open_in_bin path in
  let d : dump = Marshal.from_channel ic in
  close_in ic;
  d
