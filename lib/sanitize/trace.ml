(* See trace.mli. The buffers are plain int arrays with a domain-local
   cursor: appending is a few stores, growing doubles the array
   (amortized O(1), and int arrays are not scanned by the GC). *)

let tag_begin = 0
let tag_read = 1
let tag_write = 2
let tag_commit = 3
let tag_rollback = 4
let tag_acquire = 5
let tag_release = 6
let tag_partial = 7

let flag_ro = 1
let flag_structural = 2

type dump = {
  streams : int array array;
  locks : (int * string) list;
  ops : (int * string) list;
  regions : (int * int) array;
}

type buf = {
  mutable data : int array;
  mutable len : int;
}

(* All buffers ever created, for reset/dump; registration happens once
   per domain, under a mutex. *)
let registry_mutex = Mutex.create ()
let buffers : buf list ref = ref []

let buf_key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { data = Array.make (1 lsl 14) 0; len = 0 } in
      Mutex.lock registry_mutex;
      buffers := b :: !buffers;
      Mutex.unlock registry_mutex;
      b)

(* Region notes — (sid, region) pairs recorded at tvar creation — live
   in their own per-domain buffers, separate from the event streams:
   they are recorded even while tracing is off (the footprint replay
   needs the region of every tvar, setup-created ones included) and
   they survive {!reset} (resetting between warmup and measurement must
   not orphan the structure's tvars). *)
let note_buffers : buf list ref = ref []

let note_key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { data = Array.make (1 lsl 12) 0; len = 0 } in
      Mutex.lock registry_mutex;
      note_buffers := b :: !note_buffers;
      Mutex.unlock registry_mutex;
      b)

(* Operation-name interning for begin events: a handful of distinct
   names, interned once per outer [atomic] call — a mutex here is off
   the per-event hot path. Id 0 is reserved for "unknown". *)
let ops_mutex = Mutex.create ()
let ops_table : (string, int) Hashtbl.t = Hashtbl.create 64
let ops_rev : (int * string) list ref = ref []
let ops_next = ref 1

let intern_op name =
  Mutex.lock ops_mutex;
  let id =
    match Hashtbl.find_opt ops_table name with
    | Some id -> id
    | None ->
      let id = !ops_next in
      incr ops_next;
      Hashtbl.add ops_table name id;
      ops_rev := (id, name) :: !ops_rev;
      id
  in
  Mutex.unlock ops_mutex;
  id

let reserve b n =
  let cap = Array.length b.data in
  if b.len + n > cap then begin
    let bigger = Array.make (2 * max cap (b.len + n)) 0 in
    Array.blit b.data 0 bigger 0 b.len;
    b.data <- bigger
  end

(* Plain flag, toggled only while quiesced (see .mli). *)
let on = ref false
let enabled () = !on

(* Global logical counters. Only touched while tracing, so the
   contention is confined to sanitized runs. *)
let wid_counter = Atomic.make 0
let ts_counter = Atomic.make 0

let next_wid () = 1 + Atomic.fetch_and_add wid_counter 1
let next_ts () = 1 + Atomic.fetch_and_add ts_counter 1

let append1 t =
  let b = Domain.DLS.get buf_key in
  reserve b 1;
  b.data.(b.len) <- t;
  b.len <- b.len + 1

let append3 t a1 a2 =
  let b = Domain.DLS.get buf_key in
  reserve b 3;
  let n = b.len in
  b.data.(n) <- t;
  b.data.(n + 1) <- a1;
  b.data.(n + 2) <- a2;
  b.len <- n + 3

let append4 t a1 a2 a3 =
  let b = Domain.DLS.get buf_key in
  reserve b 4;
  let n = b.len in
  b.data.(n) <- t;
  b.data.(n + 1) <- a1;
  b.data.(n + 2) <- a2;
  b.data.(n + 3) <- a3;
  b.len <- n + 4

let note_region ~sid ~region =
  let b = Domain.DLS.get note_key in
  reserve b 2;
  let n = b.len in
  b.data.(n) <- sid;
  b.data.(n + 1) <- region;
  b.len <- n + 2

let on_begin ~ro ~structural ~op =
  let flags =
    (if ro then flag_ro else 0) lor if structural then flag_structural else 0
  in
  append4 tag_begin flags (next_ts ()) op

let on_read ~sid ~wid = append3 tag_read sid wid
let on_write ~sid ~wid ~prev = append4 tag_write sid wid prev
let on_commit () = append3 tag_commit (next_ts ()) 0
let on_rollback () = append1 tag_rollback

(* A partial abort: the attempt rolled back to a checkpoint, keeping
   its first [reads_kept] read events and [writes_kept] write events;
   everything it logged after them was discarded and the attempt
   continues in place (no begin event follows). *)
let on_partial ~reads_kept ~writes_kept =
  append3 tag_partial reads_kept writes_kept

(* Commit records 3 ints with a trailing 0 so every tag has a fixed
   arity; the checker skips by arity. *)

let hooks_installed = ref false

let install_hooks () =
  if not !hooks_installed then begin
    hooks_installed := true;
    Sb7_rwlock.Lock_hooks.set_hooks
      ~acquire:(fun ~id ~exclusive ->
        append3 tag_acquire id (if exclusive then 1 else 0))
      ~release:(fun ~id ~exclusive ->
        append3 tag_release id (if exclusive then 1 else 0))
  end

let enable () =
  install_hooks ();
  on := true;
  Sb7_rwlock.Lock_hooks.enable ()

let disable () =
  on := false;
  Sb7_rwlock.Lock_hooks.disable ()

(* Event buffers only: region notes describe the still-live structure
   and must survive into the next measurement phase's dump. *)
let reset () = List.iter (fun b -> b.len <- 0) !buffers

(* Sid allocators restart per Sanitize.Make instance, so notes from a
   previous run's (now dead) structure would collide with the next
   run's sids; the harness clears them before building a structure. *)
let reset_notes () = List.iter (fun b -> b.len <- 0) !note_buffers

let dump () =
  let streams =
    !buffers
    |> List.filter (fun b -> b.len > 0)
    |> List.map (fun b -> Array.sub b.data 0 b.len)
    |> Array.of_list
  in
  let regions =
    let total =
      List.fold_left (fun acc b -> acc + (b.len / 2)) 0 !note_buffers
    in
    let out = Array.make total (0, 0) in
    let k = ref 0 in
    List.iter
      (fun b ->
        let m = b.len / 2 in
        for j = 0 to m - 1 do
          out.(!k + j) <- (b.data.(2 * j), b.data.((2 * j) + 1))
        done;
        k := !k + m)
      !note_buffers;
    out
  in
  let ops =
    Mutex.lock ops_mutex;
    let l = List.rev !ops_rev in
    Mutex.unlock ops_mutex;
    l
  in
  { streams; locks = Sb7_rwlock.Lock_hooks.registered_locks (); ops; regions }

let save path d =
  let oc = open_out_bin path in
  Marshal.to_channel oc d [];
  close_out oc

let load path =
  let ic = open_in_bin path in
  let d : dump = Marshal.from_channel ic in
  close_in ic;
  d
